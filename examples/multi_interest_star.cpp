/// \file examples/multi_interest_star.cpp
/// \brief The paper's Example 4: Mary the sports photographer builds a
/// multi-interest group with a 6-way STAR join.
///
/// Photography (P) sits at the centre of the query graph; Soccer,
/// Basketball, Hockey, Golf and Tennis hang off it. Each answer is a
/// 6-tuple of one member per group such that every sports lover is close
/// (in DHT) to the photographer — MIN over the five star edges makes the
/// weakest connection the score.

#include <cstdio>

#include "core/dhtjoin.h"
#include "datasets/youtube_like.h"

using namespace dhtjoin;  // NOLINT: example brevity

int main() {
  std::printf("generating a social graph with interest groups...\n");
  auto ds = datasets::GenerateYouTubeLike(datasets::YouTubeLikeConfig{
      .num_users = 20000, .num_groups = 40, .seed = 12});
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  const char* names[6] = {"photo", "soccer", "basket", "hockey", "golf",
                          "tennis"};
  // Keep the star sets modest so the example runs in seconds.
  std::vector<NodeSet> groups;
  for (int gid = 5; gid <= 10; ++gid) {
    groups.push_back(
        ds->Group(gid)->TopByDegree(ds->graph, 60));
  }

  QueryGraph q;
  std::vector<int> attr;
  attr.reserve(groups.size());
  for (std::size_t i = 0; i < groups.size(); ++i) {
    attr.push_back(q.AddNodeSet(groups[i]));
  }
  // Star: photography (attr 0) at the centre, edges to all five others
  // (paper Fig. 2(c)).
  for (std::size_t i = 1; i < groups.size(); ++i) {
    (void)q.AddEdge(attr[0], attr[i]);
  }

  DhtParams dht = DhtParams::Lambda(0.2);
  int d = dht.StepsForEpsilon(1e-6);
  MinAggregate min_f;
  PartialJoin pji(PartialJoin::Options{.m = 50, .incremental = true});
  auto answers = pji.Run(ds->graph, dht, d, q, min_f, 5);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop-5 multi-interest 6-tuples (6-way star join):\n");
  std::printf("%-4s", "rank");
  for (const char* n : names) std::printf(" %-9s", n);
  std::printf(" %s\n", "f (MIN)");
  int rank = 1;
  for (const TupleAnswer& t : *answers) {
    std::printf("%-4d", rank++);
    for (NodeId u : t.nodes) std::printf(" u%-8d", u);
    std::printf(" %+.6f\n", t.f);
  }
  if (answers->empty()) {
    std::printf("  (no 6-tuple connects all groups within d=%d steps)\n", d);
  }
  return 0;
}
