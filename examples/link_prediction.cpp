/// \file examples/link_prediction.cpp
/// \brief The paper's Sec VII-B.2 experiment as an application: predict
/// future DB-AI collaborations from a historical DBLP snapshot.
///
/// The test graph T is the co-authorship graph before 2010; predictions
/// are 2-way join pairs on T that are NOT yet linked; ground truth is
/// the full (2012) graph. Prints the top predictions and the ROC/AUC.

#include <cstdio>

#include "core/dhtjoin.h"
#include "datasets/dblp_like.h"
#include "eval/link_prediction.h"

using namespace dhtjoin;  // NOLINT: example brevity

int main() {
  std::printf("generating DBLP-like bibliography (1990-2012)...\n");
  auto ds = datasets::GenerateDblpLike(
      datasets::DblpLikeConfig{.num_authors = 8000, .seed = 7});
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto snapshot = ds->SnapshotBefore(2010);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  std::printf("true graph: %lld links; pre-2010 snapshot: %lld links\n",
              static_cast<long long>(ds->graph.num_edges() / 2),
              static_cast<long long>(snapshot->num_edges() / 2));

  NodeSet db = ds->Area("DB")->TopByDegree(ds->graph, 150);
  NodeSet ai = ds->Area("AI")->TopByDegree(ds->graph, 150);
  DhtParams dht = DhtParams::Lambda(0.2);
  int d = dht.StepsForEpsilon(1e-6);

  // Top predictions via the fast 2-way join on the snapshot.
  BIdjJoin join;
  auto pairs = join.Run(*snapshot, dht, d, db, ai, 200);
  if (!pairs.ok()) {
    std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop predicted new DB-AI collaborations:\n");
  int shown = 0;
  for (const ScoredPair& sp : *pairs) {
    if (snapshot->HasEdge(snapshot->ToInternal(ExtNodeId(sp.p)),
                          snapshot->ToInternal(ExtNodeId(sp.q)))) {
      continue;  // already collaborated
    }
    bool came_true =
        ds->graph.HasEdge(ds->graph.ToInternal(ExtNodeId(sp.p)),
                          ds->graph.ToInternal(ExtNodeId(sp.q)));
    std::printf("  a%-6d ~ a%-6d  h_d = %+.6f   %s\n", sp.p, sp.q, sp.score,
                came_true ? "[came true by 2012]" : "");
    if (++shown == 10) break;
  }

  // Full ROC/AUC over every candidate pair.
  auto roc = eval::EvaluateLinkPrediction(ds->graph, *snapshot, db, ai, dht,
                                          d);
  if (!roc.ok()) {
    std::fprintf(stderr, "%s\n", roc.status().ToString().c_str());
    return 1;
  }
  std::printf("\nROC: %lld positives, %lld negatives, AUC = %.4f\n",
              static_cast<long long>(roc->positives),
              static_cast<long long>(roc->negatives), roc->auc);
  std::printf("(paper Table IV reports AUC > 0.92 on the real datasets)\n");
  return 0;
}
