/// \file examples/quickstart.cpp
/// \brief Minimal end-to-end tour of the dhtjoin public API.
///
/// Builds the paper's Figure 1 example by hand: a small social network,
/// two interest groups P (grey) and Q (black), and a top-3 2-way join
/// that predicts which members of P and Q are likely to become friends.
/// Then upgrades the same query to a 2-set n-way join through the
/// QueryGraph API.

#include <cstdio>

#include "core/dhtjoin.h"

using namespace dhtjoin;  // NOLINT: example brevity

int main() {
  // --- 1. Build a graph (12 people; undirected friendships). ----------
  GraphBuilder builder(12, /*undirected=*/true);
  struct {
    NodeId u, v;
  } friendships[] = {{0, 1}, {0, 2}, {1, 2},  {2, 3},  {3, 4},  {4, 5},
                     {5, 6}, {6, 7}, {7, 8},  {8, 9},  {9, 10}, {10, 11},
                     {1, 4}, {3, 6}, {5, 8},  {7, 10}, {2, 5},  {4, 7}};
  for (auto [u, v] : friendships) {
    Status s = builder.AddEdge(u, v);
    if (!s.ok()) {
      std::fprintf(stderr, "AddEdge failed: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  auto graph = builder.Build();
  if (!graph.ok()) {
    std::fprintf(stderr, "Build failed: %s\n",
                 graph.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %d nodes, %lld directed edges\n", graph->num_nodes(),
              static_cast<long long>(graph->num_edges()));

  // --- 2. Pick the DHT measure (paper default: DHTlambda, l = 0.2). ---
  DhtParams dht = DhtParams::Lambda(0.2);
  int d = dht.StepsForEpsilon(1e-6);  // Lemma 1 => d = 8
  std::printf("DHT: alpha=%.3f beta=%.3f lambda=%.3f, d=%d\n", dht.alpha,
              dht.beta, dht.lambda, d);

  // --- 3. Top-3 2-way join with B-IDJ-Y (the paper's best). -----------
  NodeSet P("soccer", {0, 1, 2, 3});
  NodeSet Q("basketball", {8, 9, 10, 11});
  BIdjJoin two_way;  // defaults to the Y bound
  auto pairs = two_way.Run(*graph, dht, d, P, Q, 3);
  if (!pairs.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 pairs.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop-3 2-way join (predicted friendships):\n");
  for (const ScoredPair& sp : *pairs) {
    std::printf("  person %2d ~ person %2d   h_d = %+.6f\n", sp.p, sp.q,
                sp.score);
  }

  // --- 4. The same relationship as an n-way join. ---------------------
  QueryGraph query;
  int a = query.AddNodeSet(P);
  int b = query.AddNodeSet(Q);
  if (Status s = query.AddBidirectionalEdge(a, b); !s.ok()) {
    std::fprintf(stderr, "query graph: %s\n", s.ToString().c_str());
    return 1;
  }
  PartialJoin pji(PartialJoin::Options{.m = 10, .incremental = true});
  MinAggregate min_f;
  auto tuples = pji.Run(*graph, dht, d, query, min_f, 3);
  if (!tuples.ok()) {
    std::fprintf(stderr, "n-way join failed: %s\n",
                 tuples.status().ToString().c_str());
    return 1;
  }
  std::printf("\ntop-3 n-way join (MIN of both directions):\n");
  for (const TupleAnswer& t : *tuples) {
    std::printf("  (%2d, %2d)   f = %+.6f\n", t.nodes[0], t.nodes[1], t.f);
  }
  return 0;
}
