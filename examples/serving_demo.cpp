/// \file examples/serving_demo.cpp
/// \brief The serving layer in ~60 lines: one DhtJoinService over a
/// Yeast-scale graph, a skewed stream of repeated top-k queries, and
/// the cross-query ScoreCache turning repeats nearly free.
///
/// Run it and watch the per-query time collapse after the first
/// occurrence of each query: warm queries resume cached walk states
/// instead of recomputing, with byte-identical answers (DESIGN.md §6).

#include <cstdio>

#include "datasets/yeast_like.h"
#include "serve/session.h"
#include "serve/workload.h"

using namespace dhtjoin;  // NOLINT: example brevity

int main() {
  // --- 1. A Yeast-scale community graph (2.4k nodes, 13 partitions). --
  auto dataset = datasets::GenerateYeastLike();
  if (!dataset.ok()) {
    std::fprintf(stderr, "generate failed: %s\n",
                 dataset.status().ToString().c_str());
    return 1;
  }
  const Graph& g = dataset->graph;
  std::printf("graph: %d nodes, %lld edges, %zu node sets\n", g.num_nodes(),
              static_cast<long long>(g.num_edges()),
              dataset->partitions.size());

  // --- 2. One service = one graph + one measure + one shared cache. ---
  DhtParams dht = DhtParams::Lambda(0.2);
  const int d = dht.StepsForEpsilon(1e-6);
  serve::DhtJoinService service(g, dht, d);

  // --- 3. A Zipfian stream: few hot queries, long cold tail. ----------
  serve::WorkloadOptions wopts;
  wopts.num_requests = 40;
  wopts.num_templates = 6;
  wopts.zipf_s = 1.0;
  wopts.set_size = 50;
  wopts.k = 10;
  auto workload =
      serve::GenerateZipfianTwoWayWorkload(g, dataset->partitions, wopts);
  if (!workload.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 workload.status().ToString().c_str());
    return 1;
  }

  // --- 4. Serve it. Warm repeats resume cached walk states. -----------
  std::printf("\n%-6s %-10s %12s %14s %s\n", "req", "template", "ms", "warm "
              "targets", "top answer");
  for (std::size_t i = 0; i < workload->requests.size(); ++i) {
    const serve::TwoWayRequest& req = workload->requests[i];
    serve::QueryStats qs;
    auto result = service.TwoWay(req.P, req.Q, req.k, &qs);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("%-6zu %-10zu %12.3f %8lld/%-5zu ", i, req.template_id,
                qs.seconds * 1e3, static_cast<long long>(qs.warm_targets),
                req.Q.size());
    if (result->empty()) {
      std::printf("(no reachable pairs)\n");
    } else {
      std::printf("(%d, %d) %+.6f\n", (*result)[0].p, (*result)[0].q,
                  (*result)[0].score);
    }
  }

  // --- 5. The cache's side of the story. ------------------------------
  serve::CacheStats stats = service.cache_stats();
  std::printf("\ncache: %lld hits, %lld misses, %zu entries, %.1f MB "
              "resident (budget %.1f MB)\n",
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses), stats.entries,
              static_cast<double>(stats.resident_bytes) / (1 << 20),
              static_cast<double>(service.cache().max_bytes()) / (1 << 20));
  return 0;
}
