/// \file examples/ecommerce_chain.cpp
/// \brief The paper's Example 3: a retailer looking for manufacturers
/// and customers via a chain 3-way join (M -> R -> C).
///
/// On a social graph with Manufacturer / Retailer / Customer groups, the
/// chain query graph scores each (m, r, c) triple by how close the
/// manufacturer is to the retailer AND the retailer to the customer —
/// the SUM aggregate here rewards overall closeness along the supply
/// chain (the paper's introduction uses exactly this f).

#include <cstdio>

#include "core/dhtjoin.h"
#include "datasets/youtube_like.h"

using namespace dhtjoin;  // NOLINT: example brevity

int main() {
  std::printf("generating a social graph with interest groups...\n");
  auto ds = datasets::GenerateYouTubeLike(datasets::YouTubeLikeConfig{
      .num_users = 20000, .num_groups = 30, .seed = 11});
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }

  // Cast three groups as the paper's M, R, C.
  NodeSet manufacturers = std::move(ds->Group(2)).value();
  NodeSet retailers = std::move(ds->Group(3)).value();
  NodeSet customers = std::move(ds->Group(4)).value();
  std::printf("|M| = %zu, |R| = %zu, |C| = %zu members\n",
              manufacturers.size(), retailers.size(), customers.size());

  QueryGraph q;
  int m = q.AddNodeSet(manufacturers);
  int r = q.AddNodeSet(retailers);
  int c = q.AddNodeSet(customers);
  (void)q.AddEdge(m, r);  // directed, like Fig. 2(b)
  (void)q.AddEdge(r, c);

  DhtParams dht = DhtParams::Lambda(0.2);
  int d = dht.StepsForEpsilon(1e-6);
  SumAggregate sum_f;  // overall closeness along the chain
  PartialJoin pji(PartialJoin::Options{.m = 50, .incremental = true});
  auto answers = pji.Run(ds->graph, dht, d, q, sum_f, 10);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }

  std::printf("\ntop-10 supply-chain suggestions (SUM of DHTs):\n");
  std::printf("%-4s %-12s %-12s %-12s %-10s %-10s %s\n", "rank",
              "manufacturer", "retailer", "customer", "h(m,r)", "h(r,c)",
              "f");
  int rank = 1;
  for (const TupleAnswer& t : *answers) {
    std::printf("%-4d u%-11d u%-11d u%-11d %+.5f  %+.5f  %+.5f\n", rank++,
                t.nodes[0], t.nodes[1], t.nodes[2], t.edge_scores[0],
                t.edge_scores[1], t.f);
  }

  const auto& stats = pji.stats();
  std::printf("\nrank-join pulls per query edge: M->R: %lld, R->C: %lld\n",
              static_cast<long long>(stats.pulls_per_edge[0]),
              static_cast<long long>(stats.pulls_per_edge[1]));
  return 0;
}
