/// \file examples/proximity_measures.cpp
/// \brief The paper's future-work direction, implemented: the same n-way
/// join machinery evaluated over three proximity measures — DHTlambda,
/// DHTe (the paper's two variants), and Personalized PageRank (visiting
/// semantics through the identical general form).
///
/// Runs the same top-5 2-way join on a Yeast-like graph under each
/// measure and prints the rankings side by side, so the effect of the
/// measure choice is visible directly.

#include <cstdio>
#include <vector>

#include "core/dhtjoin.h"
#include "datasets/yeast_like.h"

using namespace dhtjoin;  // NOLINT: example brevity

int main() {
  std::printf("generating Yeast-like PPI graph...\n");
  auto ds = datasets::GenerateYeastLike();
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  auto p_set = ds->Partition("3-U");
  auto q_set = ds->Partition("8-D");
  if (!p_set.ok() || !q_set.ok()) return 1;
  NodeSet P = p_set->TopByDegree(ds->graph, 120);
  NodeSet Q = q_set->TopByDegree(ds->graph, 120);

  struct Measure {
    const char* name;
    DhtParams params;
  };
  std::vector<Measure> measures = {
      {"DHTlambda(0.2)", DhtParams::Lambda(0.2)},
      {"DHTe", DhtParams::Exponential()},
      {"PPR(c=0.85)", DhtParams::PersonalizedPageRank(0.85)},
  };

  std::printf("\ntop-5 2-way join (B-IDJ-Y) under each measure:\n");
  for (const Measure& m : measures) {
    int d = m.params.StepsForEpsilon(1e-6);
    BIdjJoin join;
    auto pairs = join.Run(ds->graph, m.params, d, P, Q, 5);
    if (!pairs.ok()) {
      std::fprintf(stderr, "%s: %s\n", m.name,
                   pairs.status().ToString().c_str());
      return 1;
    }
    std::printf("\n  %-16s (alpha=%.3f beta=%+.3f lambda=%.3f d=%d, %s)\n",
                m.name, m.params.alpha, m.params.beta, m.params.lambda, d,
                m.params.first_hit ? "first-hit" : "visiting");
    int rank = 1;
    for (const ScoredPair& sp : *pairs) {
      std::printf("    %d. (%4d, %4d)  score = %+.6f\n", rank++, sp.p,
                  sp.q, sp.score);
    }
  }

  std::printf(
      "\nall three run through the identical PJ-i / B-IDJ-Y machinery;\n"
      "only the (alpha, beta, lambda, first_hit) tuple changes.\n");
  return 0;
}
