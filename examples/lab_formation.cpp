/// \file examples/lab_formation.cpp
/// \brief The paper's Example 2 / Table III scenario: staffing a
/// cross-disciplinary lab with a triangle 3-way join.
///
/// A researcher wants experts from Database (DB), Artificial
/// Intelligence (AI) and Systems (SYS) who work closely with EACH OTHER.
/// A triangle query graph over the three areas, scored by MIN of the
/// pairwise DHTs, surfaces author triples whose weakest pairwise tie is
/// still strong. The same sets in a chain query graph (AI - DB - SYS)
/// give a different answer: the AI and SYS people no longer need any
/// direct affinity — exactly the contrast the paper's Table III shows.

#include <cstdio>
#include <string>

#include "core/dhtjoin.h"
#include "datasets/dblp_like.h"

using namespace dhtjoin;  // NOLINT: example brevity

namespace {

std::string AuthorName(NodeId id, const datasets::DblpLikeDataset& ds) {
  for (const NodeSet& area : ds.areas) {
    if (area.Contains(ExtNodeId(id))) {
      return "a" + std::to_string(id) + "(" + area.name() + ")";
    }
  }
  return "a" + std::to_string(id);
}

void PrintAnswers(const char* title, const std::vector<TupleAnswer>& answers,
                  const datasets::DblpLikeDataset& ds) {
  std::printf("\n%s\n", title);
  std::printf("%-4s %-14s %-14s %-14s %s\n", "rank", "DB", "AI", "SYS",
              "f (MIN DHT)");
  int rank = 1;
  for (const TupleAnswer& t : answers) {
    std::printf("%-4d %-14s %-14s %-14s %+.6f\n", rank++,
                AuthorName(t.nodes[0], ds).c_str(),
                AuthorName(t.nodes[1], ds).c_str(),
                AuthorName(t.nodes[2], ds).c_str(), t.f);
  }
}

}  // namespace

int main() {
  std::printf("generating DBLP-like co-authorship graph...\n");
  auto ds = datasets::GenerateDblpLike(
      datasets::DblpLikeConfig{.num_authors = 8000, .seed = 7});
  if (!ds.ok()) {
    std::fprintf(stderr, "%s\n", ds.status().ToString().c_str());
    return 1;
  }
  std::printf("graph: %d authors, %lld coauthor links\n",
              ds->graph.num_nodes(),
              static_cast<long long>(ds->graph.num_edges() / 2));

  // The paper selects the 100 most-published authors per area.
  NodeSet db = ds->Area("DB")->TopByDegree(ds->graph, 100);
  NodeSet ai = ds->Area("AI")->TopByDegree(ds->graph, 100);
  NodeSet sys = ds->Area("SYS")->TopByDegree(ds->graph, 100);

  DhtParams dht = DhtParams::Lambda(0.2);
  int d = dht.StepsForEpsilon(1e-6);
  MinAggregate min_f;
  PartialJoin pji(PartialJoin::Options{.m = 50, .incremental = true});

  // Triangle query graph (paper Fig. 2(a); single line = both directions).
  {
    QueryGraph q;
    int a = q.AddNodeSet(db);
    int b = q.AddNodeSet(ai);
    int c = q.AddNodeSet(sys);
    (void)q.AddBidirectionalEdge(a, b);
    (void)q.AddBidirectionalEdge(b, c);
    (void)q.AddBidirectionalEdge(a, c);
    auto answers = pji.Run(ds->graph, dht, d, q, min_f, 5);
    if (!answers.ok()) {
      std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
      return 1;
    }
    PrintAnswers("== top-5 3-way join, TRIANGLE query graph ==", *answers,
                 *ds);
  }

  // Chain query graph (AI - DB - SYS, paper Table III right half).
  {
    QueryGraph q;
    int a = q.AddNodeSet(db);
    int b = q.AddNodeSet(ai);
    int c = q.AddNodeSet(sys);
    (void)q.AddBidirectionalEdge(b, a);  // AI - DB
    (void)q.AddBidirectionalEdge(a, c);  // DB - SYS
    auto answers = pji.Run(ds->graph, dht, d, q, min_f, 5);
    if (!answers.ok()) {
      std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
      return 1;
    }
    PrintAnswers("== top-5 3-way join, CHAIN query graph (AI-DB-SYS) ==",
                 *answers, *ds);
  }

  std::printf(
      "\nnote: triangle answers require every pair to be close; chain\n"
      "answers only constrain AI-DB and DB-SYS, so the AI and SYS experts\n"
      "may have no direct collaboration (cf. paper Table III).\n");
  return 0;
}
