#include "eval/link_prediction.h"

#include "dht/backward.h"

namespace dhtjoin::eval {

Result<RocResult> EvaluateLinkPrediction(const Graph& true_graph,
                                         const Graph& test_graph,
                                         const NodeSet& P, const NodeSet& Q,
                                         const DhtParams& params, int d) {
  DHTJOIN_RETURN_NOT_OK(params.Validate());
  DHTJOIN_RETURN_NOT_OK(P.Validate(test_graph));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(test_graph));
  DHTJOIN_RETURN_NOT_OK(P.Validate(true_graph));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(true_graph));
  if (d < 1) return Status::InvalidArgument("d must be >= 1");

  std::vector<std::pair<double, bool>> scored;
  BackwardWalker walker(test_graph);
  for (NodeId q : Q) {
    walker.Reset(params, q);
    walker.Advance(d);
    for (NodeId p : P) {
      if (p == q) continue;
      if (test_graph.HasEdge(p, q)) continue;  // already linked: not a
                                               // prediction
      bool positive = true_graph.HasEdge(p, q);
      scored.emplace_back(walker.Score(p), positive);
    }
  }
  return ComputeRoc(std::move(scored));
}

}  // namespace dhtjoin::eval
