#include "eval/link_prediction.h"

#include "dht/backward_batch.h"

namespace dhtjoin::eval {

Result<RocResult> EvaluateLinkPrediction(const Graph& true_graph,
                                         const Graph& test_graph,
                                         const NodeSet& P, const NodeSet& Q,
                                         const DhtParams& params, int d) {
  DHTJOIN_RETURN_NOT_OK(params.Validate());
  DHTJOIN_RETURN_NOT_OK(P.Validate(test_graph));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(test_graph));
  DHTJOIN_RETURN_NOT_OK(P.Validate(true_graph));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(true_graph));
  if (d < 1) return Status::InvalidArgument("d must be >= 1");

  std::vector<std::pair<double, bool>> scored;
  BackwardWalkerBatch batch(test_graph);
  batch.RunChunked(
      params, d, Q.nodes(), P.nodes(),
      [&](std::size_t qi, const double* row) {
        ExtNodeId q = Q[qi];
        for (std::size_t pi = 0; pi < P.size(); ++pi) {
          ExtNodeId p = P[pi];
          if (p == q) continue;
          // HasEdge is layout-addressed; p/q are external ids.
          if (test_graph.HasEdge(test_graph.ToInternal(p),
                                 test_graph.ToInternal(q))) {
            continue;  // already linked: not a prediction
          }
          bool positive = true_graph.HasEdge(true_graph.ToInternal(p),
                                             true_graph.ToInternal(q));
          scored.emplace_back(row[pi], positive);
        }
      });
  return ComputeRoc(std::move(scored));
}

}  // namespace dhtjoin::eval
