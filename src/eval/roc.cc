#include "eval/roc.h"

#include <algorithm>

namespace dhtjoin::eval {

RocResult ComputeRoc(std::vector<std::pair<double, bool>> scored_labels) {
  RocResult out;
  for (const auto& [score, positive] : scored_labels) {
    (void)score;
    if (positive) {
      out.positives++;
    } else {
      out.negatives++;
    }
  }
  if (out.positives == 0 || out.negatives == 0) return out;

  std::sort(scored_labels.begin(), scored_labels.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });

  const double np = static_cast<double>(out.positives);
  const double nn = static_cast<double>(out.negatives);
  int64_t tp = 0, fp = 0;
  out.points.push_back(RocPoint{0.0, 0.0});
  double auc = 0.0;
  double prev_fpr = 0.0, prev_tpr = 0.0;

  std::size_t i = 0;
  while (i < scored_labels.size()) {
    // Process tied scores as one step so the curve cuts diagonally
    // through the tie block instead of favouring one label order.
    double score = scored_labels[i].first;
    while (i < scored_labels.size() && scored_labels[i].first == score) {
      if (scored_labels[i].second) {
        ++tp;
      } else {
        ++fp;
      }
      ++i;
    }
    double fpr = static_cast<double>(fp) / nn;
    double tpr = static_cast<double>(tp) / np;
    auc += 0.5 * (fpr - prev_fpr) * (tpr + prev_tpr);  // trapezoid
    out.points.push_back(RocPoint{fpr, tpr});
    prev_fpr = fpr;
    prev_tpr = tpr;
  }
  out.auc = auc;
  return out;
}

}  // namespace dhtjoin::eval
