/// \file eval/roc.h
/// \brief ROC curves and AUC (paper Sec VII-B measurement protocol).
///
/// Predictions are scored candidates with binary ground-truth labels;
/// sweeping a threshold over the scores traces the ROC curve, and the
/// area under it (AUC) summarizes accuracy robustly under class
/// imbalance [Fawcett 2006], which is why the paper uses it.

#ifndef DHTJOIN_EVAL_ROC_H_
#define DHTJOIN_EVAL_ROC_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace dhtjoin::eval {

struct RocPoint {
  double fpr;  ///< false-positive rate
  double tpr;  ///< true-positive rate
};

struct RocResult {
  std::vector<RocPoint> points;  ///< curve from (0,0) to (1,1)
  double auc = 0.0;
  int64_t positives = 0;
  int64_t negatives = 0;
};

/// Computes the ROC curve and AUC from (score, is_positive) pairs.
/// Ties are handled correctly (grouped into a single sweep step, which
/// is equivalent to the Mann-Whitney treatment of ties). Degenerate
/// inputs (no positives or no negatives) yield auc = 0 with an empty
/// curve.
RocResult ComputeRoc(std::vector<std::pair<double, bool>> scored_labels);

}  // namespace dhtjoin::eval

#endif  // DHTJOIN_EVAL_ROC_H_
