#include "eval/clique_prediction.h"

#include "core/partial_join.h"
#include "core/query_graph.h"
#include "rankjoin/aggregate.h"

namespace dhtjoin::eval {

Result<RocResult> EvaluateCliquePrediction(
    const Graph& true_graph, const Graph& test_graph, const NodeSet& P,
    const NodeSet& Q, const NodeSet& R, const DhtParams& params, int d,
    const CliquePredictionOptions& options) {
  QueryGraph query;
  int a = query.AddNodeSet(P);
  int b = query.AddNodeSet(Q);
  int c = query.AddNodeSet(R);
  DHTJOIN_RETURN_NOT_OK(query.AddBidirectionalEdge(a, b));
  DHTJOIN_RETURN_NOT_OK(query.AddBidirectionalEdge(b, c));
  DHTJOIN_RETURN_NOT_OK(query.AddBidirectionalEdge(a, c));

  PartialJoin join(PartialJoin::Options{
      .m = options.m, .incremental = true, .bound = UpperBoundKind::kY});
  MinAggregate min_f;
  DHTJOIN_ASSIGN_OR_RETURN(
      std::vector<TupleAnswer> tuples,
      join.Run(test_graph, params, d, query, min_f, options.k));

  // Tuples carry external ids; HasEdge is layout-addressed.
  auto is_clique = [](const Graph& g, NodeId x, NodeId y, NodeId z) {
    const IntNodeId ix = g.ToInternal(ExtNodeId(x));
    const IntNodeId iy = g.ToInternal(ExtNodeId(y));
    const IntNodeId iz = g.ToInternal(ExtNodeId(z));
    return g.HasEdge(ix, iy) && g.HasEdge(iy, iz) && g.HasEdge(ix, iz);
  };

  std::vector<std::pair<double, bool>> scored;
  for (const TupleAnswer& t : tuples) {
    NodeId x = t.nodes[0], y = t.nodes[1], z = t.nodes[2];
    if (is_clique(test_graph, x, y, z)) continue;  // already known in T
    scored.emplace_back(t.f, is_clique(true_graph, x, y, z));
  }
  return ComputeRoc(std::move(scored));
}

}  // namespace dhtjoin::eval
