/// \file eval/link_prediction.h
/// \brief The paper's link-prediction experiment (Sec VII-B.2).
///
/// Run a 2-way join between P and Q on the TEST graph T; every returned
/// pair not already linked in T is a prediction, counted as a true
/// positive when the pair IS linked in the TRUE graph G. Sweeping the
/// prediction cutoff yields an ROC curve and its AUC (paper Fig. 6,
/// Table IV).

#ifndef DHTJOIN_EVAL_LINK_PREDICTION_H_
#define DHTJOIN_EVAL_LINK_PREDICTION_H_

#include "dht/params.h"
#include "eval/roc.h"
#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/status.h"

namespace dhtjoin::eval {

/// Scores every candidate pair (p in P, q in Q, p != q, not adjacent in
/// `test_graph`) by h_d(p, q) computed ON the test graph (backward
/// processing, one walk per q), labels it by adjacency in `true_graph`,
/// and returns the ROC/AUC. Pairs unreachable within d steps score at
/// the floor (beta) and participate as lowest-ranked candidates.
Result<RocResult> EvaluateLinkPrediction(const Graph& true_graph,
                                         const Graph& test_graph,
                                         const NodeSet& P, const NodeSet& Q,
                                         const DhtParams& params, int d);

}  // namespace dhtjoin::eval

#endif  // DHTJOIN_EVAL_LINK_PREDICTION_H_
