/// \file eval/clique_prediction.h
/// \brief The paper's 3-clique-prediction experiment (Sec VII-B.3).
///
/// Run a triangle 3-way join (both directions per side, MIN aggregate)
/// over (P, Q, R) on the TEST graph T; every returned tuple that is not
/// already a 3-clique in T is a prediction, a true positive when the
/// three nodes DO form a clique in the TRUE graph G. Scores feed an
/// ROC/AUC exactly as in link prediction (paper Table IV).

#ifndef DHTJOIN_EVAL_CLIQUE_PREDICTION_H_
#define DHTJOIN_EVAL_CLIQUE_PREDICTION_H_

#include "dht/params.h"
#include "eval/roc.h"
#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/status.h"

namespace dhtjoin::eval {

struct CliquePredictionOptions {
  /// Number of top tuples the 3-way join materializes as candidates.
  std::size_t k = 2000;
  /// 2-way list depth of the underlying PJ-i run.
  std::size_t m = 200;
};

/// Runs the triangle join on the test graph and scores the predictions.
Result<RocResult> EvaluateCliquePrediction(
    const Graph& true_graph, const Graph& test_graph, const NodeSet& P,
    const NodeSet& Q, const NodeSet& R, const DhtParams& params, int d,
    const CliquePredictionOptions& options = CliquePredictionOptions{});

}  // namespace dhtjoin::eval

#endif  // DHTJOIN_EVAL_CLIQUE_PREDICTION_H_
