/// \file serve/score_cache.h
/// \brief Cross-query walk-state / score cache for the serving layer.
///
/// Every join in the library is cold today at the process level: NL
/// rebuilds its per-edge tables per Run(), the IDJ engines' resumable
/// snapshots die with the join object, and the Y-bound sweep is repaid
/// per query. ScoreCache is the shared, thread-safe store that lets a
/// stream of queries amortize all of that: a sharded, byte-budgeted LRU
/// generalizing dht/walker_state.h's WalkerStatePool, keyed exactly by
/// everything a payload's bits depend on — graph fingerprint, DhtParams
/// coefficients, truncation depth d where it matters, walk direction,
/// and the seed node / seed node sets (see CacheKey).
///
/// Keying is EXACT, not probabilistic: besides the 64-bit content
/// digests used for hashing, a key carries shared_ptr copies of its
/// seed-set contents and equality compares them element-wise, so a
/// digest collision can never alias two different queries. Combined
/// with the engines' sorted-support determinism (DESIGN.md §3 and §6),
/// this is what makes a warm hit BYTE-safe: a resumed or reused payload
/// is bit-identical to what a cold query would recompute.
///
/// Eviction is always safe (the WalkerStatePool argument): a dropped
/// entry costs the next query time, never correctness. Entries are
/// handed out as shared_ptr<const ...>, so a reader holding a payload
/// is unaffected by concurrent eviction.

#ifndef DHTJOIN_SERVE_SCORE_CACHE_H_
#define DHTJOIN_SERVE_SCORE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "dht/backward.h"
#include "dht/backward_batch.h"
#include "dht/bounds.h"
#include "dht/params.h"
#include "graph/graph.h"

namespace dhtjoin::serve {

/// Content hash of a graph's CSR (nodes, degrees, targets, probability
/// bits). Two graphs with equal fingerprints are — for all practical
/// purposes — the same graph, and any cached walk state computed on one
/// is valid on the other. O(n + m); compute once per served graph.
uint64_t GraphFingerprint(const Graph& g);

/// Order-sensitive content digest of an external-id list
/// (NodeSet::nodes() is sorted/deduped, so equal sets digest equally).
/// Used for HASHING keys only; equality always compares contents.
uint64_t DigestNodes(std::span<const ExtNodeId> nodes);

/// What a cache entry holds; part of the key, so one cache serves all
/// payload kinds without any chance of cross-kind aliasing.
enum class CachePayload : uint8_t {
  kBackwardSnapshot,  ///< scalar BackwardWalkerState of one target
  kBatchState,        ///< BackwardBatchSnapshot of (target, source set)
  kEdgeTable,         ///< NL's |L| x |R| forward score table
  kYBound,            ///< YBoundTable of (P, Q) at depth d
};

/// Exact cache key. `d` participates only for payloads whose bits
/// depend on the truncation depth (kEdgeTable, kYBound); level-carrying
/// walk states (kBackwardSnapshot, kBatchState) set it to 0 so services
/// running different depths share them. Seed sets are carried by
/// shared_ptr and compared by CONTENT — the pointers just keep one copy
/// alive per key instead of one per comparison.
struct CacheKey {
  uint64_t graph_fp = 0;
  CachePayload kind = CachePayload::kBackwardSnapshot;
  DhtParams params;
  int d = 0;
  /// Seed/target node (EXTERNAL id), when the payload has one. Keys
  /// are layout-independent; graph_fp pins the layout separately.
  ExtNodeId seed = kInvalidExtNode;
  std::shared_ptr<const std::vector<ExtNodeId>> set_a;  ///< e.g. P / L
  std::shared_ptr<const std::vector<ExtNodeId>> set_b;  ///< e.g. Q / R
  uint64_t digest_a = 0;  ///< DigestNodes(*set_a); 0 when unset
  uint64_t digest_b = 0;

  bool operator==(const CacheKey& other) const;
  uint64_t Hash() const;
};

/// Base of every cached payload; ApproxBytes feeds the byte budget.
class CacheEntry {
 public:
  virtual ~CacheEntry() = default;
  virtual std::size_t ApproxBytes() const = 0;
};

/// Scalar backward-walker snapshot (IncrementalTwoWayJoin / PJ-i).
struct CachedBackwardSnapshot final : CacheEntry {
  explicit CachedBackwardSnapshot(BackwardWalkerState s)
      : state(std::move(s)) {}
  BackwardWalkerState state;
  std::size_t ApproxBytes() const override {
    return sizeof(*this) + state.ApproxBytes();
  }
};

/// Batched backward walk state of one (target, pinned source set) pair
/// (the serving two-way executor's unit of warmth).
struct CachedBatchState final : CacheEntry {
  explicit CachedBatchState(BackwardBatchSnapshot s) : snap(std::move(s)) {}
  BackwardBatchSnapshot snap;
  std::size_t ApproxBytes() const override {
    return sizeof(*this) + snap.ApproxBytes();
  }
};

/// NL's per-edge forward score table (|L| x |R| row-major h_d).
struct CachedTable final : CacheEntry {
  explicit CachedTable(std::shared_ptr<const std::vector<double>> t)
      : table(std::move(t)) {}
  std::shared_ptr<const std::vector<double>> table;
  std::size_t ApproxBytes() const override {
    return sizeof(*this) + (table == nullptr
                                ? 0
                                : table->capacity() * sizeof(double));
  }
};

/// Y_l^+(P, q) table of one (P, Q, d) triple (B-IDJ-Y's up-front sweep).
struct CachedYBound final : CacheEntry {
  explicit CachedYBound(YBoundTable t) : table(std::move(t)) {}
  YBoundTable table;
  std::size_t ApproxBytes() const override {
    // d+1 doubles per target plus vector headers.
    return sizeof(*this) +
           static_cast<std::size_t>(table.d() + 1) * sizeof(double) *
               num_targets_hint +
           num_targets_hint * sizeof(std::vector<double>);
  }
  /// |Q| of the construction, recorded because YBoundTable does not
  /// expose it; set by the inserter.
  std::size_t num_targets_hint = 0;
};

/// Aggregate counters; readable while the cache is in use.
struct CacheStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t insertions = 0;
  int64_t evictions = 0;
  /// Puts turned away by the admission policy (first touch of a small
  /// payload; see Options::admission_bypass_bytes).
  int64_t admission_rejects = 0;
  std::size_t resident_bytes = 0;
  std::size_t entries = 0;
};

/// Sharded, thread-safe, byte-budgeted LRU over CacheKey -> CacheEntry.
///
/// Each shard owns an independent mutex, LRU list, and an equal slice
/// of the byte budget, so concurrent query sessions contend only when
/// they hash to the same shard. A budget of 0 disables retention
/// entirely (every Put is immediately evicted) — the "cold" serving
/// configuration used by benchmarks and the budget-0 equivalence tests.
class ScoreCache {
 public:
  struct Options {
    /// Total byte budget across shards. 0 = hold nothing.
    std::size_t max_bytes = std::size_t{256} << 20;
    /// Power of two recommended; clamped to >= 1.
    int num_shards = 8;
    /// Admission policy (first-touch bypass with a size floor): a
    /// payload SMALLER than this is only admitted once its key has
    /// been offered before — one-shot tiny queries then never enter
    /// the LRU, so they stop churning it, while any repeated key is
    /// admitted on its second offer. Payloads at or above the floor
    /// are always admitted (recomputing them is what the cache is
    /// for). 0 (default) admits everything. Rejects are surfaced as
    /// CacheStats::admission_rejects.
    std::size_t admission_bypass_bytes = 0;
  };

  explicit ScoreCache(Options options);

  /// Returns the entry under `key` (bumping it in its shard's LRU) or
  /// nullptr. The returned pointer keeps the payload alive regardless
  /// of later eviction.
  std::shared_ptr<const CacheEntry> Get(const CacheKey& key);

  /// Typed Get; returns nullptr on miss. The key's `kind` field keeps
  /// payload types disjoint, so the cast cannot mismatch for callers
  /// that pair kinds and types consistently (all of serve/ does).
  template <typename T>
  std::shared_ptr<const T> GetAs(const CacheKey& key) {
    return std::dynamic_pointer_cast<const T>(Get(key));
  }

  /// Get without the LRU bump or hit/miss accounting — for write-back
  /// guards ("is the cached state already deeper than mine?") that
  /// should not distort serving metrics or recency.
  std::shared_ptr<const CacheEntry> Peek(const CacheKey& key);

  template <typename T>
  std::shared_ptr<const T> PeekAs(const CacheKey& key) {
    return std::dynamic_pointer_cast<const T>(Peek(key));
  }

  /// Inserts (or replaces) `entry` under `key`, then evicts the shard's
  /// LRU tail to its budget slice. An entry larger than the slice is
  /// not retained.
  void Put(const CacheKey& key, std::shared_ptr<const CacheEntry> entry);

  /// Put, unless `keep_existing(current)` returns true for an entry
  /// already under `key`. The predicate runs UNDER the shard lock, so
  /// the decision and the insert are one atomic step — this is how
  /// deepest-wins write-backs stay deepest-wins when concurrent
  /// sessions race on one key (DESIGN.md §6).
  void PutIf(const CacheKey& key, std::shared_ptr<const CacheEntry> entry,
             const std::function<bool(const CacheEntry&)>& keep_existing);

  void Erase(const CacheKey& key);
  void Clear();

  /// One resident entry, as exported for persistence.
  struct ExportedEntry {
    CacheKey key;
    std::shared_ptr<const CacheEntry> entry;
  };

  /// Point-in-time copy of every resident (key, entry) pair, in shard
  /// order, most-recently-used first within a shard — so a size-capped
  /// checkpoint keeps the hottest payloads. Shared_ptr copies keep the
  /// payloads alive independent of later eviction; recency and the
  /// hit/miss counters are untouched (this is an observer, not a
  /// reader). Each shard is locked only while being copied.
  std::vector<ExportedEntry> Export();

  CacheStats stats() const;
  std::size_t max_bytes() const { return options_.max_bytes; }
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  struct KeyHash {
    std::size_t operator()(const CacheKey& k) const {
      return static_cast<std::size_t>(k.Hash());
    }
  };

  struct Node {
    CacheKey key;
    std::shared_ptr<const CacheEntry> entry;
    std::size_t bytes = 0;
  };

  struct Shard {
    std::mutex mu;
    std::list<Node> lru;  // front = most recent
    std::unordered_map<CacheKey, std::list<Node>::iterator, KeyHash> index;
    std::size_t bytes = 0;
    /// Admission doorkeeper: key hashes offered at least once. Hash
    /// collisions only ever admit EARLY (harmless — admission is a
    /// heuristic; keying stays exact). Cleared when it outgrows its
    /// bound so memory stays O(1) per shard.
    std::unordered_set<uint64_t> seen;
  };

  /// Doorkeeper entry bound per shard. A node-based unordered_set
  /// costs ~32-40 bytes per entry (node + bucket share), so this caps
  /// the doorkeeper near 0.5 MB per shard — a few MB per cache,
  /// deliberately outside the payload byte budget.
  static constexpr std::size_t kMaxSeenPerShard = std::size_t{1} << 14;

  Shard& ShardFor(const CacheKey& key);

  Options options_;
  std::size_t shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> insertions_{0};
  std::atomic<int64_t> evictions_{0};
  std::atomic<int64_t> admission_rejects_{0};
};

}  // namespace dhtjoin::serve

#endif  // DHTJOIN_SERVE_SCORE_CACHE_H_
