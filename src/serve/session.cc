#include "serve/session.h"

#include <algorithm>
#include <exception>
#include <string>
#include <utility>

#include "cluster/wire.h"
#include "dht/backward_batch.h"
#include "dht/walker_state.h"
#include "obs/trace.h"
#include "serve/warm_state.h"

namespace dhtjoin::serve {

/// BackwardSnapshotProvider over the cache: scalar walk snapshots are
/// keyed by target only (besides graph/params), so ANY query — 2-way or
/// n-way, any P/Q — that deepens the same target resumes the deepest
/// walk any earlier query left behind.
class DhtJoinService::SnapshotAdapter final : public BackwardSnapshotProvider {
 public:
  explicit SnapshotAdapter(DhtJoinService* service) : service_(service) {}

  std::shared_ptr<const BackwardWalkerState> Fetch(ExtNodeId target) override {
    CacheKey key = service_->BaseKey(CachePayload::kBackwardSnapshot);
    key.seed = target;
    auto entry = service_->cache_.GetAs<CachedBackwardSnapshot>(key);
    if (entry == nullptr) return nullptr;
    // Aliasing shared_ptr: the state lives exactly as long as the entry.
    return {entry, &entry->state};
  }

  void Store(ExtNodeId target, BackwardWalkerState state) override {
    CacheKey key = service_->BaseKey(CachePayload::kBackwardSnapshot);
    key.seed = target;
    const int level = state.level;
    // Never replace a deeper walk with a shallower one: depth only ever
    // helps the next query, and both are byte-safe to resume. PutIf
    // decides under the shard lock, so racing sessions converge on the
    // deepest walk either of them did (DESIGN.md §6).
    service_->cache_.PutIf(
        key, std::make_shared<CachedBackwardSnapshot>(std::move(state)),
        [level](const serve::CacheEntry& existing) {
          return static_cast<const CachedBackwardSnapshot&>(existing)
                     .state.level >= level;
        });
  }

  bool WantsLevel(ExtNodeId target, int level) override {
    CacheKey key = service_->BaseKey(CachePayload::kBackwardSnapshot);
    key.seed = target;
    auto existing = service_->cache_.PeekAs<CachedBackwardSnapshot>(key);
    return existing == nullptr || existing->state.level < level;
  }

 private:
  DhtJoinService* service_;
};

/// EdgeScoreTableProvider over the cache: NL's per-edge |L| x |R| score
/// tables, keyed by both operand sets and d.
class DhtJoinService::TableAdapter final : public EdgeScoreTableProvider {
 public:
  explicit TableAdapter(DhtJoinService* service) : service_(service) {}

  std::shared_ptr<const std::vector<double>> Fetch(
      const NodeSet& L, const NodeSet& R) override {
    auto entry = service_->cache_.GetAs<CachedTable>(Key(L, R));
    return entry == nullptr ? nullptr : entry->table;
  }

  void Store(const NodeSet& L, const NodeSet& R,
             std::shared_ptr<const std::vector<double>> table) override {
    service_->cache_.Put(Key(L, R),
                         std::make_shared<CachedTable>(std::move(table)));
  }

 private:
  CacheKey Key(const NodeSet& L, const NodeSet& R) const {
    CacheKey key = service_->BaseKey(CachePayload::kEdgeTable);
    key.d = service_->d_;
    key.set_a = std::make_shared<const std::vector<ExtNodeId>>(L.nodes());
    key.set_b = std::make_shared<const std::vector<ExtNodeId>>(R.nodes());
    key.digest_a = DigestNodes(*key.set_a);
    key.digest_b = DigestNodes(*key.set_b);
    return key;
  }

  DhtJoinService* service_;
};

DhtJoinService::DhtJoinService(const Graph& g, const DhtParams& params, int d,
                               Options options)
    : g_(g),
      params_(params),
      d_(d),
      options_(options),
      graph_fp_(GraphFingerprint(g)),
      per_query_state_budget_(AutotuneStateBudgetBytes(g.num_nodes())),
      cache_(ScoreCache::Options{
          .max_bytes = options.cache_budget_bytes == kAutotuneBudget
                           ? AutotuneStateBudgetBytes(g.num_nodes())
                           : options.cache_budget_bytes,
          .num_shards = options.cache_shards,
          .admission_bypass_bytes = options.cache_admission_bypass_bytes}),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : ThreadPool::DefaultThreadCount()),
      admission_(options.admission),
      snapshots_(std::make_unique<SnapshotAdapter>(this)),
      tables_(std::make_unique<TableAdapter>(this)),
      clock_(options.clock != nullptr ? options.clock
                                      : obs::SystemClock::Get()),
      slow_log_(options.slow_query_capacity),
      m_queries_twoway_(metrics_.GetCounter("serve.query.twoway")),
      m_queries_nway_(metrics_.GetCounter("serve.query.nway")),
      m_query_errors_(metrics_.GetCounter("serve.query.errors")),
      m_query_degraded_(metrics_.GetCounter("serve.query.degraded")),
      m_query_cancelled_(metrics_.GetCounter("serve.query.cancelled")),
      m_targets_warm_(metrics_.GetCounter("serve.targets.warm")),
      m_targets_cold_(metrics_.GetCounter("serve.targets.cold")),
      m_state_hits_(metrics_.GetCounter("serve.state.hits")),
      m_state_misses_(metrics_.GetCounter("serve.state.misses")),
      m_walk_steps_(metrics_.GetCounter("serve.walk_steps")),
      m_deepen_rounds_(metrics_.GetCounter("serve.deepen.rounds")),
      h_query_latency_(metrics_.GetHistogram("serve.query.latency_ns")),
      h_deepen_frontier_(metrics_.GetHistogram("serve.deepen.frontier")) {
  pool_.EnableMetrics(&metrics_, clock_, "serve.pool");
}

DhtJoinService::DhtJoinService(const Graph& g, const DhtParams& params, int d)
    : DhtJoinService(g, params, d, Options()) {}

DhtJoinService::~DhtJoinService() { Drain(); }

void DhtJoinService::Drain() { pool_.Wait(); }

CacheKey DhtJoinService::BaseKey(CachePayload kind) const {
  CacheKey key;
  key.graph_fp = graph_fp_;
  key.kind = kind;
  key.params = params_;
  return key;
}

Result<std::vector<ScoredPair>> DhtJoinService::TwoWay(const NodeSet& P,
                                                       const NodeSet& Q,
                                                       std::size_t k,
                                                       QueryStats* stats,
                                                       const ExecContext* exec) {
  QueryStats local;
  QueryStats* qs = stats != nullptr ? stats : &local;
  const int64_t start_ns = clock_->NowNanos();
  // Tracing rides on the ExecContext so the engines need no extra
  // parameter; a caller without one gets a service-local context for
  // the duration of the run (its checks always pass — no deadline, no
  // token — so answers are unchanged). The trace pointer is detached
  // before the trace goes out of scope.
  obs::Trace trace_storage(clock_);
  obs::Trace* trace = nullptr;
  ExecContext local_exec;
  const ExecContext* run_exec = exec;
  if (obs::kEnabled && options_.trace_queries) {
    trace = &trace_storage;
    if (run_exec == nullptr) run_exec = &local_exec;
    run_exec->set_trace(trace);
  }
  Result<std::vector<ScoredPair>> result =
      Status::Internal("serve: unreachable");
  {
    obs::ScopedSpan root(trace, "query.twoway");
    root.SetAttr("p", static_cast<int64_t>(P.size()));
    root.SetAttr("q", static_cast<int64_t>(Q.size()));
    root.SetAttr("k", static_cast<int64_t>(k));
    result = RunTwoWay(P, Q, k, qs, run_exec);
  }
  if (run_exec != nullptr) run_exec->set_trace(nullptr);
  RecordOutcome(result.status(), *qs, run_exec);
  m_queries_twoway_->Increment();
  FinishQuery("twoway", start_ns, result.status(), *qs, trace);
  return result;
}

void DhtJoinService::RecordOutcome(const Status& status, const QueryStats& qs,
                                   const ExecContext* exec) {
  if (status.code() == StatusCode::kCancelled) {
    stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (status.ok() && qs.join.partial.degraded) {
    stat_degraded_.fetch_add(1, std::memory_order_relaxed);
    if (exec != nullptr &&
        exec->stop_code() == StatusCode::kResourceExhausted) {
      stat_effort_.fetch_add(1, std::memory_order_relaxed);
    } else {
      stat_deadline_.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

ServiceStats DhtJoinService::service_stats() const {
  ServiceStats s;
  s.admission = admission_.stats();
  s.degraded = stat_degraded_.load(std::memory_order_relaxed);
  s.cancelled = stat_cancelled_.load(std::memory_order_relaxed);
  s.deadline_exceeded = stat_deadline_.load(std::memory_order_relaxed);
  s.effort_exhausted = stat_effort_.load(std::memory_order_relaxed);
  s.exceptions = stat_exceptions_.load(std::memory_order_relaxed);
  return s;
}

void DhtJoinService::FinishQuery(const char* kind, int64_t start_ns,
                                 const Status& status, QueryStats& qs,
                                 obs::Trace* trace) {
  const int64_t latency_ns = clock_->NowNanos() - start_ns;
  qs.seconds = static_cast<double>(latency_ns) * 1e-9;
  h_query_latency_->Record(latency_ns);
  if (!status.ok()) m_query_errors_->Increment();
  if (status.code() == StatusCode::kCancelled) m_query_cancelled_->Increment();
  if (status.ok() && qs.join.partial.degraded) m_query_degraded_->Increment();
  m_targets_warm_->Add(qs.warm_targets);
  m_targets_cold_->Add(qs.cold_targets);
  m_state_hits_->Add(qs.join.state_hits);
  m_state_misses_->Add(qs.join.state_misses);
  m_walk_steps_->Add(qs.join.walk_steps);
  // One live_per_iteration entry per completed deepening round (the
  // initial entry is the admission frontier): per-level visibility
  // without touching the engines' hot loops.
  m_deepen_rounds_->Add(
      static_cast<int64_t>(qs.join.live_per_iteration.size()));
  for (const int64_t frontier : qs.join.live_per_iteration) {
    h_deepen_frontier_->Record(frontier);
  }
  if (trace != nullptr) {
    qs.trace_spans = trace->num_spans();
    qs.trace_rounds = trace->CountSpans("round");
    qs.trace_blocks_run = trace->SumAttr("blocks");
    qs.trace_lanes_packed = trace->SumAttr("lanes");
    qs.trace_bytes_touched = trace->SumAttr("bytes");
    if (options_.slow_query_nanos > 0 &&
        latency_ns >= options_.slow_query_nanos) {
      slow_log_.Record(kind, latency_ns, trace->ToJson());
    }
  }
}

obs::MetricsSnapshot DhtJoinService::SnapshotMetrics() {
  // Gauges mirror state owned elsewhere (cache shards, admission
  // controller, service atomics); refresh them at snapshot time
  // instead of double-counting on the query path.
  const CacheStats cs = cache_stats();
  metrics_.GetGauge("serve.cache.hits")->Set(static_cast<double>(cs.hits));
  metrics_.GetGauge("serve.cache.misses")->Set(static_cast<double>(cs.misses));
  metrics_.GetGauge("serve.cache.insertions")
      ->Set(static_cast<double>(cs.insertions));
  metrics_.GetGauge("serve.cache.evictions")
      ->Set(static_cast<double>(cs.evictions));
  metrics_.GetGauge("serve.cache.admission_rejects")
      ->Set(static_cast<double>(cs.admission_rejects));
  metrics_.GetGauge("serve.cache.resident_bytes")
      ->Set(static_cast<double>(cs.resident_bytes));
  metrics_.GetGauge("serve.cache.entries")
      ->Set(static_cast<double>(cs.entries));
  const ServiceStats ss = service_stats();
  metrics_.GetGauge("serve.admission.admitted")
      ->Set(static_cast<double>(ss.admission.admitted));
  metrics_.GetGauge("serve.admission.shed_capacity")
      ->Set(static_cast<double>(ss.admission.shed_capacity));
  metrics_.GetGauge("serve.admission.shed_cost")
      ->Set(static_cast<double>(ss.admission.shed_cost));
  metrics_.GetGauge("serve.admission.shed_expired")
      ->Set(static_cast<double>(ss.admission.shed_expired));
  metrics_.GetGauge("serve.lifecycle.degraded")
      ->Set(static_cast<double>(ss.degraded));
  metrics_.GetGauge("serve.lifecycle.cancelled")
      ->Set(static_cast<double>(ss.cancelled));
  metrics_.GetGauge("serve.lifecycle.deadline_exceeded")
      ->Set(static_cast<double>(ss.deadline_exceeded));
  metrics_.GetGauge("serve.lifecycle.effort_exhausted")
      ->Set(static_cast<double>(ss.effort_exhausted));
  metrics_.GetGauge("serve.lifecycle.exceptions")
      ->Set(static_cast<double>(ss.exceptions));
  metrics_.GetGauge("serve.slow_queries.total")
      ->Set(static_cast<double>(slow_log_.total_recorded()));
  return metrics_.Snapshot();
}

Status DhtJoinService::SaveWarmState(const std::string& path,
                                     const persist::CheckpointHook& hook) {
  persist::SnapshotFile file;
  file.graph_fp = graph_fp_;
  file.params_fp = cluster::ParamsFingerprint(params_, d_);
  std::vector<ScoreCache::ExportedEntry> entries = cache_.Export();
  file.sections.reserve(entries.size());
  for (const ScoreCache::ExportedEntry& e : entries) {
    std::vector<uint8_t> payload = EncodeCacheRecord(e.key, *e.entry);
    // Empty = not snapshotable (e.g. an abandoned Y-bound sweep).
    if (payload.empty()) continue;
    file.sections.push_back(persist::SnapshotSection{
        SectionKindFor(e.key.kind), std::move(payload)});
  }
  const std::vector<uint8_t> bytes = persist::EncodeSnapshot(file);
  const Status status = persist::WriteFileAtomic(path, bytes, hook);
  if (!status.ok()) {
    persist_metrics_.checkpoint_failures->Increment();
    return status;
  }
  persist_metrics_.checkpoint_writes->Increment();
  persist_metrics_.checkpoint_bytes->Add(static_cast<int64_t>(bytes.size()));
  return Status::OK();
}

Result<int64_t> DhtJoinService::LoadWarmState(const std::string& path) {
  Result<std::vector<uint8_t>> bytes = persist::ReadFileBytes(path);
  if (!bytes.ok()) return bytes.status();  // kNotFound = ordinary cold start
  Result<persist::SnapshotFile> decoded = persist::DecodeSnapshot(*bytes);
  if (!decoded.ok()) {
    persist_metrics_.restore_rejects->Increment();
    return decoded.status();
  }
  if (decoded->graph_fp != graph_fp_ ||
      decoded->params_fp != cluster::ParamsFingerprint(params_, d_)) {
    // Someone else's snapshot (different graph, layout epoch, or
    // measure): silently cold — restoring it could only break the
    // byte-identity invariant the cache keying protects.
    persist_metrics_.restore_rejects->Increment();
    return int64_t{0};
  }
  int64_t restored = 0;
  for (const persist::SnapshotSection& section : decoded->sections) {
    Result<DecodedCacheRecord> record =
        DecodeCacheRecord(section.kind, section.payload, graph_fp_, params_);
    if (!record.ok()) {
      // Section checksums passed but the record is structurally bad:
      // an encoder/decoder version skew. Fail closed.
      persist_metrics_.restore_rejects->Increment();
      return record.status();
    }
    const CachePayload kind = record->key.kind;
    const CacheEntry* incoming = record->entry.get();
    // Same arbitration as live write-backs: deepest-wins for
    // level-carrying walk states, resident-wins for whole tables (a
    // live entry is never staler than a checkpointed one).
    cache_.PutIf(record->key, record->entry,
                 [kind, incoming](const CacheEntry& existing) {
                   switch (kind) {
                     case CachePayload::kBackwardSnapshot:
                       return static_cast<const CachedBackwardSnapshot&>(
                                  existing).state.level >=
                              static_cast<const CachedBackwardSnapshot*>(
                                  incoming)->state.level;
                     case CachePayload::kBatchState:
                       return static_cast<const CachedBatchState&>(existing)
                                  .snap.level >=
                              static_cast<const CachedBatchState*>(incoming)
                                  ->snap.level;
                     default:
                       return true;
                   }
                 });
    ++restored;
  }
  persist_metrics_.restore_hits->Add(restored);
  return restored;
}

/// The cache-aware B-IDJ (see the file comment of session.h and
/// DESIGN.md §6 for why the warm path is byte-identical to cold):
/// targets deepen through the usual l = 1, 2, 4, ..., d schedule, but a
/// target whose imported state already sits at level >= l just reads
/// its stored row — the prune test uses the remainder bound of the
/// ACTUAL level, which is valid (tighter) by monotonicity (§1).
///
/// MAINTENANCE: this is a second copy of join2/b_idj.cc's Algorithm-2
/// schedule (same offer guard `s > beta`, same `q_upper >= tk` prune,
/// same FinalizePairs), deliberately diverging only in the cache
/// import/export, the mixed-level scoring, keeping pruned targets'
/// states, and saving the final pass. Any change to B-IDJ's schedule
/// must be mirrored here — including the lifecycle logic (level-
/// boundary checks, anytime snapshot, level-cut degradation); the
/// `warm == cold == BIdjJoin::Run` byte-identity gates in
/// tests/serve_test.cc and bench_serving (CI) fail loudly on drift.
/// Folding both into one parameterized schedule is a ROADMAP item.
Result<std::vector<ScoredPair>> DhtJoinService::RunTwoWay(
    const NodeSet& P, const NodeSet& Q, std::size_t k, QueryStats* out,
    const ExecContext* exec) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g_, params_, d_, P, Q, k));
  obs::Trace* const trace = obs::TraceOf(exec);
  QueryStats qs;

  auto p_nodes = std::make_shared<const std::vector<ExtNodeId>>(P.nodes());
  auto q_nodes = std::make_shared<const std::vector<ExtNodeId>>(Q.nodes());
  const uint64_t p_digest = DigestNodes(*p_nodes);

  // Y-bound table: cached whole per (P, Q, d). A construction abandoned
  // by a cooperative stop is NEVER cached (the table would be invalid
  // for every later query); the run then degrades with the X fallback.
  std::shared_ptr<const CachedYBound> ybound;
  if (options_.bound == UpperBoundKind::kY) {
    obs::ScopedSpan ybound_span(trace, "ybound");
    CacheKey ykey = BaseKey(CachePayload::kYBound);
    ykey.d = d_;
    ykey.set_a = p_nodes;
    ykey.set_b = q_nodes;
    ykey.digest_a = p_digest;
    ykey.digest_b = DigestNodes(*q_nodes);
    ybound = cache_.GetAs<CachedYBound>(ykey);
    if (ybound == nullptr) {
      auto fresh = std::make_shared<CachedYBound>(
          YBoundTable(g_, params_, d_, P, Q, exec));
      fresh->num_targets_hint = Q.size();
      qs.join.walk_steps += fresh->table.edges_relaxed();
      if (fresh->table.complete()) cache_.Put(ykey, fresh);
      ybound = std::move(fresh);
    } else {
      qs.ybound_cached = true;
    }
    ybound_span.SetAttr("cached", int64_t{qs.ybound_cached ? 1 : 0});
  }
  const bool y_usable = ybound != nullptr && ybound->table.complete();
  auto remainder = [&](int l, std::size_t qi) {
    return y_usable ? ybound->table.Bound(l, qi) : params_.XBound(l);
  };

  auto batch_key = [&](std::size_t qi) {
    CacheKey key = BaseKey(CachePayload::kBatchState);
    key.seed = Q[qi];
    key.set_a = p_nodes;
    key.digest_a = p_digest;
    return key;
  };

  // Import each target's deepest cached walk state (level <= d, row
  // pinned to exactly this P — the key guarantees both).
  BackwardWalkerBatch batch(g_, {.num_threads = 1});
  BackwardBatchStates states(Q.size(), per_query_state_budget_);
  if (exec != nullptr && exec->commit_fault) {
    states.set_commit_fault(exec->commit_fault);
  }
  std::vector<int> imported_level(Q.size(), 0);
  {
    obs::ScopedSpan import_span(trace, "import");
    for (std::size_t qi = 0; qi < Q.size(); ++qi) {
      auto entry = cache_.GetAs<CachedBatchState>(batch_key(qi));
      if (entry != nullptr && entry->snap.level <= d_ &&
          entry->snap.row.size() == P.size() &&
          states.Import(qi, entry->snap)) {
        imported_level[qi] = entry->snap.level;
        ++qs.warm_targets;
      }
    }
    qs.cold_targets = static_cast<int64_t>(Q.size()) - qs.warm_targets;
    import_span.SetAttr("warm", qs.warm_targets);
    import_span.SetAttr("cold", qs.cold_targets);
  }

  int64_t batch_edges_seen = 0;
  int64_t batch_barriers_seen = 0;
  // Advances the subset of live targets still below level l, then hands
  // EVERY live target's row to score_row(live_pos, row, row_level):
  // advanced targets through the batch consume callback (at exactly l),
  // already-deep targets straight from their stored rows (at their own
  // level >= l — the valid, tighter bound).
  // Returns false when a cooperative stop interrupted the round — the
  // round's partial output must then be DISCARDED (mirrors BIdjJoin).
  auto walk_live = [&](const std::vector<std::size_t>& live, int l, bool save,
                       auto&& score_row) {
    std::vector<char> advanced(live.size(), 0);
    std::vector<std::size_t> need_pos;
    std::vector<ExtNodeId> need_nodes;
    std::vector<std::size_t> need_slots;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (states.level(live[i]) < l) {
        advanced[i] = 1;
        need_pos.push_back(i);
        need_nodes.push_back(Q[live[i]]);
        need_slots.push_back(live[i]);
      }
    }
    bool interrupted = false;
    if (!need_nodes.empty()) {
      qs.join.walks_started += batch.AdvanceChunked(
          params_, l, need_nodes, need_slots, *p_nodes, states,
          [&](std::size_t i, const double* row) {
            score_row(need_pos[i], row, l);
          },
          save, /*max_targets_per_run=*/0, exec, &interrupted);
    }
    if (!interrupted) {
      std::vector<double> warm_row;
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (!advanced[i]) {
          // Stored rows are beta-exclusive deltas (BackwardBatchSnapshot
          // semantics); add the floor back exactly as the engine does at
          // output, so a warm row is bit-identical to the advanced one.
          std::span<const double> delta = states.Row(live[i]);
          warm_row.assign(delta.begin(), delta.end());
          for (double& cell : warm_row) cell += params_.beta;
          score_row(i, warm_row.data(), states.level(live[i]));
        }
      }
    }
    qs.join.walk_steps += batch.edges_relaxed() - batch_edges_seen;
    batch_edges_seen = batch.edges_relaxed();
    qs.join.barriers_per_iteration.push_back(batch.scheduler_barriers() -
                                             batch_barriers_seen);
    batch_barriers_seen = batch.scheduler_barriers();
    return !interrupted;
  };

  std::vector<std::size_t> live(Q.size());
  for (std::size_t qi = 0; qi < Q.size(); ++qi) live[qi] = qi;
  qs.join.live_per_iteration.push_back(static_cast<int64_t>(live.size()));

  // Anytime state, mirroring BIdjJoin (DESIGN.md §9): the top-k
  // snapshot of the last COMPLETED deepening level, its level, and its
  // eps bound (max U_l^+ over the targets live in that level).
  std::vector<ScoredPair> anytime;
  int cut_level = 0;
  double cut_eps = 0.0;
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    cut_eps = std::max(cut_eps, remainder(0, qi));
  }
  // Write back every state that got deeper than what the cache gave
  // us — including on a degraded run: every written snapshot is a
  // COMPLETED level (interrupted blocks keep their previous one), so
  // it is bit-safe for any later query. PutIf keeps the deepest walk
  // under the shard lock when concurrent sessions race on one target
  // (DESIGN.md §6).
  auto write_back = [&] {
    obs::ScopedSpan wb_span(trace, "write_back");
    int64_t exported = 0;
    for (std::size_t qi = 0; qi < Q.size(); ++qi) {
      if (states.level(qi) <= imported_level[qi]) continue;
      BackwardBatchSnapshot snap;
      if (states.Take(qi, &snap)) {
        const int level = snap.level;
        cache_.PutIf(batch_key(qi),
                     std::make_shared<CachedBatchState>(std::move(snap)),
                     [level](const CacheEntry& existing) {
                       return static_cast<const CachedBatchState&>(existing)
                                  .snap.level >= level;
                     });
        ++exported;
      }
    }
    wb_span.SetAttr("exported", exported);
  };
  auto finish_stats = [&] {
    qs.join.state_hits = states.hits();
    qs.join.state_misses = qs.join.walks_started;
    qs.join.state_evictions = states.evictions();
    qs.join.state_resident_bytes = static_cast<int64_t>(states.bytes());
    qs.join.pool_barriers = batch.scheduler_barriers();
    if (exec != nullptr) qs.join.lifecycle_checks = exec->blocks_checked();
  };
  auto degrade = [&](StatusCode code) -> Result<std::vector<ScoredPair>> {
    write_back();
    finish_stats();
    if (code == StatusCode::kCancelled) {
      if (out != nullptr) *out = std::move(qs);
      return Status::Cancelled("serve: query cancelled");
    }
    qs.join.partial = PartialInfo{true, cut_level, cut_eps};
    std::vector<ScoredPair> result = anytime;
    FinalizePairs(result, k);
    if (out != nullptr) *out = std::move(qs);
    return result;
  };
  // An interrupted Y sweep leaves nothing to return: degrade at level 0.
  if (ybound != nullptr && !ybound->table.complete()) {
    return degrade(exec->stop_code());
  }

  for (int l = 1; l < d_; l *= 2) {
    if (exec != nullptr) {
      StatusCode code = exec->Check();
      if (code != StatusCode::kOk) return degrade(code);
    }
    obs::ScopedSpan round_span(trace, "round");
    round_span.SetAttr("level", int64_t{l});
    round_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
    PairTopK bounds(k);
    std::vector<double> q_upper(live.size());
    bool completed =
        walk_live(live, l, /*save=*/true,
                  [&](std::size_t i, const double* row, int row_level) {
                    ExtNodeId q = Q[live[i]];
                    double pmax = params_.beta;
                    for (std::size_t pi = 0; pi < P.size(); ++pi) {
                      ExtNodeId p = P[pi];
                      if (p == q) continue;
                      double s = row[pi];
                      if (s > params_.beta) {
                        bounds.Offer(s, ScoredPair{p.value(), q.value(), s});
                        if (s > pmax) pmax = s;
                      }
                    }
                    q_upper[i] = pmax + remainder(row_level, live[i]);
                  });
    if (!completed) return degrade(exec->stop_code());
    // Round l completed: refresh the anytime snapshot before pruning.
    // Warm rows scored at deeper levels only tighten (U is monotone
    // decreasing in l), so max U_l^+ over the round's live targets
    // bounds every snapshot pair.
    cut_level = l;
    cut_eps = 0.0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      cut_eps = std::max(cut_eps, remainder(l, live[i]));
    }
    {
      PairTopK snapshot = bounds;
      anytime.clear();
      for (auto& entry : snapshot.TakeSortedDescending()) {
        anytime.push_back(entry.item);
      }
    }
    if (exec != nullptr && exec->on_level) exec->on_level(l);
    double tk = bounds.Threshold();
    std::vector<std::size_t> survivors;
    survivors.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      // Pruned targets KEEP their states — they are this query's gift
      // to the cache, not dead weight (contrast BIdjJoin, which drops
      // them because its states die with the run).
      if (q_upper[i] >= tk) survivors.push_back(live[i]);
    }
    qs.join.pruned_fraction_per_iteration.push_back(
        1.0 - static_cast<double>(survivors.size()) /
                  static_cast<double>(Q.size()));
    live.swap(survivors);
    qs.join.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
    round_span.SetAttr("survivors", static_cast<int64_t>(live.size()));
    // Feedback autotuning between rounds: the per-query budget came
    // from AutotuneStateBudgetBytes, so fold the observed hit/eviction
    // counters back into it (evicted states restart bit-identically —
    // the warm == cold byte-identity gates are unaffected).
    states.Retune();
  }

  // Final exact-d pass. States are saved (unlike BIdjJoin's final pass)
  // because a level-d row is the best possible warm start: an exactly
  // repeated query reads every row with zero walk steps.
  if (exec != nullptr) {
    StatusCode code = exec->Check();
    if (code != StatusCode::kOk) return degrade(code);
  }
  PairTopK best(k);
  if (!live.empty()) {
    obs::ScopedSpan final_span(trace, "final");
    final_span.SetAttr("level", int64_t{d_});
    final_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
    bool completed =
        walk_live(live, d_, /*save=*/true,
                  [&](std::size_t i, const double* row, int /*row_level*/) {
                    ExtNodeId q = Q[live[i]];
                    for (std::size_t pi = 0; pi < P.size(); ++pi) {
                      ExtNodeId p = P[pi];
                      if (p == q) continue;
                      double s = row[pi];
                      if (s > params_.beta) {
                        best.Offer(s, ScoredPair{p.value(), q.value(), s});
                      }
                    }
                  });
    if (!completed) return degrade(exec->stop_code());
  }

  write_back();
  finish_stats();
  qs.join.partial = PartialInfo{false, d_, 0.0};

  std::vector<ScoredPair> result;
  for (auto& entry : best.TakeSortedDescending()) {
    result.push_back(entry.item);
  }
  FinalizePairs(result, k);
  if (out != nullptr) *out = std::move(qs);
  return result;
}

Result<std::vector<TupleAnswer>> DhtJoinService::Nway(const QueryGraph& query,
                                                      const Aggregate& f,
                                                      std::size_t k,
                                                      NwayAlgo algo,
                                                      QueryStats* out) {
  QueryStats local;
  QueryStats* qs = out != nullptr ? out : &local;
  *qs = QueryStats{};
  const int64_t start_ns = clock_->NowNanos();
  // N-way tracing is root-span-only for now: the n-way executors do
  // not take an ExecContext yet (no degrade path — DESIGN.md §9), so
  // there is nothing to hang engine spans on.
  obs::Trace trace_storage(clock_);
  obs::Trace* trace = nullptr;
  if (obs::kEnabled && options_.trace_queries) trace = &trace_storage;
  Result<std::vector<TupleAnswer>> result =
      Status::Internal("nway: unreachable");
  {
    obs::ScopedSpan root(trace, "query.nway");
    root.SetAttr("k", static_cast<int64_t>(k));
    if (algo == NwayAlgo::kNestedLoop) {
      NestedLoopJoin join(NestedLoopJoin::Options{.tables = tables_.get()});
      result = join.Run(g_, params_, d_, query, f, k);
      qs->table_hits = join.stats().table_hits;
    } else {
      PartialJoin join(PartialJoin::Options{.incremental = true,
                                            .bound = options_.bound,
                                            .snapshots = snapshots_.get()});
      result = join.Run(g_, params_, d_, query, f, k);
    }
  }
  m_queries_nway_->Increment();
  FinishQuery("nway", start_ns, result.status(), *qs, trace);
  return result;
}

std::future<Result<std::vector<ScoredPair>>> DhtJoinService::SubmitTwoWay(
    NodeSet P, NodeSet Q, std::size_t k, QueryOptions qopts) {
  auto promise =
      std::make_shared<std::promise<Result<std::vector<ScoredPair>>>>();
  auto future = promise->get_future();
  // Admission runs on the SUBMITTING thread, before enqueue: a shed
  // query never occupies a pool slot, and the caller learns
  // immediately (the future is already resolved when Submit returns).
  const int64_t est =
      EstimateTwoWayCost(g_, P, Q, d_, admission_.options().sample_size);
  Status admitted = admission_.Admit(est);
  if (!admitted.ok()) {
    promise->set_value(std::move(admitted));
    return future;
  }
  pool_.Submit([this, promise, P = std::move(P), Q = std::move(Q), k,
                qopts = std::move(qopts)] {
    const int64_t start_ns = clock_->NowNanos();
    const ExecContext* exec = qopts.exec.get();
    // Deadline already expired while queued: count the shed; the run
    // below observes the sticky stop at its first check and degrades
    // at level 0 without walking anything.
    if (exec != nullptr && exec->Check() == StatusCode::kDeadlineExceeded) {
      admission_.RecordExpired();
    }
    Result<std::vector<ScoredPair>> result =
        Status::Internal("serve: unreachable");
    try {
      result = TwoWay(P, Q, k, qopts.stats, exec);
    } catch (const std::exception& e) {
      stat_exceptions_.fetch_add(1, std::memory_order_relaxed);
      result = Status::Internal(std::string("serve: worker exception: ") +
                                e.what());
    } catch (...) {
      stat_exceptions_.fetch_add(1, std::memory_order_relaxed);
      result = Status::Internal("serve: worker exception (non-std type)");
    }
    admission_.Finish((clock_->NowNanos() - start_ns) / 1000);
    promise->set_value(std::move(result));
  });
  return future;
}

std::future<Result<std::vector<TupleAnswer>>> DhtJoinService::SubmitNway(
    QueryGraph query, const Aggregate& f, std::size_t k, NwayAlgo algo,
    QueryOptions qopts) {
  auto promise =
      std::make_shared<std::promise<Result<std::vector<TupleAnswer>>>>();
  auto future = promise->get_future();
  // No cheap cost estimate exists for an arbitrary query graph yet, so
  // n-way admission uses the in-flight cap only.
  Status admitted = admission_.Admit(/*estimated_cost=*/0);
  if (!admitted.ok()) {
    promise->set_value(std::move(admitted));
    return future;
  }
  pool_.Submit([this, promise, query = std::move(query), &f, k, algo,
                qopts = std::move(qopts)] {
    const int64_t start_ns = clock_->NowNanos();
    const ExecContext* exec = qopts.exec.get();
    // The n-way executors have no degrade path yet, so an expired or
    // cancelled queued query is shed whole at dequeue.
    if (exec != nullptr) {
      StatusCode code = exec->Check();
      if (code != StatusCode::kOk) {
        if (code == StatusCode::kDeadlineExceeded) {
          admission_.RecordExpired();
          stat_deadline_.fetch_add(1, std::memory_order_relaxed);
        } else if (code == StatusCode::kCancelled) {
          stat_cancelled_.fetch_add(1, std::memory_order_relaxed);
        }
        admission_.Finish(0);
        promise->set_value(
            code == StatusCode::kCancelled
                ? Status::Cancelled("nway: cancelled while queued")
                : Status::DeadlineExceeded(
                      "nway: deadline expired while queued"));
        return;
      }
    }
    Result<std::vector<TupleAnswer>> result =
        Status::Internal("nway: unreachable");
    try {
      result = Nway(query, f, k, algo, qopts.stats);
    } catch (const std::exception& e) {
      stat_exceptions_.fetch_add(1, std::memory_order_relaxed);
      result = Status::Internal(std::string("nway: worker exception: ") +
                                e.what());
    } catch (...) {
      stat_exceptions_.fetch_add(1, std::memory_order_relaxed);
      result = Status::Internal("nway: worker exception (non-std type)");
    }
    admission_.Finish((clock_->NowNanos() - start_ns) / 1000);
    promise->set_value(std::move(result));
  });
  return future;
}

}  // namespace dhtjoin::serve
