#include "serve/session.h"

#include <algorithm>
#include <utility>

#include "dht/backward_batch.h"
#include "dht/walker_state.h"
#include "util/timer.h"

namespace dhtjoin::serve {

/// BackwardSnapshotProvider over the cache: scalar walk snapshots are
/// keyed by target only (besides graph/params), so ANY query — 2-way or
/// n-way, any P/Q — that deepens the same target resumes the deepest
/// walk any earlier query left behind.
class DhtJoinService::SnapshotAdapter final : public BackwardSnapshotProvider {
 public:
  explicit SnapshotAdapter(DhtJoinService* service) : service_(service) {}

  std::shared_ptr<const BackwardWalkerState> Fetch(NodeId target) override {
    CacheKey key = service_->BaseKey(CachePayload::kBackwardSnapshot);
    key.seed = target;
    auto entry = service_->cache_.GetAs<CachedBackwardSnapshot>(key);
    if (entry == nullptr) return nullptr;
    // Aliasing shared_ptr: the state lives exactly as long as the entry.
    return {entry, &entry->state};
  }

  void Store(NodeId target, BackwardWalkerState state) override {
    CacheKey key = service_->BaseKey(CachePayload::kBackwardSnapshot);
    key.seed = target;
    const int level = state.level;
    // Never replace a deeper walk with a shallower one: depth only ever
    // helps the next query, and both are byte-safe to resume. PutIf
    // decides under the shard lock, so racing sessions converge on the
    // deepest walk either of them did (DESIGN.md §6).
    service_->cache_.PutIf(
        key, std::make_shared<CachedBackwardSnapshot>(std::move(state)),
        [level](const serve::CacheEntry& existing) {
          return static_cast<const CachedBackwardSnapshot&>(existing)
                     .state.level >= level;
        });
  }

  bool WantsLevel(NodeId target, int level) override {
    CacheKey key = service_->BaseKey(CachePayload::kBackwardSnapshot);
    key.seed = target;
    auto existing = service_->cache_.PeekAs<CachedBackwardSnapshot>(key);
    return existing == nullptr || existing->state.level < level;
  }

 private:
  DhtJoinService* service_;
};

/// EdgeScoreTableProvider over the cache: NL's per-edge |L| x |R| score
/// tables, keyed by both operand sets and d.
class DhtJoinService::TableAdapter final : public EdgeScoreTableProvider {
 public:
  explicit TableAdapter(DhtJoinService* service) : service_(service) {}

  std::shared_ptr<const std::vector<double>> Fetch(
      const NodeSet& L, const NodeSet& R) override {
    auto entry = service_->cache_.GetAs<CachedTable>(Key(L, R));
    return entry == nullptr ? nullptr : entry->table;
  }

  void Store(const NodeSet& L, const NodeSet& R,
             std::shared_ptr<const std::vector<double>> table) override {
    service_->cache_.Put(Key(L, R),
                         std::make_shared<CachedTable>(std::move(table)));
  }

 private:
  CacheKey Key(const NodeSet& L, const NodeSet& R) const {
    CacheKey key = service_->BaseKey(CachePayload::kEdgeTable);
    key.d = service_->d_;
    key.set_a = std::make_shared<const std::vector<NodeId>>(L.nodes());
    key.set_b = std::make_shared<const std::vector<NodeId>>(R.nodes());
    key.digest_a = DigestNodes(*key.set_a);
    key.digest_b = DigestNodes(*key.set_b);
    return key;
  }

  DhtJoinService* service_;
};

DhtJoinService::DhtJoinService(const Graph& g, const DhtParams& params, int d,
                               Options options)
    : g_(g),
      params_(params),
      d_(d),
      options_(options),
      graph_fp_(GraphFingerprint(g)),
      per_query_state_budget_(AutotuneStateBudgetBytes(g.num_nodes())),
      cache_(ScoreCache::Options{
          .max_bytes = options.cache_budget_bytes == kAutotuneBudget
                           ? AutotuneStateBudgetBytes(g.num_nodes())
                           : options.cache_budget_bytes,
          .num_shards = options.cache_shards,
          .admission_bypass_bytes = options.cache_admission_bypass_bytes}),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : ThreadPool::DefaultThreadCount()),
      snapshots_(std::make_unique<SnapshotAdapter>(this)),
      tables_(std::make_unique<TableAdapter>(this)) {}

DhtJoinService::DhtJoinService(const Graph& g, const DhtParams& params, int d)
    : DhtJoinService(g, params, d, Options()) {}

DhtJoinService::~DhtJoinService() { Drain(); }

void DhtJoinService::Drain() { pool_.Wait(); }

CacheKey DhtJoinService::BaseKey(CachePayload kind) const {
  CacheKey key;
  key.graph_fp = graph_fp_;
  key.kind = kind;
  key.params = params_;
  return key;
}

Result<std::vector<ScoredPair>> DhtJoinService::TwoWay(const NodeSet& P,
                                                       const NodeSet& Q,
                                                       std::size_t k,
                                                       QueryStats* stats) {
  return RunTwoWay(P, Q, k, stats);
}

/// The cache-aware B-IDJ (see the file comment of session.h and
/// DESIGN.md §6 for why the warm path is byte-identical to cold):
/// targets deepen through the usual l = 1, 2, 4, ..., d schedule, but a
/// target whose imported state already sits at level >= l just reads
/// its stored row — the prune test uses the remainder bound of the
/// ACTUAL level, which is valid (tighter) by monotonicity (§1).
///
/// MAINTENANCE: this is a second copy of join2/b_idj.cc's Algorithm-2
/// schedule (same offer guard `s > beta`, same `q_upper >= tk` prune,
/// same FinalizePairs), deliberately diverging only in the cache
/// import/export, the mixed-level scoring, keeping pruned targets'
/// states, and saving the final pass. Any change to B-IDJ's schedule
/// must be mirrored here; the `warm == cold == BIdjJoin::Run`
/// byte-identity gates in tests/serve_test.cc and bench_serving (CI)
/// fail loudly on drift. Folding both into one parameterized schedule
/// is a ROADMAP item.
Result<std::vector<ScoredPair>> DhtJoinService::RunTwoWay(const NodeSet& P,
                                                          const NodeSet& Q,
                                                          std::size_t k,
                                                          QueryStats* out) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g_, params_, d_, P, Q, k));
  WallTimer timer;
  QueryStats qs;

  auto p_nodes = std::make_shared<const std::vector<NodeId>>(P.nodes());
  auto q_nodes = std::make_shared<const std::vector<NodeId>>(Q.nodes());
  const uint64_t p_digest = DigestNodes(*p_nodes);

  // Y-bound table: cached whole per (P, Q, d).
  std::shared_ptr<const CachedYBound> ybound;
  if (options_.bound == UpperBoundKind::kY) {
    CacheKey ykey = BaseKey(CachePayload::kYBound);
    ykey.d = d_;
    ykey.set_a = p_nodes;
    ykey.set_b = q_nodes;
    ykey.digest_a = p_digest;
    ykey.digest_b = DigestNodes(*q_nodes);
    ybound = cache_.GetAs<CachedYBound>(ykey);
    if (ybound == nullptr) {
      auto fresh = std::make_shared<CachedYBound>(
          YBoundTable(g_, params_, d_, P, Q));
      fresh->num_targets_hint = Q.size();
      qs.join.walk_steps += fresh->table.edges_relaxed();
      cache_.Put(ykey, fresh);
      ybound = std::move(fresh);
    } else {
      qs.ybound_cached = true;
    }
  }
  auto remainder = [&](int l, std::size_t qi) {
    return options_.bound == UpperBoundKind::kY ? ybound->table.Bound(l, qi)
                                                : params_.XBound(l);
  };

  auto batch_key = [&](std::size_t qi) {
    CacheKey key = BaseKey(CachePayload::kBatchState);
    key.seed = Q[qi];
    key.set_a = p_nodes;
    key.digest_a = p_digest;
    return key;
  };

  // Import each target's deepest cached walk state (level <= d, row
  // pinned to exactly this P — the key guarantees both).
  BackwardWalkerBatch batch(g_, {.num_threads = 1});
  BackwardBatchStates states(Q.size(), per_query_state_budget_);
  std::vector<int> imported_level(Q.size(), 0);
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    auto entry = cache_.GetAs<CachedBatchState>(batch_key(qi));
    if (entry != nullptr && entry->snap.level <= d_ &&
        entry->snap.row.size() == P.size() &&
        states.Import(qi, entry->snap)) {
      imported_level[qi] = entry->snap.level;
      ++qs.warm_targets;
    }
  }
  qs.cold_targets = static_cast<int64_t>(Q.size()) - qs.warm_targets;

  int64_t batch_edges_seen = 0;
  int64_t batch_barriers_seen = 0;
  // Advances the subset of live targets still below level l, then hands
  // EVERY live target's row to score_row(live_pos, row, row_level):
  // advanced targets through the batch consume callback (at exactly l),
  // already-deep targets straight from their stored rows (at their own
  // level >= l — the valid, tighter bound).
  auto walk_live = [&](const std::vector<std::size_t>& live, int l, bool save,
                       auto&& score_row) {
    std::vector<char> advanced(live.size(), 0);
    std::vector<std::size_t> need_pos;
    std::vector<NodeId> need_nodes;
    std::vector<std::size_t> need_slots;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (states.level(live[i]) < l) {
        advanced[i] = 1;
        need_pos.push_back(i);
        need_nodes.push_back(Q[live[i]]);
        need_slots.push_back(live[i]);
      }
    }
    if (!need_nodes.empty()) {
      qs.join.walks_started += batch.AdvanceChunked(
          params_, l, need_nodes, need_slots, *p_nodes, states,
          [&](std::size_t i, const double* row) {
            score_row(need_pos[i], row, l);
          },
          save);
    }
    std::vector<double> warm_row;
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (!advanced[i]) {
        // Stored rows are beta-exclusive deltas (BackwardBatchSnapshot
        // semantics); add the floor back exactly as the engine does at
        // output, so a warm row is bit-identical to the advanced one.
        std::span<const double> delta = states.Row(live[i]);
        warm_row.assign(delta.begin(), delta.end());
        for (double& cell : warm_row) cell += params_.beta;
        score_row(i, warm_row.data(), states.level(live[i]));
      }
    }
    qs.join.walk_steps += batch.edges_relaxed() - batch_edges_seen;
    batch_edges_seen = batch.edges_relaxed();
    qs.join.barriers_per_iteration.push_back(batch.scheduler_barriers() -
                                             batch_barriers_seen);
    batch_barriers_seen = batch.scheduler_barriers();
  };

  std::vector<std::size_t> live(Q.size());
  for (std::size_t qi = 0; qi < Q.size(); ++qi) live[qi] = qi;
  qs.join.live_per_iteration.push_back(static_cast<int64_t>(live.size()));

  for (int l = 1; l < d_; l *= 2) {
    PairTopK bounds(k);
    std::vector<double> q_upper(live.size());
    walk_live(live, l, /*save=*/true,
              [&](std::size_t i, const double* row, int row_level) {
                NodeId q = Q[live[i]];
                double pmax = params_.beta;
                for (std::size_t pi = 0; pi < P.size(); ++pi) {
                  NodeId p = P[pi];
                  if (p == q) continue;
                  double s = row[pi];
                  if (s > params_.beta) {
                    bounds.Offer(s, ScoredPair{p, q, s});
                    if (s > pmax) pmax = s;
                  }
                }
                q_upper[i] = pmax + remainder(row_level, live[i]);
              });
    double tk = bounds.Threshold();
    std::vector<std::size_t> survivors;
    survivors.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      // Pruned targets KEEP their states — they are this query's gift
      // to the cache, not dead weight (contrast BIdjJoin, which drops
      // them because its states die with the run).
      if (q_upper[i] >= tk) survivors.push_back(live[i]);
    }
    qs.join.pruned_fraction_per_iteration.push_back(
        1.0 - static_cast<double>(survivors.size()) /
                  static_cast<double>(Q.size()));
    live.swap(survivors);
    qs.join.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
    // Feedback autotuning between rounds: the per-query budget came
    // from AutotuneStateBudgetBytes, so fold the observed hit/eviction
    // counters back into it (evicted states restart bit-identically —
    // the warm == cold byte-identity gates are unaffected).
    states.Retune();
  }

  // Final exact-d pass. States are saved (unlike BIdjJoin's final pass)
  // because a level-d row is the best possible warm start: an exactly
  // repeated query reads every row with zero walk steps.
  PairTopK best(k);
  if (!live.empty()) {
    walk_live(live, d_, /*save=*/true,
              [&](std::size_t i, const double* row, int /*row_level*/) {
                NodeId q = Q[live[i]];
                for (std::size_t pi = 0; pi < P.size(); ++pi) {
                  NodeId p = P[pi];
                  if (p == q) continue;
                  double s = row[pi];
                  if (s > params_.beta) best.Offer(s, ScoredPair{p, q, s});
                }
              });
  }

  // Write back every state that got deeper than what the cache gave
  // us. PutIf keeps the deepest walk under the shard lock when
  // concurrent sessions race on one target (DESIGN.md §6).
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    if (states.level(qi) <= imported_level[qi]) continue;
    BackwardBatchSnapshot snap;
    if (states.Take(qi, &snap)) {
      const int level = snap.level;
      cache_.PutIf(batch_key(qi),
                   std::make_shared<CachedBatchState>(std::move(snap)),
                   [level](const CacheEntry& existing) {
                     return static_cast<const CachedBatchState&>(existing)
                                .snap.level >= level;
                   });
    }
  }

  qs.join.state_hits = states.hits();
  qs.join.state_misses = qs.join.walks_started;
  qs.join.state_evictions = states.evictions();
  qs.join.state_resident_bytes = static_cast<int64_t>(states.bytes());
  qs.join.pool_barriers = batch.scheduler_barriers();

  std::vector<ScoredPair> result;
  for (auto& entry : best.TakeSortedDescending()) {
    result.push_back(entry.item);
  }
  FinalizePairs(result, k);
  qs.seconds = timer.Seconds();
  if (out != nullptr) *out = std::move(qs);
  return result;
}

Result<std::vector<TupleAnswer>> DhtJoinService::Nway(const QueryGraph& query,
                                                      const Aggregate& f,
                                                      std::size_t k,
                                                      NwayAlgo algo,
                                                      QueryStats* out) {
  WallTimer timer;
  QueryStats qs;
  Result<std::vector<TupleAnswer>> result =
      Status::Internal("nway: unreachable");
  if (algo == NwayAlgo::kNestedLoop) {
    NestedLoopJoin join(NestedLoopJoin::Options{.tables = tables_.get()});
    result = join.Run(g_, params_, d_, query, f, k);
    qs.table_hits = join.stats().table_hits;
  } else {
    PartialJoin join(PartialJoin::Options{.incremental = true,
                                          .bound = options_.bound,
                                          .snapshots = snapshots_.get()});
    result = join.Run(g_, params_, d_, query, f, k);
  }
  qs.seconds = timer.Seconds();
  if (out != nullptr) *out = std::move(qs);
  return result;
}

std::future<Result<std::vector<ScoredPair>>> DhtJoinService::SubmitTwoWay(
    NodeSet P, NodeSet Q, std::size_t k) {
  auto promise =
      std::make_shared<std::promise<Result<std::vector<ScoredPair>>>>();
  auto future = promise->get_future();
  pool_.Submit([this, promise, P = std::move(P), Q = std::move(Q), k] {
    promise->set_value(TwoWay(P, Q, k));
  });
  return future;
}

std::future<Result<std::vector<TupleAnswer>>> DhtJoinService::SubmitNway(
    QueryGraph query, const Aggregate& f, std::size_t k, NwayAlgo algo) {
  auto promise =
      std::make_shared<std::promise<Result<std::vector<TupleAnswer>>>>();
  auto future = promise->get_future();
  pool_.Submit([this, promise, query = std::move(query), &f, k, algo] {
    promise->set_value(Nway(query, f, k, algo));
  });
  return future;
}

}  // namespace dhtjoin::serve
