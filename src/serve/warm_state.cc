#include "serve/warm_state.h"

#include <utility>

#include "cluster/wire.h"

namespace dhtjoin::serve {

namespace {

using cluster::ByteReader;
using cluster::ByteWriter;

// Stable on-disk section kinds (decoupled from the enum's numeric
// values so reordering CachePayload can never silently re-type disk
// records).
constexpr uint32_t kSectionBackwardSnapshot = 1;
constexpr uint32_t kSectionBatchState = 2;
constexpr uint32_t kSectionEdgeTable = 3;
constexpr uint32_t kSectionYBound = 4;

void WriteNodeList(ByteWriter& w,
                   const std::shared_ptr<const std::vector<ExtNodeId>>& set) {
  if (set == nullptr) {
    w.U8(0);
    return;
  }
  w.U8(1);
  w.U64(set->size());
  for (ExtNodeId u : *set) w.I64(u.value());
}

void WriteKeyCommon(ByteWriter& w, const CacheKey& key) {
  w.I64(key.d);
  w.I64(key.seed.value());
  WriteNodeList(w, key.set_a);
  WriteNodeList(w, key.set_b);
}

void WriteMass(ByteWriter& w,
               const std::vector<std::pair<NodeId, double>>& mass) {
  w.U64(mass.size());
  for (const auto& [node, value] : mass) {
    w.I64(node);
    w.F64Bits(value);
  }
}

void WriteDoubles(ByteWriter& w, std::span<const double> values) {
  w.U64(values.size());
  for (double v : values) w.F64Bits(v);
}

/// Bounds a declared element count by what the remaining bytes could
/// possibly encode, so a corrupted count can never drive a giant
/// allocation (the ByteReader would catch the underflow anyway, but
/// only after the reserve).
bool PlausibleCount(const ByteReader& r, uint64_t count,
                    std::size_t min_elem_bytes) {
  return count <= r.remaining() / min_elem_bytes;
}

Status ReadNodeList(ByteReader& r,
                    std::shared_ptr<const std::vector<ExtNodeId>>* out,
                    uint64_t* digest) {
  *out = nullptr;
  *digest = 0;
  if (r.U8() == 0) return r.status();
  const uint64_t count = r.U64();
  if (!r.ok() || !PlausibleCount(r, count, sizeof(int64_t))) {
    return Status::InvalidArgument("warm record corrupt: node list count");
  }
  auto nodes = std::make_shared<std::vector<ExtNodeId>>();
  nodes->reserve(static_cast<std::size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    nodes->push_back(ExtNodeId(static_cast<NodeId>(r.I64())));
  }
  DHTJOIN_RETURN_NOT_OK(r.status());
  *digest = DigestNodes(*nodes);
  *out = std::move(nodes);
  return Status::OK();
}

Status ReadMass(ByteReader& r, std::vector<std::pair<NodeId, double>>* out) {
  const uint64_t count = r.U64();
  if (!r.ok() ||
      !PlausibleCount(r, count, sizeof(int64_t) + sizeof(double))) {
    return Status::InvalidArgument("warm record corrupt: mass count");
  }
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  for (uint64_t i = 0; i < count; ++i) {
    const NodeId node = static_cast<NodeId>(r.I64());
    const double value = r.F64Bits();
    out->emplace_back(node, value);
  }
  return r.status();
}

Status ReadDoubles(ByteReader& r, std::vector<double>* out) {
  const uint64_t count = r.U64();
  if (!r.ok() || !PlausibleCount(r, count, sizeof(double))) {
    return Status::InvalidArgument("warm record corrupt: double count");
  }
  out->clear();
  out->reserve(static_cast<std::size_t>(count));
  for (uint64_t i = 0; i < count; ++i) out->push_back(r.F64Bits());
  return r.status();
}

}  // namespace

uint32_t SectionKindFor(CachePayload kind) {
  switch (kind) {
    case CachePayload::kBackwardSnapshot: return kSectionBackwardSnapshot;
    case CachePayload::kBatchState: return kSectionBatchState;
    case CachePayload::kEdgeTable: return kSectionEdgeTable;
    case CachePayload::kYBound: return kSectionYBound;
  }
  return 0;
}

std::vector<uint8_t> EncodeCacheRecord(const CacheKey& key,
                                       const CacheEntry& entry) {
  ByteWriter w;
  WriteKeyCommon(w, key);
  switch (key.kind) {
    case CachePayload::kBackwardSnapshot: {
      const auto* snap = dynamic_cast<const CachedBackwardSnapshot*>(&entry);
      if (snap == nullptr) return {};
      w.I64(snap->state.target.value());
      w.I64(snap->state.level);
      w.F64Bits(snap->state.lambda_pow);
      WriteMass(w, snap->state.engine.mass);
      WriteMass(w, snap->state.score_delta);
      break;
    }
    case CachePayload::kBatchState: {
      const auto* batch = dynamic_cast<const CachedBatchState*>(&entry);
      if (batch == nullptr) return {};
      w.I64(batch->snap.level);
      w.F64Bits(batch->snap.lambda_pow);
      WriteMass(w, batch->snap.mass);
      WriteDoubles(w, batch->snap.row);
      break;
    }
    case CachePayload::kEdgeTable: {
      const auto* table = dynamic_cast<const CachedTable*>(&entry);
      if (table == nullptr || table->table == nullptr) return {};
      WriteDoubles(w, *table->table);
      break;
    }
    case CachePayload::kYBound: {
      const auto* bound = dynamic_cast<const CachedYBound*>(&entry);
      if (bound == nullptr || !bound->table.complete()) return {};
      w.I64(bound->table.d());
      w.I64(bound->table.edges_relaxed());
      w.U64(bound->num_targets_hint);
      const auto& rows = bound->table.suffix_rows();
      w.U64(rows.size());
      for (const auto& row : rows) {
        for (double v : row) w.F64Bits(v);
      }
      break;
    }
  }
  return w.Take();
}

Result<DecodedCacheRecord> DecodeCacheRecord(uint32_t section_kind,
                                             std::span<const uint8_t> payload,
                                             uint64_t graph_fp,
                                             const DhtParams& params) {
  ByteReader r(payload);
  DecodedCacheRecord record;
  record.key.graph_fp = graph_fp;
  record.key.params = params;
  record.key.d = static_cast<int>(r.I64());
  record.key.seed = ExtNodeId(static_cast<NodeId>(r.I64()));
  DHTJOIN_RETURN_NOT_OK(
      ReadNodeList(r, &record.key.set_a, &record.key.digest_a));
  DHTJOIN_RETURN_NOT_OK(
      ReadNodeList(r, &record.key.set_b, &record.key.digest_b));

  switch (section_kind) {
    case kSectionBackwardSnapshot: {
      record.key.kind = CachePayload::kBackwardSnapshot;
      BackwardWalkerState state;
      state.target = ExtNodeId(static_cast<NodeId>(r.I64()));
      state.level = static_cast<int>(r.I64());
      state.lambda_pow = r.F64Bits();
      DHTJOIN_RETURN_NOT_OK(ReadMass(r, &state.engine.mass));
      DHTJOIN_RETURN_NOT_OK(ReadMass(r, &state.score_delta));
      record.entry =
          std::make_shared<CachedBackwardSnapshot>(std::move(state));
      break;
    }
    case kSectionBatchState: {
      record.key.kind = CachePayload::kBatchState;
      BackwardBatchSnapshot snap;
      snap.level = static_cast<int>(r.I64());
      snap.lambda_pow = r.F64Bits();
      DHTJOIN_RETURN_NOT_OK(ReadMass(r, &snap.mass));
      DHTJOIN_RETURN_NOT_OK(ReadDoubles(r, &snap.row));
      record.entry = std::make_shared<CachedBatchState>(std::move(snap));
      break;
    }
    case kSectionEdgeTable: {
      record.key.kind = CachePayload::kEdgeTable;
      auto table = std::make_shared<std::vector<double>>();
      DHTJOIN_RETURN_NOT_OK(ReadDoubles(r, table.get()));
      record.entry = std::make_shared<CachedTable>(std::move(table));
      break;
    }
    case kSectionYBound: {
      record.key.kind = CachePayload::kYBound;
      const int table_d = static_cast<int>(r.I64());
      const int64_t edges_relaxed = r.I64();
      const uint64_t hint = r.U64();
      const uint64_t num_rows = r.U64();
      if (!r.ok() || table_d < 0 || table_d > (1 << 20) ||
          !PlausibleCount(r, num_rows, sizeof(double))) {
        return Status::InvalidArgument("warm record corrupt: ybound shape");
      }
      const std::size_t row_len = static_cast<std::size_t>(table_d) + 1;
      if (num_rows > r.remaining() / sizeof(double) / row_len + 1) {
        return Status::InvalidArgument("warm record corrupt: ybound rows");
      }
      std::vector<std::vector<double>> rows(
          static_cast<std::size_t>(num_rows));
      for (auto& row : rows) {
        row.reserve(row_len);
        for (std::size_t l = 0; l < row_len; ++l) row.push_back(r.F64Bits());
      }
      DHTJOIN_RETURN_NOT_OK(r.status());
      auto bound = std::make_shared<CachedYBound>(
          YBoundTable::FromSuffixRows(table_d, edges_relaxed,
                                      std::move(rows)));
      bound->num_targets_hint = static_cast<std::size_t>(hint);
      record.entry = std::move(bound);
      break;
    }
    default:
      return Status::InvalidArgument("warm record corrupt: unknown section "
                                     "kind " + std::to_string(section_kind));
  }
  DHTJOIN_RETURN_NOT_OK(r.Finish());
  return record;
}

}  // namespace dhtjoin::serve
