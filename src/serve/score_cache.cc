#include "serve/score_cache.h"

#include <bit>

#include "util/rng.h"

namespace dhtjoin::serve {

namespace {

/// Chained SplitMix64 over a stream of 64-bit words.
class HashStream {
 public:
  explicit HashStream(uint64_t seed) : state_(seed) { Mix(seed); }

  void Mix(uint64_t word) {
    state_ ^= word + 0x9e3779b97f4a7c15ULL;
    hash_ = SplitMix64(state_) ^ (hash_ * 0x100000001b3ULL);
  }

  void MixDouble(double v) { Mix(std::bit_cast<uint64_t>(v)); }

  uint64_t hash() const { return hash_; }

 private:
  uint64_t state_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

bool SameNodes(const std::shared_ptr<const std::vector<ExtNodeId>>& a,
               const std::shared_ptr<const std::vector<ExtNodeId>>& b) {
  if (a == b) return true;  // same vector (or both null)
  if (a == nullptr || b == nullptr) return false;
  return *a == *b;
}

bool SameParams(const DhtParams& a, const DhtParams& b) {
  // Exact coefficient equality: cached bits depend on the exact
  // doubles, so "close" params must not alias.
  return a.alpha == b.alpha && a.beta == b.beta && a.lambda == b.lambda &&
         a.first_hit == b.first_hit;
}

}  // namespace

uint64_t GraphFingerprint(const Graph& g) {
  HashStream h(0x6a09e667f3bcc909ULL);
  h.Mix(static_cast<uint64_t>(g.num_nodes()));
  h.Mix(static_cast<uint64_t>(g.num_edges()));
  // Layout epoch: cached payloads carry INTERNAL node ids, so two
  // layouts of the same logical graph must never alias — even if their
  // CSR bits coincide (a permutation of a symmetric graph).
  h.Mix(g.layout_epoch());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    h.Mix(static_cast<uint64_t>(g.OutDegree(IntNodeId(u))));
    for (const OutEdge& e : g.OutEdges(IntNodeId(u))) {
      h.Mix(static_cast<uint64_t>(static_cast<uint32_t>(e.to)));
      h.MixDouble(e.prob);
    }
  }
  return h.hash();
}

uint64_t DigestNodes(std::span<const ExtNodeId> nodes) {
  HashStream h(0xbb67ae8584caa73bULL);
  h.Mix(nodes.size());
  for (ExtNodeId u : nodes) {
    h.Mix(static_cast<uint64_t>(static_cast<uint32_t>(u.value())));
  }
  return h.hash();
}

bool CacheKey::operator==(const CacheKey& other) const {
  return graph_fp == other.graph_fp && kind == other.kind &&
         d == other.d && seed == other.seed &&
         digest_a == other.digest_a && digest_b == other.digest_b &&
         SameParams(params, other.params) && SameNodes(set_a, other.set_a) &&
         SameNodes(set_b, other.set_b);
}

uint64_t CacheKey::Hash() const {
  HashStream h(0x3c6ef372fe94f82bULL);
  h.Mix(graph_fp);
  h.Mix(static_cast<uint64_t>(kind));
  h.MixDouble(params.alpha);
  h.MixDouble(params.beta);
  h.MixDouble(params.lambda);
  h.Mix(params.first_hit ? 1 : 0);
  h.Mix(static_cast<uint64_t>(d));
  h.Mix(static_cast<uint64_t>(static_cast<uint32_t>(seed.value())));
  h.Mix(digest_a);
  h.Mix(digest_b);
  return h.hash();
}

ScoreCache::ScoreCache(Options options) : options_(options) {
  const int shards = options.num_shards < 1 ? 1 : options.num_shards;
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_budget_ = options_.max_bytes / static_cast<std::size_t>(shards);
}

ScoreCache::Shard& ScoreCache::ShardFor(const CacheKey& key) {
  // Shard on the high hash bits; the map uses the full hash below them.
  const uint64_t h = key.Hash();
  return *shards_[(h >> 48) % shards_.size()];
}

std::shared_ptr<const CacheEntry> ScoreCache::Get(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    return nullptr;
  }
  hits_.fetch_add(1, std::memory_order_relaxed);
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->entry;
}

std::shared_ptr<const CacheEntry> ScoreCache::Peek(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  return it == shard.index.end() ? nullptr : it->second->entry;
}

void ScoreCache::Put(const CacheKey& key,
                     std::shared_ptr<const CacheEntry> entry) {
  PutIf(key, std::move(entry),
        [](const CacheEntry&) { return false; });
}

void ScoreCache::PutIf(
    const CacheKey& key, std::shared_ptr<const CacheEntry> entry,
    const std::function<bool(const CacheEntry&)>& keep_existing) {
  if (entry == nullptr) return;
  const std::size_t bytes = entry->ApproxBytes();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  // First-touch bypass for small payloads (Options::
  // admission_bypass_bytes): a tiny payload is only admitted once its
  // key was offered before. Resident keys update as usual — rejecting
  // those would stale the entry, not save memory.
  if (bytes < options_.admission_bypass_bytes && it == shard.index.end()) {
    if (shard.seen.size() >= kMaxSeenPerShard) shard.seen.clear();
    if (shard.seen.insert(key.Hash()).second) {
      admission_rejects_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  if (it != shard.index.end()) {
    if (keep_existing(*it->second->entry)) return;
    shard.bytes -= it->second->bytes;
    shard.lru.erase(it->second);
    shard.index.erase(it);
  }
  shard.lru.push_front(Node{key, std::move(entry), bytes});
  shard.index[key] = shard.lru.begin();
  shard.bytes += bytes;
  insertions_.fetch_add(1, std::memory_order_relaxed);
  while (shard.bytes > shard_budget_ && !shard.lru.empty()) {
    Node& victim = shard.lru.back();
    shard.bytes -= victim.bytes;
    shard.index.erase(victim.key);
    shard.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
  }
}

void ScoreCache::Erase(const CacheKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) return;
  shard.bytes -= it->second->bytes;
  shard.lru.erase(it->second);
  shard.index.erase(it);
}

void ScoreCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
    shard->bytes = 0;
  }
}

std::vector<ScoreCache::ExportedEntry> ScoreCache::Export() {
  std::vector<ExportedEntry> out;
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.reserve(out.size() + shard->lru.size());
    for (const Node& node : shard->lru) {
      out.push_back(ExportedEntry{node.key, node.entry});
    }
  }
  return out;
}

CacheStats ScoreCache::stats() const {
  CacheStats s;
  s.hits = hits_.load(std::memory_order_relaxed);
  s.misses = misses_.load(std::memory_order_relaxed);
  s.insertions = insertions_.load(std::memory_order_relaxed);
  s.evictions = evictions_.load(std::memory_order_relaxed);
  s.admission_rejects = admission_rejects_.load(std::memory_order_relaxed);
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.resident_bytes += shard->bytes;
    s.entries += shard->lru.size();
  }
  return s;
}

}  // namespace dhtjoin::serve
