/// \file serve/warm_state.h
/// \brief Serialization of ScoreCache records for the durability layer
/// (persist/snapshot.h): one snapshot section per cached payload.
///
/// Byte-identity discipline matches the wire (cluster/wire.h): every
/// double crosses the disk as raw IEEE-754 bits via F64Bits, node ids
/// as raw values, so a warm-restored payload is bit-for-bit the one
/// that was checkpointed — and, by the engines' determinism, answers
/// resumed from it are byte-identical to cold execution (gated in
/// tests/persist_test.cc and bench_recovery).
///
/// A record's key context (graph fingerprint, DhtParams) is NOT stored
/// per record — the snapshot header carries the fingerprints once, and
/// the loading service stamps its own graph_fp/params into every
/// rebuilt key AFTER validating those fingerprints. A snapshot from a
/// different graph or measure therefore cannot smuggle records in.
///
/// Decoding is fail-closed: any underflow, trailing bytes, or
/// structurally impossible field yields kInvalidArgument, never a
/// partially-filled record.

#ifndef DHTJOIN_SERVE_WARM_STATE_H_
#define DHTJOIN_SERVE_WARM_STATE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "serve/score_cache.h"

namespace dhtjoin::serve {

/// Snapshot section kind of a cached payload (stable on-disk values;
/// never reorder).
uint32_t SectionKindFor(CachePayload kind);

/// Encodes one (key, entry) pair as a snapshot section payload.
/// `entry` must match `key.kind` (all of serve/ pairs them
/// consistently); a mismatch returns an empty buffer.
std::vector<uint8_t> EncodeCacheRecord(const CacheKey& key,
                                       const CacheEntry& entry);

struct DecodedCacheRecord {
  CacheKey key;
  std::shared_ptr<const CacheEntry> entry;
};

/// Rebuilds a record from a section. `graph_fp` and `params` come from
/// the LOADING service (validated against the snapshot header by the
/// caller); the record carries everything else.
Result<DecodedCacheRecord> DecodeCacheRecord(uint32_t section_kind,
                                             std::span<const uint8_t> payload,
                                             uint64_t graph_fp,
                                             const DhtParams& params);

}  // namespace dhtjoin::serve

#endif  // DHTJOIN_SERVE_WARM_STATE_H_
