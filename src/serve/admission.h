/// \file serve/admission.h
/// \brief Admission control for the serving layer: concurrency and
/// queue-depth caps plus a cheap sampled per-query cost estimate.
///
/// DhtJoinService consults the controller BEFORE enqueuing a query:
///
///  * a hard cap on queries in flight (running + queued) sheds load
///    the pool could only absorb as unbounded latency;
///  * a cost gate rejects individual queries whose ESTIMATED work
///    exceeds a configurable ceiling — the estimate is a deterministic
///    degree sample in the spirit of Kim et al.'s ~O(AGM/OUT)
///    sampling-based output estimators (PAPERS.md): sample a few
///    targets of Q, average their in-degrees, and extrapolate
///    |Q| * avg_deg * d edge relaxations. Crude, but it is computed
///    from O(sample) graph lookups, it is monotone in the real worst
///    case, and it separates the pathological broad-join tail from the
///    bulk of a Zipf stream, which is all a shed gate needs;
///  * queries that waited past their deadline are shed at DEQUEUE
///    (the worker would only burn pool time computing a level-0
///    degrade).
///
/// Rejections surface as Status{kResourceExhausted} with a retry-after
/// hint derived from observed service time. Counters feed
/// ServiceStats-style observability and the CLI's `# stats` JSON.

#ifndef DHTJOIN_SERVE_ADMISSION_H_
#define DHTJOIN_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/status.h"

namespace dhtjoin {

struct AdmissionOptions {
  /// Maximum queries admitted and not yet finished (running + queued).
  /// 0 disables the cap.
  int64_t max_in_flight = 0;
  /// Reject a query whose estimated cost (EstimateTwoWayCost) exceeds
  /// this many edge relaxations. 0 disables the gate.
  int64_t max_estimated_cost = 0;
  /// Targets sampled by the cost estimate (deterministic positions).
  int sample_size = 16;
};

/// Monotone counters; readable while the service runs.
struct AdmissionStats {
  int64_t admitted = 0;
  /// Rejected at submit: in-flight cap.
  int64_t shed_capacity = 0;
  /// Rejected at submit: estimated cost over the ceiling.
  int64_t shed_cost = 0;
  /// Shed at dequeue: deadline already expired while queued.
  int64_t shed_expired = 0;
};

/// Thread-safe admission gate. One per service.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options)
      : options_(options) {}
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// Tries to admit one query of estimated cost `estimated_cost`
  /// (pass 0 to skip the cost gate, e.g. when no estimate is cheap).
  /// On success the in-flight count is held until Finish(). On
  /// rejection returns kResourceExhausted with a retry-after hint.
  Status Admit(int64_t estimated_cost);

  /// Releases one admitted query (always pair with a successful
  /// Admit). `service_micros` feeds the retry-after estimate; pass 0
  /// for shed/expired queries.
  void Finish(int64_t service_micros);

  /// Records a queued query shed at dequeue because its deadline had
  /// already expired (counted on top of the Finish() it still needs).
  void RecordExpired() {
    stats_shed_expired_.fetch_add(1, std::memory_order_relaxed);
  }

  int64_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  AdmissionStats stats() const;
  const AdmissionOptions& options() const { return options_; }

  /// Suggested client back-off: the observed mean service time times
  /// the queue depth ahead of a new arrival (floor 1 ms). This is what
  /// the rejection message's retry-after hint reports.
  int64_t RetryAfterMicros() const;

 private:
  AdmissionOptions options_;
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int64_t> stats_admitted_{0};
  std::atomic<int64_t> stats_shed_capacity_{0};
  std::atomic<int64_t> stats_shed_cost_{0};
  std::atomic<int64_t> stats_shed_expired_{0};
  // Exponential moving average of service time, updated by Finish().
  std::atomic<int64_t> ema_service_micros_{0};
};

/// Deterministic sampled cost estimate for a two-way join (see file
/// comment): ~|Q| * avg_in_degree(sample of Q) * d edge relaxations.
/// O(sample_size) graph lookups; identical for identical inputs.
int64_t EstimateTwoWayCost(const Graph& g, const NodeSet& P, const NodeSet& Q,
                           int d, int sample_size);

}  // namespace dhtjoin

#endif  // DHTJOIN_SERVE_ADMISSION_H_
