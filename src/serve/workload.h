/// \file serve/workload.h
/// \brief Zipfian repeated-query workload generation for the serving
/// bench and the CLI's serve mode.
///
/// Real serving traffic is heavily skewed: a few queries (popular
/// entity pairs, dashboard refreshes) dominate the stream, with a long
/// tail of one-off requests. That skew is exactly what a cross-query
/// cache monetizes, so the serving bench drives DhtJoinService with a
/// workload drawn from a Zipf(s) distribution over a fixed pool of
/// query templates: rank-j's template is requested with probability
/// proportional to 1/(j+1)^s. s = 0 degenerates to uniform (worst case
/// for the cache), s ~ 1 is the classic web-traffic shape.

#ifndef DHTJOIN_SERVE_WORKLOAD_H_
#define DHTJOIN_SERVE_WORKLOAD_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/node_set.h"
#include "serve/session.h"
#include "util/backoff.h"
#include "util/status.h"

namespace dhtjoin::serve {

/// One 2-way request of a serving stream.
struct TwoWayRequest {
  NodeSet P;
  NodeSet Q;
  std::size_t k = 50;
  /// Which template produced this request (requests from one template
  /// are identical, so they are the cache's best case).
  std::size_t template_id = 0;
};

struct ServingWorkload {
  std::vector<TwoWayRequest> requests;
  std::size_t num_templates = 0;
  /// requests drawn per template, by template id.
  std::vector<int64_t> frequency;
};

struct WorkloadOptions {
  std::size_t num_requests = 200;
  /// Distinct query templates in the pool.
  std::size_t num_templates = 16;
  /// Zipf skew exponent (0 = uniform).
  double zipf_s = 1.0;
  /// Operand size: each template trims its node sets to the
  /// `set_size` highest-degree members (0 = whole sets).
  std::size_t set_size = 100;
  std::size_t k = 50;
  uint64_t seed = 17;
};

/// Builds a Zipfian 2-way workload over ordered pairs of the given node
/// sets (distinct sets per template; templates deduplicated).
/// Deterministic in opts.seed. Fails when `sets` has fewer than two
/// sets or a requested count is zero.
Result<ServingWorkload> GenerateZipfianTwoWayWorkload(
    const Graph& g, const std::vector<NodeSet>& sets,
    const WorkloadOptions& opts);

/// Extracts the "retry_after_micros=N" hint an admission rejection
/// embeds in its Status message (serve/admission.h). 0 when absent —
/// callers fall back to pure exponential backoff.
int64_t ParseRetryAfterMicros(const std::string& message);

/// How ReplayWorkload drives the service.
struct ReplayOptions {
  /// Client threads pulling requests from the shared stream.
  int concurrency = 1;
  /// Submissions per query before it counts as shed (1 = no retries).
  int max_attempts = 5;
  /// Backoff between admission-rejected attempts; the rejection's
  /// retry-after hint acts as a floor on each delay.
  BackoffOptions backoff;
  /// Per-attempt deadline (0 = none) and effort budget (0 = unlimited),
  /// wrapped into a fresh ExecContext per submission.
  int64_t deadline_micros = 0;
  int64_t effort_budget_blocks = 0;
};

/// Client-side outcome counters of one replay. `completed + shed +
/// failed + aborted` equals the number of requests dequeued.
struct ReplayStats {
  /// Queries that returned an answer (includes degraded ones).
  int64_t completed = 0;
  int64_t degraded = 0;
  /// Still kResourceExhausted after max_attempts.
  int64_t shed = 0;
  /// Any other non-OK terminal status.
  int64_t failed = 0;
  /// Dequeued but dropped because the stop flag was raised.
  int64_t aborted = 0;
  /// Resubmissions after a rejection, and distinct queries that needed
  /// at least one.
  int64_t retries = 0;
  int64_t queries_retried = 0;
  /// Backoff sleeps taken and their summed requested duration.
  int64_t backoff_sleeps = 0;
  int64_t backoff_micros = 0;
};

/// Replays `workload` against `service` with `opts.concurrency` client
/// threads. Rejected queries (kResourceExhausted) are retried with
/// capped exponential backoff honoring the service's retry-after hint,
/// instead of being dropped on first rejection. `stop`, when set,
/// makes the replay stop admitting new requests as soon as it reads
/// true (in-flight attempts still finish). Deterministic apart from
/// scheduling: thread t uses backoff seed `opts.backoff.seed + t`.
Result<ReplayStats> ReplayWorkload(DhtJoinService& service,
                                   const ServingWorkload& workload,
                                   const ReplayOptions& opts,
                                   const std::atomic<bool>* stop = nullptr);

}  // namespace dhtjoin::serve

#endif  // DHTJOIN_SERVE_WORKLOAD_H_
