/// \file serve/workload.h
/// \brief Zipfian repeated-query workload generation for the serving
/// bench and the CLI's serve mode.
///
/// Real serving traffic is heavily skewed: a few queries (popular
/// entity pairs, dashboard refreshes) dominate the stream, with a long
/// tail of one-off requests. That skew is exactly what a cross-query
/// cache monetizes, so the serving bench drives DhtJoinService with a
/// workload drawn from a Zipf(s) distribution over a fixed pool of
/// query templates: rank-j's template is requested with probability
/// proportional to 1/(j+1)^s. s = 0 degenerates to uniform (worst case
/// for the cache), s ~ 1 is the classic web-traffic shape.

#ifndef DHTJOIN_SERVE_WORKLOAD_H_
#define DHTJOIN_SERVE_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/status.h"

namespace dhtjoin::serve {

/// One 2-way request of a serving stream.
struct TwoWayRequest {
  NodeSet P;
  NodeSet Q;
  std::size_t k = 50;
  /// Which template produced this request (requests from one template
  /// are identical, so they are the cache's best case).
  std::size_t template_id = 0;
};

struct ServingWorkload {
  std::vector<TwoWayRequest> requests;
  std::size_t num_templates = 0;
  /// requests drawn per template, by template id.
  std::vector<int64_t> frequency;
};

struct WorkloadOptions {
  std::size_t num_requests = 200;
  /// Distinct query templates in the pool.
  std::size_t num_templates = 16;
  /// Zipf skew exponent (0 = uniform).
  double zipf_s = 1.0;
  /// Operand size: each template trims its node sets to the
  /// `set_size` highest-degree members (0 = whole sets).
  std::size_t set_size = 100;
  std::size_t k = 50;
  uint64_t seed = 17;
};

/// Builds a Zipfian 2-way workload over ordered pairs of the given node
/// sets (distinct sets per template; templates deduplicated).
/// Deterministic in opts.seed. Fails when `sets` has fewer than two
/// sets or a requested count is zero.
Result<ServingWorkload> GenerateZipfianTwoWayWorkload(
    const Graph& g, const std::vector<NodeSet>& sets,
    const WorkloadOptions& opts);

}  // namespace dhtjoin::serve

#endif  // DHTJOIN_SERVE_WORKLOAD_H_
