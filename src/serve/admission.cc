#include "serve/admission.h"

#include <algorithm>
#include <string>

namespace dhtjoin {

Status AdmissionController::Admit(int64_t estimated_cost) {
  if (options_.max_estimated_cost > 0 &&
      estimated_cost > options_.max_estimated_cost) {
    stats_shed_cost_.fetch_add(1, std::memory_order_relaxed);
    return Status::ResourceExhausted(
        "query rejected: estimated cost " + std::to_string(estimated_cost) +
        " exceeds ceiling " + std::to_string(options_.max_estimated_cost) +
        "; retry_after_micros=" + std::to_string(RetryAfterMicros()));
  }
  if (options_.max_in_flight > 0) {
    // Reserve-then-check, mirroring the state-budget commit: the
    // increment IS the reservation, so two racing admits cannot both
    // squeeze past a full gate.
    const int64_t now = in_flight_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (now > options_.max_in_flight) {
      in_flight_.fetch_sub(1, std::memory_order_relaxed);
      stats_shed_capacity_.fetch_add(1, std::memory_order_relaxed);
      return Status::ResourceExhausted(
          "service overloaded: " + std::to_string(now - 1) +
          " queries in flight (cap " +
          std::to_string(options_.max_in_flight) +
          "); retry_after_micros=" + std::to_string(RetryAfterMicros()));
    }
  } else {
    in_flight_.fetch_add(1, std::memory_order_relaxed);
  }
  stats_admitted_.fetch_add(1, std::memory_order_relaxed);
  return Status::OK();
}

void AdmissionController::Finish(int64_t service_micros) {
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  if (service_micros > 0) {
    // EMA with 1/8 weight; a plain store race just loses one sample.
    const int64_t prev = ema_service_micros_.load(std::memory_order_relaxed);
    const int64_t next =
        prev == 0 ? service_micros : prev + (service_micros - prev) / 8;
    ema_service_micros_.store(next, std::memory_order_relaxed);
  }
}

AdmissionStats AdmissionController::stats() const {
  AdmissionStats s;
  s.admitted = stats_admitted_.load(std::memory_order_relaxed);
  s.shed_capacity = stats_shed_capacity_.load(std::memory_order_relaxed);
  s.shed_cost = stats_shed_cost_.load(std::memory_order_relaxed);
  s.shed_expired = stats_shed_expired_.load(std::memory_order_relaxed);
  return s;
}

int64_t AdmissionController::RetryAfterMicros() const {
  const int64_t ema = ema_service_micros_.load(std::memory_order_relaxed);
  const int64_t depth = std::max<int64_t>(1, in_flight());
  return std::max<int64_t>(1000, ema * depth);
}

int64_t EstimateTwoWayCost(const Graph& g, const NodeSet& /*P*/,
                           const NodeSet& Q, int d, int sample_size) {
  if (Q.empty()) return 0;
  // Deterministic evenly-spaced sample (no RNG: identical queries must
  // produce identical admission decisions).
  const std::size_t n = Q.size();
  const std::size_t take =
      std::min<std::size_t>(n, static_cast<std::size_t>(
                                   std::max(1, sample_size)));
  int64_t degree_sum = 0;
  for (std::size_t s = 0; s < take; ++s) {
    const std::size_t qi = s * n / take;
    degree_sum += g.InDegree(g.ToInternal(Q[qi]));
  }
  const double avg_deg =
      static_cast<double>(degree_sum) / static_cast<double>(take);
  // A backward deepening run walks each target ~d steps; each step
  // relaxes the frontier's in-edges, which the seed frontier's degree
  // proxies. |P| enters only through scoring (cheap) — leave it out.
  const double est = static_cast<double>(n) * avg_deg * d;
  return static_cast<int64_t>(est);
}

}  // namespace dhtjoin
