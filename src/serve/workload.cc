#include "serve/workload.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/rng.h"

namespace dhtjoin::serve {

Result<ServingWorkload> GenerateZipfianTwoWayWorkload(
    const Graph& g, const std::vector<NodeSet>& sets,
    const WorkloadOptions& opts) {
  if (sets.size() < 2) {
    return Status::InvalidArgument(
        "workload needs at least two node sets to draw templates from");
  }
  if (opts.num_requests == 0 || opts.num_templates == 0) {
    return Status::InvalidArgument(
        "num_requests and num_templates must be positive");
  }
  if (opts.k == 0) return Status::InvalidArgument("k must be positive");
  for (const NodeSet& s : sets) DHTJOIN_RETURN_NOT_OK(s.Validate(g));

  Rng rng(opts.seed);

  // Template pool: distinct ordered (left, right) set pairs, trimmed to
  // the top-degree members so operand sizes are uniform across
  // templates. With few sets the pool is capped by the number of
  // distinct ordered pairs.
  struct Template {
    NodeSet P, Q;
  };
  std::vector<Template> pool;
  std::vector<std::pair<std::size_t, std::size_t>> used;
  const std::size_t max_distinct = sets.size() * (sets.size() - 1);
  const std::size_t want = std::min(opts.num_templates, max_distinct);
  while (pool.size() < want) {
    std::size_t a = rng.Below(sets.size());
    std::size_t b = rng.Below(sets.size() - 1);
    if (b >= a) ++b;  // distinct sets
    if (std::find(used.begin(), used.end(), std::make_pair(a, b)) !=
        used.end()) {
      continue;
    }
    used.emplace_back(a, b);
    Template t;
    t.P = opts.set_size > 0 ? sets[a].TopByDegree(g, opts.set_size) : sets[a];
    t.Q = opts.set_size > 0 ? sets[b].TopByDegree(g, opts.set_size) : sets[b];
    pool.push_back(std::move(t));
  }

  // Zipf CDF over template ranks: weight(rank j) = 1 / (j + 1)^s.
  std::vector<double> cdf(pool.size());
  double total = 0.0;
  for (std::size_t j = 0; j < pool.size(); ++j) {
    total += std::pow(static_cast<double>(j + 1), -opts.zipf_s);
    cdf[j] = total;
  }
  for (double& c : cdf) c /= total;

  ServingWorkload workload;
  workload.num_templates = pool.size();
  workload.frequency.assign(pool.size(), 0);
  workload.requests.reserve(opts.num_requests);
  for (std::size_t r = 0; r < opts.num_requests; ++r) {
    const double u = rng.NextDouble();
    const std::size_t j = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const std::size_t id = std::min(j, pool.size() - 1);
    workload.requests.push_back(
        TwoWayRequest{pool[id].P, pool[id].Q, opts.k, id});
    workload.frequency[id]++;
  }
  return workload;
}

}  // namespace dhtjoin::serve
