#include "serve/workload.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <mutex>
#include <thread>
#include <utility>

#include "util/deadline.h"
#include "util/rng.h"

namespace dhtjoin::serve {

Result<ServingWorkload> GenerateZipfianTwoWayWorkload(
    const Graph& g, const std::vector<NodeSet>& sets,
    const WorkloadOptions& opts) {
  if (sets.size() < 2) {
    return Status::InvalidArgument(
        "workload needs at least two node sets to draw templates from");
  }
  if (opts.num_requests == 0 || opts.num_templates == 0) {
    return Status::InvalidArgument(
        "num_requests and num_templates must be positive");
  }
  if (opts.k == 0) return Status::InvalidArgument("k must be positive");
  for (const NodeSet& s : sets) DHTJOIN_RETURN_NOT_OK(s.Validate(g));

  Rng rng(opts.seed);

  // Template pool: distinct ordered (left, right) set pairs, trimmed to
  // the top-degree members so operand sizes are uniform across
  // templates. With few sets the pool is capped by the number of
  // distinct ordered pairs.
  struct Template {
    NodeSet P, Q;
  };
  std::vector<Template> pool;
  std::vector<std::pair<std::size_t, std::size_t>> used;
  const std::size_t max_distinct = sets.size() * (sets.size() - 1);
  const std::size_t want = std::min(opts.num_templates, max_distinct);
  while (pool.size() < want) {
    std::size_t a = rng.Below(sets.size());
    std::size_t b = rng.Below(sets.size() - 1);
    if (b >= a) ++b;  // distinct sets
    if (std::find(used.begin(), used.end(), std::make_pair(a, b)) !=
        used.end()) {
      continue;
    }
    used.emplace_back(a, b);
    Template t;
    t.P = opts.set_size > 0 ? sets[a].TopByDegree(g, opts.set_size) : sets[a];
    t.Q = opts.set_size > 0 ? sets[b].TopByDegree(g, opts.set_size) : sets[b];
    pool.push_back(std::move(t));
  }

  // Zipf CDF over template ranks: weight(rank j) = 1 / (j + 1)^s.
  std::vector<double> cdf(pool.size());
  double total = 0.0;
  for (std::size_t j = 0; j < pool.size(); ++j) {
    total += std::pow(static_cast<double>(j + 1), -opts.zipf_s);
    cdf[j] = total;
  }
  for (double& c : cdf) c /= total;

  ServingWorkload workload;
  workload.num_templates = pool.size();
  workload.frequency.assign(pool.size(), 0);
  workload.requests.reserve(opts.num_requests);
  for (std::size_t r = 0; r < opts.num_requests; ++r) {
    const double u = rng.NextDouble();
    const std::size_t j = static_cast<std::size_t>(
        std::lower_bound(cdf.begin(), cdf.end(), u) - cdf.begin());
    const std::size_t id = std::min(j, pool.size() - 1);
    workload.requests.push_back(
        TwoWayRequest{pool[id].P, pool[id].Q, opts.k, id});
    workload.frequency[id]++;
  }
  return workload;
}

int64_t ParseRetryAfterMicros(const std::string& message) {
  static constexpr char kKey[] = "retry_after_micros=";
  const std::size_t pos = message.find(kKey);
  if (pos == std::string::npos) return 0;
  int64_t value = 0;
  for (std::size_t i = pos + sizeof(kKey) - 1; i < message.size(); ++i) {
    const char c = message[i];
    if (c < '0' || c > '9') break;
    if (value > (INT64_MAX - (c - '0')) / 10) return INT64_MAX;
    value = value * 10 + (c - '0');
  }
  return value;
}

namespace {

/// One client's pass over the shared request stream; returns its local
/// counters for lock-free accumulation.
ReplayStats ReplayClient(DhtJoinService& service,
                         const ServingWorkload& workload,
                         const ReplayOptions& opts,
                         const std::atomic<bool>* stop,
                         std::atomic<std::size_t>& next, uint64_t seed) {
  ReplayStats local;
  BackoffOptions bopts = opts.backoff;
  bopts.seed = seed;
  RetryBackoff backoff(bopts);
  for (;;) {
    const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
    if (i >= workload.requests.size()) break;
    if (stop != nullptr && stop->load(std::memory_order_acquire)) {
      local.aborted++;
      continue;  // drain the stream so every request is accounted for
    }
    const TwoWayRequest& req = workload.requests[i];
    backoff.Reset();
    bool retried = false;
    for (int attempt = 0;; ++attempt) {
      QueryStats qs;
      QueryOptions qopts;
      qopts.stats = &qs;
      if (opts.deadline_micros > 0 || opts.effort_budget_blocks > 0) {
        auto exec = std::make_shared<ExecContext>();
        if (opts.deadline_micros > 0) {
          exec->deadline = Deadline::AfterSeconds(
              static_cast<double>(opts.deadline_micros) * 1e-6);
        }
        if (opts.effort_budget_blocks > 0) {
          exec->effort_budget_blocks = opts.effort_budget_blocks;
        }
        qopts.exec = std::move(exec);
      }
      auto result = service.SubmitTwoWay(req.P, req.Q, req.k, qopts).get();
      if (result.ok()) {
        local.completed++;
        if (qs.join.partial.degraded) local.degraded++;
        break;
      }
      const Status& s = result.status();
      if (s.code() != StatusCode::kResourceExhausted) {
        local.failed++;
        break;
      }
      const bool stopping =
          stop != nullptr && stop->load(std::memory_order_acquire);
      if (attempt + 1 >= opts.max_attempts || stopping) {
        local.shed++;
        break;
      }
      if (!retried) {
        retried = true;
        local.queries_retried++;
      }
      local.retries++;
      const int64_t delay =
          backoff.NextDelayMicros(ParseRetryAfterMicros(s.message()));
      local.backoff_sleeps++;
      local.backoff_micros += delay;
      std::this_thread::sleep_for(std::chrono::microseconds(delay));
    }
  }
  return local;
}

}  // namespace

Result<ReplayStats> ReplayWorkload(DhtJoinService& service,
                                   const ServingWorkload& workload,
                                   const ReplayOptions& opts,
                                   const std::atomic<bool>* stop) {
  if (opts.concurrency <= 0) {
    return Status::InvalidArgument("replay concurrency must be positive");
  }
  if (opts.max_attempts <= 0) {
    return Status::InvalidArgument("replay max_attempts must be positive");
  }
  ReplayStats total;
  std::mutex agg_mu;
  std::atomic<std::size_t> next{0};
  auto run_client = [&](int t) {
    ReplayStats local = ReplayClient(service, workload, opts, stop, next,
                                     opts.backoff.seed +
                                         static_cast<uint64_t>(t));
    const std::lock_guard<std::mutex> lock(agg_mu);
    total.completed += local.completed;
    total.degraded += local.degraded;
    total.shed += local.shed;
    total.failed += local.failed;
    total.aborted += local.aborted;
    total.retries += local.retries;
    total.queries_retried += local.queries_retried;
    total.backoff_sleeps += local.backoff_sleeps;
    total.backoff_micros += local.backoff_micros;
  };
  if (opts.concurrency == 1) {
    run_client(0);
    return total;
  }
  std::vector<std::thread> clients;
  clients.reserve(static_cast<std::size_t>(opts.concurrency));
  for (int t = 0; t < opts.concurrency; ++t) {
    clients.emplace_back(run_client, t);
  }
  for (std::thread& c : clients) c.join();
  return total;
}

}  // namespace dhtjoin::serve
