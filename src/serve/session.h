/// \file serve/session.h
/// \brief DhtJoinService — concurrent query sessions over one graph,
/// sharing one cross-query ScoreCache.
///
/// The service owns a Graph (by reference), fixed measure parameters
/// (params, d), a ScoreCache, and a ThreadPool. Queries run either
/// synchronously (TwoWay / Nway) or as concurrent sessions on the pool
/// (SubmitTwoWay / SubmitNway); any number may be in flight at once —
/// the cache is sharded and every per-query engine is private to its
/// session.
///
/// The two-way executor is a cache-aware B-IDJ: per-target batched
/// backward walk states (BackwardBatchSnapshot) are imported from the
/// cache before the deepening schedule and exported after it, so a warm
/// query RESUMES every target at its deepest previously-walked level —
/// an exactly repeated query does near-zero walk work — while a cold
/// query runs the ordinary schedule. Warm and cold results are
/// byte-identical (DESIGN.md §6). The Y-bound table of each (P, Q) is
/// cached whole. N-way queries route NL's per-edge tables and PJ-i's
/// backward walk snapshots through the same cache via the provider
/// hooks in core/nl_join.h and dht/backward.h.

#ifndef DHTJOIN_SERVE_SESSION_H_
#define DHTJOIN_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <limits>
#include <memory>
#include <vector>

#include "core/nl_join.h"
#include "core/partial_join.h"
#include "join2/two_way_join.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/slow_query.h"
#include "persist/metrics.h"
#include "persist/snapshot.h"
#include "serve/admission.h"
#include "serve/score_cache.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace dhtjoin::serve {

/// Per-query lifecycle options for the async sessions (Submit*). The
/// ExecContext (deadline, cancel token, effort budget, fault hooks —
/// util/deadline.h) is shared because the query runs after Submit
/// returns; it must not be reused across queries. `stats`, when set,
/// must stay alive until the returned future resolves — it is written
/// before the promise is fulfilled, so reading it AFTER future.get()
/// is race-free.
struct QueryOptions {
  std::shared_ptr<ExecContext> exec;
  struct QueryStats* stats = nullptr;
};

/// Service-level lifecycle counters (monotone; readable while serving).
struct ServiceStats {
  AdmissionStats admission;
  /// Soft-stopped queries that returned a degraded (partial) answer.
  int64_t degraded = 0;
  /// Hard-cancelled queries (Status{kCancelled}).
  int64_t cancelled = 0;
  /// Soft stops by cause: deadline expiry vs effort-budget exhaustion.
  int64_t deadline_exceeded = 0;
  int64_t effort_exhausted = 0;
  /// Worker-task exceptions contained and surfaced as Status{kInternal}.
  int64_t exceptions = 0;
};

/// Per-query observability, filled by the executing session.
struct QueryStats {
  double seconds = 0.0;
  /// Two-way: targets resumed from cached batch states vs started cold.
  int64_t warm_targets = 0;
  int64_t cold_targets = 0;
  /// Two-way with the Y bound: whether the (P, Q) sweep was cached.
  bool ybound_cached = false;
  /// N-way NL: per-edge tables served from the cache.
  int64_t table_hits = 0;
  /// Walk/pool counters of the underlying executor.
  TwoWayJoinStats join;
  /// Trace rollups (all 0 unless Options::trace_queries was on and the
  /// build has observability): span count and the sums of the engine
  /// span attributes — deepening rounds, fused blocks run, lanes
  /// packed, delta bytes touched (DESIGN.md §11).
  int64_t trace_spans = 0;
  int64_t trace_rounds = 0;
  int64_t trace_blocks_run = 0;
  int64_t trace_lanes_packed = 0;
  int64_t trace_bytes_touched = 0;
};

/// A serving endpoint for one graph + one measure configuration.
/// Thread-safe: all public methods may be called concurrently.
class DhtJoinService {
 public:
  /// Sentinel for Options::cache_budget_bytes: derive the budget from
  /// the graph (AutotuneStateBudgetBytes). An explicit 0 disables
  /// retention — every query runs cold (used by benches and tests).
  static constexpr std::size_t kAutotuneBudget =
      std::numeric_limits<std::size_t>::max();

  struct Options {
    std::size_t cache_budget_bytes = kAutotuneBudget;
    int cache_shards = 8;
    /// Admission floor: payloads smaller than this are only cached on
    /// their second offer (ScoreCache first-touch bypass), so one-shot
    /// tiny queries stop churning the LRU. 0 = admit everything.
    std::size_t cache_admission_bypass_bytes = 0;
    /// Worker threads for Submit* sessions; 0 = hardware concurrency.
    int num_threads = 0;
    /// Remainder bound of the two-way executor (paper uses Y).
    UpperBoundKind bound = UpperBoundKind::kY;
    /// Admission control for the async sessions (serve/admission.h):
    /// in-flight cap and sampled cost gate. Defaults admit everything.
    /// Synchronous TwoWay/Nway calls bypass admission — the caller IS
    /// the capacity there.
    AdmissionOptions admission;
    /// Observability (DESIGN.md §11). All service timing — query
    /// latencies, pool task/queue histograms, admission cost feedback —
    /// reads this clock; null means the real SystemClock. Tests inject
    /// a FakeClock to make latency assertions deterministic. Must
    /// outlive the service.
    const obs::Clock* clock = nullptr;
    /// Attach a span-tree trace to every query. Queries that arrive
    /// with a caller ExecContext get the trace on it; callers without
    /// one get a service-local context for the duration of the run.
    /// Tracing never changes answers (asserted byte-identical in
    /// tests/trace_test.cc); it costs one clock read + one small
    /// allocation per span, at round granularity.
    bool trace_queries = false;
    /// Queries slower than this (by the injected clock) have their full
    /// span tree captured in the slow-query ring. <= 0 disables; only
    /// effective when trace_queries is on.
    int64_t slow_query_nanos = 0;
    /// Ring capacity of the slow-query log.
    std::size_t slow_query_capacity = 32;
  };

  /// The graph must outlive the service. O(n + m) once for the
  /// fingerprint that keys every cache entry.
  DhtJoinService(const Graph& g, const DhtParams& params, int d,
                 Options options);
  DhtJoinService(const Graph& g, const DhtParams& params, int d);
  ~DhtJoinService();

  DhtJoinService(const DhtJoinService&) = delete;
  DhtJoinService& operator=(const DhtJoinService&) = delete;

  /// Top-k 2-way join of (P, Q) — results identical to
  /// BIdjJoin(options.bound).Run on a cold library, whatever the cache
  /// holds (DESIGN.md §6).
  ///
  /// When `exec` is set, the run is deadline/cancel/effort-governed: a
  /// hard cancel returns Status{kCancelled}; a soft stop degrades at
  /// the last completed deepening level with stats->join.partial
  /// describing the cut (DESIGN.md §9) — identical semantics (and
  /// bit-identical degraded answers at equal cut levels) to
  /// BIdjJoin::Run under the same ExecContext.
  Result<std::vector<ScoredPair>> TwoWay(const NodeSet& P, const NodeSet& Q,
                                         std::size_t k,
                                         QueryStats* stats = nullptr,
                                         const ExecContext* exec = nullptr);

  enum class NwayAlgo {
    kPartialJoinIncremental,  ///< PJ-i, walk snapshots through the cache
    kNestedLoop,              ///< NL, per-edge tables through the cache
  };

  /// Top-k n-way join; `f` must outlive the call (and, for SubmitNway,
  /// the returned future).
  Result<std::vector<TupleAnswer>> Nway(const QueryGraph& query,
                                        const Aggregate& f, std::size_t k,
                                        NwayAlgo algo =
                                            NwayAlgo::kPartialJoinIncremental,
                                        QueryStats* stats = nullptr);

  /// Asynchronous sessions: the query runs on the service pool; the
  /// future carries the same result TwoWay/Nway would return.
  ///
  /// Lifecycle (util/deadline.h, serve/admission.h):
  ///  * admission runs BEFORE enqueue — an over-capacity or
  ///    over-cost-estimate query resolves its future immediately with
  ///    Status{kResourceExhausted} (+ retry-after hint in the message);
  ///  * a query whose deadline expired while QUEUED is shed at dequeue
  ///    (degrades at level 0: empty answer + partial info);
  ///  * worker-task exceptions never escape the pool — they surface as
  ///    Status{kInternal} on the future.
  std::future<Result<std::vector<ScoredPair>>> SubmitTwoWay(
      NodeSet P, NodeSet Q, std::size_t k, QueryOptions qopts = {});
  std::future<Result<std::vector<TupleAnswer>>> SubmitNway(
      QueryGraph query, const Aggregate& f, std::size_t k,
      NwayAlgo algo = NwayAlgo::kPartialJoinIncremental,
      QueryOptions qopts = {});

  /// Blocks until every submitted session has finished.
  void Drain();

  const Graph& graph() const { return g_; }
  const DhtParams& params() const { return params_; }
  int d() const { return d_; }
  uint64_t graph_fingerprint() const { return graph_fp_; }
  CacheStats cache_stats() const { return cache_.stats(); }
  ScoreCache& cache() { return cache_; }
  /// Lifecycle counters: admission sheds, degraded/cancelled queries,
  /// contained worker exceptions.
  ServiceStats service_stats() const;
  const AdmissionController& admission() const { return admission_; }
  /// The service metrics registry (always live; counters tick even
  /// under DHT_OBS_OFF — only spans and timing compile out).
  obs::MetricsRegistry& metrics() { return metrics_; }
  /// Registry snapshot with the cache / admission / service gauges
  /// refreshed first — the payload behind `dhtjoin_cli serve
  /// --metrics-out` (JSON) and --metrics-prom (Prometheus text).
  obs::MetricsSnapshot SnapshotMetrics();
  /// Ring of recent slow queries (latency above Options::
  /// slow_query_nanos) with their full span trees.
  const obs::SlowQueryLog& slow_queries() const { return slow_log_; }

  // ------------------------------------------------------ durability
  /// Checkpoints the warm state (every resident ScoreCache payload) to
  /// `path`, crash-safely (persist/snapshot.h: temp file + fsync +
  /// atomic rename — a kill at any byte offset leaves the previous
  /// snapshot or the new one, never a corrupt file). `hook` observes
  /// the writer's phases; the chaos harness uses it to kill
  /// mid-checkpoint at a seeded phase. Thread-safe; may run while
  /// queries are in flight (the export is a point-in-time copy).
  Status SaveWarmState(const std::string& path,
                       const persist::CheckpointHook& hook = nullptr);

  /// Restores a checkpoint written by SaveWarmState. Returns the
  /// number of records restored. Fingerprint mismatch (different
  /// graph, layout epoch, or measure) is a SILENT cold start: OK with
  /// 0 restored and persist.restore.rejects ticked — byte-identity
  /// must never depend on whose snapshot is lying around. A missing
  /// file is kNotFound (the ordinary cold start); a corrupt file is a
  /// typed error and restores nothing. Restored answers are
  /// byte-identical to cold execution (tests/persist_test.cc).
  Result<int64_t> LoadWarmState(const std::string& path);

 private:
  class SnapshotAdapter;  // BackwardSnapshotProvider over the cache
  class TableAdapter;     // EdgeScoreTableProvider over the cache

  CacheKey BaseKey(CachePayload kind) const;

  Result<std::vector<ScoredPair>> RunTwoWay(const NodeSet& P,
                                            const NodeSet& Q, std::size_t k,
                                            QueryStats* stats,
                                            const ExecContext* exec);

  /// Folds a finished run's outcome into the service counters.
  void RecordOutcome(const Status& status, const QueryStats& qs,
                     const ExecContext* exec);

  /// End-of-query observability fold, shared by TwoWay and Nway: the
  /// latency histogram, per-query registry counters, trace rollups
  /// into `qs`, and the slow-query capture.
  void FinishQuery(const char* kind, int64_t start_ns, const Status& status,
                   QueryStats& qs, obs::Trace* trace);

  const Graph& g_;
  DhtParams params_;
  int d_;
  Options options_;
  uint64_t graph_fp_;
  std::size_t per_query_state_budget_;
  ScoreCache cache_;
  ThreadPool pool_;
  AdmissionController admission_;
  std::unique_ptr<SnapshotAdapter> snapshots_;
  std::unique_ptr<TableAdapter> tables_;
  std::atomic<int64_t> stat_degraded_{0};
  std::atomic<int64_t> stat_cancelled_{0};
  std::atomic<int64_t> stat_deadline_{0};
  std::atomic<int64_t> stat_effort_{0};
  std::atomic<int64_t> stat_exceptions_{0};

  // ------------------------------------------------- observability
  const obs::Clock* clock_;  // injected or SystemClock; never null
  obs::MetricsRegistry metrics_;
  obs::SlowQueryLog slow_log_;
  persist::PersistMetrics persist_metrics_{metrics_};
  // Hot-path handles resolved once at construction (registry lookups
  // take a mutex; these do not).
  obs::Counter* m_queries_twoway_;
  obs::Counter* m_queries_nway_;
  obs::Counter* m_query_errors_;
  obs::Counter* m_query_degraded_;
  obs::Counter* m_query_cancelled_;
  obs::Counter* m_targets_warm_;
  obs::Counter* m_targets_cold_;
  obs::Counter* m_state_hits_;
  obs::Counter* m_state_misses_;
  obs::Counter* m_walk_steps_;
  obs::Counter* m_deepen_rounds_;
  obs::Histogram* h_query_latency_;
  obs::Histogram* h_deepen_frontier_;
};

}  // namespace dhtjoin::serve

#endif  // DHTJOIN_SERVE_SESSION_H_
