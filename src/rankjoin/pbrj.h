/// \file rankjoin/pbrj.h
/// \brief Pull/Bound Rank Join over sorted pair streams (paper Sec IV).
///
/// The engine the paper plugs into AP and PJ: given one descending-score
/// stream of node pairs per query-graph edge, it pulls pairs round-robin
/// (the HRJN strategy), buffers them (CandidateBuffer), expands each new
/// pair into complete candidate n-tuples (getCandidate, paper Fig. 4),
/// and stops once the k best tuples found so far dominate the HRJN
/// corner-bound threshold tau.
///
/// The module is independent of DHT: attributes are opaque positions,
/// streams are an abstract interface, and the aggregate is any monotone
/// f. core/ wires the paper's algorithms (AP, PJ, PJ-i) to it.

#ifndef DHTJOIN_RANKJOIN_PBRJ_H_
#define DHTJOIN_RANKJOIN_PBRJ_H_

#include <optional>
#include <vector>

#include "join2/two_way_join.h"
#include "rankjoin/aggregate.h"
#include "rankjoin/candidate_buffer.h"
#include "util/status.h"

namespace dhtjoin {

/// A sorted (descending score) stream of 2-way join results.
class PairStream {
 public:
  virtual ~PairStream() = default;

  /// Next pair; nullopt once exhausted (and forever after).
  virtual std::optional<ScoredPair> Next() = 0;
};

/// One query-graph edge, as attribute positions in the output tuple.
struct JoinEdge {
  int left;   ///< attribute index of the source node set
  int right;  ///< attribute index of the target node set
};

/// A complete candidate answer (paper Def. 3) with its aggregate score.
struct TupleAnswer {
  std::vector<NodeId> nodes;        ///< one node per attribute
  std::vector<double> edge_scores;  ///< DHT score per query edge
  double f = 0.0;                   ///< aggregate of edge_scores
};

/// Descending f, ties by node vector ascending — library-wide order.
bool TupleAnswerGreater(const TupleAnswer& a, const TupleAnswer& b);

/// Tie policy for TopK<TupleAnswer>: among equal aggregates the
/// lexicographically smaller node vector outranks, so the retained set
/// at a tied k-th boundary does not depend on enumeration order (the
/// tuple analogue of ScoredPairPrefer in join2/two_way_join.h).
struct TupleAnswerPrefer {
  bool operator()(const TupleAnswer& a, const TupleAnswer& b) const {
    return a.nodes < b.nodes;
  }
};

/// Counters from one rank-join run.
struct PbrjStats {
  std::vector<int64_t> pulls_per_edge;  ///< pairs consumed per stream
  int64_t tuples_generated = 0;         ///< candidate answers formed
  double final_threshold = 0.0;         ///< tau at termination
};

/// Which stream the engine pulls from next.
enum class PullStrategy {
  /// Cycle through the streams (plain HRJN; the paper's configuration).
  kRoundRobin,
  /// Pull from the stream whose corner currently defines tau (HRJN*):
  /// the only pull that can lower the threshold.
  kAdaptive,
};

/// The Pull/Bound Rank Join engine.
class Pbrj {
 public:
  struct Options {
    PullStrategy strategy = PullStrategy::kRoundRobin;
  };

  /// \param num_attrs  number of node sets n (tuple arity).
  /// \param edges      query-graph edges over attribute indices.
  /// \param aggregate  monotone f (not owned; must outlive Run).
  /// \param k          result count.
  Pbrj(int num_attrs, std::vector<JoinEdge> edges,
       const Aggregate* aggregate, std::size_t k, Options options);
  Pbrj(int num_attrs, std::vector<JoinEdge> edges,
       const Aggregate* aggregate, std::size_t k);

  /// Drives the streams to completion. `streams` supplies one stream per
  /// edge, in the same order as `edges`; entries are not owned.
  Result<std::vector<TupleAnswer>> Run(
      const std::vector<PairStream*>& streams);

  const PbrjStats& stats() const { return stats_; }

 private:
  /// Expands the newly pulled pair of edge `edge_index` into every
  /// complete tuple it participates in (paper's getCandidate).
  void ExpandCandidates(std::size_t edge_index, const ScoredPair& pair,
                        std::vector<TupleAnswer>& out) const;

  /// Shared constructor body (expansion-order precompute).
  void Init();

  void ExpandRec(const std::vector<std::size_t>& order, std::size_t depth,
                 std::vector<NodeId>& bindings,
                 std::vector<double>& edge_scores,
                 std::vector<TupleAnswer>& out) const;

  /// HRJN corner bound over current stream positions. When `arg_edge`
  /// is non-null it receives the edge index attaining the bound (the
  /// adaptive pull target), or SIZE_MAX when every stream is exhausted.
  double CornerBound(std::size_t* arg_edge = nullptr) const;

  int num_attrs_;
  std::vector<JoinEdge> edges_;
  const Aggregate* aggregate_;
  std::size_t k_;
  Options options_;

  // Expansion order of the remaining edges for each starting edge,
  // precomputed so each step shares an endpoint with covered attributes
  // whenever the query graph allows it.
  std::vector<std::vector<std::size_t>> expand_order_;

  std::vector<CandidateBuffer> buffers_;
  std::vector<double> top_score_;   // first pulled score per edge
  std::vector<double> last_score_;  // most recent pulled score per edge
  std::vector<bool> exhausted_;
  std::vector<bool> pulled_any_;

  PbrjStats stats_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_RANKJOIN_PBRJ_H_
