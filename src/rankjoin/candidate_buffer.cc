#include "rankjoin/candidate_buffer.h"

namespace dhtjoin {

const std::vector<ScoredPair> CandidateBuffer::kEmpty = {};

void CandidateBuffer::Insert(NodeId left, NodeId right, double score) {
  auto [it, inserted] = by_pair_.emplace(PairKey(left, right), score);
  DHTJOIN_CHECK(inserted);
  ScoredPair pair{left, right, score};
  all_.push_back(pair);
  by_left_[left].push_back(pair);
  by_right_[right].push_back(pair);
}

std::optional<double> CandidateBuffer::Lookup(NodeId left,
                                              NodeId right) const {
  auto it = by_pair_.find(PairKey(left, right));
  if (it == by_pair_.end()) return std::nullopt;
  return it->second;
}

const std::vector<ScoredPair>& CandidateBuffer::ByLeft(NodeId left) const {
  auto it = by_left_.find(left);
  return it == by_left_.end() ? kEmpty : it->second;
}

const std::vector<ScoredPair>& CandidateBuffer::ByRight(NodeId right) const {
  auto it = by_right_.find(right);
  return it == by_right_.end() ? kEmpty : it->second;
}

}  // namespace dhtjoin
