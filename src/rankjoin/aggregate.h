/// \file rankjoin/aggregate.h
/// \brief Monotone aggregate score functions (paper Def. 2).
///
/// The aggregate score f of a query graph maps the |E_Q| per-edge DHT
/// values of a candidate answer to a single real. Every n-way join
/// algorithm in the paper supports any MONOTONE f: increasing any input
/// must not decrease the output — that is what makes the rank-join corner
/// bound valid. SUM and MIN (the paper's examples, MIN being the
/// experimental default) are provided; users can plug their own.

#ifndef DHTJOIN_RANKJOIN_AGGREGATE_H_
#define DHTJOIN_RANKJOIN_AGGREGATE_H_

#include <span>
#include <string>

namespace dhtjoin {

/// A monotone function of |E_Q| real-valued inputs.
class Aggregate {
 public:
  virtual ~Aggregate() = default;

  virtual std::string Name() const = 0;

  /// Applies f. `scores` has one entry per query-graph edge; entries may
  /// be -infinity (used by the corner bound for exhausted inputs) and
  /// are negative for DHTlambda scores.
  virtual double Apply(std::span<const double> scores) const = 0;
};

/// f = sum of the edge scores ("overall closeness").
class SumAggregate final : public Aggregate {
 public:
  std::string Name() const override { return "SUM"; }
  double Apply(std::span<const double> scores) const override;
};

/// f = minimum edge score ("weakest link"); the paper's default.
class MinAggregate final : public Aggregate {
 public:
  std::string Name() const override { return "MIN"; }
  double Apply(std::span<const double> scores) const override;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_RANKJOIN_AGGREGATE_H_
