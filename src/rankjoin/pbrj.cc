#include "rankjoin/pbrj.h"

#include <algorithm>
#include <limits>

#include "util/top_k.h"

namespace dhtjoin {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
constexpr double kPosInf = std::numeric_limits<double>::infinity();
}  // namespace

bool TupleAnswerGreater(const TupleAnswer& a, const TupleAnswer& b) {
  if (a.f != b.f) return a.f > b.f;
  return a.nodes < b.nodes;
}

Pbrj::Pbrj(int num_attrs, std::vector<JoinEdge> edges,
           const Aggregate* aggregate, std::size_t k, Options options)
    : num_attrs_(num_attrs),
      edges_(std::move(edges)),
      aggregate_(aggregate),
      k_(k),
      options_(options) {
  Init();
}

Pbrj::Pbrj(int num_attrs, std::vector<JoinEdge> edges,
           const Aggregate* aggregate, std::size_t k)
    : Pbrj(num_attrs, std::move(edges), aggregate, k, Options{}) {}

void Pbrj::Init() {
  DHTJOIN_CHECK_GT(num_attrs_, 0);
  DHTJOIN_CHECK(!edges_.empty());
  DHTJOIN_CHECK(aggregate_ != nullptr);
  DHTJOIN_CHECK_GT(k_, 0u);
  for (const JoinEdge& e : edges_) {
    DHTJOIN_CHECK(e.left >= 0 && e.left < num_attrs_);
    DHTJOIN_CHECK(e.right >= 0 && e.right < num_attrs_);
    DHTJOIN_CHECK_NE(e.left, e.right);
  }

  // Precompute, per starting edge, an order of the other edges in which
  // each edge touches an already-covered attribute whenever possible
  // (BFS over the query graph); uncoverable edges (disconnected query
  // graph) fall back to full-buffer enumeration during expansion.
  expand_order_.resize(edges_.size());
  for (std::size_t e0 = 0; e0 < edges_.size(); ++e0) {
    std::vector<bool> used(edges_.size(), false);
    used[e0] = true;
    std::vector<bool> covered(static_cast<std::size_t>(num_attrs_), false);
    covered[static_cast<std::size_t>(edges_[e0].left)] = true;
    covered[static_cast<std::size_t>(edges_[e0].right)] = true;
    auto& order = expand_order_[e0];
    while (order.size() + 1 < edges_.size()) {
      std::size_t pick = edges_.size();
      for (std::size_t e = 0; e < edges_.size(); ++e) {
        if (used[e]) continue;
        bool touches =
            covered[static_cast<std::size_t>(edges_[e].left)] ||
            covered[static_cast<std::size_t>(edges_[e].right)];
        if (touches) {
          pick = e;
          break;
        }
        if (pick == edges_.size()) pick = e;  // fallback: disconnected
      }
      used[pick] = true;
      covered[static_cast<std::size_t>(edges_[pick].left)] = true;
      covered[static_cast<std::size_t>(edges_[pick].right)] = true;
      order.push_back(pick);
    }
  }
}

void Pbrj::ExpandCandidates(std::size_t edge_index, const ScoredPair& pair,
                            std::vector<TupleAnswer>& out) const {
  std::vector<NodeId> bindings(static_cast<std::size_t>(num_attrs_),
                               kInvalidNode);
  std::vector<double> edge_scores(edges_.size(), 0.0);
  bindings[static_cast<std::size_t>(edges_[edge_index].left)] = pair.p;
  bindings[static_cast<std::size_t>(edges_[edge_index].right)] = pair.q;
  edge_scores[edge_index] = pair.score;
  ExpandRec(expand_order_[edge_index], 0, bindings, edge_scores, out);
}

void Pbrj::ExpandRec(const std::vector<std::size_t>& order,
                     std::size_t depth, std::vector<NodeId>& bindings,
                     std::vector<double>& edge_scores,
                     std::vector<TupleAnswer>& out) const {
  if (depth == order.size()) {
    TupleAnswer tuple;
    tuple.nodes = bindings;
    tuple.edge_scores = edge_scores;
    tuple.f = aggregate_->Apply(edge_scores);
    out.push_back(std::move(tuple));
    return;
  }
  const std::size_t e = order[depth];
  const auto left_attr = static_cast<std::size_t>(edges_[e].left);
  const auto right_attr = static_cast<std::size_t>(edges_[e].right);
  const NodeId lb = bindings[left_attr];
  const NodeId rb = bindings[right_attr];
  const CandidateBuffer& buf = buffers_[e];

  if (lb != kInvalidNode && rb != kInvalidNode) {
    auto score = buf.Lookup(lb, rb);
    if (!score.has_value()) return;  // partial answer cannot complete
    edge_scores[e] = *score;
    ExpandRec(order, depth + 1, bindings, edge_scores, out);
    return;
  }
  if (lb != kInvalidNode) {
    for (const ScoredPair& entry : buf.ByLeft(lb)) {
      bindings[right_attr] = entry.q;
      edge_scores[e] = entry.score;
      ExpandRec(order, depth + 1, bindings, edge_scores, out);
    }
    bindings[right_attr] = kInvalidNode;
    return;
  }
  if (rb != kInvalidNode) {
    for (const ScoredPair& entry : buf.ByRight(rb)) {
      bindings[left_attr] = entry.p;
      edge_scores[e] = entry.score;
      ExpandRec(order, depth + 1, bindings, edge_scores, out);
    }
    bindings[left_attr] = kInvalidNode;
    return;
  }
  // Disconnected query graph: no endpoint bound yet.
  for (const ScoredPair& entry : buf.All()) {
    bindings[left_attr] = entry.p;
    bindings[right_attr] = entry.q;
    edge_scores[e] = entry.score;
    ExpandRec(order, depth + 1, bindings, edge_scores, out);
  }
  bindings[left_attr] = kInvalidNode;
  bindings[right_attr] = kInvalidNode;
}

double Pbrj::CornerBound(std::size_t* arg_edge) const {
  // tau = max over edges e (with unseen pairs remaining) of
  //   f(top_1, ..., last_e, ..., top_1)
  // — an upper bound on the score of any tuple not yet generated, valid
  // for monotone f over descending streams (HRJN corner bound).
  double tau = kNegInf;
  if (arg_edge != nullptr) *arg_edge = static_cast<std::size_t>(-1);
  std::vector<double> corner(edges_.size());
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (exhausted_[e]) continue;  // no unseen pair can come from e
    for (std::size_t i = 0; i < edges_.size(); ++i) {
      if (i == e) {
        corner[i] = pulled_any_[i] ? last_score_[i] : kPosInf;
      } else {
        corner[i] = pulled_any_[i] ? top_score_[i] : kPosInf;
      }
    }
    double bound = aggregate_->Apply(corner);
    if (bound > tau || (arg_edge != nullptr &&
                        *arg_edge == static_cast<std::size_t>(-1))) {
      tau = std::max(tau, bound);
      if (arg_edge != nullptr) *arg_edge = e;
    }
  }
  return tau;
}

Result<std::vector<TupleAnswer>> Pbrj::Run(
    const std::vector<PairStream*>& streams) {
  if (streams.size() != edges_.size()) {
    return Status::InvalidArgument(
        "expected " + std::to_string(edges_.size()) + " streams, got " +
        std::to_string(streams.size()));
  }
  for (PairStream* s : streams) {
    if (s == nullptr) return Status::InvalidArgument("null stream");
  }

  buffers_.assign(edges_.size(), CandidateBuffer());
  top_score_.assign(edges_.size(), kNegInf);
  last_score_.assign(edges_.size(), kNegInf);
  exhausted_.assign(edges_.size(), false);
  pulled_any_.assign(edges_.size(), false);
  stats_ = PbrjStats();
  stats_.pulls_per_edge.assign(edges_.size(), 0);

  // TupleAnswerPrefer keeps the retained set at a tied k-th boundary
  // enumeration-order independent, matching NL and the 2-way joins.
  TopK<TupleAnswer, TupleAnswerPrefer> output(k_);
  std::vector<TupleAnswer> generated;

  auto pull = [&](std::size_t e) {
    auto pair = streams[e]->Next();
    if (!pair.has_value()) {
      exhausted_[e] = true;
      return;
    }
    stats_.pulls_per_edge[e]++;
    if (!pulled_any_[e]) {
      pulled_any_[e] = true;
      top_score_[e] = pair->score;
    }
    last_score_[e] = pair->score;
    buffers_[e].Insert(pair->p, pair->q, pair->score);
    generated.clear();
    ExpandCandidates(e, *pair, generated);
    stats_.tuples_generated += static_cast<int64_t>(generated.size());
    for (TupleAnswer& t : generated) {
      output.Offer(t.f, t);
    }
  };

  // Prime every stream once so top_1 scores exist for the corner bound.
  for (std::size_t e = 0; e < edges_.size(); ++e) pull(e);

  // An edge with no pairs at all means no complete tuple can exist.
  bool any_empty = false;
  for (std::size_t e = 0; e < edges_.size(); ++e) {
    if (exhausted_[e] && !pulled_any_[e]) any_empty = true;
  }

  std::size_t rr = 0;
  while (!any_empty) {
    bool all_exhausted = true;
    for (std::size_t e = 0; e < edges_.size(); ++e) {
      if (!exhausted_[e]) all_exhausted = false;
    }
    std::size_t corner_edge = static_cast<std::size_t>(-1);
    double tau = CornerBound(&corner_edge);
    stats_.final_threshold = tau;
    // Stop once k answers are held and none below tau (Alg. 1 Step 6).
    if (output.size() >= k_ && output.MinKey() >= tau) break;
    if (all_exhausted) break;
    if (options_.strategy == PullStrategy::kAdaptive &&
        corner_edge != static_cast<std::size_t>(-1)) {
      // HRJN*: pull the stream whose corner defines tau — the only pull
      // that can lower the threshold.
      pull(corner_edge);
    } else {
      // Round-robin over non-exhausted streams (plain HRJN).
      while (exhausted_[rr]) rr = (rr + 1) % edges_.size();
      pull(rr);
      rr = (rr + 1) % edges_.size();
    }
  }

  std::vector<TupleAnswer> result;
  for (auto& entry : output.TakeSortedDescending()) {
    result.push_back(std::move(entry.item));
  }
  std::sort(result.begin(), result.end(), TupleAnswerGreater);
  if (result.size() > k_) result.resize(k_);
  return result;
}

}  // namespace dhtjoin
