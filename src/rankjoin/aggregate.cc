#include "rankjoin/aggregate.h"

#include <limits>

namespace dhtjoin {

double SumAggregate::Apply(std::span<const double> scores) const {
  double total = 0.0;
  for (double s : scores) total += s;
  return total;
}

double MinAggregate::Apply(std::span<const double> scores) const {
  double lo = std::numeric_limits<double>::infinity();
  for (double s : scores) lo = s < lo ? s : lo;
  return lo;
}

}  // namespace dhtjoin
