/// \file rankjoin/candidate_buffer.h
/// \brief Per-query-edge buffer of pulled node pairs (paper Alg. 1, C).
///
/// Every pair pulled from a 2-way join stream is remembered here so that
/// getCandidate can join a newly arrived pair against all compatible
/// pairs of the other edges. Supports lookup by left endpoint, by right
/// endpoint, and by exact pair. (The paper describes C as a dense
/// |R_i| x |R_j| array; a hash index is equivalent and much smaller,
/// since only pulled pairs are ever probed.)

// dhtlint: allow-file(raw-id-param): the buffer indexes ScoredPair
// endpoints, which stay raw external ids by the join-output
// convention (DESIGN.md §10).

#ifndef DHTJOIN_RANKJOIN_CANDIDATE_BUFFER_H_
#define DHTJOIN_RANKJOIN_CANDIDATE_BUFFER_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "join2/two_way_join.h"

namespace dhtjoin {

/// Hash-indexed set of scored pairs for one query edge.
class CandidateBuffer {
 public:
  /// Inserts a pulled pair. Re-inserting the same (left, right) is a
  /// programming error — streams never repeat pairs.
  void Insert(NodeId left, NodeId right, double score);

  /// Score of (left, right) when buffered.
  std::optional<double> Lookup(NodeId left, NodeId right) const;

  /// All buffered pairs with the given left endpoint (empty span if none).
  const std::vector<ScoredPair>& ByLeft(NodeId left) const;

  /// All buffered pairs with the given right endpoint.
  const std::vector<ScoredPair>& ByRight(NodeId right) const;

  /// Every buffered pair, insertion-ordered.
  const std::vector<ScoredPair>& All() const { return all_; }

  std::size_t size() const { return all_.size(); }

 private:
  static const std::vector<ScoredPair> kEmpty;

  std::vector<ScoredPair> all_;
  std::unordered_map<NodeId, std::vector<ScoredPair>> by_left_;
  std::unordered_map<NodeId, std::vector<ScoredPair>> by_right_;
  std::unordered_map<uint64_t, double> by_pair_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_RANKJOIN_CANDIDATE_BUFFER_H_
