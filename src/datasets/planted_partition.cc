#include "datasets/planted_partition.h"

#include <string>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/hash.h"
#include "util/rng.h"

namespace dhtjoin::datasets {

Result<PlantedPartitionDataset> GeneratePlantedPartition(
    const PlantedPartitionConfig& config) {
  if (config.num_nodes < 2 || config.num_partitions < 1 ||
      config.num_partitions > config.num_nodes) {
    return Status::InvalidArgument("infeasible node/partition counts");
  }
  if (config.intra_fraction < 0.0 || config.intra_fraction > 1.0) {
    return Status::InvalidArgument("intra_fraction must be in [0,1]");
  }
  double max_edges = 0.5 * static_cast<double>(config.num_nodes) *
                     (static_cast<double>(config.num_nodes) - 1);
  if (static_cast<double>(config.num_edges) > 0.5 * max_edges) {
    return Status::InvalidArgument(
        "edge target too dense for rejection sampling");
  }

  Rng rng(config.seed);

  // Geometric partition sizes, each at least 2 nodes.
  std::vector<NodeId> part_size(
      static_cast<std::size_t>(config.num_partitions), 0);
  {
    std::vector<double> weight(part_size.size());
    double w = 1.0, total = 0.0;
    for (auto& x : weight) {
      x = w;
      total += w;
      w *= config.size_skew;
    }
    NodeId assigned = 0;
    for (std::size_t i = 0; i < weight.size(); ++i) {
      part_size[i] = std::max<NodeId>(
          2, static_cast<NodeId>(weight[i] / total *
                                 static_cast<double>(config.num_nodes)));
      assigned += part_size[i];
    }
    // Distribute the rounding remainder over the largest partitions.
    NodeId excess = assigned - config.num_nodes;
    std::size_t i = 0;
    while (excess > 0) {
      if (part_size[i] > 2) {
        part_size[i]--;
        excess--;
      }
      i = (i + 1) % part_size.size();
    }
    while (excess < 0) {
      part_size[0]++;
      excess++;
    }
  }

  // Contiguous node-id ranges per partition.
  std::vector<NodeId> part_begin(part_size.size() + 1, 0);
  for (std::size_t i = 0; i < part_size.size(); ++i) {
    part_begin[i + 1] = part_begin[i] + part_size[i];
  }
  std::vector<int> node_part(static_cast<std::size_t>(config.num_nodes));
  for (std::size_t i = 0; i < part_size.size(); ++i) {
    for (NodeId u = part_begin[i]; u < part_begin[i + 1]; ++u) {
      node_part[static_cast<std::size_t>(u)] = static_cast<int>(i);
    }
  }

  GraphBuilder builder(config.num_nodes, /*undirected=*/true);
  std::unordered_set<uint64_t> seen;
  auto undirected_key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return PackPair(a, b);
  };
  // Incremental adjacency for wedge closure, plus the list of nodes
  // with degree >= 2 (wedge centres) so closure never spins when the
  // early graph happens to be a matching.
  std::vector<std::vector<NodeId>> adj(
      static_cast<std::size_t>(config.num_nodes));
  std::vector<NodeId> wedge_centres;

  int64_t added = 0;
  int64_t attempts = 0;
  const int64_t max_attempts = config.num_edges * 200;
  while (added < config.num_edges && attempts < max_attempts) {
    ++attempts;
    NodeId u, v;
    if (!wedge_centres.empty() && rng.Chance(config.closure_fraction)) {
      // Triadic closure: pick a random wedge u - w - v and close it.
      // Retry v a few times preferring a cross-partition pair — protein
      // interactions correlate across types, and the paper's 3-clique
      // experiments need cliques spanning three partitions.
      NodeId w = wedge_centres[rng.Below(wedge_centres.size())];
      const auto& nbrs = adj[static_cast<std::size_t>(w)];
      u = nbrs[rng.Below(nbrs.size())];
      v = nbrs[rng.Below(nbrs.size())];
      for (int tries = 0;
           tries < 4 && node_part[static_cast<std::size_t>(u)] ==
                            node_part[static_cast<std::size_t>(v)];
           ++tries) {
        v = nbrs[rng.Below(nbrs.size())];
      }
    } else if (rng.Chance(config.intra_fraction)) {
      // Intra-partition edge; partition chosen proportionally to the
      // number of node pairs it contains.
      std::size_t pi;
      do {
        pi = static_cast<std::size_t>(rng.Below(part_size.size()));
      } while (part_size[pi] < 2 ||
               !rng.Chance(static_cast<double>(part_size[pi]) /
                           static_cast<double>(part_size[0])));
      u = part_begin[pi] +
          static_cast<NodeId>(rng.Below(static_cast<uint64_t>(part_size[pi])));
      v = part_begin[pi] +
          static_cast<NodeId>(rng.Below(static_cast<uint64_t>(part_size[pi])));
    } else {
      u = static_cast<NodeId>(
          rng.Below(static_cast<uint64_t>(config.num_nodes)));
      if (config.num_partitions > 1 &&
          rng.Chance(config.adjacent_partner_prob)) {
        // Assortative inter edge: partner from an adjacent partition.
        int pu = node_part[static_cast<std::size_t>(u)];
        int pv = (pu + (rng.Chance(0.5) ? 1 : config.num_partitions - 1)) %
                 config.num_partitions;
        auto pvi = static_cast<std::size_t>(pv);
        v = part_begin[pvi] +
            static_cast<NodeId>(
                rng.Below(static_cast<uint64_t>(part_size[pvi])));
      } else {
        v = static_cast<NodeId>(
            rng.Below(static_cast<uint64_t>(config.num_nodes)));
      }
      if (node_part[static_cast<std::size_t>(u)] ==
          node_part[static_cast<std::size_t>(v)]) {
        continue;  // want an inter-partition edge
      }
    }
    if (u == v) continue;
    if (!seen.insert(undirected_key(u, v)).second) continue;
    DHTJOIN_RETURN_NOT_OK(builder.AddEdge(u, v, 1.0));
    for (NodeId x : {u, v}) {
      auto& row = adj[static_cast<std::size_t>(x)];
      row.push_back(x == u ? v : u);
      if (row.size() == 2) wedge_centres.push_back(x);
    }
    ++added;
  }
  if (added < config.num_edges) {
    return Status::Internal("edge sampling failed to reach target after " +
                            std::to_string(max_attempts) + " attempts");
  }

  PlantedPartitionDataset out;
  DHTJOIN_ASSIGN_OR_RETURN(out.graph, builder.Build());
  for (std::size_t i = 0; i < part_size.size(); ++i) {
    std::vector<NodeId> members;
    members.reserve(static_cast<std::size_t>(part_size[i]));
    for (NodeId u = part_begin[i]; u < part_begin[i + 1]; ++u) {
      members.push_back(u);
    }
    out.partitions.emplace_back("part-" + std::to_string(i + 1),
                                std::move(members));
  }
  return out;
}

}  // namespace dhtjoin::datasets
