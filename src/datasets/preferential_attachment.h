/// \file datasets/preferential_attachment.h
/// \brief Community-structured preferential-attachment graphs.
///
/// The substitute topology for the paper's DBLP and YouTube datasets:
/// heavy-tailed degree distribution (hubs = prolific authors / popular
/// users) plus community locality (research areas / interest clusters).
/// Each arriving node joins a community and attaches `edges_per_node`
/// edges, preferentially to high-degree nodes, mostly inside its own
/// community.

#ifndef DHTJOIN_DATASETS_PREFERENTIAL_ATTACHMENT_H_
#define DHTJOIN_DATASETS_PREFERENTIAL_ATTACHMENT_H_

#include <vector>

#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/rng.h"
#include "util/status.h"

namespace dhtjoin::datasets {

struct PreferentialAttachmentConfig {
  NodeId num_nodes = 30000;
  int edges_per_node = 6;       ///< attachment edges per arriving node
  int num_communities = 10;
  double intra_prob = 0.8;      ///< attach inside own community w.p. this
  /// After the first attachment of a node, follow-up edges close a
  /// triangle with probability triad_prob (Holme-Kim step): the new node
  /// links to a neighbour of its previous target. Real co-authorship and
  /// friendship graphs are highly clustered; link/clique prediction
  /// depends on it.
  double triad_prob = 0.5;
  /// Expected number of extra edges per arriving node created between
  /// two EXISTING nodes (degree-biased endpoints). Co-authorship and
  /// friendship graphs densify over time — established hubs keep forming
  /// new links — and the paper's temporal link-prediction experiment
  /// (DBLP pre-2010 snapshot) relies on late hub-hub edges existing.
  double densify_per_node = 0.4;
  /// When true, edge weights are geometric(weight_p) >= 1 (co-authored
  /// paper counts); when false all weights are 1.
  bool weighted = false;
  double weight_p = 0.5;
  uint64_t seed = 7;
};

/// The raw generator output; undirected edges listed once.
struct PreferentialAttachmentDataset {
  Graph graph;
  std::vector<NodeSet> communities;
  /// Edge list in generation order (u < v normalized), aligned with
  /// `edge_weights`; lets callers annotate edges (e.g. with years).
  std::vector<std::pair<NodeId, NodeId>> edge_list;
  std::vector<double> edge_weights;
};

Result<PreferentialAttachmentDataset> GeneratePreferentialAttachment(
    const PreferentialAttachmentConfig& config);

}  // namespace dhtjoin::datasets

#endif  // DHTJOIN_DATASETS_PREFERENTIAL_ATTACHMENT_H_
