#include "datasets/dblp_like.h"

#include <algorithm>
#include <cmath>

#include "graph/graph_builder.h"
#include "util/rng.h"

namespace dhtjoin::datasets {

const char* const kDblpAreaNames[10] = {"DB",  "AI",  "SYS", "ML",  "IR",
                                        "NET", "SEC", "HCI", "TH",  "ARCH"};

Result<NodeSet> DblpLikeDataset::Area(const std::string& name) const {
  for (const NodeSet& s : areas) {
    if (s.name() == name) return s;
  }
  return Status::NotFound("unknown DBLP area '" + name + "'");
}

Result<Graph> DblpLikeDataset::SnapshotBefore(int year) const {
  GraphBuilder builder(graph.num_nodes(), /*undirected=*/true);
  for (std::size_t e = 0; e < edge_list.size(); ++e) {
    if (edge_year[e] >= year) continue;
    auto [u, v] = edge_list[e];
    DHTJOIN_RETURN_NOT_OK(builder.AddEdge(
        u, v,
        graph.EdgeWeight(graph.ToInternal(ExtNodeId(u)),
                         graph.ToInternal(ExtNodeId(v)))));
  }
  return builder.Build();
}

Result<DblpLikeDataset> GenerateDblpLike(const DblpLikeConfig& config) {
  if (config.first_year >= config.last_year) {
    return Status::InvalidArgument("first_year must precede last_year");
  }
  PreferentialAttachmentConfig pa;
  pa.num_nodes = config.num_authors;
  pa.edges_per_node = config.edges_per_author;
  pa.num_communities = 10;
  pa.intra_prob = 0.8;
  pa.densify_per_node = config.densify_per_author;
  pa.weighted = true;
  pa.weight_p = 0.5;
  pa.seed = config.seed;
  DHTJOIN_ASSIGN_OR_RETURN(PreferentialAttachmentDataset base,
                           GeneratePreferentialAttachment(pa));

  DblpLikeDataset out;
  out.graph = std::move(base.graph);
  out.edge_list = std::move(base.edge_list);
  for (std::size_t i = 0; i < base.communities.size(); ++i) {
    std::vector<ExtNodeId> members(base.communities[i].begin(),
                                base.communities[i].end());
    out.areas.emplace_back(kDblpAreaNames[i], std::move(members));
  }

  // Publication years: the field grows superlinearly, so map generation
  // order through a square root — early edges spread over many years,
  // recent years dominate — with +-1 year of jitter.
  Rng rng(config.seed ^ 0x9e3779b97f4a7c15ULL);
  const int span = config.last_year - config.first_year;
  out.edge_year.resize(out.edge_list.size());
  for (std::size_t e = 0; e < out.edge_list.size(); ++e) {
    double frac = static_cast<double>(e + 1) /
                  static_cast<double>(out.edge_list.size());
    double pos = std::sqrt(frac);  // sqrt: later years denser
    int year = config.first_year + static_cast<int>(pos * span);
    year += static_cast<int>(rng.Between(-1, 1));
    year = std::clamp(year, config.first_year, config.last_year);
    out.edge_year[e] = year;
  }
  return out;
}

}  // namespace dhtjoin::datasets
