/// \file datasets/perturb.h
/// \brief Test-graph construction for the prediction experiments.
///
/// Section VII-B of the paper distinguishes the TRUE graph G from a TEST
/// graph T on which the joins run; predictions are verified against G.
/// Three constructions are used:
///  * link prediction: remove a random fraction of the (P, Q)
///    inter-set edges (Yeast / YouTube), or take a temporal snapshot
///    (DBLP; see DblpLikeDataset::SnapshotBefore);
///  * 3-clique prediction: remove one random edge from every 3-clique
///    spanning (P, Q, R).

#ifndef DHTJOIN_DATASETS_PERTURB_H_
#define DHTJOIN_DATASETS_PERTURB_H_

#include <utility>
#include <vector>

#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/status.h"

namespace dhtjoin::datasets {

/// An undirected node pair, normalized to u <= v.
using UndirectedPair = std::pair<NodeId, NodeId>;

/// Result of an edge-removal perturbation.
struct EdgeRemovalResult {
  Graph graph;                          ///< the test graph T
  std::vector<UndirectedPair> removed;  ///< ground-truth positives
};

/// Removes `fraction` of the undirected edges with one endpoint in P and
/// the other in Q (both directions dropped). The input graph must store
/// undirected edges symmetrically (all library generators do).
Result<EdgeRemovalResult> RemoveInterSetEdges(const Graph& g,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              double fraction,
                                              uint64_t seed);

/// A 3-clique spanning three node sets.
struct Triangle {
  NodeId p, q, r;
};

/// Enumerates all 3-cliques (p, q, r) in P x Q x R (undirected
/// adjacency). A node belonging to several sets may appear in cliques
/// under each membership, but p, q, r are pairwise distinct.
std::vector<Triangle> FindTriangles(const Graph& g, const NodeSet& P,
                                    const NodeSet& Q, const NodeSet& R);

/// Removes one random edge from each 3-clique spanning (P, Q, R); a
/// removal destroying several cliques counts for all of them.
Result<EdgeRemovalResult> RemoveCliqueEdges(const Graph& g, const NodeSet& P,
                                            const NodeSet& Q,
                                            const NodeSet& R, uint64_t seed);

/// Rebuilds `g` without the undirected pairs in `removed`.
Result<Graph> RemoveEdges(const Graph& g,
                          const std::vector<UndirectedPair>& removed);

}  // namespace dhtjoin::datasets

#endif  // DHTJOIN_DATASETS_PERTURB_H_
