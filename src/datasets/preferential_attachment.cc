#include "datasets/preferential_attachment.h"

#include <algorithm>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/hash.h"

namespace dhtjoin::datasets {

Result<PreferentialAttachmentDataset> GeneratePreferentialAttachment(
    const PreferentialAttachmentConfig& config) {
  if (config.num_nodes < 2 || config.edges_per_node < 1 ||
      config.num_communities < 1) {
    return Status::InvalidArgument("infeasible generator config");
  }
  if (config.intra_prob < 0.0 || config.intra_prob > 1.0) {
    return Status::InvalidArgument("intra_prob must be in [0,1]");
  }

  Rng rng(config.seed);
  const auto n = static_cast<std::size_t>(config.num_nodes);
  const auto c = static_cast<std::size_t>(config.num_communities);

  // Community assignment round-robin with a geometric skew: community 0
  // is the largest ("DB publishes the most"), later ones shrink.
  std::vector<int> node_comm(n);
  {
    std::vector<double> weight(c);
    double w = 1.0, total = 0.0;
    for (auto& x : weight) {
      x = w;
      total += w;
      w *= 0.85;
    }
    std::vector<double> cumulative(c);
    double acc = 0.0;
    for (std::size_t i = 0; i < c; ++i) {
      acc += weight[i] / total;
      cumulative[i] = acc;
    }
    for (std::size_t u = 0; u < n; ++u) {
      double x = rng.NextDouble();
      std::size_t ci = 0;
      while (ci + 1 < c && x > cumulative[ci]) ++ci;
      node_comm[u] = static_cast<int>(ci);
    }
  }

  // Degree-proportional sampling via repeated-node lists: every edge
  // endpoint is appended once, so uniform sampling from the list is
  // preferential attachment.
  std::vector<std::vector<NodeId>> comm_endpoints(c);
  std::vector<NodeId> all_endpoints;
  std::unordered_set<uint64_t> seen;
  auto undirected_key = [](NodeId a, NodeId b) {
    if (a > b) std::swap(a, b);
    return PackPair(a, b);
  };

  PreferentialAttachmentDataset out;
  GraphBuilder builder(config.num_nodes, /*undirected=*/true);

  auto add_edge = [&](NodeId u, NodeId v) -> Status {
    double w = config.weighted
                   ? static_cast<double>(rng.Geometric(config.weight_p))
                   : 1.0;
    DHTJOIN_RETURN_NOT_OK(builder.AddEdge(u, v, w));
    out.edge_list.emplace_back(std::min(u, v), std::max(u, v));
    out.edge_weights.push_back(w);
    comm_endpoints[static_cast<std::size_t>(node_comm[
        static_cast<std::size_t>(u)])].push_back(u);
    comm_endpoints[static_cast<std::size_t>(node_comm[
        static_cast<std::size_t>(v)])].push_back(v);
    all_endpoints.push_back(u);
    all_endpoints.push_back(v);
    return Status::OK();
  };

  // Seed clique over the first few nodes so attachment has targets.
  const NodeId seed_size = std::min<NodeId>(
      config.num_nodes, static_cast<NodeId>(config.edges_per_node) + 1);
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      seen.insert(undirected_key(u, v));
      DHTJOIN_RETURN_NOT_OK(add_edge(u, v));
    }
  }

  // Incremental adjacency for the Holme-Kim triangle-closure step.
  std::vector<std::vector<NodeId>> adj(n);
  for (const auto& [eu, ev] : out.edge_list) {
    adj[static_cast<std::size_t>(eu)].push_back(ev);
    adj[static_cast<std::size_t>(ev)].push_back(eu);
  }

  for (NodeId u = seed_size; u < config.num_nodes; ++u) {
    const auto cu = static_cast<std::size_t>(
        node_comm[static_cast<std::size_t>(u)]);
    int placed = 0;
    int guard = 0;
    NodeId last_target = kInvalidNode;
    while (placed < config.edges_per_node &&
           guard < 200 * config.edges_per_node) {
      ++guard;
      NodeId v;
      if (placed > 0 && last_target != kInvalidNode &&
          rng.Chance(config.triad_prob) &&
          !adj[static_cast<std::size_t>(last_target)].empty()) {
        // Triangle closure: befriend a friend of the previous target.
        const auto& nbrs = adj[static_cast<std::size_t>(last_target)];
        v = nbrs[rng.Below(nbrs.size())];
      } else {
        const std::vector<NodeId>& pool =
            (rng.Chance(config.intra_prob) && !comm_endpoints[cu].empty())
                ? comm_endpoints[cu]
                : all_endpoints;
        v = pool[rng.Below(pool.size())];
      }
      if (v == u) continue;
      if (!seen.insert(undirected_key(u, v)).second) continue;
      DHTJOIN_RETURN_NOT_OK(add_edge(u, v));
      adj[static_cast<std::size_t>(u)].push_back(v);
      adj[static_cast<std::size_t>(v)].push_back(u);
      last_target = v;
      ++placed;
    }

    // Densification: extra edges between two existing (degree-biased)
    // nodes, interleaved with node arrivals so they carry late
    // timestamps once edge_list order is mapped to years.
    double budget = config.densify_per_node;
    int extras = static_cast<int>(budget);
    if (rng.Chance(budget - extras)) ++extras;
    for (int e = 0; e < extras; ++e) {
      int guard2 = 0;
      while (guard2++ < 50) {
        NodeId a = all_endpoints[rng.Below(all_endpoints.size())];
        NodeId b;
        const auto& nbrs = adj[static_cast<std::size_t>(a)];
        if (!nbrs.empty() && rng.Chance(config.triad_prob)) {
          // Close a triangle around a: pick a neighbour's neighbour.
          NodeId w = nbrs[rng.Below(nbrs.size())];
          const auto& wn = adj[static_cast<std::size_t>(w)];
          if (wn.empty()) continue;
          b = wn[rng.Below(wn.size())];
        } else {
          b = all_endpoints[rng.Below(all_endpoints.size())];
        }
        if (a == b) continue;
        if (!seen.insert(undirected_key(a, b)).second) continue;
        DHTJOIN_RETURN_NOT_OK(add_edge(a, b));
        adj[static_cast<std::size_t>(a)].push_back(b);
        adj[static_cast<std::size_t>(b)].push_back(a);
        break;
      }
    }
  }

  DHTJOIN_ASSIGN_OR_RETURN(out.graph, builder.Build());
  std::vector<std::vector<NodeId>> members(c);
  for (std::size_t u = 0; u < n; ++u) {
    members[static_cast<std::size_t>(node_comm[u])].push_back(
        static_cast<NodeId>(u));
  }
  for (std::size_t i = 0; i < c; ++i) {
    out.communities.emplace_back("comm-" + std::to_string(i),
                                 std::move(members[i]));
  }
  return out;
}

}  // namespace dhtjoin::datasets
