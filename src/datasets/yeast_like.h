/// \file datasets/yeast_like.h
/// \brief Synthetic stand-in for the Yeast PPI network [Bu et al. 2003].
///
/// The paper's Yeast dataset: undirected, unweighted, 2.4k nodes, 7.2k
/// edges, nodes partitioned into 13 non-overlapping protein-type sets.
/// This generator reproduces those exact counts with a planted-partition
/// topology; partition names follow the paper's type codes ("3-U",
/// "5-F", "8-D" are the sets its experiments reference).

#ifndef DHTJOIN_DATASETS_YEAST_LIKE_H_
#define DHTJOIN_DATASETS_YEAST_LIKE_H_

#include <string>
#include <vector>

#include "datasets/planted_partition.h"

namespace dhtjoin::datasets {

struct YeastLikeDataset {
  Graph graph;
  std::vector<NodeSet> partitions;  ///< 13 disjoint type sets

  /// Partition by paper-style code ("3-U"); Status error when unknown.
  Result<NodeSet> Partition(const std::string& code) const;
};

struct YeastLikeConfig {
  NodeId num_nodes = 2400;
  int64_t num_edges = 7200;
  uint64_t seed = 13;
};

Result<YeastLikeDataset> GenerateYeastLike(
    const YeastLikeConfig& config = YeastLikeConfig{});

}  // namespace dhtjoin::datasets

#endif  // DHTJOIN_DATASETS_YEAST_LIKE_H_
