/// \file datasets/planted_partition.h
/// \brief Planted-partition random graphs (community-structured).
///
/// The substitute topology for the paper's Yeast PPI network: nodes are
/// split into disjoint partitions; most edges fall inside a partition,
/// the rest connect random partitions. Random-walk locality (what makes
/// the B-IDJ pruning effective) follows from the community structure.

#ifndef DHTJOIN_DATASETS_PLANTED_PARTITION_H_
#define DHTJOIN_DATASETS_PLANTED_PARTITION_H_

#include <vector>

#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/status.h"

namespace dhtjoin::datasets {

struct PlantedPartitionConfig {
  NodeId num_nodes = 2400;
  int num_partitions = 13;
  int64_t num_edges = 7200;     ///< undirected edge count target
  double intra_fraction = 0.7;  ///< fraction of edges inside a partition
  /// Fraction of edges placed by closing an open wedge (u-w-v becomes a
  /// triangle). Real PPI / social networks are highly clustered; this is
  /// the property that makes removed edges recoverable by random-walk
  /// proximity (the paper's link-prediction experiments rely on it).
  double closure_fraction = 0.35;
  /// Probability that an inter-partition edge lands on an ADJACENT
  /// partition (index +-1) instead of a uniformly random one. Protein
  /// types interact with preferred partner types; this assortative
  /// mixing is what gives the real Yeast network 3-cliques spanning
  /// specific type triples (the paper's 3-clique experiment).
  double adjacent_partner_prob = 0.5;
  /// Partition sizes decay geometrically by this ratio (1.0 = equal).
  double size_skew = 0.85;
  uint64_t seed = 13;
};

struct PlantedPartitionDataset {
  Graph graph;                       ///< undirected (stored both ways)
  std::vector<NodeSet> partitions;   ///< disjoint node sets
};

/// Generates the graph; fails on infeasible configs (more edges than the
/// simple-graph space allows, non-positive sizes, ...).
Result<PlantedPartitionDataset> GeneratePlantedPartition(
    const PlantedPartitionConfig& config);

}  // namespace dhtjoin::datasets

#endif  // DHTJOIN_DATASETS_PLANTED_PARTITION_H_
