/// \file datasets/youtube_like.h
/// \brief Synthetic stand-in for the paper's YouTube social graph.
///
/// The real dataset [Mislove et al. 2007]: undirected, unweighted, 1.1M
/// nodes / 3M edges, with user-created interest groups as node sets
/// (groups may overlap). This generator reproduces the shape at a
/// configurable scale: heavy-tailed friendship topology plus Zipf-sized
/// overlapping groups whose membership skews toward well-connected
/// users.

#ifndef DHTJOIN_DATASETS_YOUTUBE_LIKE_H_
#define DHTJOIN_DATASETS_YOUTUBE_LIKE_H_

#include <vector>

#include "datasets/preferential_attachment.h"

namespace dhtjoin::datasets {

struct YouTubeLikeConfig {
  NodeId num_users = 60000;
  int edges_per_user = 4;
  int num_groups = 100;
  NodeId max_group_size = 400;
  uint64_t seed = 36;
};

struct YouTubeLikeDataset {
  Graph graph;
  std::vector<NodeSet> groups;  ///< overlapping; "group-<id>"

  /// Group by numeric id (paper uses "groups with ids 1 and 5").
  Result<NodeSet> Group(int id) const;
};

Result<YouTubeLikeDataset> GenerateYouTubeLike(
    const YouTubeLikeConfig& config = YouTubeLikeConfig{});

}  // namespace dhtjoin::datasets

#endif  // DHTJOIN_DATASETS_YOUTUBE_LIKE_H_
