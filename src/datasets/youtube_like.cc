#include "datasets/youtube_like.h"

#include <string>
#include <unordered_set>

#include "util/rng.h"

namespace dhtjoin::datasets {

Result<NodeSet> YouTubeLikeDataset::Group(int id) const {
  std::string name = "group-" + std::to_string(id);
  for (const NodeSet& s : groups) {
    if (s.name() == name) return s;
  }
  return Status::NotFound("unknown YouTube group id " + std::to_string(id));
}

Result<YouTubeLikeDataset> GenerateYouTubeLike(
    const YouTubeLikeConfig& config) {
  if (config.num_groups < 1 || config.max_group_size < 1) {
    return Status::InvalidArgument("infeasible group config");
  }
  PreferentialAttachmentConfig pa;
  pa.num_nodes = config.num_users;
  pa.edges_per_node = config.edges_per_user;
  pa.num_communities = 25;  // implicit interest clusters
  pa.intra_prob = 0.7;
  pa.weighted = false;
  pa.seed = config.seed;
  DHTJOIN_ASSIGN_OR_RETURN(PreferentialAttachmentDataset base,
                           GeneratePreferentialAttachment(pa));

  YouTubeLikeDataset out;
  out.graph = std::move(base.graph);

  // Overlapping groups: Zipf-ish sizes, grown by SNOWBALL sampling from
  // a random seed user — real interest groups recruit along friendship
  // edges, so members of one group are mutually well-connected and
  // groups seeded in nearby regions overlap. (A purely random sample
  // produces groups with no internal edges and no cross-group cliques,
  // which would starve the paper's 3-clique experiment.)
  Rng rng(config.seed ^ 0x5851f42d4c957f2dULL);
  for (int gid = 1; gid <= config.num_groups; ++gid) {
    auto size = static_cast<NodeId>(
        std::max<double>(8.0, static_cast<double>(config.max_group_size) /
                                  static_cast<double>(gid)));
    std::unordered_set<NodeId> members;
    std::vector<NodeId> member_list;
    // Seed on a well-connected user so the snowball can grow.
    NodeId seed = 0;
    for (int tries = 0; tries < 50; ++tries) {
      seed = static_cast<NodeId>(
          rng.Below(static_cast<uint64_t>(out.graph.num_nodes())));
      if (out.graph.Degree(IntNodeId(seed)) >= 4) break;
    }
    members.insert(seed);
    member_list.push_back(seed);
    int guard = 0;
    while (static_cast<NodeId>(members.size()) < size &&
           guard < 500 * size) {
      ++guard;
      // Expand from a random current member along a random edge; with a
      // small probability jump to a random user (groups are not pure
      // communities).
      NodeId u;
      if (rng.Chance(0.92)) {
        NodeId from = member_list[rng.Below(member_list.size())];
        auto row = out.graph.OutEdges(IntNodeId(from));
        if (row.empty()) continue;
        u = row[rng.Below(row.size())].to;
      } else {
        u = static_cast<NodeId>(
            rng.Below(static_cast<uint64_t>(out.graph.num_nodes())));
      }
      if (members.insert(u).second) member_list.push_back(u);
    }
    out.groups.emplace_back("group-" + std::to_string(gid),
                            std::move(member_list));
  }
  return out;
}

}  // namespace dhtjoin::datasets
