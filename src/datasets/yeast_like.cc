#include "datasets/yeast_like.h"

namespace dhtjoin::datasets {

namespace {

/// The 13 protein-type codes; "3-U", "5-F" and "8-D" are the ones the
/// paper's experiments name, placed so that 3-U and 8-D are the two
/// largest partitions (as the paper states).
const char* kTypeCodes[13] = {"3-U", "8-D", "5-F", "1-A", "2-T", "4-G",
                              "6-R", "7-C", "9-M", "10-E", "11-P", "12-S",
                              "13-O"};

}  // namespace

Result<NodeSet> YeastLikeDataset::Partition(const std::string& code) const {
  for (const NodeSet& s : partitions) {
    if (s.name() == code) return s;
  }
  return Status::NotFound("unknown Yeast partition code '" + code + "'");
}

Result<YeastLikeDataset> GenerateYeastLike(const YeastLikeConfig& config) {
  PlantedPartitionConfig pp;
  pp.num_nodes = config.num_nodes;
  pp.num_partitions = 13;
  pp.num_edges = config.num_edges;
  pp.intra_fraction = 0.7;
  pp.size_skew = 0.85;
  pp.seed = config.seed;
  DHTJOIN_ASSIGN_OR_RETURN(PlantedPartitionDataset base,
                           GeneratePlantedPartition(pp));

  YeastLikeDataset out;
  out.graph = std::move(base.graph);
  // Partitions come out of the generator largest-first; relabel with the
  // type codes.
  for (std::size_t i = 0; i < base.partitions.size(); ++i) {
    std::vector<ExtNodeId> members(base.partitions[i].begin(),
                                base.partitions[i].end());
    out.partitions.emplace_back(kTypeCodes[i], std::move(members));
  }
  return out;
}

}  // namespace dhtjoin::datasets
