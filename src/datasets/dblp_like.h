/// \file datasets/dblp_like.h
/// \brief Synthetic stand-in for the paper's DBLP co-authorship graph.
///
/// The real dataset: undirected, weighted (papers co-authored), 188k
/// nodes / 1.14M edges, with authors grouped by research area, plus a
/// temporal snapshot (edges before 2010) used as the link-prediction
/// test graph. This generator reproduces the shape at a configurable
/// scale: community preferential attachment, geometric weights, and a
/// per-edge publication year that grows with generation order (the graph
/// "accretes" like a bibliography does).

#ifndef DHTJOIN_DATASETS_DBLP_LIKE_H_
#define DHTJOIN_DATASETS_DBLP_LIKE_H_

#include <string>
#include <vector>

#include "datasets/preferential_attachment.h"
#include "util/status.h"

namespace dhtjoin::datasets {

struct DblpLikeConfig {
  NodeId num_authors = 30000;
  int edges_per_author = 6;
  /// Extra hub-hub collaborations per arriving author (densification);
  /// these carry late years, which is what the temporal link-prediction
  /// experiment predicts.
  double densify_per_author = 0.8;
  uint64_t seed = 7;
  int first_year = 1990;
  int last_year = 2012;
};

struct DblpLikeDataset {
  Graph graph;
  std::vector<NodeSet> areas;  ///< research areas ("DB", "AI", ...)
  std::vector<std::pair<NodeId, NodeId>> edge_list;
  std::vector<int> edge_year;  ///< aligned with edge_list

  /// Area by name; Status error when unknown.
  Result<NodeSet> Area(const std::string& name) const;

  /// Co-authorship graph restricted to edges published before `year`
  /// (the paper's test graph T for link prediction).
  Result<Graph> SnapshotBefore(int year) const;
};

/// Research-area names, largest community first.
extern const char* const kDblpAreaNames[10];

Result<DblpLikeDataset> GenerateDblpLike(
    const DblpLikeConfig& config = DblpLikeConfig{});

}  // namespace dhtjoin::datasets

#endif  // DHTJOIN_DATASETS_DBLP_LIKE_H_
