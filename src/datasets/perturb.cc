#include "datasets/perturb.h"

#include <algorithm>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/hash.h"
#include "util/rng.h"

namespace dhtjoin::datasets {

namespace {

uint64_t UndirectedKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return PackPair(a, b);
}

}  // namespace

Result<Graph> RemoveEdges(const Graph& g,
                          const std::vector<UndirectedPair>& removed) {
  std::unordered_set<uint64_t> drop;
  for (auto [u, v] : removed) drop.insert(UndirectedKey(u, v));
  GraphBuilder builder(g.num_nodes(), /*undirected=*/false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const OutEdge& e : g.OutEdges(u)) {
      if (drop.contains(UndirectedKey(u, e.to))) continue;
      DHTJOIN_RETURN_NOT_OK(builder.AddEdge(u, e.to, e.weight));
    }
  }
  return builder.Build();
}

Result<EdgeRemovalResult> RemoveInterSetEdges(const Graph& g,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              double fraction,
                                              uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0,1]");
  }
  DHTJOIN_RETURN_NOT_OK(P.Validate(g));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(g));

  // Collect inter-set undirected pairs once (scan the smaller side).
  std::vector<UndirectedPair> candidates;
  std::unordered_set<uint64_t> seen;
  for (NodeId p : P) {
    for (const OutEdge& e : g.OutEdges(p)) {
      if (!Q.Contains(e.to) || e.to == p) continue;
      if (seen.insert(UndirectedKey(p, e.to)).second) {
        candidates.emplace_back(std::min(p, e.to), std::max(p, e.to));
      }
    }
  }

  Rng rng(seed);
  // Fisher-Yates prefix shuffle to pick the removal sample.
  auto keep = static_cast<std::size_t>(
      (1.0 - fraction) * static_cast<double>(candidates.size()) + 0.5);
  std::size_t remove_count = candidates.size() - keep;
  for (std::size_t i = 0; i < remove_count; ++i) {
    std::size_t j = i + static_cast<std::size_t>(
                            rng.Below(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
  }
  EdgeRemovalResult out;
  out.removed.assign(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(
                                              remove_count));
  DHTJOIN_ASSIGN_OR_RETURN(out.graph, RemoveEdges(g, out.removed));
  return out;
}

std::vector<Triangle> FindTriangles(const Graph& g, const NodeSet& P,
                                    const NodeSet& Q, const NodeSet& R) {
  std::vector<Triangle> out;
  for (NodeId p : P) {
    for (const OutEdge& pe : g.OutEdges(p)) {
      NodeId q = pe.to;
      if (q == p || !Q.Contains(q)) continue;
      // Intersect out-neighbourhoods of p and q, restricted to R.
      auto prow = g.OutEdges(p);
      auto qrow = g.OutEdges(q);
      std::size_t i = 0, j = 0;
      while (i < prow.size() && j < qrow.size()) {
        if (prow[i].to < qrow[j].to) {
          ++i;
        } else if (prow[i].to > qrow[j].to) {
          ++j;
        } else {
          NodeId r = prow[i].to;
          if (r != p && r != q && R.Contains(r)) {
            out.push_back(Triangle{p, q, r});
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return out;
}

Result<EdgeRemovalResult> RemoveCliqueEdges(const Graph& g, const NodeSet& P,
                                            const NodeSet& Q,
                                            const NodeSet& R,
                                            uint64_t seed) {
  DHTJOIN_RETURN_NOT_OK(P.Validate(g));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(g));
  DHTJOIN_RETURN_NOT_OK(R.Validate(g));

  Rng rng(seed);
  std::unordered_set<uint64_t> drop_keys;
  EdgeRemovalResult out;
  for (const Triangle& t : FindTriangles(g, P, Q, R)) {
    // Skip cliques already broken by an earlier removal.
    bool broken = drop_keys.contains(UndirectedKey(t.p, t.q)) ||
                  drop_keys.contains(UndirectedKey(t.q, t.r)) ||
                  drop_keys.contains(UndirectedKey(t.p, t.r));
    if (broken) continue;
    UndirectedPair sides[3] = {{t.p, t.q}, {t.q, t.r}, {t.p, t.r}};
    UndirectedPair pick = sides[rng.Below(3)];
    if (drop_keys.insert(UndirectedKey(pick.first, pick.second)).second) {
      out.removed.emplace_back(std::min(pick.first, pick.second),
                               std::max(pick.first, pick.second));
    }
  }
  DHTJOIN_ASSIGN_OR_RETURN(out.graph, RemoveEdges(g, out.removed));
  return out;
}

}  // namespace dhtjoin::datasets
