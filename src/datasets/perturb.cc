#include "datasets/perturb.h"

#include <algorithm>
#include <unordered_set>

#include "graph/graph_builder.h"
#include "util/hash.h"
#include "util/rng.h"

namespace dhtjoin::datasets {

namespace {

uint64_t UndirectedKey(NodeId a, NodeId b) {
  if (a > b) std::swap(a, b);
  return PackPair(a, b);
}

}  // namespace

Result<Graph> RemoveEdges(const Graph& g,
                          const std::vector<UndirectedPair>& removed) {
  // `removed` carries EXTERNAL ids (like every perturb input/output);
  // rows are layout-addressed, so keys and the rebuilt graph use the
  // translated ids — the result is insertion-ordered and externally
  // labelled whatever layout `g` carries.
  std::unordered_set<uint64_t> drop;
  for (auto [u, v] : removed) drop.insert(UndirectedKey(u, v));
  GraphBuilder builder(g.num_nodes(), /*undirected=*/false);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const NodeId ext_u = g.ToExternal(IntNodeId(u)).value();
    auto row = g.OutEdges(IntNodeId(u));
    auto weights = g.OutWeights(IntNodeId(u));
    for (std::size_t i = 0; i < row.size(); ++i) {
      const NodeId ext_v = g.ToExternal(IntNodeId(row[i].to)).value();
      if (drop.contains(UndirectedKey(ext_u, ext_v))) continue;
      DHTJOIN_RETURN_NOT_OK(builder.AddEdge(ext_u, ext_v, weights[i]));
    }
  }
  return builder.Build();
}

Result<EdgeRemovalResult> RemoveInterSetEdges(const Graph& g,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              double fraction,
                                              uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    return Status::InvalidArgument("fraction must be in [0,1]");
  }
  DHTJOIN_RETURN_NOT_OK(P.Validate(g));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(g));

  // Collect inter-set undirected pairs once (scan the smaller side).
  std::vector<UndirectedPair> candidates;
  std::unordered_set<uint64_t> seen;
  for (ExtNodeId ep : P) {
    const NodeId p = ep.value();
    for (const OutEdge& e : g.OutEdges(g.ToInternal(ep))) {
      const ExtNodeId ev = g.ToExternal(IntNodeId(e.to));
      const NodeId v = ev.value();
      if (!Q.Contains(ev) || v == p) continue;
      if (seen.insert(UndirectedKey(p, v)).second) {
        candidates.emplace_back(std::min(p, v), std::max(p, v));
      }
    }
  }

  Rng rng(seed);
  // Fisher-Yates prefix shuffle to pick the removal sample.
  auto keep = static_cast<std::size_t>(
      (1.0 - fraction) * static_cast<double>(candidates.size()) + 0.5);
  std::size_t remove_count = candidates.size() - keep;
  for (std::size_t i = 0; i < remove_count; ++i) {
    std::size_t j = i + static_cast<std::size_t>(
                            rng.Below(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
  }
  EdgeRemovalResult out;
  out.removed.assign(candidates.begin(),
                     candidates.begin() + static_cast<std::ptrdiff_t>(
                                              remove_count));
  DHTJOIN_ASSIGN_OR_RETURN(out.graph, RemoveEdges(g, out.removed));
  return out;
}

std::vector<Triangle> FindTriangles(const Graph& g, const NodeSet& P,
                                    const NodeSet& Q, const NodeSet& R) {
  std::vector<Triangle> out;
  for (ExtNodeId ep : P) {
    const NodeId p = ep.value();
    for (const OutEdge& pe : g.OutEdges(g.ToInternal(ep))) {
      const ExtNodeId eq = g.ToExternal(IntNodeId(pe.to));
      const NodeId q = eq.value();
      if (q == p || !Q.Contains(eq)) continue;
      // Intersect out-neighbourhoods of p and q, restricted to R.
      // Rows are sorted by CANONICAL (external) id, so the merge
      // compares external ids — correct in every layout.
      auto prow = g.OutEdges(g.ToInternal(ep));
      auto qrow = g.OutEdges(g.ToInternal(eq));
      std::size_t i = 0, j = 0;
      while (i < prow.size() && j < qrow.size()) {
        const NodeId pi = g.ToExternal(IntNodeId(prow[i].to)).value();
        const NodeId qj = g.ToExternal(IntNodeId(qrow[j].to)).value();
        if (pi < qj) {
          ++i;
        } else if (pi > qj) {
          ++j;
        } else {
          if (pi != p && pi != q && R.Contains(ExtNodeId(pi))) {
            out.push_back(Triangle{p, q, pi});
          }
          ++i;
          ++j;
        }
      }
    }
  }
  return out;
}

Result<EdgeRemovalResult> RemoveCliqueEdges(const Graph& g, const NodeSet& P,
                                            const NodeSet& Q,
                                            const NodeSet& R,
                                            uint64_t seed) {
  DHTJOIN_RETURN_NOT_OK(P.Validate(g));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(g));
  DHTJOIN_RETURN_NOT_OK(R.Validate(g));

  Rng rng(seed);
  std::unordered_set<uint64_t> drop_keys;
  EdgeRemovalResult out;
  for (const Triangle& t : FindTriangles(g, P, Q, R)) {
    // Skip cliques already broken by an earlier removal.
    bool broken = drop_keys.contains(UndirectedKey(t.p, t.q)) ||
                  drop_keys.contains(UndirectedKey(t.q, t.r)) ||
                  drop_keys.contains(UndirectedKey(t.p, t.r));
    if (broken) continue;
    UndirectedPair sides[3] = {{t.p, t.q}, {t.q, t.r}, {t.p, t.r}};
    UndirectedPair pick = sides[rng.Below(3)];
    if (drop_keys.insert(UndirectedKey(pick.first, pick.second)).second) {
      out.removed.emplace_back(std::min(pick.first, pick.second),
                               std::max(pick.first, pick.second));
    }
  }
  DHTJOIN_ASSIGN_OR_RETURN(out.graph, RemoveEdges(g, out.removed));
  return out;
}

}  // namespace dhtjoin::datasets
