/// \file obs/clock.h
/// \brief Injected time source for all telemetry (DESIGN.md §11).
///
/// Every timing measurement in src/ goes through an obs::Clock so that
/// (a) fake-clock tests can drive latency — and therefore histograms,
/// slow-query capture, and deadline interplay — deterministically, and
/// (b) dhtlint's raw-clock rule can ban direct monotonic-clock reads
/// everywhere else in src/. SystemClock below is the single sanctioned
/// raw read; Deadline (util/deadline.h) keeps its own steady_clock
/// arithmetic because expiry is lifecycle control, not telemetry, and
/// carries a reasoned suppression.

#ifndef DHTJOIN_OBS_CLOCK_H_
#define DHTJOIN_OBS_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>

#include "obs/config.h"

namespace dhtjoin {
namespace obs {

/// Monotonic nanosecond time source. Implementations must be
/// thread-safe: NowNanos() is called from pool workers.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual int64_t NowNanos() const = 0;
};

/// The real monotonic clock — the one sanctioned raw-clock read in
/// src/ (everything else injects a Clock*).
class SystemClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  /// Process-wide instance for callers that did not inject a clock.
  static const SystemClock* Get() {
    static const SystemClock kClock;
    return &kClock;
  }
};

/// Deterministic test clock: time moves only when told to. Advancing
/// from one thread while another reads is safe (relaxed atomics).
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_(start_nanos) {}

  int64_t NowNanos() const override {
    return now_.load(std::memory_order_relaxed);
  }

  void AdvanceNanos(int64_t delta) {
    now_.fetch_add(delta, std::memory_order_relaxed);
  }
  void AdvanceMicros(int64_t delta) { AdvanceNanos(delta * 1000); }
  void AdvanceMillis(int64_t delta) { AdvanceNanos(delta * 1000000); }

  void Set(int64_t nanos) { now_.store(nanos, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> now_;
};

}  // namespace obs
}  // namespace dhtjoin

#endif  // DHTJOIN_OBS_CLOCK_H_
