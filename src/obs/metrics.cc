#include "obs/metrics.h"

#include "util/check.h"

namespace dhtjoin {
namespace obs {

int64_t HistogramSnapshot::QuantileBound(double q) const {
  if (count <= 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile among `count` sorted values, 1-based.
  int64_t rank = static_cast<int64_t>(q * static_cast<double>(count));
  if (rank < 1) rank = 1;
  if (rank > count) rank = count;
  int64_t seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    seen += buckets[static_cast<std::size_t>(b)];
    if (seen >= rank) return Histogram::BucketUpperBound(b);
  }
  return Histogram::BucketUpperBound(Histogram::kBuckets - 1);
}

namespace {
template <typename T>
const T* FindByName(const std::vector<T>& v, const std::string& name) {
  for (const T& s : v) {
    if (s.name == name) return &s;
  }
  return nullptr;
}
}  // namespace

const CounterSnapshot* MetricsSnapshot::FindCounter(
    const std::string& name) const {
  return FindByName(counters, name);
}

const HistogramSnapshot* MetricsSnapshot::FindHistogram(
    const std::string& name) const {
  return FindByName(histograms, name);
}

const GaugeSnapshot* MetricsSnapshot::FindGauge(
    const std::string& name) const {
  return FindByName(gauges, name);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  // Name collisions across kinds are programming errors.
  DHTJOIN_CHECK(gauges_.find(name) == gauges_.end());
  DHTJOIN_CHECK(histograms_.find(name) == histograms_.end());
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  DHTJOIN_CHECK(counters_.find(name) == counters_.end());
  DHTJOIN_CHECK(histograms_.find(name) == histograms_.end());
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  DHTJOIN_CHECK(counters_.find(name) == counters_.end());
  DHTJOIN_CHECK(gauges_.find(name) == gauges_.end());
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      hs.buckets[static_cast<std::size_t>(b)] =
          h->buckets_[static_cast<std::size_t>(b)].load(
              std::memory_order_relaxed);
      hs.count += hs.buckets[static_cast<std::size_t>(b)];
    }
    hs.sum = h->Sum();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;
}

}  // namespace obs
}  // namespace dhtjoin
