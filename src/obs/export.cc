#include "obs/export.h"

#include <cctype>

#include "obs/json.h"

namespace dhtjoin {
namespace obs {

std::string ToJson(const MetricsSnapshot& snapshot) {
  JsonObject doc;
  for (const CounterSnapshot& c : snapshot.counters) {
    doc.Set(c.name, c.value);
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    doc.Set(g.name, g.value);
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    doc.Set(h.name + ".count", h.count)
        .Set(h.name + ".sum", h.sum)
        .Set(h.name + ".mean", h.Mean())
        .Set(h.name + ".p50", h.QuantileBound(0.50))
        .Set(h.name + ".p95", h.QuantileBound(0.95))
        .Set(h.name + ".p99", h.QuantileBound(0.99));
  }
  return doc.ToString();
}

namespace {

std::string PromName(const std::string& name) {
  std::string out = "dhtjoin_";
  for (const char c : name) {
    out += (std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_')
               ? c
               : '_';
  }
  return out;
}

std::string PromDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const CounterSnapshot& c : snapshot.counters) {
    const std::string name = PromName(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    const std::string name = PromName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + PromDouble(g.value) + "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    const std::string name = PromName(h.name);
    out += "# TYPE " + name + " summary\n";
    out += name + "{quantile=\"0.5\"} " +
           std::to_string(h.QuantileBound(0.50)) + "\n";
    out += name + "{quantile=\"0.95\"} " +
           std::to_string(h.QuantileBound(0.95)) + "\n";
    out += name + "{quantile=\"0.99\"} " +
           std::to_string(h.QuantileBound(0.99)) + "\n";
    out += name + "_sum " + std::to_string(h.sum) + "\n";
    out += name + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string ToJson(const TwoWayJoinStats& stats) {
  std::string barriers = "[";
  for (std::size_t i = 0; i < stats.barriers_per_iteration.size(); ++i) {
    if (i > 0) barriers += ", ";
    barriers += std::to_string(stats.barriers_per_iteration[i]);
  }
  barriers += "]";
  JsonObject doc;
  doc.Set("walk_steps", stats.walk_steps)
      .Set("walks_started", stats.walks_started)
      .Set("pool_barriers", stats.pool_barriers)
      .SetRaw("barriers_per_iteration", barriers)
      .Set("state_hits", stats.state_hits)
      .Set("state_misses", stats.state_misses)
      .Set("state_evictions", stats.state_evictions)
      .SetRaw("degraded", stats.partial.degraded ? "true" : "false")
      .Set("level_reached", stats.partial.level_reached)
      .Set("eps_bound", stats.partial.eps_bound);
  return doc.ToString();
}

}  // namespace obs
}  // namespace dhtjoin
