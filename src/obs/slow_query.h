/// \file obs/slow_query.h
/// \brief Ring-buffered slow-query log (DESIGN.md §11).
///
/// The serving session records every query whose latency (by the
/// injected obs::Clock) exceeds the configured threshold, together
/// with the query's FULL rendered span tree — the ring holds the most
/// recent `capacity` offenders, oldest evicted first. Everything here
/// is telemetry capture, not control flow: dropping an entry can never
/// affect answers.

#ifndef DHTJOIN_OBS_SLOW_QUERY_H_
#define DHTJOIN_OBS_SLOW_QUERY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace dhtjoin {
namespace obs {

class SlowQueryLog {
 public:
  struct Entry {
    std::string name;        // e.g. "twoway |P|=8 |Q|=16 k=10"
    int64_t latency_ns = 0;
    int64_t sequence = 0;    // monotone capture number (0-based)
    std::string trace_json;  // full span tree at capture time
  };

  explicit SlowQueryLog(std::size_t capacity = 64)
      : capacity_(capacity > 0 ? capacity : 1) {}

  void Record(std::string name, int64_t latency_ns, std::string trace_json) {
    std::lock_guard<std::mutex> lock(mu_);
    Entry e;
    e.name = std::move(name);
    e.latency_ns = latency_ns;
    e.sequence = total_recorded_++;
    e.trace_json = std::move(trace_json);
    if (ring_.size() < capacity_) {
      ring_.push_back(std::move(e));
    } else {
      ring_[static_cast<std::size_t>(e.sequence) % capacity_] = std::move(e);
    }
  }

  /// Entries oldest-first (at most `capacity` of them).
  std::vector<Entry> Dump() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<Entry> out;
    out.reserve(ring_.size());
    if (ring_.size() < capacity_) {
      out = ring_;
    } else {
      const std::size_t head =
          static_cast<std::size_t>(total_recorded_) % capacity_;
      for (std::size_t i = 0; i < ring_.size(); ++i) {
        out.push_back(ring_[(head + i) % capacity_]);
      }
    }
    return out;
  }

  /// Total queries ever recorded (>= entries retained).
  int64_t total_recorded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return total_recorded_;
  }

  /// {"total_recorded": N, "slow_queries": [{...span tree...}, ...]}
  std::string ToJson() const {
    const std::vector<Entry> entries = Dump();
    std::vector<JsonObject> items;
    items.reserve(entries.size());
    for (const Entry& e : entries) {
      JsonObject item;
      item.Set("name", e.name)
          .Set("sequence", e.sequence)
          .Set("latency_ns", e.latency_ns)
          .SetRaw("trace", e.trace_json.empty() ? "{}" : e.trace_json);
      items.push_back(std::move(item));
    }
    JsonObject doc;
    doc.Set("total_recorded", total_recorded())
        .SetRaw("slow_queries", JsonArray(items));
    return doc.ToString();
  }

 private:
  mutable std::mutex mu_;
  const std::size_t capacity_;
  std::vector<Entry> ring_;
  int64_t total_recorded_ = 0;
};

}  // namespace obs
}  // namespace dhtjoin

#endif  // DHTJOIN_OBS_SLOW_QUERY_H_
