/// \file obs/json.h
/// \brief Minimal JSON emission shared by benches, the CLI, and the
/// metrics export surface.
///
/// Moved here from bench/bench_common.h so every `# stats` block and
/// `BENCH_*.json` file in the repo renders through ONE code path
/// (DESIGN.md §11). The byte format is unchanged — committed baselines
/// under bench/baselines/ still parse — and bench_common.h re-exports
/// these names into dhtjoin::bench, so bench sources compile as before.
/// Values are rendered eagerly; nested objects/arrays go in via SetRaw.

#ifndef DHTJOIN_OBS_JSON_H_
#define DHTJOIN_OBS_JSON_H_

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace dhtjoin {
namespace obs {

/// Insertion-ordered JSON object builder. Doubles render with %.9g;
/// strings are quoted verbatim (callers pass escape-free strings).
class JsonObject {
 public:
  JsonObject& Set(const std::string& key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return SetRaw(key, buf);
  }
  JsonObject& Set(const std::string& key, int64_t v) {
    return SetRaw(key, std::to_string(v));
  }
  JsonObject& Set(const std::string& key, int v) {
    return SetRaw(key, std::to_string(v));
  }
  JsonObject& Set(const std::string& key, const std::string& v) {
    return SetRaw(key, "\"" + v + "\"");  // callers pass escape-free strings
  }
  JsonObject& SetRaw(const std::string& key, const std::string& raw) {
    fields_.emplace_back(key, raw);
    return *this;
  }
  std::string ToString() const {
    std::string out = "{";
    for (std::size_t i = 0; i < fields_.size(); ++i) {
      if (i > 0) out += ", ";
      out += "\"" + fields_[i].first + "\": " + fields_[i].second;
    }
    return out + "}";
  }

 private:
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// Renders a list of JSON objects as a JSON array.
inline std::string JsonArray(const std::vector<JsonObject>& items) {
  std::string out = "[";
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += ", ";
    out += items[i].ToString();
  }
  return out + "]";
}

/// Writes `json` to `path` (plus newline); aborts on IO failure.
/// Bench/CLI-only semantics — library code never calls this.
inline void WriteJsonFile(const std::string& path, const std::string& json) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    std::exit(1);
  }
  std::fprintf(f, "%s\n", json.c_str());
  std::fclose(f);
}

}  // namespace obs
}  // namespace dhtjoin

#endif  // DHTJOIN_OBS_JSON_H_
