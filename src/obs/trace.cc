#include "obs/trace.h"

#ifndef DHT_OBS_OFF

#include <cstdio>

#include "util/check.h"

namespace dhtjoin {
namespace obs {

namespace {

void AppendInt(std::string* out, int64_t v) { *out += std::to_string(v); }

void AppendDouble(std::string* out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  *out += buf;
}

}  // namespace

Trace::Trace(const Clock* clock) : clock_(clock) {
  DHTJOIN_CHECK(clock_ != nullptr);
}

Trace::SpanId Trace::Begin(const char* name) {
  const int64_t now = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  const SpanId id = static_cast<SpanId>(spans_.size());
  Span span;
  span.name = name;
  span.start_ns = now;
  if (!stack_.empty()) {
    span.parent = stack_.back();
    spans_[static_cast<std::size_t>(span.parent)].children.push_back(id);
  } else {
    roots_.push_back(id);
  }
  spans_.push_back(std::move(span));
  stack_.push_back(id);
  return id;
}

void Trace::End(SpanId id) {
  if (id == kNoSpan) return;
  const int64_t now = clock_->NowNanos();
  std::lock_guard<std::mutex> lock(mu_);
  DHTJOIN_CHECK_GE(id, 0);
  DHTJOIN_CHECK_LT(static_cast<std::size_t>(id), spans_.size());
  Span& span = spans_[static_cast<std::size_t>(id)];
  if (span.finished) return;  // idempotent
  span.end_ns = now;
  span.finished = true;
  // Unwind the nesting stack through `id`: any deeper spans left open
  // (a degrade/cancel path returned early) stay marked unfinished but
  // no longer parent new spans.
  while (!stack_.empty()) {
    const SpanId top = stack_.back();
    stack_.pop_back();
    if (top == id) break;
  }
}

void Trace::SetAttr(SpanId id, const char* key, int64_t value) {
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  DHTJOIN_CHECK_LT(static_cast<std::size_t>(id), spans_.size());
  Attr a;
  a.key = key;
  a.is_int = true;
  a.i = value;
  spans_[static_cast<std::size_t>(id)].attrs.push_back(std::move(a));
}

void Trace::SetAttr(SpanId id, const char* key, double value) {
  if (id == kNoSpan) return;
  std::lock_guard<std::mutex> lock(mu_);
  DHTJOIN_CHECK_LT(static_cast<std::size_t>(id), spans_.size());
  Attr a;
  a.key = key;
  a.is_int = false;
  a.d = value;
  spans_[static_cast<std::size_t>(id)].attrs.push_back(std::move(a));
}

std::size_t Trace::num_spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

std::size_t Trace::CountSpans(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Span& s : spans_) {
    if (s.name == name) ++n;
  }
  return n;
}

int64_t Trace::SumAttr(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t total = 0;
  for (const Span& s : spans_) {
    for (const Attr& a : s.attrs) {
      if (a.is_int && a.key == key) total += a.i;
    }
  }
  return total;
}

int64_t Trace::DurationNanos(SpanId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return 0;
  const Span& s = spans_[static_cast<std::size_t>(id)];
  return s.finished ? s.end_ns - s.start_ns : 0;
}

bool Trace::Finished(SpanId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (id < 0 || static_cast<std::size_t>(id) >= spans_.size()) return false;
  return spans_[static_cast<std::size_t>(id)].finished;
}

void Trace::AppendJson(SpanId id, std::string* out) const {
  const Span& s = spans_[static_cast<std::size_t>(id)];
  *out += "{\"name\": \"" + s.name + "\", \"start_ns\": ";
  AppendInt(out, s.start_ns);
  *out += ", \"duration_ns\": ";
  AppendInt(out, s.finished ? s.end_ns - s.start_ns : 0);
  if (!s.finished) *out += ", \"unfinished\": true";
  for (const Attr& a : s.attrs) {
    *out += ", \"" + a.key + "\": ";
    if (a.is_int) {
      AppendInt(out, a.i);
    } else {
      AppendDouble(out, a.d);
    }
  }
  if (!s.children.empty()) {
    *out += ", \"spans\": [";
    for (std::size_t i = 0; i < s.children.size(); ++i) {
      if (i > 0) *out += ", ";
      AppendJson(s.children[i], out);
    }
    *out += "]";
  }
  *out += "}";
}

std::string Trace::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  if (roots_.size() == 1) {
    AppendJson(roots_[0], &out);
    return out;
  }
  out = "{\"spans\": [";
  for (std::size_t i = 0; i < roots_.size(); ++i) {
    if (i > 0) out += ", ";
    AppendJson(roots_[i], &out);
  }
  out += "]}";
  return out;
}

void Trace::AppendText(SpanId id, int depth, std::string* out) const {
  const Span& s = spans_[static_cast<std::size_t>(id)];
  out->append(static_cast<std::size_t>(depth) * 2, ' ');
  *out += s.name;
  *out += " ";
  AppendInt(out, s.finished ? s.end_ns - s.start_ns : 0);
  *out += "ns";
  if (!s.finished) *out += " (unfinished)";
  for (const Attr& a : s.attrs) {
    *out += " " + a.key + "=";
    if (a.is_int) {
      AppendInt(out, a.i);
    } else {
      AppendDouble(out, a.d);
    }
  }
  *out += "\n";
  for (const SpanId child : s.children) {
    AppendText(child, depth + 1, out);
  }
}

std::string Trace::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const SpanId root : roots_) AppendText(root, 0, &out);
  return out;
}

}  // namespace obs
}  // namespace dhtjoin

#endif  // DHT_OBS_OFF
