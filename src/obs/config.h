/// \file obs/config.h
/// \brief Compile-time switch for the observability layer.
///
/// Building with -DDHT_OBS_OFF (CMake option DHT_OBS_OFF) compiles out
/// trace spans and all telemetry *timing* (clock reads in ThreadPool
/// task wrappers, span timestamps). Plain counters stay live in every
/// build: they are part of the stats plumbing that tests and benches
/// assert on (e.g. scheduler_barriers), and a relaxed fetch_add at
/// round granularity is not measurable. See DESIGN.md §11.

#ifndef DHTJOIN_OBS_CONFIG_H_
#define DHTJOIN_OBS_CONFIG_H_

namespace dhtjoin {
namespace obs {

#ifdef DHT_OBS_OFF
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

}  // namespace obs
}  // namespace dhtjoin

#endif  // DHTJOIN_OBS_CONFIG_H_
