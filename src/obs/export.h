/// \file obs/export.h
/// \brief Export surface: registry snapshots and engine stat structs
/// rendered as JSON / Prometheus text (DESIGN.md §11).
///
/// This is the one place stats become bytes. The CLI's `# stats`
/// blocks, `--metrics-out` dumps, and the bench JSON files all come
/// through here (benches via obs/json.h re-exported in
/// bench_common.h), so key names and number formatting cannot drift
/// between surfaces. ToJson(TwoWayJoinStats) reproduces the historical
/// `dhtjoin_cli join2` stats block byte-for-byte.

#ifndef DHTJOIN_OBS_EXPORT_H_
#define DHTJOIN_OBS_EXPORT_H_

#include <string>

#include "join2/two_way_join.h"
#include "obs/metrics.h"

namespace dhtjoin {
namespace obs {

/// Flat JSON object: counters, then gauges, then histograms (each
/// sorted by name; histograms expand to .count/.sum/.mean/.p50/.p95/
/// .p99 with quantile upper bounds).
std::string ToJson(const MetricsSnapshot& snapshot);

/// Prometheus text exposition: counters/gauges as-is, histograms as
/// summaries (quantile labels + _sum/_count). Metric names are
/// prefixed with "dhtjoin_" and sanitized ([^a-zA-Z0-9_] -> '_').
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

/// The per-run join counters, byte-compatible with the hand-rolled
/// printf JSON the CLI used to emit.
std::string ToJson(const TwoWayJoinStats& stats);

}  // namespace obs
}  // namespace dhtjoin

#endif  // DHTJOIN_OBS_EXPORT_H_
