/// \file obs/metrics.h
/// \brief Lock-cheap metrics registry: counters, gauges, log2
/// histograms with quantile bounds; snapshot-on-read (DESIGN.md §11).
///
/// Write paths are wait-free relaxed atomics (counters shard across
/// cache lines so concurrent pool workers do not bounce one line);
/// the registry mutex is touched only on metric *creation* and on
/// Snapshot(). Hot code caches the Counter*/Histogram* pointer it got
/// from the registry once — pointers are stable for the registry's
/// lifetime.
///
/// Naming scheme: dot-separated lowercase path, unit suffix on timed
/// metrics (`serve.query.latency_ns`, `serve.pool.queue_wait_ns`).
/// Snapshots list each kind sorted by name, so every export
/// (JSON, Prometheus text) is deterministic.

#ifndef DHTJOIN_OBS_METRICS_H_
#define DHTJOIN_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/config.h"

namespace dhtjoin {
namespace obs {

namespace internal {
/// Shard index for the calling thread. Hashing the thread id keeps the
/// implementation free of thread_local state; the cost is a few ns per
/// Add, which only round-granularity and per-task paths pay.
inline std::size_t ShardIndex() {
  return std::hash<std::thread::id>()(std::this_thread::get_id());
}
}  // namespace internal

/// Monotonic counter. Add() is a relaxed fetch_add on a per-thread
/// shard; Value() sums the shards (racy-tolerant: concurrent adds may
/// or may not be included, which is fine for telemetry and exact once
/// writers are quiesced — the mode every test uses).
class Counter {
 public:
  static constexpr std::size_t kShards = 8;

  void Add(int64_t delta) {
    shards_[internal::ShardIndex() % kShards].v.fetch_add(
        delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-write-wins double gauge.
class Gauge {
 public:
  void Set(double v) {
    bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double Value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// Log2-bucketed histogram of non-negative int64 values (typically
/// nanoseconds). Bucket 0 holds exactly the value 0; bucket b >= 1
/// holds [2^(b-1), 2^b - 1]. Record() is one relaxed fetch_add per
/// bucket plus one on the sharded sum.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  /// Bucket index for a value (negatives clamp to bucket 0).
  static int BucketOf(int64_t value) {
    if (value <= 0) return 0;
    // bit_width's return type is int in C++20 but unsigned long on
    // older libstdc++; the cast keeps -Wconversion quiet on both.
    return static_cast<int>(std::bit_width(static_cast<uint64_t>(value)));
  }

  /// Inclusive upper bound of a bucket (what quantile queries report).
  static int64_t BucketUpperBound(int bucket) {
    if (bucket <= 0) return 0;
    if (bucket >= 63) return std::numeric_limits<int64_t>::max();
    return (int64_t{1} << bucket) - 1;
  }

  void Record(int64_t value) {
    buckets_[static_cast<std::size_t>(BucketOf(value))].fetch_add(
        1, std::memory_order_relaxed);
    sum_.Add(value > 0 ? value : 0);
  }

  int64_t Count() const {
    int64_t n = 0;
    for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
    return n;
  }
  int64_t Sum() const { return sum_.Value(); }

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<int64_t>, kBuckets> buckets_{};
  Counter sum_;
};

struct CounterSnapshot {
  std::string name;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  int64_t count = 0;
  int64_t sum = 0;
  std::array<int64_t, Histogram::kBuckets> buckets{};

  /// Inclusive upper bound of the bucket holding the q-quantile
  /// (q in [0, 1]; 0 when the histogram is empty). Deterministic
  /// given the recorded values — fake-clock tests pin exact results.
  int64_t QuantileBound(double q) const;

  double Mean() const {
    return count > 0 ? static_cast<double>(sum) / static_cast<double>(count)
                     : 0.0;
  }
};

/// One coherent read of every registered metric, each kind sorted by
/// name.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* FindCounter(const std::string& name) const;
  const HistogramSnapshot* FindHistogram(const std::string& name) const;
  const GaugeSnapshot* FindGauge(const std::string& name) const;
};

/// Owns metrics by name. Get* registers on first use and returns a
/// stable pointer; name collisions across kinds are a programming
/// error (checked). Thread-safe.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mu_;
  // std::map: deterministic name order for Snapshot() without a sort,
  // and no unordered-iter lint exposure.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace obs
}  // namespace dhtjoin

#endif  // DHTJOIN_OBS_METRICS_H_
