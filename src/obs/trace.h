/// \file obs/trace.h
/// \brief Per-query trace span tree (DESIGN.md §11).
///
/// A Trace records one query's phase structure as nested spans:
///
///   query.twoway                       (serve/session.cc, CLI, tests)
///     ybound                           (bound-table build)
///     import                           (cache state import; warm/cold)
///     round                            (one deepening level; frontier)
///       b.advance_many / f.advance_many  (one fused block-group pass:
///                                         blocks, lanes, fresh, bytes)
///     final                            (exact depth-d pass)
///     write_back                       (cache export)
///
/// Spans nest via an explicit stack: Begin() parents under the
/// innermost open span, so callees (the batch engines) need no parent
/// id plumbing. All methods are thread-safe behind one mutex; calls
/// happen at round/phase granularity — a handful per query, never
/// inside block kernels — so the lock is uncontended in practice.
///
/// The trace rides on ExecContext (util/deadline.h) so tracing and
/// deadline/cancel share one plumbing path; TraceOf(exec) is the
/// canonical accessor and constant-folds to nullptr under DHT_OBS_OFF.
/// A span left open when a query degrades or cancels is rendered with
/// "unfinished": true — losing the tail of a span tree is itself a
/// signal.

#ifndef DHTJOIN_OBS_TRACE_H_
#define DHTJOIN_OBS_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/config.h"
#include "util/deadline.h"

namespace dhtjoin {
namespace obs {

#ifndef DHT_OBS_OFF

class Trace {
 public:
  using SpanId = int;
  static constexpr SpanId kNoSpan = -1;

  /// `clock` must outlive the trace (typically the service's clock).
  explicit Trace(const Clock* clock);

  /// Opens a span under the innermost open span (or as a root).
  SpanId Begin(const char* name);
  /// Closes `id` and every still-open span nested inside it.
  void End(SpanId id);

  void SetAttr(SpanId id, const char* key, int64_t value);
  void SetAttr(SpanId id, const char* key, double value);

  std::size_t num_spans() const;
  std::size_t CountSpans(const std::string& name) const;
  /// Sum of an int attribute over all spans carrying it (rollups).
  int64_t SumAttr(const std::string& key) const;
  int64_t DurationNanos(SpanId id) const;  // 0 while unfinished
  bool Finished(SpanId id) const;

  /// Nested JSON rendering of the span tree (self-contained document).
  std::string ToJson() const;
  /// Indented human-readable rendering (one span per line).
  std::string ToText() const;

 private:
  struct Attr {
    std::string key;
    bool is_int = true;
    int64_t i = 0;
    double d = 0.0;
  };
  struct Span {
    std::string name;
    SpanId parent = kNoSpan;
    int64_t start_ns = 0;
    int64_t end_ns = 0;  // 0 = still open
    bool finished = false;
    std::vector<Attr> attrs;
    std::vector<SpanId> children;
  };

  void AppendJson(SpanId id, std::string* out) const;  // mu_ held
  void AppendText(SpanId id, int depth, std::string* out) const;

  const Clock* clock_;
  mutable std::mutex mu_;
  std::vector<Span> spans_;
  std::vector<SpanId> roots_;
  std::vector<SpanId> stack_;  // open-span nesting
};

#else  // DHT_OBS_OFF: the whole API compiles to no-ops.

class Trace {
 public:
  using SpanId = int;
  static constexpr SpanId kNoSpan = -1;

  explicit Trace(const Clock*) {}

  SpanId Begin(const char*) { return kNoSpan; }
  void End(SpanId) {}
  void SetAttr(SpanId, const char*, int64_t) {}
  void SetAttr(SpanId, const char*, double) {}

  std::size_t num_spans() const { return 0; }
  std::size_t CountSpans(const std::string&) const { return 0; }
  int64_t SumAttr(const std::string&) const { return 0; }
  int64_t DurationNanos(SpanId) const { return 0; }
  bool Finished(SpanId) const { return false; }

  std::string ToJson() const { return "{}"; }
  std::string ToText() const { return std::string(); }
};

#endif  // DHT_OBS_OFF

/// The trace attached to an ExecContext, or nullptr (no context, no
/// trace attached, or observability compiled out). kEnabled is
/// constexpr, so under DHT_OBS_OFF every `if (TraceOf(...))` branch
/// folds away.
inline Trace* TraceOf(const ExecContext* exec) {
  if (!kEnabled || exec == nullptr) return nullptr;
  return exec->trace();
}

/// RAII span: opens on construction (when `trace` is non-null), closes
/// on destruction unless already closed. Safe with trace == nullptr —
/// every call degenerates to a no-op, so call sites need no guards.
class ScopedSpan {
 public:
  ScopedSpan(Trace* trace, const char* name) : trace_(trace) {
    if (trace_ != nullptr) id_ = trace_->Begin(name);
  }
  ~ScopedSpan() { EndNow(); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  Trace::SpanId id() const { return id_; }

  void SetAttr(const char* key, int64_t value) {
    if (trace_ != nullptr && id_ != Trace::kNoSpan)
      trace_->SetAttr(id_, key, value);
  }
  void SetAttr(const char* key, double value) {
    if (trace_ != nullptr && id_ != Trace::kNoSpan)
      trace_->SetAttr(id_, key, value);
  }

  /// Closes the span early (destructor then does nothing).
  void EndNow() {
    if (trace_ != nullptr && id_ != Trace::kNoSpan) {
      trace_->End(id_);
      id_ = Trace::kNoSpan;
    }
  }

 private:
  Trace* trace_;
  Trace::SpanId id_ = Trace::kNoSpan;
};

}  // namespace obs
}  // namespace dhtjoin

#endif  // DHTJOIN_OBS_TRACE_H_
