/// \file dht/bounds.h
/// \brief Upper-bound functions for the IDJ pruning framework.
///
/// Both B-IDJ variants bound the unseen remainder of the DHT series
/// after an l-step walk (paper Sec VI-C):
///
///  * X bound (Lemma 2):   X_l^+ = alpha * lambda^(l+1) / (1 - lambda)
///    — pair-independent, free to compute, loose at large lambda.
///
///  * Y bound (Theorem 1): Y_l^+(P, q) =
///        alpha * sum_{i=l+1..d} lambda^i * min(S_i(P, q), 1)
///    where S_i(P, q) = sum_{p in P} S_i(p, q) and S_i(p, q) is the
///    probability that a NON-absorbing walk from p occupies q at step i.
///    One d-step sweep from all of P yields S_i(P, q) for every q;
///    Y is per-target, tighter (Lemma 5: Y <= X), and the reason
///    B-IDJ-Y prunes where B-IDJ-X cannot (paper Fig. 10(b)).

#ifndef DHTJOIN_DHT_BOUNDS_H_
#define DHTJOIN_DHT_BOUNDS_H_

#include <vector>

#include "dht/params.h"
#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/deadline.h"

namespace dhtjoin {

/// X_l^+ of Lemma 2. Equivalent to params.XBound(l); provided as a free
/// function to mirror YBoundTable::Bound.
double XUpperBound(const DhtParams& params, int l);

/// Precomputed Y_l^+(P, q) for all q in Q and all l in [0, d].
class YBoundTable {
 public:
  /// Runs the d-step non-absorbing sweep from all of P on the shared
  /// frontier-adaptive engine (dht/propagate.h) — O(d * |E|) worst case,
  /// output-sensitive when the sweep mass stays local — and builds
  /// per-q suffix sums (O(d * |Q|) space).
  ///
  /// When `exec` is set, the sweep polls exec->Check() once per step
  /// (the construction's level boundary). A stop abandons the sweep:
  /// complete() turns false and Bound() must not be used — the caller
  /// degrades with the pair-independent X bound instead (DESIGN.md §9).
  YBoundTable(const Graph& g, const DhtParams& params, int d,
              const NodeSet& P, const NodeSet& Q,
              const ExecContext* exec = nullptr);

  /// False when construction was abandoned by a cooperative stop.
  bool complete() const { return complete_; }

  /// Edges actually relaxed by the construction sweep — the real cost
  /// to charge to TwoWayJoinStats::walk_steps (a flat d * |E| would
  /// overcount whenever the adaptive engine ran sparse steps).
  int64_t edges_relaxed() const { return edges_relaxed_; }

  /// Y_l^+(P, q) where `q_index` is the position of q within Q.
  /// Valid for 0 <= l <= d (Bound(d, .) == 0).
  double Bound(int l, std::size_t q_index) const {
    DHTJOIN_DCHECK(q_index < per_q_suffix_.size());
    DHTJOIN_DCHECK(l >= 0 && l <= d_);
    return per_q_suffix_[q_index][static_cast<std::size_t>(l)];
  }

  int d() const { return d_; }

  /// The persisted representation (serve/warm_state.cc): suffix rows
  /// per target, [qi][l] = Y_l^+(P, q), length d+1, entry [d] = 0.
  /// Only meaningful for complete() tables.
  const std::vector<std::vector<double>>& suffix_rows() const {
    return per_q_suffix_;
  }

  /// Reassembles a COMPLETE table from persisted suffix rows — the
  /// exact doubles of the construction sweep, so a warm-restored bound
  /// prunes bit-identically to the one it was saved from. Caller
  /// guarantees each row has length d+1 (the snapshot decoder checks).
  static YBoundTable FromSuffixRows(
      int d, int64_t edges_relaxed,
      std::vector<std::vector<double>> per_q_suffix) {
    YBoundTable table;
    table.d_ = d;
    table.complete_ = true;
    table.edges_relaxed_ = edges_relaxed;
    table.per_q_suffix_ = std::move(per_q_suffix);
    return table;
  }

 private:
  YBoundTable() : d_(0) {}

  int d_;
  bool complete_ = true;
  int64_t edges_relaxed_ = 0;
  // per_q_suffix_[qi][l] = Y_l^+(P, q); length d+1, entry [d] = 0.
  std::vector<std::vector<double>> per_q_suffix_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_BOUNDS_H_
