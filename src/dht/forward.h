/// \file dht/forward.h
/// \brief Forward first-hit random-walk propagation (paper Sec V-B).
///
/// Computes h_d(u, v) by pushing probability mass ALONG edge directions
/// from the source u, with absorption at the target v: at every step,
///   r'[w] = sum_{x != v, (x,w) in E} r[x] * p_xw ,
/// and r'[v] is the first-hit probability P_i(u, v) of that step.
/// One (u, v) pair costs O(d * |E|) worst case; the frontier-adaptive
/// engine (dht/propagate.h) makes it output-sensitive when the walk mass
/// stays concentrated, but the per-pair restart is still what makes the
/// forward 2-way join algorithms (F-BJ, F-IDJ) slow, as the paper
/// stresses. For evaluating MANY pairs, prefer ForwardWalkerBatch
/// (dht/forward_batch.h), which advances kLaneWidth source walkers per
/// out-CSR pass.
///
/// Walks are resumable two ways: Advance() continues from the current
/// level in place, and Save()/Restore() snapshot the full walk state
/// (see WalkerStatePool in dht/walker_state.h). A restored walk is
/// bit-identical to the walk it was saved from — and, by the engine's
/// sorted-support determinism (DESIGN.md §3), to a from-scratch walk of
/// the same depth.

#ifndef DHTJOIN_DHT_FORWARD_H_
#define DHTJOIN_DHT_FORWARD_H_

#include <vector>

#include "dht/params.h"
#include "dht/propagate.h"
#include "graph/graph.h"

namespace dhtjoin {

/// Snapshot of one in-flight forward walk. O(support) memory.
struct ForwardWalkerState {
  ExtNodeId source;  ///< external id; invalid when the state is empty
  ExtNodeId target;
  int level = 0;
  double score = 0.0;
  double lambda_pow = 1.0;
  PropagatorState engine;
  std::vector<double> hit_probs;

  std::size_t ApproxBytes() const {
    return sizeof(*this) + engine.ApproxBytes() +
           hit_probs.capacity() * sizeof(double);
  }
};

/// Resumable forward walker for a single (source, target) pair.
///
/// Reset() sets the pair, Advance() pushes the walk further; Score()
/// reads h_l(u, v) at the current depth l. The workspace is reused
/// across Reset() calls, so one walker instance can serve many pairs
/// without reallocating.
///
/// All node ids crossing this interface (sources, targets,
/// ForwardWalkerState ids) are EXTERNAL ids; the walker translates to
/// the graph's physical layout internally (graph/reorder.h).
class ForwardWalker {
 public:
  explicit ForwardWalker(const Graph& g,
                         PropagationMode mode = PropagationMode::kAdaptive,
                         bool restrict_dense = true);

  /// Starts a new walk from `u` absorbed at `v`. `u != v` required.
  void Reset(const DhtParams& params, ExtNodeId u, ExtNodeId v);

  /// Advances the walk by `steps` more steps.
  void Advance(int steps);

  /// Snapshots the current walk into `out`; the walker is unchanged.
  void Save(ForwardWalkerState* out) const;

  /// Replaces the current walk with `state` (saved with the same params;
  /// the caller is responsible for passing matching params).
  void Restore(const DhtParams& params, const ForwardWalkerState& state);

  /// Current depth l (number of steps taken since Reset).
  int level() const { return level_; }

  /// h_l(u, v) at the current depth.
  double Score() const { return score_; }

  /// First-hit probability P_i(u, v) for i in [1, level()].
  double HitProbability(int i) const;

  /// Convenience: full truncated score h_d(u, v) in one call.
  double Compute(const DhtParams& params, int d, ExtNodeId u, ExtNodeId v);

  /// Edges relaxed by this walker since construction (across Resets).
  int64_t edges_relaxed() const { return engine_.edges_relaxed(); }

 private:
  const Graph& g_;
  Propagator engine_;
  DhtParams params_;
  ExtNodeId source_;
  ExtNodeId target_;
  IntNodeId target_internal_;  // layout id, for absorption
  int level_ = 0;
  double score_ = 0.0;
  double lambda_pow_ = 1.0;        // lambda^level
  std::vector<double> hit_probs_;  // P_i for i = 1..level
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_FORWARD_H_
