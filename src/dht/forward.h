/// \file dht/forward.h
/// \brief Forward first-hit random-walk propagation (paper Sec V-B).
///
/// Computes h_d(u, v) by pushing probability mass ALONG edge directions
/// from the source u, with absorption at the target v: at every step,
///   r'[w] = sum_{x != v, (x,w) in E} r[x] * p_xw ,
/// and r'[v] is the first-hit probability P_i(u, v) of that step.
/// One (u, v) pair costs O(d * |E|) worst case; the frontier-adaptive
/// engine (dht/propagate.h) makes it output-sensitive when the walk mass
/// stays concentrated, but the per-pair restart is still what makes the
/// forward 2-way join algorithms (F-BJ, F-IDJ) slow, as the paper
/// stresses.

#ifndef DHTJOIN_DHT_FORWARD_H_
#define DHTJOIN_DHT_FORWARD_H_

#include <vector>

#include "dht/params.h"
#include "dht/propagate.h"
#include "graph/graph.h"

namespace dhtjoin {

/// Resumable forward walker for a single (source, target) pair.
///
/// Reset() sets the pair, Advance() pushes the walk further; Score()
/// reads h_l(u, v) at the current depth l. The workspace is reused
/// across Reset() calls, so one walker instance can serve many pairs
/// without reallocating.
class ForwardWalker {
 public:
  explicit ForwardWalker(const Graph& g,
                         PropagationMode mode = PropagationMode::kAdaptive);

  /// Starts a new walk from `u` absorbed at `v`. `u != v` required.
  void Reset(const DhtParams& params, NodeId u, NodeId v);

  /// Advances the walk by `steps` more steps.
  void Advance(int steps);

  /// Current depth l (number of steps taken since Reset).
  int level() const { return level_; }

  /// h_l(u, v) at the current depth.
  double Score() const { return score_; }

  /// First-hit probability P_i(u, v) for i in [1, level()].
  double HitProbability(int i) const;

  /// Convenience: full truncated score h_d(u, v) in one call.
  double Compute(const DhtParams& params, int d, NodeId u, NodeId v);

  /// Edges relaxed by this walker since construction (across Resets).
  int64_t edges_relaxed() const { return engine_.edges_relaxed(); }

 private:
  const Graph& g_;
  Propagator engine_;
  DhtParams params_;
  NodeId target_ = kInvalidNode;
  int level_ = 0;
  double score_ = 0.0;
  double lambda_pow_ = 1.0;        // lambda^level
  std::vector<double> hit_probs_;  // P_i for i = 1..level
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_FORWARD_H_
