#include "dht/forward.h"

namespace dhtjoin {

ForwardWalker::ForwardWalker(const Graph& g, PropagationMode mode,
                             bool restrict_dense)
    : g_(g),
      engine_(g, Propagator::Direction::kForward, mode, restrict_dense) {}

void ForwardWalker::Reset(const DhtParams& params, ExtNodeId u, ExtNodeId v) {
  DHTJOIN_CHECK(g_.ContainsNode(u));
  DHTJOIN_CHECK(g_.ContainsNode(v));
  DHTJOIN_CHECK(u != v);
  params_ = params;
  source_ = u;
  target_ = v;
  target_internal_ = g_.ToInternal(v);
  level_ = 0;
  score_ = params.beta;
  lambda_pow_ = 1.0;
  engine_.Reset(g_.ToInternal(u));
  hit_probs_.clear();
}

void ForwardWalker::Save(ForwardWalkerState* out) const {
  out->source = source_;
  out->target = target_;
  out->level = level_;
  out->score = score_;
  out->lambda_pow = lambda_pow_;
  engine_.SaveState(&out->engine);
  out->hit_probs = hit_probs_;
}

void ForwardWalker::Restore(const DhtParams& params,
                            const ForwardWalkerState& state) {
  DHTJOIN_CHECK(state.target.valid());
  params_ = params;
  source_ = state.source;
  target_ = state.target;
  target_internal_ = g_.ToInternal(state.target);
  level_ = state.level;
  score_ = state.score;
  lambda_pow_ = state.lambda_pow;
  engine_.RestoreState(state.engine);
  hit_probs_ = state.hit_probs;
}

void ForwardWalker::Advance(int steps) {
  DHTJOIN_CHECK(target_.valid());
  for (int s = 0; s < steps; ++s) {
    engine_.Step();
    ++level_;
    lambda_pow_ *= params_.lambda;
    double hit = engine_.Mass(target_internal_);
    hit_probs_.push_back(hit);
    score_ += params_.alpha * lambda_pow_ * hit;
    // First-hit semantics absorb at the target: mass that arrived this
    // step was counted above and must not propagate further. Visiting
    // semantics (PPR) let it flow on.
    if (params_.first_hit) engine_.ClearMass(target_internal_);
  }
}

double ForwardWalker::HitProbability(int i) const {
  DHTJOIN_CHECK(i >= 1 && i <= level_);
  return hit_probs_[static_cast<std::size_t>(i) - 1];
}

double ForwardWalker::Compute(const DhtParams& params, int d, ExtNodeId u,
                              ExtNodeId v) {
  Reset(params, u, v);
  Advance(d);
  return Score();
}

}  // namespace dhtjoin
