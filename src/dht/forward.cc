#include "dht/forward.h"

#include <algorithm>

namespace dhtjoin {

ForwardWalker::ForwardWalker(const Graph& g)
    : g_(g),
      cur_(static_cast<std::size_t>(g.num_nodes()), 0.0),
      next_(static_cast<std::size_t>(g.num_nodes()), 0.0) {}

void ForwardWalker::Reset(const DhtParams& params, NodeId u, NodeId v) {
  DHTJOIN_CHECK(g_.ContainsNode(u));
  DHTJOIN_CHECK(g_.ContainsNode(v));
  DHTJOIN_CHECK_NE(u, v);
  params_ = params;
  target_ = v;
  level_ = 0;
  score_ = params.beta;
  lambda_pow_ = 1.0;
  std::fill(cur_.begin(), cur_.end(), 0.0);
  cur_[static_cast<std::size_t>(u)] = 1.0;
  hit_probs_.clear();
}

void ForwardWalker::Advance(int steps) {
  DHTJOIN_CHECK(target_ != kInvalidNode);
  const NodeId n = g_.num_nodes();
  for (int s = 0; s < steps; ++s) {
    std::fill(next_.begin(), next_.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      double mass = cur_[static_cast<std::size_t>(u)];
      // First-hit semantics absorb at the target; visiting semantics
      // (PPR) let mass flow through it.
      if (mass == 0.0 || (params_.first_hit && u == target_)) continue;
      for (const OutEdge& e : g_.OutEdges(u)) {
        next_[static_cast<std::size_t>(e.to)] += mass * e.prob;
      }
    }
    ++level_;
    lambda_pow_ *= params_.lambda;
    double hit = next_[static_cast<std::size_t>(target_)];
    hit_probs_.push_back(hit);
    score_ += params_.alpha * lambda_pow_ * hit;
    cur_.swap(next_);
    // Mass now sitting on the target is first-hit mass of this step; it
    // must not propagate further. The u == target_ skip above enforces
    // that, and next iteration overwrites next_[target_] from zero.
  }
}

double ForwardWalker::HitProbability(int i) const {
  DHTJOIN_CHECK(i >= 1 && i <= level_);
  return hit_probs_[static_cast<std::size_t>(i) - 1];
}

double ForwardWalker::Compute(const DhtParams& params, int d, NodeId u,
                              NodeId v) {
  Reset(params, u, v);
  Advance(d);
  return Score();
}

}  // namespace dhtjoin
