#include "dht/forward_batch.h"

#include <map>

namespace dhtjoin {

namespace {
constexpr int kW = ForwardWalkerBatch::kLaneWidth;
}  // namespace

/// Workspace for one in-flight block; same zero-invariant pooling as the
/// backward batch (see backward_batch.cc).
struct ForwardWalkerBatch::BlockState {
  explicit BlockState(NodeId n)
      : mass(static_cast<std::size_t>(n) * kW, 0.0),
        next(static_cast<std::size_t>(n) * kW, 0.0),
        in_next(static_cast<std::size_t>(n), 0) {}

  std::vector<double> mass, next;   // n x kW row-major lane matrices
  std::vector<uint8_t> in_next;     // first-touch flags for `next`
  std::vector<NodeId> support, next_support;
  SweepPlan plan;                   // dense plan of the current block
  bool support_canonical = true;    // deferred sort; see StepLanes
  int64_t edges_relaxed = 0;

  std::size_t ApproxBytes() const {
    return sizeof(*this) + (mass.capacity() + next.capacity()) *
                               sizeof(double) +
           in_next.capacity() +
           (support.capacity() + next_support.capacity()) * sizeof(NodeId);
  }

  void RestoreZeroInvariant() {
    for (NodeId v : support) {
      double* row = &mass[static_cast<std::size_t>(v) * kW];
      std::fill(row, row + kW, 0.0);
    }
    support.clear();
    support_canonical = true;
  }
};

ForwardWalkerBatch::ForwardWalkerBatch(const Graph& g)
    : ForwardWalkerBatch(g, Options()) {}

ForwardWalkerBatch::ForwardWalkerBatch(const Graph& g, Options options)
    : g_(g),
      options_(options),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : ThreadPool::DefaultThreadCount()) {}

ForwardWalkerBatch::~ForwardWalkerBatch() = default;

std::unique_ptr<ForwardWalkerBatch::BlockState>
ForwardWalkerBatch::AcquireState() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (free_states_.empty()) {
    return std::make_unique<BlockState>(g_.num_nodes());
  }
  auto state = std::move(free_states_.back());
  free_states_.pop_back();
  pooled_bytes_ -= state->ApproxBytes();
  return state;
}

void ForwardWalkerBatch::ReleaseState(std::unique_ptr<BlockState> state) {
  std::lock_guard<std::mutex> lock(state_mu_);
  edges_relaxed_ += state->edges_relaxed;
  state->edges_relaxed = 0;
  pooled_bytes_ += state->ApproxBytes();
  free_states_.push_back(std::move(state));
}

void ForwardWalkerBatch::TrimPool() {
  // Run-boundary pool cap, as in BackwardWalkerBatch::TrimPool.
  std::lock_guard<std::mutex> lock(state_mu_);
  while (!free_states_.empty() && pooled_bytes_ > options_.max_pooled_bytes) {
    pooled_bytes_ -= free_states_.back()->ApproxBytes();
    free_states_.pop_back();
    ++workspaces_discarded_;
  }
}

std::size_t ForwardWalkerBatch::pooled_workspaces() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return free_states_.size();
}

std::size_t ForwardWalkerBatch::pooled_workspace_bytes() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return pooled_bytes_;
}

int64_t ForwardWalkerBatch::workspaces_discarded() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return workspaces_discarded_;
}

/// One blocked forward transition step: pushes every lane's mass along
/// the out-rows of the (canonically sorted) union support. The "dense"
/// mode differs from sparse only in billing and in skipping the
/// frontier degree scan — the push itself already visits exactly the
/// nonzero rows in canonical order, which is the dense sweep's
/// summation order, so both modes are bit-identical (the scalar
/// engine's StepForward works the same way).
void ForwardWalkerBatch::StepLanes(BlockState& st, int width) const {
  const Graph& g = g_;
  const PropagationMode mode = options_.mode;
  bool dense = mode == PropagationMode::kDense;
  if (mode == PropagationMode::kAdaptive) {
    if (SupportSizeForcesDense(st.support.size(), st.plan.cost)) {
      dense = true;
    } else {
      int64_t frontier_edges = 0;
      for (NodeId v : st.support) frontier_edges += g.OutDegree(v);
      dense = FrontierPrefersDense(st.support.size(), frontier_edges,
                                   st.plan.cost);
    }
  }

  // The forward push always CONSUMES the support order (destinations
  // accumulate in frontier order): canonical order first (the deferred
  // sorted-support contract; see backward_batch.cc's StepLanes).
  if (!st.support_canonical) {
    g.SortCanonical(st.support);
    st.support_canonical = true;
  }
  int64_t relaxed = 0;
  for (NodeId v : st.support) {
    double* row = &st.mass[static_cast<std::size_t>(v) * kW];
    int live_lanes = 0;
    for (int b = 0; b < kW; ++b) live_lanes += row[b] != 0.0 ? 1 : 0;
    if (live_lanes == 0) continue;
    relaxed += g.OutDegree(v) * live_lanes;
    for (const OutEdge& e : g.OutEdges(v)) {
      double* dst = &st.next[static_cast<std::size_t>(e.to) * kW];
      uint8_t& flag = st.in_next[static_cast<std::size_t>(e.to)];
      if (!flag) {
        flag = 1;
        st.next_support.push_back(e.to);
      }
      for (int b = 0; b < kW; ++b) dst[b] += e.prob * row[b];
    }
    std::fill(row, row + kW, 0.0);
  }
  st.edges_relaxed += dense ? st.plan.edges * width : relaxed;

  for (NodeId u : st.next_support) {
    st.in_next[static_cast<std::size_t>(u)] = 0;
  }
  // Sorted-support contract (propagate.h / DESIGN.md §3, §7), deferred:
  // the push emits destinations in first-touch order; the next step's
  // sort restores canonical order before it is consumed.
  st.support_canonical = false;
  st.mass.swap(st.next);
  st.support.swap(st.next_support);
  st.next_support.clear();
}

std::vector<double> ForwardWalkerBatch::Run(const DhtParams& params, int d,
                                            std::span<const NodeId> sources,
                                            std::span<const NodeId> targets) {
  DHTJOIN_CHECK(params.Validate().ok());
  DHTJOIN_CHECK_GE(d, 1);
  for (NodeId p : sources) DHTJOIN_CHECK(g_.ContainsNode(p));
  for (NodeId q : targets) DHTJOIN_CHECK(g_.ContainsNode(q));

  std::vector<NodeId> source_storage, target_storage;
  std::span<const NodeId> isources = g_.MapToInternal(sources, source_storage);
  std::span<const NodeId> itargets = g_.MapToInternal(targets, target_storage);

  std::vector<double> out(sources.size() * targets.size(), params.beta);
  const std::size_t source_blocks = (sources.size() + kW - 1) / kW;
  const std::size_t num_blocks = source_blocks * targets.size();
  pool_.ParallelFor(static_cast<int64_t>(num_blocks), [&](int64_t block) {
    const std::size_t ti = static_cast<std::size_t>(block) / source_blocks;
    const std::size_t first =
        (static_cast<std::size_t>(block) % source_blocks) * kW;
    const int width =
        static_cast<int>(std::min<std::size_t>(kW, sources.size() - first));
    auto state = AcquireState();
    RunBlock(*state, params, d, isources, first, width, itargets[ti], ti,
             targets.size(), out.data());
    ReleaseState(std::move(state));
  });
  TrimPool();
  return out;
}

void ForwardWalkerBatch::RunBlock(BlockState& st, const DhtParams& params,
                                  int d, std::span<const NodeId> sources,
                                  std::size_t first_source, int width,
                                  NodeId target, std::size_t target_index,
                                  std::size_t num_targets, double* out) {
  // Seed: lane b walks from sources[first_source + b]; duplicates share
  // a support row with independent lanes.
  for (int b = 0; b < width; ++b) {
    NodeId p = sources[first_source + static_cast<std::size_t>(b)];
    st.mass[static_cast<std::size_t>(p) * kW + static_cast<std::size_t>(b)] =
        1.0;
    st.support.push_back(p);
  }
  g_.SortCanonical(st.support);
  st.support.erase(std::unique(st.support.begin(), st.support.end()),
                   st.support.end());
  st.support_canonical = true;
  st.plan = options_.restrict_dense ? g_.PlanDenseSweep(st.support)
                                    : g_.FullSweepPlan();

  double lambda_pow = 1.0;
  for (int step = 0; step < d; ++step) {
    StepLanes(st, width);
    // mass/next swap inside StepLanes, so the row pointer is per-step.
    double* target_row = &st.mass[static_cast<std::size_t>(target) * kW];
    lambda_pow *= params.lambda;
    const double coeff = params.alpha * lambda_pow;
    for (int b = 0; b < width; ++b) {
      out[(first_source + static_cast<std::size_t>(b)) * num_targets +
          target_index] += coeff * target_row[b];
    }
    // First-hit absorption: every lane of this block absorbs at the
    // shared target, so the whole row goes dark.
    if (params.first_hit) std::fill(target_row, target_row + width, 0.0);
  }

  st.RestoreZeroInvariant();
}

int64_t ForwardWalkerBatch::AdvancePairsRun(const DhtParams& params,
                                            int to_level,
                                            std::span<const NodeId> sources,
                                            std::span<const std::size_t> slots,
                                            NodeId target,
                                            ForwardBatchStates& states,
                                            bool save_states, double* out) {
  DHTJOIN_CHECK(params.Validate().ok());
  DHTJOIN_CHECK_GE(to_level, 1);
  DHTJOIN_CHECK(g_.ContainsNode(target));
  for (NodeId p : sources) DHTJOIN_CHECK(g_.ContainsNode(p));

  std::vector<NodeId> source_storage;
  std::span<const NodeId> isources = g_.MapToInternal(sources, source_storage);
  const NodeId itarget = g_.ToInternal(target);

  std::map<int, std::vector<std::size_t>> by_level;
  int64_t fresh = 0;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const ForwardBatchStates::Slot* slot = states.FindSlot(slots[i]);
    const int level = slot == nullptr ? 0 : slot->level;
    DHTJOIN_CHECK_LE(level, to_level);
    if (level == 0) {
      out[i] = params.beta;
      ++fresh;
    } else {
      out[i] = slot->score;
      states.hits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (level < to_level) {
      by_level[level].push_back(i);
      // Materialize the map entry now: the parallel write-back below
      // only assigns through pre-existing entries, so the hash map is
      // never structurally mutated from worker threads.
      if (save_states && slot == nullptr) states.slots_[slots[i]];
    }
  }

  struct Block {
    int from_level;
    std::vector<std::size_t> idx;
  };
  std::vector<Block> blocks;
  for (auto& [level, idxs] : by_level) {
    for (std::size_t base = 0; base < idxs.size(); base += kW) {
      const std::size_t count = std::min<std::size_t>(kW, idxs.size() - base);
      blocks.push_back(Block{
          level,
          {idxs.begin() + static_cast<std::ptrdiff_t>(base),
           idxs.begin() + static_cast<std::ptrdiff_t>(base + count)}});
    }
  }

  pool_.ParallelFor(static_cast<int64_t>(blocks.size()), [&](int64_t bi) {
    const Block& blk = blocks[static_cast<std::size_t>(bi)];
    const int width = static_cast<int>(blk.idx.size());
    auto state = AcquireState();
    BlockState& st = *state;

    // Load: fresh lanes seed unit mass at their source; resumed lanes
    // replay their sparse snapshot (mass stays inside the sources'
    // components, so the plan from the lane sources covers both).
    NodeId lane_source[kW];
    for (int b = 0; b < width; ++b) {
      const std::size_t i = blk.idx[static_cast<std::size_t>(b)];
      lane_source[b] = isources[i];
      if (blk.from_level == 0) {
        NodeId p = isources[i];
        double& slot =
            st.mass[static_cast<std::size_t>(p) * kW +
                    static_cast<std::size_t>(b)];
        if (slot == 0.0 && st.in_next[static_cast<std::size_t>(p)] == 0) {
          st.in_next[static_cast<std::size_t>(p)] = 1;
          st.support.push_back(p);
        }
        slot = 1.0;
      } else {
        const auto& saved = states.FindSlot(slots[i])->mass;
        for (const auto& [v, m] : saved) {
          double& slot = st.mass[static_cast<std::size_t>(v) * kW +
                                 static_cast<std::size_t>(b)];
          if (slot == 0.0 && st.in_next[static_cast<std::size_t>(v)] == 0) {
            st.in_next[static_cast<std::size_t>(v)] = 1;
            st.support.push_back(v);
          }
          slot = m;
        }
      }
    }
    for (NodeId v : st.support) st.in_next[static_cast<std::size_t>(v)] = 0;
    g_.SortCanonical(st.support);
    st.support_canonical = true;
    st.plan = options_.restrict_dense
                  ? g_.PlanDenseSweep({lane_source,
                                       static_cast<std::size_t>(width)})
                  : g_.FullSweepPlan();

    // Resume the discount where the walk stopped (lane 0 speaks for the
    // uniform-level block); fresh blocks start at lambda^0.
    double lambda_pow =
        blk.from_level == 0
            ? 1.0
            : states.FindSlot(slots[blk.idx[0]])->lambda_pow;

    for (int step = blk.from_level; step < to_level; ++step) {
      StepLanes(st, width);
      double* target_row = &st.mass[static_cast<std::size_t>(itarget) * kW];
      lambda_pow *= params.lambda;
      const double coeff = params.alpha * lambda_pow;
      for (int b = 0; b < width; ++b) {
        out[blk.idx[static_cast<std::size_t>(b)]] += coeff * target_row[b];
      }
      if (params.first_hit) std::fill(target_row, target_row + width, 0.0);
    }

    // Write back per-lane states under the byte budget. As in the
    // backward batch, the old (lower-level) snapshot is kept whenever
    // the new one does not fit, so budget pressure degrades resume
    // gracefully instead of to a full restart every level. A final
    // advance (save_states off) skips the snapshots entirely.
    for (int b = 0; save_states && b < width; ++b) {
      const std::size_t i = blk.idx[static_cast<std::size_t>(b)];
      ForwardBatchStates::Slot& slot = *states.FindSlot(slots[i]);
      ForwardBatchStates::Slot cand;
      cand.level = to_level;
      cand.lambda_pow = lambda_pow;
      cand.score = out[i];
      for (NodeId v : st.support) {
        double m = st.mass[static_cast<std::size_t>(v) * kW +
                           static_cast<std::size_t>(b)];
        if (m != 0.0) cand.mass.emplace_back(v, m);
      }
      cand.bytes = cand.ApproxBytes();
      const std::size_t prev =
          states.bytes_.fetch_add(cand.bytes, std::memory_order_relaxed);
      if (prev + cand.bytes - slot.bytes <= states.max_bytes_) {
        states.bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
        slot = std::move(cand);
      } else {
        states.bytes_.fetch_sub(cand.bytes, std::memory_order_relaxed);
        states.evictions_.fetch_add(1, std::memory_order_relaxed);
      }
    }

    st.RestoreZeroInvariant();
    ReleaseState(std::move(state));
  });
  TrimPool();

  // Entries whose write-back was refused by the budget (or that were
  // only materialized for the parallel phase) hold no state; erase them
  // so the sparse map never accumulates empty nodes.
  if (save_states) {
    for (const auto& [level, idxs] : by_level) {
      for (std::size_t i : idxs) {
        auto it = states.slots_.find(slots[i]);
        if (it != states.slots_.end() && it->second.level == 0) {
          states.slots_.erase(it);
        }
      }
    }
  }
  return fresh;
}

}  // namespace dhtjoin
