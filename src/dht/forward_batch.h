/// \file dht/forward_batch.h
/// \brief Batched multi-source forward evaluation (SpMM-style).
///
/// Forward first-hit walks are inherently per-PAIR: absorption at the
/// target entangles the mass trajectory with the target, so one walk
/// yields one h_d(p, q) — the reason the forward join family (F-BJ,
/// F-IDJ) is the slow side of the paper's Fig. 9(a). What CAN be shared
/// is the edge stream: this evaluator fixes one absorption target q per
/// block and advances kLaneWidth SOURCE walkers together, the mass state
/// an n x W row-major matrix pushed over the out-CSR one pass per step.
/// Per pair this divides edge traffic by W and turns the scattered
/// per-walk pushes into cache-line-wide lane updates — the forward
/// analogue of BackwardWalkerBatch, with the lane axis transposed
/// (W sources x 1 target instead of W targets x all sources). Blocks
/// are independent and fan out across a ThreadPool.
///
/// The block machinery (lane workspace, pooling, the frontier-adaptive
/// blocked step, level grouping, write-back-under-budget) is the shared
/// core in dht/batch_core.h; this engine supplies the forward direction
/// policy (push over out-rows; "dense" only changes billing, because a
/// forward push already visits exactly the nonzero rows in canonical
/// order) and is a template on the lane width W: ForwardWalkerBatch is
/// the 8-lane default, ForwardWalkerBatchT<4> the narrow-lane option —
/// bit-identical results at half the workspace bytes per block.
///
/// The union support is kept SORTED at every step boundary, so per-lane
/// summation order equals the dense sweep's CSR order: scores are
/// bit-identical across modes, lane groupings, lane widths, thread
/// counts, and restarted vs resumed walks (DESIGN.md §3), and match the
/// scalar ForwardWalker exactly.
///
/// Resumable deepening: F-IDJ revisits the same (p, q) pairs at levels
/// 1, 2, 4, ..., d. ForwardBatchStates holds per-pair sparse snapshots
/// so the advance entry points continue each pair from its saved level
/// instead of restarting — O(d) total steps per surviving pair instead
/// of O(2d) — under a byte budget with transparent bit-identical
/// restarts on eviction.
///
/// FUSED SCHEDULING: the historical entry point advanced ONE target's
/// pairs per call — its own ParallelFor barrier — so a deepening round
/// over |Q| targets paid |Q| fork/joins even when the live set had
/// shrunk to a handful of near-empty blocks. AdvanceMany() takes every
/// live (target, sources) plan of the round at once, builds all
/// (plan, level-group, lane-block) blocks into one flat list, and
/// dispatches a SINGLE ParallelFor. AdvancePairs remains as a thin
/// one-plan wrapper. Block enumeration order inside each plan is
/// exactly the per-target call's, so scores are byte-identical either
/// way (DESIGN.md §8; gated in bench_scheduler and the parity tests).
///
/// Memory contract: like the backward batch, each concurrent block owns
/// 2 * n * kLaneWidth doubles, pooled between runs up to
/// Options::max_pooled_bytes (the pool is trimmed to the cap at run
/// boundaries; workspaces_discarded counts the frees).
///
/// Node ids crossing the public interface (sources, targets) are
/// EXTERNAL ids; the engine translates to the graph's physical layout
/// (graph/reorder.h) at entry and keeps its union support sorted in
/// CANONICAL (external) order, so scores are bit-identical across
/// layouts. Dense billing and the adaptive policy use the block's
/// weak-component sweep plan (Graph::PlanDenseSweep), mirroring the
/// backward batch. ForwardBatchStates' snapshot mass node ids are
/// INTERNAL and only meaningful on the graph/layout they were saved
/// from.

#ifndef DHTJOIN_DHT_FORWARD_BATCH_H_
#define DHTJOIN_DHT_FORWARD_BATCH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dht/batch_core.h"
#include "dht/params.h"
#include "dht/propagate.h"
#include "graph/graph.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace dhtjoin {

/// Per-pair resumable walk states for the forward batch engines, keyed
/// by a caller-stable slot id (F-IDJ uses source_index * |Q| +
/// target_index, i.e. a PairKey over the original grid). Storage is a
/// SPARSE hash map: only pairs that actually saved a state pay
/// anything, so a huge |P| x |Q| pair space resumes under budget with
/// no upfront dense allocation. Retention is best-effort under the byte
/// budget: a dropped state restarts from scratch on the next advance
/// with bit-identical results. When the budget came from the autotuner,
/// callers fold the observed hit/eviction counters back into it between
/// rounds via the inherited Retune() (batch_core::BatchStateBudget).
class ForwardBatchStates : public batch_core::BatchStateBudget {
 public:
  explicit ForwardBatchStates(std::size_t max_bytes = kDefaultMaxBytes)
      : BatchStateBudget(max_bytes) {}

  static constexpr std::size_t kDefaultMaxBytes = std::size_t{256} << 20;

  /// Walked depth of `slot`; 0 means no saved state (fresh or evicted).
  int level(std::size_t slot) const {
    const Slot* s = FindSlot(slot);
    return s == nullptr ? 0 : s->level;
  }

  /// Drops the saved state of `slot` (e.g. a pruned source's pairs).
  void Drop(std::size_t slot) {
    auto it = slots_.find(slot);
    if (it == slots_.end()) return;
    bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    slots_.erase(it);
  }

  /// Number of pairs currently holding a saved state.
  std::size_t size() const { return slots_.size(); }

 private:
  template <int>
  friend class ForwardWalkerBatchT;

  struct Slot {
    int level = 0;
    double lambda_pow = 1.0;
    double score = 0.0;  // h_level(p, q); meaningless while level == 0
    std::vector<std::pair<NodeId, double>> mass;  // nonzero, ascending node
    std::size_t bytes = 0;

    /// Includes the hash-map node the slot occupies, so the byte budget
    /// reflects the sparse container's real footprint.
    std::size_t ApproxBytes() const {
      return sizeof(*this) + kMapEntryOverheadBytes +
             mass.capacity() * sizeof(mass[0]);
    }
  };

  /// Rough per-entry cost of an unordered_map node (key, hash link,
  /// allocator overhead) on mainstream implementations.
  static constexpr std::size_t kMapEntryOverheadBytes = 64;

  const Slot* FindSlot(std::size_t slot) const {
    auto it = slots_.find(slot);
    return it == slots_.end() ? nullptr : &it->second;
  }
  Slot* FindSlot(std::size_t slot) {
    auto it = slots_.find(slot);
    return it == slots_.end() ? nullptr : &it->second;
  }

  std::unordered_map<std::size_t, Slot> slots_;
};

/// One target's share of a fused forward round (AdvanceMany): advance
/// the pairs (sources[i], target) from their saved levels (states slot
/// slots[i]) to the round's level, writing h(sources[i], target) into
/// out[i]. Slot ids must be distinct across the plans of one call —
/// plans are advanced concurrently.
struct ForwardTargetPlan {
  ExtNodeId target;
  std::span<const ExtNodeId> sources;
  std::span<const std::size_t> slots;     // parallel to sources
  double* out = nullptr;                  // |sources| scores
};

/// Advances many forward pair-walkers at once; see file comment.
/// W is the lane width (source walkers advanced together per block, all
/// absorbed at the block's common target); use the ForwardWalkerBatch
/// alias (W = 8) unless workspace memory is the constraint.
template <int W>
class ForwardWalkerBatchT {
  static_assert(W > 0, "lane width must be positive");

 public:
  static constexpr int kLaneWidth = W;

  struct Options {
    PropagationMode mode = PropagationMode::kAdaptive;
    /// Worker threads; 0 means ThreadPool::DefaultThreadCount().
    int num_threads = 0;
    /// Use the walk's weak-component sweep plan for dense billing and
    /// the adaptive threshold (see file comment); results are
    /// bit-identical either way.
    bool restrict_dense = true;
    /// Byte cap on idle block workspaces retained between runs.
    std::size_t max_pooled_bytes = kDefaultMaxPooledBytes;
  };

  /// Default workspace-pool cap, as in BackwardWalkerBatch.
  static constexpr std::size_t kDefaultMaxPooledBytes = std::size_t{1} << 30;

  explicit ForwardWalkerBatchT(const Graph& g)
      : ForwardWalkerBatchT(g, Options()) {}
  ForwardWalkerBatchT(const Graph& g, Options options)
      : g_(g),
        options_(options),
        pool_(options.num_threads > 0 ? options.num_threads
                                      : ThreadPool::DefaultThreadCount()),
        workspaces_(g.num_nodes(), options.max_pooled_bytes) {}

  /// Runs a d-step forward walk for every (source, target) pair and
  /// returns the scores row-major by SOURCE:
  ///   result[s * targets.size() + t] = h_d(sources[s], targets[t]).
  /// Self pairs (sources[s] == targets[t]) are present but meaningless —
  /// callers must skip them, mirroring the backward batch.
  ///
  /// The matrix is dense: slice huge source sets to MaxSourcesPerRun()
  /// per call (RunChunked does this for you).
  std::vector<double> Run(const DhtParams& params, int d,
                          std::span<const ExtNodeId> sources,
                          std::span<const ExtNodeId> targets) {
    DHTJOIN_CHECK(params.Validate().ok());
    DHTJOIN_CHECK_GE(d, 1);
    for (ExtNodeId p : sources) DHTJOIN_CHECK(g_.ContainsNode(p));
    for (ExtNodeId q : targets) DHTJOIN_CHECK(g_.ContainsNode(q));

    std::vector<NodeId> source_storage, target_storage;
    std::span<const NodeId> isources =
        g_.MapToInternal(sources, source_storage);
    std::span<const NodeId> itargets =
        g_.MapToInternal(targets, target_storage);

    std::vector<double> out(sources.size() * targets.size(), params.beta);
    const std::size_t source_blocks = (sources.size() + W - 1) / W;
    const std::size_t num_blocks = source_blocks * targets.size();
    pool_.ParallelFor(static_cast<int64_t>(num_blocks), [&](int64_t block) {
      const std::size_t ti = static_cast<std::size_t>(block) / source_blocks;
      const std::size_t first =
          (static_cast<std::size_t>(block) % source_blocks) * W;
      const int width =
          static_cast<int>(std::min<std::size_t>(W, sources.size() - first));
      auto state = workspaces_.Acquire();
      RunBlock(*state, params, d, isources, first, width, itargets[ti], ti,
               targets.size(), out.data());
      workspaces_.Release(std::move(state));
    });
    workspaces_.Trim();
    return out;
  }

  /// Largest source count per Run() that keeps the returned matrix near
  /// 32 MB; never less than one full lane block.
  static std::size_t MaxSourcesPerRun(std::size_t num_targets) {
    constexpr std::size_t kMaxMatrixDoubles = std::size_t{4} << 20;
    std::size_t cap = kMaxMatrixDoubles / (num_targets == 0 ? 1 : num_targets);
    return cap < static_cast<std::size_t>(W) ? static_cast<std::size_t>(W)
                                             : cap;
  }

  /// Run() with MaxSourcesPerRun slicing applied: walks every pair,
  /// invoking consume(source_index, row) with the |targets|-wide score
  /// row of sources[source_index]. Rows are only valid during the
  /// callback. `max_sources_per_run` forces a smaller slice (0 =
  /// MaxSourcesPerRun); tests use it to exercise the multi-chunk path.
  template <typename Consume>
  void RunChunked(const DhtParams& params, int d,
                  std::span<const ExtNodeId> sources,
                  std::span<const ExtNodeId> targets, Consume&& consume,
                  std::size_t max_sources_per_run = 0) {
    const std::size_t chunk = max_sources_per_run > 0
                                  ? max_sources_per_run
                                  : MaxSourcesPerRun(targets.size());
    for (std::size_t base = 0; base < sources.size(); base += chunk) {
      const std::size_t count = std::min(chunk, sources.size() - base);
      std::vector<double> scores =
          Run(params, d, sources.subspan(base, count), targets);
      for (std::size_t i = 0; i < count; ++i) {
        consume(base + i, scores.data() + i * targets.size());
      }
    }
  }

  /// The resumable per-target form: advances the pairs (sources[i],
  /// target) from their saved levels (states slot slots[i]) to
  /// `to_level`, then invokes consume(i, score) with
  /// h_{to_level}(sources[i], target). Pairs saved at different levels
  /// are grouped and advanced separately, so evictions and fresh pairs
  /// mix freely. `save_states = false` skips the write-back for a FINAL
  /// advance whose states would never be read. Returns the number of
  /// pair walks started from scratch. A thin one-plan wrapper over
  /// AdvanceMany — schedulers advancing MANY targets per round should
  /// call AdvanceMany directly and pay one barrier, not |targets|.
  template <typename Consume>
  int64_t AdvancePairs(const DhtParams& params, int to_level,
                       std::span<const ExtNodeId> sources,
                       std::span<const std::size_t> slots, ExtNodeId target,
                       ForwardBatchStates& states, Consume&& consume,
                       bool save_states = true) {
    DHTJOIN_CHECK_EQ(sources.size(), slots.size());
    std::vector<double> scores(sources.size());
    ForwardTargetPlan plan;
    plan.target = target;
    plan.sources = sources;
    plan.slots = slots;
    plan.out = scores.data();
    int64_t fresh = AdvanceMany(params, to_level, {&plan, 1}, states,
                                save_states);
    for (std::size_t i = 0; i < sources.size(); ++i) consume(i, scores[i]);
    return fresh;
  }

  /// The fused multi-target scheduler (see file comment): advances
  /// every plan's pairs to `to_level` in ONE ParallelFor. Beyond the
  /// barrier elimination, the fused enumeration packs lanes ACROSS
  /// plans: a shrunken live set leaves every target a partial lane
  /// block (4 live sources = half the SIMD rows dead), so the flat
  /// (plan, pair) list is chunked into FULL W-wide blocks whose lanes
  /// carry per-lane absorption targets — the same per-lane device the
  /// backward engine uses for targets. A 4-source round over |Q|
  /// targets runs |Q|/2 full blocks instead of |Q| half-empty ones,
  /// halving the edge-stream passes. Scores stay bit-identical to the
  /// per-target loop: lanes are independent columns, a lane sums the
  /// same contributions in the same canonical support order whatever
  /// its block-mates are (extra union-support rows contribute exact
  /// zeros), and sparse/dense mode flips never change values
  /// (DESIGN.md §3, §8; gated in the parity tests and
  /// bench_scheduler). Callers size the union of `out` buffers (slice
  /// the plan list across calls when a round's scores cannot all be
  /// held). Returns the number of pair walks started from scratch.
  ///
  /// Cooperative stop (util/deadline.h): when `exec` is set, each block
  /// polls exec->CheckBlockGroup() once before running (per block
  /// group, never per edge). On a stop, not-yet-started blocks are
  /// skipped (their slots keep their previous saved level; their output
  /// cells are garbage) and `*interrupted` is set; the caller must then
  /// DISCARD the round and degrade at its last completed level
  /// (DESIGN.md §9).
  int64_t AdvanceMany(const DhtParams& params, int to_level,
                      std::span<const ForwardTargetPlan> plans,
                      ForwardBatchStates& states, bool save_states,
                      const ExecContext* exec = nullptr,
                      bool* interrupted = nullptr) {
    DHTJOIN_CHECK(params.Validate().ok());
    DHTJOIN_CHECK_GE(to_level, 1);
    // One span per fused round (never per block); see the backward
    // engine's AdvanceMany for the attr meanings.
    obs::Trace* const obs_trace = obs::TraceOf(exec);
    obs::ScopedSpan obs_span(obs_trace, "f.advance_many");
    const int64_t obs_edges_before =
        obs_trace != nullptr ? workspaces_.edges_relaxed() : 0;

    struct PlanCtx {
      std::vector<NodeId> source_storage;
      std::span<const NodeId> isources;
      NodeId itarget = kInvalidNode;  // raw internal id
    };
    struct Item {
      std::size_t plan;
      std::size_t idx;  // pair index within the plan
    };
    std::vector<PlanCtx> ctx(plans.size());
    // Level-major (ascending), plan-major within a level, pair order
    // within a plan — the per-target loop's enumeration, flattened.
    std::map<int, std::vector<Item>> by_level;
    int64_t fresh = 0;
    for (std::size_t pi = 0; pi < plans.size(); ++pi) {
      const ForwardTargetPlan& plan = plans[pi];
      DHTJOIN_CHECK(g_.ContainsNode(plan.target));
      DHTJOIN_CHECK(plan.out != nullptr || plan.sources.empty());
      DHTJOIN_CHECK_EQ(plan.sources.size(), plan.slots.size());
      // Schedulers typically pass ONE live source list for every
      // target of the round; validate and translate it once, not once
      // per plan.
      if (pi > 0 && plan.sources.data() == plans[pi - 1].sources.data() &&
          plan.sources.size() == plans[pi - 1].sources.size()) {
        ctx[pi].isources = ctx[pi - 1].isources;
      } else {
        for (ExtNodeId p : plan.sources) DHTJOIN_CHECK(g_.ContainsNode(p));
        ctx[pi].isources =
            g_.MapToInternal(plan.sources, ctx[pi].source_storage);
      }
      ctx[pi].itarget = g_.ToInternal(plan.target).value();

      for (std::size_t i = 0; i < plan.sources.size(); ++i) {
        const ForwardBatchStates::Slot* slot = states.FindSlot(plan.slots[i]);
        const int level = slot == nullptr ? 0 : slot->level;
        DHTJOIN_CHECK_LE(level, to_level);
        if (level == 0) {
          plan.out[i] = params.beta;
          ++fresh;
          states.misses_.fetch_add(1, std::memory_order_relaxed);
        } else {
          plan.out[i] = slot->score;
          states.hits_.fetch_add(1, std::memory_order_relaxed);
        }
        if (level < to_level) {
          by_level[level].push_back(Item{pi, i});
          // Materialize the map entry now: the parallel write-back
          // below only assigns through pre-existing entries, so the
          // hash map is never structurally mutated from worker threads.
          if (save_states && slot == nullptr) states.slots_[plan.slots[i]];
        }
      }
    }

    struct Block {
      int from_level;
      std::size_t first;  // into the flat item array
      int width;
    };
    std::vector<Item> items;
    std::vector<Block> blocks;
    for (auto& [level, level_items] : by_level) {
      for (std::size_t base = 0; base < level_items.size();
           base += static_cast<std::size_t>(W)) {
        const std::size_t count = std::min<std::size_t>(
            static_cast<std::size_t>(W), level_items.size() - base);
        blocks.push_back(Block{level, items.size() + base,
                               static_cast<int>(count)});
      }
      items.insert(items.end(), level_items.begin(), level_items.end());
    }

    // ONE fork/join for the whole round, every plan and level mixed;
    // blocks are independent (disjoint slots, disjoint output cells).
    std::atomic<bool> stopped{false};
    pool_.ParallelFor(
        static_cast<int64_t>(blocks.size()), [&](int64_t bi) {
          if (exec != nullptr) {
            if (stopped.load(std::memory_order_relaxed) ||
                exec->CheckBlockGroup() != StatusCode::kOk) {
              stopped.store(true, std::memory_order_relaxed);
              return;
            }
          }
          const Block& blk = blocks[static_cast<std::size_t>(bi)];
          const int width = blk.width;
          NodeId lane_source[W];
          NodeId lane_target[W];
          std::size_t lane_slot[W];
          double* lane_out[W];
          for (int b = 0; b < width; ++b) {
            const Item& item = items[blk.first + static_cast<std::size_t>(b)];
            lane_source[b] = ctx[item.plan].isources[item.idx];
            lane_target[b] = ctx[item.plan].itarget;
            lane_slot[b] = plans[item.plan].slots[item.idx];
            lane_out[b] = plans[item.plan].out + item.idx;
          }
          auto state = workspaces_.Acquire();
          AdvanceBlock(*state, params, blk.from_level, to_level, lane_source,
                       lane_target, lane_slot, lane_out, width, states,
                       save_states);
          workspaces_.Release(std::move(state));
        });
    workspaces_.Trim();
    if (interrupted != nullptr) {
      *interrupted = stopped.load(std::memory_order_relaxed);
    }

    // Entries whose write-back was refused by the budget (or that were
    // only materialized for the parallel phase) hold no state; erase
    // them so the sparse map never accumulates empty nodes.
    if (save_states) {
      for (const Item& item : items) {
        auto it = states.slots_.find(plans[item.plan].slots[item.idx]);
        if (it != states.slots_.end() && it->second.level == 0) {
          states.slots_.erase(it);
        }
      }
    }
    if (obs_trace != nullptr) {
      int64_t lanes = 0;
      for (const Block& blk : blocks) lanes += blk.width;
      obs_span.SetAttr("plans", static_cast<int64_t>(plans.size()));
      obs_span.SetAttr("blocks", static_cast<int64_t>(blocks.size()));
      obs_span.SetAttr("lanes", lanes);
      obs_span.SetAttr("fresh", fresh);
      obs_span.SetAttr("bytes",
                       (workspaces_.edges_relaxed() - obs_edges_before) *
                           static_cast<int64_t>(sizeof(OutEdge)));
      if (stopped.load(std::memory_order_relaxed)) {
        obs_span.SetAttr("interrupted", int64_t{1});
      }
    }
    return fresh;
  }

  /// Per-walker edges relaxed, summed over all lanes and runs,
  /// comparable with the scalar ForwardWalker's edges_relaxed: a sparse
  /// step bills each lane only for frontier nodes where that lane has
  /// mass; a dense pass bills every lane its sweep plan's edges.
  int64_t edges_relaxed() const { return workspaces_.edges_relaxed(); }

  /// Fork/join barriers dispatched by this engine so far (one per Run
  /// chunk or AdvanceMany round); see BackwardWalkerBatchT.
  int64_t scheduler_barriers() const { return pool_.scheduler_barriers(); }

  /// Workspace-pool observability (Options::max_pooled_bytes).
  std::size_t pooled_workspaces() const {
    return workspaces_.pooled_workspaces();
  }
  std::size_t pooled_workspace_bytes() const {
    return workspaces_.pooled_workspace_bytes();
  }
  int64_t workspaces_discarded() const {
    return workspaces_.workspaces_discarded();
  }

 private:
  using Workspace = batch_core::BlockWorkspace<W>;

  void Step(Workspace& st, int width) const {
    batch_core::StepLanes<batch_core::ForwardStepPolicy, W>(
        g_, options_.mode, /*soa_gather=*/false, st, width);
  }

  /// Walks one block of `width` sources to depth d with absorption at
  /// `target`, adding score contributions into out[(first + b)].
  // dhtlint: allow(raw-id-param): block kernel below the remap —
  // sources/target were translated to internal ids by the caller
  void RunBlock(Workspace& st, const DhtParams& params, int d,
                std::span<const NodeId> sources, std::size_t first_source,
                int width, NodeId target, std::size_t target_index,
                std::size_t num_targets, double* out) {
    // Seed: lane b walks from sources[first_source + b]; duplicates
    // share a support row with independent lanes.
    for (int b = 0; b < width; ++b) {
      NodeId p = sources[first_source + static_cast<std::size_t>(b)];
      st.mass[static_cast<std::size_t>(p) * W + static_cast<std::size_t>(b)] =
          1.0;
      st.support.push_back(p);
    }
    g_.SortCanonical(st.support);
    st.support.erase(std::unique(st.support.begin(), st.support.end()),
                     st.support.end());
    st.support_canonical = true;
    st.plan = options_.restrict_dense ? g_.PlanDenseSweep(st.support)
                                      : g_.FullSweepPlan();

    double lambda_pow = 1.0;
    for (int step = 0; step < d; ++step) {
      Step(st, width);
      // mass/next swap inside the step, so the row pointer is per-step.
      double* target_row = &st.mass[static_cast<std::size_t>(target) * W];
      lambda_pow *= params.lambda;
      const double coeff = params.alpha * lambda_pow;
      for (int b = 0; b < width; ++b) {
        out[(first_source + static_cast<std::size_t>(b)) * num_targets +
            target_index] += coeff * target_row[b];
      }
      // First-hit absorption: every lane of this block absorbs at the
      // shared target, so the whole row goes dark.
      if (params.first_hit) std::fill(target_row, target_row + width, 0.0);
    }

    st.RestoreZeroInvariant();
  }

  /// Advances one uniform-level lane block from `from_level` to
  /// `to_level`. Lanes carry independent (source, target) PAIRS — the
  /// cross-plan packing device — so absorption and scoring are
  /// per-lane, mirroring the backward engine's per-lane targets: loads
  /// fresh seeds or saved snapshots, steps, scores each lane at its own
  /// target, and writes the per-lane states back under the byte budget.
  void AdvanceBlock(Workspace& st, const DhtParams& params, int from_level,
                    int to_level, const NodeId* lane_source,
                    const NodeId* lane_target, const std::size_t* lane_slot,
                    double* const* lane_out, int width,
                    ForwardBatchStates& states, bool save_states) {
    // Load: fresh lanes seed unit mass at their source; resumed lanes
    // replay their sparse snapshot (mass stays inside the sources'
    // components, so the plan from the lane sources covers both).
    batch_core::LoadLaneMass<W>(
        g_, st, from_level, lane_source, width,
        [&](int b) -> const std::vector<std::pair<NodeId, double>>& {
          return states.FindSlot(lane_slot[b])->mass;
        });
    st.plan = options_.restrict_dense
                  ? g_.PlanDenseSweep({lane_source,
                                       static_cast<std::size_t>(width)})
                  : g_.FullSweepPlan();

    // Resume the discount where the walk stopped (lane 0 speaks for the
    // uniform-level block; equal levels have bit-equal saved lambda^l
    // products); fresh blocks start at lambda^0.
    double lambda_pow =
        from_level == 0 ? 1.0
                        : states.FindSlot(lane_slot[0])->lambda_pow;

    for (int step = from_level; step < to_level; ++step) {
      Step(st, width);
      lambda_pow *= params.lambda;
      const double coeff = params.alpha * lambda_pow;
      for (int b = 0; b < width; ++b) {
        // Each lane reads (and, under first-hit, darkens) its OWN
        // absorption target's mass slot.
        double& cell = st.mass[static_cast<std::size_t>(lane_target[b]) * W +
                               static_cast<std::size_t>(b)];
        *lane_out[b] += coeff * cell;
        if (params.first_hit) cell = 0.0;
      }
    }

    // Write back per-lane states under the byte budget. As in the
    // backward batch, the old (lower-level) snapshot is kept whenever
    // the new one does not fit, so budget pressure degrades resume
    // gracefully instead of to a full restart every level. A final
    // advance (save_states off) skips the snapshots entirely.
    for (int b = 0; save_states && b < width; ++b) {
      ForwardBatchStates::Slot& slot = *states.FindSlot(lane_slot[b]);
      ForwardBatchStates::Slot cand;
      cand.level = to_level;
      cand.lambda_pow = lambda_pow;
      cand.score = *lane_out[b];
      batch_core::CollectLaneMass(st, b, cand.mass);
      cand.bytes = cand.ApproxBytes();
      states.TryCommit(slot, std::move(cand));
    }

    st.RestoreZeroInvariant();
  }

  const Graph& g_;
  Options options_;
  ThreadPool pool_;
  batch_core::WorkspacePool<W> workspaces_;
};

/// The default 8-lane engine (one cache line of doubles per node).
using ForwardWalkerBatch = ForwardWalkerBatchT<8>;

extern template class ForwardWalkerBatchT<8>;
extern template class ForwardWalkerBatchT<4>;

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_FORWARD_BATCH_H_
