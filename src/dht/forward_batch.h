/// \file dht/forward_batch.h
/// \brief Batched multi-source forward evaluation (SpMM-style).
///
/// Forward first-hit walks are inherently per-PAIR: absorption at the
/// target entangles the mass trajectory with the target, so one walk
/// yields one h_d(p, q) — the reason the forward join family (F-BJ,
/// F-IDJ) is the slow side of the paper's Fig. 9(a). What CAN be shared
/// is the edge stream: this evaluator fixes one absorption target q per
/// block and advances kLaneWidth SOURCE walkers together, the mass state
/// an n x W row-major matrix pushed over the out-CSR one pass per step.
/// Per pair this divides edge traffic by W and turns the scattered
/// per-walk pushes into cache-line-wide lane updates — the forward
/// analogue of BackwardWalkerBatch, with the lane axis transposed
/// (8 sources x 1 target instead of 8 targets x all sources). Blocks
/// are independent and fan out across a ThreadPool.
///
/// Steps are frontier-adaptive with the shared policy of
/// dht/propagate.h, and the union support is kept SORTED at every step
/// boundary, so per-lane summation order equals the dense sweep's CSR
/// order: scores are bit-identical across modes, lane groupings, thread
/// counts, and restarted vs resumed walks (DESIGN.md §3), and match the
/// scalar ForwardWalker exactly.
///
/// Resumable deepening: F-IDJ revisits the same (p, q) pairs at levels
/// 1, 2, 4, ..., d. ForwardBatchStates holds per-pair sparse snapshots
/// so AdvancePairs() continues each pair from its saved level instead of
/// restarting — O(d) total steps per surviving pair instead of O(2d) —
/// under a byte budget with transparent bit-identical restarts on
/// eviction.
///
/// Memory contract: like the backward batch, each concurrent block owns
/// 2 * n * kLaneWidth doubles, pooled between runs up to
/// Options::max_pooled_bytes (the pool is trimmed to the cap at run
/// boundaries; workspaces_discarded counts the frees).
///
/// Node ids crossing the public interface (sources, targets) are
/// EXTERNAL ids; the engine translates to the graph's physical layout
/// (graph/reorder.h) at entry and keeps its union support sorted in
/// CANONICAL (external) order, so scores are bit-identical across
/// layouts. Dense billing and the adaptive policy use the block's
/// weak-component sweep plan (Graph::PlanDenseSweep), mirroring the
/// backward batch. ForwardBatchStates' snapshot mass node ids are
/// INTERNAL and only meaningful on the graph/layout they were saved
/// from.

#ifndef DHTJOIN_DHT_FORWARD_BATCH_H_
#define DHTJOIN_DHT_FORWARD_BATCH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dht/params.h"
#include "dht/propagate.h"
#include "graph/graph.h"
#include "util/thread_pool.h"

namespace dhtjoin {

/// Per-pair resumable walk states for ForwardWalkerBatch, keyed by a
/// caller-stable slot id (F-IDJ uses source_index * |Q| + target_index,
/// i.e. a PairKey over the original grid). Storage is a SPARSE hash map:
/// only pairs that actually saved a state pay anything, so a huge
/// |P| x |Q| pair space resumes under budget with no upfront dense
/// allocation (formerly a ROADMAP item). Retention is best-effort under
/// `max_bytes`: a dropped state restarts from scratch on the next
/// advance with bit-identical results.
class ForwardBatchStates {
 public:
  explicit ForwardBatchStates(std::size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  static constexpr std::size_t kDefaultMaxBytes = std::size_t{256} << 20;

  /// Walked depth of `slot`; 0 means no saved state (fresh or evicted).
  int level(std::size_t slot) const {
    const Slot* s = FindSlot(slot);
    return s == nullptr ? 0 : s->level;
  }

  /// Drops the saved state of `slot` (e.g. a pruned source's pairs).
  void Drop(std::size_t slot) {
    auto it = slots_.find(slot);
    if (it == slots_.end()) return;
    bytes_.fetch_sub(it->second.bytes, std::memory_order_relaxed);
    slots_.erase(it);
  }

  std::size_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Number of pairs currently holding a saved state.
  std::size_t size() const { return slots_.size(); }

  /// Observability (TwoWayJoinStats::state_*): walks resumed from a
  /// saved state vs snapshots the byte budget forced out at write-back.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  friend class ForwardWalkerBatch;

  struct Slot {
    int level = 0;
    double lambda_pow = 1.0;
    double score = 0.0;  // h_level(p, q); meaningless while level == 0
    std::vector<std::pair<NodeId, double>> mass;  // nonzero, ascending node
    std::size_t bytes = 0;

    /// Includes the hash-map node the slot occupies, so the byte budget
    /// reflects the sparse container's real footprint.
    std::size_t ApproxBytes() const {
      return sizeof(*this) + kMapEntryOverheadBytes +
             mass.capacity() * sizeof(mass[0]);
    }
  };

  /// Rough per-entry cost of an unordered_map node (key, hash link,
  /// allocator overhead) on mainstream implementations.
  static constexpr std::size_t kMapEntryOverheadBytes = 64;

  const Slot* FindSlot(std::size_t slot) const {
    auto it = slots_.find(slot);
    return it == slots_.end() ? nullptr : &it->second;
  }
  Slot* FindSlot(std::size_t slot) {
    auto it = slots_.find(slot);
    return it == slots_.end() ? nullptr : &it->second;
  }

  std::unordered_map<std::size_t, Slot> slots_;
  std::size_t max_bytes_;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> evictions_{0};
};

/// Advances many forward pair-walkers at once; see file comment.
class ForwardWalkerBatch {
 public:
  /// Source walkers advanced together per block (8 doubles = one cache
  /// line), all absorbed at the block's common target.
  static constexpr int kLaneWidth = 8;

  struct Options {
    PropagationMode mode = PropagationMode::kAdaptive;
    /// Worker threads; 0 means ThreadPool::DefaultThreadCount().
    int num_threads = 0;
    /// Use the walk's weak-component sweep plan for dense billing and
    /// the adaptive threshold (see file comment); results are
    /// bit-identical either way.
    bool restrict_dense = true;
    /// Byte cap on idle block workspaces retained between runs.
    std::size_t max_pooled_bytes = kDefaultMaxPooledBytes;
  };

  /// Default workspace-pool cap, as in BackwardWalkerBatch.
  static constexpr std::size_t kDefaultMaxPooledBytes = std::size_t{1} << 30;

  explicit ForwardWalkerBatch(const Graph& g);
  ForwardWalkerBatch(const Graph& g, Options options);
  ~ForwardWalkerBatch();

  /// Runs a d-step forward walk for every (source, target) pair and
  /// returns the scores row-major by SOURCE:
  ///   result[s * targets.size() + t] = h_d(sources[s], targets[t]).
  /// Self pairs (sources[s] == targets[t]) are present but meaningless —
  /// callers must skip them, mirroring the backward batch.
  ///
  /// The matrix is dense: slice huge source sets to MaxSourcesPerRun()
  /// per call (RunChunked does this for you).
  std::vector<double> Run(const DhtParams& params, int d,
                          std::span<const NodeId> sources,
                          std::span<const NodeId> targets);

  /// Largest source count per Run() that keeps the returned matrix near
  /// 32 MB; never less than one full lane block.
  static std::size_t MaxSourcesPerRun(std::size_t num_targets) {
    constexpr std::size_t kMaxMatrixDoubles = std::size_t{4} << 20;
    std::size_t cap = kMaxMatrixDoubles / (num_targets == 0 ? 1 : num_targets);
    return cap < kLaneWidth ? kLaneWidth : cap;
  }

  /// Run() with MaxSourcesPerRun slicing applied: walks every pair,
  /// invoking consume(source_index, row) with the |targets|-wide score
  /// row of sources[source_index]. Rows are only valid during the
  /// callback. `max_sources_per_run` forces a smaller slice (0 =
  /// MaxSourcesPerRun); tests use it to exercise the multi-chunk path.
  template <typename Consume>
  void RunChunked(const DhtParams& params, int d,
                  std::span<const NodeId> sources,
                  std::span<const NodeId> targets, Consume&& consume,
                  std::size_t max_sources_per_run = 0) {
    const std::size_t chunk = max_sources_per_run > 0
                                  ? max_sources_per_run
                                  : MaxSourcesPerRun(targets.size());
    for (std::size_t base = 0; base < sources.size(); base += chunk) {
      const std::size_t count = std::min(chunk, sources.size() - base);
      std::vector<double> scores =
          Run(params, d, sources.subspan(base, count), targets);
      for (std::size_t i = 0; i < count; ++i) {
        consume(base + i, scores.data() + i * targets.size());
      }
    }
  }

  /// The resumable form: advances the pairs (sources[i], target) from
  /// their saved levels (states slot slots[i]) to `to_level`, then
  /// invokes consume(i, score) with h_{to_level}(sources[i], target).
  /// Pairs saved at different levels are grouped and advanced
  /// separately, so evictions and fresh pairs mix freely.
  /// `save_states = false` skips the write-back for a FINAL advance
  /// whose states would never be read. Returns the number of pair
  /// walks started from scratch.
  template <typename Consume>
  int64_t AdvancePairs(const DhtParams& params, int to_level,
                       std::span<const NodeId> sources,
                       std::span<const std::size_t> slots, NodeId target,
                       ForwardBatchStates& states, Consume&& consume,
                       bool save_states = true) {
    DHTJOIN_CHECK_EQ(sources.size(), slots.size());
    std::vector<double> scores(sources.size());
    int64_t fresh = AdvancePairsRun(params, to_level, sources, slots, target,
                                    states, save_states, scores.data());
    for (std::size_t i = 0; i < sources.size(); ++i) consume(i, scores[i]);
    return fresh;
  }

  /// Per-walker edges relaxed, summed over all lanes and runs,
  /// comparable with the scalar ForwardWalker's edges_relaxed: a sparse
  /// step bills each lane only for frontier nodes where that lane has
  /// mass; a dense pass bills every lane its sweep plan's edges.
  int64_t edges_relaxed() const { return edges_relaxed_; }

  /// Workspace-pool observability (Options::max_pooled_bytes).
  std::size_t pooled_workspaces() const;
  std::size_t pooled_workspace_bytes() const;
  int64_t workspaces_discarded() const;

 private:
  struct BlockState;

  std::unique_ptr<BlockState> AcquireState();
  void ReleaseState(std::unique_ptr<BlockState> state);
  /// Frees pooled workspaces over Options::max_pooled_bytes; called at
  /// run boundaries so intra-run recycling is never disabled.
  void TrimPool();

  /// One blocked forward transition step; leaves the (sorted) new
  /// support in st.support.
  void StepLanes(BlockState& st, int width) const;

  /// Walks one block of `width` sources to depth d with absorption at
  /// `target`, adding score contributions into out[(first + b)].
  void RunBlock(BlockState& st, const DhtParams& params, int d,
                std::span<const NodeId> sources, std::size_t first_source,
                int width, NodeId target, std::size_t target_index,
                std::size_t num_targets, double* out);

  /// Resumable body behind AdvancePairs; writes h_{to_level} of pair i
  /// into out[i]. Returns fresh-start count.
  int64_t AdvancePairsRun(const DhtParams& params, int to_level,
                          std::span<const NodeId> sources,
                          std::span<const std::size_t> slots, NodeId target,
                          ForwardBatchStates& states, bool save_states,
                          double* out);

  const Graph& g_;
  Options options_;
  ThreadPool pool_;
  mutable std::mutex state_mu_;
  std::vector<std::unique_ptr<BlockState>> free_states_;
  std::size_t pooled_bytes_ = 0;
  int64_t workspaces_discarded_ = 0;
  int64_t edges_relaxed_ = 0;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_FORWARD_BATCH_H_
