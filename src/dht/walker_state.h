/// \file dht/walker_state.h
/// \brief Byte-budgeted LRU pool of saved walker states.
///
/// The IDJ deepening schedules (B-IDJ, F-IDJ, the incremental join's
/// DeepenTarget) revisit the same walk at levels 1, 2, 4, ..., d. A
/// restart at each level pays 1+2+4+...+d = O(2d) steps; resuming from a
/// saved state pays d total. This pool holds those saved states — keyed
/// by whatever the caller identifies a walk with (a target index, a
/// PairKey) — under a byte budget, evicting least-recently-used entries
/// when walks outgrow it.
///
/// Eviction is always safe: by the propagation engine's sorted-support
/// determinism (DESIGN.md §3), a restarted walk reproduces the evicted
/// walk's scores bit-for-bit, so dropping a state costs only time, never
/// correctness. Callers therefore treat Find() returning nullptr and a
/// stale level identically: restart from scratch.

#ifndef DHTJOIN_DHT_WALKER_STATE_H_
#define DHTJOIN_DHT_WALKER_STATE_H_

#include <algorithm>
#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace dhtjoin {

/// Autotuned walk-state byte budget for a graph of `num_nodes` nodes.
///
/// A saved sparse walk state costs up to ~24 bytes per touched node (a
/// (node, mass) pair plus its share of the score row), and a walk can
/// touch every node, so `num_nodes * 24` bounds one saturated snapshot.
/// The budget leaves room for kAutotuneSnapshotHeadroom of those —
/// enough for the IDJ schedules' live sets and a serving cache's working
/// set — clamped so toy graphs still keep a useful pool and huge graphs
/// do not silently claim the whole machine. Callers treat a configured
/// budget of 0 as "autotune"; an explicit nonzero budget wins as before.
inline constexpr std::size_t kAutotuneBytesPerNodeSnapshot = 24;
inline constexpr std::size_t kAutotuneSnapshotHeadroom = 256;

inline constexpr std::size_t kAutotuneMinBudgetBytes = std::size_t{64} << 20;
inline constexpr std::size_t kAutotuneMaxBudgetBytes = std::size_t{1} << 30;

inline std::size_t AutotuneStateBudgetBytes(int64_t num_nodes) {
  const std::size_t per_snapshot =
      static_cast<std::size_t>(std::max<int64_t>(num_nodes, 1)) *
      kAutotuneBytesPerNodeSnapshot;
  const std::size_t budget = per_snapshot * kAutotuneSnapshotHeadroom;
  return std::clamp(budget, kAutotuneMinBudgetBytes, kAutotuneMaxBudgetBytes);
}

/// Keyed LRU pool of walker snapshots. `State` must expose
/// ApproxBytes() (BackwardWalkerState, ForwardWalkerState, and the
/// batch engines' per-target states all do).
template <typename State>
class WalkerStatePool {
 public:
  /// Default budget: enough for a few thousand mid-sized walk states
  /// without threatening a laptop; joins override per workload.
  static constexpr std::size_t kDefaultMaxBytes = std::size_t{256} << 20;

  explicit WalkerStatePool(std::size_t max_bytes = kDefaultMaxBytes)
      : max_bytes_(max_bytes) {}

  /// Returns the state saved under `key` (bumping it to most-recently-
  /// used) or nullptr. The pointer is valid until the next Put/Erase.
  State* Find(uint64_t key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    lru_.splice(lru_.begin(), lru_, it->second);
    return &it->second->state;
  }

  /// Saves (or replaces) the state under `key`, then evicts LRU entries
  /// until the pool fits the budget. A state larger than the whole
  /// budget is simply not retained.
  void Put(uint64_t key, State state) {
    Erase(key);
    const std::size_t bytes = state.ApproxBytes();
    lru_.push_front(Entry{key, std::move(state), bytes});
    index_[key] = lru_.begin();
    bytes_ += bytes;
    while (bytes_ > max_bytes_ && !lru_.empty()) {
      Entry& victim = lru_.back();
      bytes_ -= victim.bytes;
      index_.erase(victim.key);
      lru_.pop_back();
      ++evictions_;
    }
  }

  void Erase(uint64_t key) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }

  void Clear() {
    lru_.clear();
    index_.clear();
    bytes_ = 0;
  }

  std::size_t size() const { return lru_.size(); }
  std::size_t bytes() const { return bytes_; }
  std::size_t max_bytes() const { return max_bytes_; }

  /// Feedback half of the budget autotuner (AutotuneStateBudgetBytes is
  /// the graph-size half): adjusts max_bytes() from the hit/eviction
  /// counters OBSERVED since the previous Retune call.
  ///  * THRASH — evictions happened and under half the lookups hit:
  ///    the working set does not fit; double the budget (up to `hi`).
  ///  * IDLE — no evictions and the pool sits under a quarter of its
  ///    budget: halve it (down to `lo`, never below the resident
  ///    bytes), handing headroom back to the process.
  /// Callers with an EXPLICIT budget should not call this; it is for
  /// budgets derived by the autotuner. Returns the (possibly
  /// unchanged) budget.
  std::size_t Retune(std::size_t lo = kAutotuneMinBudgetBytes,
                     std::size_t hi = kAutotuneMaxBudgetBytes) {
    const int64_t d_hits = hits_ - retune_hits_;
    const int64_t d_misses = misses_ - retune_misses_;
    const int64_t d_evictions = evictions_ - retune_evictions_;
    retune_hits_ = hits_;
    retune_misses_ = misses_;
    retune_evictions_ = evictions_;
    if (d_evictions > 0 && d_hits < d_misses) {
      max_bytes_ = std::min(std::max(max_bytes_, std::size_t{1}) * 2, hi);
      ++grows_;
    } else if (d_evictions == 0 && bytes_ * 4 <= max_bytes_ &&
               max_bytes_ > lo) {
      max_bytes_ = std::max({max_bytes_ / 2, lo, bytes_});
      ++shrinks_;
    }
    return max_bytes_;
  }

  /// Retune() decisions taken so far (observability/tests).
  int64_t budget_grows() const { return grows_; }
  int64_t budget_shrinks() const { return shrinks_; }

  /// Observability counters, surfaced as TwoWayJoinStats::state_*:
  /// Find() calls that returned a state / returned nullptr, and entries
  /// dropped by the byte budget (Erase/Clear are deliberate, not
  /// evictions).
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }
  int64_t evictions() const { return evictions_; }

 private:
  struct Entry {
    uint64_t key;
    State state;
    std::size_t bytes;
  };

  std::size_t max_bytes_;
  std::size_t bytes_ = 0;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
  int64_t evictions_ = 0;
  // Counter snapshots at the last Retune(), and decision counts.
  int64_t retune_hits_ = 0;
  int64_t retune_misses_ = 0;
  int64_t retune_evictions_ = 0;
  int64_t grows_ = 0;
  int64_t shrinks_ = 0;
  std::list<Entry> lru_;
  std::unordered_map<uint64_t, typename std::list<Entry>::iterator> index_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_WALKER_STATE_H_
