#include "dht/propagate.h"

#include <algorithm>

namespace dhtjoin {

Propagator::Propagator(const Graph& g, Direction dir, PropagationMode mode,
                       bool restrict_dense, bool soa_gather)
    : g_(g),
      dir_(dir),
      mode_(mode),
      restrict_dense_(restrict_dense),
      soa_gather_(soa_gather),
      mass_(static_cast<std::size_t>(g.num_nodes()), 0.0),
      next_(static_cast<std::size_t>(g.num_nodes()), 0.0) {}

void Propagator::RebuildPlan(std::span<const NodeId> seeds) {
  plan_ = restrict_dense_ ? g_.PlanDenseSweep(seeds) : g_.FullSweepPlan();
}

void Propagator::Reset(IntNodeId seed) {
  DHTJOIN_CHECK(g_.ContainsNode(seed));
  for (NodeId u : support_) mass_[static_cast<std::size_t>(u)] = 0.0;
  support_.clear();
  const NodeId raw = seed.value();
  support_.push_back(raw);
  mass_[static_cast<std::size_t>(raw)] = 1.0;
  support_canonical_ = true;
  RebuildPlan({&raw, 1});
}

void Propagator::Reset(std::span<const IntNodeId> seeds) {
  for (NodeId u : support_) mass_[static_cast<std::size_t>(u)] = 0.0;
  support_.clear();
  for (IntNodeId typed_seed : seeds) {
    DHTJOIN_CHECK(g_.ContainsNode(typed_seed));
    const NodeId seed = typed_seed.value();
    double& slot = mass_[static_cast<std::size_t>(seed)];
    if (slot == 0.0) support_.push_back(seed);
    slot = 1.0;
  }
  // The sorted-support contract must hold from step one.
  g_.SortCanonical(support_);
  support_canonical_ = true;
  RebuildPlan(support_);
}

void Propagator::SaveState(PropagatorState* out) const {
  out->mass.clear();
  out->mass.reserve(support_.size());
  for (NodeId u : support_) {
    out->mass.emplace_back(u, mass_[static_cast<std::size_t>(u)]);
  }
}

void Propagator::RestoreState(const PropagatorState& state) {
  for (NodeId u : support_) mass_[static_cast<std::size_t>(u)] = 0.0;
  support_.clear();
  for (const auto& [u, m] : state.mass) {
    DHTJOIN_DCHECK(g_.ContainsNode(IntNodeId(u)));
    support_.push_back(u);
    mass_[static_cast<std::size_t>(u)] = m;
  }
  // A snapshot records the support in whatever (deterministic) order
  // the saved walk held it; the next order-consuming step re-sorts.
  support_canonical_ = false;
  // The support spans the same components as the original seeds (mass
  // never crosses a weak-component boundary), so the rebuilt plan
  // matches the saved walk's.
  RebuildPlan(support_);
}

bool Propagator::ChooseDense() const {
  if (mode_ == PropagationMode::kDense) return true;
  if (mode_ == PropagationMode::kSparse) return false;
  if (SupportSizeForcesDense(support_.size(), plan_.cost)) return true;
  int64_t frontier_edges = 0;
  for (NodeId u : support_) {
    if (mass_[static_cast<std::size_t>(u)] == 0.0) continue;
    frontier_edges += dir_ == Direction::kForward
                          ? g_.OutDegree(IntNodeId(u))
                          : g_.InDegree(IntNodeId(u));
  }
  return FrontierPrefersDense(support_.size(), frontier_edges, plan_.cost);
}

void Propagator::Step() {
  last_step_dense_ = ChooseDense();
  // Sorted-support contract: a step that CONSUMES the support order (a
  // push — it accumulates contributions at destinations in support
  // order) first brings it into canonical order, so summation order
  // equals the dense gather's storage order in every layout and every
  // mode/resume path stays bit-identical. The dense backward gather
  // only reads per-row and never consumes the order.
  bool emitted_canonical;
  if (dir_ == Direction::kForward) {
    // The forward push visits exactly the nonzero rows in canonical
    // order either way; "dense" only changes the billing.
    EnsureCanonicalSupport();
    StepForward(last_step_dense_);
    emitted_canonical = false;  // push order
  } else if (!last_step_dense_) {
    EnsureCanonicalSupport();
    StepSparseBackward();
    emitted_canonical = false;  // push order
  } else {
    StepDenseBackward();
    // The gather emits rows ascending by INTERNAL id; that is the
    // canonical order exactly when the layout is insertion order and
    // the plan had no component gaps.
    emitted_canonical = !g_.is_reordered() && plan_.full;
  }
  support_.swap(next_support_);
  mass_.swap(next_);
  next_support_.clear();
  support_canonical_ = emitted_canonical;
}

void Propagator::StepForward(bool bill_dense) {
  next_support_.clear();
  int64_t relaxed = 0;
  for (NodeId u : support_) {
    double m = mass_[static_cast<std::size_t>(u)];
    mass_[static_cast<std::size_t>(u)] = 0.0;
    if (m == 0.0) continue;
    relaxed += g_.OutDegree(IntNodeId(u));
    for (const OutEdge& e : g_.OutEdges(IntNodeId(u))) {
      double add = m * e.prob;
      // Underflow guard: a zero contribution must not register the
      // node in the support (the first-touch test below relies on
      // nonzero slots staying nonzero).
      if (add == 0.0) continue;
      double& slot = next_[static_cast<std::size_t>(e.to)];
      if (slot == 0.0) next_support_.push_back(e.to);
      slot += add;
    }
  }
  edges_relaxed_ += bill_dense ? plan_.edges : relaxed;
}

void Propagator::StepSparseBackward() {
  next_support_.clear();
  for (NodeId u : support_) {
    double m = mass_[static_cast<std::size_t>(u)];
    mass_[static_cast<std::size_t>(u)] = 0.0;
    if (m == 0.0) continue;
    for (const InEdge& e : g_.InEdges(IntNodeId(u))) {
      double add = m * e.prob;
      if (add == 0.0) continue;
      double& slot = next_[static_cast<std::size_t>(e.from)];
      if (slot == 0.0) next_support_.push_back(e.from);
      slot += add;
    }
    edges_relaxed_ += g_.InDegree(IntNodeId(u));
  }
}

void Propagator::StepDenseBackward() {
  // Sequential gather over the PLAN's out-rows — the cache-friendly
  // layout the seed engine used, restricted to the walk's components.
  // Rows outside the plan have no edge into the support, so their
  // accumulator would be exactly 0.0: skipping them changes nothing
  // (the restricted-sweep correctness argument, DESIGN.md §7). Each
  // row's sum runs in storage (canonical) order; rows are independent,
  // so the row iteration order never affects values. The support
  // rebuild rides the same sweep.
  // The gather reads only (to, prob) of every covered edge and does
  // one madd per edge — stream-bound — so by default it streams the
  // split SoA arrays (Graph::OutTargets/OutProbs — 12 bytes/edge
  // instead of the 16-byte padded OutEdge); identical per-row
  // summation order, bit-identical results (bench_reorder gates the
  // win and the identity).
  next_support_.clear();
  if (soa_gather_) {
    plan_.ForEachRow(g_.num_nodes(), [&](NodeId u) {
      std::span<const NodeId> to = g_.OutTargets(IntNodeId(u));
      std::span<const double> prob = g_.OutProbs(IntNodeId(u));
      double acc = 0.0;
      for (std::size_t e = 0; e < to.size(); ++e) {
        acc += prob[e] * mass_[static_cast<std::size_t>(to[e])];
      }
      if (acc != 0.0) {
        next_[static_cast<std::size_t>(u)] = acc;
        next_support_.push_back(u);
      }
    });
  } else {
    plan_.ForEachRow(g_.num_nodes(), [&](NodeId u) {
      double acc = 0.0;
      for (const OutEdge& e : g_.OutEdges(IntNodeId(u))) {
        acc += e.prob * mass_[static_cast<std::size_t>(e.to)];
      }
      if (acc != 0.0) {
        next_[static_cast<std::size_t>(u)] = acc;
        next_support_.push_back(u);
      }
    });
  }
  for (NodeId u : support_) mass_[static_cast<std::size_t>(u)] = 0.0;
  edges_relaxed_ += plan_.edges;
}

}  // namespace dhtjoin
