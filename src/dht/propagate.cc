#include "dht/propagate.h"

#include <algorithm>

namespace dhtjoin {

Propagator::Propagator(const Graph& g, Direction dir, PropagationMode mode)
    : g_(g),
      dir_(dir),
      mode_(mode),
      mass_(static_cast<std::size_t>(g.num_nodes()), 0.0),
      next_(static_cast<std::size_t>(g.num_nodes()), 0.0) {}

void Propagator::Reset(NodeId seed) {
  DHTJOIN_CHECK(g_.ContainsNode(seed));
  for (NodeId u : support_) mass_[static_cast<std::size_t>(u)] = 0.0;
  support_.clear();
  support_.push_back(seed);
  mass_[static_cast<std::size_t>(seed)] = 1.0;
}

void Propagator::Reset(std::span<const NodeId> seeds) {
  for (NodeId u : support_) mass_[static_cast<std::size_t>(u)] = 0.0;
  support_.clear();
  for (NodeId seed : seeds) {
    DHTJOIN_CHECK(g_.ContainsNode(seed));
    double& slot = mass_[static_cast<std::size_t>(seed)];
    if (slot == 0.0) support_.push_back(seed);
    slot = 1.0;
  }
  // The sorted-support contract must hold from step one.
  std::sort(support_.begin(), support_.end());
}

void Propagator::SaveState(PropagatorState* out) const {
  out->mass.clear();
  out->mass.reserve(support_.size());
  for (NodeId u : support_) {
    out->mass.emplace_back(u, mass_[static_cast<std::size_t>(u)]);
  }
}

void Propagator::RestoreState(const PropagatorState& state) {
  for (NodeId u : support_) mass_[static_cast<std::size_t>(u)] = 0.0;
  support_.clear();
  for (const auto& [u, m] : state.mass) {
    DHTJOIN_DCHECK(g_.ContainsNode(u));
    support_.push_back(u);
    mass_[static_cast<std::size_t>(u)] = m;
  }
}

bool Propagator::ChooseDense() const {
  if (mode_ == PropagationMode::kDense) return true;
  if (mode_ == PropagationMode::kSparse) return false;
  if (SupportSizeForcesDense(support_.size(), g_)) return true;
  int64_t frontier_edges = 0;
  for (NodeId u : support_) {
    if (mass_[static_cast<std::size_t>(u)] == 0.0) continue;
    frontier_edges += dir_ == Direction::kForward ? g_.OutDegree(u)
                                                  : g_.InDegree(u);
  }
  return FrontierPrefersDense(support_.size(), frontier_edges, g_);
}

void Propagator::Step() {
  last_step_dense_ = ChooseDense();
  if (!last_step_dense_) {
    StepSparse();
  } else if (dir_ == Direction::kForward) {
    StepDenseForward();
  } else {
    StepDenseBackward();
  }
  // Sorted-support contract: keeping the support ascending makes the
  // next sparse push accumulate contributions in dense-sweep order, so
  // every mode (and every resumed walk) is bit-identical. The backward
  // dense gather emits an already-sorted list; sorting it is O(s).
  std::sort(next_support_.begin(), next_support_.end());
  support_.swap(next_support_);
  mass_.swap(next_);
  next_support_.clear();
}

void Propagator::StepSparse() {
  next_support_.clear();
  for (NodeId u : support_) {
    double m = mass_[static_cast<std::size_t>(u)];
    mass_[static_cast<std::size_t>(u)] = 0.0;
    if (m == 0.0) continue;
    if (dir_ == Direction::kForward) {
      for (const OutEdge& e : g_.OutEdges(u)) {
        double add = m * e.prob;
        // Underflow guard: a zero contribution must not register the
        // node in the support (the first-touch test below relies on
        // nonzero slots staying nonzero).
        if (add == 0.0) continue;
        double& slot = next_[static_cast<std::size_t>(e.to)];
        if (slot == 0.0) next_support_.push_back(e.to);
        slot += add;
      }
      edges_relaxed_ += g_.OutDegree(u);
    } else {
      for (const InEdge& e : g_.InEdges(u)) {
        double add = m * e.prob;
        if (add == 0.0) continue;
        double& slot = next_[static_cast<std::size_t>(e.from)];
        if (slot == 0.0) next_support_.push_back(e.from);
        slot += add;
      }
      edges_relaxed_ += g_.InDegree(u);
    }
  }
}

void Propagator::StepDenseForward() {
  next_support_.clear();
  const NodeId n = g_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    double m = mass_[static_cast<std::size_t>(u)];
    if (m == 0.0) continue;
    mass_[static_cast<std::size_t>(u)] = 0.0;
    for (const OutEdge& e : g_.OutEdges(u)) {
      double add = m * e.prob;
      if (add == 0.0) continue;
      double& slot = next_[static_cast<std::size_t>(e.to)];
      if (slot == 0.0) next_support_.push_back(e.to);
      slot += add;
    }
  }
  edges_relaxed_ += g_.num_edges();
}

void Propagator::StepDenseBackward() {
  // Sequential gather over every out-row, the cache-friendly layout the
  // seed engine used; the support rebuild rides the same O(n) sweep.
  next_support_.clear();
  const NodeId n = g_.num_nodes();
  for (NodeId u = 0; u < n; ++u) {
    double acc = 0.0;
    for (const OutEdge& e : g_.OutEdges(u)) {
      acc += e.prob * mass_[static_cast<std::size_t>(e.to)];
    }
    if (acc != 0.0) {
      next_[static_cast<std::size_t>(u)] = acc;
      next_support_.push_back(u);
    }
  }
  for (NodeId u : support_) mass_[static_cast<std::size_t>(u)] = 0.0;
  edges_relaxed_ += g_.num_edges();
}

}  // namespace dhtjoin
