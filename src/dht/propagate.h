/// \file dht/propagate.h
/// \brief Frontier-adaptive probability-mass propagation engine.
///
/// Every DHT primitive in the repo — the forward walker (Sec V-B), the
/// backward walker (Eq. 5), and the batched evaluators — bottoms
/// out in the same operation: one step of the random-walk transition,
///   next = M^T cur   (forward: push mass ALONG edges)
///   next = M   cur   (backward: push mass AGAINST edges)
/// where M is the row-stochastic transition matrix with entries p_uv.
///
/// The seed implementation evaluated this densely, O(n + m) per step
/// even when mass occupies a handful of nodes around the seed. This
/// engine tracks the *support* (nodes with nonzero mass) explicitly and
/// chooses per step, direction-optimizing style:
///
///  * SPARSE step: push mass only from support nodes, over their
///    out-rows (forward) or transposed in-rows (backward, which is why
///    Graph carries in-edge transition probabilities). Cost is
///    proportional to the frontier's degree sum — output-sensitive.
///  * DENSE step: the full sweep (sequential gather for backward, full
///    push for forward) — but RESTRICTED to the weak components of the
///    walk's seeds (Graph::PlanDenseSweep): mass can never leave them,
///    so rows outside contribute exactly 0.0 and are skipped without
///    changing a single bit. A saturated-but-local walk therefore pays
///    O(|ball|) per dense step, not O(n + m); on a connected graph the
///    plan covers everything and the sweep is the classic one.
///
/// The adaptive policy compares the frontier degree sum against the
/// RESTRICTED dense cost with a constant penalty for the sparse step's
/// random writes, so worst-case cost never regresses beyond a constant
/// factor of the dense engine while small frontiers — the common case
/// for few-step truncated DHT on sparse graphs — cost almost nothing.
///
/// Numerical contract (DESIGN.md §3, §7): the support list is kept
/// sorted by CANONICAL (external) node id at every step boundary, and
/// CSR rows are stored in canonical order, so a sparse push visits
/// sources in exactly the order the dense sweep's rows accumulate them
/// — in EVERY physical layout. Floating-point summation order is
/// therefore identical across modes, across restricted and full
/// sweeps, and across graph reorderings (graph/reorder.h): all of them
/// produce bit-identical mass vectors. This determinism is
/// load-bearing: it is what lets a resumed walk (SaveState/
/// RestoreState, or the batched engines' per-target states) produce
/// byte-identical scores to a from-scratch walk, lets state pools drop
/// entries under memory pressure and restart without changing any
/// result, and makes a reordered graph a pure physical optimization.

#ifndef DHTJOIN_DHT_PROPAGATE_H_
#define DHTJOIN_DHT_PROPAGATE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace dhtjoin {

/// How a propagation engine executes each step.
enum class PropagationMode {
  kDense,     ///< always the full O(n + m) sweep (the seed engine)
  kSparse,    ///< always frontier pushes (can regress on dense frontiers)
  kAdaptive,  ///< per-step choice by frontier degree sum (the default)
};

/// Cost multiplier charged to a sparse step when the adaptive policy
/// compares it against a dense sweep: sparse pushes write to random
/// destinations while the dense gather streams sequentially, so a sparse
/// step is only chosen when its edge count is below dense/kSparsePenalty.
inline constexpr int64_t kSparsePenalty = 4;

/// The adaptive policy, shared by Propagator and the batch engines so
/// all of them flip modes at the same threshold. `dense_cost` is the
/// walk's restricted dense-sweep cost (SweepPlan::cost — covered edges
/// plus covered rows; n + m when the restriction is off or the graph is
/// connected).
///
/// SupportSizeForcesDense is the cheap early-out: once the support alone
/// crosses the threshold, the degree sum can only confirm it and the
/// per-node degree scan would cost real time every step of a saturated
/// walk. FrontierPrefersDense is the full comparison once the caller has
/// summed its frontier degrees.
inline bool SupportSizeForcesDense(std::size_t support_size,
                                   int64_t dense_cost) {
  return static_cast<int64_t>(support_size) * kSparsePenalty >= dense_cost;
}
inline bool FrontierPrefersDense(std::size_t support_size,
                                 int64_t frontier_edges,
                                 int64_t dense_cost) {
  return (frontier_edges + static_cast<int64_t>(support_size)) *
             kSparsePenalty >=
         dense_cost;
}

/// Sparse snapshot of a Propagator's in-flight mass: (node, mass) pairs
/// in support order. Entries with zero mass are preserved so a restored
/// engine has the exact support list (and thus the exact sparse/dense
/// policy decisions and edge billing) of the saved one. Node ids are
/// INTERNAL (layout) ids — a state is only meaningful on the graph (and
/// layout) it was saved from; the serving cache keys enforce that via
/// the layout-aware GraphFingerprint.
struct PropagatorState {
  std::vector<std::pair<NodeId, double>> mass;

  std::size_t ApproxBytes() const {
    return sizeof(*this) + mass.capacity() * sizeof(mass[0]);
  }
};

/// One unit of probability mass propagated through the graph, stepwise,
/// in either edge direction. Absorption (first-hit semantics) is the
/// caller's business: read Mass() at the absorbing node after a Step()
/// and ClearMass() it before the next.
///
/// This is the LOW-LEVEL engine: every node id crossing its interface
/// is an INTERNAL (layout) id. The scalar walkers and batch engines
/// translate external ids before reaching it.
class Propagator {
 public:
  enum class Direction {
    kForward,   ///< next[w] = sum_u p_uw * cur[u]
    kBackward,  ///< next[u] = sum_v p_uv * cur[v]
  };

  /// `restrict_dense` = false disables the reachability restriction
  /// (dense steps sweep all n rows and bill all m edges, as the seed
  /// engine did) — the benchmark baseline; results are bit-identical
  /// either way. `soa_gather` streams the split (to[], prob[]) arrays
  /// (Graph::OutTargets/OutProbs, 12 bytes/edge) in the dense backward
  /// gather instead of the 16-byte AoS OutEdge stream — the scalar
  /// gather does one madd per edge and is stream-bound, so the cut is
  /// a measured win (bench_reorder gates it); bit-identical either
  /// way.
  Propagator(const Graph& g, Direction dir,
             PropagationMode mode = PropagationMode::kAdaptive,
             bool restrict_dense = true, bool soa_gather = true);

  /// Drops all mass and places 1.0 at `seed`. O(|support|), not O(n).
  void Reset(IntNodeId seed);

  /// Drops all mass and places 1.0 at every seed (the YBoundTable sweep
  /// starts from all of P at once). Seeds are deduplicated; a duplicate
  /// seed still carries mass 1.0, not 2.0. Callers holding the raw
  /// output of Graph::MapToInternal view it via AsIntIds (zero copy).
  void Reset(std::span<const IntNodeId> seeds);

  /// Advances one transition step.
  void Step();

  /// Current mass at `u`; exact 0.0 for nodes outside the support.
  double Mass(IntNodeId u) const {
    return mass_[static_cast<std::size_t>(u.value())];
  }

  /// Zeroes the mass at `u` (absorption). The node may linger in the
  /// support list with zero mass; iteration skips it.
  void ClearMass(IntNodeId u) {
    mass_[static_cast<std::size_t>(u.value())] = 0.0;
  }

  /// Invokes fn(node, mass) for every node with nonzero mass; `node` is
  /// a RAW internal id (callers index internal-space arrays with it on
  /// every invocation). The iteration order is deterministic for a
  /// given walk but NOT guaranteed sorted (the canonical support sort
  /// is deferred until a step actually consumes the order); callers
  /// must be order-insensitive, which every per-node accumulation is.
  template <typename Fn>
  void ForEachMass(Fn&& fn) const {
    for (NodeId u : support_) {
      double m = mass_[static_cast<std::size_t>(u)];
      if (m != 0.0) fn(u, m);
    }
  }

  /// Copies the current mass state into `out` (support order, zero-mass
  /// entries included — see PropagatorState). The engine is unchanged.
  void SaveState(PropagatorState* out) const;

  /// Replaces the current mass state with `state`. A restored engine is
  /// indistinguishable from the one SaveState ran on: subsequent Step()
  /// calls produce bit-identical mass vectors.
  void RestoreState(const PropagatorState& state);

  /// Nodes currently carrying mass (upper bound: entries may be 0.0).
  std::size_t support_size() const { return support_.size(); }

  /// Total edges relaxed (multiply-adds into next) since construction;
  /// a dense sweep charges its PLAN's edges (all m when unrestricted).
  /// This is the engine's work measure, surfaced as
  /// TwoWayJoinStats::walk_steps.
  int64_t edges_relaxed() const { return edges_relaxed_; }

  /// True when the most recent Step() ran the dense sweep.
  bool last_step_dense() const { return last_step_dense_; }

  /// The dense-sweep plan of the current walk (for tests/benches).
  const SweepPlan& plan() const { return plan_; }

 private:
  bool ChooseDense() const;
  void RebuildPlan(std::span<const NodeId> seeds);
  /// Canonically sorts the support if a prior step left it unsorted.
  /// Only steps that CONSUME the support order (any forward push, the
  /// sparse backward push) pay this; the dense backward gather never
  /// does, so a saturated dense walk skips the per-step sort entirely —
  /// the deferral is what keeps reordered layouts from paying an
  /// O(s log s) indirect sort per dense step.
  void EnsureCanonicalSupport() {
    if (!support_canonical_) {
      g_.SortCanonical(support_);
      support_canonical_ = true;
    }
  }
  /// The forward push; shared by sparse and dense forward steps, which
  /// differ only in billing (the push already visits exactly the
  /// nonzero rows in canonical order — the dense sweep's order).
  void StepForward(bool bill_dense);
  void StepSparseBackward();
  void StepDenseBackward();

  const Graph& g_;
  Direction dir_;
  PropagationMode mode_;
  bool restrict_dense_;
  bool soa_gather_;
  // Invariant: mass_ and next_ are exactly 0.0 outside their support
  // lists, at all times. Steps clean up after themselves (sparse clear),
  // so Reset never pays O(n). support_ is brought into canonical order
  // before any step that consumes its order (the determinism contract
  // in the file comment; see EnsureCanonicalSupport).
  std::vector<double> mass_, next_;
  std::vector<NodeId> support_, next_support_;
  SweepPlan plan_;
  int64_t edges_relaxed_ = 0;
  bool last_step_dense_ = false;
  bool support_canonical_ = true;  // see EnsureCanonicalSupport
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_PROPAGATE_H_
