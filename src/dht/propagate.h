/// \file dht/propagate.h
/// \brief Frontier-adaptive probability-mass propagation engine.
///
/// Every DHT primitive in the repo — the forward walker (Sec V-B), the
/// backward walker (Eq. 5), and the batched evaluators — bottoms
/// out in the same operation: one step of the random-walk transition,
///   next = M^T cur   (forward: push mass ALONG edges)
///   next = M   cur   (backward: push mass AGAINST edges)
/// where M is the row-stochastic transition matrix with entries p_uv.
///
/// The seed implementation evaluated this densely, O(n + m) per step
/// even when mass occupies a handful of nodes around the seed. This
/// engine tracks the *support* (nodes with nonzero mass) explicitly and
/// chooses per step, direction-optimizing style:
///
///  * SPARSE step: push mass only from support nodes, over their
///    out-rows (forward) or transposed in-rows (backward, which is why
///    Graph carries in-edge transition probabilities). Cost is
///    proportional to the frontier's degree sum — output-sensitive.
///  * DENSE step: the seed's full sweep (sequential gather for backward,
///    full push for forward). Cost O(n + m) regardless of support.
///
/// The adaptive policy compares the frontier degree sum against the
/// dense cost with a constant penalty for the sparse step's random
/// writes, so worst-case cost never regresses beyond a constant factor
/// of the dense engine while small frontiers — the common case for few-
/// step truncated DHT on sparse graphs — cost almost nothing.
///
/// Numerical contract (DESIGN.md §3): the support list is kept SORTED by
/// node id at every step boundary, so a sparse push visits sources in
/// ascending id order — the same order in which the dense sweep's CSR
/// rows accumulate them. Floating-point summation order is therefore
/// identical across modes, and all modes produce bit-identical mass
/// vectors. This determinism is load-bearing: it is what lets a resumed
/// walk (SaveState/RestoreState, or the batched engines' per-target
/// states) produce byte-identical scores to a from-scratch walk, and it
/// lets state pools drop entries under memory pressure and restart
/// without changing any result.

#ifndef DHTJOIN_DHT_PROPAGATE_H_
#define DHTJOIN_DHT_PROPAGATE_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.h"

namespace dhtjoin {

/// How a propagation engine executes each step.
enum class PropagationMode {
  kDense,     ///< always the full O(n + m) sweep (the seed engine)
  kSparse,    ///< always frontier pushes (can regress on dense frontiers)
  kAdaptive,  ///< per-step choice by frontier degree sum (the default)
};

/// Cost multiplier charged to a sparse step when the adaptive policy
/// compares it against a dense sweep: sparse pushes write to random
/// destinations while the dense gather streams sequentially, so a sparse
/// step is only chosen when its edge count is below dense/kSparsePenalty.
inline constexpr int64_t kSparsePenalty = 4;

/// The adaptive policy, shared by Propagator and the batch engines so
/// all of them flip modes at the same threshold.
///
/// SupportSizeForcesDense is the cheap early-out: once the support alone
/// crosses the threshold, the degree sum can only confirm it and the
/// per-node degree scan would cost real time every step of a saturated
/// walk. FrontierPrefersDense is the full comparison once the caller has
/// summed its frontier degrees.
inline bool SupportSizeForcesDense(std::size_t support_size, const Graph& g) {
  return static_cast<int64_t>(support_size) * kSparsePenalty >=
         g.num_edges() + g.num_nodes();
}
inline bool FrontierPrefersDense(std::size_t support_size,
                                 int64_t frontier_edges, const Graph& g) {
  return (frontier_edges + static_cast<int64_t>(support_size)) *
             kSparsePenalty >=
         g.num_edges() + g.num_nodes();
}

/// Sparse snapshot of a Propagator's in-flight mass: (node, mass) pairs
/// in support order. Entries with zero mass are preserved so a restored
/// engine has the exact support list (and thus the exact sparse/dense
/// policy decisions and edge billing) of the saved one.
struct PropagatorState {
  std::vector<std::pair<NodeId, double>> mass;

  std::size_t ApproxBytes() const {
    return sizeof(*this) + mass.capacity() * sizeof(mass[0]);
  }
};

/// One unit of probability mass propagated through the graph, stepwise,
/// in either edge direction. Absorption (first-hit semantics) is the
/// caller's business: read Mass() at the absorbing node after a Step()
/// and ClearMass() it before the next.
class Propagator {
 public:
  enum class Direction {
    kForward,   ///< next[w] = sum_u p_uw * cur[u]
    kBackward,  ///< next[u] = sum_v p_uv * cur[v]
  };

  Propagator(const Graph& g, Direction dir,
             PropagationMode mode = PropagationMode::kAdaptive);

  /// Drops all mass and places 1.0 at `seed`. O(|support|), not O(n).
  void Reset(NodeId seed);

  /// Drops all mass and places 1.0 at every seed (the YBoundTable sweep
  /// starts from all of P at once). Seeds are deduplicated; a duplicate
  /// seed still carries mass 1.0, not 2.0.
  void Reset(std::span<const NodeId> seeds);

  /// Advances one transition step.
  void Step();

  /// Current mass at `u`; exact 0.0 for nodes outside the support.
  double Mass(NodeId u) const { return mass_[static_cast<std::size_t>(u)]; }

  /// Zeroes the mass at `u` (absorption). The node may linger in the
  /// support list with zero mass; iteration skips it.
  void ClearMass(NodeId u) { mass_[static_cast<std::size_t>(u)] = 0.0; }

  /// Invokes fn(node, mass) for every node with nonzero mass, in
  /// ascending node order.
  template <typename Fn>
  void ForEachMass(Fn&& fn) const {
    for (NodeId u : support_) {
      double m = mass_[static_cast<std::size_t>(u)];
      if (m != 0.0) fn(u, m);
    }
  }

  /// Copies the current mass state into `out` (support order, zero-mass
  /// entries included — see PropagatorState). The engine is unchanged.
  void SaveState(PropagatorState* out) const;

  /// Replaces the current mass state with `state`. A restored engine is
  /// indistinguishable from the one SaveState ran on: subsequent Step()
  /// calls produce bit-identical mass vectors.
  void RestoreState(const PropagatorState& state);

  /// Nodes currently carrying mass (upper bound: entries may be 0.0).
  std::size_t support_size() const { return support_.size(); }

  /// Total edges relaxed (multiply-adds into next) since construction;
  /// dense sweeps charge all m edges. This is the engine's work measure,
  /// surfaced as TwoWayJoinStats::walk_steps.
  int64_t edges_relaxed() const { return edges_relaxed_; }

  /// True when the most recent Step() ran the dense sweep.
  bool last_step_dense() const { return last_step_dense_; }

 private:
  bool ChooseDense() const;
  void StepSparse();
  void StepDenseForward();
  void StepDenseBackward();

  const Graph& g_;
  Direction dir_;
  PropagationMode mode_;
  // Invariant: mass_ and next_ are exactly 0.0 outside their support
  // lists, at all times. Steps clean up after themselves (sparse clear),
  // so Reset never pays O(n). support_ is sorted ascending at every
  // step boundary (the determinism contract in the file comment).
  std::vector<double> mass_, next_;
  std::vector<NodeId> support_, next_support_;
  int64_t edges_relaxed_ = 0;
  bool last_step_dense_ = false;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_PROPAGATE_H_
