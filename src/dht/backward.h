/// \file dht/backward.h
/// \brief Backward first-hit propagation — the paper's backWalk (Eq. 5).
///
/// One backward walk from a target q yields h_d(u, q) for EVERY source u
/// simultaneously in O(d * |E|) worst case:
///   P_i(u, q) = sum_{(u,v) in E, v != q} p_uv * backProb[v]   (i > 1)
///   P_1(u, q) = p_uq
/// This |P|-fold advantage over forward processing is the core of the
/// paper's B-BJ / B-IDJ family (Sec VI). The frontier-adaptive engine
/// (dht/propagate.h) further makes the per-step cost proportional to the
/// reverse-reachable frontier instead of the whole graph; scores are
/// kept as deltas over the beta floor so Reset() costs O(touched), not
/// O(n). For advancing MANY targets at once, prefer BackwardWalkerBatch
/// (dht/backward_batch.h).
///
/// Walks are resumable two ways: Advance() continues from the current
/// level in place, and Save()/Restore() snapshot the full walk state so
/// one walker instance can interleave many targets' deepening schedules
/// (see WalkerStatePool in dht/walker_state.h). A restored walk is
/// bit-identical to the walk it was saved from — and, by the engine's
/// sorted-support determinism (DESIGN.md §3), to a from-scratch walk of
/// the same depth.

#ifndef DHTJOIN_DHT_BACKWARD_H_
#define DHTJOIN_DHT_BACKWARD_H_

#include <memory>
#include <utility>
#include <vector>

#include "dht/params.h"
#include "dht/propagate.h"
#include "graph/graph.h"

namespace dhtjoin {

/// Snapshot of one in-flight backward walk (target, depth, propagation
/// mass, score deltas). O(touched) memory, not O(n).
struct BackwardWalkerState {
  ExtNodeId target;  ///< external id; invalid when the state is empty
  int level = 0;
  double lambda_pow = 1.0;
  PropagatorState engine;
  std::vector<std::pair<NodeId, double>> score_delta;  // touched order

  std::size_t ApproxBytes() const {
    return sizeof(*this) + engine.ApproxBytes() +
           score_delta.capacity() * sizeof(score_delta[0]);
  }
};

/// Cross-query source of saved backward walks, implemented by the
/// serving cache (src/serve/). The provider's key context (graph,
/// params) is fixed at construction; a fetched state is a walk of
/// `target` at some depth `state->level` in [1, d] and may be resumed
/// from exactly that level with bit-identical results (DESIGN.md §3).
/// Fetch returning nullptr, and Store discarding its argument, are both
/// always legal — the provider is a cache, not a store of record.
/// Implementations must be thread-safe: concurrent query sessions share
/// one provider.
class BackwardSnapshotProvider {
 public:
  virtual ~BackwardSnapshotProvider() = default;

  /// Deepest saved walk of `target`, or nullptr.
  virtual std::shared_ptr<const BackwardWalkerState> Fetch(
      ExtNodeId target) = 0;

  /// Offers the walk of `target` for future queries.
  virtual void Store(ExtNodeId target, BackwardWalkerState state) = 0;

  /// Cheap pre-check: would a Store of `target` at `level` possibly be
  /// kept? False lets callers skip the snapshot copy entirely (the
  /// common warm case: the cache already holds an equal-or-deeper
  /// walk). Advisory only — Store remains the authoritative,
  /// race-safe arbiter.
  virtual bool WantsLevel(ExtNodeId target, int level) {
    (void)target;
    (void)level;
    return true;
  }
};

/// Resumable backward walker for a single target q.
///
/// Reset() fixes the target, Advance() deepens the walk, Score(u) reads
/// h_l(u, q) at the current depth l for any u. Workspace vectors are
/// reused across Reset() calls.
///
/// All node ids crossing this interface (targets, Score() arguments,
/// BackwardWalkerState::target) are EXTERNAL ids; the walker translates
/// to the graph's physical layout internally, so callers are oblivious
/// to reordering (graph/reorder.h).
class BackwardWalker {
 public:
  /// `soa_gather` selects the dense gather's edge stream (split SoA
  /// arrays vs AoS OutEdge; bit-identical — see Propagator).
  explicit BackwardWalker(const Graph& g,
                          PropagationMode mode = PropagationMode::kAdaptive,
                          bool restrict_dense = true,
                          bool soa_gather = true);

  /// Starts a new backward walk absorbed at `q`.
  void Reset(const DhtParams& params, ExtNodeId q);

  /// Advances the walk by `steps` more steps.
  void Advance(int steps);

  /// Snapshots the current walk into `out`; the walker is unchanged.
  void Save(BackwardWalkerState* out) const;

  /// Replaces the current walk with `state` (saved with the same params;
  /// the caller is responsible for passing matching params). Subsequent
  /// Advance() calls produce bit-identical scores to the original walk.
  void Restore(const DhtParams& params, const BackwardWalkerState& state);

  /// Current depth l.
  int level() const { return level_; }

  ExtNodeId target() const { return target_; }

  /// h_l(u, q) at the current depth; equals params.beta when u cannot
  /// reach q within l steps. Score(q) itself is meaningless (self pair)
  /// and must not be consumed by joins.
  double Score(ExtNodeId u) const {
    return params_.beta +
           score_delta_[static_cast<std::size_t>(g_.ToInternal(u).value())];
  }

  /// Edges relaxed by this walker since construction (across Resets).
  int64_t edges_relaxed() const { return engine_.edges_relaxed(); }

 private:
  const Graph& g_;
  Propagator engine_;
  DhtParams params_;
  ExtNodeId target_;
  IntNodeId target_internal_;  // layout id, for absorption
  int level_ = 0;
  double lambda_pow_ = 1.0;  // lambda^level
  // score_delta_[u] = h_l(u, q) - beta for INTERNAL u; exactly 0.0
  // outside touched_, so Reset clears in O(|touched_|).
  std::vector<double> score_delta_;
  std::vector<NodeId> touched_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_BACKWARD_H_
