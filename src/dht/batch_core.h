/// \file dht/batch_core.h
/// \brief Shared machinery of the batched walk engines, templated on
/// direction policy and lane width.
///
/// BackwardWalkerBatch and ForwardWalkerBatch used to carry near-
/// verbatim copies of the same four pieces: the per-block lane
/// workspace with its zero-invariant pooling, the frontier-adaptive
/// blocked transition step, the by-(plan, level) block grouping that
/// turns a mixed-progress target set into uniform-level lane blocks,
/// and the write-back-under-budget slot commit. This header keeps ONE
/// copy of each, parameterized by:
///
///  * a DIRECTION POLICY (BackwardStepPolicy / ForwardStepPolicy) that
///    supplies the frontier degree, the push rows, and — the one
///    genuinely different piece — the dense kernel: the backward step
///    falls back to a sequential gather over the sweep plan's out-rows
///    (streaming the SoA (to[], prob[]) arrays, Graph::OutTargets),
///    while the forward "dense" step is the same frontier push with
///    dense billing, because a forward push already visits exactly the
///    nonzero rows in canonical order;
///  * a LANE WIDTH W — 8 by default (one cache line of doubles), with
///    W = 4 as the narrow-lane option for memory-tight graphs: half
///    the workspace bytes per block and twice the blocks in flight,
///    bit-identical results (lanes are independent columns; see the
///    parity tests).
///
/// The fused multi-target scheduler built on top (AdvanceMany in each
/// engine) collects every live (plan, lane-block, level-group) of a
/// deepening round into one flat block list and dispatches a SINGLE
/// ParallelFor per round — instead of one fork/join barrier per target
/// per level, which is what a large |Q| with a shrunken live set
/// degenerates into under the per-target entry points (now thin
/// wrappers). Block enumeration order and per-block lane grouping are
/// exactly those of the per-target loop, so results — scores, support
/// orders, tie-breaks — are byte-identical by construction (DESIGN.md
/// §8; gated in bench_scheduler and the parity tests).

// dhtlint: allow-file(raw-id-param): below the remap boundary — every
// id in the batch kernels is internal-space by construction
// (graph/node_id.h layering note); the typed boundary is the batch
// engines' public Run/Advance surfaces.

#ifndef DHTJOIN_DHT_BATCH_CORE_H_
#define DHTJOIN_DHT_BATCH_CORE_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "dht/propagate.h"
#include "dht/walker_state.h"
#include "graph/graph.h"

namespace dhtjoin {
namespace batch_core {

/// Workspace for one in-flight lane block. All arrays obey the
/// propagate.h zero-invariant (exactly 0.0 / false outside the support
/// lists), so a workspace popped from the free pool is clean without
/// any O(n) reset.
template <int W>
struct BlockWorkspace {
  explicit BlockWorkspace(NodeId n)
      : mass(static_cast<std::size_t>(n) * W, 0.0),
        next(static_cast<std::size_t>(n) * W, 0.0),
        in_next(static_cast<std::size_t>(n), 0) {}

  std::vector<double> mass, next;   // n x W row-major lane matrices
  std::vector<uint8_t> in_next;     // first-touch flags for `next`
  std::vector<NodeId> support, next_support;
  SweepPlan plan;                   // dense plan of the current block
  bool support_canonical = true;    // deferred sort; see StepLanes
  int64_t edges_relaxed = 0;        // per-lane, accumulated per run

  std::size_t ApproxBytes() const {
    return sizeof(*this) + (mass.capacity() + next.capacity()) *
                               sizeof(double) +
           in_next.capacity() +
           (support.capacity() + next_support.capacity()) * sizeof(NodeId);
  }

  /// Zeroes the mass rows of the current support and clears it, leaving
  /// the workspace reusable without an O(n) sweep.
  void RestoreZeroInvariant() {
    for (NodeId v : support) {
      double* row = &mass[static_cast<std::size_t>(v) * W];
      std::fill(row, row + W, 0.0);
    }
    support.clear();
    support_canonical = true;
  }
};

/// Pool of idle block workspaces, capped by bytes BETWEEN runs (a
/// workspace over the cap is freed instead of pinning W * 16 bytes/node
/// until the engine dies; trimming only at run boundaries keeps
/// intra-run recycling intact even when one workspace exceeds the cap).
/// Also the collection point for per-block edges_relaxed.
template <int W>
class WorkspacePool {
 public:
  WorkspacePool(NodeId num_nodes, std::size_t max_pooled_bytes)
      : num_nodes_(num_nodes), max_pooled_bytes_(max_pooled_bytes) {}

  std::unique_ptr<BlockWorkspace<W>> Acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) {
      return std::make_unique<BlockWorkspace<W>>(num_nodes_);
    }
    auto state = std::move(free_.back());
    free_.pop_back();
    pooled_bytes_ -= state->ApproxBytes();
    return state;
  }

  void Release(std::unique_ptr<BlockWorkspace<W>> state) {
    std::lock_guard<std::mutex> lock(mu_);
    edges_relaxed_ += state->edges_relaxed;
    state->edges_relaxed = 0;
    pooled_bytes_ += state->ApproxBytes();
    free_.push_back(std::move(state));
  }

  /// Frees pooled workspaces over the byte cap; call at run boundaries.
  void Trim() {
    std::lock_guard<std::mutex> lock(mu_);
    while (!free_.empty() && pooled_bytes_ > max_pooled_bytes_) {
      pooled_bytes_ -= free_.back()->ApproxBytes();
      free_.pop_back();
      ++discarded_;
    }
  }

  int64_t edges_relaxed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return edges_relaxed_;
  }
  std::size_t pooled_workspaces() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }
  std::size_t pooled_workspace_bytes() const {
    std::lock_guard<std::mutex> lock(mu_);
    return pooled_bytes_;
  }
  int64_t workspaces_discarded() const {
    std::lock_guard<std::mutex> lock(mu_);
    return discarded_;
  }

 private:
  const NodeId num_nodes_;
  const std::size_t max_pooled_bytes_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<BlockWorkspace<W>>> free_;
  std::size_t pooled_bytes_ = 0;
  int64_t discarded_ = 0;
  int64_t edges_relaxed_ = 0;
};

/// Byte-budgeted slot-state accounting shared by BackwardBatchStates
/// and ForwardBatchStates: hit/miss/eviction counters, the race-safe
/// write-back-under-budget commit, and the feedback half of the budget
/// autotuner (the graph-size half is AutotuneStateBudgetBytes). The
/// concrete slot containers (dense vector vs sparse hash map) and Slot
/// payloads (a score row vs a single pair score) stay in the derived
/// classes.
class BatchStateBudget {
 public:
  explicit BatchStateBudget(std::size_t max_bytes) : max_bytes_(max_bytes) {}

  std::size_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  std::size_t max_bytes() const { return max_bytes_; }

  /// Observability (TwoWayJoinStats::state_*): walks resumed from a
  /// saved slot / started from scratch, and snapshots the byte budget
  /// forced out at write-back.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Feedback autotuning, mirroring WalkerStatePool::Retune: folds the
  /// hit/miss/eviction deltas observed since the previous Retune back
  /// into the budget — double on thrash (evictions with hits losing to
  /// misses), halve on idle (no evictions, resident under a quarter of
  /// the budget), clamped to [lo, hi] and never below the resident
  /// bytes. Evicted snapshots restart bit-identically, so retuning
  /// NEVER changes a result — only step counts. Call between advances
  /// (not concurrently with a running ParallelFor), and only when the
  /// budget came from the autotuner; explicit budgets are the caller's
  /// contract. Returns the (possibly unchanged) budget.
  std::size_t Retune(std::size_t lo = kAutotuneMinBudgetBytes,
                     std::size_t hi = kAutotuneMaxBudgetBytes) {
    const int64_t hits = this->hits();
    const int64_t misses = this->misses();
    const int64_t evictions = this->evictions();
    const int64_t d_hits = hits - retune_hits_;
    const int64_t d_misses = misses - retune_misses_;
    const int64_t d_evictions = evictions - retune_evictions_;
    retune_hits_ = hits;
    retune_misses_ = misses;
    retune_evictions_ = evictions;
    if (d_evictions > 0 && d_hits < d_misses) {
      max_bytes_ = std::min(std::max(max_bytes_, std::size_t{1}) * 2, hi);
      ++grows_;
    } else if (d_evictions == 0 && bytes() * 4 <= max_bytes_ &&
               max_bytes_ > lo) {
      max_bytes_ = std::max({max_bytes_ / 2, lo, bytes()});
      ++shrinks_;
    }
    return max_bytes_;
  }

  /// Retune() decisions taken so far (observability/tests).
  int64_t budget_grows() const { return grows_; }
  int64_t budget_shrinks() const { return shrinks_; }

  /// Fault-injection hook (util/fault_injection.h): when set and
  /// returning true, the next TryCommit reports a simulated pool
  /// allocation failure — counted as an eviction plus an injected
  /// fault, before any byte accounting. Harmless to correctness by the
  /// same argument as real evictions: the slot keeps its previous
  /// snapshot and the walk restarts bit-identically. Install between
  /// advances, never while a ParallelFor is running.
  void set_commit_fault(std::function<bool()> hook) {
    commit_fault_ = std::move(hook);
  }
  int64_t injected_commit_faults() const {
    return injected_commit_faults_.load(std::memory_order_relaxed);
  }

 protected:
  /// Replaces `slot` with `cand` if the swap fits the budget; otherwise
  /// drops `cand` and counts an eviction, leaving the slot's previous
  /// (lower-level) snapshot in place so the next advance still resumes
  /// from there instead of degrading to a full restart. `cand.bytes`
  /// must already hold cand.ApproxBytes(). Safe under concurrent
  /// commits from ParallelFor workers (the budget test is a reserve-
  /// then-check on the atomic byte counter).
  template <typename Slot>
  bool TryCommit(Slot& slot, Slot&& cand) {
    if (commit_fault_ && commit_fault_()) {
      injected_commit_faults_.fetch_add(1, std::memory_order_relaxed);
      evictions_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const std::size_t prev =
        bytes_.fetch_add(cand.bytes, std::memory_order_relaxed);
    if (prev + cand.bytes - slot.bytes <= max_bytes_) {
      bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
      slot = std::move(cand);
      return true;
    }
    bytes_.fetch_sub(cand.bytes, std::memory_order_relaxed);
    evictions_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }

  std::size_t max_bytes_;
  std::function<bool()> commit_fault_;
  std::atomic<int64_t> injected_commit_faults_{0};
  std::atomic<std::size_t> bytes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> evictions_{0};
  int64_t retune_hits_ = 0;
  int64_t retune_misses_ = 0;
  int64_t retune_evictions_ = 0;
  int64_t grows_ = 0;
  int64_t shrinks_ = 0;
};

// ------------------------------------------------- direction policies

/// Backward direction: mass flows AGAINST edges. The sparse step pushes
/// the union frontier over transposed in-rows; the dense step is a
/// sequential gather over the sweep plan's out-rows.
struct BackwardStepPolicy {
  static constexpr bool kDenseIsGather = true;
  static int64_t FrontierDegree(const Graph& g, NodeId v) {
    return g.InDegree(IntNodeId(v));
  }
  static std::span<const InEdge> PushEdges(const Graph& g, NodeId v) {
    return g.InEdges(IntNodeId(v));
  }
  static NodeId EdgeDest(const InEdge& e) { return e.from; }
};

/// Forward direction: mass flows ALONG edges. Sparse and dense are the
/// same push over out-rows; "dense" only changes the billing (the push
/// already visits exactly the nonzero rows in canonical order — the
/// dense sweep's order).
struct ForwardStepPolicy {
  static constexpr bool kDenseIsGather = false;
  static int64_t FrontierDegree(const Graph& g, NodeId v) {
    return g.OutDegree(IntNodeId(v));
  }
  static std::span<const OutEdge> PushEdges(const Graph& g, NodeId v) {
    return g.OutEdges(IntNodeId(v));
  }
  static NodeId EdgeDest(const OutEdge& e) { return e.to; }
};

/// One blocked transition step shared by every batched path: advances
/// all lanes of `st` one level, choosing sparse push or dense kernel by
/// the shared adaptive policy (against the block's restricted dense
/// cost), and leaves the new support in st.support with st.mass holding
/// the new masses. The sorted-support contract is deferred exactly as
/// in the scalar engine: only a step that CONSUMES the support order (a
/// push) sorts first; the backward dense gather never does.
/// `soa_gather` streams the split (to[], prob[]) arrays in the gather
/// instead of the AoS OutEdge stream — identical per-row summation
/// order, bit-identical results (benchmark A/B switch).
template <class Policy, int W>
void StepLanes(const Graph& g, PropagationMode mode, bool soa_gather,
               BlockWorkspace<W>& st, int width) {
  bool dense = mode == PropagationMode::kDense;
  if (mode == PropagationMode::kAdaptive) {
    if (SupportSizeForcesDense(st.support.size(), st.plan.cost)) {
      dense = true;
    } else {
      // The degree sum counts every support row (reading all W lanes
      // per node just to exclude the rare all-dead ones would cost
      // more than it saves); dead rows are dropped by the next sparse
      // push, so the estimate only transiently overshoots.
      int64_t frontier_edges = 0;
      for (NodeId v : st.support) {
        frontier_edges += Policy::FrontierDegree(g, v);
      }
      dense = FrontierPrefersDense(st.support.size(), frontier_edges,
                                   st.plan.cost);
    }
  }

  const bool push = !Policy::kDenseIsGather || !dense;
  if (push) {
    // Sparse: push the block's union frontier over the policy's rows.
    // The push CONSUMES the support order (destinations accumulate in
    // frontier order), so bring it into canonical order first — the
    // dense gather's summation order in every layout (the deferred
    // half of the sorted-support contract).
    if (!st.support_canonical) {
      g.SortCanonical(st.support);
      st.support_canonical = true;
    }
    int64_t relaxed = 0;
    for (NodeId v : st.support) {
      double* row = &st.mass[static_cast<std::size_t>(v) * W];
      // Rows with no live lane (absorbed walks, decayed mass) carry
      // nothing; skipping them also drops the node from the support so
      // dead regions stop inflating the frontier and edges_relaxed.
      int live_lanes = 0;
      for (int b = 0; b < W; ++b) live_lanes += row[b] != 0.0 ? 1 : 0;
      if (live_lanes == 0) continue;
      // Bill each lane only for its own frontier: lane b's sequential
      // walker would relax deg(v) edges iff it has mass at v.
      relaxed += Policy::FrontierDegree(g, v) * live_lanes;
      for (const auto& e : Policy::PushEdges(g, v)) {
        const NodeId u = Policy::EdgeDest(e);
        double* dst = &st.next[static_cast<std::size_t>(u) * W];
        uint8_t& flag = st.in_next[static_cast<std::size_t>(u)];
        if (!flag) {
          flag = 1;
          st.next_support.push_back(u);
        }
        for (int b = 0; b < W; ++b) dst[b] += e.prob * row[b];
      }
      std::fill(row, row + W, 0.0);
    }
    st.edges_relaxed +=
        (dense && !Policy::kDenseIsGather) ? st.plan.edges * width : relaxed;
  } else {
    // Dense backward: sequential gather over the block plan's out-rows,
    // streaming the SoA (to, prob) arrays. Rows outside the plan (other
    // weak components) cannot see the support, so skipping them is
    // exact — the restricted sweep (DESIGN.md §7).
    st.plan.ForEachRow(g.num_nodes(), [&](NodeId u) {
      double acc[W] = {0.0};
      if (soa_gather) {
        std::span<const NodeId> to = g.OutTargets(IntNodeId(u));
        std::span<const double> prob = g.OutProbs(IntNodeId(u));
        for (std::size_t e = 0; e < to.size(); ++e) {
          const double* src = &st.mass[static_cast<std::size_t>(to[e]) * W];
          for (int b = 0; b < W; ++b) acc[b] += prob[e] * src[b];
        }
      } else {
        for (const OutEdge& e : g.OutEdges(IntNodeId(u))) {
          const double* src = &st.mass[static_cast<std::size_t>(e.to) * W];
          for (int b = 0; b < W; ++b) acc[b] += e.prob * src[b];
        }
      }
      if (std::any_of(acc, acc + W, [](double x) { return x != 0.0; })) {
        double* dst = &st.next[static_cast<std::size_t>(u) * W];
        for (int b = 0; b < W; ++b) dst[b] = acc[b];
        st.next_support.push_back(u);
      }
    });
    for (NodeId v : st.support) {
      double* row = &st.mass[static_cast<std::size_t>(v) * W];
      std::fill(row, row + W, 0.0);
    }
    st.edges_relaxed += st.plan.edges * width;
  }
  for (NodeId u : st.next_support) {
    st.in_next[static_cast<std::size_t>(u)] = 0;
  }
  // Sorted-support contract (propagate.h), deferred: a push leaves the
  // new support in emission order; the backward dense gather emits rows
  // ascending by internal id — already canonical exactly on an
  // insertion-ordered layout with a gap-free plan.
  st.support_canonical = Policy::kDenseIsGather && dense &&
                         !g.is_reordered() && st.plan.full;
  st.mass.swap(st.next);
  st.support.swap(st.next_support);
  st.next_support.clear();
}

/// Loads one uniform-level block's lane masses into the workspace:
/// fresh lanes (from_level == 0) get unit mass at their seed node
/// (the target for backward walks, the source for forward walks);
/// resumed lanes replay the sparse snapshot `saved_mass(b)` returns.
/// Leaves the union support deduplicated and canonically sorted — the
/// summation order the sorted-support contract requires from step one.
template <int W, typename SavedMass>
void LoadLaneMass(const Graph& g, BlockWorkspace<W>& st, int from_level,
                  const NodeId* seeds, int width, SavedMass&& saved_mass) {
  for (int b = 0; b < width; ++b) {
    if (from_level == 0) {
      const NodeId u = seeds[b];
      double& slot = st.mass[static_cast<std::size_t>(u) * W +
                             static_cast<std::size_t>(b)];
      if (slot == 0.0 && st.in_next[static_cast<std::size_t>(u)] == 0) {
        st.in_next[static_cast<std::size_t>(u)] = 1;
        st.support.push_back(u);
      }
      slot = 1.0;
    } else {
      for (const auto& [v, m] : saved_mass(b)) {
        double& slot = st.mass[static_cast<std::size_t>(v) * W +
                               static_cast<std::size_t>(b)];
        if (slot == 0.0 && st.in_next[static_cast<std::size_t>(v)] == 0) {
          st.in_next[static_cast<std::size_t>(v)] = 1;
          st.support.push_back(v);
        }
        slot = m;
      }
    }
  }
  for (NodeId v : st.support) st.in_next[static_cast<std::size_t>(v)] = 0;
  g.SortCanonical(st.support);
  st.support.erase(std::unique(st.support.begin(), st.support.end()),
                   st.support.end());
  st.support_canonical = true;
}

/// Extracts lane b's nonzero masses (support order — canonical at a
/// step boundary) into a snapshot's sparse mass list.
template <int W>
void CollectLaneMass(const BlockWorkspace<W>& st, int b,
                     std::vector<std::pair<NodeId, double>>& out) {
  for (NodeId v : st.support) {
    double m = st.mass[static_cast<std::size_t>(v) * W +
                       static_cast<std::size_t>(b)];
    if (m != 0.0) out.emplace_back(v, m);
  }
}

// ------------------------------------------- fused block enumeration

/// One uniform-level lane block of the fused scheduler: `width` lanes
/// drawn from plan `plan`'s index list, starting at `first` within the
/// flat `order` array.
struct LevelBlock {
  int from_level = 0;
  std::size_t plan = 0;    // index of the owning advance plan
  std::size_t first = 0;   // offset into BlockList::order
  int width = 0;
};

/// Flat block list for one fused round: every (plan, level-group,
/// lane-block) across all plans, dispatched in ONE ParallelFor.
struct BlockList {
  std::vector<std::size_t> order;  // per-plan indices grouped by level
  std::vector<LevelBlock> blocks;

  std::span<const std::size_t> Lanes(const LevelBlock& blk) const {
    return {order.data() + blk.first, static_cast<std::size_t>(blk.width)};
  }
};

/// Appends plan `plan_index`'s still-advancing items to `out`, grouped
/// by saved level (ascending) and chunked into W-wide blocks. The
/// grouping — level-major, original index order within a level, blocks
/// cut at W boundaries — is EXACTLY the per-target entry points'
/// enumeration, which is what makes the fused scheduler byte-identical
/// to the per-target loop (DESIGN.md §8): each block's union support,
/// and therefore every lane's summation order, is the same either way.
/// `level_of(i)` returns the saved level of item i (< to_level items
/// only; callers pre-filter).
template <typename LevelOf>
void AppendLevelBlocks(std::size_t plan_index, std::size_t num_items,
                       int to_level, int lane_width, LevelOf&& level_of,
                       BlockList& out) {
  std::map<int, std::vector<std::size_t>> by_level;
  for (std::size_t i = 0; i < num_items; ++i) {
    const int level = level_of(i);
    if (level < to_level) by_level[level].push_back(i);
  }
  for (auto& [level, idxs] : by_level) {
    for (std::size_t base = 0; base < idxs.size();
         base += static_cast<std::size_t>(lane_width)) {
      const std::size_t count = std::min<std::size_t>(
          static_cast<std::size_t>(lane_width), idxs.size() - base);
      out.blocks.push_back(LevelBlock{level, plan_index, out.order.size(),
                                      static_cast<int>(count)});
      out.order.insert(out.order.end(),
                       idxs.begin() + static_cast<std::ptrdiff_t>(base),
                       idxs.begin() + static_cast<std::ptrdiff_t>(base + count));
    }
  }
}

}  // namespace batch_core
}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_BATCH_CORE_H_
