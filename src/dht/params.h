/// \file dht/params.h
/// \brief The general form of discounted hitting time (paper Def. 5).
///
/// Both published DHT variants are instances of
///   h(u, v) = alpha * sum_{i>=1} lambda^i P_i(u, v) + beta
/// where P_i(u, v) is the probability that a random walk from u FIRST
/// hits v at step i (paper Table II):
///
///   DHTe      (Guan et al., SIGMOD'11):  alpha = e,       beta = 0,
///                                        lambda = 1/e
///   DHTlambda (Sarkar/Moore, KDD'10):    alpha = 1/(1-l), beta = -1/(1-l),
///                                        lambda = l
///
/// In practice the series is truncated at d steps (Eq. 4):
///   h_d(u, v) = alpha * sum_{i=1..d} lambda^i P_i(u, v) + beta ,
/// and Lemma 1 gives the smallest d with |h - h_d| <= epsilon.
///
/// Note that h_d is monotone increasing in d (alpha > 0 for both
/// variants), has floor beta (unreachable pair) and ceiling
/// beta + alpha*lambda/(1-lambda). For DHTlambda all scores are negative.

#ifndef DHTJOIN_DHT_PARAMS_H_
#define DHTJOIN_DHT_PARAMS_H_

#include "util/status.h"

namespace dhtjoin {

/// Coefficients (alpha, beta, lambda) of the general DHT form.
///
/// The same engine also evaluates the paper's future-work measure:
/// with `first_hit = false` the per-step probability P_i is replaced by
/// the VISITING probability S_i (non-absorbing walk), which turns the
/// general form into Personalized PageRank:
///   PPR(u, v) = (1-c) * sum_{i>=1} c^i S_i(u, v)   for u != v
/// (alpha = 1-c, lambda = c, beta = 0). Every join algorithm and both
/// remainder bounds remain valid: S_i <= 1 covers X_l^+, and Theorem 1's
/// sweep already computes S_i(P, q).
struct DhtParams {
  double alpha = 1.25;
  double beta = -1.25;
  double lambda = 0.2;
  /// True: first-hit semantics (DHT). False: visiting semantics (PPR).
  bool first_hit = true;

  /// DHTlambda with decay factor `lambda` in (0, 1) — the paper's default
  /// measure (default lambda = 0.2 gives alpha = 1.25, beta = -1.25).
  static DhtParams Lambda(double lambda = 0.2);

  /// DHTe: alpha = e, beta = 0, lambda = 1/e.
  static DhtParams Exponential();

  /// Personalized PageRank with continuation probability `c` in (0, 1)
  /// (restart probability 1-c). The paper's conclusion names PPR as the
  /// next measure to support; see the class comment.
  static DhtParams PersonalizedPageRank(double c = 0.85);

  /// OK iff alpha > 0 and lambda in (0, 1).
  /// (The general form only requires alpha != 0, but every algorithm in
  /// the paper relies on h_d increasing in d, i.e. alpha > 0; both
  /// published variants satisfy this.)
  Status Validate() const;

  /// Lemma 1: smallest d such that |h(u,v) - h_d(u,v)| <= epsilon,
  ///   d >= log_lambda( epsilon * (1 - lambda) / (alpha * lambda) ).
  /// Paper default epsilon = 1e-6 with DHTlambda(0.2) yields d = 8.
  int StepsForEpsilon(double epsilon) const;

  /// Lemma 2 remainder bound:
  ///   X_l^+ = alpha * lambda^(l+1) / (1 - lambda),
  /// an upper bound on h(u,v) - h_l(u,v) for any pair.
  double XBound(int l) const;

  /// Largest attainable truncated score: beta + alpha*lambda (a walker
  /// that hits at step 1 with probability 1).
  double MaxScore() const { return beta + alpha * lambda; }

  /// Score of an unreachable pair (the floor of h_d).
  double FloorScore() const { return beta; }
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_PARAMS_H_
