#include "dht/bounds.h"

#include <algorithm>
#include <cmath>

namespace dhtjoin {

double XUpperBound(const DhtParams& params, int l) {
  return params.XBound(l);
}

YBoundTable::YBoundTable(const Graph& g, const DhtParams& params, int d,
                         const NodeSet& P, const NodeSet& Q)
    : d_(d) {
  DHTJOIN_CHECK_GE(d, 1);
  const std::size_t n = static_cast<std::size_t>(g.num_nodes());
  std::vector<double> prob(n, 0.0), next(n, 0.0);
  for (NodeId p : P) prob[static_cast<std::size_t>(p)] = 1.0;

  // s[qi][i-1] = S_i(P, q) for i = 1..d.
  std::vector<std::vector<double>> s(
      Q.size(), std::vector<double>(static_cast<std::size_t>(d), 0.0));

  for (int i = 1; i <= d; ++i) {
    std::fill(next.begin(), next.end(), 0.0);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      double mass = prob[static_cast<std::size_t>(u)];
      if (mass == 0.0) continue;
      for (const OutEdge& e : g.OutEdges(u)) {
        next[static_cast<std::size_t>(e.to)] += mass * e.prob;
      }
    }
    for (std::size_t qi = 0; qi < Q.size(); ++qi) {
      s[qi][static_cast<std::size_t>(i) - 1] =
          next[static_cast<std::size_t>(Q[qi])];
    }
    prob.swap(next);
  }

  // Suffix sums: Y_l = alpha * sum_{i=l+1..d} lambda^i min(S_i, 1).
  per_q_suffix_.assign(Q.size(),
                       std::vector<double>(static_cast<std::size_t>(d) + 1,
                                           0.0));
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    double acc = 0.0;
    for (int l = d - 1; l >= 0; --l) {
      double li = std::pow(params.lambda, l + 1);
      acc += params.alpha * li *
             std::min(s[qi][static_cast<std::size_t>(l)], 1.0);
      per_q_suffix_[qi][static_cast<std::size_t>(l)] = acc;
    }
  }
}

}  // namespace dhtjoin
