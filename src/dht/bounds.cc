#include "dht/bounds.h"

#include <algorithm>
#include <cmath>

#include "dht/propagate.h"

namespace dhtjoin {

double XUpperBound(const DhtParams& params, int l) {
  return params.XBound(l);
}

YBoundTable::YBoundTable(const Graph& g, const DhtParams& params, int d,
                         const NodeSet& P, const NodeSet& Q,
                         const ExecContext* exec)
    : d_(d) {
  DHTJOIN_CHECK_GE(d, 1);
  // Non-absorbing sweep from all of P at once on the shared engine: the
  // visiting probability S_i(P, q) is the step-i mass at q. Frontier-
  // adaptive steps keep the cost output-sensitive, and edges_relaxed()
  // reports what the sweep actually paid.
  // The Propagator is layout-addressed: translate the external seed /
  // probe ids once (identity on a never-reordered graph).
  Propagator sweep(g, Propagator::Direction::kForward);
  std::vector<NodeId> seed_storage, probe_storage;
  sweep.Reset(AsIntIds(g.MapToInternal(P.nodes(), seed_storage)));
  std::span<const NodeId> probes = g.MapToInternal(Q.nodes(), probe_storage);

  // s[qi][i-1] = S_i(P, q) for i = 1..d.
  std::vector<std::vector<double>> s(
      Q.size(), std::vector<double>(static_cast<std::size_t>(d), 0.0));

  for (int i = 1; i <= d; ++i) {
    if (exec != nullptr && exec->Check() != StatusCode::kOk) {
      complete_ = false;
      break;
    }
    sweep.Step();
    for (std::size_t qi = 0; qi < Q.size(); ++qi) {
      s[qi][static_cast<std::size_t>(i) - 1] =
          sweep.Mass(IntNodeId(probes[qi]));
    }
  }
  edges_relaxed_ = sweep.edges_relaxed();
  if (!complete_) {
    // Abandoned sweep: leave an all-zero (INVALID) table; callers must
    // consult complete() before Bound().
    per_q_suffix_.assign(Q.size(),
                         std::vector<double>(static_cast<std::size_t>(d) + 1,
                                             0.0));
    return;
  }

  // Suffix sums: Y_l = alpha * sum_{i=l+1..d} lambda^i min(S_i, 1).
  per_q_suffix_.assign(Q.size(),
                       std::vector<double>(static_cast<std::size_t>(d) + 1,
                                           0.0));
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    double acc = 0.0;
    for (int l = d - 1; l >= 0; --l) {
      double li = std::pow(params.lambda, l + 1);
      acc += params.alpha * li *
             std::min(s[qi][static_cast<std::size_t>(l)], 1.0);
      per_q_suffix_[qi][static_cast<std::size_t>(l)] = acc;
    }
  }
}

}  // namespace dhtjoin
