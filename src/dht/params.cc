#include "dht/params.h"

#include <cmath>
#include <string>

namespace dhtjoin {

DhtParams DhtParams::Lambda(double lambda) {
  DhtParams p;
  p.lambda = lambda;
  p.alpha = 1.0 / (1.0 - lambda);
  p.beta = -1.0 / (1.0 - lambda);
  return p;
}

DhtParams DhtParams::Exponential() {
  DhtParams p;
  p.alpha = M_E;
  p.beta = 0.0;
  p.lambda = 1.0 / M_E;
  return p;
}

DhtParams DhtParams::PersonalizedPageRank(double c) {
  DhtParams p;
  p.alpha = 1.0 - c;
  p.beta = 0.0;
  p.lambda = c;
  p.first_hit = false;
  return p;
}

Status DhtParams::Validate() const {
  if (!(alpha > 0.0)) {
    return Status::InvalidArgument("DHT alpha must be positive, got " +
                                   std::to_string(alpha));
  }
  if (!(lambda > 0.0 && lambda < 1.0)) {
    return Status::InvalidArgument("DHT lambda must be in (0,1), got " +
                                   std::to_string(lambda));
  }
  return Status::OK();
}

int DhtParams::StepsForEpsilon(double epsilon) const {
  // d >= log_lambda(eps(1-lambda)/(alpha*lambda)); log base lambda<1 flips
  // to a division of natural logs (both negative for arguments < 1).
  double x = epsilon * (1.0 - lambda) / (alpha * lambda);
  if (x >= 1.0) return 1;
  double d = std::log(x) / std::log(lambda);
  return static_cast<int>(std::ceil(d - 1e-12));
}

double DhtParams::XBound(int l) const {
  return alpha * std::pow(lambda, l + 1) / (1.0 - lambda);
}

}  // namespace dhtjoin
