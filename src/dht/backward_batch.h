/// \file dht/backward_batch.h
/// \brief Batched multi-target backward evaluation (SpMM-style).
///
/// The backward join algorithms (B-BJ, B-IDJ) advance one BackwardWalker
/// per target q in Q — |Q| independent sparse matrix-vector products
/// that each re-stream the whole edge array. This evaluator advances
/// blocks of kLaneWidth targets TOGETHER: the mass state is an n x W
/// row-major matrix (one contiguous W-lane row per node), so one pass
/// over the edges relaxes W walkers at once. Per walker this divides
/// the edge-stream traffic by W and turns the random 8-byte gather of
/// mass[e.to] into a single cache line carrying all W lanes — the
/// classic SpMV -> SpMM win. Blocks are independent and fan out across
/// a ThreadPool for multicore scaling on top.
///
/// The block machinery (lane workspace, pooling, the frontier-adaptive
/// blocked step, level grouping, write-back-under-budget) is the shared
/// core in dht/batch_core.h, templated on direction and lane width;
/// this engine supplies the backward direction policy (sparse push over
/// transposed in-rows, dense sequential gather over the sweep plan's
/// out-rows) and is itself a template on the lane width W:
/// BackwardWalkerBatch is the 8-lane default (one cache line of
/// doubles); BackwardWalkerBatchT<4> is the narrow-lane option — half
/// the workspace bytes with twice the blocks in flight, bit-identical
/// results.
///
/// Steps are frontier-adaptive exactly like dht/propagate.h, and the
/// union support of a block is kept SORTED at every step boundary, so
/// the per-lane summation order is identical to the dense gather's CSR
/// order — scores are bit-identical across modes, lane groupings, lane
/// WIDTHS, thread counts, and restarted vs resumed walks (DESIGN.md
/// §3).
///
/// Scores are only materialized for a caller-provided source set P
/// (joins never read anything else), which keeps the output |Q| x |P|
/// instead of |Q| x n.
///
/// Resumable deepening: the IDJ schedule walks the same targets at
/// levels 1, 2, 4, ..., d. BackwardBatchStates holds per-target sparse
/// snapshots (mass + score row + depth) so the advance entry points
/// continue each target from its saved level instead of restarting —
/// O(d) total steps per surviving target instead of O(2d). States live
/// under a byte budget; a target whose state was evicted (or never
/// saved) is transparently restarted, producing bit-identical scores.
///
/// FUSED SCHEDULING: AdvanceMany() takes a whole round's worth of
/// advance groups — each its own target list, pinned source set, states
/// pool, and output rows — builds every (group, level-group,
/// lane-block) into ONE flat block list, and dispatches a single
/// ParallelFor. The per-group entry points (AdvanceChunked, and Run's
/// from-scratch schedule) are thin wrappers over the same machinery, so
/// every caller shares one code path and the fork/join barrier count
/// per deepening round is 1, not |groups| (DESIGN.md §8; the barrier
/// reduction is gated in bench_scheduler).
///
/// Memory contract: each concurrently-running block owns a workspace of
/// 2 * n * kLaneWidth doubles (128 bytes/node at W = 8). Peak transient
/// memory is num_threads x 2 * W * 8 bytes x n, plus whatever
/// BackwardBatchStates' budget admits. Between runs, workspaces are
/// pooled up to Options::max_pooled_bytes; the pool is trimmed to the
/// cap at every run boundary (workspaces_discarded counts the frees).
///
/// Node ids crossing the public interface (targets, sources) are
/// EXTERNAL ids; the engine translates to the graph's physical layout
/// (graph/reorder.h) at entry, keeps its union support sorted in
/// CANONICAL (external) order, and restricts dense gathers to the
/// walk's weak components (Graph::PlanDenseSweep) — so scores are
/// bit-identical across layouts AND the dense fallback of a saturated-
/// but-local walk costs O(|ball|), not O(n + m). Snapshot mass node ids
/// (BackwardBatchSnapshot::mass) are INTERNAL and only meaningful on
/// the graph/layout they were saved from; the serving cache enforces
/// that via the layout-aware GraphFingerprint.

#ifndef DHTJOIN_DHT_BACKWARD_BATCH_H_
#define DHTJOIN_DHT_BACKWARD_BATCH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "dht/batch_core.h"
#include "dht/params.h"
#include "dht/propagate.h"
#include "graph/graph.h"
#include "obs/trace.h"
#include "util/deadline.h"
#include "util/thread_pool.h"

namespace dhtjoin {

/// Portable snapshot of one saved target walk: depth, discount, sparse
/// mass, and the score row over the pinned source set. The serving
/// layer (src/serve/) moves these between a query's BackwardBatchStates
/// and a cross-query cache via Import/Take; the engine itself only ever
/// sees slots.
struct BackwardBatchSnapshot {
  int level = 0;
  double lambda_pow = 1.0;
  std::vector<std::pair<NodeId, double>> mass;  // nonzero, ascending node
  /// Score DELTAS over the pinned sources: h_level(p, q) - beta per
  /// source p. Kept beta-exclusive so a resumed row continues the exact
  /// floating-point sum the scalar BackwardWalker's score_delta_
  /// accumulates — the engines add beta only at output, which is what
  /// makes batch and scalar scores BIT-identical (DESIGN.md §3).
  std::vector<double> row;

  std::size_t ApproxBytes() const {
    return sizeof(*this) + mass.capacity() * sizeof(mass[0]) +
           row.capacity() * sizeof(double);
  }
};

/// Per-target resumable walk states for the backward batch engines,
/// indexed by a caller-stable slot id (B-IDJ uses the target's index
/// within Q). Retention is best-effort under the byte budget: a state
/// that does not fit is dropped and its walk restarts from scratch on
/// the next advance, with bit-identical results (see file comment).
/// When the budget came from the autotuner, callers fold the observed
/// hit/eviction counters back into it between rounds via the inherited
/// Retune() (batch_core::BatchStateBudget).
class BackwardBatchStates : public batch_core::BatchStateBudget {
 public:
  explicit BackwardBatchStates(std::size_t num_slots,
                               std::size_t max_bytes = kDefaultMaxBytes)
      : BatchStateBudget(max_bytes), slots_(num_slots) {}

  /// Default budget mirrors WalkerStatePool::kDefaultMaxBytes.
  static constexpr std::size_t kDefaultMaxBytes = std::size_t{256} << 20;

  /// Walked depth of `slot`; 0 means no saved state (fresh or evicted).
  int level(std::size_t slot) const { return slots_[slot].level; }

  /// Drops the saved state of `slot` (e.g. a pruned target).
  void Drop(std::size_t slot) {
    Slot& s = slots_[slot];
    bytes_.fetch_sub(s.bytes, std::memory_order_relaxed);
    s = Slot{};
  }

  /// Score DELTA row of `slot` over the pinned source set, at depth
  /// level(slot): h_level - beta per source (BackwardBatchSnapshot::row
  /// semantics — add beta to read scores). Empty when the slot holds no
  /// state. Valid until the slot is next advanced, dropped, or taken.
  std::span<const double> Row(std::size_t slot) const {
    return slots_[slot].row;
  }

  /// Moves the state of `slot` out into `out`, clearing the slot.
  /// Returns false (leaving `out` untouched) when the slot is empty.
  bool Take(std::size_t slot, BackwardBatchSnapshot* out) {
    Slot& s = slots_[slot];
    if (s.level == 0) return false;
    out->level = s.level;
    out->lambda_pow = s.lambda_pow;
    out->mass = std::move(s.mass);
    out->row = std::move(s.row);
    bytes_.fetch_sub(s.bytes, std::memory_order_relaxed);
    s = Slot{};
    return true;
  }

  /// Copies `snap` into `slot` (replacing any saved state). Returns
  /// false — slot left empty — when the copy would not fit the budget;
  /// the walk then simply restarts from scratch, bit-identically.
  bool Import(std::size_t slot, const BackwardBatchSnapshot& snap) {
    Drop(slot);
    if (snap.level == 0) return false;
    Slot cand;
    cand.level = snap.level;
    cand.lambda_pow = snap.lambda_pow;
    cand.mass = snap.mass;
    cand.row = snap.row;
    cand.bytes = cand.ApproxBytes();
    return TryCommit(slots_[slot], std::move(cand));
  }

 private:
  template <int>
  friend class BackwardWalkerBatchT;

  struct Slot {
    int level = 0;
    double lambda_pow = 1.0;
    std::vector<std::pair<NodeId, double>> mass;  // nonzero, ascending node
    std::vector<double> row;  // score row over the pinned source set
    std::size_t bytes = 0;

    std::size_t ApproxBytes() const {
      return sizeof(*this) + mass.capacity() * sizeof(mass[0]) +
             row.capacity() * sizeof(double);
    }
  };

  std::vector<Slot> slots_;
};

/// One group of the fused backward scheduler (AdvanceMany): advance
/// `targets` (whose resumable states live in `states` at `slots`) to
/// `to_level`, writing each target's score row over `sources` into
/// `out` (row-major, |targets| x |sources|). The source set must be
/// identical across every advance sharing a states object (rows are
/// resumed, not recomputed). Slot ids must be distinct across groups
/// that share one states object — groups are advanced concurrently.
struct BackwardAdvanceGroup {
  int to_level = 0;
  std::span<const ExtNodeId> targets;
  std::span<const std::size_t> slots;     // parallel to targets
  std::span<const ExtNodeId> sources;
  BackwardBatchStates* states = nullptr;
  /// Off for a FINAL advance whose states would never be read again —
  /// spares the snapshot copies.
  bool save_states = true;
  double* out = nullptr;
};

/// Advances many backward walkers at once; see file comment.
/// W is the lane width (walkers advanced together per block, also the
/// SIMD-friendly row width of the mass matrix); use the
/// BackwardWalkerBatch alias (W = 8, one cache line of doubles) unless
/// workspace memory is the constraint.
template <int W>
class BackwardWalkerBatchT {
  static_assert(W > 0, "lane width must be positive");

 public:
  static constexpr int kLaneWidth = W;

  struct Options {
    PropagationMode mode = PropagationMode::kAdaptive;
    /// Worker threads; 0 means ThreadPool::DefaultThreadCount().
    int num_threads = 0;
    /// Restrict dense gathers to the walk's weak components (see file
    /// comment). Off = the seed engine's all-rows sweep; results are
    /// bit-identical either way (benchmark baseline switch).
    bool restrict_dense = true;
    /// Stream the split SoA (to[], prob[]) arrays in the dense gather
    /// instead of the 16-byte AoS OutEdge stream (bit-identical either
    /// way; bench_reorder A/Bs this). Default OFF here: at W = 8 the
    /// per-edge work is eight madds, which amortizes the AoS stream,
    /// and the second address stream measurably costs more than the 4
    /// saved bytes/edge. The SCALAR engine (one madd/edge, truly
    /// stream-bound) defaults to SoA, where the cut wins.
    bool soa_gather = false;
    /// Byte cap on idle block workspaces retained between runs; a
    /// workspace released over the cap is freed instead of pooled.
    std::size_t max_pooled_bytes = kDefaultMaxPooledBytes;
  };

  /// Default workspace-pool cap: generous for bench-scale graphs, yet
  /// bounds a many-core engine on a huge graph to ~8 idle workspaces.
  static constexpr std::size_t kDefaultMaxPooledBytes = std::size_t{1} << 30;

  explicit BackwardWalkerBatchT(const Graph& g)
      : BackwardWalkerBatchT(g, Options()) {}
  BackwardWalkerBatchT(const Graph& g, Options options)
      : g_(g),
        options_(options),
        pool_(options.num_threads > 0 ? options.num_threads
                                      : ThreadPool::DefaultThreadCount()),
        workspaces_(g.num_nodes(), options.max_pooled_bytes) {}

  /// Runs a d-step backward walk from every target and returns the
  /// scores of the requested sources, row-major:
  ///   result[t * sources.size() + s] = h_d(sources[s], targets[t]).
  /// Self pairs (sources[s] == targets[t]) are present but meaningless,
  /// mirroring BackwardWalker::Score — callers must skip them.
  ///
  /// The matrix is dense: callers with huge target sets must slice them
  /// to MaxTargetsPerRun() per call or the allocation alone defeats the
  /// engine (50k x 50k doubles is 20 GB).
  std::vector<double> Run(const DhtParams& params, int d,
                          std::span<const ExtNodeId> targets,
                          std::span<const ExtNodeId> sources) {
    DHTJOIN_CHECK(params.Validate().ok());
    DHTJOIN_CHECK_GE(d, 1);
    for (ExtNodeId q : targets) DHTJOIN_CHECK(g_.ContainsNode(q));
    for (ExtNodeId p : sources) DHTJOIN_CHECK(g_.ContainsNode(p));

    // External -> layout ids, once per call; all block work is internal.
    std::vector<NodeId> target_storage, source_storage;
    std::span<const NodeId> itargets =
        g_.MapToInternal(targets, target_storage);
    std::span<const NodeId> isources =
        g_.MapToInternal(sources, source_storage);

    // Blocks accumulate beta-EXCLUSIVE score deltas (the scalar
    // walker's score_delta_ sum, in the same step order); beta joins
    // once at the end, so every cell is bit-identical to
    // BackwardWalker::Score (DESIGN.md §3).
    std::vector<double> out(targets.size() * sources.size(), 0.0);
    const std::size_t num_blocks = (targets.size() + W - 1) / W;
    pool_.ParallelFor(static_cast<int64_t>(num_blocks), [&](int64_t block) {
      const std::size_t first = static_cast<std::size_t>(block) * W;
      const int width =
          static_cast<int>(std::min<std::size_t>(W, targets.size() - first));
      auto state = workspaces_.Acquire();
      RunBlock(*state, params, d, itargets, first, width, isources,
               out.data());
      workspaces_.Release(std::move(state));
    });
    workspaces_.Trim();
    for (double& cell : out) cell += params.beta;
    return out;
  }

  /// Largest target count per Run() that keeps the returned matrix near
  /// 32 MB; never less than one full lane block.
  static std::size_t MaxTargetsPerRun(std::size_t num_sources) {
    constexpr std::size_t kMaxMatrixDoubles = std::size_t{4} << 20;
    std::size_t cap = kMaxMatrixDoubles / (num_sources == 0 ? 1 : num_sources);
    return cap < static_cast<std::size_t>(W) ? static_cast<std::size_t>(W)
                                             : cap;
  }

  /// Run() with the MaxTargetsPerRun slicing applied: walks every
  /// target, invoking consume(target_index, row) with the |sources|-wide
  /// score row of targets[target_index]. Rows are only valid during the
  /// callback. This is the form the broad joins use — memory stays
  /// bounded regardless of |targets| x |sources|. `max_targets_per_run`
  /// forces a smaller slice (0 = MaxTargetsPerRun); tests use it to
  /// exercise the multi-chunk path at toy sizes.
  template <typename Consume>
  void RunChunked(const DhtParams& params, int d,
                  std::span<const ExtNodeId> targets,
                  std::span<const ExtNodeId> sources, Consume&& consume,
                  std::size_t max_targets_per_run = 0) {
    const std::size_t chunk = max_targets_per_run > 0
                                  ? max_targets_per_run
                                  : MaxTargetsPerRun(sources.size());
    for (std::size_t base = 0; base < targets.size(); base += chunk) {
      const std::size_t count = std::min(chunk, targets.size() - base);
      std::vector<double> scores =
          Run(params, d, targets.subspan(base, count), sources);
      for (std::size_t i = 0; i < count; ++i) {
        // data() + offset, not operator[]: the row pointer is valid (if
        // useless) even for an empty source set.
        consume(base + i, scores.data() + i * sources.size());
      }
    }
  }

  /// The resumable form of RunChunked: advances targets[i] (whose state
  /// lives in states slot slots[i]) from its saved level to `to_level`,
  /// then invokes consume(i, row) with its h_{to_level} score row over
  /// `sources`. Targets saved at different levels are grouped and
  /// advanced separately, so evictions and fresh targets mix freely.
  /// `save_states = false` skips the write-back for a FINAL advance.
  /// Returns the number of walks that started from scratch (fresh or
  /// evicted). A thin wrapper over AdvanceMany (one group per chunk).
  template <typename Consume>
  int64_t AdvanceChunked(const DhtParams& params, int to_level,
                         std::span<const ExtNodeId> targets,
                         std::span<const std::size_t> slots,
                         std::span<const ExtNodeId> sources,
                         BackwardBatchStates& states, Consume&& consume,
                         bool save_states = true,
                         std::size_t max_targets_per_run = 0,
                         const ExecContext* exec = nullptr,
                         bool* interrupted = nullptr) {
    DHTJOIN_CHECK_EQ(targets.size(), slots.size());
    const std::size_t chunk = max_targets_per_run > 0
                                  ? max_targets_per_run
                                  : MaxTargetsPerRun(sources.size());
    int64_t fresh = 0;
    for (std::size_t base = 0; base < targets.size(); base += chunk) {
      const std::size_t count = std::min(chunk, targets.size() - base);
      std::vector<double> scores(count * sources.size());
      BackwardAdvanceGroup group;
      group.to_level = to_level;
      group.targets = targets.subspan(base, count);
      group.slots = slots.subspan(base, count);
      group.sources = sources;
      group.states = &states;
      group.save_states = save_states;
      group.out = scores.data();
      fresh += AdvanceMany(params, {&group, 1}, exec, interrupted);
      if (interrupted != nullptr && *interrupted) return fresh;
      for (std::size_t i = 0; i < count; ++i) {
        consume(base + i, scores.data() + i * sources.size());
      }
    }
    return fresh;
  }

  /// The fused multi-group scheduler (see file comment): advances every
  /// group's targets in ONE ParallelFor across all (group, level-group,
  /// lane-block) blocks. Group enumeration order, per-group level
  /// grouping, and lane blocking are exactly those of sequential
  /// per-group AdvanceChunked calls, so the written rows are
  /// byte-identical to the per-group loop. Callers are responsible for
  /// sizing the union of `out` buffers (one round's rows must fit in
  /// memory; slice the groups across calls when they cannot). Returns
  /// the number of walks started from scratch.
  ///
  /// Cooperative stop (util/deadline.h): when `exec` is set, each block
  /// polls exec->CheckBlockGroup() ONCE before running — per block
  /// group, never per edge. On a stop, blocks that have not started are
  /// skipped (their slots keep their previous saved level; their output
  /// rows are garbage) and `*interrupted` is set; the caller must then
  /// DISCARD the round and degrade at its last completed level
  /// (DESIGN.md §9). Blocks already running finish normally — that
  /// bounds stop latency to one block group.
  int64_t AdvanceMany(const DhtParams& params,
                      std::span<const BackwardAdvanceGroup> groups,
                      const ExecContext* exec = nullptr,
                      bool* interrupted = nullptr) {
    DHTJOIN_CHECK(params.Validate().ok());
    // One span per fused round (never per block): blocks run, lanes
    // packed, fresh walks, and an edge-stream byte estimate.
    obs::Trace* const obs_trace = obs::TraceOf(exec);
    obs::ScopedSpan obs_span(obs_trace, "b.advance_many");
    const int64_t obs_edges_before =
        obs_trace != nullptr ? workspaces_.edges_relaxed() : 0;
    struct GroupCtx {
      std::vector<NodeId> target_storage, source_storage;
      std::span<const NodeId> itargets, isources;
    };
    std::vector<GroupCtx> ctx(groups.size());
    batch_core::BlockList blocks;
    int64_t fresh = 0;
    for (std::size_t gi = 0; gi < groups.size(); ++gi) {
      const BackwardAdvanceGroup& grp = groups[gi];
      DHTJOIN_CHECK_GE(grp.to_level, 1);
      DHTJOIN_CHECK(grp.states != nullptr);
      DHTJOIN_CHECK(grp.out != nullptr || grp.targets.empty());
      DHTJOIN_CHECK_EQ(grp.targets.size(), grp.slots.size());
      for (ExtNodeId q : grp.targets) DHTJOIN_CHECK(g_.ContainsNode(q));
      for (ExtNodeId p : grp.sources) DHTJOIN_CHECK(g_.ContainsNode(p));
      ctx[gi].itargets = g_.MapToInternal(grp.targets, ctx[gi].target_storage);
      ctx[gi].isources = g_.MapToInternal(grp.sources, ctx[gi].source_storage);

      // Initialize each target's output row from its saved delta row
      // (or zero when fresh) and enumerate still-advancing targets into
      // uniform-level lane blocks. Rows stay beta-exclusive until the
      // post-barrier pass below.
      BackwardBatchStates& states = *grp.states;
      const std::size_t num_sources = grp.sources.size();
      for (std::size_t i = 0; i < grp.targets.size(); ++i) {
        const BackwardBatchStates::Slot& slot = states.slots_[grp.slots[i]];
        DHTJOIN_CHECK_LE(slot.level, grp.to_level);
        double* row = grp.out + i * num_sources;
        if (slot.level == 0) {
          std::fill(row, row + num_sources, 0.0);
          ++fresh;
          states.misses_.fetch_add(1, std::memory_order_relaxed);
        } else {
          DHTJOIN_CHECK_EQ(slot.row.size(), num_sources);
          std::copy(slot.row.begin(), slot.row.end(), row);
          states.hits_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      batch_core::AppendLevelBlocks(
          gi, grp.targets.size(), grp.to_level, W,
          [&](std::size_t i) { return states.slots_[grp.slots[i]].level; },
          blocks);
    }

    // ONE fork/join for the whole round, every group and level mixed;
    // blocks are independent (disjoint slots, disjoint output rows).
    std::atomic<bool> stopped{false};
    pool_.ParallelFor(
        static_cast<int64_t>(blocks.blocks.size()), [&](int64_t bi) {
          if (exec != nullptr) {
            if (stopped.load(std::memory_order_relaxed) ||
                exec->CheckBlockGroup() != StatusCode::kOk) {
              stopped.store(true, std::memory_order_relaxed);
              return;
            }
          }
          const batch_core::LevelBlock& blk =
              blocks.blocks[static_cast<std::size_t>(bi)];
          const BackwardAdvanceGroup& grp = groups[blk.plan];
          std::span<const std::size_t> lanes = blocks.Lanes(blk);
          const int width = blk.width;
          NodeId lane_targets[W];
          std::size_t lane_slots[W];
          double* rows[W];
          for (int b = 0; b < width; ++b) {
            const std::size_t i = lanes[static_cast<std::size_t>(b)];
            lane_targets[b] = ctx[blk.plan].itargets[i];
            lane_slots[b] = grp.slots[i];
            rows[b] = grp.out + i * grp.sources.size();
          }
          auto state = workspaces_.Acquire();
          AdvanceBlock(*state, params, blk.from_level, grp.to_level,
                       {lane_targets, static_cast<std::size_t>(width)},
                       {lane_slots, static_cast<std::size_t>(width)},
                       ctx[blk.plan].isources, *grp.states, grp.save_states,
                       rows);
          workspaces_.Release(std::move(state));
        });
    workspaces_.Trim();
    if (interrupted != nullptr) {
      *interrupted = stopped.load(std::memory_order_relaxed);
    }
    // Rows (and the snapshots written back above) are beta-exclusive
    // deltas; hand callers real scores. beta + delta is exactly the
    // scalar walker's read, so the output is bit-identical to it.
    for (const BackwardAdvanceGroup& grp : groups) {
      const std::size_t cells = grp.targets.size() * grp.sources.size();
      for (std::size_t c = 0; c < cells; ++c) grp.out[c] += params.beta;
    }
    if (obs_trace != nullptr) {
      int64_t lanes = 0;
      for (const batch_core::LevelBlock& blk : blocks.blocks) {
        lanes += blk.width;
      }
      obs_span.SetAttr("groups", static_cast<int64_t>(groups.size()));
      obs_span.SetAttr("blocks", static_cast<int64_t>(blocks.blocks.size()));
      obs_span.SetAttr("lanes", lanes);
      obs_span.SetAttr("fresh", fresh);
      obs_span.SetAttr("bytes",
                       (workspaces_.edges_relaxed() - obs_edges_before) *
                           static_cast<int64_t>(sizeof(InEdge)));
      if (stopped.load(std::memory_order_relaxed)) {
        obs_span.SetAttr("interrupted", int64_t{1});
      }
    }
    return fresh;
  }

  /// Per-walker edges relaxed, summed over all lanes and runs,
  /// comparable with sequential BackwardWalker::edges_relaxed: a sparse
  /// step bills each lane only for frontier nodes where that lane has
  /// mass; a dense pass bills every lane its sweep plan's edges (all of
  /// |E| when unrestricted — the work the blocked kernel performs per
  /// lane).
  int64_t edges_relaxed() const { return workspaces_.edges_relaxed(); }

  /// Fork/join barriers dispatched by this engine so far (one per Run
  /// chunk or AdvanceMany round). The fused scheduler exists to keep
  /// this independent of |Q|; surfaced as TwoWayJoinStats::pool_barriers.
  int64_t scheduler_barriers() const { return pool_.scheduler_barriers(); }

  /// Workspace-pool observability (Options::max_pooled_bytes).
  std::size_t pooled_workspaces() const {
    return workspaces_.pooled_workspaces();
  }
  std::size_t pooled_workspace_bytes() const {
    return workspaces_.pooled_workspace_bytes();
  }
  int64_t workspaces_discarded() const {
    return workspaces_.workspaces_discarded();
  }

 private:
  using Workspace = batch_core::BlockWorkspace<W>;

  void Step(Workspace& st, int width) const {
    batch_core::StepLanes<batch_core::BackwardStepPolicy, W>(
        g_, options_.mode, options_.soa_gather, st, width);
  }

  /// Walks one block of `width` targets to depth d, writing score rows
  /// for block-local target t into out[(first_target + t) * num_sources].
  void RunBlock(Workspace& st, const DhtParams& params, int d,
                std::span<const NodeId> targets, std::size_t first_target,
                int width, std::span<const NodeId> sources, double* out) {
    const auto num_sources = static_cast<std::size_t>(sources.size());

    // Seed: lane b carries the walker of targets[first_target + b].
    // Duplicate targets simply share a support node with two live lanes.
    NodeId lane_target[W];
    for (int b = 0; b < width; ++b) {
      NodeId q = targets[first_target + static_cast<std::size_t>(b)];
      lane_target[b] = q;
      st.mass[static_cast<std::size_t>(q) * W + static_cast<std::size_t>(b)] =
          1.0;
      st.support.push_back(q);
    }
    // Dedup in case two lanes share a target node (they stay independent
    // columns of the shared row).
    g_.SortCanonical(st.support);
    st.support.erase(std::unique(st.support.begin(), st.support.end()),
                     st.support.end());
    st.support_canonical = true;
    st.plan = options_.restrict_dense
                  ? g_.PlanDenseSweep({lane_target,
                                       static_cast<std::size_t>(width)})
                  : g_.FullSweepPlan();

    double lambda_pow = 1.0;
    for (int step = 0; step < d; ++step) {
      Step(st, width);

      // Score the requested sources: h grows by alpha * lambda^i * P_i.
      lambda_pow *= params.lambda;
      const double coeff = params.alpha * lambda_pow;
      for (std::size_t s = 0; s < num_sources; ++s) {
        const double* row =
            &st.mass[static_cast<std::size_t>(sources[s]) * W];
        for (int b = 0; b < width; ++b) {
          out[(first_target + static_cast<std::size_t>(b)) * num_sources +
              s] += coeff * row[b];
        }
      }

      // First-hit absorption, per lane: mass that reached the lane's own
      // target must not re-emit.
      if (params.first_hit) {
        for (int b = 0; b < width; ++b) {
          st.mass[static_cast<std::size_t>(lane_target[b]) * W +
                  static_cast<std::size_t>(b)] = 0.0;
        }
      }
    }

    st.RestoreZeroInvariant();
  }

  /// Walks one uniform-level block from `from_level` to `to_level`.
  /// Fresh lanes (from_level == 0) seed unit mass at their target;
  /// resumed lanes replay their sparse snapshot. Saves per-lane states
  /// back into `states` under its budget (unless `save_states` is off).
  void AdvanceBlock(Workspace& st, const DhtParams& params, int from_level,
                    int to_level, std::span<const NodeId> lane_targets,
                    std::span<const std::size_t> lane_slots,
                    std::span<const NodeId> sources,
                    BackwardBatchStates& states, bool save_states,
                    double* const* rows) {
    const int width = static_cast<int>(lane_targets.size());
    const auto num_sources = static_cast<std::size_t>(sources.size());

    // Load: every lane's mass lives in its target's weak component, so
    // the plan from the lane targets covers resumed snapshots too.
    NodeId lane_target[W];
    for (int b = 0; b < width; ++b) {
      lane_target[b] = lane_targets[static_cast<std::size_t>(b)];
    }
    batch_core::LoadLaneMass<W>(
        g_, st, from_level, lane_target, width,
        [&](int b) -> const std::vector<std::pair<NodeId, double>>& {
          return states.slots_[lane_slots[static_cast<std::size_t>(b)]].mass;
        });
    st.plan = options_.restrict_dense
                  ? g_.PlanDenseSweep({lane_target,
                                       static_cast<std::size_t>(width)})
                  : g_.FullSweepPlan();

    // Resume the discount where the walk stopped: all lanes share a
    // level (and thus bit-equal saved lambda^level values), so lane 0
    // speaks for the block; fresh blocks start at lambda^0.
    double lambda_pow =
        from_level == 0 ? 1.0 : states.slots_[lane_slots[0]].lambda_pow;

    for (int step = from_level; step < to_level; ++step) {
      Step(st, width);
      lambda_pow *= params.lambda;
      const double coeff = params.alpha * lambda_pow;
      for (std::size_t s = 0; s < num_sources; ++s) {
        const double* row = &st.mass[static_cast<std::size_t>(sources[s]) * W];
        for (int b = 0; b < width; ++b) rows[b][s] += coeff * row[b];
      }
      if (params.first_hit) {
        for (int b = 0; b < width; ++b) {
          st.mass[static_cast<std::size_t>(lane_target[b]) * W +
                  static_cast<std::size_t>(b)] = 0.0;
        }
      }
    }

    // Write back per-lane states under the byte budget. The old
    // snapshot is only released once the new one is known to fit: under
    // budget pressure a lane keeps its previous (lower-level) state, so
    // the next advance resumes from there instead of degrading to a
    // full restart (the level grouping handles mixed saved levels). A
    // final advance (save_states off) skips the snapshots entirely.
    for (int b = 0; save_states && b < width; ++b) {
      BackwardBatchStates::Slot& slot =
          states.slots_[lane_slots[static_cast<std::size_t>(b)]];
      BackwardBatchStates::Slot cand;
      cand.level = to_level;
      cand.lambda_pow = lambda_pow;
      batch_core::CollectLaneMass(st, b, cand.mass);
      cand.row.assign(rows[b], rows[b] + num_sources);
      cand.bytes = cand.ApproxBytes();
      states.TryCommit(slot, std::move(cand));
    }

    st.RestoreZeroInvariant();
  }

  const Graph& g_;
  Options options_;
  ThreadPool pool_;
  batch_core::WorkspacePool<W> workspaces_;
};

/// The default 8-lane engine (one cache line of doubles per node).
using BackwardWalkerBatch = BackwardWalkerBatchT<8>;

extern template class BackwardWalkerBatchT<8>;
extern template class BackwardWalkerBatchT<4>;

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_BACKWARD_BATCH_H_
