/// \file dht/backward_batch.h
/// \brief Batched multi-target backward evaluation (SpMM-style).
///
/// The backward join algorithms (B-BJ, B-IDJ) advance one BackwardWalker
/// per target q in Q — |Q| independent sparse matrix-vector products
/// that each re-stream the whole edge array. This evaluator advances
/// blocks of kLaneWidth targets TOGETHER: the mass state is an n x W
/// row-major matrix (one contiguous W-lane row per node), so one pass
/// over the edges relaxes W walkers at once. Per walker this divides
/// the edge-stream traffic by W and turns the random 8-byte gather of
/// mass[e.to] into a single cache line carrying all W lanes — the
/// classic SpMV -> SpMM win. Blocks are independent and fan out across
/// a ThreadPool for multicore scaling on top.
///
/// Steps are frontier-adaptive exactly like dht/propagate.h: while the
/// union support of a block is small, mass is pushed over the transposed
/// in-rows of the frontier only; once it crosses the degree-weighted
/// threshold the block switches to the dense sequential gather. The
/// union support is kept SORTED at every step boundary, which makes the
/// per-lane summation order identical to the dense gather's CSR order —
/// so scores are bit-identical across modes, lane groupings, thread
/// counts, and (crucially) across restarted vs resumed walks
/// (DESIGN.md §3).
///
/// Scores are only materialized for a caller-provided source set P
/// (joins never read anything else), which keeps the output |Q| x |P|
/// instead of |Q| x n.
///
/// Resumable deepening: the IDJ schedule walks the same targets at
/// levels 1, 2, 4, ..., d. BackwardBatchStates holds per-target sparse
/// snapshots (mass + score row + depth) so AdvanceChunked() continues
/// each target from its saved level instead of restarting — O(d) total
/// steps per surviving target instead of O(2d). States live under a
/// byte budget; a target whose state was evicted (or never saved) is
/// transparently restarted, producing bit-identical scores.
///
/// Memory contract: each concurrently-running block owns a workspace of
/// 2 * n * kLaneWidth doubles (128 bytes/node). Peak transient memory
/// is num_threads x 128 bytes x n, plus whatever BackwardBatchStates'
/// budget admits. Between runs, workspaces are pooled up to
/// Options::max_pooled_bytes; the pool is trimmed to the cap at every
/// run boundary (workspaces_discarded counts the frees), so huge
/// graphs on many cores no longer pin num_threads workspaces for the
/// evaluator's lifetime while intra-run block recycling stays intact.
///
/// Node ids crossing the public interface (targets, sources) are
/// EXTERNAL ids; the engine translates to the graph's physical layout
/// (graph/reorder.h) at entry, keeps its union support sorted in
/// CANONICAL (external) order, and restricts dense gathers to the
/// walk's weak components (Graph::PlanDenseSweep) — so scores are
/// bit-identical across layouts AND the dense fallback of a saturated-
/// but-local walk costs O(|ball|), not O(n + m). Snapshot mass node ids
/// (BackwardBatchSnapshot::mass) are INTERNAL and only meaningful on
/// the graph/layout they were saved from; the serving cache enforces
/// that via the layout-aware GraphFingerprint.

#ifndef DHTJOIN_DHT_BACKWARD_BATCH_H_
#define DHTJOIN_DHT_BACKWARD_BATCH_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "dht/params.h"
#include "dht/propagate.h"
#include "graph/graph.h"
#include "util/thread_pool.h"

namespace dhtjoin {

/// Portable snapshot of one saved target walk: depth, discount, sparse
/// mass, and the score row over the pinned source set. The serving
/// layer (src/serve/) moves these between a query's BackwardBatchStates
/// and a cross-query cache via Import/Take; the engine itself only ever
/// sees slots.
struct BackwardBatchSnapshot {
  int level = 0;
  double lambda_pow = 1.0;
  std::vector<std::pair<NodeId, double>> mass;  // nonzero, ascending node
  std::vector<double> row;                      // over the pinned sources

  std::size_t ApproxBytes() const {
    return sizeof(*this) + mass.capacity() * sizeof(mass[0]) +
           row.capacity() * sizeof(double);
  }
};

/// Per-target resumable walk states for BackwardWalkerBatch, indexed by
/// a caller-stable slot id (B-IDJ uses the target's index within Q).
/// Retention is best-effort under `max_bytes`: a state that does not fit
/// is dropped and its walk restarts from scratch on the next advance,
/// with bit-identical results (see file comment).
class BackwardBatchStates {
 public:
  explicit BackwardBatchStates(std::size_t num_slots,
                               std::size_t max_bytes = kDefaultMaxBytes) :
      slots_(num_slots), max_bytes_(max_bytes) {}

  /// Default budget mirrors WalkerStatePool::kDefaultMaxBytes.
  static constexpr std::size_t kDefaultMaxBytes = std::size_t{256} << 20;

  /// Walked depth of `slot`; 0 means no saved state (fresh or evicted).
  int level(std::size_t slot) const { return slots_[slot].level; }

  /// Drops the saved state of `slot` (e.g. a pruned target).
  void Drop(std::size_t slot) {
    Slot& s = slots_[slot];
    bytes_.fetch_sub(s.bytes, std::memory_order_relaxed);
    s = Slot{};
  }

  /// Score row of `slot` over the pinned source set, at depth
  /// level(slot). Empty when the slot holds no state. Valid until the
  /// slot is next advanced, dropped, or taken.
  std::span<const double> Row(std::size_t slot) const {
    return slots_[slot].row;
  }

  /// Moves the state of `slot` out into `out`, clearing the slot.
  /// Returns false (leaving `out` untouched) when the slot is empty.
  bool Take(std::size_t slot, BackwardBatchSnapshot* out) {
    Slot& s = slots_[slot];
    if (s.level == 0) return false;
    out->level = s.level;
    out->lambda_pow = s.lambda_pow;
    out->mass = std::move(s.mass);
    out->row = std::move(s.row);
    bytes_.fetch_sub(s.bytes, std::memory_order_relaxed);
    s = Slot{};
    return true;
  }

  /// Copies `snap` into `slot` (replacing any saved state). Returns
  /// false — slot left empty — when the copy would not fit the budget;
  /// the walk then simply restarts from scratch, bit-identically.
  bool Import(std::size_t slot, const BackwardBatchSnapshot& snap) {
    Drop(slot);
    if (snap.level == 0) return false;
    Slot cand;
    cand.level = snap.level;
    cand.lambda_pow = snap.lambda_pow;
    cand.mass = snap.mass;
    cand.row = snap.row;
    cand.bytes = cand.ApproxBytes();
    const std::size_t prev =
        bytes_.fetch_add(cand.bytes, std::memory_order_relaxed);
    if (prev + cand.bytes > max_bytes_) {
      bytes_.fetch_sub(cand.bytes, std::memory_order_relaxed);
      return false;
    }
    slots_[slot] = std::move(cand);
    return true;
  }

  std::size_t bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  /// Observability (TwoWayJoinStats::state_*): walks resumed from a
  /// saved slot vs snapshots the byte budget forced out at write-back.
  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  friend class BackwardWalkerBatch;

  struct Slot {
    int level = 0;
    double lambda_pow = 1.0;
    std::vector<std::pair<NodeId, double>> mass;  // nonzero, ascending node
    std::vector<double> row;  // score row over the pinned source set
    std::size_t bytes = 0;

    std::size_t ApproxBytes() const {
      return sizeof(*this) + mass.capacity() * sizeof(mass[0]) +
             row.capacity() * sizeof(double);
    }
  };

  std::vector<Slot> slots_;
  std::size_t max_bytes_;
  std::atomic<std::size_t> bytes_{0};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> evictions_{0};
};

/// Advances many backward walkers at once; see file comment.
class BackwardWalkerBatch {
 public:
  /// Walkers advanced together per block; also the SIMD-friendly row
  /// width of the mass matrix (8 doubles = one cache line).
  static constexpr int kLaneWidth = 8;

  struct Options {
    PropagationMode mode = PropagationMode::kAdaptive;
    /// Worker threads; 0 means ThreadPool::DefaultThreadCount().
    int num_threads = 0;
    /// Restrict dense gathers to the walk's weak components (see file
    /// comment). Off = the seed engine's all-rows sweep; results are
    /// bit-identical either way (benchmark baseline switch).
    bool restrict_dense = true;
    /// Byte cap on idle block workspaces retained between runs; a
    /// workspace released over the cap is freed instead of pooled.
    std::size_t max_pooled_bytes = kDefaultMaxPooledBytes;
  };

  /// Default workspace-pool cap: generous for bench-scale graphs, yet
  /// bounds a many-core engine on a huge graph to ~8 idle workspaces.
  static constexpr std::size_t kDefaultMaxPooledBytes = std::size_t{1} << 30;

  explicit BackwardWalkerBatch(const Graph& g);
  BackwardWalkerBatch(const Graph& g, Options options);
  ~BackwardWalkerBatch();

  /// Runs a d-step backward walk from every target and returns the
  /// scores of the requested sources, row-major:
  ///   result[t * sources.size() + s] = h_d(sources[s], targets[t]).
  /// Self pairs (sources[s] == targets[t]) are present but meaningless,
  /// mirroring BackwardWalker::Score — callers must skip them.
  ///
  /// The matrix is dense: callers with huge target sets must slice them
  /// to MaxTargetsPerRun() per call or the allocation alone defeats the
  /// engine (50k x 50k doubles is 20 GB).
  std::vector<double> Run(const DhtParams& params, int d,
                          std::span<const NodeId> targets,
                          std::span<const NodeId> sources);

  /// Largest target count per Run() that keeps the returned matrix near
  /// 32 MB; never less than one full lane block.
  static std::size_t MaxTargetsPerRun(std::size_t num_sources) {
    constexpr std::size_t kMaxMatrixDoubles = std::size_t{4} << 20;
    std::size_t cap = kMaxMatrixDoubles / (num_sources == 0 ? 1 : num_sources);
    return cap < kLaneWidth ? kLaneWidth : cap;
  }

  /// Run() with the MaxTargetsPerRun slicing applied: walks every
  /// target, invoking consume(target_index, row) with the |sources|-wide
  /// score row of targets[target_index]. Rows are only valid during the
  /// callback. This is the form the joins use — memory stays bounded
  /// regardless of |targets| x |sources|. `max_targets_per_run` forces a
  /// smaller slice (0 = MaxTargetsPerRun); tests use it to exercise the
  /// multi-chunk path at toy sizes.
  template <typename Consume>
  void RunChunked(const DhtParams& params, int d,
                  std::span<const NodeId> targets,
                  std::span<const NodeId> sources, Consume&& consume,
                  std::size_t max_targets_per_run = 0) {
    const std::size_t chunk = max_targets_per_run > 0
                                  ? max_targets_per_run
                                  : MaxTargetsPerRun(sources.size());
    for (std::size_t base = 0; base < targets.size(); base += chunk) {
      const std::size_t count = std::min(chunk, targets.size() - base);
      std::vector<double> scores =
          Run(params, d, targets.subspan(base, count), sources);
      for (std::size_t i = 0; i < count; ++i) {
        // data() + offset, not operator[]: the row pointer is valid (if
        // useless) even for an empty source set.
        consume(base + i, scores.data() + i * sources.size());
      }
    }
  }

  /// The resumable form of RunChunked: advances targets[i] (whose state
  /// lives in states slot slots[i]) from its saved level to `to_level`,
  /// then invokes consume(i, row) with its h_{to_level} score row over
  /// `sources`. The source set must be identical across calls sharing a
  /// states object (rows are resumed, not recomputed). Targets saved at
  /// different levels are grouped and advanced separately, so evictions
  /// and fresh targets mix freely. `save_states = false` skips the
  /// write-back — for a FINAL advance (e.g. the exact-d pass) whose
  /// states would never be read, sparing the snapshot copies. Returns
  /// the number of walks that started from scratch (fresh or evicted).
  template <typename Consume>
  int64_t AdvanceChunked(const DhtParams& params, int to_level,
                         std::span<const NodeId> targets,
                         std::span<const std::size_t> slots,
                         std::span<const NodeId> sources,
                         BackwardBatchStates& states, Consume&& consume,
                         bool save_states = true,
                         std::size_t max_targets_per_run = 0) {
    DHTJOIN_CHECK_EQ(targets.size(), slots.size());
    const std::size_t chunk = max_targets_per_run > 0
                                  ? max_targets_per_run
                                  : MaxTargetsPerRun(sources.size());
    int64_t fresh = 0;
    for (std::size_t base = 0; base < targets.size(); base += chunk) {
      const std::size_t count = std::min(chunk, targets.size() - base);
      std::vector<double> scores(count * sources.size());
      fresh += AdvanceRun(params, to_level, targets.subspan(base, count),
                          slots.subspan(base, count), sources, states,
                          save_states, scores.data());
      for (std::size_t i = 0; i < count; ++i) {
        consume(base + i, scores.data() + i * sources.size());
      }
    }
    return fresh;
  }

  /// Per-walker edges relaxed, summed over all lanes and Run() calls,
  /// comparable with sequential BackwardWalker::edges_relaxed: a sparse
  /// step bills each lane only for frontier nodes where that lane has
  /// mass; a dense pass bills every lane its sweep plan's edges (all of
  /// |E| when unrestricted — the work the blocked kernel performs per
  /// lane).
  int64_t edges_relaxed() const { return edges_relaxed_; }

  /// Workspace-pool observability (Options::max_pooled_bytes).
  std::size_t pooled_workspaces() const;
  std::size_t pooled_workspace_bytes() const;
  int64_t workspaces_discarded() const;

 private:
  struct BlockState;

  std::unique_ptr<BlockState> AcquireState();
  void ReleaseState(std::unique_ptr<BlockState> state);
  /// Frees pooled workspaces over Options::max_pooled_bytes; called at
  /// run boundaries so intra-run recycling is never disabled.
  void TrimPool();

  /// One blocked transition step shared by the from-scratch and
  /// resumable paths; leaves the (sorted) new support in st.support.
  void StepLanes(BlockState& st, int width) const;

  /// Walks one block of `width` targets to depth d, writing score rows
  /// for block-local target t into out[(first_target + t) * num_sources].
  void RunBlock(BlockState& state, const DhtParams& params, int d,
                std::span<const NodeId> targets, std::size_t first_target,
                int width, std::span<const NodeId> sources, double* out);

  /// Resumable chunk body behind AdvanceChunked; writes the score row of
  /// targets[i] into out[i * sources.size()]. Returns fresh-start count.
  int64_t AdvanceRun(const DhtParams& params, int to_level,
                     std::span<const NodeId> targets,
                     std::span<const std::size_t> slots,
                     std::span<const NodeId> sources,
                     BackwardBatchStates& states, bool save_states,
                     double* out);

  /// Walks one uniform-level block from `from_level` to `to_level`.
  /// Lane seeds/rows must already be loaded into `st` / `out`; saves
  /// per-lane states back into `states` under its budget (unless
  /// `save_states` is off).
  void AdvanceBlock(BlockState& st, const DhtParams& params, int from_level,
                    int to_level, std::span<const NodeId> lane_targets,
                    std::span<const std::size_t> lane_slots,
                    std::span<const NodeId> sources,
                    BackwardBatchStates& states, bool save_states,
                    double* const* rows);

  const Graph& g_;
  Options options_;
  ThreadPool pool_;
  mutable std::mutex state_mu_;
  std::vector<std::unique_ptr<BlockState>> free_states_;
  std::size_t pooled_bytes_ = 0;
  int64_t workspaces_discarded_ = 0;
  int64_t edges_relaxed_ = 0;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_BACKWARD_BATCH_H_
