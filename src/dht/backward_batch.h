/// \file dht/backward_batch.h
/// \brief Batched multi-target backward evaluation (SpMM-style).
///
/// The backward join algorithms (B-BJ, B-IDJ) advance one BackwardWalker
/// per target q in Q — |Q| independent sparse matrix-vector products
/// that each re-stream the whole edge array. This evaluator advances
/// blocks of kLaneWidth targets TOGETHER: the mass state is an n x W
/// row-major matrix (one contiguous W-lane row per node), so one pass
/// over the edges relaxes W walkers at once. Per walker this divides
/// the edge-stream traffic by W and turns the random 8-byte gather of
/// mass[e.to] into a single cache line carrying all W lanes — the
/// classic SpMV -> SpMM win. Blocks are independent and fan out across
/// a ThreadPool for multicore scaling on top.
///
/// Steps are frontier-adaptive exactly like dht/propagate.h: while the
/// union support of a block is small, mass is pushed over the transposed
/// in-rows of the frontier only; once it crosses the degree-weighted
/// threshold the block switches to the dense sequential gather.
///
/// Scores are only materialized for a caller-provided source set P
/// (joins never read anything else), which keeps the output |Q| x |P|
/// instead of |Q| x n.
///
/// Memory contract: each concurrently-running block owns a workspace of
/// 2 * n * kLaneWidth doubles (128 bytes/node), and workspaces are
/// pooled for the evaluator's lifetime — peak resident memory is
/// num_threads x 128 bytes x n. Fine up to millions of nodes on a few
/// dozen threads; a shrink policy for billion-edge graphs is a ROADMAP
/// item.

#ifndef DHTJOIN_DHT_BACKWARD_BATCH_H_
#define DHTJOIN_DHT_BACKWARD_BATCH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "dht/params.h"
#include "dht/propagate.h"
#include "graph/graph.h"
#include "util/thread_pool.h"

namespace dhtjoin {

/// Advances many backward walkers at once; see file comment.
class BackwardWalkerBatch {
 public:
  /// Walkers advanced together per block; also the SIMD-friendly row
  /// width of the mass matrix (8 doubles = one cache line).
  static constexpr int kLaneWidth = 8;

  struct Options {
    PropagationMode mode = PropagationMode::kAdaptive;
    /// Worker threads; 0 means ThreadPool::DefaultThreadCount().
    int num_threads = 0;
  };

  explicit BackwardWalkerBatch(const Graph& g);
  BackwardWalkerBatch(const Graph& g, Options options);
  ~BackwardWalkerBatch();

  /// Runs a d-step backward walk from every target and returns the
  /// scores of the requested sources, row-major:
  ///   result[t * sources.size() + s] = h_d(sources[s], targets[t]).
  /// Self pairs (sources[s] == targets[t]) are present but meaningless,
  /// mirroring BackwardWalker::Score — callers must skip them.
  ///
  /// The matrix is dense: callers with huge target sets must slice them
  /// to MaxTargetsPerRun() per call or the allocation alone defeats the
  /// engine (50k x 50k doubles is 20 GB).
  std::vector<double> Run(const DhtParams& params, int d,
                          std::span<const NodeId> targets,
                          std::span<const NodeId> sources);

  /// Largest target count per Run() that keeps the returned matrix near
  /// 32 MB; never less than one full lane block.
  static std::size_t MaxTargetsPerRun(std::size_t num_sources) {
    constexpr std::size_t kMaxMatrixDoubles = std::size_t{4} << 20;
    std::size_t cap = kMaxMatrixDoubles / (num_sources == 0 ? 1 : num_sources);
    return cap < kLaneWidth ? kLaneWidth : cap;
  }

  /// Run() with the MaxTargetsPerRun slicing applied: walks every
  /// target, invoking consume(target_index, row) with the |sources|-wide
  /// score row of targets[target_index]. Rows are only valid during the
  /// callback. This is the form the joins use — memory stays bounded
  /// regardless of |targets| x |sources|. `max_targets_per_run` forces a
  /// smaller slice (0 = MaxTargetsPerRun); tests use it to exercise the
  /// multi-chunk path at toy sizes.
  template <typename Consume>
  void RunChunked(const DhtParams& params, int d,
                  std::span<const NodeId> targets,
                  std::span<const NodeId> sources, Consume&& consume,
                  std::size_t max_targets_per_run = 0) {
    const std::size_t chunk = max_targets_per_run > 0
                                  ? max_targets_per_run
                                  : MaxTargetsPerRun(sources.size());
    for (std::size_t base = 0; base < targets.size(); base += chunk) {
      const std::size_t count = std::min(chunk, targets.size() - base);
      std::vector<double> scores =
          Run(params, d, targets.subspan(base, count), sources);
      for (std::size_t i = 0; i < count; ++i) {
        // data() + offset, not operator[]: the row pointer is valid (if
        // useless) even for an empty source set.
        consume(base + i, scores.data() + i * sources.size());
      }
    }
  }

  /// Per-walker edges relaxed, summed over all lanes and Run() calls,
  /// comparable with sequential BackwardWalker::edges_relaxed: a sparse
  /// step bills each lane only for frontier nodes where that lane has
  /// mass; a dense pass bills every lane |E| (the work the blocked
  /// kernel actually performs per lane).
  int64_t edges_relaxed() const { return edges_relaxed_; }

 private:
  struct BlockState;

  std::unique_ptr<BlockState> AcquireState();
  void ReleaseState(std::unique_ptr<BlockState> state);

  /// Walks one block of `width` targets to depth d, writing score rows
  /// for block-local target t into out[(first_target + t) * num_sources].
  void RunBlock(BlockState& state, const DhtParams& params, int d,
                std::span<const NodeId> targets, std::size_t first_target,
                int width, std::span<const NodeId> sources, double* out);

  const Graph& g_;
  Options options_;
  ThreadPool pool_;
  std::mutex state_mu_;
  std::vector<std::unique_ptr<BlockState>> free_states_;
  int64_t edges_relaxed_ = 0;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_DHT_BACKWARD_BATCH_H_
