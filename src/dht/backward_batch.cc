#include "dht/backward_batch.h"

#include <algorithm>

namespace dhtjoin {

namespace {
constexpr int kW = BackwardWalkerBatch::kLaneWidth;
}  // namespace

/// Workspace for one in-flight block. All arrays obey the propagate.h
/// zero-invariant (exactly 0.0 / false outside the support lists), so a
/// state popped from the free list is clean without any O(n) reset.
struct BackwardWalkerBatch::BlockState {
  explicit BlockState(NodeId n)
      : mass(static_cast<std::size_t>(n) * kW, 0.0),
        next(static_cast<std::size_t>(n) * kW, 0.0),
        in_next(static_cast<std::size_t>(n), 0) {}

  std::vector<double> mass, next;   // n x kW row-major lane matrices
  std::vector<uint8_t> in_next;     // first-touch flags for `next`
  std::vector<NodeId> support, next_support;
  int64_t edges_relaxed = 0;        // per-lane, accumulated per Run
};

BackwardWalkerBatch::BackwardWalkerBatch(const Graph& g)
    : BackwardWalkerBatch(g, Options()) {}

BackwardWalkerBatch::BackwardWalkerBatch(const Graph& g, Options options)
    : g_(g),
      options_(options),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : ThreadPool::DefaultThreadCount()) {}

BackwardWalkerBatch::~BackwardWalkerBatch() = default;

std::unique_ptr<BackwardWalkerBatch::BlockState>
BackwardWalkerBatch::AcquireState() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (free_states_.empty()) {
    return std::make_unique<BlockState>(g_.num_nodes());
  }
  auto state = std::move(free_states_.back());
  free_states_.pop_back();
  return state;
}

void BackwardWalkerBatch::ReleaseState(std::unique_ptr<BlockState> state) {
  std::lock_guard<std::mutex> lock(state_mu_);
  edges_relaxed_ += state->edges_relaxed;
  state->edges_relaxed = 0;
  free_states_.push_back(std::move(state));
}

std::vector<double> BackwardWalkerBatch::Run(const DhtParams& params, int d,
                                             std::span<const NodeId> targets,
                                             std::span<const NodeId> sources) {
  DHTJOIN_CHECK(params.Validate().ok());
  DHTJOIN_CHECK_GE(d, 1);
  for (NodeId q : targets) DHTJOIN_CHECK(g_.ContainsNode(q));
  for (NodeId p : sources) DHTJOIN_CHECK(g_.ContainsNode(p));

  std::vector<double> out(targets.size() * sources.size(), params.beta);
  const std::size_t num_blocks = (targets.size() + kW - 1) / kW;
  pool_.ParallelFor(static_cast<int64_t>(num_blocks), [&](int64_t block) {
    const std::size_t first = static_cast<std::size_t>(block) * kW;
    const int width =
        static_cast<int>(std::min<std::size_t>(kW, targets.size() - first));
    auto state = AcquireState();
    RunBlock(*state, params, d, targets, first, width, sources, out.data());
    ReleaseState(std::move(state));
  });
  return out;
}

void BackwardWalkerBatch::RunBlock(BlockState& st, const DhtParams& params,
                                   int d, std::span<const NodeId> targets,
                                   std::size_t first_target, int width,
                                   std::span<const NodeId> sources,
                                   double* out) {
  const NodeId n = g_.num_nodes();
  const auto num_sources = static_cast<std::size_t>(sources.size());

  // Seed: lane b carries the walker of targets[first_target + b].
  // Duplicate targets simply share a support node with two live lanes.
  NodeId lane_target[kW];
  for (int b = 0; b < width; ++b) {
    NodeId q = targets[first_target + b];
    lane_target[b] = q;
    st.mass[static_cast<std::size_t>(q) * kW + static_cast<std::size_t>(b)] =
        1.0;
    st.support.push_back(q);
  }
  // Dedup in case two lanes share a target node (they stay independent
  // columns of the shared row).
  std::sort(st.support.begin(), st.support.end());
  st.support.erase(std::unique(st.support.begin(), st.support.end()),
                   st.support.end());

  double lambda_pow = 1.0;
  for (int step = 0; step < d; ++step) {
    // Adaptive direction choice, as in Propagator::ChooseDense. The
    // per-edge work is `width` lanes on both paths, so the single-lane
    // threshold carries over unchanged.
    bool dense = options_.mode == PropagationMode::kDense;
    if (options_.mode == PropagationMode::kAdaptive) {
      if (SupportSizeForcesDense(st.support.size(), g_)) {
        dense = true;
      } else {
        // The degree sum counts every support row (reading all kW lanes
        // per node just to exclude the rare all-dead ones would cost
        // more than it saves); dead rows are dropped by the next sparse
        // push, so the estimate only transiently overshoots.
        int64_t frontier_edges = 0;
        for (NodeId v : st.support) frontier_edges += g_.InDegree(v);
        dense = FrontierPrefersDense(st.support.size(), frontier_edges, g_);
      }
    }

    if (!dense) {
      // Sparse: push the block's union frontier over transposed rows.
      int64_t relaxed = 0;
      for (NodeId v : st.support) {
        double* row = &st.mass[static_cast<std::size_t>(v) * kW];
        // Rows with no live lane (absorbed targets, decayed mass) carry
        // nothing; skipping them also drops the node from the support so
        // dead regions stop inflating the frontier and edges_relaxed.
        int live_lanes = 0;
        for (int b = 0; b < kW; ++b) live_lanes += row[b] != 0.0 ? 1 : 0;
        if (live_lanes == 0) continue;
        // Bill each lane only for its own frontier: lane b's sequential
        // walker would relax InDegree(v) edges iff it has mass at v.
        relaxed += g_.InDegree(v) * live_lanes;
        for (const InEdge& e : g_.InEdges(v)) {
          double* dst = &st.next[static_cast<std::size_t>(e.from) * kW];
          uint8_t& flag = st.in_next[static_cast<std::size_t>(e.from)];
          if (!flag) {
            flag = 1;
            st.next_support.push_back(e.from);
          }
          for (int b = 0; b < kW; ++b) dst[b] += e.prob * row[b];
        }
        std::fill(row, row + kW, 0.0);
      }
      st.edges_relaxed += relaxed;
    } else {
      // Dense: sequential gather over every out-row.
      for (NodeId u = 0; u < n; ++u) {
        double acc[kW] = {0.0};
        for (const OutEdge& e : g_.OutEdges(u)) {
          const double* src = &st.mass[static_cast<std::size_t>(e.to) * kW];
          for (int b = 0; b < kW; ++b) acc[b] += e.prob * src[b];
        }
        if (std::any_of(acc, acc + kW, [](double x) { return x != 0.0; })) {
          double* dst = &st.next[static_cast<std::size_t>(u) * kW];
          for (int b = 0; b < kW; ++b) dst[b] = acc[b];
          st.next_support.push_back(u);
        }
      }
      for (NodeId v : st.support) {
        double* row = &st.mass[static_cast<std::size_t>(v) * kW];
        std::fill(row, row + kW, 0.0);
      }
      st.edges_relaxed += g_.num_edges() * width;
    }
    for (NodeId u : st.next_support) {
      st.in_next[static_cast<std::size_t>(u)] = 0;
    }
    st.mass.swap(st.next);
    st.support.swap(st.next_support);
    st.next_support.clear();

    // Score the requested sources: h grows by alpha * lambda^i * P_i.
    lambda_pow *= params.lambda;
    const double coeff = params.alpha * lambda_pow;
    for (std::size_t s = 0; s < num_sources; ++s) {
      const double* row =
          &st.mass[static_cast<std::size_t>(sources[s]) * kW];
      for (int b = 0; b < width; ++b) {
        out[(first_target + static_cast<std::size_t>(b)) * num_sources + s] +=
            coeff * row[b];
      }
    }

    // First-hit absorption, per lane: mass that reached the lane's own
    // target must not re-emit.
    if (params.first_hit) {
      for (int b = 0; b < width; ++b) {
        st.mass[static_cast<std::size_t>(lane_target[b]) * kW +
                static_cast<std::size_t>(b)] = 0.0;
      }
    }
  }

  // Restore the zero-invariant so the state can be reused as-is.
  for (NodeId v : st.support) {
    double* row = &st.mass[static_cast<std::size_t>(v) * kW];
    std::fill(row, row + kW, 0.0);
  }
  st.support.clear();
}

}  // namespace dhtjoin
