#include "dht/backward_batch.h"

#include <map>

namespace dhtjoin {

namespace {
constexpr int kW = BackwardWalkerBatch::kLaneWidth;
}  // namespace

/// Workspace for one in-flight block. All arrays obey the propagate.h
/// zero-invariant (exactly 0.0 / false outside the support lists), so a
/// state popped from the free list is clean without any O(n) reset.
struct BackwardWalkerBatch::BlockState {
  explicit BlockState(NodeId n)
      : mass(static_cast<std::size_t>(n) * kW, 0.0),
        next(static_cast<std::size_t>(n) * kW, 0.0),
        in_next(static_cast<std::size_t>(n), 0) {}

  std::vector<double> mass, next;   // n x kW row-major lane matrices
  std::vector<uint8_t> in_next;     // first-touch flags for `next`
  std::vector<NodeId> support, next_support;
  SweepPlan plan;                   // dense rows of the current block
  bool support_canonical = true;    // deferred sort; see StepLanes
  int64_t edges_relaxed = 0;        // per-lane, accumulated per Run

  std::size_t ApproxBytes() const {
    return sizeof(*this) + (mass.capacity() + next.capacity()) *
                               sizeof(double) +
           in_next.capacity() +
           (support.capacity() + next_support.capacity()) * sizeof(NodeId);
  }

  /// Zeroes the mass rows of the current support and clears it, leaving
  /// the workspace reusable without an O(n) sweep.
  void RestoreZeroInvariant() {
    for (NodeId v : support) {
      double* row = &mass[static_cast<std::size_t>(v) * kW];
      std::fill(row, row + kW, 0.0);
    }
    support.clear();
    support_canonical = true;
  }
};

BackwardWalkerBatch::BackwardWalkerBatch(const Graph& g)
    : BackwardWalkerBatch(g, Options()) {}

BackwardWalkerBatch::BackwardWalkerBatch(const Graph& g, Options options)
    : g_(g),
      options_(options),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : ThreadPool::DefaultThreadCount()) {}

BackwardWalkerBatch::~BackwardWalkerBatch() = default;

std::unique_ptr<BackwardWalkerBatch::BlockState>
BackwardWalkerBatch::AcquireState() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (free_states_.empty()) {
    return std::make_unique<BlockState>(g_.num_nodes());
  }
  auto state = std::move(free_states_.back());
  free_states_.pop_back();
  pooled_bytes_ -= state->ApproxBytes();
  return state;
}

void BackwardWalkerBatch::ReleaseState(std::unique_ptr<BlockState> state) {
  std::lock_guard<std::mutex> lock(state_mu_);
  edges_relaxed_ += state->edges_relaxed;
  state->edges_relaxed = 0;
  pooled_bytes_ += state->ApproxBytes();
  free_states_.push_back(std::move(state));
}

void BackwardWalkerBatch::TrimPool() {
  // Pool cap (Options::max_pooled_bytes), applied BETWEEN runs:
  // workspaces over the cap are freed here instead of pinning 128
  // bytes/node until the evaluator dies. Trimming only at run
  // boundaries keeps intra-run block recycling intact even when a
  // single workspace exceeds the cap (huge n) — the next Run then
  // reallocates, a time/space trade the caller opted into.
  std::lock_guard<std::mutex> lock(state_mu_);
  while (!free_states_.empty() && pooled_bytes_ > options_.max_pooled_bytes) {
    pooled_bytes_ -= free_states_.back()->ApproxBytes();
    free_states_.pop_back();
    ++workspaces_discarded_;
  }
}

std::size_t BackwardWalkerBatch::pooled_workspaces() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return free_states_.size();
}

std::size_t BackwardWalkerBatch::pooled_workspace_bytes() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return pooled_bytes_;
}

int64_t BackwardWalkerBatch::workspaces_discarded() const {
  std::lock_guard<std::mutex> lock(state_mu_);
  return workspaces_discarded_;
}

std::vector<double> BackwardWalkerBatch::Run(const DhtParams& params, int d,
                                             std::span<const NodeId> targets,
                                             std::span<const NodeId> sources) {
  DHTJOIN_CHECK(params.Validate().ok());
  DHTJOIN_CHECK_GE(d, 1);
  for (NodeId q : targets) DHTJOIN_CHECK(g_.ContainsNode(q));
  for (NodeId p : sources) DHTJOIN_CHECK(g_.ContainsNode(p));

  // External -> layout ids, once per call; all block work is internal.
  std::vector<NodeId> target_storage, source_storage;
  std::span<const NodeId> itargets = g_.MapToInternal(targets, target_storage);
  std::span<const NodeId> isources = g_.MapToInternal(sources, source_storage);

  std::vector<double> out(targets.size() * sources.size(), params.beta);
  const std::size_t num_blocks = (targets.size() + kW - 1) / kW;
  pool_.ParallelFor(static_cast<int64_t>(num_blocks), [&](int64_t block) {
    const std::size_t first = static_cast<std::size_t>(block) * kW;
    const int width =
        static_cast<int>(std::min<std::size_t>(kW, targets.size() - first));
    auto state = AcquireState();
    RunBlock(*state, params, d, itargets, first, width, isources, out.data());
    ReleaseState(std::move(state));
  });
  TrimPool();
  return out;
}

/// One blocked transition step shared by the from-scratch and resumable
/// paths: advances every lane of `st` one level, choosing sparse push or
/// dense gather by the shared adaptive policy (against the block's
/// restricted dense cost), and leaves the (canonically sorted) new
/// support in st.support with st.mass holding the new masses.
void BackwardWalkerBatch::StepLanes(BlockState& st, int width) const {
  const Graph& g = g_;
  const PropagationMode mode = options_.mode;
  // Adaptive direction choice, as in Propagator::ChooseDense. The
  // per-edge work is `width` lanes on both paths, so the single-lane
  // threshold carries over unchanged.
  bool dense = mode == PropagationMode::kDense;
  if (mode == PropagationMode::kAdaptive) {
    if (SupportSizeForcesDense(st.support.size(), st.plan.cost)) {
      dense = true;
    } else {
      // The degree sum counts every support row (reading all kW lanes
      // per node just to exclude the rare all-dead ones would cost
      // more than it saves); dead rows are dropped by the next sparse
      // push, so the estimate only transiently overshoots.
      int64_t frontier_edges = 0;
      for (NodeId v : st.support) frontier_edges += g.InDegree(v);
      dense = FrontierPrefersDense(st.support.size(), frontier_edges,
                                   st.plan.cost);
    }
  }

  if (!dense) {
    // Sparse: push the block's union frontier over transposed rows.
    // The push CONSUMES the support order (destinations accumulate in
    // frontier order), so bring it into canonical order first — the
    // dense gather's summation order in every layout (the deferred
    // half of the sorted-support contract; a run of dense steps never
    // pays this sort).
    if (!st.support_canonical) {
      g.SortCanonical(st.support);
      st.support_canonical = true;
    }
    int64_t relaxed = 0;
    for (NodeId v : st.support) {
      double* row = &st.mass[static_cast<std::size_t>(v) * kW];
      // Rows with no live lane (absorbed targets, decayed mass) carry
      // nothing; skipping them also drops the node from the support so
      // dead regions stop inflating the frontier and edges_relaxed.
      int live_lanes = 0;
      for (int b = 0; b < kW; ++b) live_lanes += row[b] != 0.0 ? 1 : 0;
      if (live_lanes == 0) continue;
      // Bill each lane only for its own frontier: lane b's sequential
      // walker would relax InDegree(v) edges iff it has mass at v.
      relaxed += g.InDegree(v) * live_lanes;
      for (const InEdge& e : g.InEdges(v)) {
        double* dst = &st.next[static_cast<std::size_t>(e.from) * kW];
        uint8_t& flag = st.in_next[static_cast<std::size_t>(e.from)];
        if (!flag) {
          flag = 1;
          st.next_support.push_back(e.from);
        }
        for (int b = 0; b < kW; ++b) dst[b] += e.prob * row[b];
      }
      std::fill(row, row + kW, 0.0);
    }
    st.edges_relaxed += relaxed;
  } else {
    // Dense: sequential gather over the block plan's out-rows. Rows
    // outside the plan (other weak components) cannot see the support,
    // so skipping them is exact — the restricted sweep (DESIGN.md §7).
    st.plan.ForEachRow(g.num_nodes(), [&](NodeId u) {
      double acc[kW] = {0.0};
      for (const OutEdge& e : g.OutEdges(u)) {
        const double* src = &st.mass[static_cast<std::size_t>(e.to) * kW];
        for (int b = 0; b < kW; ++b) acc[b] += e.prob * src[b];
      }
      if (std::any_of(acc, acc + kW, [](double x) { return x != 0.0; })) {
        double* dst = &st.next[static_cast<std::size_t>(u) * kW];
        for (int b = 0; b < kW; ++b) dst[b] = acc[b];
        st.next_support.push_back(u);
      }
    });
    for (NodeId v : st.support) {
      double* row = &st.mass[static_cast<std::size_t>(v) * kW];
      std::fill(row, row + kW, 0.0);
    }
    st.edges_relaxed += st.plan.edges * width;
  }
  for (NodeId u : st.next_support) {
    st.in_next[static_cast<std::size_t>(u)] = 0;
  }
  // Sorted-support contract (propagate.h), deferred: the new support is
  // left in emission order and canonically sorted only when a later
  // sparse push consumes it. The dense gather emits rows ascending by
  // internal id — already canonical exactly on an insertion-ordered
  // layout with a gap-free plan.
  st.support_canonical = dense && !g.is_reordered() && st.plan.full;
  st.mass.swap(st.next);
  st.support.swap(st.next_support);
  st.next_support.clear();
}

void BackwardWalkerBatch::RunBlock(BlockState& st, const DhtParams& params,
                                   int d, std::span<const NodeId> targets,
                                   std::size_t first_target, int width,
                                   std::span<const NodeId> sources,
                                   double* out) {
  const auto num_sources = static_cast<std::size_t>(sources.size());

  // Seed: lane b carries the walker of targets[first_target + b].
  // Duplicate targets simply share a support node with two live lanes.
  NodeId lane_target[kW];
  for (int b = 0; b < width; ++b) {
    NodeId q = targets[first_target + static_cast<std::size_t>(b)];
    lane_target[b] = q;
    st.mass[static_cast<std::size_t>(q) * kW + static_cast<std::size_t>(b)] =
        1.0;
    st.support.push_back(q);
  }
  // Dedup in case two lanes share a target node (they stay independent
  // columns of the shared row).
  g_.SortCanonical(st.support);
  st.support.erase(std::unique(st.support.begin(), st.support.end()),
                   st.support.end());
  st.support_canonical = true;
  st.plan = options_.restrict_dense
                ? g_.PlanDenseSweep({lane_target,
                                     static_cast<std::size_t>(width)})
                : g_.FullSweepPlan();

  double lambda_pow = 1.0;
  for (int step = 0; step < d; ++step) {
    StepLanes(st, width);

    // Score the requested sources: h grows by alpha * lambda^i * P_i.
    lambda_pow *= params.lambda;
    const double coeff = params.alpha * lambda_pow;
    for (std::size_t s = 0; s < num_sources; ++s) {
      const double* row =
          &st.mass[static_cast<std::size_t>(sources[s]) * kW];
      for (int b = 0; b < width; ++b) {
        out[(first_target + static_cast<std::size_t>(b)) * num_sources + s] +=
            coeff * row[b];
      }
    }

    // First-hit absorption, per lane: mass that reached the lane's own
    // target must not re-emit.
    if (params.first_hit) {
      for (int b = 0; b < width; ++b) {
        st.mass[static_cast<std::size_t>(lane_target[b]) * kW +
                static_cast<std::size_t>(b)] = 0.0;
      }
    }
  }

  st.RestoreZeroInvariant();
}

void BackwardWalkerBatch::AdvanceBlock(BlockState& st, const DhtParams& params,
                                       int from_level, int to_level,
                                       std::span<const NodeId> lane_targets,
                                       std::span<const std::size_t> lane_slots,
                                       std::span<const NodeId> sources,
                                       BackwardBatchStates& states,
                                       bool save_states,
                                       double* const* rows) {
  const int width = static_cast<int>(lane_targets.size());
  const auto num_sources = static_cast<std::size_t>(sources.size());

  // Load: fresh lanes (from_level == 0) seed unit mass at their target;
  // resumed lanes replay their sparse snapshot. Every lane's mass lives
  // in its target's weak component, so the plan from the lane targets
  // covers resumed snapshots too.
  NodeId lane_target[kW];
  for (int b = 0; b < width; ++b) {
    NodeId q = lane_targets[static_cast<std::size_t>(b)];
    lane_target[b] = q;
    if (from_level == 0) {
      double& slot =
          st.mass[static_cast<std::size_t>(q) * kW + static_cast<std::size_t>(b)];
      if (slot == 0.0 && st.in_next[static_cast<std::size_t>(q)] == 0) {
        st.in_next[static_cast<std::size_t>(q)] = 1;
        st.support.push_back(q);
      }
      slot = 1.0;
    } else {
      const auto& saved =
          states.slots_[lane_slots[static_cast<std::size_t>(b)]].mass;
      for (const auto& [v, m] : saved) {
        double& slot =
            st.mass[static_cast<std::size_t>(v) * kW + static_cast<std::size_t>(b)];
        if (slot == 0.0 && st.in_next[static_cast<std::size_t>(v)] == 0) {
          st.in_next[static_cast<std::size_t>(v)] = 1;
          st.support.push_back(v);
        }
        slot = m;
      }
    }
  }
  for (NodeId v : st.support) st.in_next[static_cast<std::size_t>(v)] = 0;
  g_.SortCanonical(st.support);
  st.support.erase(std::unique(st.support.begin(), st.support.end()),
                   st.support.end());
  st.support_canonical = true;
  st.plan = options_.restrict_dense
                ? g_.PlanDenseSweep({lane_target,
                                     static_cast<std::size_t>(width)})
                : g_.FullSweepPlan();

  // Resume the discount where the walk stopped: all lanes share a level
  // (and thus bit-equal saved lambda^level values), so lane 0 speaks
  // for the block; fresh blocks start at lambda^0.
  double lambda_pow =
      from_level == 0 ? 1.0
                      : states.slots_[lane_slots[0]].lambda_pow;

  for (int step = from_level; step < to_level; ++step) {
    StepLanes(st, width);
    lambda_pow *= params.lambda;
    const double coeff = params.alpha * lambda_pow;
    for (std::size_t s = 0; s < num_sources; ++s) {
      const double* row = &st.mass[static_cast<std::size_t>(sources[s]) * kW];
      for (int b = 0; b < width; ++b) rows[b][s] += coeff * row[b];
    }
    if (params.first_hit) {
      for (int b = 0; b < width; ++b) {
        st.mass[static_cast<std::size_t>(lane_target[b]) * kW +
                static_cast<std::size_t>(b)] = 0.0;
      }
    }
  }

  // Write back per-lane states under the byte budget. The old snapshot
  // is only released once the new one is known to fit: under budget
  // pressure a lane keeps its previous (lower-level) state, so the next
  // advance resumes from there instead of degrading to a full restart
  // (AdvanceRun groups mixed saved levels). A final advance
  // (save_states off) skips the snapshots entirely.
  for (int b = 0; save_states && b < width; ++b) {
    BackwardBatchStates::Slot& slot =
        states.slots_[lane_slots[static_cast<std::size_t>(b)]];
    BackwardBatchStates::Slot cand;
    cand.level = to_level;
    cand.lambda_pow = lambda_pow;
    for (NodeId v : st.support) {
      double m = st.mass[static_cast<std::size_t>(v) * kW +
                         static_cast<std::size_t>(b)];
      if (m != 0.0) cand.mass.emplace_back(v, m);
    }
    cand.row.assign(rows[b], rows[b] + num_sources);
    cand.bytes = cand.ApproxBytes();
    const std::size_t prev =
        states.bytes_.fetch_add(cand.bytes, std::memory_order_relaxed);
    if (prev + cand.bytes - slot.bytes <= states.max_bytes_) {
      states.bytes_.fetch_sub(slot.bytes, std::memory_order_relaxed);
      slot = std::move(cand);
    } else {
      states.bytes_.fetch_sub(cand.bytes, std::memory_order_relaxed);
      states.evictions_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  st.RestoreZeroInvariant();
}

int64_t BackwardWalkerBatch::AdvanceRun(const DhtParams& params, int to_level,
                                        std::span<const NodeId> targets,
                                        std::span<const std::size_t> slots,
                                        std::span<const NodeId> sources,
                                        BackwardBatchStates& states,
                                        bool save_states, double* out) {
  DHTJOIN_CHECK(params.Validate().ok());
  DHTJOIN_CHECK_GE(to_level, 1);
  for (NodeId q : targets) DHTJOIN_CHECK(g_.ContainsNode(q));
  for (NodeId p : sources) DHTJOIN_CHECK(g_.ContainsNode(p));
  const std::size_t num_sources = sources.size();

  std::vector<NodeId> target_storage, source_storage;
  std::span<const NodeId> itargets = g_.MapToInternal(targets, target_storage);
  std::span<const NodeId> isources = g_.MapToInternal(sources, source_storage);

  // Initialize each target's output row from its saved score row (or
  // the beta floor when fresh), and group still-advancing targets by
  // saved level so each block steps a uniform number of levels.
  std::map<int, std::vector<std::size_t>> by_level;
  int64_t fresh = 0;
  for (std::size_t i = 0; i < targets.size(); ++i) {
    const BackwardBatchStates::Slot& slot = states.slots_[slots[i]];
    DHTJOIN_CHECK_LE(slot.level, to_level);
    double* row = out + i * num_sources;
    if (slot.level == 0) {
      std::fill(row, row + num_sources, params.beta);
      ++fresh;
    } else {
      DHTJOIN_CHECK_EQ(slot.row.size(), num_sources);
      std::copy(slot.row.begin(), slot.row.end(), row);
      states.hits_.fetch_add(1, std::memory_order_relaxed);
    }
    if (slot.level < to_level) by_level[slot.level].push_back(i);
  }

  struct Block {
    int from_level;
    std::vector<std::size_t> idx;  // indices into targets/slots/out rows
  };
  std::vector<Block> blocks;
  for (auto& [level, idxs] : by_level) {
    for (std::size_t base = 0; base < idxs.size(); base += kW) {
      Block blk;
      blk.from_level = level;
      const std::size_t count = std::min<std::size_t>(kW, idxs.size() - base);
      blk.idx.assign(idxs.begin() + static_cast<std::ptrdiff_t>(base),
                     idxs.begin() + static_cast<std::ptrdiff_t>(base + count));
      blocks.push_back(std::move(blk));
    }
  }

  pool_.ParallelFor(static_cast<int64_t>(blocks.size()), [&](int64_t bi) {
    const Block& blk = blocks[static_cast<std::size_t>(bi)];
    const int width = static_cast<int>(blk.idx.size());
    NodeId lane_targets[kW];
    std::size_t lane_slots[kW];
    double* rows[kW];
    for (int b = 0; b < width; ++b) {
      const std::size_t i = blk.idx[static_cast<std::size_t>(b)];
      lane_targets[b] = itargets[i];
      lane_slots[b] = slots[i];
      rows[b] = out + i * num_sources;
    }
    auto state = AcquireState();
    AdvanceBlock(*state, params, blk.from_level, to_level,
                 {lane_targets, static_cast<std::size_t>(width)},
                 {lane_slots, static_cast<std::size_t>(width)}, isources,
                 states, save_states, rows);
    ReleaseState(std::move(state));
  });
  TrimPool();
  return fresh;
}

}  // namespace dhtjoin
