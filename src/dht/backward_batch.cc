#include "dht/backward_batch.h"

namespace dhtjoin {

// The 8-lane default and the 4-lane narrow option are the only widths
// the library instantiates; keeping the definitions here spares every
// including TU the template instantiation cost.
template class BackwardWalkerBatchT<8>;
template class BackwardWalkerBatchT<4>;

}  // namespace dhtjoin
