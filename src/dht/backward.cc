#include "dht/backward.h"

#include <algorithm>

namespace dhtjoin {

BackwardWalker::BackwardWalker(const Graph& g)
    : g_(g),
      back_prob_(static_cast<std::size_t>(g.num_nodes()), 0.0),
      next_(static_cast<std::size_t>(g.num_nodes()), 0.0),
      score_(static_cast<std::size_t>(g.num_nodes()), 0.0) {}

void BackwardWalker::Reset(const DhtParams& params, NodeId q) {
  DHTJOIN_CHECK(g_.ContainsNode(q));
  params_ = params;
  target_ = q;
  level_ = 0;
  lambda_pow_ = 1.0;
  std::fill(back_prob_.begin(), back_prob_.end(), 0.0);
  back_prob_[static_cast<std::size_t>(q)] = 1.0;
  std::fill(score_.begin(), score_.end(), params.beta);
}

void BackwardWalker::Advance(int steps) {
  DHTJOIN_CHECK(target_ != kInvalidNode);
  const NodeId n = g_.num_nodes();
  for (int s = 0; s < steps; ++s) {
    // next[u] = sum over out-edges (u, v) of p_uv * back_prob[v].
    // The "v != q for i > 1" restriction of Eq. 5 is realized by zeroing
    // back_prob[q] after the first step (see below), so the loop body is
    // uniform across iterations.
    for (NodeId u = 0; u < n; ++u) {
      double acc = 0.0;
      for (const OutEdge& e : g_.OutEdges(u)) {
        acc += e.prob * back_prob_[static_cast<std::size_t>(e.to)];
      }
      next_[static_cast<std::size_t>(u)] = acc;
    }
    ++level_;
    lambda_pow_ *= params_.lambda;
    const double coeff = params_.alpha * lambda_pow_;
    for (NodeId u = 0; u < n; ++u) {
      score_[static_cast<std::size_t>(u)] +=
          coeff * next_[static_cast<std::size_t>(u)];
    }
    back_prob_.swap(next_);
    // First-hit semantics: mass that reached q must not re-emit.
    // Visiting semantics (PPR) keep propagating through the target.
    if (params_.first_hit) {
      back_prob_[static_cast<std::size_t>(target_)] = 0.0;
    }
  }
}

}  // namespace dhtjoin
