#include "dht/backward.h"

namespace dhtjoin {

BackwardWalker::BackwardWalker(const Graph& g, PropagationMode mode,
                               bool restrict_dense, bool soa_gather)
    : g_(g),
      engine_(g, Propagator::Direction::kBackward, mode, restrict_dense,
              soa_gather),
      score_delta_(static_cast<std::size_t>(g.num_nodes()), 0.0) {}

void BackwardWalker::Reset(const DhtParams& params, ExtNodeId q) {
  DHTJOIN_CHECK(g_.ContainsNode(q));
  params_ = params;
  target_ = q;
  target_internal_ = g_.ToInternal(q);
  level_ = 0;
  lambda_pow_ = 1.0;
  engine_.Reset(target_internal_);
  for (NodeId u : touched_) score_delta_[static_cast<std::size_t>(u)] = 0.0;
  touched_.clear();
}

void BackwardWalker::Save(BackwardWalkerState* out) const {
  out->target = target_;
  out->level = level_;
  out->lambda_pow = lambda_pow_;
  engine_.SaveState(&out->engine);
  out->score_delta.clear();
  out->score_delta.reserve(touched_.size());
  for (NodeId u : touched_) {
    out->score_delta.emplace_back(u, score_delta_[static_cast<std::size_t>(u)]);
  }
}

void BackwardWalker::Restore(const DhtParams& params,
                             const BackwardWalkerState& state) {
  DHTJOIN_CHECK(state.target.valid());
  params_ = params;
  target_ = state.target;
  target_internal_ = g_.ToInternal(state.target);
  level_ = state.level;
  lambda_pow_ = state.lambda_pow;
  engine_.RestoreState(state.engine);
  for (NodeId u : touched_) score_delta_[static_cast<std::size_t>(u)] = 0.0;
  touched_.clear();
  for (const auto& [u, delta] : state.score_delta) {
    touched_.push_back(u);
    score_delta_[static_cast<std::size_t>(u)] = delta;
  }
}

void BackwardWalker::Advance(int steps) {
  DHTJOIN_CHECK(target_.valid());
  for (int s = 0; s < steps; ++s) {
    engine_.Step();
    ++level_;
    lambda_pow_ *= params_.lambda;
    const double coeff = params_.alpha * lambda_pow_;
    engine_.ForEachMass([&](NodeId u, double mass) {
      double add = coeff * mass;
      // Underflow guard: keep the first-touch test exact (see
      // Propagator::StepSparse for the same pattern).
      if (add == 0.0) return;
      double& slot = score_delta_[static_cast<std::size_t>(u)];
      if (slot == 0.0) touched_.push_back(u);
      slot += add;
    });
    // First-hit semantics: mass that reached q must not re-emit.
    // Visiting semantics (PPR) keep propagating through the target.
    if (params_.first_hit) engine_.ClearMass(target_internal_);
  }
}

}  // namespace dhtjoin
