/// \file persist/metrics.h
/// \brief Eagerly-registered counters for the durability layer.
///
/// Same discipline as cluster/metrics.h: every persist.* counter is
/// registered at construction so exports enumerate the full set from
/// the first scrape — a zero row is "no checkpoints yet", an absent
/// row would be "is persistence even wired?". Names are pinned exactly
/// in tests/obs_test.cc.

#ifndef DHTJOIN_PERSIST_METRICS_H_
#define DHTJOIN_PERSIST_METRICS_H_

#include "obs/metrics.h"

namespace dhtjoin::persist {

struct PersistMetrics {
  explicit PersistMetrics(obs::MetricsRegistry& registry)
      : checkpoint_writes(registry.GetCounter("persist.checkpoint.writes")),
        checkpoint_failures(
            registry.GetCounter("persist.checkpoint.failures")),
        checkpoint_bytes(registry.GetCounter("persist.checkpoint.bytes")),
        restore_hits(registry.GetCounter("persist.restore.hits")),
        restore_rejects(registry.GetCounter("persist.restore.rejects")) {}

  /// Snapshots durably renamed into place / failed or abandoned.
  obs::Counter* checkpoint_writes;
  obs::Counter* checkpoint_failures;
  /// Encoded bytes of successful checkpoint writes.
  obs::Counter* checkpoint_bytes;
  /// Cache records restored from a validated snapshot.
  obs::Counter* restore_hits;
  /// Snapshots rejected whole: fingerprint mismatch or corruption.
  obs::Counter* restore_rejects;
};

}  // namespace dhtjoin::persist

#endif  // DHTJOIN_PERSIST_METRICS_H_
