#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "cluster/frame.h"
#include "cluster/wire.h"

namespace dhtjoin::persist {

namespace {

using cluster::ByteReader;
using cluster::ByteWriter;
using cluster::FrameChecksum;

/// Directory component of `path` ("." when none) — the fsync target
/// that makes the rename durable.
std::string DirOf(const std::string& path) {
  const std::size_t slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status CloseUnlinkFail(int fd, const std::string& tmp, std::string msg) {
  if (fd >= 0) ::close(fd);
  ::unlink(tmp.c_str());
  return Status::IOError(std::move(msg));
}

}  // namespace

const char* CheckpointPhaseName(CheckpointPhase phase) {
  switch (phase) {
    case CheckpointPhase::kAfterTempCreate: return "after-temp-create";
    case CheckpointPhase::kAfterTempWrite: return "after-temp-write";
    case CheckpointPhase::kAfterFsync: return "after-fsync";
    case CheckpointPhase::kBeforeRename: return "before-rename";
    case CheckpointPhase::kAfterRename: return "after-rename";
  }
  return "unknown";
}

std::vector<uint8_t> EncodeSnapshot(const SnapshotFile& file) {
  ByteWriter header;
  header.U32(kSnapshotMagic);
  header.U16(kSnapshotVersion);
  header.U16(0);  // reserved
  header.U64(file.graph_fp);
  header.U64(file.params_fp);
  header.U64(static_cast<uint64_t>(file.sections.size()));
  const uint64_t header_checksum = FrameChecksum(header.bytes());

  ByteWriter out;
  out.U32(kSnapshotMagic);
  out.U16(kSnapshotVersion);
  out.U16(0);
  out.U64(file.graph_fp);
  out.U64(file.params_fp);
  out.U64(static_cast<uint64_t>(file.sections.size()));
  out.U64(header_checksum);
  std::vector<uint8_t> bytes = out.Take();
  for (const SnapshotSection& section : file.sections) {
    const std::size_t section_start = bytes.size();
    ByteWriter prefix;
    prefix.U32(section.kind);
    prefix.U32(0);  // reserved
    prefix.U64(static_cast<uint64_t>(section.payload.size()));
    auto p = prefix.Take();
    bytes.insert(bytes.end(), p.begin(), p.end());
    bytes.insert(bytes.end(), section.payload.begin(), section.payload.end());
    // Checksum over prefix AND payload: a flipped bit anywhere in the
    // section — kind, reserved, length, or data — fails verification.
    ByteWriter sum;
    sum.U64(FrameChecksum(std::span<const uint8_t>(
        bytes.data() + section_start, bytes.size() - section_start)));
    auto s = sum.Take();
    bytes.insert(bytes.end(), s.begin(), s.end());
  }
  return bytes;
}

Result<SnapshotFile> DecodeSnapshot(std::span<const uint8_t> bytes) {
  if (bytes.size() < kSnapshotHeaderBytes) {
    return Status::InvalidArgument("snapshot corrupt: shorter than header");
  }
  ByteReader r(bytes);
  const uint32_t magic = r.U32();
  const uint16_t version = r.U16();
  (void)r.U16();  // reserved
  SnapshotFile file;
  file.graph_fp = r.U64();
  file.params_fp = r.U64();
  const uint64_t section_count = r.U64();
  const uint64_t header_checksum = r.U64();
  if (!r.ok()) return Status::InvalidArgument("snapshot corrupt: header");
  if (magic != kSnapshotMagic) {
    return Status::InvalidArgument("snapshot corrupt: bad magic");
  }
  if (version != kSnapshotVersion) {
    return Status::InvalidArgument(
        "snapshot version " + std::to_string(version) +
        " unsupported (expected " + std::to_string(kSnapshotVersion) + ")");
  }
  if (FrameChecksum(bytes.first(kSnapshotHeaderBytes - sizeof(uint64_t))) !=
      header_checksum) {
    return Status::InvalidArgument("snapshot corrupt: header checksum");
  }
  if (section_count > kMaxSections) {
    return Status::InvalidArgument("snapshot corrupt: section count " +
                                   std::to_string(section_count));
  }

  std::size_t off = kSnapshotHeaderBytes;
  file.sections.reserve(static_cast<std::size_t>(section_count));
  for (uint64_t i = 0; i < section_count; ++i) {
    if (bytes.size() - off < kSectionPrefixBytes) {
      return Status::InvalidArgument(
          "snapshot corrupt: truncated at section " + std::to_string(i));
    }
    const std::size_t section_start = off;
    ByteReader pr(bytes.subspan(off, kSectionPrefixBytes));
    SnapshotSection section;
    section.kind = pr.U32();
    (void)pr.U32();  // reserved (covered by the section checksum)
    const uint64_t len = pr.U64();
    off += kSectionPrefixBytes;
    if (len > kMaxSectionBytes || bytes.size() - off < len + sizeof(uint64_t)) {
      return Status::InvalidArgument(
          "snapshot corrupt: section " + std::to_string(i) + " length " +
          std::to_string(len) + " overruns the file");
    }
    auto payload = bytes.subspan(off, static_cast<std::size_t>(len));
    off += static_cast<std::size_t>(len);
    ByteReader cr(bytes.subspan(off, sizeof(uint64_t)));
    const uint64_t checksum = cr.U64();
    off += sizeof(uint64_t);
    const auto covered = bytes.subspan(
        section_start, kSectionPrefixBytes + static_cast<std::size_t>(len));
    if (FrameChecksum(covered) != checksum) {
      return Status::InvalidArgument("snapshot corrupt: section " +
                                     std::to_string(i) + " checksum");
    }
    section.payload.assign(payload.begin(), payload.end());
    file.sections.push_back(std::move(section));
  }
  if (off != bytes.size()) {
    return Status::InvalidArgument("snapshot corrupt: trailing bytes");
  }
  return file;
}

Status WriteFileAtomic(const std::string& path,
                       std::span<const uint8_t> bytes,
                       const CheckpointHook& hook) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid()));
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                        0644);
  if (fd < 0) {
    return Status::IOError("cannot create '" + tmp +
                           "': " + std::strerror(errno));
  }
  auto abandoned = [&]() {
    ::close(fd);
    ::unlink(tmp.c_str());
    return Status::Cancelled("checkpoint abandoned by hook");
  };
  if (hook && !hook(CheckpointPhase::kAfterTempCreate)) return abandoned();

  std::size_t written = 0;
  while (written < bytes.size()) {
    const ssize_t n = ::write(fd, bytes.data() + written,
                              bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return CloseUnlinkFail(fd, tmp, "write to '" + tmp +
                                          "' failed: " + std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
  if (hook && !hook(CheckpointPhase::kAfterTempWrite)) return abandoned();

  if (::fsync(fd) != 0) {
    return CloseUnlinkFail(fd, tmp, "fsync of '" + tmp +
                                        "' failed: " + std::strerror(errno));
  }
  if (hook && !hook(CheckpointPhase::kAfterFsync)) return abandoned();
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("close of '" + tmp +
                           "' failed: " + std::strerror(errno));
  }

  if (hook && !hook(CheckpointPhase::kBeforeRename)) {
    ::unlink(tmp.c_str());
    return Status::Cancelled("checkpoint abandoned by hook");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return Status::IOError("rename '" + tmp + "' -> '" + path +
                           "' failed: " + std::strerror(errno));
  }
  // Make the rename itself durable: fsync the containing directory.
  const std::string dir = DirOf(path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  if (hook && !hook(CheckpointPhase::kAfterRename)) {
    // The snapshot is already durable; an abandon here changes nothing.
    return Status::Cancelled("checkpoint abandoned by hook (after rename)");
  }
  return Status::OK();
}

Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no snapshot at '" + path + "'");
    }
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  std::vector<uint8_t> bytes;
  uint8_t buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("read of '" + path + "' failed: " + err);
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), buf, buf + n);
  }
  ::close(fd);
  return bytes;
}

Status WriteSnapshotFile(const std::string& path, const SnapshotFile& file,
                         const CheckpointHook& hook) {
  return WriteFileAtomic(path, EncodeSnapshot(file), hook);
}

Result<SnapshotFile> ReadSnapshotFile(const std::string& path) {
  DHTJOIN_ASSIGN_OR_RETURN(std::vector<uint8_t> bytes, ReadFileBytes(path));
  return DecodeSnapshot(bytes);
}

}  // namespace dhtjoin::persist
