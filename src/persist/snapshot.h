/// \file persist/snapshot.h
/// \brief Versioned, per-section-checksummed on-disk snapshots with a
/// crash-safe atomic writer — the durability substrate of the serving
/// tier (DESIGN.md §13).
///
/// A snapshot file is a fixed header (magic, format version, graph
/// fingerprint + layout epoch via GraphFingerprint, DhtParams bits via
/// ParamsFingerprint, section count, header checksum) followed by
/// length-prefixed sections, each carrying its own 64-bit checksum —
/// the same SplitMix64-chained FrameChecksum the wire frames use
/// (cluster/frame.h), so disk corruption and wire corruption are
/// caught by one verified primitive.
///
/// The writer is crash-safe by construction: bytes go to a temp file
/// in the destination directory, are fsync'd, and reach `path` only
/// through rename(2) — POSIX-atomic — followed by a directory fsync.
/// A kill -9 at ANY byte offset of the write therefore leaves either
/// the previous snapshot (rename not reached) or the complete new one
/// (rename durable); the loader turns every other on-disk state —
/// truncation, bit flips, a stray partial temp file — into a typed
/// Status. There is no byte offset at which a crash yields a loadable
/// lie; that property is fuzzed at every section boundary in
/// tests/persist_test.cc and SIGKILL-hammered in bench_recovery.
///
/// CheckpointHook exposes the writer's internal phases so the chaos
/// harness (cluster/chaos.h) can kill a checkpointing worker at a
/// seeded phase, and tests can simulate a crash (return false =
/// abandon the write, as a kill at that byte offset would).

#ifndef DHTJOIN_PERSIST_SNAPSHOT_H_
#define DHTJOIN_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace dhtjoin::persist {

/// "DHSP" read little-endian.
inline constexpr uint32_t kSnapshotMagic = 0x50534844u;

/// Bumped on any incompatible change to the header or section
/// encodings. A mismatch is a hard kInvalidArgument on load.
inline constexpr uint16_t kSnapshotVersion = 1;

/// Encoded header size: magic u32, version u16, reserved u16,
/// graph_fp u64, params_fp u64, section_count u64, header checksum u64.
inline constexpr std::size_t kSnapshotHeaderBytes = 40;

/// Per-section byte prefix: kind u32, reserved u32, length u64; the
/// payload is followed by a u64 checksum covering prefix AND payload.
inline constexpr std::size_t kSectionPrefixBytes = 16;

/// Upper bound on one section payload; a larger length field is
/// treated as corruption, not an allocation request.
inline constexpr uint64_t kMaxSectionBytes = uint64_t{1} << 30;

/// Upper bound on the section count for the same reason.
inline constexpr uint64_t kMaxSections = uint64_t{1} << 24;

/// One length-prefixed, checksummed section. `kind` is
/// caller-defined (the serving layer uses serve::CachePayload values).
struct SnapshotSection {
  uint32_t kind = 0;
  std::vector<uint8_t> payload;
};

/// A decoded snapshot: identity fingerprints + sections.
struct SnapshotFile {
  uint64_t graph_fp = 0;
  uint64_t params_fp = 0;
  std::vector<SnapshotSection> sections;
};

/// The atomic writer's observable phases, in execution order. A crash
/// before kAfterRename leaves the previous snapshot; at/after it, the
/// new one. There is no third outcome.
enum class CheckpointPhase : uint8_t {
  kAfterTempCreate = 0,  ///< temp file exists, empty
  kAfterTempWrite,       ///< all bytes written to the temp file
  kAfterFsync,           ///< temp file contents durable
  kBeforeRename,         ///< about to rename(temp, path)
  kAfterRename,          ///< snapshot visible under `path`
};
inline constexpr int kNumCheckpointPhases = 5;

const char* CheckpointPhaseName(CheckpointPhase phase);

/// Invoked by WriteFileAtomic at each phase. Returning false abandons
/// the write (temp file unlinked, Status{kCancelled}) — the unit-test
/// simulation of a kill at that byte offset. The chaos harness's hook
/// instead raises SIGKILL and never returns.
using CheckpointHook = std::function<bool(CheckpointPhase)>;

/// Serializes a snapshot (header + checksummed sections).
std::vector<uint8_t> EncodeSnapshot(const SnapshotFile& file);

/// Fail-closed decode: bad magic/version, a broken header or section
/// checksum, an out-of-bounds length, or trailing bytes all yield
/// kInvalidArgument — never a partially-filled snapshot.
Result<SnapshotFile> DecodeSnapshot(std::span<const uint8_t> bytes);

/// Crash-safely replaces `path` with `bytes`: temp file in the same
/// directory -> write -> fsync -> rename -> directory fsync. `hook`
/// (optional) observes each CheckpointPhase.
Status WriteFileAtomic(const std::string& path,
                       std::span<const uint8_t> bytes,
                       const CheckpointHook& hook = nullptr);

/// Reads a whole file. kNotFound when `path` does not exist (the
/// ordinary cold start), kIOError on any other failure.
Result<std::vector<uint8_t>> ReadFileBytes(const std::string& path);

/// WriteFileAtomic of EncodeSnapshot(file).
Status WriteSnapshotFile(const std::string& path, const SnapshotFile& file,
                         const CheckpointHook& hook = nullptr);

/// ReadFileBytes + DecodeSnapshot: kNotFound for a missing file,
/// kInvalidArgument for a corrupt one, the snapshot otherwise.
Result<SnapshotFile> ReadSnapshotFile(const std::string& path);

}  // namespace dhtjoin::persist

#endif  // DHTJOIN_PERSIST_SNAPSHOT_H_
