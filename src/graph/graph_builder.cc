#include "graph/graph_builder.h"

#include <algorithm>
#include <string>

namespace dhtjoin {

GraphBuilder::GraphBuilder(NodeId num_nodes, bool undirected)
    : num_nodes_(num_nodes), undirected_(undirected) {
  DHTJOIN_CHECK_GE(num_nodes, 0);
}

Status GraphBuilder::AddEdge(NodeId u, NodeId v, double w) {
  if (u < 0 || u >= num_nodes_ || v < 0 || v >= num_nodes_) {
    return Status::InvalidArgument(
        "edge (" + std::to_string(u) + ", " + std::to_string(v) +
        ") references a node outside [0, " + std::to_string(num_nodes_) +
        ")");
  }
  if (u == v) {
    return Status::InvalidArgument("self-loop on node " + std::to_string(u));
  }
  if (!(w > 0.0)) {
    return Status::InvalidArgument("edge weight must be positive, got " +
                                   std::to_string(w));
  }
  edges_.push_back(PendingEdge{u, v, w});
  if (undirected_) edges_.push_back(PendingEdge{v, u, w});
  return Status::OK();
}

bool GraphBuilder::HasPendingEdge(NodeId u, NodeId v) const {
  for (const auto& e : edges_) {
    if (e.from == u && e.to == v) return true;
  }
  return false;
}

Result<Graph> GraphBuilder::Build() {
  std::sort(edges_.begin(), edges_.end(),
            [](const PendingEdge& a, const PendingEdge& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });

  Graph g;
  g.out_offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  g.out_edges_.reserve(edges_.size());

  // Dedup consecutive duplicates, accumulating weight.
  for (std::size_t i = 0; i < edges_.size();) {
    std::size_t j = i;
    double w = 0.0;
    while (j < edges_.size() && edges_[j].from == edges_[i].from &&
           edges_[j].to == edges_[i].to) {
      w += edges_[j].weight;
      ++j;
    }
    g.out_edges_.push_back(OutEdge{edges_[i].to, 0.0});
    g.out_weights_.push_back(w);
    g.out_offsets_[static_cast<std::size_t>(edges_[i].from) + 1]++;
    i = j;
  }
  for (NodeId u = 0; u < num_nodes_; ++u) {
    g.out_offsets_[static_cast<std::size_t>(u) + 1] +=
        g.out_offsets_[static_cast<std::size_t>(u)];
  }

  // Transition probabilities p_uv = w_uv / total out-weight.
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto begin = g.out_offsets_[static_cast<std::size_t>(u)];
    auto end = g.out_offsets_[static_cast<std::size_t>(u) + 1];
    double total = 0.0;
    for (auto e = begin; e < end; ++e) {
      total += g.out_weights_[static_cast<std::size_t>(e)];
    }
    if (total > 0.0) {
      for (auto e = begin; e < end; ++e) {
        g.out_edges_[static_cast<std::size_t>(e)].prob =
            g.out_weights_[static_cast<std::size_t>(e)] / total;
      }
    }
  }

  // Transposed adjacency (in-edges with transition probabilities) via
  // counting sort over deduped edges. Runs after the probability pass so
  // each InEdge carries the finalized p_uv of its out-edge twin.
  g.in_offsets_.assign(static_cast<std::size_t>(num_nodes_) + 1, 0);
  for (const auto& e : g.out_edges_) {
    g.in_offsets_[static_cast<std::size_t>(e.to) + 1]++;
  }
  for (NodeId u = 0; u < num_nodes_; ++u) {
    g.in_offsets_[static_cast<std::size_t>(u) + 1] +=
        g.in_offsets_[static_cast<std::size_t>(u)];
  }
  g.in_edges_.resize(g.out_edges_.size());
  std::vector<int64_t> cursor(g.in_offsets_.begin(), g.in_offsets_.end() - 1);
  for (NodeId u = 0; u < num_nodes_; ++u) {
    auto begin = g.out_offsets_[static_cast<std::size_t>(u)];
    auto end = g.out_offsets_[static_cast<std::size_t>(u) + 1];
    for (auto e = begin; e < end; ++e) {
      const OutEdge& edge = g.out_edges_[static_cast<std::size_t>(e)];
      g.in_edges_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(edge.to)]++)] =
          InEdge{u, edge.prob};
    }
  }
  // Sources arrive in ascending order (outer loop over u), rows sorted.

  edges_.clear();
  edges_.shrink_to_fit();
  g.BuildGatherArrays();
  g.caches_ = std::make_shared<Graph::LazyCaches>();
  return g;
}

}  // namespace dhtjoin
