/// \file graph/node_set.h
/// \brief A named subset of graph nodes (paper Sec III-A: "node set").
///
/// The operands of every join in the paper are node sets R_i ⊆ V_G —
/// e.g. "authors in the Database area" or "members of YouTube group 5".
///
/// Members are EXTERNAL node ids (graph/node_id.h): a node set means
/// the same nodes in every physical layout of the graph, and the typed
/// accessors make it a compile error to hand a member to an
/// internal-space API without going through Graph::ToInternal /
/// Graph::MapToInternal.

#ifndef DHTJOIN_GRAPH_NODE_SET_H_
#define DHTJOIN_GRAPH_NODE_SET_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dhtjoin {

/// Sorted, deduplicated set of external node ids with a display name.
class NodeSet {
 public:
  NodeSet() = default;

  /// Sorts and dedups `nodes`. The raw-id overload is the sanctioned
  /// ingestion point for ids produced outside the typed world
  /// (datasets, parsers, tests); the values are external ids.
  NodeSet(std::string name, std::vector<NodeId> nodes);
  NodeSet(std::string name, std::vector<ExtNodeId> nodes);

  const std::string& name() const { return name_; }
  const std::vector<ExtNodeId>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Membership test; O(log size).
  bool Contains(ExtNodeId u) const;

  ExtNodeId operator[](std::size_t i) const { return nodes_[i]; }
  auto begin() const { return nodes_.begin(); }
  auto end() const { return nodes_.end(); }

  /// Error unless every node id exists in `g` and the set is non-empty.
  Status Validate(const Graph& g) const;

  /// The `count` members with the largest total degree in `g`
  /// (the paper's Table III picks the 100 most-published authors).
  NodeSet TopByDegree(const Graph& g, std::size_t count) const;

 private:
  std::string name_;
  std::vector<ExtNodeId> nodes_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_GRAPH_NODE_SET_H_
