/// \file graph/node_set.h
/// \brief A named subset of graph nodes (paper Sec III-A: "node set").
///
/// The operands of every join in the paper are node sets R_i ⊆ V_G —
/// e.g. "authors in the Database area" or "members of YouTube group 5".

#ifndef DHTJOIN_GRAPH_NODE_SET_H_
#define DHTJOIN_GRAPH_NODE_SET_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dhtjoin {

/// Sorted, deduplicated set of node ids with a display name.
class NodeSet {
 public:
  NodeSet() = default;

  /// Sorts and dedups `nodes`.
  NodeSet(std::string name, std::vector<NodeId> nodes);

  const std::string& name() const { return name_; }
  const std::vector<NodeId>& nodes() const { return nodes_; }
  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }

  /// Membership test; O(log size).
  bool Contains(NodeId u) const;

  NodeId operator[](std::size_t i) const { return nodes_[i]; }
  auto begin() const { return nodes_.begin(); }
  auto end() const { return nodes_.end(); }

  /// Error unless every node id exists in `g` and the set is non-empty.
  Status Validate(const Graph& g) const;

  /// The `count` members with the largest total degree in `g`
  /// (the paper's Table III picks the 100 most-published authors).
  NodeSet TopByDegree(const Graph& g, std::size_t count) const;

 private:
  std::string name_;
  std::vector<NodeId> nodes_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_GRAPH_NODE_SET_H_
