/// \file graph/reorder.h
/// \brief Cache-conscious graph layouts: degree and reverse-Cuthill–
/// McKee node reordering with external-id remapping.
///
/// The hot paths of every engine in the repo stream the CSR: the dense
/// backward gather reads mass[e.to] for every out-edge, the batch
/// engines do the same 8 lanes at a time, and the sparse pushes scatter
/// into mass[] at the frontier's neighbours. With the insertion-ordered
/// layout those accesses are as scattered as the generator happened to
/// emit ids. Reordering the PHYSICAL layout fixes that without touching
/// any algorithm:
///
///  * kDegree — hubs first (descending total degree). On heavy-tailed
///    graphs most gather traffic targets a few hub rows ("It's all a
///    matter of degree", Joglekar & Ré; "Skew Strikes Back", Ngo et
///    al.): packing them into the first cache lines of mass[] turns the
///    dominant accesses into L1/L2 hits.
///  * kRcm — reverse Cuthill–McKee over the symmetrized adjacency:
///    neighbours get nearby ids, shrinking the bandwidth of the
///    scattered reads for mesh-like regions.
///
/// The reordered Graph carries old<->new remap tables (Graph::
/// ToInternal / ToExternal); the walkers and batch engines translate at
/// their public boundaries, and every engine keeps floating-point
/// accumulation in CANONICAL (external-id) order, so all scores,
/// rankings, and tie-breaks are bit-identical to the insertion-ordered
/// graph (DESIGN.md §7). `bench_reorder` gates the speedup and the
/// byte-identity.

#ifndef DHTJOIN_GRAPH_REORDER_H_
#define DHTJOIN_GRAPH_REORDER_H_

#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dhtjoin {

/// Which permutation ReorderGraph computes.
enum class ReorderKind {
  kNone,    ///< keep the current layout (ReorderGraph returns a copy)
  kDegree,  ///< descending total degree, ties by external id
  kRcm,     ///< reverse Cuthill–McKee on the symmetrized adjacency
};

/// Parses "none" | "degree" | "rcm" (the CLI's --reorder values).
Result<ReorderKind> ParseReorderKind(const std::string& name);

const char* ReorderKindName(ReorderKind kind);

/// Degree-descending permutation of `g`: returns new_to_old over g's
/// INTERNAL ids (entry i = the g-node that becomes node i). Ties break
/// by ascending external id, so the permutation is layout-independent.
std::vector<NodeId> DegreeOrder(const Graph& g);

/// Reverse Cuthill–McKee permutation of `g` (same conventions as
/// DegreeOrder). Components are seeded at their minimum-degree node;
/// neighbours expand in (degree, external id) order; the final order is
/// reversed, per RCM.
std::vector<NodeId> RcmOrder(const Graph& g);

/// Rebuilds both CSRs of `g` in the layout given by `new_to_old`
/// (entry i = the g-internal node that becomes internal node i) and
/// composes the external-id remap through any reordering `g` already
/// carries. Edge weights and transition probabilities are copied
/// bit-exactly, and rows keep their canonical (external-id) sort order,
/// so walks on the result are bit-identical to walks on `g`.
/// A permutation composing to the identity returns the insertion-
/// ordered graph (no remap, layout_epoch 0).
Result<Graph> ApplyNodePermutation(const Graph& g,
                                   std::span<const NodeId> new_to_old);

/// DegreeOrder/RcmOrder + ApplyNodePermutation in one call.
Result<Graph> ReorderGraph(const Graph& g, ReorderKind kind);

}  // namespace dhtjoin

#endif  // DHTJOIN_GRAPH_REORDER_H_
