#include "graph/graph.h"

#include <algorithm>

namespace dhtjoin {

bool Graph::HasEdge(NodeId u, NodeId v) const {
  if (!ContainsNode(u) || !ContainsNode(v)) return false;
  auto row = OutEdges(u);
  auto it = std::lower_bound(
      row.begin(), row.end(), v,
      [](const OutEdge& e, NodeId target) { return e.to < target; });
  return it != row.end() && it->to == v;
}

double Graph::EdgeWeight(NodeId u, NodeId v) const {
  if (!ContainsNode(u) || !ContainsNode(v)) return 0.0;
  auto row = OutEdges(u);
  auto it = std::lower_bound(
      row.begin(), row.end(), v,
      [](const OutEdge& e, NodeId target) { return e.to < target; });
  if (it == row.end() || it->to != v) return 0.0;
  return it->weight;
}

}  // namespace dhtjoin
