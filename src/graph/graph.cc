#include "graph/graph.h"

#include <algorithm>

namespace dhtjoin {

namespace {

/// lower_bound on a canonically-sorted out-row for the edge whose
/// target's CANONICAL id is that of internal node `v`.
std::span<const OutEdge>::iterator FindEdge(const Graph& g,
                                            std::span<const OutEdge> row,
                                            IntNodeId v) {
  const ExtNodeId key = g.ToExternal(v);
  return std::lower_bound(row.begin(), row.end(), key,
                          [&g](const OutEdge& e, ExtNodeId target_key) {
                            return g.ToExternal(IntNodeId(e.to)) < target_key;
                          });
}

}  // namespace

bool Graph::HasEdge(IntNodeId u, IntNodeId v) const {
  if (!ContainsNode(u) || !ContainsNode(v)) return false;
  auto row = OutEdges(u);
  auto it = FindEdge(*this, row, v);
  return it != row.end() && it->to == v.value();
}

double Graph::EdgeWeight(IntNodeId u, IntNodeId v) const {
  if (!ContainsNode(u) || !ContainsNode(v)) return 0.0;
  auto row = OutEdges(u);
  auto it = FindEdge(*this, row, v);
  if (it == row.end() || it->to != v.value()) return 0.0;
  return OutWeights(u)[static_cast<std::size_t>(it - row.begin())];
}

const ReachIndex& Graph::Reachability() const {
  DHTJOIN_CHECK(caches_ != nullptr);  // set by every Graph producer
  std::call_once(caches_->reach_once, [this] {
    ReachIndex& idx = caches_->reach;
    const NodeId n = num_nodes();
    idx.comp_of.assign(static_cast<std::size_t>(n), -1);
    std::vector<NodeId> stack;
    int num_comps = 0;
    for (NodeId start = 0; start < n; ++start) {
      if (idx.comp_of[static_cast<std::size_t>(start)] != -1) continue;
      const int32_t id = num_comps++;
      idx.comp_of[static_cast<std::size_t>(start)] = id;
      stack.push_back(start);
      while (!stack.empty()) {
        NodeId u = stack.back();
        stack.pop_back();
        auto visit = [&](NodeId v) {
          if (idx.comp_of[static_cast<std::size_t>(v)] == -1) {
            idx.comp_of[static_cast<std::size_t>(v)] = id;
            stack.push_back(v);
          }
        };
        for (const OutEdge& e : OutEdges(IntNodeId(u))) visit(e.to);
        for (const InEdge& e : InEdges(IntNodeId(u))) visit(e.from);
      }
    }
    // Group nodes by component via counting sort; ascending internal id
    // within each component (the outer loop below runs ascending).
    idx.comp_offsets.assign(static_cast<std::size_t>(num_comps) + 1, 0);
    idx.comp_edges.assign(static_cast<std::size_t>(num_comps), 0);
    for (NodeId u = 0; u < n; ++u) {
      const auto c = static_cast<std::size_t>(
          idx.comp_of[static_cast<std::size_t>(u)]);
      idx.comp_offsets[c + 1]++;
      idx.comp_edges[c] += OutDegree(IntNodeId(u));
    }
    for (int c = 0; c < num_comps; ++c) {
      idx.comp_offsets[static_cast<std::size_t>(c) + 1] +=
          idx.comp_offsets[static_cast<std::size_t>(c)];
    }
    idx.comp_nodes.resize(static_cast<std::size_t>(n));
    std::vector<int64_t> cursor(idx.comp_offsets.begin(),
                                idx.comp_offsets.end() - 1);
    for (NodeId u = 0; u < n; ++u) {
      const auto c = static_cast<std::size_t>(
          idx.comp_of[static_cast<std::size_t>(u)]);
      idx.comp_nodes[static_cast<std::size_t>(cursor[c]++)] = u;
    }
  });
  return caches_->reach;
}

SweepPlan Graph::PlanDenseSweep(std::span<const NodeId> seeds) const {
  const ReachIndex& idx = Reachability();
  // Dedup the seeds' component ids (ascending, for a deterministic
  // range order; values never depend on it).
  std::vector<int32_t> comps;
  comps.reserve(seeds.size());
  for (NodeId u : seeds) {
    DHTJOIN_DCHECK(ContainsRaw(u));
    comps.push_back(idx.comp_of[static_cast<std::size_t>(u)]);
  }
  std::sort(comps.begin(), comps.end());
  comps.erase(std::unique(comps.begin(), comps.end()), comps.end());

  SweepPlan plan;
  for (int32_t c : comps) {
    auto nodes = idx.Nodes(c);
    plan.rows += static_cast<int64_t>(nodes.size());
    plan.edges += idx.comp_edges[static_cast<std::size_t>(c)];
    plan.ranges.push_back(nodes);
  }
  plan.cost = plan.rows + plan.edges;
  plan.full = plan.rows == num_nodes();
  if (plan.full) plan.ranges.clear();
  return plan;
}

}  // namespace dhtjoin
