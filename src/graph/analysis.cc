#include "graph/analysis.h"

#include <algorithm>
#include <deque>

#include "util/hash.h"

namespace dhtjoin {

ComponentInfo ConnectedComponents(const Graph& g) {
  ComponentInfo info;
  const auto n = static_cast<std::size_t>(g.num_nodes());
  info.component.assign(n, -1);
  std::vector<int64_t> sizes;
  for (NodeId start = 0; start < g.num_nodes(); ++start) {
    if (info.component[static_cast<std::size_t>(start)] != -1) continue;
    int id = info.num_components++;
    int64_t size = 0;
    std::deque<NodeId> frontier = {start};
    info.component[static_cast<std::size_t>(start)] = id;
    while (!frontier.empty()) {
      NodeId u = frontier.front();
      frontier.pop_front();
      ++size;
      auto visit = [&](NodeId v) {
        if (info.component[static_cast<std::size_t>(v)] == -1) {
          info.component[static_cast<std::size_t>(v)] = id;
          frontier.push_back(v);
        }
      };
      for (const OutEdge& e : g.OutEdges(IntNodeId(u))) visit(e.to);
      for (const InEdge& e : g.InEdges(IntNodeId(u))) visit(e.from);
    }
    sizes.push_back(size);
  }
  for (int64_t s : sizes) info.largest = std::max(info.largest, s);
  return info;
}

double GlobalClusteringCoefficient(const Graph& g) {
  // Undirected view: neighbour sets merge out- and in-adjacency.
  const auto n = static_cast<std::size_t>(g.num_nodes());
  std::vector<std::vector<NodeId>> nbrs(n);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    std::vector<NodeId>& row = nbrs[static_cast<std::size_t>(u)];
    for (const OutEdge& e : g.OutEdges(IntNodeId(u))) row.push_back(e.to);
    for (const InEdge& e : g.InEdges(IntNodeId(u))) row.push_back(e.from);
    std::sort(row.begin(), row.end());
    row.erase(std::unique(row.begin(), row.end()), row.end());
    row.erase(std::remove(row.begin(), row.end(), u), row.end());
  }

  int64_t wedges = 0;
  int64_t closed = 0;  // ordered wedge closures; each triangle counts 6x
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto& row = nbrs[static_cast<std::size_t>(u)];
    auto deg = static_cast<int64_t>(row.size());
    wedges += deg * (deg - 1);  // ordered wedges centred at u
    for (std::size_t i = 0; i < row.size(); ++i) {
      for (std::size_t j = i + 1; j < row.size(); ++j) {
        const auto& ri = nbrs[static_cast<std::size_t>(row[i])];
        if (std::binary_search(ri.begin(), ri.end(), row[j])) {
          closed += 2;  // both orderings of (i, j)
        }
      }
    }
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(closed) / static_cast<double>(wedges);
}

DegreeStats ComputeDegreeStats(const Graph& g) {
  DegreeStats stats;
  if (g.num_nodes() == 0) return stats;
  std::vector<int64_t> degrees(static_cast<std::size_t>(g.num_nodes()));
  int64_t total = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    degrees[static_cast<std::size_t>(u)] = g.Degree(IntNodeId(u));
    total += g.Degree(IntNodeId(u));
  }
  std::sort(degrees.begin(), degrees.end());
  auto percentile = [&](double p) {
    auto idx = static_cast<std::size_t>(
        p * static_cast<double>(degrees.size() - 1));
    return static_cast<double>(degrees[idx]);
  };
  stats.min = degrees.front();
  stats.max = degrees.back();
  stats.mean = static_cast<double>(total) /
               static_cast<double>(g.num_nodes());
  stats.p50 = percentile(0.50);
  stats.p90 = percentile(0.90);
  stats.p99 = percentile(0.99);
  return stats;
}

}  // namespace dhtjoin
