/// \file graph/graph_io.h
/// \brief Text serialization of graphs and node sets.
///
/// Edge-list format, one edge per line:
///   <from> <to> [weight]
/// '#'-prefixed lines are comments. A header comment written by
/// SaveEdgeList records node count and directedness; LoadEdgeList also
/// accepts headerless files (node count inferred, directed, weight 1).
///
/// Node-set format, one set per line:
///   <name> <id> <id> ...

#ifndef DHTJOIN_GRAPH_GRAPH_IO_H_
#define DHTJOIN_GRAPH_GRAPH_IO_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/status.h"

namespace dhtjoin {

/// Writes `g` as a directed edge list with a "# dhtjoin-graph" header.
Status SaveEdgeList(const Graph& g, const std::string& path);

/// Reads an edge list. Malformed lines, out-of-range ids, and negative
/// weights produce IOError/InvalidArgument with the line number.
Result<Graph> LoadEdgeList(const std::string& path);

/// Writes node sets, one per line.
Status SaveNodeSets(const std::vector<NodeSet>& sets,
                    const std::string& path);

/// Reads node sets written by SaveNodeSets.
Result<std::vector<NodeSet>> LoadNodeSets(const std::string& path);

}  // namespace dhtjoin

#endif  // DHTJOIN_GRAPH_GRAPH_IO_H_
