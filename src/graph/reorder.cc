#include "graph/reorder.h"

#include <algorithm>
#include <numeric>

#include "util/rng.h"

namespace dhtjoin {

Result<ReorderKind> ParseReorderKind(const std::string& name) {
  if (name == "none") return ReorderKind::kNone;
  if (name == "degree") return ReorderKind::kDegree;
  if (name == "rcm") return ReorderKind::kRcm;
  return Status::InvalidArgument("unknown reorder kind '" + name +
                                 "' (expected none|degree|rcm)");
}

const char* ReorderKindName(ReorderKind kind) {
  switch (kind) {
    case ReorderKind::kNone:
      return "none";
    case ReorderKind::kDegree:
      return "degree";
    case ReorderKind::kRcm:
      return "rcm";
  }
  return "?";
}

std::vector<NodeId> DegreeOrder(const Graph& g) {
  std::vector<NodeId> order(static_cast<std::size_t>(g.num_nodes()));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&g](NodeId a, NodeId b) {
    const int64_t da = g.Degree(IntNodeId(a)), db = g.Degree(IntNodeId(b));
    if (da != db) return da > db;
    return g.ToExternal(IntNodeId(a)) < g.ToExternal(IntNodeId(b));
  });
  return order;
}

std::vector<NodeId> RcmOrder(const Graph& g) {
  const NodeId n = g.num_nodes();
  std::vector<NodeId> order;
  order.reserve(static_cast<std::size_t>(n));
  std::vector<uint8_t> visited(static_cast<std::size_t>(n), 0);

  // Component seeds in (degree, external id) order — the classic
  // min-degree start, deterministic across layouts.
  std::vector<NodeId> seeds(static_cast<std::size_t>(n));
  std::iota(seeds.begin(), seeds.end(), 0);
  std::sort(seeds.begin(), seeds.end(), [&g](NodeId a, NodeId b) {
    const int64_t da = g.Degree(IntNodeId(a)), db = g.Degree(IntNodeId(b));
    if (da != db) return da < db;
    return g.ToExternal(IntNodeId(a)) < g.ToExternal(IntNodeId(b));
  });

  std::vector<NodeId> nbrs;
  for (NodeId seed : seeds) {
    if (visited[static_cast<std::size_t>(seed)]) continue;
    visited[static_cast<std::size_t>(seed)] = 1;
    std::size_t head = order.size();
    order.push_back(seed);
    while (head < order.size()) {
      NodeId u = order[head++];
      // Symmetrized neighbourhood, deduped (rows are canonically
      // sorted, but out- and in-rows may share nodes).
      nbrs.clear();
      for (const OutEdge& e : g.OutEdges(IntNodeId(u))) nbrs.push_back(e.to);
      for (const InEdge& e : g.InEdges(IntNodeId(u))) nbrs.push_back(e.from);
      std::sort(nbrs.begin(), nbrs.end());
      nbrs.erase(std::unique(nbrs.begin(), nbrs.end()), nbrs.end());
      std::sort(nbrs.begin(), nbrs.end(), [&g](NodeId a, NodeId b) {
        const int64_t da = g.Degree(IntNodeId(a)), db = g.Degree(IntNodeId(b));
        if (da != db) return da < db;
        return g.ToExternal(IntNodeId(a)) < g.ToExternal(IntNodeId(b));
      });
      for (NodeId v : nbrs) {
        if (visited[static_cast<std::size_t>(v)]) continue;
        visited[static_cast<std::size_t>(v)] = 1;
        order.push_back(v);
      }
    }
  }
  std::reverse(order.begin(), order.end());
  return order;
}

Result<Graph> ApplyNodePermutation(const Graph& g,
                                   std::span<const NodeId> new_to_old) {
  const NodeId n = g.num_nodes();
  if (static_cast<NodeId>(new_to_old.size()) != n) {
    return Status::InvalidArgument(
        "permutation size " + std::to_string(new_to_old.size()) +
        " != num_nodes " + std::to_string(n));
  }
  // Validate it is a permutation of g's internal ids and build the
  // inverse (g-internal -> new internal).
  std::vector<NodeId> inv(static_cast<std::size_t>(n), kInvalidNode);
  for (NodeId i = 0; i < n; ++i) {
    const NodeId u = new_to_old[static_cast<std::size_t>(i)];
    if (u < 0 || u >= n || inv[static_cast<std::size_t>(u)] != kInvalidNode) {
      return Status::InvalidArgument(
          "new_to_old is not a permutation of [0, num_nodes)");
    }
    inv[static_cast<std::size_t>(u)] = i;
  }

  // Compose the external mapping through g's existing remap: external
  // ids are ALWAYS construction-time ids, no matter how many times a
  // graph is re-laid-out.
  std::vector<NodeId> ext_of_new(static_cast<std::size_t>(n));
  bool identity = true;
  for (NodeId i = 0; i < n; ++i) {
    const NodeId ext =
        g.ToExternal(IntNodeId(new_to_old[static_cast<std::size_t>(i)]))
            .value();
    ext_of_new[static_cast<std::size_t>(i)] = ext;
    identity = identity && ext == i;
  }

  Graph out;
  out.caches_ = std::make_shared<Graph::LazyCaches>();
  if (!identity) {
    out.new_to_old_ = ext_of_new;
    out.old_to_new_.assign(static_cast<std::size_t>(n), kInvalidNode);
    for (NodeId i = 0; i < n; ++i) {
      out.old_to_new_[static_cast<std::size_t>(
          ext_of_new[static_cast<std::size_t>(i)])] = i;
    }
    // Content-derived layout epoch (stable across processes).
    uint64_t state = 0x9e3779b97f4a7c15ULL ^ static_cast<uint64_t>(n);
    uint64_t epoch = 0xcbf29ce484222325ULL;
    for (NodeId ext : ext_of_new) {
      state ^= static_cast<uint64_t>(static_cast<uint32_t>(ext));
      epoch = SplitMix64(state) ^ (epoch * 0x100000001b3ULL);
    }
    out.layout_epoch_ = epoch == 0 ? 1 : epoch;
  }

  // Out-CSR: row i is g's row new_to_old[i] with targets relabelled.
  // g's rows are sorted by canonical target and relabelling preserves
  // canonical ids, so the copied order IS the canonical order; weights
  // and probabilities move bit-exactly.
  out.out_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  out.out_edges_.reserve(static_cast<std::size_t>(g.num_edges()));
  out.out_weights_.reserve(static_cast<std::size_t>(g.num_edges()));
  for (NodeId i = 0; i < n; ++i) {
    const NodeId src = new_to_old[static_cast<std::size_t>(i)];
    auto row = g.OutEdges(IntNodeId(src));
    auto weights = g.OutWeights(IntNodeId(src));
    for (std::size_t e = 0; e < row.size(); ++e) {
      out.out_edges_.push_back(
          OutEdge{inv[static_cast<std::size_t>(row[e].to)], row[e].prob});
      out.out_weights_.push_back(weights[e]);
    }
    out.out_offsets_[static_cast<std::size_t>(i) + 1] =
        static_cast<int64_t>(out.out_edges_.size());
  }

  // In-CSR via counting sort, visiting sources in CANONICAL order so
  // every in-row comes out sorted by canonical source.
  out.in_offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  for (const OutEdge& e : out.out_edges_) {
    out.in_offsets_[static_cast<std::size_t>(e.to) + 1]++;
  }
  for (NodeId u = 0; u < n; ++u) {
    out.in_offsets_[static_cast<std::size_t>(u) + 1] +=
        out.in_offsets_[static_cast<std::size_t>(u)];
  }
  out.in_edges_.resize(out.out_edges_.size());
  std::vector<int64_t> cursor(out.in_offsets_.begin(),
                              out.in_offsets_.end() - 1);
  for (NodeId ext = 0; ext < n; ++ext) {
    const NodeId u = out.ToInternal(ExtNodeId(ext)).value();
    const auto begin = out.out_offsets_[static_cast<std::size_t>(u)];
    const auto end = out.out_offsets_[static_cast<std::size_t>(u) + 1];
    for (auto e = begin; e < end; ++e) {
      const OutEdge& edge = out.out_edges_[static_cast<std::size_t>(e)];
      out.in_edges_[static_cast<std::size_t>(
          cursor[static_cast<std::size_t>(edge.to)]++)] =
          InEdge{u, edge.prob};
    }
  }
  out.BuildGatherArrays();
  return out;
}

Result<Graph> ReorderGraph(const Graph& g, ReorderKind kind) {
  switch (kind) {
    case ReorderKind::kNone: {
      std::vector<NodeId> id(static_cast<std::size_t>(g.num_nodes()));
      std::iota(id.begin(), id.end(), 0);
      return ApplyNodePermutation(g, id);
    }
    case ReorderKind::kDegree:
      return ApplyNodePermutation(g, DegreeOrder(g));
    case ReorderKind::kRcm:
      return ApplyNodePermutation(g, RcmOrder(g));
  }
  return Status::InvalidArgument("unknown reorder kind");
}

}  // namespace dhtjoin
