#include "graph/graph_io.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "graph/graph_builder.h"

namespace dhtjoin {

namespace {

std::string LineError(const std::string& path, int line,
                      const std::string& what) {
  return path + ":" + std::to_string(line) + ": " + what;
}

}  // namespace

Status SaveEdgeList(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  out << "# dhtjoin-graph nodes=" << g.num_nodes()
      << " edges=" << g.num_edges() << " directed=1\n";
  // EXTERNAL ids on disk: a reordered graph (graph/reorder.h)
  // round-trips to the insertion-ordered graph it is a relabeling of,
  // so files mean the same nodes regardless of the writer's layout.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto row = g.OutEdges(IntNodeId(u));
    auto weights = g.OutWeights(IntNodeId(u));
    for (std::size_t i = 0; i < row.size(); ++i) {
      out << g.ToExternal(IntNodeId(u)).value() << ' '
          << g.ToExternal(IntNodeId(row[i].to)).value() << ' '
          << weights[i] << '\n';
    }
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<Graph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");

  struct RawEdge {
    NodeId u, v;
    double w;
  };
  std::vector<RawEdge> raw;
  NodeId declared_nodes = -1;
  NodeId max_node = -1;

  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (line[0] == '#') {
      // Optional header: "# dhtjoin-graph nodes=N ...".
      auto pos = line.find("nodes=");
      if (pos != std::string::npos) {
        const char* digits = line.c_str() + pos + 6;
        char* end = nullptr;
        long long declared = std::strtoll(digits, &end, 10);
        if (end == digits || declared < 0) {
          return Status::IOError(
              LineError(path, line_no, "malformed nodes= header"));
        }
        declared_nodes = static_cast<NodeId>(declared);
      }
      continue;
    }
    std::istringstream ss(line);
    long long u, v;
    double w = 1.0;
    if (!(ss >> u >> v)) {
      return Status::IOError(LineError(path, line_no, "expected '<u> <v>'"));
    }
    if (!(ss >> w)) {
      // The third field is optional, but if present it must parse: a
      // truncated or garbled weight is a malformed file, not weight 1.
      if (!ss.eof()) {
        return Status::IOError(
            LineError(path, line_no, "malformed edge weight"));
      }
      w = 1.0;
      ss.clear();
    }
    std::string extra;
    if (ss >> extra) {
      return Status::IOError(LineError(
          path, line_no, "trailing garbage after edge: '" + extra + "'"));
    }
    if (u < 0 || v < 0) {
      return Status::IOError(LineError(path, line_no, "negative node id"));
    }
    if (!(w > 0.0)) {
      return Status::IOError(
          LineError(path, line_no, "non-positive edge weight"));
    }
    raw.push_back(RawEdge{static_cast<NodeId>(u), static_cast<NodeId>(v), w});
    max_node = std::max({max_node, static_cast<NodeId>(u),
                         static_cast<NodeId>(v)});
  }

  NodeId n = declared_nodes >= 0 ? declared_nodes : max_node + 1;
  if (max_node >= n) {
    return Status::IOError(path + ": edge references node " +
                           std::to_string(max_node) +
                           " but header declares only " + std::to_string(n));
  }
  GraphBuilder builder(n, /*undirected=*/false);
  for (const auto& e : raw) {
    DHTJOIN_RETURN_NOT_OK(builder.AddEdge(e.u, e.v, e.w));
  }
  return builder.Build();
}

Status SaveNodeSets(const std::vector<NodeSet>& sets,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open '" + path + "' for writing");
  for (const NodeSet& s : sets) {
    out << s.name();
    for (ExtNodeId u : s) out << ' ' << u.value();
    out << '\n';
  }
  out.flush();
  if (!out) return Status::IOError("write to '" + path + "' failed");
  return Status::OK();
}

Result<std::vector<NodeSet>> LoadNodeSets(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::vector<NodeSet> sets;
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string name;
    if (!(ss >> name)) {
      return Status::IOError(LineError(path, line_no, "missing set name"));
    }
    std::vector<NodeId> nodes;
    long long id;
    while (ss >> id) {
      if (id < 0) {
        return Status::IOError(LineError(path, line_no, "negative node id"));
      }
      nodes.push_back(static_cast<NodeId>(id));
    }
    if (!ss.eof()) {
      // The loop stopped on a non-numeric token, not end of line:
      // refusing beats silently dropping the tail of the set.
      return Status::IOError(
          LineError(path, line_no, "malformed node id in set '" + name + "'"));
    }
    sets.emplace_back(name, std::move(nodes));
  }
  return sets;
}

}  // namespace dhtjoin
