#include "graph/node_set.h"

#include <algorithm>

namespace dhtjoin {

NodeSet::NodeSet(std::string name, std::vector<NodeId> nodes)
    : NodeSet(std::move(name), WrapExtIds(nodes)) {}

NodeSet::NodeSet(std::string name, std::vector<ExtNodeId> nodes)
    : name_(std::move(name)), nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
}

bool NodeSet::Contains(ExtNodeId u) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), u);
}

Status NodeSet::Validate(const Graph& g) const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("node set '" + name_ + "' is empty");
  }
  for (ExtNodeId u : nodes_) {
    if (!g.ContainsNode(u)) {
      return Status::InvalidArgument("node set '" + name_ +
                                     "' references node " +
                                     std::to_string(u.value()) +
                                     " absent from the graph");
    }
  }
  return Status::OK();
}

NodeSet NodeSet::TopByDegree(const Graph& g, std::size_t count) const {
  std::vector<ExtNodeId> sorted = nodes_;
  // Members are external ids; Degree is layout-addressed.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&g](ExtNodeId a, ExtNodeId b) {
                     return g.Degree(g.ToInternal(a)) >
                            g.Degree(g.ToInternal(b));
                   });
  if (sorted.size() > count) sorted.resize(count);
  return NodeSet(name_ + "-top" + std::to_string(count), std::move(sorted));
}

}  // namespace dhtjoin
