#include "graph/node_set.h"

#include <algorithm>

namespace dhtjoin {

NodeSet::NodeSet(std::string name, std::vector<NodeId> nodes)
    : name_(std::move(name)), nodes_(std::move(nodes)) {
  std::sort(nodes_.begin(), nodes_.end());
  nodes_.erase(std::unique(nodes_.begin(), nodes_.end()), nodes_.end());
}

bool NodeSet::Contains(NodeId u) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), u);
}

Status NodeSet::Validate(const Graph& g) const {
  if (nodes_.empty()) {
    return Status::InvalidArgument("node set '" + name_ + "' is empty");
  }
  for (NodeId u : nodes_) {
    if (!g.ContainsNode(u)) {
      return Status::InvalidArgument("node set '" + name_ +
                                     "' references node " +
                                     std::to_string(u) +
                                     " absent from the graph");
    }
  }
  return Status::OK();
}

NodeSet NodeSet::TopByDegree(const Graph& g, std::size_t count) const {
  std::vector<NodeId> sorted = nodes_;
  // Members are external ids; Degree is layout-addressed.
  std::stable_sort(sorted.begin(), sorted.end(),
                   [&g](NodeId a, NodeId b) {
                     return g.Degree(g.ToInternal(a)) >
                            g.Degree(g.ToInternal(b));
                   });
  if (sorted.size() > count) sorted.resize(count);
  return NodeSet(name_ + "-top" + std::to_string(count), std::move(sorted));
}

}  // namespace dhtjoin
