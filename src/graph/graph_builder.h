/// \file graph/graph_builder.h
/// \brief Mutable accumulator that produces an immutable Graph.

// dhtlint: allow-file(raw-id-param): construction-time ingestion —
// ids entering the builder are raw external by definition; no Graph
// (and hence no remap or typed space) exists yet.

#ifndef DHTJOIN_GRAPH_GRAPH_BUILDER_H_
#define DHTJOIN_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace dhtjoin {

/// Accumulates edges, then finalizes into a CSR Graph.
///
/// Duplicate edges have their weights summed (the DBLP co-authorship
/// semantics: one paper = +1 weight). Self-loops are rejected: a
/// first-hit random walk never follows (v, v) meaningfully and the
/// paper's graphs contain none.
class GraphBuilder {
 public:
  /// \param num_nodes total node count; node ids are [0, num_nodes).
  /// \param undirected when true, AddEdge(u, v, w) also adds (v, u, w).
  explicit GraphBuilder(NodeId num_nodes, bool undirected = false);

  /// Adds edge (u, v) with weight `w` (> 0). Ids must be in range;
  /// self-loops and non-positive weights return InvalidArgument.
  Status AddEdge(NodeId u, NodeId v, double w = 1.0);

  /// Number of AddEdge calls accepted so far (before dedup).
  int64_t num_pending_edges() const {
    return static_cast<int64_t>(edges_.size());
  }

  NodeId num_nodes() const { return num_nodes_; }
  bool undirected() const { return undirected_; }

  /// True when (u, v) was added (directed view). O(pending edges) — only
  /// intended for generator-side duplicate avoidance via hash, so the
  /// generators keep their own sets; exposed for tests.
  bool HasPendingEdge(NodeId u, NodeId v) const;

  /// Finalizes: dedups (summing weights), sorts rows, computes transition
  /// probabilities, builds the in-adjacency. The builder is left empty.
  Result<Graph> Build();

 private:
  struct PendingEdge {
    NodeId from;
    NodeId to;
    double weight;
  };

  NodeId num_nodes_;
  bool undirected_;
  std::vector<PendingEdge> edges_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_GRAPH_GRAPH_BUILDER_H_
