/// \file graph/analysis.h
/// \brief Structural statistics of a graph.
///
/// Used three ways: by tests to verify that the dataset generators
/// actually produce the structural properties DESIGN.md claims
/// (clustering, connectivity, heavy-tailed degrees); by the CLI `stats`
/// subcommand; and by users sizing a join workload.

#ifndef DHTJOIN_GRAPH_ANALYSIS_H_
#define DHTJOIN_GRAPH_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dhtjoin {

/// Weakly connected components (edge direction ignored).
struct ComponentInfo {
  /// component id per node, in [0, num_components).
  std::vector<int> component;
  int num_components = 0;
  /// size of the largest component.
  int64_t largest = 0;
};

ComponentInfo ConnectedComponents(const Graph& g);

/// Global clustering coefficient: 3 * triangles / wedges, computed over
/// the undirected view of the graph (an edge in either direction counts
/// once). Returns 0 for graphs without wedges.
double GlobalClusteringCoefficient(const Graph& g);

/// Summary statistics of the total-degree distribution.
struct DegreeStats {
  int64_t min = 0;
  int64_t max = 0;
  double mean = 0.0;
  double p50 = 0.0;  ///< median
  double p90 = 0.0;
  double p99 = 0.0;
};

DegreeStats ComputeDegreeStats(const Graph& g);

}  // namespace dhtjoin

#endif  // DHTJOIN_GRAPH_ANALYSIS_H_
