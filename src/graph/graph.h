/// \file graph/graph.h
/// \brief Immutable directed weighted graph in CSR form.
///
/// This is the data model of the paper (Sec III-A): a directed, weighted
/// graph G = (V_G, E_G) where w_uv is the weight of edge (u, v) and the
/// random-walk transition probability is
///   p_uv = w_uv / sum_{v' in O_u} w_uv' .
/// The graph stores out-adjacency (targets + weights + precomputed
/// transition probabilities) and a transposed in-adjacency (sources +
/// the SAME transition probabilities, p_uv on the row of v) in
/// compressed sparse row layout. The transposed rows let a backward
/// propagation step push mass from a sparse frontier — next[u] +=
/// p_uv * mass[v] over only the in-edges of frontier nodes v — instead
/// of gathering over every node's out-row (see dht/propagate.h).
///
/// Construct via GraphBuilder (graph/graph_builder.h) or the dataset
/// generators (datasets/).

#ifndef DHTJOIN_GRAPH_GRAPH_H_
#define DHTJOIN_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.h"

namespace dhtjoin {

/// Dense node identifier in [0, Graph::num_nodes()).
using NodeId = int32_t;

/// Invalid/absent node marker.
inline constexpr NodeId kInvalidNode = -1;

/// One outgoing arc: target node, raw weight, transition probability.
struct OutEdge {
  NodeId to;
  double weight;
  double prob;  ///< p_uv = weight / total out-weight of the source
};

/// One incoming arc of node v: the source u and p_uv — the transition
/// probability of the underlying (u, v) edge. Kept lean (16 bytes) so
/// backward frontier pushes stream the minimum number of cache lines.
struct InEdge {
  NodeId from;
  double prob;  ///< p_uv of the edge (from, v)
};

/// Immutable CSR graph. Instances are cheap to move, expensive to copy.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes |V_G|.
  NodeId num_nodes() const { return static_cast<NodeId>(out_offsets_.empty()
                                 ? 0
                                 : out_offsets_.size() - 1); }

  /// Number of directed edges |E_G|.
  int64_t num_edges() const { return static_cast<int64_t>(out_edges_.size()); }

  /// Outgoing arcs of `u` (O_u) with weights and transition probabilities.
  std::span<const OutEdge> OutEdges(NodeId u) const {
    DHTJOIN_DCHECK(u >= 0 && u < num_nodes());
    return {out_edges_.data() + out_offsets_[u],
            out_edges_.data() + out_offsets_[u + 1]};
  }

  /// Incoming arcs of `u` (sources I_u with their transition
  /// probabilities p_{source,u}).
  std::span<const InEdge> InEdges(NodeId u) const {
    DHTJOIN_DCHECK(u >= 0 && u < num_nodes());
    return {in_edges_.data() + in_offsets_[u],
            in_edges_.data() + in_offsets_[u + 1]};
  }

  int64_t OutDegree(NodeId u) const {
    DHTJOIN_DCHECK(u >= 0 && u < num_nodes());
    return out_offsets_[u + 1] - out_offsets_[u];
  }

  int64_t InDegree(NodeId u) const {
    DHTJOIN_DCHECK(u >= 0 && u < num_nodes());
    return in_offsets_[u + 1] - in_offsets_[u];
  }

  /// Total degree (in + out); the generators use it for hub selection.
  int64_t Degree(NodeId u) const { return OutDegree(u) + InDegree(u); }

  /// True when (u, v) is an edge. O(log OutDegree(u)) — out-edges are
  /// sorted by target within each row.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Weight of edge (u, v); 0 when absent.
  double EdgeWeight(NodeId u, NodeId v) const;

  bool ContainsNode(NodeId u) const { return u >= 0 && u < num_nodes(); }

 private:
  friend class GraphBuilder;

  std::vector<int64_t> out_offsets_;  // size num_nodes()+1
  std::vector<OutEdge> out_edges_;    // sorted by target within each row
  std::vector<int64_t> in_offsets_;   // size num_nodes()+1
  std::vector<InEdge> in_edges_;      // sorted by source within each row
};

}  // namespace dhtjoin

#endif  // DHTJOIN_GRAPH_GRAPH_H_
