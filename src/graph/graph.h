/// \file graph/graph.h
/// \brief Immutable directed weighted graph in CSR form.
///
/// This is the data model of the paper (Sec III-A): a directed, weighted
/// graph G = (V_G, E_G) where w_uv is the weight of edge (u, v) and the
/// random-walk transition probability is
///   p_uv = w_uv / sum_{v' in O_u} w_uv' .
/// The graph stores out-adjacency (targets + weights + precomputed
/// transition probabilities) and a transposed in-adjacency (sources +
/// the SAME transition probabilities, p_uv on the row of v) in
/// compressed sparse row layout. The transposed rows let a backward
/// propagation step push mass from a sparse frontier — next[u] +=
/// p_uv * mass[v] over only the in-edges of frontier nodes v — instead
/// of gathering over every node's out-row (see dht/propagate.h).
///
/// PHYSICAL LAYOUT vs EXTERNAL IDS (DESIGN.md §7). A Graph may carry a
/// cache-conscious node permutation (graph/reorder.h): the CSR then
/// stores nodes in a degree- or RCM-ordered layout, and the graph keeps
/// old<->new remap tables. Two id spaces follow:
///  * INTERNAL ids index the CSR arrays (and every engine's mass
///    vectors). All id-taking accessors on this class — OutEdges,
///    InEdges, degrees, HasEdge — speak internal ids.
///  * EXTERNAL ids are the construction-time ids: what datasets,
///    query node sets, TopK results, and cache keys mean by a "node".
/// The walkers and batch engines translate external -> internal at
/// their public boundaries (and back for anything they emit), so every
/// layer above them is layout-oblivious. On a never-reordered graph the
/// two spaces coincide and every translation is the identity.
///
/// Determinism across layouts: edge rows are stored sorted by the
/// CANONICAL (external) id of the other endpoint, and the propagation
/// engines keep their support lists sorted by canonical id
/// (SortCanonical). Floating-point accumulation order is therefore THE
/// SAME in every layout, which makes scores on a reordered graph
/// bit-identical to the insertion-ordered one — reordering is purely a
/// physical optimization (DESIGN.md §7).
///
/// Construct via GraphBuilder (graph/graph_builder.h), the dataset
/// generators (datasets/), or ReorderGraph (graph/reorder.h).

#ifndef DHTJOIN_GRAPH_GRAPH_H_
#define DHTJOIN_GRAPH_GRAPH_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/node_id.h"
#include "util/check.h"
#include "util/status.h"

namespace dhtjoin {

/// One outgoing arc: target node and transition probability. Kept lean
/// (16 bytes, like InEdge) because this array IS the inner loop of
/// every walk: the dense backward gather and all forward pushes stream
/// it end to end, and they only ever read (to, prob). Raw edge weights
/// — consumed by nothing hotter than EdgeWeight lookups, IO, and the
/// generators — live in a parallel cold array (Graph::OutWeights), so
/// shrinking this struct cut the hot edge stream by a third at
/// unchanged total memory.
struct OutEdge {
  NodeId to;
  double prob;  ///< p_uv = weight / total out-weight of the source
};

/// One incoming arc of node v: the source u and p_uv — the transition
/// probability of the underlying (u, v) edge. Kept lean (16 bytes) so
/// backward frontier pushes stream the minimum number of cache lines.
struct InEdge {
  NodeId from;
  double prob;  ///< p_uv of the edge (from, v)
};

/// Reverse-reachability row lists at weak-component granularity: every
/// walk's mass is confined to the weak components of its seeds, so a
/// dense sweep never needs to touch rows outside them. Built lazily and
/// cached on the Graph (thread-safe); internal node ids throughout.
struct ReachIndex {
  std::vector<int32_t> comp_of;       ///< internal node -> component id
  std::vector<int64_t> comp_offsets;  ///< comp c -> [c, c+1) into comp_nodes
  std::vector<NodeId> comp_nodes;     ///< grouped by comp, ascending ids
  std::vector<int64_t> comp_edges;    ///< out-edge count per component

  int num_components() const {
    return static_cast<int>(comp_edges.size());
  }
  std::span<const NodeId> Nodes(int comp) const {
    return {comp_nodes.data() + comp_offsets[static_cast<std::size_t>(comp)],
            comp_nodes.data() +
                comp_offsets[static_cast<std::size_t>(comp) + 1]};
  }
};

/// Row set a dense sweep must cover for one walk: either the full graph
/// (`full`, iterate 0..n-1 directly — the fast path) or the union of
/// the walk's seed components as ranges into ReachIndex::comp_nodes.
/// `cost` (covered edges + covered rows) is what the adaptive policy
/// compares a sparse step against — a saturated-but-local walk flips to
/// the (cheap, restricted) dense sweep instead of staying sparse
/// forever against the global O(n + m) estimate.
struct SweepPlan {
  bool full = true;
  int64_t rows = 0;
  int64_t edges = 0;
  int64_t cost = 0;  ///< edges + rows
  std::vector<std::span<const NodeId>> ranges;  ///< empty when `full`

  /// Invokes fn(u) for every covered row, ascending internal id within
  /// each range. Row order never affects values (per-row sums are
  /// independent); support lists are re-sorted canonically afterwards.
  template <typename Fn>
  // dhtlint: allow(raw-id-param): row COUNT, not a node id
  void ForEachRow(NodeId num_nodes, Fn&& fn) const {
    if (full) {
      for (NodeId u = 0; u < num_nodes; ++u) fn(u);
      return;
    }
    for (std::span<const NodeId> range : ranges) {
      for (NodeId u : range) fn(u);
    }
  }
};

/// Immutable CSR graph. Instances are cheap to move, expensive to copy.
class Graph {
 public:
  Graph() = default;

  /// Number of nodes |V_G|.
  NodeId num_nodes() const { return static_cast<NodeId>(out_offsets_.empty()
                                 ? 0
                                 : out_offsets_.size() - 1); }

  /// Number of directed edges |E_G|.
  int64_t num_edges() const { return static_cast<int64_t>(out_edges_.size()); }

  /// Outgoing arcs of internal node `u` (O_u) with transition
  /// probabilities, sorted by canonical target id.
  std::span<const OutEdge> OutEdges(IntNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return {out_edges_.data() + out_offsets_[u.value()],
            out_edges_.data() + out_offsets_[u.value() + 1]};
  }

  /// Raw weights of `u`'s outgoing arcs, positionally aligned with
  /// OutEdges(u) (the cold half of the out-adjacency; see OutEdge).
  std::span<const double> OutWeights(IntNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return {out_weights_.data() + out_offsets_[u.value()],
            out_weights_.data() + out_offsets_[u.value() + 1]};
  }

  /// SoA mirror of OutEdges(u): targets only, positionally aligned with
  /// OutProbs(u). The dense backward gather streams the whole out-CSR
  /// end to end and reads nothing but (to, prob); the split arrays cut
  /// its stream from 16 padded bytes/edge to 12 (4 + 8) — see the
  /// ROADMAP item gated in bench_reorder. Sparse pushes keep the AoS
  /// OutEdges stream: their per-row access touches one row at a time,
  /// where a second array would only double the cache-line traffic.
  std::span<const NodeId> OutTargets(IntNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return {gather_to_.data() + out_offsets_[u.value()],
            gather_to_.data() + out_offsets_[u.value() + 1]};
  }

  /// SoA mirror of OutEdges(u): transition probabilities only.
  std::span<const double> OutProbs(IntNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return {gather_prob_.data() + out_offsets_[u.value()],
            gather_prob_.data() + out_offsets_[u.value() + 1]};
  }

  /// Incoming arcs of internal node `u` (sources I_u with their
  /// transition probabilities p_{source,u}), sorted by canonical source.
  std::span<const InEdge> InEdges(IntNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return {in_edges_.data() + in_offsets_[u.value()],
            in_edges_.data() + in_offsets_[u.value() + 1]};
  }

  int64_t OutDegree(IntNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return out_offsets_[u.value() + 1] - out_offsets_[u.value()];
  }

  int64_t InDegree(IntNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return in_offsets_[u.value() + 1] - in_offsets_[u.value()];
  }

  /// Total degree (in + out); the generators use it for hub selection.
  int64_t Degree(IntNodeId u) const { return OutDegree(u) + InDegree(u); }

  /// True when (u, v) is an edge (internal ids). O(log OutDegree(u)) —
  /// out-edges are sorted by canonical target within each row.
  bool HasEdge(IntNodeId u, IntNodeId v) const;

  /// Weight of edge (u, v) (internal ids); 0 when absent.
  double EdgeWeight(IntNodeId u, IntNodeId v) const;

  /// Membership tests. Both spaces cover the same dense range
  /// [0, num_nodes()), so each overload is the same range check — the
  /// typed parameter documents (and enforces) which space the caller
  /// holds.
  bool ContainsNode(ExtNodeId u) const { return ContainsRaw(u.value()); }
  bool ContainsNode(IntNodeId u) const { return ContainsRaw(u.value()); }

  // ------------------------------------------------------- layout/remap

  /// True when the physical layout differs from construction order.
  bool is_reordered() const { return !new_to_old_.empty(); }

  /// Internal (layout) id of external node `u`; identity when the graph
  /// was never reordered. With ToExternal below, the ONLY sanctioned
  /// crossing between the two id spaces (DESIGN.md §10).
  IntNodeId ToInternal(ExtNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return IntNodeId(old_to_new_.empty()
                         ? u.value()
                         : old_to_new_[static_cast<std::size_t>(u.value())]);
  }

  /// External (construction-time) id of internal node `u`.
  ExtNodeId ToExternal(IntNodeId u) const {
    DHTJOIN_DCHECK(ContainsRaw(u.value()));
    return ExtNodeId(new_to_old_.empty()
                         ? u.value()
                         : new_to_old_[static_cast<std::size_t>(u.value())]);
  }

  /// Sorts internal node ids by CANONICAL (external) id — the engine-
  /// wide summation order that keeps scores bit-identical across
  /// layouts. A plain ascending sort on never-reordered graphs.
  void SortCanonical(std::vector<NodeId>& nodes) const {
    if (new_to_old_.empty()) {
      std::sort(nodes.begin(), nodes.end());
      return;
    }
    const NodeId* key = new_to_old_.data();
    std::sort(nodes.begin(), nodes.end(), [key](NodeId a, NodeId b) {
      return key[static_cast<std::size_t>(a)] <
             key[static_cast<std::size_t>(b)];
    });
  }

  /// Layout identity: 0 for the insertion-ordered layout, else a
  /// content hash of the permutation. Two graphs whose CSR bits happen
  /// to coincide but whose node ids MEAN different external nodes (a
  /// permutation of a symmetric graph) carry different epochs — the
  /// serving cache mixes this into GraphFingerprint so cached walk
  /// states never alias across layouts.
  uint64_t layout_epoch() const { return layout_epoch_; }

  /// Remap tables; empty spans on a never-reordered graph.
  std::span<const NodeId> new_to_old() const { return new_to_old_; }
  std::span<const NodeId> old_to_new() const { return old_to_new_; }

  /// Bulk external -> internal translation for engine entry points:
  /// returns the raw bits of `ids` unchanged on a never-reordered graph
  /// (zero copies; the spaces coincide), else fills `storage` with the
  /// translated ids and returns it. The result is RAW internal ids —
  /// the engines index their mass vectors with them on every line, so
  /// the typed wrapper stops at this boundary (graph/node_id.h).
  std::span<const NodeId> MapToInternal(std::span<const ExtNodeId> ids,
                                        std::vector<NodeId>& storage) const {
    if (old_to_new_.empty()) return RawIds(ids);
    storage.resize(ids.size());
    for (std::size_t i = 0; i < ids.size(); ++i) {
      storage[i] = old_to_new_[static_cast<std::size_t>(ids[i].value())];
    }
    return storage;
  }

  // ---------------------------------------------------- reachability

  /// Weak-component reachability index, built on first use and cached
  /// (thread-safe; copies of this Graph share one index).
  const ReachIndex& Reachability() const;

  /// Dense-sweep plan for a walk seeded at `seeds` (INTERNAL ids): the
  /// union of the seeds' weak components. Mass can never leave them in
  /// either direction, so a dense step restricted to the plan's rows is
  /// bit-identical to the full sweep.
  SweepPlan PlanDenseSweep(std::span<const NodeId> seeds) const;

  /// The unrestricted plan (all rows; cost n + m).
  SweepPlan FullSweepPlan() const {
    SweepPlan plan;
    plan.full = true;
    plan.rows = num_nodes();
    plan.edges = num_edges();
    plan.cost = plan.rows + plan.edges;
    return plan;
  }

 private:
  friend class GraphBuilder;
  friend Result<Graph> ApplyNodePermutation(const Graph& g,
                                            std::span<const NodeId>
                                                new_to_old);

  /// Space-agnostic range check backing both ContainsNode overloads and
  /// the accessor DCHECKs (both spaces are dense in [0, num_nodes())).
  // dhtlint: allow(raw-id-param): deliberately space-agnostic range
  // check (both spaces are dense in [0, num_nodes()))
  bool ContainsRaw(NodeId u) const { return u >= 0 && u < num_nodes(); }

  /// Lazily-built caches; allocated at Build()/reorder time so the
  /// once_flag exists before any thread can race on it. shared_ptr:
  /// copies of a Graph share the cache (same layout, same contents).
  struct LazyCaches {
    std::once_flag reach_once;
    ReachIndex reach;
  };

  /// Rebuilds the SoA gather mirrors (gather_to_, gather_prob_) from
  /// out_edges_; every Graph producer calls this once after the out-CSR
  /// is final.
  void BuildGatherArrays() {
    gather_to_.resize(out_edges_.size());
    gather_prob_.resize(out_edges_.size());
    for (std::size_t e = 0; e < out_edges_.size(); ++e) {
      gather_to_[e] = out_edges_[e].to;
      gather_prob_[e] = out_edges_[e].prob;
    }
  }

  std::vector<int64_t> out_offsets_;  // size num_nodes()+1
  std::vector<OutEdge> out_edges_;    // sorted by canonical target per row
  std::vector<double> out_weights_;   // positionally aligned with out_edges_
  std::vector<NodeId> gather_to_;     // SoA mirrors of out_edges_ for the
  std::vector<double> gather_prob_;   // dense gather (see OutTargets)
  std::vector<int64_t> in_offsets_;   // size num_nodes()+1
  std::vector<InEdge> in_edges_;      // sorted by canonical source per row
  std::vector<NodeId> new_to_old_;    // empty = insertion layout
  std::vector<NodeId> old_to_new_;
  uint64_t layout_epoch_ = 0;
  std::shared_ptr<LazyCaches> caches_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_GRAPH_GRAPH_H_
