/// \file graph/node_id.h
/// \brief Strongly-typed node identifiers for the two id spaces.
///
/// The repo has exactly two node-id spaces (DESIGN.md §7, §10):
///  * EXTERNAL ids — construction-time ids. What datasets, node sets,
///    query specs, TopK results, CLI arguments, and serving cache keys
///    mean by "a node". Stable across physical reorderings.
///  * INTERNAL ids — physical CSR positions after an optional
///    cache-conscious reordering (graph/reorder.h). What the engines'
///    mass vectors and the Graph CSR accessors index by.
///
/// Since PR 4 made the layout a free variable, both spaces were the
/// same `int32_t`, so the compiler could not catch an external id
/// handed to an internal-space API (or vice versa) — a bug class that
/// silently reads the wrong node's edges on any reordered graph.
/// `ExtNodeId` / `IntNodeId` below make that mixing a COMPILE ERROR:
///
///  * construction from a raw integer is explicit;
///  * there is no implicit conversion back to an integer, and no
///    conversion of any kind between the two spaces;
///  * comparison operators exist only within one space;
///  * the only sanctioned space crossing is `Graph::ToInternal` /
///    `Graph::ToExternal` (and the bulk `Graph::MapToInternal`).
///
/// Both wrappers are zero-cost: same size, alignment, and triviality
/// as the raw `NodeId` (static_asserts below), so spans of them can be
/// reinterpreted over contiguous raw-id storage (`RawIds`, `AsExtIds`,
/// `AsIntIds`) without copying — hot interiors keep raw `NodeId`
/// arrays, the typed views exist at the API boundary only.
///
/// Layering note: code BELOW the remap boundary (Propagator, the
/// batch-core kernels, SweepPlan, ReachIndex) deliberately stays on
/// raw `NodeId` — everything there is internal-space by construction
/// and indexes vectors on every line. The strong types guard the
/// boundaries where the two spaces meet, not the single-space inner
/// loops.

#ifndef DHTJOIN_GRAPH_NODE_ID_H_
#define DHTJOIN_GRAPH_NODE_ID_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <span>
#include <type_traits>
#include <vector>

namespace dhtjoin {

/// Dense raw node identifier in [0, Graph::num_nodes()). The storage
/// type of both id spaces; by itself it names no space.
using NodeId = int32_t;

/// Invalid/absent node marker.
inline constexpr NodeId kInvalidNode = -1;

namespace node_id_internal {
struct ExtTag {};
struct IntTag {};
}  // namespace node_id_internal

/// Zero-cost strongly-typed node id; see file comment. `Tag` selects
/// the id space, and nothing converts between spaces implicitly or
/// explicitly — only Graph's remap accessors cross.
template <class Tag>
class StrongNodeId {
 public:
  /// Default-constructs the invalid id.
  constexpr StrongNodeId() = default;

  /// Explicit wrap of a raw id. This is the sanctioned ingestion point
  /// for ids entering the typed world (parsers, generators, tests);
  /// wrapping a value that belongs to the OTHER space is still a logic
  /// bug the types cannot catch — wrap at the point of origin, where
  /// the space is unambiguous.
  // dhtlint: allow(raw-id-param): the sanctioned explicit wrap itself
  constexpr explicit StrongNodeId(NodeId raw) : v_(raw) {}

  /// Raw value, for indexing storage owned by this id's space.
  constexpr NodeId value() const { return v_; }

  constexpr bool valid() const { return v_ >= 0; }

  /// Total order within the space (raw-id order).
  friend constexpr auto operator<=>(StrongNodeId, StrongNodeId) = default;

 private:
  NodeId v_ = kInvalidNode;
};

/// External (construction-time, layout-stable) node id.
using ExtNodeId = StrongNodeId<node_id_internal::ExtTag>;
/// Internal (physical CSR layout) node id.
using IntNodeId = StrongNodeId<node_id_internal::IntTag>;

inline constexpr ExtNodeId kInvalidExtNode{};
inline constexpr IntNodeId kInvalidIntNode{};

// Zero-cost layout guarantees that make the span reinterpretation
// below well-defined in practice (same representation as NodeId).
static_assert(sizeof(ExtNodeId) == sizeof(NodeId));
static_assert(alignof(ExtNodeId) == alignof(NodeId));
static_assert(std::is_trivially_copyable_v<ExtNodeId>);
static_assert(std::is_standard_layout_v<ExtNodeId>);
static_assert(sizeof(IntNodeId) == sizeof(NodeId));
static_assert(std::is_trivially_copyable_v<IntNodeId>);

// The safety contract: no implicit construction, no conversion to
// int, no cross-space conversion in either direction.
static_assert(!std::is_convertible_v<NodeId, ExtNodeId>);
static_assert(!std::is_convertible_v<NodeId, IntNodeId>);
static_assert(!std::is_convertible_v<ExtNodeId, NodeId>);
static_assert(!std::is_convertible_v<IntNodeId, NodeId>);
static_assert(!std::is_convertible_v<ExtNodeId, IntNodeId>);
static_assert(!std::is_convertible_v<IntNodeId, ExtNodeId>);
static_assert(!std::is_constructible_v<ExtNodeId, IntNodeId>);
static_assert(!std::is_constructible_v<IntNodeId, ExtNodeId>);

/// Reinterpret a typed id span as its raw storage (zero copy). For
/// handing a typed boundary argument to raw-id interior code.
template <class Tag>
inline std::span<const NodeId> RawIds(std::span<const StrongNodeId<Tag>> ids) {
  return {reinterpret_cast<const NodeId*>(ids.data()), ids.size()};
}
template <class Tag>
inline std::span<const NodeId> RawIds(
    const std::vector<StrongNodeId<Tag>>& ids) {
  return RawIds(std::span<const StrongNodeId<Tag>>(ids));
}

/// Reinterpret raw contiguous ids as EXTERNAL-typed (zero copy). Only
/// for storage that is documented to hold external ids.
inline std::span<const ExtNodeId> AsExtIds(std::span<const NodeId> raw) {
  return {reinterpret_cast<const ExtNodeId*>(raw.data()), raw.size()};
}

/// Reinterpret raw contiguous ids as INTERNAL-typed (zero copy). Only
/// for storage that is documented to hold internal ids.
inline std::span<const IntNodeId> AsIntIds(std::span<const NodeId> raw) {
  return {reinterpret_cast<const IntNodeId*>(raw.data()), raw.size()};
}

/// Copy-wrap a raw external-id vector (for call sites that need owned
/// typed storage, e.g. NodeSet ingestion).
inline std::vector<ExtNodeId> WrapExtIds(std::span<const NodeId> raw) {
  std::vector<ExtNodeId> out;
  out.reserve(raw.size());
  for (NodeId u : raw) out.push_back(ExtNodeId(u));
  return out;
}

}  // namespace dhtjoin

template <>
struct std::hash<dhtjoin::ExtNodeId> {
  std::size_t operator()(dhtjoin::ExtNodeId u) const noexcept {
    return std::hash<dhtjoin::NodeId>{}(u.value());
  }
};
template <>
struct std::hash<dhtjoin::IntNodeId> {
  std::size_t operator()(dhtjoin::IntNodeId u) const noexcept {
    return std::hash<dhtjoin::NodeId>{}(u.value());
  }
};

#endif  // DHTJOIN_GRAPH_NODE_ID_H_
