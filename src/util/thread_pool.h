/// \file util/thread_pool.h
/// \brief Minimal fixed-size worker pool for the batched walk engines.
///
/// Deliberately tiny: a task queue, N workers, and a Wait() barrier —
/// enough for BackwardWalkerBatch to fan blocks of targets across cores.
/// A pool of size 1 runs tasks inline on the submitting thread (no
/// worker is spawned), so single-core machines and tests pay nothing
/// for the abstraction.

#ifndef DHTJOIN_UTIL_THREAD_POOL_H_
#define DHTJOIN_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"
#include "util/check.h"

namespace dhtjoin {

class ThreadPool {
 public:
  /// Hardware concurrency, with a floor of 1.
  static int DefaultThreadCount() {
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }

  /// \param num_threads worker count; <= 1 means run-inline mode.
  /// Workers are spawned lazily on the first Submit(), so pools that
  /// end up only serving inline work (e.g. a single-block batch run)
  /// never pay thread creation.
  explicit ThreadPool(int num_threads) : target_threads_(num_threads) {
    DHTJOIN_CHECK_GE(num_threads, 1);
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    ready_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return target_threads_; }

  /// Wires the pool into a metrics registry: per-task queue-wait and
  /// execution-time histograms, task/steal counters, and the barrier
  /// counter re-homed under `<prefix>.barriers`. Call before the first
  /// Submit (not thread-safe against running work); pools that never
  /// call this (the engine-internal ones) pay zero clock reads.
  /// Timing is compiled out under DHT_OBS_OFF; counters stay live.
  void EnableMetrics(obs::MetricsRegistry* registry, const obs::Clock* clock,
                     const std::string& prefix) {
    DHTJOIN_CHECK(registry != nullptr);
    DHTJOIN_CHECK(clock != nullptr);
    clock_ = clock;
    queue_wait_ns_ = registry->GetHistogram(prefix + ".queue_wait_ns");
    task_ns_ = registry->GetHistogram(prefix + ".task_ns");
    tasks_ = registry->GetCounter(prefix + ".tasks");
    tasks_inline_ = registry->GetCounter(prefix + ".tasks_inline");
    workers_spawned_ = registry->GetCounter(prefix + ".workers_spawned");
    barriers_ = registry->GetCounter(prefix + ".barriers");
  }

  /// Enqueues a task. In run-inline mode the task executes immediately
  /// on the submitting thread (counted as a "steal": no worker ran it).
  void Submit(std::function<void()> task) {
    if (tasks_ != nullptr) {
      tasks_->Increment();
      task = WrapTimed(std::move(task));
    }
    if (target_threads_ <= 1) {
      if (tasks_inline_ != nullptr) tasks_inline_->Increment();
      task();
      return;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_;
      // Grow the crew no faster than the outstanding work: a 2-task job
      // on a 64-thread pool spawns 2 workers, not 64.
      if (static_cast<int>(workers_.size()) < target_threads_ &&
          static_cast<int64_t>(workers_.size()) < pending_) {
        workers_.emplace_back([this] { WorkerLoop(); });
        if (workers_spawned_ != nullptr) workers_spawned_->Increment();
      }
      queue_.push_back(std::move(task));
    }
    ready_.notify_one();
  }

  /// Blocks until every submitted task has finished.
  void Wait() {
    if (target_threads_ <= 1) return;
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return pending_ == 0; });
  }

  /// Runs fn(i) for i in [0, count), spread over the pool, and waits.
  /// A single item runs inline — no reason to bounce one task through
  /// a worker (or spawn the workers at all).
  ///
  /// Exception-safe: a throw from fn never escapes into WorkerLoop
  /// (which would skip the pending_ decrement and deadlock Wait(), or
  /// std::terminate). The first exception is captured and rethrown on
  /// the calling thread after every task has drained; remaining tasks
  /// still run — the cooperative-stop machinery (util/deadline.h) is
  /// the mechanism for cutting a round short, not stack unwinding.
  void ParallelFor(int64_t count, const std::function<void(int64_t)>& fn) {
    if (count > 0) barriers_->Increment();
    if (target_threads_ <= 1 || count == 1) {
      for (int64_t i = 0; i < count; ++i) fn(i);
      return;
    }
    std::atomic<bool> failed{false};
    std::exception_ptr first_error;
    std::mutex error_mu;
    for (int64_t i = 0; i < count; ++i) {
      Submit([&, i] {
        try {
          fn(i);
        } catch (...) {
          if (!failed.exchange(true, std::memory_order_relaxed)) {
            std::lock_guard<std::mutex> lock(error_mu);
            first_error = std::current_exception();
          }
        }
      });
    }
    Wait();
    if (failed.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(error_mu);
      std::rethrow_exception(first_error);
    }
  }

  /// Number of non-empty ParallelFor dispatches so far — each is one
  /// fork/join barrier (counted even in run-inline mode, where the
  /// barrier costs nothing but still marks a scheduling pass). The
  /// fused multi-target schedulers (dht/batch_core.h) exist to keep
  /// this from scaling with |Q|; TwoWayJoinStats::pool_barriers
  /// surfaces per-run deltas. Thin wrapper over the obs::Counter
  /// (registry-homed once EnableMetrics ran).
  int64_t scheduler_barriers() const { return barriers_->Value(); }

 private:
  /// Wraps a task so queue wait (enqueue -> start) and execution time
  /// land in the histograms. No-op (never called) when metrics are off;
  /// compiles to plain execution under DHT_OBS_OFF.
  std::function<void()> WrapTimed(std::function<void()> task) {
    if (!obs::kEnabled) return task;
    const int64_t enqueued_ns = clock_->NowNanos();
    return [this, enqueued_ns, inner = std::move(task)] {
      const int64_t start_ns = clock_->NowNanos();
      queue_wait_ns_->Record(start_ns - enqueued_ns);
      inner();
      task_ns_->Record(clock_->NowNanos() - start_ns);
    };
  }

  void WorkerLoop() {
    while (true) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        ready_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stop_ and drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (--pending_ == 0) idle_.notify_all();
      }
    }
  }

  const int target_threads_;
  // Barrier counter: pool-local by default; EnableMetrics re-homes it
  // in the registry (the pointer is what "thin wrapper" means above).
  obs::Counter local_barriers_;
  obs::Counter* barriers_ = &local_barriers_;
  const obs::Clock* clock_ = nullptr;
  obs::Histogram* queue_wait_ns_ = nullptr;
  obs::Histogram* task_ns_ = nullptr;
  obs::Counter* tasks_ = nullptr;
  obs::Counter* tasks_inline_ = nullptr;
  obs::Counter* workers_spawned_ = nullptr;
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable ready_, idle_;
  std::deque<std::function<void()>> queue_;
  int64_t pending_ = 0;
  bool stop_ = false;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_THREAD_POOL_H_
