/// \file util/hash.h
/// \brief Small hashing helpers shared across modules.

#ifndef DHTJOIN_UTIL_HASH_H_
#define DHTJOIN_UTIL_HASH_H_

#include <cstdint>

namespace dhtjoin {

/// Packs two 32-bit ids into one 64-bit hash/map key.
// dhtlint: allow(raw-id-param): generic bit-pack of two raw 32-bit
// values; the caller picks (and must not mix) the id space
inline uint64_t PackPair(int32_t a, int32_t b) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
         static_cast<uint32_t>(b);
}

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_HASH_H_
