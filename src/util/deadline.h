/// \file util/deadline.h
/// \brief Query-lifecycle primitives: deadlines, cooperative
/// cancellation, and the per-query ExecContext threaded from the
/// serving layer down into the fused block schedulers.
///
/// The engines never kill a query preemptively: cancellation is
/// COOPERATIVE and checked only at block-group boundaries (one check
/// per (plan, level-group, lane-block) of a fused round — see
/// dht/batch_core.h), never per edge, so the hot kernels carry zero
/// lifecycle overhead. A stop observed mid-round makes the scheduler
/// skip the blocks it has not started; the executor then discards the
/// incomplete round and CUTS AT THE LAST COMPLETED DEEPENING LEVEL,
/// which keeps degraded answers deterministic (DESIGN.md §9):
///
///  * a hard stop (CancelToken) surfaces as Status{kCancelled};
///  * a soft stop (deadline, effort budget) degrades: the executor
///    returns the top-k of the last completed level l together with a
///    PartialInfo{level_reached = l, eps_bound = max U_l^+} derived
///    from the §2 residual bounds — every returned score s satisfies
///    s <= h_d <= s + eps_bound.
///
/// ExecContext also carries the hooks the fault-injection harness
/// (util/fault_injection.h) uses to fire deterministic faults at the
/// same block-group boundaries.

#ifndef DHTJOIN_UTIL_DEADLINE_H_
#define DHTJOIN_UTIL_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>

#include "util/status.h"

namespace dhtjoin {

namespace obs {
class Trace;  // src/obs/trace.h — forward-declared to keep util below obs
}  // namespace obs

/// A point in steady time before which work must finish; infinite by
/// default. Cheap to copy and to test (one clock read per Expired()).
class Deadline {
 public:
  // dhtlint: allow-file(raw-clock): a deadline must expire by REAL
  // time even when a test injects a FakeClock for latency metrics;
  // Expired() deliberately reads the OS steady clock
  using Clock = std::chrono::steady_clock;

  /// No deadline (never expires).
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  static Deadline At(Clock::time_point when) { return Deadline(when); }

  static Deadline After(Clock::duration budget) {
    return Deadline(Clock::now() + budget);
  }

  static Deadline AfterMillis(int64_t ms) {
    return After(std::chrono::milliseconds(ms));
  }
  static Deadline AfterSeconds(double seconds) {
    return After(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds)));
  }

  bool is_infinite() const { return infinite_; }

  bool Expired() const { return !infinite_ && Clock::now() >= when_; }

  /// Seconds until expiry; negative once expired, +inf when infinite.
  double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(when_ - Clock::now()).count();
  }

  Clock::time_point when() const { return when_; }

 private:
  explicit Deadline(Clock::time_point when) : infinite_(false), when_(when) {}

  bool infinite_ = true;
  Clock::time_point when_{};
};

/// A shared cooperative cancellation flag. Cancel() may be called from
/// any thread (typically a client or supervisor); the executing query
/// observes it at its next block-group boundary and stops with
/// Status{kCancelled}. Cancellation is sticky and idempotent.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Per-query execution context: deadline, cancellation token, effort
/// budget, and instrumentation hooks. One ExecContext belongs to ONE
/// query run; it is mutated (sticky stop code, counters) while the
/// query executes, so it is neither copyable nor reusable across runs.
///
/// Checked at two granularities:
///  * Check()            — executor-level, at deepening-level
///                         boundaries (free: no counter);
///  * CheckBlockGroup()  — scheduler-level, once per block group
///                         inside AdvanceMany; bumps the effort
///                         counter and fires the fault hook.
///
/// The first non-OK observation wins and is sticky: once a query is
/// stopped it stays stopped, so every layer that polls later sees the
/// same verdict (a deadline cannot un-expire; cancel and soft-stop are
/// one-way; the effort counter only grows).
struct ExecContext {
  ExecContext() = default;
  ExecContext(const ExecContext&) = delete;
  ExecContext& operator=(const ExecContext&) = delete;

  Deadline deadline;
  /// Optional cooperative cancellation; null = not cancellable.
  std::shared_ptr<CancelToken> token;
  /// Maximum block-group checks before a soft stop (kResourceExhausted
  /// degrade); 0 = unlimited. A deterministic, clock-free alternative
  /// to a deadline: the cumulative block count at every round boundary
  /// is a pure function of the query, so the cut level is reproducible
  /// across thread counts and machines.
  int64_t effort_budget_blocks = 0;

  /// Fault-injection / test hook, fired with the 1-based check count at
  /// every block-group boundary BEFORE the stop tests. Must be
  /// thread-safe (block groups run on pool workers). Installed by
  /// FaultInjector::Arm; null in production.
  std::function<void(int64_t)> block_hook;
  /// Fault hook for simulated state-pool allocation failure, consulted
  /// by BatchStateBudget::TryCommit (true = fail this commit). Must be
  /// thread-safe. Evicted states restart bit-identically, so this
  /// fault never changes results — only step counts.
  std::function<bool()> commit_fault;
  /// Progress callback fired by the deepening executors after each
  /// COMPLETED level l (executor thread, outside any ParallelFor).
  /// Tests use it to stop a query at an exact level; servers can use
  /// it to stream anytime answers.
  std::function<void(int level)> on_level;

  /// Executor-level poll (deepening-level boundaries). Returns the
  /// sticky stop code: kOk, kCancelled, kDeadlineExceeded, or
  /// kResourceExhausted.
  StatusCode Check() const {
    StatusCode sticky = stop_code();
    if (sticky != StatusCode::kOk) return sticky;
    if (token != nullptr && token->cancelled()) {
      return RecordStop(StatusCode::kCancelled);
    }
    if (deadline.Expired()) {
      return RecordStop(StatusCode::kDeadlineExceeded);
    }
    return StatusCode::kOk;
  }

  /// Scheduler-level poll, once per block group inside AdvanceMany:
  /// bumps the effort counter, fires the fault hook, then runs the
  /// same stop tests as Check() plus the effort-budget test.
  StatusCode CheckBlockGroup() const {
    const int64_t n = blocks_checked_.fetch_add(1,
                                                std::memory_order_relaxed) +
                      1;
    if (block_hook) block_hook(n);
    StatusCode code = Check();
    if (code != StatusCode::kOk) return code;
    if (effort_budget_blocks > 0 && n > effort_budget_blocks) {
      return RecordStop(StatusCode::kResourceExhausted);
    }
    return StatusCode::kOk;
  }

  /// Requests a soft stop (anytime degrade at the next boundary), as a
  /// deadline expiry would. Used by on_level callbacks and tests to
  /// force a deterministic cut level.
  void RequestSoftStop() const { RecordStop(StatusCode::kDeadlineExceeded); }

  /// The sticky verdict so far (kOk while running).
  StatusCode stop_code() const {
    return static_cast<StatusCode>(
        stop_code_.load(std::memory_order_relaxed));
  }
  bool stopped() const { return stop_code() != StatusCode::kOk; }

  /// Block-group checks performed so far (effort spent).
  int64_t blocks_checked() const {
    return blocks_checked_.load(std::memory_order_relaxed);
  }

  /// Optional per-query trace, attached by whoever owns the query (the
  /// serving session, the CLI, tests) so tracing rides the same
  /// plumbing as deadline/cancel. Setter is const for the same reason
  /// the stop code is mutable: the context is shared down the stack as
  /// const, yet instrumentation state belongs to the run. Always reads
  /// null under DHT_OBS_OFF, so span code folds away via
  /// obs::TraceOf().
  obs::Trace* trace() const {
#ifdef DHT_OBS_OFF
    return nullptr;
#else
    return trace_.load(std::memory_order_relaxed);
#endif
  }
  void set_trace(obs::Trace* trace) const {
    trace_.store(trace, std::memory_order_relaxed);
  }

 private:
  StatusCode RecordStop(StatusCode code) const {
    int expected = static_cast<int>(StatusCode::kOk);
    stop_code_.compare_exchange_strong(expected, static_cast<int>(code),
                                       std::memory_order_relaxed);
    return stop_code();
  }

  mutable std::atomic<int64_t> blocks_checked_{0};
  mutable std::atomic<int> stop_code_{static_cast<int>(StatusCode::kOk)};
  mutable std::atomic<obs::Trace*> trace_{nullptr};
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_DEADLINE_H_
