#include "util/fault_injection.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace dhtjoin {
namespace {

// splitmix64: tiny, stateless, excellent avalanche — the same hash the
// graph generators use for reproducible randomness.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

void FaultInjector::Arm(ExecContext& ctx) {
  if (plan_.cancel_at_check > 0 && ctx.token == nullptr) {
    ctx.token = std::make_shared<CancelToken>();
  }
  ctx.block_hook = [this, token = ctx.token](int64_t n) {
    if (plan_.delay_at_check > 0 && n == plan_.delay_at_check) {
      delays_fired_.fetch_add(1, std::memory_order_relaxed);
      std::this_thread::sleep_for(std::chrono::microseconds(plan_.delay_micros));
    }
    if (plan_.cancel_at_check > 0 && n == plan_.cancel_at_check &&
        token != nullptr) {
      cancels_fired_.fetch_add(1, std::memory_order_relaxed);
      token->Cancel();
    }
    if (plan_.throw_at_check > 0 && n == plan_.throw_at_check) {
      throws_fired_.fetch_add(1, std::memory_order_relaxed);
      throw std::runtime_error("fault_injection: injected failure at block " +
                               std::to_string(n));
    }
  };
  if (plan_.commit_fail_rate > 0.0) {
    ctx.commit_fault = [this]() {
      const uint64_t attempt =
          static_cast<uint64_t>(
              commit_attempts_.fetch_add(1, std::memory_order_relaxed)) +
          1;
      if (ShouldFailCommit(attempt)) {
        commit_faults_fired_.fetch_add(1, std::memory_order_relaxed);
        return true;
      }
      return false;
    };
  }
}

void FaultInjector::Reset() {
  commit_attempts_.store(0, std::memory_order_relaxed);
  cancels_fired_.store(0, std::memory_order_relaxed);
  delays_fired_.store(0, std::memory_order_relaxed);
  throws_fired_.store(0, std::memory_order_relaxed);
  commit_faults_fired_.store(0, std::memory_order_relaxed);
}

bool FaultInjector::ShouldFailCommit(uint64_t attempt) const {
  if (plan_.commit_fail_rate <= 0.0) return false;
  if (plan_.commit_fail_rate >= 1.0) return true;
  const uint64_t h = SplitMix64(plan_.seed ^ (attempt * 0x9e3779b97f4a7c15ULL));
  // Top 53 bits -> uniform double in [0,1).
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < plan_.commit_fail_rate;
}

}  // namespace dhtjoin
