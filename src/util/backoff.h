/// \file util/backoff.h
/// \brief Capped exponential retry backoff with deterministic jitter.
///
/// Shared by every retry loop in the repo — the cluster coordinator's
/// RPC retries and the serving layer's client-side replay — so all of
/// them honor admission retry-after hints the same way: the hint is a
/// FLOOR (the server knows its own queue better than any client-side
/// curve), the exponential cap bounds the worst case, and the jitter
/// decorrelates clients without sacrificing reproducibility (it is
/// drawn from an explicit seed, like every stochastic component of the
/// library — util/rng.h).

#ifndef DHTJOIN_UTIL_BACKOFF_H_
#define DHTJOIN_UTIL_BACKOFF_H_

#include <algorithm>
#include <cstdint>

#include "util/rng.h"

namespace dhtjoin {

struct BackoffOptions {
  int64_t initial_micros = 1000;
  int64_t max_micros = 100000;
  double multiplier = 2.0;
  /// Jitter spread: a delay d is drawn uniformly from
  /// [d * (1 - jitter), d]. 0 disables jitter (exact delays, used by
  /// tests that pin schedules).
  double jitter = 0.5;
  uint64_t seed = 42;
};

/// One retry sequence. Not thread-safe; one instance per query/client.
class RetryBackoff {
 public:
  explicit RetryBackoff(const BackoffOptions& options)
      : options_(options), rng_(options.seed), next_micros_(
            options.initial_micros) {}

  /// The delay to sleep before the next attempt. `hint_micros` is a
  /// server-provided retry-after floor (0 = none). Advances the
  /// exponential schedule.
  int64_t NextDelayMicros(int64_t hint_micros = 0) {
    int64_t base = next_micros_;
    double grown = static_cast<double>(next_micros_) * options_.multiplier;
    next_micros_ = std::min(
        options_.max_micros,
        grown >= static_cast<double>(options_.max_micros)
            ? options_.max_micros
            : static_cast<int64_t>(grown));
    int64_t jittered = base;
    if (options_.jitter > 0.0 && base > 0) {
      double lo = static_cast<double>(base) * (1.0 - options_.jitter);
      double span = static_cast<double>(base) - lo;
      jittered = static_cast<int64_t>(lo + span * rng_.NextDouble());
    }
    int64_t delay = std::max(jittered, hint_micros);
    sleeps_ += 1;
    total_micros_ += delay;
    return delay;
  }

  /// Restarts the exponential schedule (e.g. after a success).
  void Reset() { next_micros_ = options_.initial_micros; }

  int64_t sleeps() const { return sleeps_; }
  int64_t total_micros() const { return total_micros_; }

 private:
  BackoffOptions options_;
  Rng rng_;
  int64_t next_micros_;
  int64_t sleeps_ = 0;
  int64_t total_micros_ = 0;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_BACKOFF_H_
