/// \file util/table.h
/// \brief ASCII table / CSV printing for the benchmark harnesses.
///
/// Every bench binary reproduces one of the paper's tables or figures by
/// printing rows; TablePrinter renders them with aligned columns so the
/// output can be compared against the paper directly, and DumpCsv emits
/// the same data machine-readably.

#ifndef DHTJOIN_UTIL_TABLE_H_
#define DHTJOIN_UTIL_TABLE_H_

#include <string>
#include <vector>

namespace dhtjoin {

/// Collects rows of string cells and renders them aligned.
class TablePrinter {
 public:
  /// \param title caption printed above the table.
  /// \param header column names.
  TablePrinter(std::string title, std::vector<std::string> header);

  /// Appends one row; must have the same arity as the header.
  void AddRow(std::vector<std::string> row);

  /// Renders the title, header, separator, and rows with padding.
  std::string Render() const;

  /// Renders as comma-separated values (header + rows, no title).
  std::string RenderCsv() const;

  /// Formats a double with `digits` significant decimal places.
  static std::string Num(double v, int digits = 4);

  /// Formats seconds adaptively (µs/ms/s).
  static std::string Secs(double seconds);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_TABLE_H_
