/// \file util/rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// All stochastic components of the library (dataset generators, edge
/// removal perturbations) take an explicit Rng so that every experiment is
/// reproducible from a seed. The generator is xoshiro256**, seeded through
/// SplitMix64 as recommended by its authors.

#ifndef DHTJOIN_UTIL_RNG_H_
#define DHTJOIN_UTIL_RNG_H_

#include <cstdint>

#include "util/check.h"

namespace dhtjoin {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** deterministic generator.
class Rng {
 public:
  /// Seeds the four 64-bit lanes from `seed` via SplitMix64.
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) {
    uint64_t sm = seed;
    for (auto& lane : s_) lane = SplitMix64(sm);
  }

  /// Uniform 64-bit value.
  uint64_t Next64() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  uint64_t Below(uint64_t bound) {
    DHTJOIN_CHECK_GT(bound, 0u);
    uint64_t x = Next64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto l = static_cast<uint64_t>(m);
    if (l < bound) {
      uint64_t threshold = -bound % bound;
      while (l < threshold) {
        x = Next64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Between(int64_t lo, int64_t hi) {
    DHTJOIN_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    Below(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `p`.
  bool Chance(double p) { return NextDouble() < p; }

  /// Geometric variate: number of Bernoulli(p) trials up to and including
  /// the first success; support {1, 2, ...}. `p` must be in (0, 1].
  int Geometric(double p) {
    DHTJOIN_CHECK(p > 0.0 && p <= 1.0);
    int n = 1;
    while (!Chance(p) && n < 1000) ++n;
    return n;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_RNG_H_
