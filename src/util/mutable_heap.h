/// \file util/mutable_heap.h
/// \brief Addressable binary max-heap with decrease/increase-key.
///
/// Backs the `F` structure of the PJ-i algorithm (paper Sec VI-D): entries
/// are ordered by their DHT upper bound and must be updatable in place
/// when a backward walk tightens the bound. Keys are located through a
/// caller-supplied handle returned at push time.

#ifndef DHTJOIN_UTIL_MUTABLE_HEAP_H_
#define DHTJOIN_UTIL_MUTABLE_HEAP_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <utility>
#include <vector>

#include "util/check.h"

namespace dhtjoin {

/// Max-heap over (priority, payload) pairs with stable handles.
///
/// Handles are dense integers recycled through a free list. All
/// operations are O(log n) except Top/Get/size which are O(1).
///
/// \tparam T payload type.
template <typename T>
class MutableHeap {
 public:
  using Handle = std::size_t;
  static constexpr std::size_t kInvalidPos = static_cast<std::size_t>(-1);

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  /// Inserts an entry; returns a handle valid until Erase/Pop of it.
  Handle Push(double priority, T payload) {
    Handle h;
    if (!free_.empty()) {
      h = free_.back();
      free_.pop_back();
      nodes_[h] = Node{priority, std::move(payload), heap_.size()};
    } else {
      h = nodes_.size();
      nodes_.push_back(Node{priority, std::move(payload), heap_.size()});
    }
    heap_.push_back(h);
    SiftUp(heap_.size() - 1);
    return h;
  }

  /// Priority of the maximum entry. Heap must be non-empty.
  double TopPriority() const {
    DHTJOIN_CHECK(!heap_.empty());
    return nodes_[heap_[0]].priority;
  }

  /// Handle of the maximum entry. Heap must be non-empty.
  Handle TopHandle() const {
    DHTJOIN_CHECK(!heap_.empty());
    return heap_[0];
  }

  /// Second-highest priority (the larger root child), or -infinity when
  /// fewer than two entries are held.
  double SecondPriority() const {
    if (heap_.size() < 2) {
      return -std::numeric_limits<double>::infinity();
    }
    double second = nodes_[heap_[1]].priority;
    if (heap_.size() >= 3) {
      second = std::max(second, nodes_[heap_[2]].priority);
    }
    return second;
  }

  /// Visits every live entry as fn(payload, priority); unordered.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (Handle h : heap_) {
      fn(nodes_[h].payload, nodes_[h].priority);
    }
  }

  const T& Get(Handle h) const {
    DHTJOIN_DCHECK(IsLive(h));
    return nodes_[h].payload;
  }
  T& GetMutable(Handle h) {
    DHTJOIN_DCHECK(IsLive(h));
    return nodes_[h].payload;
  }
  double Priority(Handle h) const {
    DHTJOIN_DCHECK(IsLive(h));
    return nodes_[h].priority;
  }

  /// Changes the priority of a live entry (any direction).
  void Update(Handle h, double priority) {
    DHTJOIN_DCHECK(IsLive(h));
    double old = nodes_[h].priority;
    nodes_[h].priority = priority;
    if (priority > old) {
      SiftUp(nodes_[h].pos);
    } else if (priority < old) {
      SiftDown(nodes_[h].pos);
    }
  }

  /// Removes and returns the payload of the maximum entry.
  T Pop() {
    DHTJOIN_CHECK(!heap_.empty());
    Handle h = heap_[0];
    T out = std::move(nodes_[h].payload);
    Erase(h);
    return out;
  }

  /// Removes a live entry by handle.
  void Erase(Handle h) {
    DHTJOIN_DCHECK(IsLive(h));
    std::size_t pos = nodes_[h].pos;
    Handle last = heap_.back();
    heap_.pop_back();
    nodes_[h].pos = kInvalidPos;
    free_.push_back(h);
    if (pos < heap_.size()) {
      heap_[pos] = last;
      nodes_[last].pos = pos;
      // The displaced entry may need to move either way.
      SiftUp(pos);
      SiftDown(nodes_[last].pos);
    }
  }

  void Clear() {
    heap_.clear();
    nodes_.clear();
    free_.clear();
  }

 private:
  struct Node {
    double priority;
    T payload;
    std::size_t pos;  // index into heap_, or kInvalidPos when free
  };

  bool IsLive(Handle h) const {
    return h < nodes_.size() && nodes_[h].pos != kInvalidPos;
  }

  void SiftUp(std::size_t pos) {
    Handle h = heap_[pos];
    double pri = nodes_[h].priority;
    while (pos > 0) {
      std::size_t parent = (pos - 1) / 2;
      if (nodes_[heap_[parent]].priority >= pri) break;
      heap_[pos] = heap_[parent];
      nodes_[heap_[pos]].pos = pos;
      pos = parent;
    }
    heap_[pos] = h;
    nodes_[h].pos = pos;
  }

  void SiftDown(std::size_t pos) {
    Handle h = heap_[pos];
    double pri = nodes_[h].priority;
    const std::size_t n = heap_.size();
    while (true) {
      std::size_t child = 2 * pos + 1;
      if (child >= n) break;
      if (child + 1 < n && nodes_[heap_[child + 1]].priority >
                               nodes_[heap_[child]].priority) {
        ++child;
      }
      if (nodes_[heap_[child]].priority <= pri) break;
      heap_[pos] = heap_[child];
      nodes_[heap_[pos]].pos = pos;
      pos = child;
    }
    heap_[pos] = h;
    nodes_[h].pos = pos;
  }

  std::vector<Node> nodes_;
  std::vector<Handle> heap_;   // heap of handles
  std::vector<Handle> free_;   // recycled handles
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_MUTABLE_HEAP_H_
