/// \file util/fault_injection.h
/// \brief Seeded, deterministic fault injection for robustness tests
/// and the chaos benchmark.
///
/// A FaultPlan describes WHAT goes wrong and WHEN, keyed to the
/// deterministic block-group check counter an ExecContext maintains
/// (util/deadline.h): "cancel at the Nth block-group check", "stall
/// the Nth block for D microseconds", "throw from the Nth block", and
/// "fail state-pool commits with probability p" (simulated allocation
/// failure — the engine treats it as an eviction and restarts the
/// walk bit-identically, so results never change, only step counts).
///
/// All randomness is a splitmix64 hash of (seed, event ordinal), so
/// the same plan against the same query produces the same fault
/// sequence on every machine and at every thread count. Tests assert
/// on exact counter values; the chaos bench replays a fixed plan per
/// query index.
///
/// FaultInjector::Arm installs the plan's hooks onto an ExecContext;
/// the injector must outlive every query run that uses that context.

#ifndef DHTJOIN_UTIL_FAULT_INJECTION_H_
#define DHTJOIN_UTIL_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>

#include "util/deadline.h"

namespace dhtjoin {

/// A deterministic schedule of faults for one query run. Ordinals are
/// 1-based block-group check counts; 0 disables the fault.
struct FaultPlan {
  /// Cancel the query's token at the Nth block-group check.
  int64_t cancel_at_check = 0;
  /// Busy-delay the Nth block-group check (simulated straggler block).
  int64_t delay_at_check = 0;
  int64_t delay_micros = 0;
  /// Throw a std::runtime_error from the Nth block-group check
  /// (exercises the exception containment of the thread pool and the
  /// service's Submit wrapper).
  int64_t throw_at_check = 0;
  /// Per-commit probability in [0,1] that BatchStateBudget::TryCommit
  /// reports a simulated allocation failure (forced eviction).
  double commit_fail_rate = 0.0;
  /// Seed for the commit-failure hash sequence.
  uint64_t seed = 0;
};

/// Installs a FaultPlan's hooks onto an ExecContext and counts fired
/// events. One injector drives one context; reusable only after
/// Reset(). Thread-safe: hooks fire from pool workers.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan) : plan_(plan) {}
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Installs block_hook and commit_fault on `ctx`; creates a token if
  /// the plan cancels and `ctx` has none.
  void Arm(ExecContext& ctx);

  /// Clears fired-event counters (the plan itself is immutable).
  void Reset();

  const FaultPlan& plan() const { return plan_; }
  int64_t cancels_fired() const {
    return cancels_fired_.load(std::memory_order_relaxed);
  }
  int64_t delays_fired() const {
    return delays_fired_.load(std::memory_order_relaxed);
  }
  int64_t throws_fired() const {
    return throws_fired_.load(std::memory_order_relaxed);
  }
  int64_t commit_faults_fired() const {
    return commit_faults_fired_.load(std::memory_order_relaxed);
  }

  /// Deterministic Bernoulli(commit_fail_rate) draw for the Nth commit
  /// attempt (1-based), via splitmix64(seed ^ n). Exposed for tests.
  bool ShouldFailCommit(uint64_t attempt) const;

 private:
  FaultPlan plan_;
  std::atomic<int64_t> commit_attempts_{0};
  std::atomic<int64_t> cancels_fired_{0};
  std::atomic<int64_t> delays_fired_{0};
  std::atomic<int64_t> throws_fired_{0};
  std::atomic<int64_t> commit_faults_fired_{0};
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_FAULT_INJECTION_H_
