#include "util/table.h"

#include <algorithm>
#include <cstdio>

#include "util/check.h"

namespace dhtjoin {

TablePrinter::TablePrinter(std::string title,
                           std::vector<std::string> header)
    : title_(std::move(title)), header_(std::move(header)) {
  DHTJOIN_CHECK(!header_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  DHTJOIN_CHECK_EQ(row.size(), header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::Render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    width[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += "| ";
      line += row[c];
      line.append(width[c] - row[c].size() + 1, ' ');
    }
    line += "|\n";
    return line;
  };

  std::string out;
  out += "== " + title_ + " ==\n";
  out += render_row(header_);
  std::string sep;
  for (std::size_t c = 0; c < header_.size(); ++c) {
    sep += "|";
    sep.append(width[c] + 2, '-');
  }
  sep += "|\n";
  out += sep;
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::RenderCsv() const {
  auto join = [](const std::vector<std::string>& row) {
    std::string line;
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += ",";
      line += row[c];
    }
    line += "\n";
    return line;
  };
  std::string out = join(header_);
  for (const auto& row : rows_) out += join(row);
  return out;
}

std::string TablePrinter::Num(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string TablePrinter::Secs(double seconds) {
  char buf[64];
  if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2fs", seconds);
  }
  return buf;
}

}  // namespace dhtjoin
