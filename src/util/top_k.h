/// \file util/top_k.h
/// \brief Fixed-capacity top-k selection heap.

#ifndef DHTJOIN_UTIL_TOP_K_H_
#define DHTJOIN_UTIL_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/check.h"

namespace dhtjoin {

/// Keeps the k items with the LARGEST keys seen so far.
///
/// Internally a size-bounded min-heap on the key: the root is the current
/// k-th largest key, which is exactly the pruning threshold `T_k` used by
/// the IDJ family of algorithms (paper Sec V-B / VI-B).
///
/// \tparam T item type (copyable).
template <typename T>
class TopK {
 public:
  struct Entry {
    double key;
    T item;
  };

  /// \param k capacity; must be positive.
  explicit TopK(std::size_t k) : k_(k) { DHTJOIN_CHECK_GT(k, 0u); }

  /// Offers an item; keeps it only if it ranks among the k largest.
  /// Returns true when the item was retained.
  bool Offer(double key, const T& item) {
    if (heap_.size() < k_) {
      heap_.push_back(Entry{key, item});
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
      return true;
    }
    if (key <= heap_.front().key) return false;
    std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
    heap_.back() = Entry{key, item};
    std::push_heap(heap_.begin(), heap_.end(), MinFirst);
    return true;
  }

  /// Current k-th largest key; -inf while fewer than k items are held.
  /// This is the threshold below which no new item can enter.
  double Threshold() const {
    if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
    return heap_.front().key;
  }

  /// Smallest retained key; -inf when empty.
  double MinKey() const {
    if (heap_.empty()) return -std::numeric_limits<double>::infinity();
    return heap_.front().key;
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  std::size_t capacity() const { return k_; }
  void Clear() { heap_.clear(); }

  /// Extracts all retained entries in DESCENDING key order.
  std::vector<Entry> TakeSortedDescending() {
    std::sort(heap_.begin(), heap_.end(),
              [](const Entry& a, const Entry& b) { return a.key > b.key; });
    return std::move(heap_);
  }

  /// Read-only access to the (unordered) retained entries.
  const std::vector<Entry>& entries() const { return heap_; }

 private:
  static bool MinFirst(const Entry& a, const Entry& b) {
    return a.key > b.key;  // std heap is max-heap; invert for min-heap
  }

  std::size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_TOP_K_H_
