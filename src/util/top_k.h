/// \file util/top_k.h
/// \brief Fixed-capacity top-k selection heap.

#ifndef DHTJOIN_UTIL_TOP_K_H_
#define DHTJOIN_UTIL_TOP_K_H_

#include <algorithm>
#include <cstddef>
#include <limits>
#include <vector>

#include "util/check.h"

namespace dhtjoin {

/// Default tie policy: no item preference, so the first arrival among
/// equal keys is retained (the pre-tie-break behaviour).
template <typename T>
struct KeepFirstTie {
  bool operator()(const T& /*a*/, const T& /*b*/) const { return false; }
};

/// Keeps the k items with the LARGEST keys seen so far.
///
/// Internally a size-bounded min-heap on the key: the root is the current
/// k-th largest key, which is exactly the pruning threshold `T_k` used by
/// the IDJ family of algorithms (paper Sec V-B / VI-B).
///
/// \tparam T item type (copyable).
/// \tparam Prefer strict weak order over items used ONLY to break key
///   ties: Prefer(a, b) == true means `a` outranks `b` at equal key, so
///   the retained set (and thus the k-th boundary) is deterministic no
///   matter in which order equal-keyed items arrive. The joins pass the
///   library-wide (p, q)-ascending order here so every algorithm returns
///   the same pairs on tied scores (see join2/two_way_join.h).
template <typename T, typename Prefer = KeepFirstTie<T>>
class TopK {
 public:
  struct Entry {
    double key;
    T item;
  };

  /// \param k capacity; must be positive.
  explicit TopK(std::size_t k) : k_(k) { DHTJOIN_CHECK_GT(k, 0u); }

  /// Offers an item; keeps it only if it ranks among the k largest
  /// (key-descending, ties broken by Prefer). Returns true when the
  /// item was retained.
  bool Offer(double key, const T& item) {
    if (heap_.size() < k_) {
      heap_.push_back(Entry{key, item});
      std::push_heap(heap_.begin(), heap_.end(), MinFirst);
      return true;
    }
    const Entry& worst = heap_.front();
    if (key < worst.key ||
        (key == worst.key && !Prefer()(item, worst.item))) {
      return false;
    }
    std::pop_heap(heap_.begin(), heap_.end(), MinFirst);
    heap_.back() = Entry{key, item};
    std::push_heap(heap_.begin(), heap_.end(), MinFirst);
    return true;
  }

  /// Current k-th largest key; -inf while fewer than k items are held.
  /// This is the threshold below which no new item can enter.
  double Threshold() const {
    if (heap_.size() < k_) return -std::numeric_limits<double>::infinity();
    return heap_.front().key;
  }

  /// Smallest retained key; -inf when empty.
  double MinKey() const {
    if (heap_.empty()) return -std::numeric_limits<double>::infinity();
    return heap_.front().key;
  }

  std::size_t size() const { return heap_.size(); }
  bool empty() const { return heap_.empty(); }
  std::size_t capacity() const { return k_; }
  void Clear() { heap_.clear(); }

  /// Extracts all retained entries in DESCENDING key order (ties in
  /// Prefer order).
  std::vector<Entry> TakeSortedDescending() {
    std::sort(heap_.begin(), heap_.end(), [](const Entry& a, const Entry& b) {
      if (a.key != b.key) return a.key > b.key;
      return Prefer()(a.item, b.item);
    });
    return std::move(heap_);
  }

  /// Read-only access to the (unordered) retained entries.
  const std::vector<Entry>& entries() const { return heap_; }

 private:
  /// std heap is a max-heap; this comparator inverts it so the WORST
  /// retained entry (smallest key; among equals, the one Prefer ranks
  /// lowest) sits at the root, ready to be displaced.
  static bool MinFirst(const Entry& a, const Entry& b) {
    if (a.key != b.key) return a.key > b.key;
    return Prefer()(a.item, b.item);
  }

  std::size_t k_;
  std::vector<Entry> heap_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_TOP_K_H_
