/// \file util/timer.h
/// \brief Wall-clock timing for the benchmark harnesses.

#ifndef DHTJOIN_UTIL_TIMER_H_
#define DHTJOIN_UTIL_TIMER_H_

#include <chrono>

namespace dhtjoin {

/// Measures elapsed wall time from construction (or the latest Reset).
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction/Reset.
  double Seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction/Reset.
  double Millis() const { return Seconds() * 1e3; }

 private:
  // dhtlint: allow-file(raw-clock): WallTimer is measurement-only
  // scaffolding for benches/CLI output; engine code times through
  // obs::Clock so tests can inject a FakeClock (DESIGN.md §11)
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_TIMER_H_
