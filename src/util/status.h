/// \file util/status.h
/// \brief Error model for the dhtjoin library.
///
/// The library does not throw exceptions from its public API. Fallible
/// operations return a Status (or a Result<T> when they produce a value),
/// in the style of RocksDB / Apache Arrow. Programming errors (violated
/// preconditions inside the library) abort via the DHTJOIN_CHECK macros in
/// util/check.h.

#ifndef DHTJOIN_UTIL_STATUS_H_
#define DHTJOIN_UTIL_STATUS_H_

#include <cassert>
#include <string>
#include <utility>
#include <variant>

namespace dhtjoin {

/// Machine-readable classification of an error.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kIOError,
  kAlreadyExists,
  kUnimplemented,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// An operation outcome: either OK or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (asserts in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from an error status. `status.ok()` must be
  /// false; a Result cannot hold an OK status without a value.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define DHTJOIN_RETURN_NOT_OK(expr)          \
  do {                                       \
    ::dhtjoin::Status _st = (expr);          \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Assigns the value of a Result expression to `lhs`, propagating errors.
#define DHTJOIN_ASSIGN_OR_RETURN(lhs, rexpr)       \
  auto DHTJOIN_CONCAT_(_res_, __LINE__) = (rexpr); \
  if (!DHTJOIN_CONCAT_(_res_, __LINE__).ok())      \
    return DHTJOIN_CONCAT_(_res_, __LINE__).status(); \
  lhs = std::move(DHTJOIN_CONCAT_(_res_, __LINE__)).value()

#define DHTJOIN_CONCAT_IMPL_(a, b) a##b
#define DHTJOIN_CONCAT_(a, b) DHTJOIN_CONCAT_IMPL_(a, b)

}  // namespace dhtjoin

#endif  // DHTJOIN_UTIL_STATUS_H_
