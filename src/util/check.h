/// \file util/check.h
/// \brief Precondition / invariant check macros.
///
/// DHTJOIN_CHECK* fire in all build types; DHTJOIN_DCHECK* only when
/// NDEBUG is not defined. A failed check prints the condition and
/// location to stderr and aborts — these guard programming errors, not
/// recoverable conditions (use Status for those).

#ifndef DHTJOIN_UTIL_CHECK_H_
#define DHTJOIN_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dhtjoin::internal {

[[noreturn]] inline void CheckFailed(const char* cond, const char* file,
                                     int line) {
  std::fprintf(stderr, "DHTJOIN_CHECK failed: %s at %s:%d\n", cond, file,
               line);
  std::abort();
}

}  // namespace dhtjoin::internal

#define DHTJOIN_CHECK(cond)                                         \
  do {                                                              \
    if (!(cond))                                                    \
      ::dhtjoin::internal::CheckFailed(#cond, __FILE__, __LINE__);  \
  } while (false)

#define DHTJOIN_CHECK_GE(a, b) DHTJOIN_CHECK((a) >= (b))
#define DHTJOIN_CHECK_GT(a, b) DHTJOIN_CHECK((a) > (b))
#define DHTJOIN_CHECK_LE(a, b) DHTJOIN_CHECK((a) <= (b))
#define DHTJOIN_CHECK_LT(a, b) DHTJOIN_CHECK((a) < (b))
#define DHTJOIN_CHECK_EQ(a, b) DHTJOIN_CHECK((a) == (b))
#define DHTJOIN_CHECK_NE(a, b) DHTJOIN_CHECK((a) != (b))

#ifdef NDEBUG
#define DHTJOIN_DCHECK(cond) \
  do {                       \
  } while (false)
#else
#define DHTJOIN_DCHECK(cond) DHTJOIN_CHECK(cond)
#endif

#endif  // DHTJOIN_UTIL_CHECK_H_
