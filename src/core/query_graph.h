/// \file core/query_graph.h
/// \brief The query graph Q of an n-way join (paper Def. 1).
///
/// Nodes of Q are node sets R_1..R_n of the data graph; each directed
/// edge (R_i, R_j) asks for the DHT score h(r_i, r_j) of the answer
/// tuple's nodes from those sets. Since DHT is asymmetric, an undirected
/// relationship is modelled as two opposite edges (paper footnote 2) —
/// AddBidirectionalEdge is a convenience for exactly that.

#ifndef DHTJOIN_CORE_QUERY_GRAPH_H_
#define DHTJOIN_CORE_QUERY_GRAPH_H_

#include <string>
#include <vector>

#include "graph/node_set.h"
#include "rankjoin/pbrj.h"
#include "util/status.h"

namespace dhtjoin {

/// Builder/holder of an n-way join's query graph.
class QueryGraph {
 public:
  /// Adds a node set; returns its attribute index (position in answer
  /// tuples).
  int AddNodeSet(NodeSet set);

  /// Adds directed edge (from, to) over attribute indices. Rejects
  /// out-of-range indices, self-edges, and duplicate directed edges.
  Status AddEdge(int from, int to);

  /// Adds both (a, b) and (b, a).
  Status AddBidirectionalEdge(int a, int b);

  int num_sets() const { return static_cast<int>(sets_.size()); }
  const NodeSet& set(int i) const { return sets_[static_cast<std::size_t>(i)]; }
  const std::vector<NodeSet>& sets() const { return sets_; }
  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// Checks the query graph is executable against `g`: at least two node
  /// sets, at least one edge, and every set valid and non-empty.
  Status Validate(const Graph& g) const;

  /// Upper bound on distinct candidate answers (product of set sizes).
  double CandidateSpace() const;

 private:
  std::vector<NodeSet> sets_;
  std::vector<JoinEdge> edges_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_CORE_QUERY_GRAPH_H_
