/// \file core/partial_join.h
/// \brief PJ and PJ-i — the paper's contribution (Sec IV and VI-D).
///
/// PJ (Algorithm 1) evaluates only a TOP-m 2-way join per query edge
/// (B-IDJ under the hood) and rank-joins the short lists with PBRJ;
/// when the rank join needs a pair beyond the m-th, getNextNodePair
/// supplies it. The two variants differ exactly there:
///
///   * PJ   — re-runs a top-(m+1) 2-way join from scratch
///            (RerunPairStream);
///   * PJ-i — resumes the incremental F structure that the top-m join
///            already built (IncrementalPairStream), which is what makes
///            it up to ~50x faster and insensitive to m.
///
/// Both support any monotone aggregate and both DHT variants.

#ifndef DHTJOIN_CORE_PARTIAL_JOIN_H_
#define DHTJOIN_CORE_PARTIAL_JOIN_H_

#include "core/nway_join.h"
#include "join2/two_way_join.h"

namespace dhtjoin {

class BackwardSnapshotProvider;

class PartialJoin final : public NwayJoin {
 public:
  struct Options {
    /// Initial 2-way join depth per query edge (paper default m = 50).
    std::size_t m = 50;
    /// False = PJ (re-run from scratch); true = PJ-i (incremental).
    bool incremental = false;
    /// Remainder bound of the underlying B-IDJ (paper uses Y).
    UpperBoundKind bound = UpperBoundKind::kY;
    /// Rank-join pulling strategy (paper uses HRJN round-robin; the
    /// HRJN*-style adaptive strategy is an extension, see the ablation
    /// bench).
    PullStrategy pull_strategy = PullStrategy::kRoundRobin;
    /// Cross-query walk-snapshot source for the incremental streams
    /// (the serving cache; see dht/backward.h). PJ-i only.
    BackwardSnapshotProvider* snapshots = nullptr;
  };

  struct Stats {
    /// Pairs the rank join actually consumed, per query edge.
    std::vector<int64_t> pulls_per_edge;
    /// Pairs requested beyond the initial top-m, per query edge
    /// (getNextNodePair traffic).
    std::vector<int64_t> beyond_m_per_edge;
    PbrjStats rank_join;
  };

  PartialJoin() = default;
  explicit PartialJoin(Options options) : options_(options) {}

  std::string Name() const override {
    return options_.incremental ? "PJ-i" : "PJ";
  }

  Result<std::vector<TupleAnswer>> Run(const Graph& g,
                                       const DhtParams& params, int d,
                                       const QueryGraph& query,
                                       const Aggregate& f,
                                       std::size_t k) override;

  const Stats& stats() const { return stats_; }

 private:
  Options options_;
  Stats stats_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_CORE_PARTIAL_JOIN_H_
