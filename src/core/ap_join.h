/// \file core/ap_join.h
/// \brief AP — the All Pairs baseline (paper Sec III-B).
///
/// Decomposes the n-way join into |E_Q| COMPLETE 2-way joins — every
/// pair of every edge's node sets gets a DHT score — then rank-joins the
/// sorted lists with PBRJ. The paper implements the per-edge join with
/// F-BJ ("pruning techniques ... are not useful" when all pairs are
/// needed); an option switches to the backward B-BJ engine, which
/// computes the same lists a factor |P| faster (used by the ablation
/// bench).

#ifndef DHTJOIN_CORE_AP_JOIN_H_
#define DHTJOIN_CORE_AP_JOIN_H_

#include "core/nway_join.h"

namespace dhtjoin {

class AllPairsJoin final : public NwayJoin {
 public:
  enum class Engine {
    kForward,   ///< F-BJ per edge — the paper's configuration
    kBackward,  ///< B-BJ per edge — ablation: same lists, |P|x faster
  };

  struct Options {
    Engine engine = Engine::kForward;
  };

  struct Stats {
    int64_t dht_computations = 0;  ///< pairs scored across all edges
    PbrjStats rank_join;
  };

  AllPairsJoin() = default;
  explicit AllPairsJoin(Options options) : options_(options) {}

  std::string Name() const override { return "AP"; }

  Result<std::vector<TupleAnswer>> Run(const Graph& g,
                                       const DhtParams& params, int d,
                                       const QueryGraph& query,
                                       const Aggregate& f,
                                       std::size_t k) override;

  const Stats& stats() const { return stats_; }

 private:
  Options options_;
  Stats stats_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_CORE_AP_JOIN_H_
