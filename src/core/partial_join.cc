#include "core/partial_join.h"

#include <algorithm>
#include <memory>

#include "core/pair_streams.h"

namespace dhtjoin {

Result<std::vector<TupleAnswer>> PartialJoin::Run(
    const Graph& g, const DhtParams& params, int d, const QueryGraph& query,
    const Aggregate& f, std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(params.Validate());
  DHTJOIN_RETURN_NOT_OK(query.Validate(g));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  stats_ = Stats();

  // One top-m 2-way join per query edge (Alg. 1 Steps 2-4).
  std::vector<std::unique_ptr<PairStream>> streams;
  std::vector<PairStream*> stream_ptrs;
  for (const JoinEdge& e : query.edges()) {
    const NodeSet& P = query.set(e.left);
    const NodeSet& Q = query.set(e.right);
    if (options_.incremental) {
      auto join = IncrementalTwoWayJoin::Create(
          g, params, d, P, Q, options_.m,
          IncrementalTwoWayJoin::Options{.bound = options_.bound,
                                         .snapshots = options_.snapshots});
      if (!join.ok()) return join.status();
      streams.push_back(std::make_unique<IncrementalPairStream>(
          std::move(join).value()));
    } else {
      auto stream = std::make_unique<RerunPairStream>(
          g, params, d, P, Q, options_.m, options_.bound);
      DHTJOIN_RETURN_NOT_OK(stream->status());
      streams.push_back(std::move(stream));
    }
    stream_ptrs.push_back(streams.back().get());
  }

  // Rank join over the streams (Alg. 1 Steps 5-14).
  Pbrj rank_join(query.num_sets(), query.edges(), &f, k,
                 Pbrj::Options{options_.pull_strategy});
  auto result = rank_join.Run(stream_ptrs);
  stats_.rank_join = rank_join.stats();
  stats_.pulls_per_edge = rank_join.stats().pulls_per_edge;
  stats_.beyond_m_per_edge.assign(stream_ptrs.size(), 0);
  for (std::size_t e = 0; e < stats_.pulls_per_edge.size(); ++e) {
    stats_.beyond_m_per_edge[e] =
        std::max<int64_t>(0, stats_.pulls_per_edge[e] -
                                 static_cast<int64_t>(options_.m));
  }
  return result;
}

}  // namespace dhtjoin
