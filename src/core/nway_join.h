/// \file core/nway_join.h
/// \brief Common interface of the n-way join algorithms (paper Def. 4).
///
/// Given the data graph G, a query graph Q over node sets R_1..R_n, a
/// monotone aggregate f, and k: return the k candidate answers (n-tuples
/// from R_1 x ... x R_n) with the highest f of their per-edge DHT
/// scores, sorted descending.
///
/// Validity semantics (consistent across NL, AP, PJ, PJ-i — inherited
/// from the 2-way join semantics in join2/two_way_join.h): a candidate
/// answer qualifies only if every query edge's node pair (r_i, r_j) has
/// r_i != r_j and is reachable within d steps (h_d > beta). Fewer than k
/// answers are returned when fewer qualify.

#ifndef DHTJOIN_CORE_NWAY_JOIN_H_
#define DHTJOIN_CORE_NWAY_JOIN_H_

#include <string>
#include <vector>

#include "core/query_graph.h"
#include "dht/params.h"
#include "rankjoin/aggregate.h"
#include "rankjoin/pbrj.h"

namespace dhtjoin {

/// Abstract top-k n-way join algorithm.
class NwayJoin {
 public:
  virtual ~NwayJoin() = default;

  /// Algorithm name as used in the paper ("NL", "AP", "PJ", "PJ-i").
  virtual std::string Name() const = 0;

  /// Runs the join; see file comment for semantics.
  virtual Result<std::vector<TupleAnswer>> Run(const Graph& g,
                                               const DhtParams& params, int d,
                                               const QueryGraph& query,
                                               const Aggregate& f,
                                               std::size_t k) = 0;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_CORE_NWAY_JOIN_H_
