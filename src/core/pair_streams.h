/// \file core/pair_streams.h
/// \brief PairStream implementations wiring 2-way joins into PBRJ.
///
/// Three stream flavours, one per n-way algorithm:
///  * VectorPairStream — a fully materialized sorted list (AP: the
///    complete 2-way join of each query edge);
///  * RerunPairStream — the plain PJ behaviour: a top-m list up front,
///    and every further pair obtained by re-running a top-(m+1), then
///    top-(m+2), ... join FROM SCRATCH (paper Sec IV, Step 10 footnote);
///  * IncrementalPairStream — the PJ-i behaviour: further pairs come
///    from the resumable F structure (paper Sec VI-D).

#ifndef DHTJOIN_CORE_PAIR_STREAMS_H_
#define DHTJOIN_CORE_PAIR_STREAMS_H_

#include <memory>
#include <vector>

#include "join2/b_idj.h"
#include "join2/incremental.h"
#include "rankjoin/pbrj.h"

namespace dhtjoin {

/// Replays a pre-sorted vector of pairs.
class VectorPairStream final : public PairStream {
 public:
  /// `pairs` must already be sorted in descending score order.
  explicit VectorPairStream(std::vector<ScoredPair> pairs)
      : pairs_(std::move(pairs)) {}

  std::optional<ScoredPair> Next() override {
    if (pos_ >= pairs_.size()) return std::nullopt;
    return pairs_[pos_++];
  }

 private:
  std::vector<ScoredPair> pairs_;
  std::size_t pos_ = 0;
};

/// PJ stream: top-m eagerly, then top-(m+i) joins from scratch.
class RerunPairStream final : public PairStream {
 public:
  struct Stats {
    int64_t reruns = 0;  ///< getNextNodePair invocations (full joins)
  };

  /// Runs the initial top-m join (using B-IDJ with the given bound).
  /// Check `status()` after construction.
  RerunPairStream(const Graph& g, const DhtParams& params, int d,
                  const NodeSet& P, const NodeSet& Q, std::size_t m,
                  UpperBoundKind bound);

  const Status& status() const { return status_; }

  std::optional<ScoredPair> Next() override;

  const Stats& stats() const { return stats_; }

 private:
  const Graph& g_;
  DhtParams params_;
  int d_;
  NodeSet P_, Q_;
  BIdjJoin join_;
  Status status_;
  std::vector<ScoredPair> list_;  // current top-|list_| results
  std::size_t pos_ = 0;
  bool exhausted_ = false;
  Stats stats_;
};

/// PJ-i stream: a thin adapter over IncrementalTwoWayJoin.
class IncrementalPairStream final : public PairStream {
 public:
  explicit IncrementalPairStream(std::unique_ptr<IncrementalTwoWayJoin> join)
      : join_(std::move(join)) {}

  std::optional<ScoredPair> Next() override { return join_->Next(); }

  const IncrementalTwoWayJoin& join() const { return *join_; }

 private:
  std::unique_ptr<IncrementalTwoWayJoin> join_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_CORE_PAIR_STREAMS_H_
