/// \file core/nl_join.h
/// \brief NL — the Nested Loop baseline (paper Sec III-B).
///
/// Enumerates every candidate answer with n nested loops and keeps the
/// k best. The per-edge DHT scores are batch-computed up front on
/// ForwardWalkerBatch (one forward walk per pair, kLaneWidth pairs per
/// edge pass) instead of the seed's one walk per TUPLE — still zero
/// pruning, every pair of every edge walked, but without recomputing a
/// pair for each tuple that contains it. Cost
/// sum_e |R_left| * |R_right| * d * |E_G| walks + Pi |R_i| enumeration —
/// the enumeration alone keeps NL infeasible for n >= 3 at paper scale;
/// an optional wall-clock budget lets benchmarks report DNF instead of
/// hanging. When the dense per-edge tables would exceed
/// Options::max_table_bytes, NL falls back to the seed's O(1)-memory
/// per-tuple walker instead of risking an OOM.

#ifndef DHTJOIN_CORE_NL_JOIN_H_
#define DHTJOIN_CORE_NL_JOIN_H_

#include <limits>
#include <memory>
#include <vector>

#include "core/nway_join.h"

namespace dhtjoin {

/// Cross-query source of per-edge score tables, implemented by the
/// serving cache (src/serve/). A fetched table is |L| x |R| row-major
/// h_d scores for exactly the (L, R, params, d) NL is about to walk;
/// since the batched forward engine is bit-deterministic (DESIGN.md §3)
/// a cached table is byte-equal to a recomputed one. Fetch returning
/// nullptr and Store discarding are both always legal. Implementations
/// must be thread-safe.
class EdgeScoreTableProvider {
 public:
  virtual ~EdgeScoreTableProvider() = default;

  /// Saved table for query edge (L, R), or nullptr.
  virtual std::shared_ptr<const std::vector<double>> Fetch(
      const NodeSet& L, const NodeSet& R) = 0;

  /// Offers a fully-computed table for future queries.
  virtual void Store(const NodeSet& L, const NodeSet& R,
                     std::shared_ptr<const std::vector<double>> table) = 0;
};

class NestedLoopJoin final : public NwayJoin {
 public:
  struct Options {
    /// Abort (returning OutOfRange) when the run exceeds this budget.
    double time_budget_seconds = std::numeric_limits<double>::infinity();
    /// Ceiling on the batched per-edge score tables (summed over query
    /// edges); above it NL walks per tuple in O(1) memory instead.
    std::size_t max_table_bytes = std::size_t{1} << 30;
    /// Optional cross-query table source (the serving cache). Must
    /// outlive the join.
    EdgeScoreTableProvider* tables = nullptr;
  };

  struct Stats {
    int64_t tuples_enumerated = 0;
    int64_t dht_computations = 0;
    /// Per-edge tables served by Options::tables instead of walked.
    int64_t table_hits = 0;
    bool completed = false;
  };

  NestedLoopJoin() = default;
  explicit NestedLoopJoin(Options options) : options_(options) {}

  std::string Name() const override { return "NL"; }

  Result<std::vector<TupleAnswer>> Run(const Graph& g,
                                       const DhtParams& params, int d,
                                       const QueryGraph& query,
                                       const Aggregate& f,
                                       std::size_t k) override;

  const Stats& stats() const { return stats_; }

 private:
  Options options_;
  Stats stats_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_CORE_NL_JOIN_H_
