/// \file core/nl_join.h
/// \brief NL — the Nested Loop baseline (paper Sec III-B).
///
/// Enumerates every candidate answer with n nested loops, evaluates a
/// fresh forward DHT computation for every query edge of every tuple,
/// and keeps the k best. Cost Pi |R_i| * |E_Q| * d * |E_G| — the paper
/// reports it cannot finish for n >= 3; an optional wall-clock budget
/// lets benchmarks report DNF instead of hanging.

#ifndef DHTJOIN_CORE_NL_JOIN_H_
#define DHTJOIN_CORE_NL_JOIN_H_

#include <limits>

#include "core/nway_join.h"

namespace dhtjoin {

class NestedLoopJoin final : public NwayJoin {
 public:
  struct Options {
    /// Abort (returning OutOfRange) when the run exceeds this budget.
    double time_budget_seconds = std::numeric_limits<double>::infinity();
  };

  struct Stats {
    int64_t tuples_enumerated = 0;
    int64_t dht_computations = 0;
    bool completed = false;
  };

  NestedLoopJoin() = default;
  explicit NestedLoopJoin(Options options) : options_(options) {}

  std::string Name() const override { return "NL"; }

  Result<std::vector<TupleAnswer>> Run(const Graph& g,
                                       const DhtParams& params, int d,
                                       const QueryGraph& query,
                                       const Aggregate& f,
                                       std::size_t k) override;

  const Stats& stats() const { return stats_; }

 private:
  Options options_;
  Stats stats_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_CORE_NL_JOIN_H_
