#include "core/ap_join.h"

#include <memory>

#include "core/pair_streams.h"
#include "join2/b_bj.h"
#include "join2/f_bj.h"

namespace dhtjoin {

Result<std::vector<TupleAnswer>> AllPairsJoin::Run(
    const Graph& g, const DhtParams& params, int d, const QueryGraph& query,
    const Aggregate& f, std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(params.Validate());
  DHTJOIN_RETURN_NOT_OK(query.Validate(g));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  stats_ = Stats();

  // Complete 2-way join per query edge.
  std::vector<std::unique_ptr<VectorPairStream>> streams;
  std::vector<PairStream*> stream_ptrs;
  FBjJoin forward;
  BBjJoin backward;
  for (const JoinEdge& e : query.edges()) {
    const NodeSet& P = query.set(e.left);
    const NodeSet& Q = query.set(e.right);
    stats_.dht_computations +=
        static_cast<int64_t>(P.size()) * static_cast<int64_t>(Q.size());
    Result<std::vector<ScoredPair>> pairs =
        options_.engine == Engine::kForward
            ? forward.RunAllPairs(g, params, d, P, Q)
            : backward.RunAllPairs(g, params, d, P, Q);
    if (!pairs.ok()) return pairs.status();
    streams.push_back(
        std::make_unique<VectorPairStream>(std::move(pairs).value()));
    stream_ptrs.push_back(streams.back().get());
  }

  Pbrj rank_join(query.num_sets(), query.edges(), &f, k);
  auto result = rank_join.Run(stream_ptrs);
  stats_.rank_join = rank_join.stats();
  return result;
}

}  // namespace dhtjoin
