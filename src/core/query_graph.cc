#include "core/query_graph.h"

namespace dhtjoin {

int QueryGraph::AddNodeSet(NodeSet set) {
  sets_.push_back(std::move(set));
  return static_cast<int>(sets_.size()) - 1;
}

Status QueryGraph::AddEdge(int from, int to) {
  if (from < 0 || from >= num_sets() || to < 0 || to >= num_sets()) {
    return Status::InvalidArgument(
        "query edge (" + std::to_string(from) + ", " + std::to_string(to) +
        ") references an unknown node set");
  }
  if (from == to) {
    return Status::InvalidArgument(
        "query self-edge on set " + std::to_string(from) +
        " is not supported: h(u, u) is undefined");
  }
  for (const JoinEdge& e : edges_) {
    if (e.left == from && e.right == to) {
      return Status::AlreadyExists("duplicate query edge (" +
                                   std::to_string(from) + ", " +
                                   std::to_string(to) + ")");
    }
  }
  edges_.push_back(JoinEdge{from, to});
  return Status::OK();
}

Status QueryGraph::AddBidirectionalEdge(int a, int b) {
  DHTJOIN_RETURN_NOT_OK(AddEdge(a, b));
  return AddEdge(b, a);
}

Status QueryGraph::Validate(const Graph& g) const {
  if (num_sets() < 2) {
    return Status::InvalidArgument(
        "an n-way join needs at least two node sets, got " +
        std::to_string(num_sets()));
  }
  if (edges_.empty()) {
    return Status::InvalidArgument("query graph has no edges");
  }
  for (const NodeSet& s : sets_) {
    DHTJOIN_RETURN_NOT_OK(s.Validate(g));
  }
  return Status::OK();
}

double QueryGraph::CandidateSpace() const {
  double space = 1.0;
  for (const NodeSet& s : sets_) {
    space *= static_cast<double>(s.size());
  }
  return space;
}

}  // namespace dhtjoin
