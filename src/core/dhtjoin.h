/// \file core/dhtjoin.h
/// \brief Umbrella header — the full public API of the dhtjoin library.
///
/// dhtjoin reproduces "Evaluating Multi-Way Joins over Discounted
/// Hitting Time" (Zhang, Cheng, Kao — ICDE 2014). Typical usage:
///
/// \code
///   #include "core/dhtjoin.h"
///   using namespace dhtjoin;
///
///   Graph g = ...;                            // GraphBuilder / datasets
///   DhtParams dht = DhtParams::Lambda(0.2);   // or ::Exponential()
///   int d = dht.StepsForEpsilon(1e-6);        // == 8
///
///   // Top-k 2-way join (best algorithm: B-IDJ-Y).
///   BIdjJoin two_way;
///   auto pairs = two_way.Run(g, dht, d, P, Q, /*k=*/50);
///
///   // Top-k n-way join (best algorithm: PJ-i).
///   QueryGraph query;
///   int a = query.AddNodeSet(P), b = query.AddNodeSet(Q);
///   query.AddBidirectionalEdge(a, b);
///   PartialJoin pji(PartialJoin::Options{.m = 50, .incremental = true});
///   MinAggregate min_f;
///   auto tuples = pji.Run(g, dht, d, query, min_f, /*k=*/50);
/// \endcode

#ifndef DHTJOIN_CORE_DHTJOIN_H_
#define DHTJOIN_CORE_DHTJOIN_H_

#include "core/ap_join.h"          // IWYU pragma: export
#include "core/nl_join.h"          // IWYU pragma: export
#include "core/nway_join.h"        // IWYU pragma: export
#include "core/partial_join.h"     // IWYU pragma: export
#include "core/query_graph.h"      // IWYU pragma: export
#include "dht/backward.h"          // IWYU pragma: export
#include "dht/bounds.h"            // IWYU pragma: export
#include "dht/forward.h"           // IWYU pragma: export
#include "dht/params.h"            // IWYU pragma: export
#include "graph/graph.h"           // IWYU pragma: export
#include "graph/graph_builder.h"   // IWYU pragma: export
#include "graph/graph_io.h"        // IWYU pragma: export
#include "graph/node_set.h"        // IWYU pragma: export
#include "join2/b_bj.h"            // IWYU pragma: export
#include "join2/b_idj.h"           // IWYU pragma: export
#include "join2/f_bj.h"            // IWYU pragma: export
#include "join2/f_idj.h"           // IWYU pragma: export
#include "join2/incremental.h"     // IWYU pragma: export
#include "join2/two_way_join.h"    // IWYU pragma: export
#include "rankjoin/aggregate.h"    // IWYU pragma: export
#include "rankjoin/pbrj.h"         // IWYU pragma: export
#include "util/status.h"           // IWYU pragma: export

#endif  // DHTJOIN_CORE_DHTJOIN_H_
