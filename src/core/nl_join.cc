#include "core/nl_join.h"

#include "dht/forward.h"
#include "dht/forward_batch.h"
#include "util/timer.h"
#include "util/top_k.h"

namespace dhtjoin {

Result<std::vector<TupleAnswer>> NestedLoopJoin::Run(
    const Graph& g, const DhtParams& params, int d, const QueryGraph& query,
    const Aggregate& f, std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(params.Validate());
  DHTJOIN_RETURN_NOT_OK(query.Validate(g));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  stats_ = Stats();

  WallTimer timer;
  const int n = query.num_sets();
  const auto& edges = query.edges();

  // Dense tables need sum_e |L| * |R| doubles; above the ceiling, fall
  // back to the seed's O(1)-memory per-tuple walker instead of OOMing.
  std::size_t table_bytes = 0;
  for (const JoinEdge& edge : edges) {
    table_bytes += query.set(edge.left).size() *
                   query.set(edge.right).size() * sizeof(double);
  }
  const bool use_tables = table_bytes <= options_.max_table_bytes;

  // Score every query edge's pair table up front on the batched forward
  // engine (kLaneWidth source lanes per out-CSR pass). The seed NL
  // recomputed h_d per TUPLE, so a pair shared by many tuples was walked
  // many times; one batched pass per edge keeps NL the same brute-force
  // baseline (every pair walked, no pruning) minus the redundancy.
  // A serving-cache provider (Options::tables) short-circuits the walks
  // entirely for edges whose table an earlier query already computed —
  // byte-equal by the engine's determinism (DESIGN.md §3).
  ForwardWalkerBatch batch(g);
  std::vector<std::shared_ptr<const std::vector<double>>> tables(edges.size());
  bool budget_exceeded = timer.Seconds() > options_.time_budget_seconds;
  for (std::size_t e = 0; use_tables && e < edges.size() && !budget_exceeded;
       ++e) {
    const NodeSet& L = query.set(edges[e].left);
    const NodeSet& R = query.set(edges[e].right);
    if (options_.tables != nullptr) {
      auto cached = options_.tables->Fetch(L, R);
      if (cached != nullptr && cached->size() == L.size() * R.size()) {
        tables[e] = std::move(cached);
        stats_.table_hits++;
        continue;
      }
    }
    auto table = std::make_shared<std::vector<double>>(L.size() * R.size());
    // Small pair slices so the wall-clock budget is enforced between
    // batch runs: one slice (at most kMaxPairsPerSlice walks) is the
    // overshoot bound, standing in for the seed's per-tuple check, and
    // it must not scale with |L| or |R|.
    const std::size_t src_chunk = ForwardWalkerBatch::kLaneWidth;
    constexpr std::size_t kMaxPairsPerSlice = 4096;
    const std::size_t tgt_chunk =
        std::max<std::size_t>(1, kMaxPairsPerSlice / src_chunk);
    for (std::size_t sb = 0; sb < L.size() && !budget_exceeded;
         sb += src_chunk) {
      const std::size_t scount = std::min(src_chunk, L.size() - sb);
      for (std::size_t tb = 0; tb < R.size() && !budget_exceeded;
           tb += tgt_chunk) {
        const std::size_t tcount = std::min(tgt_chunk, R.size() - tb);
        std::vector<double> scores = batch.Run(
            params, d,
            std::span<const ExtNodeId>(L.nodes()).subspan(sb, scount),
            std::span<const ExtNodeId>(R.nodes()).subspan(tb, tcount));
        for (std::size_t li = 0; li < scount; ++li) {
          std::copy(scores.begin() + static_cast<std::ptrdiff_t>(li * tcount),
                    scores.begin() +
                        static_cast<std::ptrdiff_t>((li + 1) * tcount),
                    table->data() + (sb + li) * R.size() + tb);
        }
        stats_.dht_computations += static_cast<int64_t>(scount * tcount);
        if (timer.Seconds() > options_.time_budget_seconds) {
          budget_exceeded = true;
        }
      }
    }
    tables[e] = table;
    // Only fully-walked tables are offered back; a budget-truncated one
    // would poison future queries.
    if (!budget_exceeded && options_.tables != nullptr) {
      options_.tables->Store(L, R, tables[e]);
    }
  }

  ForwardWalker walker(g);  // the per-tuple fallback scorer
  TopK<TupleAnswer, TupleAnswerPrefer> best(k);
  std::vector<NodeId> tuple(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<std::size_t> tuple_index(static_cast<std::size_t>(n), 0);
  std::vector<double> edge_scores(edges.size(), 0.0);

  // n nested loops, expressed recursively over attribute position.
  auto enumerate = [&](auto&& self, int attr) -> void {
    if (budget_exceeded) return;
    if (attr == n) {
      stats_.tuples_enumerated++;
      bool valid = true;
      for (std::size_t e = 0; e < edges.size() && valid; ++e) {
        NodeId u = tuple[static_cast<std::size_t>(edges[e].left)];
        NodeId v = tuple[static_cast<std::size_t>(edges[e].right)];
        if (u == v) {
          valid = false;  // self pair: h undefined
          break;
        }
        double score;
        if (use_tables) {
          score =
              (*tables[e])[tuple_index[static_cast<std::size_t>(
                               edges[e].left)] *
                               query.set(edges[e].right).size() +
                           tuple_index[static_cast<std::size_t>(
                               edges[e].right)]];
        } else {
          score = walker.Compute(params, d, ExtNodeId(u), ExtNodeId(v));
          stats_.dht_computations++;
        }
        if (score <= params.beta) {
          valid = false;  // unreachable within d steps
          break;
        }
        edge_scores[e] = score;
      }
      if (valid) {
        TupleAnswer answer;
        answer.nodes = tuple;
        answer.edge_scores = edge_scores;
        answer.f = f.Apply(edge_scores);
        best.Offer(answer.f, answer);
      }
      if (timer.Seconds() > options_.time_budget_seconds) {
        budget_exceeded = true;
      }
      return;
    }
    const NodeSet& set = query.set(attr);
    for (std::size_t i = 0; i < set.size(); ++i) {
      tuple[static_cast<std::size_t>(attr)] = set[i].value();
      tuple_index[static_cast<std::size_t>(attr)] = i;
      self(self, attr + 1);
      if (budget_exceeded) return;
    }
  };
  enumerate(enumerate, 0);

  if (budget_exceeded) {
    return Status::OutOfRange(
        "NL exceeded its time budget after " +
        std::to_string(stats_.tuples_enumerated) + " tuples");
  }
  stats_.completed = true;

  std::vector<TupleAnswer> out;
  for (auto& entry : best.TakeSortedDescending()) {
    out.push_back(std::move(entry.item));
  }
  std::sort(out.begin(), out.end(), TupleAnswerGreater);
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace dhtjoin
