#include "core/nl_join.h"

#include "dht/forward.h"
#include "util/timer.h"
#include "util/top_k.h"

namespace dhtjoin {

Result<std::vector<TupleAnswer>> NestedLoopJoin::Run(
    const Graph& g, const DhtParams& params, int d, const QueryGraph& query,
    const Aggregate& f, std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(params.Validate());
  DHTJOIN_RETURN_NOT_OK(query.Validate(g));
  if (k == 0) return Status::InvalidArgument("k must be positive");
  stats_ = Stats();

  WallTimer timer;
  ForwardWalker walker(g);
  const int n = query.num_sets();
  const auto& edges = query.edges();

  TopK<TupleAnswer> best(k);
  std::vector<NodeId> tuple(static_cast<std::size_t>(n), kInvalidNode);
  std::vector<double> edge_scores(edges.size(), 0.0);
  bool budget_exceeded = false;

  // n nested loops, expressed recursively over attribute position.
  auto enumerate = [&](auto&& self, int attr) -> void {
    if (budget_exceeded) return;
    if (attr == n) {
      stats_.tuples_enumerated++;
      bool valid = true;
      for (std::size_t e = 0; e < edges.size() && valid; ++e) {
        NodeId u = tuple[static_cast<std::size_t>(edges[e].left)];
        NodeId v = tuple[static_cast<std::size_t>(edges[e].right)];
        if (u == v) {
          valid = false;  // self pair: h undefined
          break;
        }
        double score = walker.Compute(params, d, u, v);
        stats_.dht_computations++;
        if (score <= params.beta) {
          valid = false;  // unreachable within d steps
          break;
        }
        edge_scores[e] = score;
      }
      if (valid) {
        TupleAnswer answer;
        answer.nodes = tuple;
        answer.edge_scores = edge_scores;
        answer.f = f.Apply(edge_scores);
        best.Offer(answer.f, answer);
      }
      if (timer.Seconds() > options_.time_budget_seconds) {
        budget_exceeded = true;
      }
      return;
    }
    for (NodeId r : query.set(attr)) {
      tuple[static_cast<std::size_t>(attr)] = r;
      self(self, attr + 1);
      if (budget_exceeded) return;
    }
  };
  enumerate(enumerate, 0);

  if (budget_exceeded) {
    return Status::OutOfRange(
        "NL exceeded its time budget after " +
        std::to_string(stats_.tuples_enumerated) + " tuples");
  }
  stats_.completed = true;

  std::vector<TupleAnswer> out;
  for (auto& entry : best.TakeSortedDescending()) {
    out.push_back(std::move(entry.item));
  }
  std::sort(out.begin(), out.end(), TupleAnswerGreater);
  if (out.size() > k) out.resize(k);
  return out;
}

}  // namespace dhtjoin
