#include "core/pair_streams.h"

namespace dhtjoin {

RerunPairStream::RerunPairStream(const Graph& g, const DhtParams& params,
                                 int d, const NodeSet& P, const NodeSet& Q,
                                 std::size_t m, UpperBoundKind bound)
    : g_(g),
      params_(params),
      d_(d),
      P_(P),
      Q_(Q),
      join_(BIdjJoin::Options{bound}) {
  if (m == 0) {
    // Nothing eager; the first Next() triggers a top-1 join.
    status_ = Status::OK();
    return;
  }
  auto result = join_.Run(g_, params_, d_, P_, Q_, m);
  if (!result.ok()) {
    status_ = result.status();
    return;
  }
  list_ = std::move(result).value();
  if (list_.size() < m) exhausted_ = true;  // pair space ran dry
  status_ = Status::OK();
}

std::optional<ScoredPair> RerunPairStream::Next() {
  DHTJOIN_CHECK(status_.ok());
  if (pos_ < list_.size()) return list_[pos_++];
  if (exhausted_) return std::nullopt;
  // getNextNodePair, PJ flavour: re-run a strictly larger top-k join
  // from scratch and take its last element (paper Sec IV: "simply
  // running a top-(m+1) join").
  stats_.reruns++;
  auto result = join_.Run(g_, params_, d_, P_, Q_, list_.size() + 1);
  DHTJOIN_CHECK(result.ok());  // inputs were validated by the first run
  std::vector<ScoredPair> bigger = std::move(result).value();
  if (bigger.size() <= list_.size()) {
    exhausted_ = true;
    return std::nullopt;
  }
  list_ = std::move(bigger);
  return list_[pos_++];
}

}  // namespace dhtjoin
