/// \file cluster/frame.h
/// \brief Wire framing for the multi-process serving tier: a fixed
/// 28-byte length-prefixed header with magic, protocol version, frame
/// type, request id, payload length, and a payload checksum.
///
/// The tier is designed fault-first (DESIGN.md §12): a frame arriving
/// over a loopback socket may have been truncated by a dying worker or
/// corrupted by the chaos harness, so every byte of payload is covered
/// by a 64-bit checksum that the receiver verifies BEFORE decoding.
/// A frame that fails the magic, version, length-cap, or checksum test
/// is rejected with a typed Status and the connection is abandoned —
/// the retry/failover machinery above treats it like any other
/// transport fault, so corruption can cost latency but never
/// correctness.
///
/// Layout (all fields little-endian, fixed offsets):
///
///   offset  size  field
///   0       4     magic        "DHJ1" (0x314a4844)
///   4       2     version      kProtocolVersion
///   6       2     type         FrameType
///   8       8     request_id   caller-chosen correlation id
///   16      4     payload_len  bytes following the header
///   20      8     checksum     FrameChecksum(payload)
///
/// The header itself is NOT covered by the checksum; a corrupted
/// header is caught by the magic/version/length tests with high
/// probability, and the bounded payload read after it fails fast.

#ifndef DHTJOIN_CLUSTER_FRAME_H_
#define DHTJOIN_CLUSTER_FRAME_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/status.h"

namespace dhtjoin::cluster {

/// "DHJ1" read little-endian.
inline constexpr uint32_t kFrameMagic = 0x314a4844u;

/// Bumped on any incompatible change to the header or payload
/// encodings (cluster/wire.h). A version mismatch is a hard
/// kInvalidArgument — never silently reinterpreted.
inline constexpr uint16_t kProtocolVersion = 1;

/// Upper bound on a single payload; anything larger is treated as a
/// corrupted length field, not an allocation request.
inline constexpr uint32_t kMaxPayloadBytes = 64u << 20;

/// Encoded header size in bytes.
inline constexpr std::size_t kFrameHeaderBytes = 28;

enum class FrameType : uint16_t {
  kHello = 1,        ///< worker identity request (coordinator -> worker)
  kHelloAck = 2,     ///< HelloInfo payload (worker -> coordinator)
  kTwoWay = 3,       ///< TwoWayWireRequest payload
  kTwoWayReply = 4,  ///< TwoWayWireReply payload
  kPing = 5,         ///< heartbeat probe (empty payload)
  kPong = 6,         ///< heartbeat answer (HelloInfo payload)
  kError = 7,        ///< transport-level error report (message payload)
};

struct FrameHeader {
  uint32_t magic = kFrameMagic;
  uint16_t version = kProtocolVersion;
  uint16_t type = 0;
  uint64_t request_id = 0;
  uint32_t payload_len = 0;
  uint64_t checksum = 0;
};

/// 64-bit checksum over a byte string (SplitMix64-chained over 8-byte
/// words, length-mixed). Not cryptographic — it exists to catch the
/// truncation/bit-flip faults the chaos harness injects and real
/// half-dead peers produce.
uint64_t FrameChecksum(std::span<const uint8_t> payload);

/// Serializes `header` into exactly kFrameHeaderBytes at `out`.
void EncodeFrameHeader(const FrameHeader& header, uint8_t* out);

/// Parses and validates a header (magic, version, payload length cap).
/// `in` must hold at least kFrameHeaderBytes.
Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> in);

/// Verifies the payload against the header's checksum and length.
Status VerifyFramePayload(const FrameHeader& header,
                          std::span<const uint8_t> payload);

/// Builds a complete frame (header + payload) ready to write to a
/// socket, computing the checksum.
std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t request_id,
                                 std::span<const uint8_t> payload);

}  // namespace dhtjoin::cluster

#endif  // DHTJOIN_CLUSTER_FRAME_H_
