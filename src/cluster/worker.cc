#include "cluster/worker.h"

#include <errno.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>

namespace dhtjoin::cluster {

namespace {

/// Bound on any single reply write: a client that stopped reading
/// must not wedge a worker connection thread forever.
constexpr double kSendTimeoutSeconds = 10.0;

void SleepMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

}  // namespace

WorkerServer::WorkerServer(const Graph& g, const DhtParams& params, int d,
                           WorkerOptions options)
    : g_(g),
      options_(std::move(options)),
      service_(g, params, d, options_.service),
      graph_fp_(service_.graph_fingerprint()),
      params_fp_(ParamsFingerprint(params, d)) {}

WorkerServer::~WorkerServer() { Stop(0); }

Status WorkerServer::Start() {
  if (!options_.checkpoint_path.empty()) {
    // Warm-load before serving: a missing file is a normal cold start,
    // a fingerprint mismatch falls back to cold inside LoadWarmState,
    // and a corrupt file must never keep the worker from serving.
    Result<int64_t> restored =
        service_.LoadWarmState(options_.checkpoint_path);
    if (restored.ok()) {
      restored_entries_.store(restored.value(), std::memory_order_relaxed);
    } else if (restored.status().code() != StatusCode::kNotFound) {
      std::fprintf(stderr, "worker: warm load failed, starting cold: %s\n",
                   restored.status().message().c_str());
    }
  }
  DHTJOIN_ASSIGN_OR_RETURN(listener_,
                           Listener::BindLoopback(options_.port));
  port_ = listener_.port();
  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  if (!options_.checkpoint_path.empty() && options_.checkpoint_every_ms > 0) {
    checkpoint_thread_ = std::thread([this] { CheckpointLoop(); });
  }
  return Status::OK();
}

Status WorkerServer::CheckpointNow(bool chaos_armed) {
  if (options_.checkpoint_path.empty()) {
    return Status::InvalidArgument("worker has no checkpoint path");
  }
  persist::CheckpointHook hook;
  if (chaos_armed) {
    const CheckpointFault fault = DrawCheckpointFault(
        options_.chaos,
        checkpoint_ordinal_.fetch_add(1, std::memory_order_relaxed));
    if (fault.armed) {
      // A real mid-write crash, not a simulation: the process dies at
      // the drawn phase and recovery must come from disk.
      hook = [kill_phase = fault.kill_phase](persist::CheckpointPhase p) {
        if (p == kill_phase) (void)raise(SIGKILL);
        return true;
      };
    }
  }
  Status s = service_.SaveWarmState(options_.checkpoint_path, hook);
  if (s.ok()) {
    checkpoints_written_.fetch_add(1, std::memory_order_relaxed);
  }
  return s;
}

void WorkerServer::CheckpointLoop() {
  const auto interval =
      std::chrono::milliseconds(options_.checkpoint_every_ms);
  // dhtlint: allow(raw-clock): checkpoint pacing must follow REAL
  // time (a FakeClock would stall the periodic writer); tests drive
  // CheckpointNow directly instead of faking this schedule.
  auto next = std::chrono::steady_clock::now() + interval;
  while (!stopping_.load(std::memory_order_relaxed)) {
    // dhtlint: allow(raw-clock): same schedule, read once per slice.
    const auto now = std::chrono::steady_clock::now();
    if (now < next) {
      // Sleep in small slices so Stop() is never blocked behind a
      // long checkpoint interval.
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    (void)CheckpointNow(/*chaos_armed=*/true);
    next = now + interval;
  }
}

void WorkerServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<Socket> conn = listener_.Accept(stopping_);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kCancelled) break;
      continue;  // transient accept error; keep serving
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_.load(std::memory_order_relaxed)) break;
    conn_threads_.emplace_back(
        [this](Socket sock) { ServeConnection(std::move(sock)); },
        std::move(conn).value());
  }
}

void WorkerServer::ServeConnection(Socket conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_conns_.push_back(&conn);
  }
  while (!stopping_.load(std::memory_order_relaxed)) {
    Result<RecvdFrame> frame =
        RecvFrame(conn, Deadline::Infinite(), nullptr, &stopping_);
    if (!frame.ok()) break;  // EOF, corruption, or shutdown
    if (!HandleFrame(conn, frame.value())) break;
  }
  std::lock_guard<std::mutex> lock(mu_);
  live_conns_.erase(
      std::remove(live_conns_.begin(), live_conns_.end(), &conn),
      live_conns_.end());
}

HelloInfo WorkerServer::MakeHelloInfo() {
  HelloInfo info;
  info.graph_fp = graph_fp_;
  info.params_fp = params_fp_;
  info.d = service_.d();
  info.queries_served = queries_served_.load(std::memory_order_relaxed);
  info.in_flight = in_flight_.load(std::memory_order_relaxed);
  return info;
}

bool WorkerServer::HandleFrame(Socket& conn, const RecvdFrame& frame) {
  const Deadline send_deadline = Deadline::AfterSeconds(kSendTimeoutSeconds);
  switch (static_cast<FrameType>(frame.header.type)) {
    case FrameType::kHello:
    case FrameType::kPing: {
      FrameType reply_type =
          static_cast<FrameType>(frame.header.type) == FrameType::kHello
              ? FrameType::kHelloAck
              : FrameType::kPong;
      std::vector<uint8_t> payload = EncodeHelloInfo(MakeHelloInfo());
      return SendFrame(conn, reply_type, frame.header.request_id, payload,
                       send_deadline)
          .ok();
    }
    case FrameType::kTwoWay:
      return HandleTwoWay(conn, frame);
    default: {
      std::string msg = "unsupported frame type " +
                        std::to_string(frame.header.type);
      std::vector<uint8_t> payload(msg.begin(), msg.end());
      return SendFrame(conn, FrameType::kError, frame.header.request_id,
                       payload, send_deadline)
          .ok();
    }
  }
}

bool WorkerServer::HandleTwoWay(Socket& conn, const RecvdFrame& frame) {
  in_flight_.fetch_add(1, std::memory_order_relaxed);
  struct InFlightGuard {
    std::atomic<int64_t>& n;
    ~InFlightGuard() { n.fetch_sub(1, std::memory_order_relaxed); }
  } guard{in_flight_};

  const WorkerFault fault = DrawWorkerFault(
      options_.chaos, chaos_ordinal_.fetch_add(1, std::memory_order_relaxed));

  Result<TwoWayWireRequest> decoded = DecodeTwoWayRequest(frame.payload);
  if (!decoded.ok()) {
    TwoWayWireReply reply;
    reply.status_code = decoded.status().code();
    reply.message = decoded.status().message();
    return SendReply(conn, frame.header.request_id, reply, WorkerFault{});
  }
  const TwoWayWireRequest& req = decoded.value();

  if (req.graph_fp != graph_fp_ || req.params_fp != params_fp_) {
    TwoWayWireReply reply;
    reply.status_code = StatusCode::kInvalidArgument;
    reply.message =
        req.graph_fp != graph_fp_
            ? "graph fingerprint mismatch: worker serves different data"
            : "params fingerprint mismatch: worker serves different measure";
    return SendReply(conn, frame.header.request_id, reply, WorkerFault{});
  }

  if (fault.kind == WorkerFaultKind::kKillBeforeExecute) {
    // Simulated crash at the import boundary: the client sees the
    // connection die before any execution happened.
    conn.ShutdownBoth();
    return false;
  }

  auto exec = std::make_shared<ExecContext>();
  if (req.deadline_micros >= 0) {
    exec->deadline = Deadline::AfterSeconds(
        static_cast<double>(req.deadline_micros) * 1e-6);
  }
  exec->effort_budget_blocks = req.effort_blocks;
  if (fault.kind == WorkerFaultKind::kKillAtLevel) {
    // Simulated crash at a deepening-round boundary: sever the client
    // connection when level `kill_level` completes and soft-stop the
    // run (the degraded result is discarded — nobody can receive it).
    Socket* conn_ptr = &conn;
    ExecContext* exec_ptr = exec.get();
    int64_t kill_level = fault.kill_level;
    exec->on_level = [conn_ptr, exec_ptr, kill_level](int level) {
      if (level == kill_level) {
        conn_ptr->ShutdownBoth();
        exec_ptr->RequestSoftStop();
      }
    };
  }

  serve::QueryStats qs;
  NodeSet P("P", req.p_ids);
  NodeSet Q("Q", req.q_ids);
  auto future = service_.SubmitTwoWay(
      std::move(P), std::move(Q), static_cast<std::size_t>(req.k),
      serve::QueryOptions{exec, &qs});
  Result<std::vector<ScoredPair>> result = future.get();
  queries_served_.fetch_add(1, std::memory_order_relaxed);

  if (fault.kind == WorkerFaultKind::kKillAtLevel ||
      fault.kind == WorkerFaultKind::kKillBeforeReply) {
    // Write-back boundary (or the at-level kill already severed the
    // socket): the client never sees a reply for this attempt.
    conn.ShutdownBoth();
    return false;
  }

  TwoWayWireReply reply;
  if (result.ok()) {
    reply.status_code = StatusCode::kOk;
    reply.pairs = std::move(result).value();
    reply.degraded = qs.join.partial.degraded;
    reply.level_reached = qs.join.partial.level_reached;
    reply.eps_bound = qs.join.partial.eps_bound;
    reply.walk_steps = qs.join.walk_steps;
    reply.warm_targets = qs.warm_targets;
    reply.cold_targets = qs.cold_targets;
  } else {
    reply.status_code = result.status().code();
    reply.message = result.status().message();
    if (reply.status_code == StatusCode::kResourceExhausted) {
      reply.retry_after_micros = service_.admission().RetryAfterMicros();
    }
  }
  return SendReply(conn, frame.header.request_id, reply, fault);
}

bool WorkerServer::SendReply(Socket& conn, uint64_t request_id,
                             const TwoWayWireReply& reply,
                             const WorkerFault& fault) {
  if (fault.kind == WorkerFaultKind::kDelayReply) {
    SleepMicros(fault.delay_micros);
  }
  std::vector<uint8_t> payload = EncodeTwoWayReply(reply);
  std::vector<uint8_t> frame =
      EncodeFrame(FrameType::kTwoWayReply, request_id, payload);
  if (fault.kind == WorkerFaultKind::kCorruptReply) {
    CorruptFramePayload(frame, options_.chaos.seed ^ request_id);
  } else if (fault.kind == WorkerFaultKind::kTruncateReply) {
    TruncateFrame(frame, options_.chaos.seed ^ request_id);
    // A truncated write is a dying peer: send the prefix, then sever.
    (void)SendBytes(conn, frame, Deadline::AfterSeconds(kSendTimeoutSeconds));
    conn.ShutdownBoth();
    return false;
  }
  return SendBytes(conn, frame, Deadline::AfterSeconds(kSendTimeoutSeconds))
      .ok();
}

void WorkerServer::Stop(int64_t drain_millis) {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  const bool was_running = running_.load(std::memory_order_relaxed);
  stopping_.store(true, std::memory_order_relaxed);
  if (checkpoint_thread_.joinable()) checkpoint_thread_.join();
  if (listener_.valid()) listener_.ShutdownBoth();
  if (accept_thread_.joinable()) accept_thread_.join();

  // Drain: in-flight queries may finish and answer until the deadline.
  Deadline drain = drain_millis > 0 ? Deadline::AfterMillis(drain_millis)
                                    : Deadline::At(Deadline::Clock::now());
  while (in_flight_.load(std::memory_order_relaxed) > 0 && !drain.Expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Sever whatever is still connected so idle connection threads
  // unblock immediately and late replies fail fast.
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (Socket* conn : live_conns_) conn->ShutdownBoth();
  }
  std::vector<std::thread> threads;
  {
    std::lock_guard<std::mutex> lock(mu_);
    threads.swap(conn_threads_);
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  service_.Drain();
  if (was_running && !options_.checkpoint_path.empty()) {
    // Final graceful checkpoint, un-chaosed: a clean SIGTERM shutdown
    // must leave the freshest possible warm state behind.
    (void)CheckpointNow(/*chaos_armed=*/false);
  }
  running_.store(false, std::memory_order_relaxed);
}

// --------------------------------------------------------- process spawn

namespace {

volatile sig_atomic_t g_worker_signal = 0;

void WorkerSignalHandler(int) { g_worker_signal = 1; }

[[noreturn]] void RunWorkerChild(int report_fd, const Graph& g,
                                 const DhtParams& params, int d,
                                 const WorkerOptions& options) {
  // Die with the parent: a crashed coordinator/bench leaves no
  // orphaned workers behind.
  (void)prctl(PR_SET_PDEATHSIG, SIGTERM);
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = WorkerSignalHandler;
  (void)sigaction(SIGTERM, &sa, nullptr);
  (void)sigaction(SIGINT, &sa, nullptr);

  WorkerServer server(g, params, d, options);
  Status started = server.Start();
  uint16_t port = started.ok() ? server.port() : 0;
  (void)!write(report_fd, &port, sizeof(port));
  (void)close(report_fd);
  if (!started.ok()) _exit(1);
  while (g_worker_signal == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  server.Stop(2000);
  _exit(0);
}

}  // namespace

namespace {

/// Closes a file descriptor on every exit path. Spawn failures used
/// to rely on hand-written close() calls on each early return; RAII
/// makes "no fd outlives its scope" structural, so repeated failed
/// spawns can never bleed descriptors (see ClusterTest.
/// FailedSpawnsLeakNoFileDescriptors).
class ScopedFd {
 public:
  explicit ScopedFd(int fd = -1) : fd_(fd) {}
  ~ScopedFd() { Reset(); }
  ScopedFd(const ScopedFd&) = delete;
  ScopedFd& operator=(const ScopedFd&) = delete;

  int get() const { return fd_; }
  int Release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void Reset(int fd = -1) {
    if (fd_ >= 0) (void)close(fd_);
    fd_ = fd;
  }

 private:
  int fd_;
};

}  // namespace

Result<SpawnedWorker> SpawnWorkerProcess(const Graph& g,
                                         const DhtParams& params, int d,
                                         const WorkerOptions& options) {
  int pipefd[2];
  if (pipe(pipefd) < 0) {
    return Status::IOError("pipe: " + std::string(std::strerror(errno)));
  }
  ScopedFd read_end(pipefd[0]);
  ScopedFd write_end(pipefd[1]);
  pid_t pid = fork();
  if (pid < 0) {
    return Status::IOError("fork: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    read_end.Reset();
    RunWorkerChild(write_end.Release(), g, params, d, options);
  }
  write_end.Reset();
  uint16_t port = 0;
  ssize_t n = read(read_end.get(), &port, sizeof(port));
  if (n != static_cast<ssize_t>(sizeof(port)) || port == 0) {
    (void)waitpid(pid, nullptr, 0);
    return Status::IOError("worker child failed to start");
  }
  SpawnedWorker worker;
  worker.pid = static_cast<int64_t>(pid);
  worker.port = port;
  return worker;
}

Status StopWorkerProcess(const SpawnedWorker& worker, int64_t grace_millis) {
  if (worker.pid <= 0) {
    return Status::InvalidArgument("invalid worker pid");
  }
  pid_t pid = static_cast<pid_t>(worker.pid);
  (void)kill(pid, SIGTERM);
  Deadline grace = Deadline::AfterMillis(grace_millis);
  int status = 0;
  while (true) {
    pid_t r = waitpid(pid, &status, WNOHANG);
    if (r == pid) break;
    if (r < 0) return Status::OK();  // already reaped
    if (grace.Expired()) {
      (void)kill(pid, SIGKILL);
      (void)waitpid(pid, &status, 0);
      return Status::Internal("worker did not drain within grace; killed");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  if (WIFEXITED(status) && WEXITSTATUS(status) == 0) return Status::OK();
  return Status::Internal("worker exited abnormally (status " +
                          std::to_string(status) + ")");
}

void KillWorkerProcess(const SpawnedWorker& worker) {
  if (worker.pid <= 0) return;
  pid_t pid = static_cast<pid_t>(worker.pid);
  (void)kill(pid, SIGKILL);
  (void)waitpid(pid, nullptr, 0);
}

}  // namespace dhtjoin::cluster
