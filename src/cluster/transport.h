/// \file cluster/transport.h
/// \brief Loopback socket transport for the cluster tier: RAII
/// sockets, a stop-aware listener, and deadline-bounded framed I/O.
///
/// Every blocking operation is bounded: sends and receives poll with
/// short slices against the query Deadline (util/deadline.h), so a
/// hung or killed peer surfaces as kDeadlineExceeded / kIOError within
/// one slice — never as a stuck coordinator thread. That bound is what
/// lets the retry/hedge/failover layer above guarantee "typed Status
/// or byte-identical answer, never a hang".
///
/// Thread-safety contract (TSan-clean by construction): a Socket is
/// used by one thread at a time, EXCEPT Socket::ShutdownBoth(), which
/// any thread may call to unblock a peer stuck in poll/recv — the fd
/// stays open (close() races with concurrent use; shutdown() does
/// not), and only the owning thread ever destroys the Socket.

#ifndef DHTJOIN_CLUSTER_TRANSPORT_H_
#define DHTJOIN_CLUSTER_TRANSPORT_H_

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "cluster/frame.h"
#include "util/deadline.h"
#include "util/status.h"

namespace dhtjoin::cluster {

/// RAII wrapper over a connected socket fd. Move-only; the destructor
/// closes.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Half-kills the connection from any thread: pending and future
  /// reads/writes on it fail immediately, but the fd stays open until
  /// the owner destroys the Socket. The cross-thread abort primitive.
  void ShutdownBoth();

  /// Closes the fd. Only the owning thread may call this.
  void Close();

 private:
  int fd_ = -1;
};

/// Connects to 127.0.0.1:port, bounded by `deadline`.
Result<Socket> ConnectLoopback(uint16_t port, const Deadline& deadline);

/// A listening loopback socket. Accept() polls in short slices and
/// returns kCancelled as soon as `stop` is observed true, so a serving
/// loop can be shut down without connecting to itself.
class Listener {
 public:
  /// Binds 127.0.0.1:port (0 = kernel-chosen ephemeral port).
  static Result<Listener> BindLoopback(uint16_t port);

  Listener() = default;
  Listener(Listener&&) = default;
  Listener& operator=(Listener&&) = default;

  uint16_t port() const { return port_; }
  bool valid() const { return sock_.valid(); }

  Result<Socket> Accept(const std::atomic<bool>& stop);

  /// Unblocks a concurrent Accept from another thread.
  void ShutdownBoth() { sock_.ShutdownBoth(); }

 private:
  Socket sock_;
  uint16_t port_ = 0;
};

/// Waits until one of `fds` is readable or `deadline` expires.
/// Returns the index of the first readable fd, or kOutOfRange on
/// deadline expiry, or kIOError if a socket errored/hung up with no
/// data to read. The hedging primitive: the coordinator parks here on
/// {primary, hedge} at once and takes whichever answers first.
Result<std::size_t> WaitReadable(std::span<const int> fds,
                                 const Deadline& deadline);

/// Writes all of `bytes`, bounded by `deadline`. SIGPIPE-safe.
Status SendBytes(Socket& sock, std::span<const uint8_t> bytes,
                 const Deadline& deadline);

/// Encodes and sends one frame.
Status SendFrame(Socket& sock, FrameType type, uint64_t request_id,
                 std::span<const uint8_t> payload, const Deadline& deadline);

struct RecvdFrame {
  FrameHeader header;
  std::vector<uint8_t> payload;
};

/// Receives one full frame (header + verified payload), bounded by
/// `deadline`. Errors:
///   kDeadlineExceeded — deadline expired mid-receive;
///   kIOError          — peer closed/truncated/corrupted the stream
///                       (checksum rejects additionally set
///                       *checksum_reject when provided);
///   kInvalidArgument  — malformed header (bad magic/version).
/// When `stop` is non-null, a true observation aborts with kCancelled
/// at the next poll slice (used by worker connection loops draining on
/// shutdown).
Result<RecvdFrame> RecvFrame(Socket& sock, const Deadline& deadline,
                             bool* checksum_reject = nullptr,
                             const std::atomic<bool>* stop = nullptr);

}  // namespace dhtjoin::cluster

#endif  // DHTJOIN_CLUSTER_TRANSPORT_H_
