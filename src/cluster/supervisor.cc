#include "cluster/supervisor.h"

#include <errno.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace dhtjoin::cluster {

namespace {

// Wire protocol between parent and agent: fixed-size little-structs,
// one command -> one reply, strictly serialized (the parent holds a
// mutex across the round trip).
enum : uint8_t {
  kOpSpawn = 1,
  kOpKill = 2,
  kOpStop = 3,
  kOpQuit = 4,
};

struct Command {
  uint8_t op = 0;
  uint8_t pad[3] = {0, 0, 0};
  uint32_t slot = 0;
  int64_t arg = 0;
};
static_assert(sizeof(Command) == 16, "agent protocol is fixed-size");

struct Reply {
  int32_t code = 0;  ///< 0 ok; 1 failure (message lost — agent side logs)
  uint32_t port = 0;
  int64_t pid = -1;
};
static_assert(sizeof(Reply) == 16, "agent protocol is fixed-size");

bool WriteFull(int fd, const void* buf, std::size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

bool ReadFull(int fd, void* buf, std::size_t len) {
  uint8_t* p = static_cast<uint8_t*>(buf);
  while (len > 0) {
    ssize_t n = read(fd, p, len);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;  // EOF or error
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

/// The agent main loop. Single-threaded by construction: it was
/// forked before the parent made threads and never makes its own, so
/// SpawnWorkerProcess's fork-safety precondition holds for every
/// respawn, forever.
[[noreturn]] void RunAgent(int fd, const Graph& default_graph,
                           const DhtParams& params, int d,
                           const std::vector<WorkerSlot>& slots) {
  // Die with the parent; take the workers along (they have their own
  // PDEATHSIG on the agent).
  (void)prctl(PR_SET_PDEATHSIG, SIGKILL);
  // A dying worker must not kill the agent with a write to a closed
  // pipe during spawn.
  (void)signal(SIGPIPE, SIG_IGN);

  std::vector<SpawnedWorker> live(slots.size());
  auto kill_all = [&] {
    for (SpawnedWorker& w : live) {
      if (w.pid > 0) KillWorkerProcess(w);
      w = SpawnedWorker{};
    }
  };

  Command cmd;
  while (ReadFull(fd, &cmd, sizeof(cmd))) {
    Reply reply;
    if (cmd.op == kOpQuit) {
      reply.code = 0;
      (void)WriteFull(fd, &reply, sizeof(reply));
      break;
    }
    const std::size_t slot = cmd.slot;
    if (slot >= slots.size()) {
      reply.code = 1;
      (void)WriteFull(fd, &reply, sizeof(reply));
      continue;
    }
    switch (cmd.op) {
      case kOpSpawn: {
        if (live[slot].pid > 0) {
          KillWorkerProcess(live[slot]);
          live[slot] = SpawnedWorker{};
        }
        const Graph& g =
            slots[slot].graph != nullptr ? *slots[slot].graph : default_graph;
        Result<SpawnedWorker> spawned =
            SpawnWorkerProcess(g, params, d, slots[slot].options);
        if (spawned.ok()) {
          live[slot] = spawned.value();
          reply.code = 0;
          reply.pid = live[slot].pid;
          reply.port = live[slot].port;
        } else {
          reply.code = 1;
        }
        break;
      }
      case kOpKill: {
        if (live[slot].pid > 0) KillWorkerProcess(live[slot]);
        live[slot] = SpawnedWorker{};
        reply.code = 0;
        break;
      }
      case kOpStop: {
        if (live[slot].pid > 0) {
          Status st = StopWorkerProcess(live[slot], cmd.arg);
          reply.code = st.ok() ? 0 : 1;
        } else {
          reply.code = 0;
        }
        live[slot] = SpawnedWorker{};
        break;
      }
      default:
        reply.code = 1;
        break;
    }
    if (!WriteFull(fd, &reply, sizeof(reply))) break;
  }
  // EOF (parent died or destructed) or quit: no orphans.
  kill_all();
  (void)close(fd);
  _exit(0);
}

}  // namespace

Result<std::unique_ptr<WorkerSupervisor>> WorkerSupervisor::Start(
    const Graph& g, const DhtParams& params, int d,
    std::vector<WorkerSlot> slots) {
  if (slots.empty()) {
    return Status::InvalidArgument("supervisor needs at least one slot");
  }
  int sv[2];
  if (socketpair(AF_UNIX, SOCK_STREAM, 0, sv) < 0) {
    return Status::IOError("socketpair: " + std::string(std::strerror(errno)));
  }
  pid_t pid = fork();
  if (pid < 0) {
    (void)close(sv[0]);
    (void)close(sv[1]);
    return Status::IOError("fork: " + std::string(std::strerror(errno)));
  }
  if (pid == 0) {
    (void)close(sv[0]);
    RunAgent(sv[1], g, params, d, slots);
  }
  (void)close(sv[1]);
  return std::unique_ptr<WorkerSupervisor>(new WorkerSupervisor(
      sv[0], static_cast<int64_t>(pid), slots.size()));
}

WorkerSupervisor::~WorkerSupervisor() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (fd_ >= 0) {
      Command cmd;
      cmd.op = kOpQuit;
      Reply reply;
      if (WriteFull(fd_, &cmd, sizeof(cmd))) {
        (void)ReadFull(fd_, &reply, sizeof(reply));
      }
      (void)close(fd_);
      fd_ = -1;
    }
  }
  if (agent_pid_ > 0) {
    (void)waitpid(static_cast<pid_t>(agent_pid_), nullptr, 0);
  }
}

Status WorkerSupervisor::RoundTrip(uint8_t op, std::size_t slot, int64_t arg,
                                   SpawnedWorker* out) {
  std::lock_guard<std::mutex> lock(mu_);
  if (fd_ < 0) return Status::IOError("supervisor agent is gone");
  Command cmd;
  cmd.op = op;
  cmd.slot = static_cast<uint32_t>(slot);
  cmd.arg = arg;
  Reply reply;
  if (!WriteFull(fd_, &cmd, sizeof(cmd)) ||
      !ReadFull(fd_, &reply, sizeof(reply))) {
    return Status::IOError("supervisor agent died");
  }
  if (reply.code != 0) {
    return Status::Internal("supervisor op " + std::to_string(op) +
                            " failed on slot " + std::to_string(slot));
  }
  if (out != nullptr) {
    out->pid = reply.pid;
    out->port = static_cast<uint16_t>(reply.port);
  }
  return Status::OK();
}

Result<SpawnedWorker> WorkerSupervisor::Spawn(std::size_t slot) {
  if (slot >= num_slots_) {
    return Status::InvalidArgument("slot out of range");
  }
  SpawnedWorker worker;
  DHTJOIN_RETURN_NOT_OK(RoundTrip(kOpSpawn, slot, 0, &worker));
  if (worker.port == 0) {
    return Status::IOError("supervisor spawned worker with no port");
  }
  return worker;
}

Status WorkerSupervisor::Kill(std::size_t slot) {
  if (slot >= num_slots_) {
    return Status::InvalidArgument("slot out of range");
  }
  return RoundTrip(kOpKill, slot, 0, nullptr);
}

Status WorkerSupervisor::StopSlot(std::size_t slot, int64_t grace_millis) {
  if (slot >= num_slots_) {
    return Status::InvalidArgument("slot out of range");
  }
  return RoundTrip(kOpStop, slot, grace_millis, nullptr);
}

}  // namespace dhtjoin::cluster
