/// \file cluster/wire.h
/// \brief Payload encodings for the cluster protocol (DESIGN.md §12):
/// a bounds-checked little-endian byte reader/writer and the message
/// structs that ride inside cluster/frame.h frames.
///
/// The encodings exist to preserve ONE invariant: a query answered by
/// a worker must be byte-identical to the same query answered by the
/// in-process DhtJoinService. Scores therefore cross the wire as raw
/// IEEE-754 bit patterns (never formatted/reparsed), node ids as their
/// raw external values, and the degradation epsilon as bits too. The
/// handshake carries content fingerprints of the graph and measure
/// parameters so a coordinator can refuse to route to a worker serving
/// different data — a wrong-graph answer would be well-formed yet
/// silently wrong, the one failure mode the tier must never have.
///
/// Decoding is fail-closed: every read is bounds-checked, and any
/// underflow or trailing garbage yields kInvalidArgument, never a
/// partially-filled message.

#ifndef DHTJOIN_CLUSTER_WIRE_H_
#define DHTJOIN_CLUSTER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "dht/params.h"
#include "join2/two_way_join.h"
#include "util/status.h"

namespace dhtjoin::cluster {

/// Append-only little-endian encoder.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// Raw IEEE-754 bits — the byte-identity-preserving double encoding.
  void F64Bits(double v);
  void Str(const std::string& s);

  std::span<const uint8_t> bytes() const { return buf_; }
  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  std::vector<uint8_t> buf_;
};

/// Bounds-checked decoder: reads past the end set a sticky failure
/// flag and return zero values; callers check status() once at the end
/// (plus Finish() to reject trailing bytes).
class ByteReader {
 public:
  explicit ByteReader(std::span<const uint8_t> data) : data_(data) {}

  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64Bits();
  std::string Str();

  bool ok() const { return ok_; }
  std::size_t remaining() const { return data_.size() - off_; }

  /// kOk if every read so far was in bounds.
  Status status() const;
  /// status(), additionally requiring the buffer fully consumed.
  Status Finish() const;

 private:
  bool Take(std::size_t n, const uint8_t** out);

  std::span<const uint8_t> data_;
  std::size_t off_ = 0;
  bool ok_ = true;
};

/// Content fingerprint of the measure configuration (parameter double
/// bits + first-hit flag + truncation depth d), paired with the graph
/// fingerprint in every handshake and request.
uint64_t ParamsFingerprint(const DhtParams& params, int d);

/// Worker identity, carried by kHelloAck and kPong frames.
struct HelloInfo {
  uint64_t graph_fp = 0;
  uint64_t params_fp = 0;
  int64_t d = 0;
  int64_t queries_served = 0;
  int64_t in_flight = 0;
};

/// A two-way join request as routed to a worker. Node ids are raw
/// EXTERNAL ids (the layout-stable space node sets are defined in).
struct TwoWayWireRequest {
  uint64_t graph_fp = 0;
  uint64_t params_fp = 0;
  std::vector<NodeId> p_ids;
  std::vector<NodeId> q_ids;
  uint64_t k = 0;
  /// Remaining deadline budget at send time; < 0 = no deadline. The
  /// coordinator re-derives this from the live ExecContext for every
  /// attempt, so retries and hedges carry the shrunken budget.
  int64_t deadline_micros = -1;
  /// ExecContext::effort_budget_blocks (0 = unlimited). Deterministic
  /// and clock-free, so a degraded answer cuts at the same level on
  /// every worker — the cross-process byte-identity anchor for
  /// degradation tests.
  int64_t effort_blocks = 0;
};

/// A worker's answer. `status_code` != kOk carries the typed error;
/// pairs are present only on kOk.
struct TwoWayWireReply {
  StatusCode status_code = StatusCode::kOk;
  std::string message;
  /// Admission retry-after hint (micros); 0 = none. Set alongside
  /// kResourceExhausted so the coordinator's backoff honors the
  /// worker's own load estimate.
  int64_t retry_after_micros = 0;
  /// Degradation record (join2/two_way_join.h PartialInfo).
  bool degraded = false;
  int64_t level_reached = 0;
  double eps_bound = 0.0;
  std::vector<ScoredPair> pairs;
  /// Worker-side execution counters surfaced to cluster stats.
  int64_t walk_steps = 0;
  int64_t warm_targets = 0;
  int64_t cold_targets = 0;
};

std::vector<uint8_t> EncodeHelloInfo(const HelloInfo& info);
Result<HelloInfo> DecodeHelloInfo(std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeTwoWayRequest(const TwoWayWireRequest& req);
Result<TwoWayWireRequest> DecodeTwoWayRequest(
    std::span<const uint8_t> payload);

std::vector<uint8_t> EncodeTwoWayReply(const TwoWayWireReply& reply);
Result<TwoWayWireReply> DecodeTwoWayReply(std::span<const uint8_t> payload);

/// Rebuilds a typed Status from a wire (code, message) pair; kOk
/// ignores the message.
Status MakeStatus(StatusCode code, std::string message);

}  // namespace dhtjoin::cluster

#endif  // DHTJOIN_CLUSTER_WIRE_H_
