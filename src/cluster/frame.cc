#include "cluster/frame.h"

#include <cstring>
#include <string>

#include "util/rng.h"

namespace dhtjoin::cluster {

namespace {

void PutU16(uint8_t* out, uint16_t v) {
  out[0] = static_cast<uint8_t>(v & 0xffu);
  out[1] = static_cast<uint8_t>((v >> 8) & 0xffu);
}

void PutU32(uint8_t* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xffu);
  }
}

void PutU64(uint8_t* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<uint8_t>((v >> (8 * i)) & 0xffu);
  }
}

uint16_t GetU16(const uint8_t* in) {
  return static_cast<uint16_t>(static_cast<uint16_t>(in[0]) |
                               static_cast<uint16_t>(in[1]) << 8);
}

uint32_t GetU32(const uint8_t* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(in[i]) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const uint8_t* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

}  // namespace

uint64_t FrameChecksum(std::span<const uint8_t> payload) {
  // SplitMix64 chain over 8-byte words, then the tail, then the length.
  // Chained (each word is folded into the state through the full mixer)
  // so reordered or shifted bytes change the sum, unlike a XOR fold.
  uint64_t acc = 0x9e3779b97f4a7c15ULL ^ payload.size();
  std::size_t i = 0;
  for (; i + 8 <= payload.size(); i += 8) {
    uint64_t word = 0;
    std::memcpy(&word, payload.data() + i, 8);
    uint64_t s = acc ^ word;
    acc = SplitMix64(s);
  }
  if (i < payload.size()) {
    uint64_t tail = 0;
    std::memcpy(&tail, payload.data() + i, payload.size() - i);
    uint64_t s = acc ^ tail;
    acc = SplitMix64(s);
  }
  uint64_t fin = acc;
  return SplitMix64(fin);
}

void EncodeFrameHeader(const FrameHeader& header, uint8_t* out) {
  PutU32(out + 0, header.magic);
  PutU16(out + 4, header.version);
  PutU16(out + 6, header.type);
  PutU64(out + 8, header.request_id);
  PutU32(out + 16, header.payload_len);
  PutU64(out + 20, header.checksum);
}

Result<FrameHeader> DecodeFrameHeader(std::span<const uint8_t> in) {
  if (in.size() < kFrameHeaderBytes) {
    return Status::InvalidArgument("frame header truncated: " +
                                   std::to_string(in.size()) + " bytes");
  }
  FrameHeader h;
  h.magic = GetU32(in.data() + 0);
  h.version = GetU16(in.data() + 4);
  h.type = GetU16(in.data() + 6);
  h.request_id = GetU64(in.data() + 8);
  h.payload_len = GetU32(in.data() + 16);
  h.checksum = GetU64(in.data() + 20);
  if (h.magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (h.version != kProtocolVersion) {
    return Status::InvalidArgument(
        "protocol version mismatch: got " + std::to_string(h.version) +
        ", want " + std::to_string(kProtocolVersion));
  }
  if (h.payload_len > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload length over cap: " +
                                   std::to_string(h.payload_len));
  }
  return h;
}

Status VerifyFramePayload(const FrameHeader& header,
                          std::span<const uint8_t> payload) {
  if (payload.size() != header.payload_len) {
    return Status::IOError("frame payload truncated: got " +
                           std::to_string(payload.size()) + " of " +
                           std::to_string(header.payload_len) + " bytes");
  }
  if (FrameChecksum(payload) != header.checksum) {
    return Status::IOError("frame checksum mismatch");
  }
  return Status::OK();
}

std::vector<uint8_t> EncodeFrame(FrameType type, uint64_t request_id,
                                 std::span<const uint8_t> payload) {
  FrameHeader h;
  h.type = static_cast<uint16_t>(type);
  h.request_id = request_id;
  h.payload_len = static_cast<uint32_t>(payload.size());
  h.checksum = FrameChecksum(payload);
  std::vector<uint8_t> frame(kFrameHeaderBytes + payload.size());
  EncodeFrameHeader(h, frame.data());
  if (!payload.empty()) {
    std::memcpy(frame.data() + kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return frame;
}

}  // namespace dhtjoin::cluster
