/// \file cluster/chaos.h
/// \brief Seeded fault schedules for the cluster tier, extending the
/// in-process harness of util/fault_injection.h across the wire.
///
/// A WorkerServer armed with ChaosOptions draws one WorkerFault per
/// request (deterministically, from the seed and the request ordinal)
/// and fires it at the matching execution boundary:
///
///  * kill faults sever the client connection — before execution
///    starts (the import span boundary), after a chosen deepening
///    level completes (a round boundary, via ExecContext::on_level),
///    or after the answer is computed but before the reply frame is
///    written (the write-back boundary). To the coordinator all three
///    look like a worker crash at a different phase, which is exactly
///    the failover-identity test matrix of DESIGN.md §12;
///  * a delay fault holds the reply past the hedging threshold so
///    hedges and deadline expiries fire deterministically;
///  * corrupt/truncate faults mutate the encoded reply frame so the
///    receiver's checksum/length verification must catch them.
///
/// Everything is a pure function of (seed, ordinal): a chaos run can
/// be replayed exactly, and CI pins one schedule forever.

#ifndef DHTJOIN_CLUSTER_CHAOS_H_
#define DHTJOIN_CLUSTER_CHAOS_H_

#include <cstdint>
#include <vector>

#include "persist/snapshot.h"

namespace dhtjoin::cluster {

enum class WorkerFaultKind : uint8_t {
  kNone = 0,
  kKillBeforeExecute,  ///< sever the connection at the import boundary
  kKillAtLevel,        ///< sever after deepening level `kill_level`
  kKillBeforeReply,    ///< sever at the write-back boundary
  kDelayReply,         ///< hold the reply for `delay_micros`
  kCorruptReply,       ///< flip one payload byte of the reply frame
  kTruncateReply,      ///< send only a prefix of the reply frame
};

struct WorkerFault {
  WorkerFaultKind kind = WorkerFaultKind::kNone;
  int64_t kill_level = 1;
  int64_t delay_micros = 0;
};

/// Per-worker chaos configuration. Probabilities are evaluated in the
/// declaration order below; the first that fires wins, so the
/// categories are mutually exclusive per request.
struct ChaosOptions {
  /// 0 disables chaos entirely (production default).
  uint64_t seed = 0;
  double p_kill_before_execute = 0.0;
  double p_kill_at_level = 0.0;
  double p_kill_before_reply = 0.0;
  double p_delay_reply = 0.0;
  double p_corrupt_reply = 0.0;
  double p_truncate_reply = 0.0;
  /// Deepening level after which kKillAtLevel severs.
  int64_t kill_level = 1;
  int64_t delay_micros = 0;
  /// Probability that a CHECKPOINT (not a request) dies mid-write:
  /// the worker raises SIGKILL at a seeded persist::CheckpointPhase.
  /// Drawn per checkpoint ordinal by DrawCheckpointFault — the
  /// recovery test matrix of the crash-safe writer (DESIGN.md §13).
  double p_kill_at_checkpoint = 0.0;

  bool enabled() const { return seed != 0; }
};

/// The fault of checkpoint `ordinal`: whether to die, and at which
/// writer phase. Deterministic in (opts.seed, ordinal) like every
/// other chaos draw, so a SIGKILL-mid-checkpoint schedule replays
/// exactly and CI pins one forever. The phase cycles through all of
/// them across firing ordinals (seeded rotation), so a long-enough
/// schedule exercises every crash point.
struct CheckpointFault {
  bool armed = false;
  persist::CheckpointPhase kill_phase =
      persist::CheckpointPhase::kAfterTempCreate;
};

CheckpointFault DrawCheckpointFault(const ChaosOptions& opts,
                                    uint64_t ordinal);

/// The fault for request `ordinal` — deterministic in (opts.seed,
/// ordinal), independent of arrival order across connections.
WorkerFault DrawWorkerFault(const ChaosOptions& opts, uint64_t ordinal);

/// Flips one deterministic payload byte of an encoded frame (header
/// left intact so the corruption must be caught by the checksum, not
/// the magic). Frames with an empty payload get a checksum-field flip
/// instead. No-op on buffers shorter than a header.
void CorruptFramePayload(std::vector<uint8_t>& frame, uint64_t seed);

/// Truncates an encoded frame to a deterministic strict prefix (at
/// least 1 byte shorter), simulating a peer dying mid-write.
void TruncateFrame(std::vector<uint8_t>& frame, uint64_t seed);

}  // namespace dhtjoin::cluster

#endif  // DHTJOIN_CLUSTER_CHAOS_H_
