/// \file cluster/worker.h
/// \brief The worker side of the cluster tier: a socket server that
/// answers framed two-way join requests with a DhtJoinService, plus a
/// fork-based helper that runs one worker per PROCESS for true
/// crash-isolation.
///
/// A worker is deliberately thin: decode request -> verify the
/// graph/params fingerprints -> rebuild an ExecContext from the wire
/// (remaining deadline budget, effort budget) -> run the query through
/// the SAME DhtJoinService everything else uses -> encode the result
/// bits verbatim. Byte-identity with single-process serving is
/// therefore structural, not aspirational: there is no worker-specific
/// execution path to diverge (DESIGN.md §12).
///
/// Fault injection: WorkerOptions::chaos arms a seeded per-request
/// fault schedule (cluster/chaos.h). Kill faults sever the client
/// connection at a chosen execution boundary; delay/corrupt/truncate
/// faults mutate the reply. The worker process itself stays alive —
/// simulated crashes are per-connection — while SpawnWorkerProcess +
/// SIGKILL covers the real-crash axis in bench_cluster.

#ifndef DHTJOIN_CLUSTER_WORKER_H_
#define DHTJOIN_CLUSTER_WORKER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "cluster/chaos.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "serve/session.h"

namespace dhtjoin::cluster {

struct WorkerOptions {
  /// Options of the wrapped DhtJoinService (admission control caps,
  /// cache budget, pool size, injected clock...).
  serve::DhtJoinService::Options service;
  /// Listen port; 0 = kernel-chosen ephemeral (read it back via
  /// port() after Start, or from SpawnedWorker).
  uint16_t port = 0;
  /// Seeded fault schedule; ChaosOptions{} (seed 0) disables.
  ChaosOptions chaos;
  /// Warm-state snapshot path; empty disables durability. When set,
  /// Start() warm-loads the file (missing file or fingerprint mismatch
  /// fall back to cold; corruption is logged and ignored — a worker
  /// must never refuse to serve because its cache file rotted) and
  /// Stop() writes a final checkpoint after the drain.
  std::string checkpoint_path;
  /// Periodic checkpoint interval; 0 checkpoints only on graceful
  /// Stop. Each periodic write draws a CheckpointFault from `chaos`,
  /// so a seeded schedule can SIGKILL the worker mid-write.
  int64_t checkpoint_every_ms = 0;
};

/// A serving worker: accept loop + one thread per connection, each
/// running recv -> execute -> reply until EOF or shutdown.
/// Thread-safe; Start/Stop/Abort may be called from any thread.
class WorkerServer {
 public:
  WorkerServer(const Graph& g, const DhtParams& params, int d,
               WorkerOptions options);
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// Binds and starts accepting. Idempotent failure: returns the bind
  /// error without partial state.
  Status Start();

  /// Graceful shutdown: stop accepting, let in-flight queries finish
  /// for up to `drain_millis`, then sever whatever remains and join
  /// every thread. Idempotent.
  void Stop(int64_t drain_millis = 2000);

  /// Hard shutdown: sever all connections now (drain 0).
  void Abort() { Stop(0); }

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_relaxed); }
  serve::DhtJoinService& service() { return service_; }
  int64_t queries_served() const {
    return queries_served_.load(std::memory_order_relaxed);
  }
  /// Cache entries restored by the warm load in Start() (0 when cold
  /// or durability is disabled).
  int64_t restored_entries() const {
    return restored_entries_.load(std::memory_order_relaxed);
  }
  /// Checkpoints written so far (periodic + final).
  int64_t checkpoints_written() const {
    return checkpoints_written_.load(std::memory_order_relaxed);
  }

  /// Writes one checkpoint now. `chaos_armed` draws a CheckpointFault
  /// for this write's ordinal (the periodic thread passes true; the
  /// final graceful checkpoint passes false — a clean SIGTERM exit
  /// must not be chaos-killed or StopWorkerProcess would misreport).
  Status CheckpointNow(bool chaos_armed);

 private:
  void AcceptLoop();
  void CheckpointLoop();
  void ServeConnection(Socket conn);
  /// One request frame: dispatch by type. Returns false when the
  /// connection should close (EOF, kill fault, transport error).
  bool HandleFrame(Socket& conn, const RecvdFrame& frame);
  bool HandleTwoWay(Socket& conn, const RecvdFrame& frame);
  HelloInfo MakeHelloInfo();
  /// Sends a TwoWayReply, applying any armed delay/corrupt/truncate
  /// fault. Returns false on send failure.
  bool SendReply(Socket& conn, uint64_t request_id,
                 const TwoWayWireReply& reply, const WorkerFault& fault);

  const Graph& g_;
  WorkerOptions options_;
  serve::DhtJoinService service_;
  uint64_t graph_fp_;
  uint64_t params_fp_;
  Listener listener_;
  uint16_t port_ = 0;

  std::atomic<bool> stopping_{false};
  std::atomic<bool> running_{false};
  std::atomic<int64_t> queries_served_{0};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<uint64_t> chaos_ordinal_{0};
  std::atomic<uint64_t> checkpoint_ordinal_{0};
  std::atomic<int64_t> restored_entries_{0};
  std::atomic<int64_t> checkpoints_written_{0};

  std::thread accept_thread_;
  std::thread checkpoint_thread_;
  /// Serializes Stop/Abort/destructor against each other.
  std::mutex stop_mu_;
  std::mutex mu_;
  /// Connection threads, joined on Stop.
  std::vector<std::thread> conn_threads_;
  /// Live connection sockets, for cross-thread severing on Stop/Abort.
  /// Entries are owned by their connection thread; they deregister
  /// under mu_ before destroying the Socket.
  std::vector<Socket*> live_conns_;
};

/// A worker running in a forked child process.
struct SpawnedWorker {
  int64_t pid = -1;
  uint16_t port = 0;
};

/// Forks a child that serves `g` with a WorkerServer until SIGTERM
/// (graceful drain) and reports its listen port back through a pipe.
/// MUST be called before the parent creates any threads (fork only
/// clones the calling thread); the child inherits the graph
/// copy-on-write, so spawning N workers does not copy the CSR until
/// pages are written. The child also dies with its parent
/// (PR_SET_PDEATHSIG), so a crashed bench leaves no orphans.
Result<SpawnedWorker> SpawnWorkerProcess(const Graph& g,
                                         const DhtParams& params, int d,
                                         const WorkerOptions& options);

/// Graceful stop: SIGTERM, wait up to `grace_millis`, then SIGKILL.
/// Returns the worker's exit verdict (OK for a clean 0 exit).
Status StopWorkerProcess(const SpawnedWorker& worker, int64_t grace_millis);

/// Simulated crash: SIGKILL + reap. Never fails (a dead pid is a
/// no-op).
void KillWorkerProcess(const SpawnedWorker& worker);

}  // namespace dhtjoin::cluster

#endif  // DHTJOIN_CLUSTER_WORKER_H_
