/// \file cluster/metrics.h
/// \brief The cluster tier's observability bundle: every counter and
/// histogram the coordinator ticks, registered eagerly against an
/// obs::MetricsRegistry so all of them appear in the JSON and
/// Prometheus exports even before the first fault (a dashboard that
/// only learns about `cluster.failover.local` when it first fires is
/// a dashboard that cannot alert on it).
///
/// Naming follows the registry scheme (DESIGN.md §11): dot-separated
/// lowercase, unit-suffixed timings.

#ifndef DHTJOIN_CLUSTER_METRICS_H_
#define DHTJOIN_CLUSTER_METRICS_H_

#include "obs/metrics.h"

namespace dhtjoin::cluster {

struct ClusterMetrics {
  explicit ClusterMetrics(obs::MetricsRegistry& registry)
      : rpc_attempts(registry.GetCounter("cluster.rpc.attempts")),
        rpc_ok(registry.GetCounter("cluster.rpc.ok")),
        rpc_transport_errors(
            registry.GetCounter("cluster.rpc.transport_errors")),
        rpc_retries(registry.GetCounter("cluster.rpc.retries")),
        rpc_resource_exhausted(
            registry.GetCounter("cluster.rpc.resource_exhausted")),
        hedge_fired(registry.GetCounter("cluster.hedge.fired")),
        hedge_won(registry.GetCounter("cluster.hedge.won")),
        failover_worker(registry.GetCounter("cluster.failover.worker")),
        failover_local(registry.GetCounter("cluster.failover.local")),
        heartbeat_probes(registry.GetCounter("cluster.heartbeat.probes")),
        heartbeat_misses(registry.GetCounter("cluster.heartbeat.misses")),
        frame_checksum_rejects(
            registry.GetCounter("cluster.frame.checksum_rejects")),
        backoff_sleeps(registry.GetCounter("cluster.backoff.sleeps")),
        backoff_micros(registry.GetCounter("cluster.backoff.micros")),
        worker_respawns(registry.GetCounter("cluster.worker.respawns")),
        rpc_latency_ns(registry.GetHistogram("cluster.rpc.latency_ns")) {}

  /// RPC attempts sent to workers (initial sends + retries + hedges).
  obs::Counter* rpc_attempts;
  /// Attempts that returned a well-formed reply frame.
  obs::Counter* rpc_ok;
  /// Attempts lost to the transport: connect failure, severed
  /// connection, truncated stream, deadline while receiving.
  obs::Counter* rpc_transport_errors;
  /// Re-sends after a failed or rejected attempt.
  obs::Counter* rpc_retries;
  /// Worker-side admission rejections observed.
  obs::Counter* rpc_resource_exhausted;
  /// Hedged (duplicate) requests fired after the latency threshold.
  obs::Counter* hedge_fired;
  /// Hedges whose reply arrived before the primary's.
  obs::Counter* hedge_won;
  /// Queries that failed over to a different worker.
  obs::Counter* failover_worker;
  /// Queries that degraded to local in-process execution.
  obs::Counter* failover_local;
  /// Heartbeat pings sent.
  obs::Counter* heartbeat_probes;
  /// Heartbeat pings that failed or timed out.
  obs::Counter* heartbeat_misses;
  /// Reply frames rejected by checksum/length verification.
  obs::Counter* frame_checksum_rejects;
  /// Backoff sleeps taken and their total duration.
  obs::Counter* backoff_sleeps;
  obs::Counter* backoff_micros;
  /// Dead workers relaunched by the respawn policy (DESIGN.md §13).
  obs::Counter* worker_respawns;
  /// End-to-end per-query latency (includes retries and failover).
  obs::Histogram* rpc_latency_ns;
};

}  // namespace dhtjoin::cluster

#endif  // DHTJOIN_CLUSTER_METRICS_H_
