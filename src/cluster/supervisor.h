/// \file cluster/supervisor.h
/// \brief Process supervision for worker respawn: a single-threaded
/// spawn-agent child that forks workers on command, so the coordinator
/// can relaunch dead workers AFTER it has created threads.
///
/// Why the indirection: fork() clones only the calling thread, so
/// forking a worker from a multi-threaded coordinator (heartbeat
/// thread, connection threads) is undefined-adjacent — any lock held
/// by a non-forked thread stays locked forever in the child.
/// SpawnWorkerProcess therefore documents "call before creating
/// threads", which is exactly when a respawn CANNOT happen. The
/// supervisor squares that circle: WorkerSupervisor::Start forks ONE
/// agent process while the parent is still single-threaded; the agent
/// stays single-threaded forever and forks workers whenever the
/// (by now multi-threaded) parent asks over a socketpair.
///
/// Ownership chain: parent -> agent -> workers. Workers are the
/// agent's children, so every stop/kill/reap goes through the agent
/// (the parent cannot waitpid grandchildren). The agent dies with the
/// parent (PR_SET_PDEATHSIG) and kills its workers on the way out, so
/// a crashed coordinator leaves no orphans.

#ifndef DHTJOIN_CLUSTER_SUPERVISOR_H_
#define DHTJOIN_CLUSTER_SUPERVISOR_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/worker.h"

namespace dhtjoin::cluster {

/// One respawnable worker slot: the graph it serves (null = the
/// supervisor's default graph) and its WorkerOptions. A per-slot
/// graph exists so tests can stand up a mis-deployed worker (wrong
/// graph -> fingerprint mismatch -> quarantine).
struct WorkerSlot {
  const Graph* graph = nullptr;
  WorkerOptions options;
};

/// Handle to the spawn-agent process. Thread-safe: commands are
/// serialized over the agent socket under an internal mutex, so any
/// coordinator thread may request a respawn.
class WorkerSupervisor {
 public:
  /// Forks the agent. MUST be called while the calling process is
  /// still single-threaded (same rule as SpawnWorkerProcess — the
  /// agent inherits the graph copy-on-write and must be safe to fork
  /// from). Slots are fixed for the supervisor's lifetime.
  static Result<std::unique_ptr<WorkerSupervisor>> Start(
      const Graph& g, const DhtParams& params, int d,
      std::vector<WorkerSlot> slots);

  ~WorkerSupervisor();

  WorkerSupervisor(const WorkerSupervisor&) = delete;
  WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

  /// (Re)spawns slot `slot`. Any live occupant is SIGKILLed first, so
  /// Spawn is also "replace". Returns the new worker's pid and port.
  Result<SpawnedWorker> Spawn(std::size_t slot);

  /// SIGKILL + reap the slot's worker (simulated crash). No-op when
  /// the slot is empty.
  Status Kill(std::size_t slot);

  /// Graceful stop (SIGTERM + drain up to `grace_millis`, then
  /// SIGKILL) of the slot's worker — the path that writes a final
  /// checkpoint. No-op when the slot is empty.
  Status StopSlot(std::size_t slot, int64_t grace_millis);

  std::size_t num_slots() const { return num_slots_; }

 private:
  WorkerSupervisor(int fd, int64_t agent_pid, std::size_t num_slots)
      : fd_(fd), agent_pid_(agent_pid), num_slots_(num_slots) {}

  /// Sends one command and reads its reply; converts protocol-level
  /// failures (dead agent, short read) into kIOError.
  Status RoundTrip(uint8_t op, std::size_t slot, int64_t arg,
                   SpawnedWorker* out);

  std::mutex mu_;
  int fd_ = -1;
  int64_t agent_pid_ = -1;
  std::size_t num_slots_ = 0;
};

}  // namespace dhtjoin::cluster

#endif  // DHTJOIN_CLUSTER_SUPERVISOR_H_
