#include "cluster/chaos.h"

#include "cluster/frame.h"
#include "util/rng.h"

namespace dhtjoin::cluster {

WorkerFault DrawWorkerFault(const ChaosOptions& opts, uint64_t ordinal) {
  WorkerFault fault;
  if (!opts.enabled()) return fault;
  uint64_t sm = opts.seed ^ (0x9e3779b97f4a7c15ULL * (ordinal + 1));
  Rng rng(SplitMix64(sm));
  fault.kill_level = opts.kill_level;
  fault.delay_micros = opts.delay_micros;
  if (rng.Chance(opts.p_kill_before_execute)) {
    fault.kind = WorkerFaultKind::kKillBeforeExecute;
  } else if (rng.Chance(opts.p_kill_at_level)) {
    fault.kind = WorkerFaultKind::kKillAtLevel;
  } else if (rng.Chance(opts.p_kill_before_reply)) {
    fault.kind = WorkerFaultKind::kKillBeforeReply;
  } else if (rng.Chance(opts.p_delay_reply)) {
    fault.kind = WorkerFaultKind::kDelayReply;
  } else if (rng.Chance(opts.p_corrupt_reply)) {
    fault.kind = WorkerFaultKind::kCorruptReply;
  } else if (rng.Chance(opts.p_truncate_reply)) {
    fault.kind = WorkerFaultKind::kTruncateReply;
  }
  return fault;
}

CheckpointFault DrawCheckpointFault(const ChaosOptions& opts,
                                    uint64_t ordinal) {
  CheckpointFault fault;
  if (!opts.enabled()) return fault;
  uint64_t sm = opts.seed ^ (0xbf58476d1ce4e5b9ULL * (ordinal + 1));
  Rng rng(SplitMix64(sm));
  if (!rng.Chance(opts.p_kill_at_checkpoint)) return fault;
  fault.armed = true;
  uint64_t phase_state = sm + 1;
  fault.kill_phase = static_cast<persist::CheckpointPhase>(
      SplitMix64(phase_state) %
      static_cast<uint64_t>(persist::kNumCheckpointPhases));
  return fault;
}

void CorruptFramePayload(std::vector<uint8_t>& frame, uint64_t seed) {
  if (frame.size() < kFrameHeaderBytes) return;
  uint64_t sm = seed ^ 0xc2b2ae3d27d4eb4fULL;
  uint64_t r = SplitMix64(sm);
  std::size_t payload_len = frame.size() - kFrameHeaderBytes;
  std::size_t pos;
  if (payload_len > 0) {
    pos = kFrameHeaderBytes + static_cast<std::size_t>(r % payload_len);
  } else {
    // Empty payload: flip a checksum byte (offset 20..27) so the
    // receiver still sees a verification failure, not a magic error.
    pos = 20 + static_cast<std::size_t>(r % 8);
  }
  uint8_t flip = static_cast<uint8_t>(1u << ((r >> 32) & 7u));
  frame[pos] = static_cast<uint8_t>(frame[pos] ^ flip);
}

void TruncateFrame(std::vector<uint8_t>& frame, uint64_t seed) {
  if (frame.empty()) return;
  uint64_t sm = seed ^ 0x165667b19e3779f9ULL;
  uint64_t r = SplitMix64(sm);
  std::size_t keep = static_cast<std::size_t>(r % frame.size());
  frame.resize(keep);
}

}  // namespace dhtjoin::cluster
