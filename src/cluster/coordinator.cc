#include "cluster/coordinator.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "cluster/supervisor.h"
#include "obs/clock.h"

namespace dhtjoin::cluster {

namespace {

constexpr std::size_t kLatencyRingCapacity = 128;

void SleepMicros(int64_t micros) {
  if (micros > 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(micros));
  }
}

Deadline EarlierDeadline(const Deadline& a, const Deadline& b) {
  if (a.is_infinite()) return b;
  if (b.is_infinite()) return a;
  return Deadline::At(std::min(a.when(), b.when()));
}

}  // namespace

ClusterCoordinator::ClusterCoordinator(const Graph& g,
                                       const DhtParams& params, int d,
                                       std::vector<WorkerEndpoint> workers,
                                       CoordinatorOptions options)
    : options_(std::move(options)),
      local_service_(g, params, d, options_.local_service),
      graph_fp_(local_service_.graph_fingerprint()),
      params_fp_(ParamsFingerprint(params, d)),
      clock_(options_.clock != nullptr ? options_.clock
                                       : obs::SystemClock::Get()),
      metrics_(local_service_.metrics()),
      latency_ring_(kLatencyRingCapacity, 0) {
  workers_.reserve(workers.size());
  for (const WorkerEndpoint& endpoint : workers) {
    auto state = std::make_unique<WorkerState>();
    state->port.store(endpoint.port, std::memory_order_relaxed);
    workers_.push_back(std::move(state));
  }
}

ClusterCoordinator::~ClusterCoordinator() { StopHeartbeats(); }

// ----------------------------------------------------------------- health

bool ClusterCoordinator::WorkerHealthy(std::size_t index) const {
  if (index >= workers_.size()) return false;
  return workers_[index]->healthy.load(std::memory_order_relaxed);
}

std::size_t ClusterCoordinator::NumHealthy() const {
  std::size_t n = 0;
  for (const auto& w : workers_) {
    if (w->healthy.load(std::memory_order_relaxed)) ++n;
  }
  return n;
}

void ClusterCoordinator::RecordMiss(std::size_t index) {
  WorkerState& w = *workers_[index];
  int64_t misses =
      w.consecutive_misses.fetch_add(1, std::memory_order_relaxed) + 1;
  if (misses >= options_.health.miss_threshold) {
    w.healthy.store(false, std::memory_order_relaxed);
  }
}

void ClusterCoordinator::RecordSuccess(std::size_t index) {
  WorkerState& w = *workers_[index];
  if (w.quarantined.load(std::memory_order_relaxed)) return;  // sticky
  w.consecutive_misses.store(0, std::memory_order_relaxed);
  w.healthy.store(true, std::memory_order_relaxed);
}

std::size_t ClusterCoordinator::NextHealthyWorker(std::size_t avoid) {
  const std::size_t n = workers_.size();
  if (n == 0) return n;
  const uint64_t start = rr_cursor_.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t idx = static_cast<std::size_t>((start + i) % n);
    if (idx == avoid) continue;
    if (workers_[idx]->healthy.load(std::memory_order_relaxed)) return idx;
  }
  return n;
}

Status ClusterCoordinator::ProbeWorker(std::size_t index) {
  metrics_.heartbeat_probes->Increment();
  const Deadline deadline = Deadline::AfterSeconds(
      static_cast<double>(options_.health.ping_timeout_micros) * 1e-6);
  Result<Socket> conn = ConnectLoopback(
      static_cast<uint16_t>(
          workers_[index]->port.load(std::memory_order_relaxed)),
      deadline);
  if (!conn.ok()) {
    RecordMiss(index);
    return conn.status();
  }
  uint64_t request_id = next_request_id_.fetch_add(1,
                                                   std::memory_order_relaxed);
  Status sent = SendFrame(*conn, FrameType::kPing, request_id, {}, deadline);
  if (!sent.ok()) {
    RecordMiss(index);
    return sent;
  }
  bool checksum_reject = false;
  Result<RecvdFrame> pong = RecvFrame(*conn, deadline, &checksum_reject);
  if (!pong.ok()) {
    if (checksum_reject) metrics_.frame_checksum_rejects->Increment();
    RecordMiss(index);
    return pong.status();
  }
  if (static_cast<FrameType>(pong->header.type) != FrameType::kPong) {
    RecordMiss(index);
    return Status::IOError("heartbeat: unexpected frame type");
  }
  Result<HelloInfo> info = DecodeHelloInfo(pong->payload);
  if (!info.ok()) {
    RecordMiss(index);
    return info.status();
  }
  if (info->graph_fp != graph_fp_ || info->params_fp != params_fp_) {
    // A mis-deployed worker: well-formed answers over the WRONG data.
    // Permanently routed around — never retried into, never respawned
    // (a relaunch would come back just as wrong).
    RecordMiss(index);
    workers_[index]->healthy.store(false, std::memory_order_relaxed);
    workers_[index]->quarantined.store(true, std::memory_order_relaxed);
    return Status::InvalidArgument(
        "worker " + std::to_string(index) +
        " identity mismatch (different graph or measure parameters)");
  }
  RecordSuccess(index);
  return Status::OK();
}

Status ClusterCoordinator::PingAll() {
  Status first_mismatch = Status::OK();
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    Status st = ProbeWorker(i);
    if (!st.ok()) {
      metrics_.heartbeat_misses->Increment();
      if (st.code() == StatusCode::kInvalidArgument && first_mismatch.ok()) {
        first_mismatch = st;
      }
    }
  }
  return first_mismatch;
}

void ClusterCoordinator::StartHeartbeats() {
  std::lock_guard<std::mutex> lock(hb_mu_);
  if (hb_thread_.joinable()) return;
  hb_stop_.store(false, std::memory_order_relaxed);
  hb_thread_ = std::thread([this] { HeartbeatLoop(); });
}

void ClusterCoordinator::StopHeartbeats() {
  std::lock_guard<std::mutex> lock(hb_mu_);
  hb_stop_.store(true, std::memory_order_relaxed);
  if (hb_thread_.joinable()) hb_thread_.join();
}

bool ClusterCoordinator::WorkerQuarantined(std::size_t index) const {
  if (index >= workers_.size()) return false;
  return workers_[index]->quarantined.load(std::memory_order_relaxed);
}

int64_t ClusterCoordinator::WorkerRespawns(std::size_t index) const {
  if (index >= workers_.size()) return 0;
  return workers_[index]->respawns.load(std::memory_order_relaxed);
}

int64_t ClusterCoordinator::TryRespawns() {
  if (!options_.respawn.enabled || options_.supervisor == nullptr) return 0;
  std::lock_guard<std::mutex> lock(respawn_mu_);
  int64_t recovered = 0;
  for (std::size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& w = *workers_[i];
    if (w.healthy.load(std::memory_order_relaxed)) {
      // A worker that came back on its own (transient network blip)
      // clears its pending relaunch; the backoff state is kept so a
      // crash-looper keeps backing off across episodes.
      w.respawn_due_ns = 0;
      continue;
    }
    if (w.quarantined.load(std::memory_order_relaxed)) continue;
    if (w.respawns.load(std::memory_order_relaxed) >=
        options_.respawn.max_respawns) {
      continue;
    }
    if (w.respawn_backoff == nullptr) {
      w.respawn_backoff =
          std::make_unique<RetryBackoff>(options_.respawn.backoff);
    }
    const int64_t now_ns = clock_->NowNanos();
    if (w.respawn_due_ns == 0) {
      // First observation of this death: schedule, don't relaunch —
      // the backoff delay is what keeps a crash-looping binary from
      // melting the host.
      w.respawn_due_ns = now_ns + w.respawn_backoff->NextDelayMicros() * 1000;
      continue;
    }
    if (now_ns < w.respawn_due_ns) continue;

    w.respawns.fetch_add(1, std::memory_order_relaxed);
    metrics_.worker_respawns->Increment();
    // Kill-then-spawn: if the slot's process is wedged rather than
    // dead, replace it outright.
    (void)options_.supervisor->Kill(i);
    Result<SpawnedWorker> spawned = options_.supervisor->Spawn(i);
    if (!spawned.ok()) {
      w.respawn_due_ns = now_ns + w.respawn_backoff->NextDelayMicros() * 1000;
      continue;
    }
    w.port.store(spawned->port, std::memory_order_relaxed);
    w.consecutive_misses.store(0, std::memory_order_relaxed);
    w.respawn_due_ns = 0;
    // Probe before re-entering rotation: success marks it healthy, a
    // fingerprint mismatch quarantines the slot right here.
    Status probed = ProbeWorker(i);
    if (probed.ok()) {
      recovered += 1;
    } else if (!w.quarantined.load(std::memory_order_relaxed)) {
      w.respawn_due_ns =
          clock_->NowNanos() + w.respawn_backoff->NextDelayMicros() * 1000;
    }
  }
  return recovered;
}

void ClusterCoordinator::HeartbeatLoop() {
  while (!hb_stop_.load(std::memory_order_relaxed)) {
    (void)PingAll();
    (void)TryRespawns();
    int64_t remaining = options_.health.heartbeat_period_micros;
    while (remaining > 0 && !hb_stop_.load(std::memory_order_relaxed)) {
      int64_t slice = std::min<int64_t>(remaining, 10000);
      SleepMicros(slice);
      remaining -= slice;
    }
  }
}

// ---------------------------------------------------------- hedge latency

void ClusterCoordinator::RecordLatencyMicros(int64_t micros) {
  std::lock_guard<std::mutex> lock(latency_mu_);
  latency_ring_[latency_pos_] = micros;
  latency_pos_ = (latency_pos_ + 1) % latency_ring_.size();
  ++latency_count_;
}

int64_t ClusterCoordinator::HedgeDelayMicros() const {
  if (!options_.hedge.enabled) return 0;
  std::vector<int64_t> sample;
  {
    std::lock_guard<std::mutex> lock(latency_mu_);
    if (latency_count_ < options_.hedge.warmup_samples) return 0;
    std::size_t filled = std::min<std::size_t>(
        static_cast<std::size_t>(latency_count_), latency_ring_.size());
    sample.assign(latency_ring_.begin(),
                  latency_ring_.begin() + static_cast<std::ptrdiff_t>(filled));
  }
  // warmup_samples = 0 activates hedging before any latency has been
  // observed; the clamp floor is the only sensible delay then.
  if (sample.empty()) return options_.hedge.min_delay_micros;
  double q = std::clamp(options_.hedge.quantile, 0.0, 1.0);
  std::size_t rank = static_cast<std::size_t>(
      q * static_cast<double>(sample.size() - 1));
  std::nth_element(sample.begin(),
                   sample.begin() + static_cast<std::ptrdiff_t>(rank),
                   sample.end());
  int64_t delay = sample[rank];
  return std::clamp(delay, options_.hedge.min_delay_micros,
                    options_.hedge.max_delay_micros);
}

// ------------------------------------------------------------------- rpc

Result<Socket> ClusterCoordinator::OpenAndSend(std::size_t worker,
                                               const TwoWayWireRequest& req,
                                               uint64_t request_id,
                                               const Deadline& deadline) {
  metrics_.rpc_attempts->Increment();
  Result<Socket> conn = ConnectLoopback(
      static_cast<uint16_t>(
          workers_[worker]->port.load(std::memory_order_relaxed)),
      deadline);
  if (!conn.ok()) return conn.status();
  std::vector<uint8_t> payload = EncodeTwoWayRequest(req);
  Status sent = SendFrame(*conn, FrameType::kTwoWay, request_id, payload,
                          deadline);
  if (!sent.ok()) return sent;
  return conn;
}

Result<TwoWayWireReply> ClusterCoordinator::RecvReply(
    Socket& sock, const Deadline& deadline) {
  bool checksum_reject = false;
  Result<RecvdFrame> frame = RecvFrame(sock, deadline, &checksum_reject);
  if (!frame.ok()) {
    if (checksum_reject) metrics_.frame_checksum_rejects->Increment();
    return frame.status();
  }
  if (static_cast<FrameType>(frame->header.type) != FrameType::kTwoWayReply) {
    return Status::IOError("unexpected frame type " +
                           std::to_string(frame->header.type));
  }
  Result<TwoWayWireReply> reply = DecodeTwoWayReply(frame->payload);
  if (!reply.ok()) {
    // A malformed payload that passed the checksum: still a transport
    // fault from the router's point of view — retryable elsewhere.
    return Status::IOError("reply decode failed: " +
                           reply.status().message());
  }
  return reply;
}

ClusterCoordinator::AttemptOutcome ClusterCoordinator::AttemptWithHedge(
    std::size_t primary, const TwoWayWireRequest& req, uint64_t request_id,
    const Deadline& deadline) {
  AttemptOutcome out;
  const int64_t attempt_start_ns = clock_->NowNanos();

  Result<Socket> leg = OpenAndSend(primary, req, request_id, deadline);
  if (!leg.ok()) {
    metrics_.rpc_transport_errors->Increment();
    RecordMiss(primary);
    out.transport = leg.status();
    return out;
  }
  Socket primary_sock = std::move(leg).value();
  Socket hedge_sock;
  std::size_t hedge_idx = workers_.size();

  // Phase 1: give the primary the hedge delay to itself. If the timer
  // (not the query deadline) expires first, duplicate the request to a
  // second healthy worker — first reply wins.
  const int64_t hedge_delay = HedgeDelayMicros();
  if (hedge_delay > 0 && NumHealthy() > 1) {
    const Deadline hedge_at = EarlierDeadline(
        Deadline::AfterSeconds(static_cast<double>(hedge_delay) * 1e-6),
        deadline);
    const int pfd = primary_sock.fd();
    Result<std::size_t> ready = WaitReadable({&pfd, 1}, hedge_at);
    if (!ready.ok() &&
        ready.status().code() == StatusCode::kDeadlineExceeded &&
        !deadline.Expired()) {
      hedge_idx = NextHealthyWorker(primary);
      if (hedge_idx != workers_.size()) {
        metrics_.hedge_fired->Increment();
        out.hedge_fired = true;
        uint64_t hedge_request_id =
            next_request_id_.fetch_add(1, std::memory_order_relaxed);
        Result<Socket> leg2 =
            OpenAndSend(hedge_idx, req, hedge_request_id, deadline);
        if (leg2.ok()) {
          hedge_sock = std::move(leg2).value();
        } else {
          metrics_.rpc_transport_errors->Increment();
          RecordMiss(hedge_idx);
          hedge_idx = workers_.size();
        }
      }
    }
    // On ready.ok() (or a poll error) fall through: phase 2 receives
    // and classifies.
  }

  // Phase 2: first well-formed reply from a live leg wins.
  bool primary_live = true;
  bool hedge_live = hedge_sock.valid();
  while (primary_live || hedge_live) {
    std::vector<int> fds;
    std::vector<int> leg_of;  // 0 = primary, 1 = hedge
    if (primary_live) {
      fds.push_back(primary_sock.fd());
      leg_of.push_back(0);
    }
    if (hedge_live) {
      fds.push_back(hedge_sock.fd());
      leg_of.push_back(1);
    }
    Result<std::size_t> ready = WaitReadable(fds, deadline);
    if (!ready.ok()) {
      metrics_.rpc_transport_errors->Increment();
      out.transport = ready.status();
      return out;
    }
    const int which = leg_of[ready.value()];
    Socket& sock = which == 0 ? primary_sock : hedge_sock;
    const std::size_t widx = which == 0 ? primary : hedge_idx;
    Result<TwoWayWireReply> reply = RecvReply(sock, deadline);
    if (!reply.ok()) {
      metrics_.rpc_transport_errors->Increment();
      RecordMiss(widx);
      out.transport = reply.status();
      if (reply.status().code() == StatusCode::kDeadlineExceeded) return out;
      if (which == 0) {
        primary_live = false;
      } else {
        hedge_live = false;
      }
      continue;  // the other leg may still answer
    }
    RecordSuccess(widx);
    metrics_.rpc_ok->Increment();
    out.transport = Status::OK();
    out.reply = std::move(reply).value();
    out.answered_by = widx;
    out.hedge_won = which == 1;
    if (out.hedge_won) metrics_.hedge_won->Increment();
    if (out.reply.status_code == StatusCode::kOk) {
      RecordLatencyMicros((clock_->NowNanos() - attempt_start_ns) / 1000);
    }
    return out;
  }
  if (out.transport.ok()) {
    out.transport = Status::IOError("every attempt leg failed");
  }
  return out;
}

// ----------------------------------------------------------------- query

Result<std::vector<ScoredPair>> ClusterCoordinator::TwoWay(
    const NodeSet& P, const NodeSet& Q, std::size_t k,
    ClusterQueryStats* stats, const ExecContext* exec) {
  ClusterQueryStats scratch;
  if (stats == nullptr) stats = &scratch;
  *stats = ClusterQueryStats{};
  const int64_t query_start_ns = clock_->NowNanos();
  auto finish_latency = [&] {
    metrics_.rpc_latency_ns->Record(clock_->NowNanos() - query_start_ns);
  };

  TwoWayWireRequest req;
  req.graph_fp = graph_fp_;
  req.params_fp = params_fp_;
  req.p_ids.reserve(P.size());
  for (ExtNodeId u : P) req.p_ids.push_back(u.value());
  req.q_ids.reserve(Q.size());
  for (ExtNodeId u : Q) req.q_ids.push_back(u.value());
  req.k = static_cast<uint64_t>(k);
  req.effort_blocks = exec != nullptr ? exec->effort_budget_blocks : 0;
  const Deadline deadline =
      exec != nullptr ? exec->deadline : Deadline::Infinite();

  RetryBackoff backoff(options_.retry.backoff);
  Status last_error = Status::IOError("no worker attempted");
  // Whether local fallback is a sound response to the last failure:
  // yes for unreachable/crashed workers, no for admission rejection
  // (load-shedding must shed) or deadline expiry (no time left).
  bool fallback_applies = true;
  std::size_t prev_worker = workers_.size();
  const int64_t max_attempts = std::max<int64_t>(1,
                                                 options_.retry.max_attempts);

  for (int64_t attempt = 0; attempt < max_attempts; ++attempt) {
    if (exec != nullptr) {
      StatusCode code = exec->Check();
      if (code == StatusCode::kCancelled) {
        finish_latency();
        return Status::Cancelled("query cancelled");
      }
      if (code != StatusCode::kOk) {
        last_error = MakeStatus(code, "query stopped before routing");
        fallback_applies = false;
        break;
      }
    }
    std::size_t widx = NextHealthyWorker(workers_.size());
    if (widx == workers_.size()) {
      last_error = Status::IOError("no healthy workers");
      fallback_applies = true;
      break;
    }
    if (attempt > 0) {
      stats->retries += 1;
      metrics_.rpc_retries->Increment();
      if (prev_worker != workers_.size() && widx != prev_worker) {
        stats->failover = true;
        metrics_.failover_worker->Increment();
      }
    }
    prev_worker = widx;

    req.deadline_micros = -1;
    if (!deadline.is_infinite()) {
      double remaining = deadline.RemainingSeconds();
      if (remaining <= 0.0) {
        last_error = Status::DeadlineExceeded("query deadline expired");
        fallback_applies = false;
        break;
      }
      req.deadline_micros = static_cast<int64_t>(remaining * 1e6);
    }

    const uint64_t request_id =
        next_request_id_.fetch_add(1, std::memory_order_relaxed);
    AttemptOutcome out = AttemptWithHedge(widx, req, request_id, deadline);
    stats->attempts += 1;
    if (out.hedge_fired) stats->hedged = true;
    if (out.hedge_won) stats->hedge_won = true;

    if (!out.transport.ok()) {
      last_error = out.transport;
      if (out.transport.code() == StatusCode::kDeadlineExceeded) {
        fallback_applies = false;
        break;
      }
      fallback_applies = true;
      continue;  // immediate retry on the next healthy worker
    }

    const StatusCode code = out.reply.status_code;
    if (code == StatusCode::kOk) {
      stats->worker_index = static_cast<int64_t>(out.answered_by);
      stats->degraded = out.reply.degraded;
      stats->level_reached = out.reply.level_reached;
      stats->eps_bound = out.reply.eps_bound;
      stats->walk_steps = out.reply.walk_steps;
      stats->warm_targets = out.reply.warm_targets;
      stats->cold_targets = out.reply.cold_targets;
      finish_latency();
      return std::move(out.reply.pairs);
    }
    if (code == StatusCode::kResourceExhausted) {
      metrics_.rpc_resource_exhausted->Increment();
      stats->retry_after_hint_micros = out.reply.retry_after_micros;
      last_error = MakeStatus(code, out.reply.message);
      fallback_applies = false;
      if (attempt + 1 < max_attempts) {
        int64_t delay = backoff.NextDelayMicros(out.reply.retry_after_micros);
        if (!deadline.is_infinite() &&
            static_cast<double>(delay) * 1e-6 >= deadline.RemainingSeconds()) {
          break;  // sleeping would outlive the query
        }
        metrics_.backoff_sleeps->Increment();
        metrics_.backoff_micros->Add(delay);
        SleepMicros(delay);
      }
      continue;
    }
    // Terminal worker-reported status (kInvalidArgument, kCancelled,
    // kDeadlineExceeded, kInternal...): retrying cannot change it.
    finish_latency();
    return MakeStatus(code, out.reply.message);
  }

  if (options_.allow_local_fallback && fallback_applies) {
    stats->local_fallback = true;
    stats->worker_index = -1;
    metrics_.failover_local->Increment();
    serve::QueryStats qs;
    Result<std::vector<ScoredPair>> local =
        local_service_.TwoWay(P, Q, k, &qs, exec);
    if (local.ok()) {
      stats->degraded = qs.join.partial.degraded;
      stats->level_reached = qs.join.partial.level_reached;
      stats->eps_bound = qs.join.partial.eps_bound;
      stats->walk_steps = qs.join.walk_steps;
      stats->warm_targets = qs.warm_targets;
      stats->cold_targets = qs.cold_targets;
    }
    finish_latency();
    return local;
  }
  finish_latency();
  return last_error;
}

}  // namespace dhtjoin::cluster
