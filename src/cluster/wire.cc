#include "cluster/wire.h"

#include <bit>
#include <cstring>

#include "util/rng.h"

namespace dhtjoin::cluster {

// ------------------------------------------------------------ ByteWriter

void ByteWriter::U16(uint16_t v) {
  U8(static_cast<uint8_t>(v & 0xffu));
  U8(static_cast<uint8_t>((v >> 8) & 0xffu));
}

void ByteWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    U8(static_cast<uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    U8(static_cast<uint8_t>((v >> (8 * i)) & 0xffu));
  }
}

void ByteWriter::F64Bits(double v) { U64(std::bit_cast<uint64_t>(v)); }

void ByteWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

// ------------------------------------------------------------ ByteReader

bool ByteReader::Take(std::size_t n, const uint8_t** out) {
  if (!ok_ || data_.size() - off_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + off_;
  off_ += n;
  return true;
}

uint8_t ByteReader::U8() {
  const uint8_t* p = nullptr;
  if (!Take(1, &p)) return 0;
  return p[0];
}

uint16_t ByteReader::U16() {
  const uint8_t* p = nullptr;
  if (!Take(2, &p)) return 0;
  return static_cast<uint16_t>(static_cast<uint16_t>(p[0]) |
                               static_cast<uint16_t>(p[1]) << 8);
}

uint32_t ByteReader::U32() {
  const uint8_t* p = nullptr;
  if (!Take(4, &p)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ByteReader::U64() {
  const uint8_t* p = nullptr;
  if (!Take(8, &p)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

double ByteReader::F64Bits() { return std::bit_cast<double>(U64()); }

std::string ByteReader::Str() {
  uint32_t n = U32();
  if (!ok_ || data_.size() - off_ < n) {
    ok_ = false;
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(data_.data() + off_), n);
  off_ += n;
  return s;
}

Status ByteReader::status() const {
  if (!ok_) return Status::InvalidArgument("wire message truncated");
  return Status::OK();
}

Status ByteReader::Finish() const {
  DHTJOIN_RETURN_NOT_OK(status());
  if (off_ != data_.size()) {
    return Status::InvalidArgument("wire message has trailing bytes");
  }
  return Status::OK();
}

// ----------------------------------------------------------- fingerprint

uint64_t ParamsFingerprint(const DhtParams& params, int d) {
  uint64_t sm = 0x243f6a8885a308d3ULL;  // pi digits; fixed fingerprint seed
  uint64_t acc = SplitMix64(sm);
  auto fold = [&](uint64_t word) {
    uint64_t s = acc ^ word;
    acc = SplitMix64(s);
  };
  fold(std::bit_cast<uint64_t>(params.alpha));
  fold(std::bit_cast<uint64_t>(params.beta));
  fold(std::bit_cast<uint64_t>(params.lambda));
  fold(params.first_hit ? 1u : 0u);
  fold(static_cast<uint64_t>(static_cast<int64_t>(d)));
  return acc;
}

// -------------------------------------------------------------- messages

namespace {

/// Upper bound sanity test for a decoded element count: each element
/// needs at least `elem_bytes` of remaining payload.
bool CountPlausible(const ByteReader& r, uint64_t count,
                    std::size_t elem_bytes) {
  return count <= r.remaining() / elem_bytes;
}

void WriteIdVector(ByteWriter& w, const std::vector<NodeId>& ids) {
  w.U32(static_cast<uint32_t>(ids.size()));
  for (NodeId id : ids) {
    w.U32(static_cast<uint32_t>(id));
  }
}

bool ReadIdVector(ByteReader& r, std::vector<NodeId>* out) {
  uint32_t n = r.U32();
  if (!r.ok() || !CountPlausible(r, n, 4)) return false;
  out->clear();
  out->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    out->push_back(static_cast<NodeId>(r.U32()));
  }
  return r.ok();
}

bool ValidStatusCode(uint16_t raw) {
  return raw <= static_cast<uint16_t>(StatusCode::kResourceExhausted);
}

}  // namespace

std::vector<uint8_t> EncodeHelloInfo(const HelloInfo& info) {
  ByteWriter w;
  w.U64(info.graph_fp);
  w.U64(info.params_fp);
  w.I64(info.d);
  w.I64(info.queries_served);
  w.I64(info.in_flight);
  return w.Take();
}

Result<HelloInfo> DecodeHelloInfo(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  HelloInfo info;
  info.graph_fp = r.U64();
  info.params_fp = r.U64();
  info.d = r.I64();
  info.queries_served = r.I64();
  info.in_flight = r.I64();
  DHTJOIN_RETURN_NOT_OK(r.Finish());
  return info;
}

std::vector<uint8_t> EncodeTwoWayRequest(const TwoWayWireRequest& req) {
  ByteWriter w;
  w.U64(req.graph_fp);
  w.U64(req.params_fp);
  WriteIdVector(w, req.p_ids);
  WriteIdVector(w, req.q_ids);
  w.U64(req.k);
  w.I64(req.deadline_micros);
  w.I64(req.effort_blocks);
  return w.Take();
}

Result<TwoWayWireRequest> DecodeTwoWayRequest(
    std::span<const uint8_t> payload) {
  ByteReader r(payload);
  TwoWayWireRequest req;
  req.graph_fp = r.U64();
  req.params_fp = r.U64();
  if (!ReadIdVector(r, &req.p_ids) || !ReadIdVector(r, &req.q_ids)) {
    return Status::InvalidArgument("two-way request: bad id vector");
  }
  req.k = r.U64();
  req.deadline_micros = r.I64();
  req.effort_blocks = r.I64();
  DHTJOIN_RETURN_NOT_OK(r.Finish());
  return req;
}

std::vector<uint8_t> EncodeTwoWayReply(const TwoWayWireReply& reply) {
  ByteWriter w;
  w.U16(static_cast<uint16_t>(reply.status_code));
  w.Str(reply.message);
  w.I64(reply.retry_after_micros);
  w.U8(reply.degraded ? 1 : 0);
  w.I64(reply.level_reached);
  w.F64Bits(reply.eps_bound);
  w.U32(static_cast<uint32_t>(reply.pairs.size()));
  for (const ScoredPair& pr : reply.pairs) {
    w.U32(static_cast<uint32_t>(pr.p));
    w.U32(static_cast<uint32_t>(pr.q));
    w.F64Bits(pr.score);
  }
  w.I64(reply.walk_steps);
  w.I64(reply.warm_targets);
  w.I64(reply.cold_targets);
  return w.Take();
}

Result<TwoWayWireReply> DecodeTwoWayReply(std::span<const uint8_t> payload) {
  ByteReader r(payload);
  TwoWayWireReply reply;
  uint16_t raw_code = r.U16();
  if (r.ok() && !ValidStatusCode(raw_code)) {
    return Status::InvalidArgument("two-way reply: unknown status code " +
                                   std::to_string(raw_code));
  }
  reply.status_code = static_cast<StatusCode>(raw_code);
  reply.message = r.Str();
  reply.retry_after_micros = r.I64();
  reply.degraded = r.U8() != 0;
  reply.level_reached = r.I64();
  reply.eps_bound = r.F64Bits();
  uint32_t n = r.U32();
  if (!r.ok() || !CountPlausible(r, n, 16)) {
    return Status::InvalidArgument("two-way reply: bad pair count");
  }
  reply.pairs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    ScoredPair pr;
    pr.p = static_cast<NodeId>(r.U32());
    pr.q = static_cast<NodeId>(r.U32());
    pr.score = r.F64Bits();
    reply.pairs.push_back(pr);
  }
  reply.walk_steps = r.I64();
  reply.warm_targets = r.I64();
  reply.cold_targets = r.I64();
  DHTJOIN_RETURN_NOT_OK(r.Finish());
  return reply;
}

Status MakeStatus(StatusCode code, std::string message) {
  switch (code) {
    case StatusCode::kOk:
      return Status::OK();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kOutOfRange:
      return Status::OutOfRange(std::move(message));
    case StatusCode::kIOError:
      return Status::IOError(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kInternal:
      return Status::Internal(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kCancelled:
      return Status::Cancelled(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
  }
  return Status::Internal("unknown status code");
}

}  // namespace dhtjoin::cluster
