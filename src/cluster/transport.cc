#include "cluster/transport.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <string>

namespace dhtjoin::cluster {

namespace {

/// Poll slice: bounds every blocking wait so stop flags and deadlines
/// are observed promptly without spinning.
constexpr int kSliceMillis = 50;

int PollTimeoutMillis(const Deadline& deadline) {
  if (deadline.is_infinite()) return kSliceMillis;
  double rem = deadline.RemainingSeconds();
  if (rem <= 0.0) return 0;
  double ms = rem * 1000.0 + 1.0;
  if (ms > static_cast<double>(kSliceMillis)) return kSliceMillis;
  return static_cast<int>(ms);
}

Status ErrnoStatus(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

sockaddr_in LoopbackAddr(uint16_t port) {
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  return addr;
}

/// Receives exactly `len` bytes into `out`, polling against the
/// deadline and the optional stop flag.
Status RecvExact(Socket& sock, uint8_t* out, std::size_t len,
                 const Deadline& deadline, const std::atomic<bool>* stop) {
  std::size_t got = 0;
  while (got < len) {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
      return Status::Cancelled("receive aborted by stop flag");
    }
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("deadline expired receiving frame");
    }
    ssize_t n = recv(sock.fd(), out + got, len - got, 0);
    if (n > 0) {
      got += static_cast<std::size_t>(n);
      continue;
    }
    if (n == 0) {
      return Status::IOError(got == 0 ? "connection closed by peer"
                                      : "connection truncated mid-frame");
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      pollfd pfd{sock.fd(), POLLIN, 0};
      (void)poll(&pfd, 1, PollTimeoutMillis(deadline));
      continue;
    }
    return ErrnoStatus("recv");
  }
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------- Socket

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) (void)shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    (void)close(fd_);
    fd_ = -1;
  }
}

Result<Socket> ConnectLoopback(uint16_t port, const Deadline& deadline) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);
  DHTJOIN_RETURN_NOT_OK(SetNonBlocking(fd));
  SetNoDelay(fd);
  sockaddr_in addr = LoopbackAddr(port);
  int rc = connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  if (rc < 0 && errno != EINPROGRESS) {
    return ErrnoStatus("connect(127.0.0.1:" + std::to_string(port) + ")");
  }
  while (rc < 0) {  // EINPROGRESS: wait for writability, then check.
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("deadline expired connecting to port " +
                                      std::to_string(port));
    }
    pollfd pfd{fd, POLLOUT, 0};
    int pr = poll(&pfd, 1, PollTimeoutMillis(deadline));
    if (pr < 0 && errno != EINTR) return ErrnoStatus("poll(connect)");
    if (pr <= 0) continue;
    int err = 0;
    socklen_t errlen = sizeof(err);
    if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &errlen) < 0) {
      return ErrnoStatus("getsockopt(SO_ERROR)");
    }
    if (err != 0) {
      return Status::IOError("connect(127.0.0.1:" + std::to_string(port) +
                             "): " + std::strerror(err));
    }
    break;
  }
  return sock;
}

// -------------------------------------------------------------- Listener

Result<Listener> Listener::BindLoopback(uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Listener lst;
  lst.sock_ = Socket(fd);
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = LoopbackAddr(port);
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    return ErrnoStatus("bind(127.0.0.1:" + std::to_string(port) + ")");
  }
  if (listen(fd, 64) < 0) return ErrnoStatus("listen");
  sockaddr_in bound;
  socklen_t blen = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &blen) < 0) {
    return ErrnoStatus("getsockname");
  }
  lst.port_ = ntohs(bound.sin_port);
  DHTJOIN_RETURN_NOT_OK(SetNonBlocking(fd));
  return lst;
}

Result<Socket> Listener::Accept(const std::atomic<bool>& stop) {
  while (true) {
    if (stop.load(std::memory_order_relaxed)) {
      return Status::Cancelled("listener stopped");
    }
    pollfd pfd{sock_.fd(), POLLIN, 0};
    int pr = poll(&pfd, 1, kSliceMillis);
    if (pr < 0 && errno != EINTR) return ErrnoStatus("poll(accept)");
    if (pr <= 0) continue;
    int conn = accept(sock_.fd(), nullptr, nullptr);
    if (conn < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR ||
          errno == ECONNABORTED) {
        continue;
      }
      // A shutdown() listener surfaces EINVAL: treat as stop.
      if (errno == EINVAL) return Status::Cancelled("listener shut down");
      return ErrnoStatus("accept");
    }
    Socket csock(conn);
    DHTJOIN_RETURN_NOT_OK(SetNonBlocking(conn));
    SetNoDelay(conn);
    return csock;
  }
}

// ------------------------------------------------------------- framed IO

Result<std::size_t> WaitReadable(std::span<const int> fds,
                                 const Deadline& deadline) {
  std::vector<pollfd> pfds;
  pfds.reserve(fds.size());
  for (int fd : fds) pfds.push_back(pollfd{fd, POLLIN, 0});
  while (true) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("deadline expired waiting for reply");
    }
    for (pollfd& p : pfds) p.revents = 0;
    int pr = poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                  PollTimeoutMillis(deadline));
    if (pr < 0 && errno != EINTR) return ErrnoStatus("poll(wait)");
    if (pr <= 0) continue;
    // Any event (data, error, hangup) makes the fd "ready": the
    // subsequent RecvFrame classifies errors precisely.
    for (std::size_t i = 0; i < pfds.size(); ++i) {
      if (pfds[i].revents != 0) return i;
    }
  }
}

Status SendBytes(Socket& sock, std::span<const uint8_t> bytes,
                 const Deadline& deadline) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    if (deadline.Expired()) {
      return Status::DeadlineExceeded("deadline expired sending frame");
    }
    ssize_t n = send(sock.fd(), bytes.data() + sent, bytes.size() - sent,
                     MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 &&
        (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      pollfd pfd{sock.fd(), POLLOUT, 0};
      (void)poll(&pfd, 1, PollTimeoutMillis(deadline));
      continue;
    }
    return ErrnoStatus("send");
  }
  return Status::OK();
}

Status SendFrame(Socket& sock, FrameType type, uint64_t request_id,
                 std::span<const uint8_t> payload, const Deadline& deadline) {
  std::vector<uint8_t> frame = EncodeFrame(type, request_id, payload);
  return SendBytes(sock, frame, deadline);
}

Result<RecvdFrame> RecvFrame(Socket& sock, const Deadline& deadline,
                             bool* checksum_reject,
                             const std::atomic<bool>* stop) {
  if (checksum_reject != nullptr) *checksum_reject = false;
  uint8_t head[kFrameHeaderBytes];
  DHTJOIN_RETURN_NOT_OK(
      RecvExact(sock, head, kFrameHeaderBytes, deadline, stop));
  DHTJOIN_ASSIGN_OR_RETURN(
      FrameHeader header,
      DecodeFrameHeader(std::span<const uint8_t>(head, kFrameHeaderBytes)));
  RecvdFrame out;
  out.header = header;
  out.payload.resize(header.payload_len);
  if (header.payload_len > 0) {
    DHTJOIN_RETURN_NOT_OK(RecvExact(sock, out.payload.data(),
                                    out.payload.size(), deadline, stop));
  }
  Status verify = VerifyFramePayload(header, out.payload);
  if (!verify.ok()) {
    if (checksum_reject != nullptr) *checksum_reject = true;
    return verify;
  }
  return out;
}

}  // namespace dhtjoin::cluster
