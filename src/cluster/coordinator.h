/// \file cluster/coordinator.h
/// \brief The client side of the cluster tier: routes two-way join
/// queries to worker processes with deadlines, retries, hedging,
/// health tracking, and byte-identical failover (DESIGN.md §12).
///
/// The invariant the whole file serves: every query handed to
/// ClusterCoordinator::TwoWay returns either an answer BYTE-IDENTICAL
/// to what the in-process DhtJoinService would have produced, or a
/// typed Status — never a hang (every wait is Deadline-bounded) and
/// never a silently wrong answer (fingerprint-checked routing,
/// checksummed frames, and a single shared execution path).
///
/// Fault policy, in the order faults are met:
///  * connect/send/recv failures and corrupt frames are TRANSPORT
///    faults: the worker takes a health miss and the query retries on
///    the next healthy worker immediately (no backoff — the data is
///    elsewhere, waiting helps nobody);
///  * worker admission rejections (kResourceExhausted) retry with
///    capped exponential backoff + jitter, honoring the worker's
///    retry-after hint as a floor (util/backoff.h);
///  * worker-reported kInvalidArgument / kCancelled /
///    kDeadlineExceeded are terminal — retrying cannot change them;
///  * a straggling worker is hedged: after the p-quantile of recent
///    latencies (clamped, warmed up), the same request is sent to a
///    second worker and the first reply wins. Hedges are safe by
///    construction: queries are read-only and answers are
///    deterministic, so duplicated execution can only waste work;
///  * when every worker is unreachable the coordinator degrades to
///    LOCAL execution through its own DhtJoinService over the same
///    graph — slower, but identical bytes.

#ifndef DHTJOIN_CLUSTER_COORDINATOR_H_
#define DHTJOIN_CLUSTER_COORDINATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cluster/metrics.h"
#include "cluster/transport.h"
#include "cluster/wire.h"
#include "serve/session.h"
#include "util/backoff.h"

namespace dhtjoin::cluster {

class WorkerSupervisor;

struct RetryPolicy {
  /// Total worker attempts per query (first try + retries), before
  /// local fallback is considered.
  int64_t max_attempts = 4;
  /// Backoff between admission-rejected attempts. Transport-failed
  /// attempts retry immediately on another worker.
  BackoffOptions backoff;
};

struct HedgePolicy {
  bool enabled = true;
  /// Latency quantile after which a hedge fires.
  double quantile = 0.95;
  /// Clamp on the derived hedge delay.
  int64_t min_delay_micros = 2000;
  int64_t max_delay_micros = 200000;
  /// Successful replies observed before hedging activates (an empty
  /// latency ring has no quantile worth acting on).
  int64_t warmup_samples = 16;
};

struct HealthPolicy {
  /// Consecutive transport misses before a worker is routed around.
  int64_t miss_threshold = 2;
  /// Per-probe timeout for heartbeat pings.
  int64_t ping_timeout_micros = 250000;
  /// Period of the background heartbeat thread (StartHeartbeats).
  int64_t heartbeat_period_micros = 200000;
};

struct WorkerEndpoint {
  uint16_t port = 0;  ///< loopback port of a WorkerServer
};

/// Supervised respawn of dead workers (DESIGN.md §13). Requires a
/// WorkerSupervisor in CoordinatorOptions; only TRANSPORT deaths are
/// respawned — a fingerprint-mismatched (quarantined) worker is a
/// deployment bug that relaunching cannot fix.
struct RespawnPolicy {
  bool enabled = false;
  /// Lifetime cap per worker slot; beyond it the slot is abandoned
  /// (a worker that keeps dying is not coming back).
  int64_t max_respawns = 3;
  /// Exponential delay between death observation and relaunch, grown
  /// across consecutive respawns of the same slot (never reset, so a
  /// crash-looping worker backs off monotonically).
  BackoffOptions backoff;
};

struct CoordinatorOptions {
  RetryPolicy retry;
  HedgePolicy hedge;
  HealthPolicy health;
  RespawnPolicy respawn;
  /// Spawn agent used by the respawn policy; slot i must serve
  /// endpoint i. Not owned. Null disables respawn regardless of
  /// `respawn.enabled`.
  WorkerSupervisor* supervisor = nullptr;
  /// Degrade to in-process execution when no worker can answer.
  /// Disabled, the coordinator returns the last transport error
  /// instead (tests pin both behaviors).
  bool allow_local_fallback = true;
  /// Options of the local fallback DhtJoinService.
  serve::DhtJoinService::Options local_service;
  /// Telemetry time source (latency ring, histograms); null = system.
  const obs::Clock* clock = nullptr;
};

/// Per-query routing observability.
struct ClusterQueryStats {
  int64_t attempts = 0;
  int64_t retries = 0;
  bool hedged = false;
  bool hedge_won = false;
  /// Query switched workers after a transport fault.
  bool failover = false;
  bool local_fallback = false;
  /// Index (into the endpoint vector) of the answering worker; -1 for
  /// local execution.
  int64_t worker_index = -1;
  /// Degradation record of the answering run (DESIGN.md §9).
  bool degraded = false;
  int64_t level_reached = 0;
  double eps_bound = 0.0;
  /// Worker-side counters of the answering run.
  int64_t walk_steps = 0;
  /// Score-cache temperature of the answering run: targets whose
  /// backward state was warm vs recomputed from scratch. The recovery
  /// bench gates on these (a warm-restored worker must beat cold).
  int64_t warm_targets = 0;
  int64_t cold_targets = 0;
  /// Last admission retry-after hint observed (micros; 0 = none).
  int64_t retry_after_hint_micros = 0;
};

/// Routes queries to a fixed set of loopback workers. Thread-safe:
/// concurrent TwoWay calls share only atomics, the latency ring
/// mutex, and the (internally synchronized) local service.
class ClusterCoordinator {
 public:
  ClusterCoordinator(const Graph& g, const DhtParams& params, int d,
                     std::vector<WorkerEndpoint> workers,
                     CoordinatorOptions options);
  ~ClusterCoordinator();

  ClusterCoordinator(const ClusterCoordinator&) = delete;
  ClusterCoordinator& operator=(const ClusterCoordinator&) = delete;

  /// Routed top-k two-way join; same result contract as
  /// DhtJoinService::TwoWay (byte-identical answers or typed Status).
  Result<std::vector<ScoredPair>> TwoWay(const NodeSet& P, const NodeSet& Q,
                                         std::size_t k,
                                         ClusterQueryStats* stats = nullptr,
                                         const ExecContext* exec = nullptr);

  /// One synchronous heartbeat round over all workers: pings, verifies
  /// identity fingerprints, updates health. Returns the first
  /// fingerprint-mismatch error (a mis-deployed worker is a
  /// configuration bug worth surfacing), OK otherwise.
  Status PingAll();

  /// Background heartbeats at HealthPolicy::heartbeat_period_micros.
  void StartHeartbeats();
  void StopHeartbeats();

  std::size_t num_workers() const { return workers_.size(); }
  bool WorkerHealthy(std::size_t index) const;
  std::size_t NumHealthy() const;

  /// One respawn pass: every dead, unquarantined, under-cap worker is
  /// scheduled (first observation) or relaunched (its backoff delay
  /// elapsed on the injected clock). Returns the number of workers
  /// brought back healthy. Called by the heartbeat loop after each
  /// ping round; callable directly by tests driving a FakeClock.
  int64_t TryRespawns();
  /// True once the worker was fingerprint-quarantined. Sticky: a
  /// quarantined worker is never respawned and never re-marked
  /// healthy.
  bool WorkerQuarantined(std::size_t index) const;
  /// Respawns attempted for this worker so far.
  int64_t WorkerRespawns(std::size_t index) const;

  /// The in-process fallback service (also the reference for
  /// byte-identity tests). Shares its MetricsRegistry with the
  /// cluster counters, so one export carries serve.* and cluster.*.
  serve::DhtJoinService& local_service() { return local_service_; }
  obs::MetricsRegistry& metrics_registry() { return local_service_.metrics(); }
  obs::MetricsSnapshot SnapshotMetrics() {
    return local_service_.SnapshotMetrics();
  }

  /// Current hedge delay (micros; 0 = hedging inactive). Exposed for
  /// tests and the stats surface.
  int64_t HedgeDelayMicros() const;

 private:
  struct WorkerState {
    /// Live port — atomic because a respawned worker comes back on a
    /// fresh ephemeral port while query threads are routing.
    std::atomic<uint32_t> port{0};
    std::atomic<int64_t> consecutive_misses{0};
    std::atomic<bool> healthy{true};
    /// Fingerprint mismatch observed — permanently routed around,
    /// never respawned (sticky; see WorkerQuarantined).
    std::atomic<bool> quarantined{false};
    std::atomic<int64_t> respawns{0};
    /// Respawn scheduling state, touched only under respawn_mu_.
    int64_t respawn_due_ns = 0;
    std::unique_ptr<RetryBackoff> respawn_backoff;
  };

  /// Outcome of one routed attempt (primary leg + optional hedge leg).
  struct AttemptOutcome {
    Status transport = Status::OK();  ///< non-OK: no usable reply
    TwoWayWireReply reply;            ///< valid iff transport.ok()
    std::size_t answered_by = 0;
    bool hedge_fired = false;
    bool hedge_won = false;
  };

  AttemptOutcome AttemptWithHedge(std::size_t primary,
                                  const TwoWayWireRequest& req,
                                  uint64_t request_id,
                                  const Deadline& deadline);
  /// One leg: connect + send. Returns the connected socket.
  Result<Socket> OpenAndSend(std::size_t worker, const TwoWayWireRequest& req,
                             uint64_t request_id, const Deadline& deadline);
  /// Receive + decode one reply from `sock`; counts checksum rejects.
  Result<TwoWayWireReply> RecvReply(Socket& sock, const Deadline& deadline);

  Status ProbeWorker(std::size_t index);
  void RecordMiss(std::size_t index);
  void RecordSuccess(std::size_t index);
  /// Next healthy worker in round-robin order, skipping `avoid`
  /// (pass num_workers() to skip nobody). Returns num_workers() when
  /// none qualify.
  std::size_t NextHealthyWorker(std::size_t avoid);
  void RecordLatencyMicros(int64_t micros);
  void HeartbeatLoop();

  CoordinatorOptions options_;
  serve::DhtJoinService local_service_;
  uint64_t graph_fp_;
  uint64_t params_fp_;
  const obs::Clock* clock_;
  ClusterMetrics metrics_;

  std::vector<std::unique_ptr<WorkerState>> workers_;
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> rr_cursor_{0};

  /// Ring of recent successful-attempt latencies feeding the hedge
  /// quantile.
  mutable std::mutex latency_mu_;
  std::vector<int64_t> latency_ring_;
  std::size_t latency_pos_ = 0;
  int64_t latency_count_ = 0;

  std::atomic<bool> hb_stop_{false};
  std::thread hb_thread_;
  std::mutex hb_mu_;
  /// Serializes TryRespawns passes (heartbeat thread vs tests).
  std::mutex respawn_mu_;
};

}  // namespace dhtjoin::cluster

#endif  // DHTJOIN_CLUSTER_COORDINATOR_H_
