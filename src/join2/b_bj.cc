#include "join2/b_bj.h"

#include "dht/backward.h"

namespace dhtjoin {

Result<std::vector<ScoredPair>> BBjJoin::Run(const Graph& g,
                                             const DhtParams& params, int d,
                                             const NodeSet& P,
                                             const NodeSet& Q,
                                             std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  DHTJOIN_ASSIGN_OR_RETURN(std::vector<ScoredPair> all,
                           RunAllPairs(g, params, d, P, Q));
  if (all.size() > k) all.resize(k);
  return all;
}

Result<std::vector<ScoredPair>> BBjJoin::RunAllPairs(const Graph& g,
                                                     const DhtParams& params,
                                                     int d, const NodeSet& P,
                                                     const NodeSet& Q) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, 1));
  stats_.Reset();
  BackwardWalker walker(g);
  std::vector<ScoredPair> out;
  for (NodeId q : Q) {
    walker.Reset(params, q);
    walker.Advance(d);
    stats_.walks_started++;
    stats_.walk_steps += d;
    for (NodeId p : P) {
      if (p == q) continue;
      double score = walker.Score(p);
      if (score > params.beta) {
        out.push_back(ScoredPair{p, q, score});
      }
    }
  }
  FinalizePairs(out, out.size());
  return out;
}

}  // namespace dhtjoin
