#include "join2/b_bj.h"

#include "dht/backward_batch.h"

namespace dhtjoin {

Result<std::vector<ScoredPair>> BBjJoin::Run(const Graph& g,
                                             const DhtParams& params, int d,
                                             const NodeSet& P,
                                             const NodeSet& Q,
                                             std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  DHTJOIN_ASSIGN_OR_RETURN(std::vector<ScoredPair> all,
                           RunAllPairs(g, params, d, P, Q));
  if (all.size() > k) all.resize(k);
  return all;
}

Result<std::vector<ScoredPair>> BBjJoin::RunAllPairs(const Graph& g,
                                                     const DhtParams& params,
                                                     int d, const NodeSet& P,
                                                     const NodeSet& Q) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, 1));
  stats_.Reset();
  // All |Q| walkers advance together, kLaneWidth per edge pass, blocks
  // spread across cores; RunChunked keeps the score matrix bounded on
  // all-pairs joins.
  BackwardWalkerBatch batch(g);
  std::vector<ScoredPair> out;
  batch.RunChunked(params, d, Q.nodes(), P.nodes(),
                   [&](std::size_t qi, const double* row) {
                     ExtNodeId q = Q[qi];
                     for (std::size_t pi = 0; pi < P.size(); ++pi) {
                       ExtNodeId p = P[pi];
                       if (p == q) continue;
                       double score = row[pi];
                       if (score > params.beta) {
                         out.push_back(ScoredPair{p.value(), q.value(), score});
                       }
                     }
                   });
  stats_.walks_started += static_cast<int64_t>(Q.size());
  stats_.walk_steps += batch.edges_relaxed();
  FinalizePairs(out, out.size());
  return out;
}

}  // namespace dhtjoin
