#include "join2/incremental.h"

#include <algorithm>
#include <limits>

#include "dht/backward_batch.h"

#include "obs/trace.h"
#include "util/top_k.h"

namespace dhtjoin {

namespace {
constexpr double kNegInf = -std::numeric_limits<double>::infinity();
}  // namespace

IncrementalTwoWayJoin::IncrementalTwoWayJoin(const Graph& g,
                                             const DhtParams& params, int d,
                                             const NodeSet& P,
                                             const NodeSet& Q,
                                             Options options)
    : g_(g),
      params_(params),
      d_(d),
      P_(P),
      Q_(Q),
      options_(options),
      walker_(g),
      walker_states_(options.state_budget_bytes > 0
                         ? options.state_budget_bytes
                         : AutotuneStateBudgetBytes(g.num_nodes())),
      autotune_budget_(options.state_budget_bytes == 0) {
  if (options_.bound == UpperBoundKind::kY) {
    ybound_ = std::make_unique<YBoundTable>(g, params, d, P, Q);
    // Charge what the S_i(P, q) sweep actually relaxed (it runs on the
    // shared adaptive engine now, so a flat d * |E| would overcount).
    stats_.walk_steps += ybound_->edges_relaxed();
  }
  q_level_.assign(Q_.size(), 0);
  residual_handle_.resize(Q_.size());
  for (std::size_t qi = 0; qi < Q_.size(); ++qi) {
    residual_handle_[qi] =
        residual_.Push(params_.beta + Remainder(0, qi), qi);
  }
}

Result<std::unique_ptr<IncrementalTwoWayJoin>> IncrementalTwoWayJoin::Create(
    const Graph& g, const DhtParams& params, int d, const NodeSet& P,
    const NodeSet& Q, std::size_t m, Options options) {
  DHTJOIN_RETURN_NOT_OK(
      ValidateJoinInputs(g, params, d, P, Q, std::max<std::size_t>(m, 1)));
  auto join = std::unique_ptr<IncrementalTwoWayJoin>(
      new IncrementalTwoWayJoin(g, params, d, P, Q, options));
  join->RunInitialSchedule(m);
  return join;
}

Result<std::unique_ptr<IncrementalTwoWayJoin>> IncrementalTwoWayJoin::Create(
    const Graph& g, const DhtParams& params, int d, const NodeSet& P,
    const NodeSet& Q, std::size_t m) {
  return Create(g, params, d, P, Q, m, Options{});
}

double IncrementalTwoWayJoin::Remainder(int l, std::size_t qi) const {
  // The enumerator ranks TRUNCATED scores h_d, which are final once the
  // walk reaches depth d — unlike X_l^+, which bounds the infinite
  // series and stays positive at l == d.
  if (l >= d_) return 0.0;
  return options_.bound == UpperBoundKind::kY ? ybound_->Bound(l, qi)
                                              : params_.XBound(l);
}

void IncrementalTwoWayJoin::DeepenTarget(std::size_t qi, int new_level) {
  DHTJOIN_CHECK_GT(new_level, q_level_[qi]);
  DHTJOIN_CHECK_LE(new_level, d_);
  // Feedback autotune: every so many walks, fold the pool's OBSERVED
  // hit/eviction behaviour back into its byte budget (grow on thrash,
  // shrink on idle). Explicit budgets are left alone. Shrink-evicted
  // states restart bit-identically, so this never changes a result.
  constexpr int64_t kRetunePeriod = 64;
  if (autotune_budget_ && ++deepen_calls_ % kRetunePeriod == 0) {
    walker_states_.Retune();
  }
  ExtNodeId q = Q_[qi];
  int64_t edges_before = walker_.edges_relaxed();
  // Resume from the target's saved state when the pool still holds it
  // at the current level; failing that, try the cross-query provider
  // (the serving cache); otherwise restart (bit-identical scores by
  // DESIGN.md §3, just 2x the steps for that target).
  BackwardWalkerState* saved = walker_states_.Find(static_cast<uint64_t>(qi));
  if (saved != nullptr && saved->level == q_level_[qi] &&
      q_level_[qi] > 0) {
    walker_.Restore(params_, *saved);
    walker_.Advance(new_level - saved->level);
    stats_.state_hits++;
  } else {
    std::shared_ptr<const BackwardWalkerState> external;
    if (options_.snapshots != nullptr) {
      external = options_.snapshots->Fetch(q);
    }
    if (external != nullptr && external->target == q && external->level > 0 &&
        external->level <= new_level) {
      walker_.Restore(params_, *external);
      walker_.Advance(new_level - external->level);
      stats_.state_hits++;
    } else {
      walker_.Reset(params_, q);
      walker_.Advance(new_level);
      stats_.walks_started++;
      stats_.state_misses++;
    }
  }
  stats_.walk_steps += walker_.edges_relaxed() - edges_before;
  // One Save serves both consumers; the provider copy is skipped
  // entirely when its cache already holds an equal-or-deeper walk
  // (WantsLevel — the common warm case).
  const bool offer = options_.snapshots != nullptr &&
                     options_.snapshots->WantsLevel(q, new_level);
  if (new_level < d_) {
    BackwardWalkerState snapshot;
    walker_.Save(&snapshot);
    if (offer) options_.snapshots->Store(q, snapshot);
    walker_states_.Put(static_cast<uint64_t>(qi), std::move(snapshot));
  } else {
    // Depth d is final for the truncated measure; the local state is
    // dead (the provider may keep a copy for other queries).
    walker_states_.Erase(static_cast<uint64_t>(qi));
    if (offer) {
      BackwardWalkerState snapshot;
      walker_.Save(&snapshot);
      options_.snapshots->Store(q, std::move(snapshot));
    }
  }
  stats_.state_evictions = walker_states_.evictions() + schedule_evictions_;
  stats_.state_resident_bytes = static_cast<int64_t>(walker_states_.bytes());

  row_buffer_.resize(P_.size());
  for (std::size_t pi = 0; pi < P_.size(); ++pi) {
    row_buffer_[pi] = walker_.Score(P_[pi]);
  }
  ApplyRow(qi, new_level, row_buffer_.data());
}

void IncrementalTwoWayJoin::ApplyRow(std::size_t qi, int new_level,
                                     const double* row) {
  DHTJOIN_CHECK_GT(new_level, q_level_[qi]);
  DHTJOIN_CHECK_LE(new_level, d_);
  ExtNodeId q = Q_[qi];
  const double remainder = Remainder(new_level, qi);
  for (std::size_t pi = 0; pi < P_.size(); ++pi) {
    ExtNodeId p = P_[pi];
    if (p == q) continue;
    double s = row[pi];
    if (s <= params_.beta) continue;
    uint64_t key = PairKey(p.value(), q.value());
    if (returned_.contains(key)) continue;
    double upper = s + remainder;
    auto it = index_.find(key);
    if (it == index_.end()) {
      PairEntry entry{p.value(), qi, s, new_level};
      index_.emplace(key, f_.Push(upper, entry));
    } else {
      PairEntry& entry = f_.GetMutable(it->second);
      // Deeper walks only tighten: lower grows, upper shrinks
      // (monotonicity of h_l and of h_l + U_l^+; see DESIGN.md).
      entry.lower = s;
      entry.level = new_level;
      f_.Update(it->second, upper);
    }
  }

  q_level_[qi] = new_level;
  if (new_level >= d_) {
    residual_.Erase(residual_handle_[qi]);
  } else {
    residual_.Update(residual_handle_[qi],
                     params_.beta + Remainder(new_level, qi));
  }
}

double IncrementalTwoWayJoin::LowerThreshold(std::size_t m) const {
  if (m == 0) return kNegInf;
  TopK<char> lowers(m);
  f_.ForEach([&lowers](const PairEntry& e, double /*priority*/) {
    lowers.Offer(e.lower, 0);
  });
  return lowers.size() < m ? kNegInf : lowers.MinKey();
}

void IncrementalTwoWayJoin::RunInitialSchedule(std::size_t m) {
  if (m == 0) return;  // fully lazy; Next() drives everything
  obs::Trace* const trace = obs::TraceOf(options_.exec);
  obs::ScopedSpan sched_span(trace, "schedule");
  std::vector<std::size_t> live(Q_.size());
  for (std::size_t qi = 0; qi < Q_.size(); ++qi) live[qi] = qi;
  stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));

  if (options_.snapshots != nullptr) {
    // Scalar schedule, kept for the serving path: the provider's
    // snapshots are scalar walks with a full score surface (reusable
    // under ANY query's P), which only the scalar walker can produce
    // and consume — DeepenTarget imports/offers them per target.
    for (int l = 1; l < d_; l *= 2) {
      obs::ScopedSpan round_span(trace, "round");
      round_span.SetAttr("level", int64_t{l});
      round_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
      std::vector<double> q_upper(live.size(), kNegInf);
      for (std::size_t i = 0; i < live.size(); ++i) {
        std::size_t qi = live[i];
        DeepenTarget(qi, l);
        // qUpper = max_p h_l(p, q) + U_l^+; the walker still holds the
        // scores of this target.
        double pmax = params_.beta;
        for (ExtNodeId p : P_) {
          if (p == Q_[qi]) continue;
          pmax = std::max(pmax, walker_.Score(p));
        }
        q_upper[i] = pmax + Remainder(l, qi);
      }
      double tm = LowerThreshold(m);
      std::vector<std::size_t> survivors;
      survivors.reserve(live.size());
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (q_upper[i] >= tm) survivors.push_back(live[i]);
      }
      stats_.pruned_fraction_per_iteration.push_back(
          1.0 - static_cast<double>(survivors.size()) /
                    static_cast<double>(Q_.size()));
      live.swap(survivors);
      stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
      round_span.SetAttr("survivors", static_cast<int64_t>(live.size()));
    }
    obs::ScopedSpan final_span(trace, "final");
    final_span.SetAttr("level", int64_t{d_});
    final_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
    for (std::size_t qi : live) {
      if (q_level_[qi] < d_) DeepenTarget(qi, d_);
    }
    return;
  }

  // Batch-driven eager schedule (the default): the whole live set
  // deepens through the fused core — one fork/join barrier per round
  // instead of one scalar walk per target per level — with per-target
  // resumable states local to the schedule. Next() keeps the scalar
  // resume pool: its single-target refinements would pay the full
  // W-lane stride for one live lane. A target pruned here restarts
  // from scratch if Next() later re-activates it — bit-identical
  // scores, just 2x the steps for that target (DESIGN.md §3, §8).
  BackwardWalkerBatch batch(g_);
  BackwardBatchStates batch_states(Q_.size(), walker_states_.max_bytes());
  // All counter folds from the batch run through this one delta-based
  // accountant, called once per deepening round. The engine counters
  // (edges, barriers, resume hits/misses) are cumulative on the batch
  // objects; folding deltas here keeps each event counted exactly once
  // — the same "one hit or miss per (target, round) resume attempt"
  // semantics the scalar DeepenTarget implements with its manual
  // increments — and makes a second fold of the same round impossible
  // (the old one-shot `+= batch_states.hits()` after the whole
  // schedule double-counts as soon as anything reads or folds
  // mid-schedule).
  int64_t edges_seen = 0;
  int64_t barriers_seen = 0;
  int64_t hits_seen = 0;
  int64_t misses_seen = 0;
  auto account = [&] {
    stats_.walk_steps += batch.edges_relaxed() - edges_seen;
    edges_seen = batch.edges_relaxed();
    stats_.barriers_per_iteration.push_back(batch.scheduler_barriers() -
                                            barriers_seen);
    stats_.pool_barriers += batch.scheduler_barriers() - barriers_seen;
    barriers_seen = batch.scheduler_barriers();
    stats_.state_hits += batch_states.hits() - hits_seen;
    hits_seen = batch_states.hits();
    stats_.state_misses += batch_states.misses() - misses_seen;
    misses_seen = batch_states.misses();
  };
  for (int l = 1; l < d_; l *= 2) {
    obs::ScopedSpan round_span(trace, "round");
    round_span.SetAttr("level", int64_t{l});
    round_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
    std::vector<ExtNodeId> nodes(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) nodes[i] = Q_[live[i]];
    std::vector<double> q_upper(live.size(), kNegInf);
    stats_.walks_started += batch.AdvanceChunked(
        params_, l, nodes, live, P_.nodes(), batch_states,
        [&](std::size_t i, const double* row) {
          const std::size_t qi = live[i];
          ApplyRow(qi, l, row);
          double pmax = params_.beta;
          for (std::size_t pi = 0; pi < P_.size(); ++pi) {
            if (P_[pi] == Q_[qi]) continue;
            pmax = std::max(pmax, row[pi]);
          }
          q_upper[i] = pmax + Remainder(l, qi);
        });
    account();
    double tm = LowerThreshold(m);
    std::vector<std::size_t> survivors;
    survivors.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (q_upper[i] >= tm) survivors.push_back(live[i]);
    }
    stats_.pruned_fraction_per_iteration.push_back(
        1.0 - static_cast<double>(survivors.size()) /
                  static_cast<double>(Q_.size()));
    live.swap(survivors);
    stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
    round_span.SetAttr("survivors", static_cast<int64_t>(live.size()));
    // Same feedback autotuning the scalar pool gets: grow the schedule's
    // state budget on thrash, shrink on idle (never changes a result).
    if (autotune_budget_) batch_states.Retune();
  }
  // Final exact-d pass for survivors; their states die with the
  // schedule (depth d is final for the truncated measure), so skip the
  // write-back.
  std::vector<std::size_t> need;
  for (std::size_t qi : live) {
    if (q_level_[qi] < d_) need.push_back(qi);
  }
  if (!need.empty()) {
    obs::ScopedSpan final_span(trace, "final");
    final_span.SetAttr("level", int64_t{d_});
    final_span.SetAttr("frontier", static_cast<int64_t>(need.size()));
    std::vector<ExtNodeId> nodes(need.size());
    for (std::size_t i = 0; i < need.size(); ++i) nodes[i] = Q_[need[i]];
    stats_.walks_started += batch.AdvanceChunked(
        params_, d_, nodes, need, P_.nodes(), batch_states,
        [&](std::size_t i, const double* row) {
          ApplyRow(need[i], d_, row);
        },
        /*save_states=*/false);
    account();
  }
  // Remember the schedule's evictions: DeepenTarget refreshes
  // stats_.state_evictions from the scalar pool on every later call,
  // using this same formula — keep the two sites identical.
  schedule_evictions_ = batch_states.evictions();
  stats_.state_evictions = walker_states_.evictions() + schedule_evictions_;
}

std::optional<ScoredPair> IncrementalTwoWayJoin::Next() {
  auto next_level = [this](int l) {
    return l == 0 ? 1 : std::min(2 * l, d_);
  };
  while (true) {
    const double unseen =
        residual_.empty() ? kNegInf : residual_.TopPriority();
    if (f_.empty()) {
      if (residual_.empty()) return std::nullopt;
      // Only unmaterialized pairs remain possible; a residual bound at
      // the floor means every remaining pair is unreachable.
      if (unseen <= params_.beta) return std::nullopt;
      std::size_t qi = residual_.Get(residual_.TopHandle());
      DeepenTarget(qi, next_level(q_level_[qi]));
      continue;
    }

    auto top_handle = f_.TopHandle();
    const PairEntry e1 = f_.Get(top_handle);
    const double second = f_.SecondPriority();
    const double blocker = std::max(second, unseen);

    if (e1.lower >= blocker) {
      if (e1.level < d_) {
        // Order is decided but the exact score is not known yet; the
        // paper exactifies with a d-step walk before emitting.
        DeepenTarget(e1.qi, d_);
        continue;
      }
      f_.Pop();
      uint64_t key = PairKey(e1.p, Q_[e1.qi].value());
      index_.erase(key);
      returned_.insert(key);
      ++num_returned_;
      return ScoredPair{e1.p, Q_[e1.qi].value(), e1.lower};
    }

    // Blocked. When the top entry is exact, the heap property makes
    // second <= e1.lower, so the blocker must be a residual target.
    if (unseen >= second && unseen > e1.lower) {
      std::size_t qi = residual_.Get(residual_.TopHandle());
      DeepenTarget(qi, next_level(q_level_[qi]));
    } else {
      // Refine the top pair's target (paper rule: min(2 l, d) steps).
      // q_level_[e1.qi] == e1.level by construction (every walk of a
      // target refreshes all of its entries); read the authoritative one.
      DeepenTarget(e1.qi, next_level(q_level_[e1.qi]));
    }
  }
}

}  // namespace dhtjoin
