/// \file join2/b_idj.h
/// \brief B-IDJ — Backward Iterative Deepening Join (paper Algorithm 2).
///
/// Iterative deepening over backward walks: walk lengths l = 1, 2, 4, ...
/// (< d); after each iteration target q is pruned from Q when
///   qUpper[q] = max_p h_l(p, q) + U_l^+  <  T_k ,
/// T_k being the k-th best lower bound of the iteration. Survivors get a
/// final exact d-step walk. The remainder bound U_l^+ is pluggable:
/// X_l^+ (B-IDJ-X) or Y_l^+(P, q) (B-IDJ-Y, tighter — the paper's best
/// 2-way algorithm and the engine inside PJ).
///
/// Deepening is RESUMABLE by default: each live target's batch walk
/// state persists across levels (BackwardBatchStates), so the geometric
/// schedule costs O(d) total steps per surviving target instead of the
/// O(2d) a restart at every level pays. Results are byte-identical
/// either way (the engine's sorted-support determinism, DESIGN.md §3);
/// `resume = false` forces the restart schedule, which the parity tests
/// and walk_steps comparisons use as the reference.

#ifndef DHTJOIN_JOIN2_B_IDJ_H_
#define DHTJOIN_JOIN2_B_IDJ_H_

#include "dht/backward_batch.h"
#include "join2/two_way_join.h"

namespace dhtjoin {

class BIdjJoin final : public TwoWayJoin {
 public:
  struct Options {
    UpperBoundKind bound = UpperBoundKind::kY;
    /// Resume per-target walk states across deepening levels. Off: the
    /// restart schedule (bit-identical output, strictly more steps).
    bool resume = true;
    /// Byte budget for the per-target states; evictions restart. 0 means
    /// autotune from graph size (AutotuneStateBudgetBytes).
    std::size_t state_budget_bytes = 0;
    /// Optional query lifecycle (util/deadline.h): deadline, cancel
    /// token, effort budget. Must outlive Run(). A hard stop (cancel)
    /// returns Status{kCancelled}; a soft stop (deadline / effort)
    /// degrades at the last completed deepening level and reports
    /// stats().partial (DESIGN.md §9). Null = run to completion.
    const ExecContext* exec = nullptr;
  };

  BIdjJoin() = default;
  explicit BIdjJoin(Options options) : options_(options) {}

  std::string Name() const override {
    return options_.bound == UpperBoundKind::kY ? "B-IDJ-Y" : "B-IDJ-X";
  }

  Result<std::vector<ScoredPair>> Run(const Graph& g, const DhtParams& params,
                                      int d, const NodeSet& P,
                                      const NodeSet& Q,
                                      std::size_t k) override;

 private:
  Options options_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_JOIN2_B_IDJ_H_
