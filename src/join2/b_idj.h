/// \file join2/b_idj.h
/// \brief B-IDJ — Backward Iterative Deepening Join (paper Algorithm 2).
///
/// Iterative deepening over backward walks: walk lengths l = 1, 2, 4, ...
/// (< d); after each iteration target q is pruned from Q when
///   qUpper[q] = max_p h_l(p, q) + U_l^+  <  T_k ,
/// T_k being the k-th best lower bound of the iteration. Survivors get a
/// final exact d-step walk. The remainder bound U_l^+ is pluggable:
/// X_l^+ (B-IDJ-X) or Y_l^+(P, q) (B-IDJ-Y, tighter — the paper's best
/// 2-way algorithm and the engine inside PJ).

#ifndef DHTJOIN_JOIN2_B_IDJ_H_
#define DHTJOIN_JOIN2_B_IDJ_H_

#include "join2/two_way_join.h"

namespace dhtjoin {

class BIdjJoin final : public TwoWayJoin {
 public:
  struct Options {
    UpperBoundKind bound = UpperBoundKind::kY;
  };

  BIdjJoin() = default;
  explicit BIdjJoin(Options options) : options_(options) {}

  std::string Name() const override {
    return options_.bound == UpperBoundKind::kY ? "B-IDJ-Y" : "B-IDJ-X";
  }

  Result<std::vector<ScoredPair>> Run(const Graph& g, const DhtParams& params,
                                      int d, const NodeSet& P,
                                      const NodeSet& Q,
                                      std::size_t k) override;

 private:
  Options options_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_JOIN2_B_IDJ_H_
