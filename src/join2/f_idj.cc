#include "join2/f_idj.h"

#include <limits>

#include "dht/forward.h"
#include "util/top_k.h"

namespace dhtjoin {

Result<std::vector<ScoredPair>> FIdjJoin::Run(const Graph& g,
                                              const DhtParams& params, int d,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  stats_.Reset();

  ForwardWalker walker(g);
  std::vector<NodeId> live(P.begin(), P.end());
  stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));

  const double kNegInf = -std::numeric_limits<double>::infinity();
  for (int l = 1; l < d; l *= 2) {
    TopK<ScoredPair> bounds(k);
    std::vector<double> p_upper(live.size(), kNegInf);
    for (std::size_t pi = 0; pi < live.size(); ++pi) {
      NodeId p = live[pi];
      double pmax = params.beta;  // floor of h_l over q
      for (NodeId q : Q) {
        if (p == q) continue;
        double s = walker.Compute(params, l, p, q);
        stats_.walks_started++;
        if (s > params.beta) {
          bounds.Offer(s, ScoredPair{p, q, s});
          if (s > pmax) pmax = s;
        }
      }
      p_upper[pi] = pmax + params.XBound(l);
    }
    double tk = bounds.Threshold();
    std::vector<NodeId> survivors;
    survivors.reserve(live.size());
    for (std::size_t pi = 0; pi < live.size(); ++pi) {
      if (p_upper[pi] >= tk) survivors.push_back(live[pi]);
    }
    stats_.pruned_fraction_per_iteration.push_back(
        1.0 - static_cast<double>(survivors.size()) /
                  static_cast<double>(P.size()));
    live.swap(survivors);
    stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
  }

  // Final pass: exact d-step scores for surviving sources.
  TopK<ScoredPair> best(k);
  for (NodeId p : live) {
    for (NodeId q : Q) {
      if (p == q) continue;
      double s = walker.Compute(params, d, p, q);
      stats_.walks_started++;
      if (s > params.beta) best.Offer(s, ScoredPair{p, q, s});
    }
  }
  stats_.walk_steps += walker.edges_relaxed();

  std::vector<ScoredPair> out;
  for (auto& entry : best.TakeSortedDescending()) {
    out.push_back(entry.item);
  }
  FinalizePairs(out, k);
  return out;
}

}  // namespace dhtjoin
