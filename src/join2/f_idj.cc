#include "join2/f_idj.h"

#include <algorithm>
#include <vector>

#include "dht/walker_state.h"
#include "obs/trace.h"
#include "util/top_k.h"

namespace dhtjoin {

Result<std::vector<ScoredPair>> FIdjJoin::Run(const Graph& g,
                                              const DhtParams& params, int d,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  stats_.Reset();
  const ExecContext* exec = options_.exec;
  obs::Trace* const trace = obs::TraceOf(exec);

  ForwardWalkerBatch batch(g);
  // Pair states are keyed on the ORIGINAL (pi, qi) grid so a source's
  // slot ids stay stable as the live set shrinks; the map is sparse, so
  // a huge pair space costs nothing until pairs actually save states.
  const bool resume = options_.resume;
  const bool autotuned_budget = options_.state_budget_bytes == 0;
  const std::size_t budget = autotuned_budget
                                 ? AutotuneStateBudgetBytes(g.num_nodes())
                                 : options_.state_budget_bytes;
  ForwardBatchStates states(budget);
  if (exec != nullptr && exec->commit_fault) {
    states.set_commit_fault(exec->commit_fault);
  }
  int64_t batch_edges_seen = 0;
  int64_t batch_barriers_seen = 0;

  // live holds ORIGINAL indices into P.
  std::vector<std::size_t> live(P.size());
  for (std::size_t pi = 0; pi < P.size(); ++pi) live[pi] = pi;
  stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));

  // Walks every (live source, q) pair to depth l and hands each score to
  // consume(i, qi, score), i indexing `live`. Resume continues each pair
  // from its saved level; restart recomputes from scratch — identical
  // scores either way (sorted-support determinism, DESIGN.md §3).
  // `save` is off for the final exact-d pass. Returns false when a
  // cooperative stop interrupted the round (resume schedule only; the
  // restart schedule polls at level boundaries) — the round's partial
  // output must then be DISCARDED.
  //
  // The resume schedule runs on the FUSED scheduler (AdvanceMany): all
  // |Q| targets' (live source, q) blocks of the round go through ONE
  // ParallelFor, instead of the historical one-AdvancePairs-barrier per
  // target per level — the O(|Q|) fork/joins that dominated large-|Q|
  // rounds once pruning had shrunk the live set (DESIGN.md §8). Targets
  // are sliced only to keep the round's score matrix near 32 MB.
  auto walk_live = [&](const std::vector<std::size_t>& lv, int l, bool save,
                       auto&& consume) {
    std::vector<ExtNodeId> nodes(lv.size());
    for (std::size_t i = 0; i < lv.size(); ++i) nodes[i] = P[lv[i]];
    bool interrupted = false;
    if (resume) {
      constexpr std::size_t kMaxMatrixDoubles = std::size_t{4} << 20;
      const std::size_t targets_per_call = std::max<std::size_t>(
          1, kMaxMatrixDoubles / std::max<std::size_t>(1, lv.size()));
      std::vector<double> scores;
      std::vector<std::size_t> slots;
      std::vector<ForwardTargetPlan> plans;
      for (std::size_t qbase = 0; qbase < Q.size();
           qbase += targets_per_call) {
        const std::size_t qcount =
            std::min(targets_per_call, Q.size() - qbase);
        scores.assign(lv.size() * qcount, 0.0);
        slots.resize(lv.size() * qcount);
        plans.assign(qcount, ForwardTargetPlan{});
        for (std::size_t t = 0; t < qcount; ++t) {
          const std::size_t qi = qbase + t;
          for (std::size_t i = 0; i < lv.size(); ++i) {
            slots[t * lv.size() + i] = lv[i] * Q.size() + qi;
          }
          plans[t].target = Q[qi];
          plans[t].sources = nodes;
          plans[t].slots = {slots.data() + t * lv.size(), lv.size()};
          plans[t].out = scores.data() + t * lv.size();
        }
        stats_.walks_started +=
            batch.AdvanceMany(params, l, plans, states, save, exec,
                              &interrupted);
        if (interrupted) break;
        for (std::size_t t = 0; t < qcount; ++t) {
          for (std::size_t i = 0; i < lv.size(); ++i) {
            consume(i, qbase + t, scores[t * lv.size() + i]);
          }
        }
      }
    } else {
      batch.RunChunked(params, l, nodes, Q.nodes(),
                       [&](std::size_t i, const double* row) {
                         for (std::size_t qi = 0; qi < Q.size(); ++qi) {
                           consume(i, qi, row[qi]);
                         }
                       });
      stats_.walks_started +=
          static_cast<int64_t>(lv.size() * Q.size());
    }
    stats_.walk_steps += batch.edges_relaxed() - batch_edges_seen;
    batch_edges_seen = batch.edges_relaxed();
    stats_.barriers_per_iteration.push_back(batch.scheduler_barriers() -
                                            batch_barriers_seen);
    batch_barriers_seen = batch.scheduler_barriers();
    return !interrupted;
  };

  // Anytime state (DESIGN.md §9): the top-k snapshot of the last
  // COMPLETED deepening level plus its level and eps bound — for F-IDJ
  // the remainder is the pair-independent X_l^+, so one scalar covers
  // every pair by construction.
  std::vector<ScoredPair> anytime;
  int cut_level = 0;
  double cut_eps = params.XBound(0);
  auto finish_stats = [&] {
    stats_.state_hits = states.hits();
    stats_.state_misses = resume ? stats_.walks_started : 0;
    stats_.state_evictions = states.evictions();
    stats_.state_resident_bytes = static_cast<int64_t>(states.bytes());
    stats_.pool_barriers = batch.scheduler_barriers();
    if (exec != nullptr) stats_.lifecycle_checks = exec->blocks_checked();
  };
  auto degrade = [&](StatusCode code) -> Result<std::vector<ScoredPair>> {
    finish_stats();
    if (code == StatusCode::kCancelled) {
      return Status::Cancelled(Name() + ": query cancelled");
    }
    stats_.partial = PartialInfo{true, cut_level, cut_eps};
    std::vector<ScoredPair> out = anytime;
    FinalizePairs(out, k);
    return out;
  };

  for (int l = 1; l < d; l *= 2) {
    if (exec != nullptr) {
      StatusCode code = exec->Check();
      if (code != StatusCode::kOk) return degrade(code);
    }
    obs::ScopedSpan round_span(trace, "round");
    round_span.SetAttr("level", int64_t{l});
    round_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
    PairTopK bounds(k);
    std::vector<double> pmax(live.size(), params.beta);  // floor over q
    bool completed = walk_live(live, l, /*save=*/true,
                               [&](std::size_t i, std::size_t qi, double s) {
      ExtNodeId p = P[live[i]];
      ExtNodeId q = Q[qi];
      if (p == q) return;  // self pair: score is meaningless
      if (s > params.beta) {
        bounds.Offer(s, ScoredPair{p.value(), q.value(), s});
        if (s > pmax[i]) pmax[i] = s;
      }
    });
    if (!completed) return degrade(exec->stop_code());
    // Round l completed: refresh the anytime snapshot before pruning.
    cut_level = l;
    cut_eps = params.XBound(l);
    {
      PairTopK snapshot = bounds;
      anytime.clear();
      for (auto& entry : snapshot.TakeSortedDescending()) {
        anytime.push_back(entry.item);
      }
    }
    if (exec != nullptr && exec->on_level) exec->on_level(l);
    double tk = bounds.Threshold();
    std::vector<std::size_t> survivors;
    survivors.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      double p_upper = pmax[i] + params.XBound(l);
      if (p_upper >= tk) {
        survivors.push_back(live[i]);
      } else if (resume) {
        // A pruned source never walks again; free its pair states.
        for (std::size_t qi = 0; qi < Q.size(); ++qi) {
          states.Drop(live[i] * Q.size() + qi);
        }
      }
    }
    stats_.pruned_fraction_per_iteration.push_back(
        1.0 - static_cast<double>(survivors.size()) /
                  static_cast<double>(P.size()));
    live.swap(survivors);
    round_span.SetAttr("survivors", static_cast<int64_t>(live.size()));
    stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
    // Feedback autotuning between rounds: fold the pool's observed
    // hit/eviction behaviour back into its byte budget (grow on thrash,
    // shrink on idle). Explicit budgets are left alone; evicted states
    // restart bit-identically, so this never changes a result.
    if (resume && autotuned_budget) states.Retune();
  }

  // Final pass: exact d-step scores for surviving sources.
  if (exec != nullptr) {
    StatusCode code = exec->Check();
    if (code != StatusCode::kOk) return degrade(code);
  }
  PairTopK best(k);
  obs::ScopedSpan final_span(trace, "final");
  final_span.SetAttr("level", int64_t{d});
  final_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
  bool completed = walk_live(live, d, /*save=*/false,
                             [&](std::size_t i, std::size_t qi, double s) {
    ExtNodeId p = P[live[i]];
    ExtNodeId q = Q[qi];
    if (p == q) return;
    if (s > params.beta) best.Offer(s, ScoredPair{p.value(), q.value(), s});
  });
  if (!completed) return degrade(exec->stop_code());

  finish_stats();
  stats_.partial = PartialInfo{false, d, 0.0};

  std::vector<ScoredPair> out;
  for (auto& entry : best.TakeSortedDescending()) {
    out.push_back(entry.item);
  }
  FinalizePairs(out, k);
  return out;
}

}  // namespace dhtjoin
