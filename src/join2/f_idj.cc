#include "join2/f_idj.h"

#include <vector>

#include "dht/walker_state.h"
#include "util/top_k.h"

namespace dhtjoin {

Result<std::vector<ScoredPair>> FIdjJoin::Run(const Graph& g,
                                              const DhtParams& params, int d,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  stats_.Reset();

  ForwardWalkerBatch batch(g);
  // Pair states are keyed on the ORIGINAL (pi, qi) grid so a source's
  // slot ids stay stable as the live set shrinks; the map is sparse, so
  // a huge pair space costs nothing until pairs actually save states.
  const bool resume = options_.resume;
  const std::size_t budget = options_.state_budget_bytes > 0
                                 ? options_.state_budget_bytes
                                 : AutotuneStateBudgetBytes(g.num_nodes());
  ForwardBatchStates states(budget);
  int64_t batch_edges_seen = 0;

  // live holds ORIGINAL indices into P.
  std::vector<std::size_t> live(P.size());
  for (std::size_t pi = 0; pi < P.size(); ++pi) live[pi] = pi;
  stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));

  // Walks every (live source, q) pair to depth l and hands each score to
  // consume(i, qi, score), i indexing `live`. Resume continues each pair
  // from its saved level; restart recomputes from scratch — identical
  // scores either way (sorted-support determinism, DESIGN.md §3).
  // `save` is off for the final exact-d pass.
  auto walk_live = [&](const std::vector<std::size_t>& lv, int l, bool save,
                       auto&& consume) {
    std::vector<NodeId> nodes(lv.size());
    for (std::size_t i = 0; i < lv.size(); ++i) nodes[i] = P[lv[i]];
    if (resume) {
      std::vector<std::size_t> slots(lv.size());
      for (std::size_t qi = 0; qi < Q.size(); ++qi) {
        for (std::size_t i = 0; i < lv.size(); ++i) {
          slots[i] = lv[i] * Q.size() + qi;
        }
        stats_.walks_started +=
            batch.AdvancePairs(params, l, nodes, slots, Q[qi], states,
                               [&](std::size_t i, double s) {
                                 consume(i, qi, s);
                               },
                               save);
      }
    } else {
      batch.RunChunked(params, l, nodes, Q.nodes(),
                       [&](std::size_t i, const double* row) {
                         for (std::size_t qi = 0; qi < Q.size(); ++qi) {
                           consume(i, qi, row[qi]);
                         }
                       });
      stats_.walks_started +=
          static_cast<int64_t>(lv.size() * Q.size());
    }
    stats_.walk_steps += batch.edges_relaxed() - batch_edges_seen;
    batch_edges_seen = batch.edges_relaxed();
  };

  for (int l = 1; l < d; l *= 2) {
    PairTopK bounds(k);
    std::vector<double> pmax(live.size(), params.beta);  // floor over q
    walk_live(live, l, /*save=*/true,
              [&](std::size_t i, std::size_t qi, double s) {
      NodeId p = P[live[i]];
      NodeId q = Q[qi];
      if (p == q) return;  // self pair: score is meaningless
      if (s > params.beta) {
        bounds.Offer(s, ScoredPair{p, q, s});
        if (s > pmax[i]) pmax[i] = s;
      }
    });
    double tk = bounds.Threshold();
    std::vector<std::size_t> survivors;
    survivors.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      double p_upper = pmax[i] + params.XBound(l);
      if (p_upper >= tk) {
        survivors.push_back(live[i]);
      } else if (resume) {
        // A pruned source never walks again; free its pair states.
        for (std::size_t qi = 0; qi < Q.size(); ++qi) {
          states.Drop(live[i] * Q.size() + qi);
        }
      }
    }
    stats_.pruned_fraction_per_iteration.push_back(
        1.0 - static_cast<double>(survivors.size()) /
                  static_cast<double>(P.size()));
    live.swap(survivors);
    stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
  }

  // Final pass: exact d-step scores for surviving sources.
  PairTopK best(k);
  walk_live(live, d, /*save=*/false,
            [&](std::size_t i, std::size_t qi, double s) {
    NodeId p = P[live[i]];
    NodeId q = Q[qi];
    if (p == q) return;
    if (s > params.beta) best.Offer(s, ScoredPair{p, q, s});
  });

  // Pool observability; all zero on the restart schedule (no pool use).
  stats_.state_hits = states.hits();
  stats_.state_misses = resume ? stats_.walks_started : 0;
  stats_.state_evictions = states.evictions();
  stats_.state_resident_bytes = static_cast<int64_t>(states.bytes());

  std::vector<ScoredPair> out;
  for (auto& entry : best.TakeSortedDescending()) {
    out.push_back(entry.item);
  }
  FinalizePairs(out, k);
  return out;
}

}  // namespace dhtjoin
