#include "join2/two_way_join.h"

#include <algorithm>

namespace dhtjoin {

Status ValidateJoinInputs(const Graph& g, const DhtParams& params, int d,
                          const NodeSet& P, const NodeSet& Q,
                          std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(params.Validate());
  if (d < 1) {
    return Status::InvalidArgument("walk depth d must be >= 1, got " +
                                   std::to_string(d));
  }
  if (k == 0) {
    return Status::InvalidArgument("k must be positive");
  }
  DHTJOIN_RETURN_NOT_OK(P.Validate(g));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(g));
  return Status::OK();
}

void FinalizePairs(std::vector<ScoredPair>& pairs, std::size_t k) {
  std::sort(pairs.begin(), pairs.end(), ScoredPairGreater);
  if (pairs.size() > k) pairs.resize(k);
}

}  // namespace dhtjoin
