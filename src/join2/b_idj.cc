#include "join2/b_idj.h"

#include <limits>
#include <memory>

#include "dht/backward.h"
#include "dht/bounds.h"
#include "util/top_k.h"

namespace dhtjoin {

Result<std::vector<ScoredPair>> BIdjJoin::Run(const Graph& g,
                                              const DhtParams& params, int d,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  stats_.Reset();

  std::unique_ptr<YBoundTable> ybound;
  if (options_.bound == UpperBoundKind::kY) {
    ybound = std::make_unique<YBoundTable>(g, params, d, P, Q);
    stats_.walk_steps += d;  // the S_i(P, q) sweep
  }
  auto remainder = [&](int l, std::size_t qi) {
    return options_.bound == UpperBoundKind::kY ? ybound->Bound(l, qi)
                                                : params.XBound(l);
  };

  BackwardWalker walker(g);
  std::vector<std::size_t> live(Q.size());
  for (std::size_t qi = 0; qi < Q.size(); ++qi) live[qi] = qi;
  stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));

  for (int l = 1; l < d; l *= 2) {
    TopK<ScoredPair> bounds(k);  // B is reset every iteration (Alg. 2 Step 3)
    std::vector<double> q_upper(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      NodeId q = Q[live[i]];
      walker.Reset(params, q);
      walker.Advance(l);
      stats_.walks_started++;
      stats_.walk_steps += l;
      double pmax = params.beta;  // floor of h_l over p
      for (NodeId p : P) {
        if (p == q) continue;
        double s = walker.Score(p);
        if (s > params.beta) {
          bounds.Offer(s, ScoredPair{p, q, s});
          if (s > pmax) pmax = s;
        }
      }
      q_upper[i] = pmax + remainder(l, live[i]);
    }
    double tk = bounds.Threshold();
    std::vector<std::size_t> survivors;
    survivors.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (q_upper[i] >= tk) survivors.push_back(live[i]);
    }
    stats_.pruned_fraction_per_iteration.push_back(
        1.0 - static_cast<double>(survivors.size()) /
                  static_cast<double>(Q.size()));
    live.swap(survivors);
    stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
  }

  // Final pass (Alg. 2 Steps 16-17): exact d-step walks for survivors.
  TopK<ScoredPair> best(k);
  for (std::size_t qi : live) {
    NodeId q = Q[qi];
    walker.Reset(params, q);
    walker.Advance(d);
    stats_.walks_started++;
    stats_.walk_steps += d;
    for (NodeId p : P) {
      if (p == q) continue;
      double s = walker.Score(p);
      if (s > params.beta) best.Offer(s, ScoredPair{p, q, s});
    }
  }

  std::vector<ScoredPair> out;
  for (auto& entry : best.TakeSortedDescending()) {
    out.push_back(entry.item);
  }
  FinalizePairs(out, k);
  return out;
}

}  // namespace dhtjoin
