#include "join2/b_idj.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <vector>

#include "dht/bounds.h"
#include "dht/walker_state.h"
#include "obs/trace.h"
#include "util/top_k.h"

namespace dhtjoin {

// NOTE: serve/session.cc's RunTwoWay carries a cache-aware copy of
// this schedule (byte-identity between the two is CI-gated); schedule
// changes here must be mirrored there.
Result<std::vector<ScoredPair>> BIdjJoin::Run(const Graph& g,
                                              const DhtParams& params, int d,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  stats_.Reset();
  const ExecContext* exec = options_.exec;
  obs::Trace* const trace = obs::TraceOf(exec);

  std::unique_ptr<YBoundTable> ybound;
  if (options_.bound == UpperBoundKind::kY) {
    obs::ScopedSpan ybound_span(trace, "ybound");
    ybound = std::make_unique<YBoundTable>(g, params, d, P, Q, exec);
    // Charge what the S_i(P, q) sweep actually relaxed (it runs on the
    // shared adaptive engine now, so a flat d * |E| would overcount).
    stats_.walk_steps += ybound->edges_relaxed();
  }
  const bool y_usable = ybound != nullptr && ybound->complete();
  auto remainder = [&](int l, std::size_t qi) {
    return y_usable ? ybound->Bound(l, qi) : params.XBound(l);
  };

  BackwardWalkerBatch batch(g);
  const bool autotuned_budget = options_.state_budget_bytes == 0;
  const std::size_t budget = autotuned_budget
                                 ? AutotuneStateBudgetBytes(g.num_nodes())
                                 : options_.state_budget_bytes;
  BackwardBatchStates states(options_.resume ? Q.size() : 0, budget);
  if (exec != nullptr && exec->commit_fault) {
    states.set_commit_fault(exec->commit_fault);
  }
  int64_t batch_edges_seen = 0;
  int64_t batch_barriers_seen = 0;
  // Batched l-step walks for the live targets; consume(i, row) receives
  // the |P|-wide score row of live[i]. With resume on, each target
  // continues from its previous level's saved state; otherwise it
  // restarts from scratch — same rows either way (sorted-support
  // determinism), different step counts. `save` is off for the final
  // exact-d pass, whose states would never be read again. Returns false
  // when a cooperative stop interrupted the round (resume schedule
  // only; the restart schedule polls at level boundaries instead) —
  // the round's partial output must then be DISCARDED.
  auto walk_live = [&](const std::vector<std::size_t>& live, int l, bool save,
                       auto&& consume) {
    std::vector<ExtNodeId> nodes(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) nodes[i] = Q[live[i]];
    bool interrupted = false;
    if (options_.resume) {
      stats_.walks_started +=
          batch.AdvanceChunked(params, l, nodes, live, P.nodes(), states,
                               consume, save, /*max_targets_per_run=*/0, exec,
                               &interrupted);
    } else {
      batch.RunChunked(params, l, nodes, P.nodes(), consume);
      stats_.walks_started += static_cast<int64_t>(live.size());
    }
    stats_.walk_steps += batch.edges_relaxed() - batch_edges_seen;
    batch_edges_seen = batch.edges_relaxed();
    stats_.barriers_per_iteration.push_back(batch.scheduler_barriers() -
                                            batch_barriers_seen);
    batch_barriers_seen = batch.scheduler_barriers();
    return !interrupted;
  };

  std::vector<std::size_t> live(Q.size());
  for (std::size_t qi = 0; qi < Q.size(); ++qi) live[qi] = qi;
  stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));

  // Anytime state (DESIGN.md §9): the top-k snapshot of the last
  // COMPLETED deepening level, its level, and the matching eps bound
  // (max U_l^+ over the targets live in that level). A soft stop
  // returns `anytime` + PartialInfo; a hard stop (cancel) errors.
  std::vector<ScoredPair> anytime;
  int cut_level = 0;
  double cut_eps = 0.0;
  for (std::size_t qi = 0; qi < Q.size(); ++qi) {
    cut_eps = std::max(cut_eps, remainder(0, qi));
  }
  auto finish_stats = [&] {
    stats_.state_hits = states.hits();
    stats_.state_misses = options_.resume ? stats_.walks_started : 0;
    stats_.state_evictions = states.evictions();
    stats_.state_resident_bytes = static_cast<int64_t>(states.bytes());
    stats_.pool_barriers = batch.scheduler_barriers();
    if (exec != nullptr) stats_.lifecycle_checks = exec->blocks_checked();
  };
  auto degrade = [&](StatusCode code) -> Result<std::vector<ScoredPair>> {
    finish_stats();
    if (code == StatusCode::kCancelled) {
      return Status::Cancelled(Name() + ": query cancelled");
    }
    stats_.partial = PartialInfo{true, cut_level, cut_eps};
    std::vector<ScoredPair> out = anytime;
    FinalizePairs(out, k);
    return out;
  };
  // An interrupted Y sweep leaves nothing to return: degrade at level 0.
  if (ybound != nullptr && !ybound->complete()) {
    return degrade(exec->stop_code());
  }

  for (int l = 1; l < d; l *= 2) {
    if (exec != nullptr) {
      StatusCode code = exec->Check();
      if (code != StatusCode::kOk) return degrade(code);
    }
    obs::ScopedSpan round_span(trace, "round");
    round_span.SetAttr("level", int64_t{l});
    round_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
    PairTopK bounds(k);  // B is reset every iteration (Alg. 2 Step 3)
    std::vector<double> q_upper(live.size());
    bool completed =
        walk_live(live, l, /*save=*/true, [&](std::size_t i,
                                              const double* row) {
          ExtNodeId q = Q[live[i]];
          double pmax = params.beta;  // floor of h_l over p
          for (std::size_t pi = 0; pi < P.size(); ++pi) {
            ExtNodeId p = P[pi];
            if (p == q) continue;
            double s = row[pi];
            if (s > params.beta) {
              bounds.Offer(s, ScoredPair{p.value(), q.value(), s});
              if (s > pmax) pmax = s;
            }
          }
          q_upper[i] = pmax + remainder(l, live[i]);
        });
    if (!completed) return degrade(exec->stop_code());
    // Round l completed: refresh the anytime snapshot before pruning.
    // The snapshot's scores are h_l values; every pair's target was
    // live entering this round, so max U_l^+ over `live` bounds them
    // all (exact = score + at most cut_eps).
    cut_level = l;
    cut_eps = 0.0;
    for (std::size_t i = 0; i < live.size(); ++i) {
      cut_eps = std::max(cut_eps, remainder(l, live[i]));
    }
    {
      PairTopK snapshot = bounds;
      anytime.clear();
      for (auto& entry : snapshot.TakeSortedDescending()) {
        anytime.push_back(entry.item);
      }
    }
    if (exec != nullptr && exec->on_level) exec->on_level(l);
    double tk = bounds.Threshold();
    std::vector<std::size_t> survivors;
    survivors.reserve(live.size());
    for (std::size_t i = 0; i < live.size(); ++i) {
      if (q_upper[i] >= tk) {
        survivors.push_back(live[i]);
      } else if (options_.resume) {
        // A pruned target never walks again; free its state now.
        states.Drop(live[i]);
      }
    }
    stats_.pruned_fraction_per_iteration.push_back(
        1.0 - static_cast<double>(survivors.size()) /
                  static_cast<double>(Q.size()));
    live.swap(survivors);
    round_span.SetAttr("survivors", static_cast<int64_t>(live.size()));
    stats_.live_per_iteration.push_back(static_cast<int64_t>(live.size()));
    // Feedback autotuning between rounds (batch_core::BatchStateBudget):
    // grow the pool on thrash, shrink on idle. Explicit budgets are the
    // caller's contract; evicted states restart bit-identically, so
    // retuning never changes a result.
    if (options_.resume && autotuned_budget) states.Retune();
  }

  // Final pass (Alg. 2 Steps 16-17): exact d-step walks for survivors.
  if (exec != nullptr) {
    StatusCode code = exec->Check();
    if (code != StatusCode::kOk) return degrade(code);
  }
  PairTopK best(k);
  if (!live.empty()) {
    obs::ScopedSpan final_span(trace, "final");
    final_span.SetAttr("level", int64_t{d});
    final_span.SetAttr("frontier", static_cast<int64_t>(live.size()));
    bool completed =
        walk_live(live, d, /*save=*/false, [&](std::size_t i,
                                               const double* row) {
          ExtNodeId q = Q[live[i]];
          for (std::size_t pi = 0; pi < P.size(); ++pi) {
            ExtNodeId p = P[pi];
            if (p == q) continue;
            double s = row[pi];
            if (s > params.beta) best.Offer(s, ScoredPair{p.value(), q.value(), s});
          }
        });
    if (!completed) return degrade(exec->stop_code());
  }

  finish_stats();
  stats_.partial = PartialInfo{false, d, 0.0};

  std::vector<ScoredPair> out;
  for (auto& entry : best.TakeSortedDescending()) {
    out.push_back(entry.item);
  }
  FinalizePairs(out, k);
  return out;
}

}  // namespace dhtjoin
