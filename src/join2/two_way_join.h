/// \file join2/two_way_join.h
/// \brief Common interface of the paper's five 2-way join algorithms.
///
/// A top-k 2-way join over DHT (paper Sec V): given node sets P and Q,
/// return the k pairs (p, q), p in P, q in Q, with the highest truncated
/// DHT h_d(p, q), together with those scores.
///
/// Result semantics shared by every implementation (and inherited by the
/// n-way joins):
///  * self pairs (p == q, possible when P and Q overlap) are excluded —
///    h(u, u) is not defined by the measure;
///  * unreachable pairs (h_d == beta, i.e. q not reachable from p within
///    d steps) are excluded, mirroring Algorithm 2's `score[p] > beta`
///    insertion guard. This is the library-wide under-k decision: a
///    floor-score pair carries no proximity signal, so every algorithm
///    (and NestedLoopJoin) drops it via the same strict `score > beta`
///    test and returns FEWER than k pairs rather than padding with
///    unreachable ones;
///  * fewer than k pairs are returned when fewer valid pairs exist;
///  * output is sorted by score descending, ties broken by (p, q)
///    ascending — including at the k-th boundary: when several pairs tie
///    there, the ones with the smallest (p, q) are retained (the
///    PairTopK tie policy below), so all algorithms return the same
///    pairs regardless of enumeration order.
///
/// Implementations: F-BJ / F-IDJ (forward, Sec V-B), B-BJ / B-IDJ-X /
/// B-IDJ-Y (backward, Sec VI), each a separate translation unit.

#ifndef DHTJOIN_JOIN2_TWO_WAY_JOIN_H_
#define DHTJOIN_JOIN2_TWO_WAY_JOIN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dht/params.h"
#include "graph/graph.h"
#include "graph/node_set.h"
#include "util/hash.h"
#include "util/status.h"
#include "util/top_k.h"

namespace dhtjoin {

/// One 2-way join result: nodes and their truncated DHT score h_d(p, q).
struct ScoredPair {
  NodeId p = kInvalidNode;
  NodeId q = kInvalidNode;
  double score = 0.0;

  bool operator==(const ScoredPair& other) const {
    return p == other.p && q == other.q && score == other.score;
  }
};

/// Descending score, ties by (p, q) ascending — the library-wide result
/// order.
inline bool ScoredPairGreater(const ScoredPair& a, const ScoredPair& b) {
  if (a.score != b.score) return a.score > b.score;
  if (a.p != b.p) return a.p < b.p;
  return a.q < b.q;
}

/// Tie policy for TopK<ScoredPair>: among equal scores, the smaller
/// (p, q) outranks — the tie half of ScoredPairGreater.
struct ScoredPairPrefer {
  bool operator()(const ScoredPair& a, const ScoredPair& b) const {
    if (a.p != b.p) return a.p < b.p;
    return a.q < b.q;
  }
};

/// The top-k heap every 2-way algorithm uses for candidate selection, so
/// the retained set at a tied k-th boundary is algorithm-independent.
using PairTopK = TopK<ScoredPair, ScoredPairPrefer>;

/// 64-bit key for hashing a node pair.
// dhtlint: allow(raw-id-param): key over ScoredPair's raw external ids
// (join OUTPUTS stay raw — DESIGN.md §10)
inline uint64_t PairKey(NodeId p, NodeId q) { return PackPair(p, q); }

/// Which remainder bound U_l^+ an IDJ-style algorithm plugs in.
enum class UpperBoundKind {
  kX,  ///< X_l^+ of Lemma 2 (pair-independent)
  kY,  ///< Y_l^+(P, q) of Theorem 1 (per-target, tighter)
};

/// Anytime-degradation record for a run under an ExecContext
/// (util/deadline.h, DESIGN.md §9). When a soft stop (deadline or
/// effort budget) interrupts an IDJ-style run, the executor cuts at the
/// last COMPLETED deepening level and returns that level's top-k; the
/// returned scores are then h_level_reached values, and by the §2
/// remainder bounds every exact score satisfies
///   score <= h_d <= score + eps_bound .
/// A full (undegraded) run reports {false, d, 0.0}.
struct PartialInfo {
  bool degraded = false;
  /// Depth of the returned scores: the last completed deepening level
  /// (0 = stopped before any level completed — scores are absent and
  /// the result is empty with eps_bound = U_0^+).
  int level_reached = 0;
  /// max over live targets q of U_{level_reached}^+(q): one scalar
  /// valid for every returned pair.
  double eps_bound = 0.0;
};

/// Observability counters filled in by every algorithm run.
struct TwoWayJoinStats {
  /// Total edges relaxed across all walks (multiply-adds into the next
  /// mass vector, as counted by the propagation engine). A dense step
  /// costs |E|; a frontier-adaptive step only what its frontier touches,
  /// so this is the number the sparse engine actually improves.
  int64_t walk_steps = 0;
  /// Number of walker (re)starts.
  int64_t walks_started = 0;
  /// For IDJ variants: number of live candidates (q for backward, p for
  /// forward) entering each deepening iteration; entry 0 is the initial
  /// size.
  std::vector<int64_t> live_per_iteration;
  /// For IDJ variants: cumulative fraction of candidates pruned after
  /// each deepening iteration (paper Fig. 10(b)).
  std::vector<double> pruned_fraction_per_iteration;

  /// Fork/join barriers (ThreadPool::ParallelFor dispatches) the run's
  /// batch engines paid in total, and per deepening round. The fused
  /// multi-target scheduler (dht/batch_core.h, DESIGN.md §8) keeps the
  /// per-round count at O(1) instead of O(|live targets|); gated in
  /// bench_scheduler and surfaced in dhtjoin_cli's stats JSON.
  int64_t pool_barriers = 0;
  std::vector<int64_t> barriers_per_iteration;

  /// Resume-state pool observability (filled by the IDJ-family runs, the
  /// incremental enumerator, and the serving executor): walks continued
  /// from a saved state vs started fresh (never saved, or evicted), and
  /// snapshots the byte budget forced out. `state_resident_bytes` is the
  /// pool's footprint when the run finished — together with the budget
  /// these are the inputs an autotuner needs (see
  /// AutotuneStateBudgetBytes in dht/walker_state.h).
  int64_t state_hits = 0;
  int64_t state_misses = 0;
  int64_t state_evictions = 0;
  int64_t state_resident_bytes = 0;

  /// Degradation record of the run (see PartialInfo); {false, d, 0}
  /// for a run that completed its exact final pass. `level_reached`
  /// stays 0 for the non-deepening algorithms (F-BJ, B-BJ), which
  /// never degrade.
  PartialInfo partial;

  /// Block-group cooperative checks performed by the run's engines
  /// (ExecContext::blocks_checked); 0 when no ExecContext was given.
  int64_t lifecycle_checks = 0;

  void Reset() { *this = TwoWayJoinStats(); }
};

/// Abstract top-k 2-way join algorithm.
class TwoWayJoin {
 public:
  virtual ~TwoWayJoin() = default;

  /// Algorithm name as used in the paper ("F-BJ", "B-IDJ-Y", ...).
  virtual std::string Name() const = 0;

  /// Runs the join; see file comment for result semantics.
  virtual Result<std::vector<ScoredPair>> Run(const Graph& g,
                                              const DhtParams& params, int d,
                                              const NodeSet& P,
                                              const NodeSet& Q,
                                              std::size_t k) = 0;

  /// Counters from the most recent Run().
  const TwoWayJoinStats& stats() const { return stats_; }

 protected:
  TwoWayJoinStats stats_;
};

/// Validates the common Run() preconditions; shared by implementations.
Status ValidateJoinInputs(const Graph& g, const DhtParams& params, int d,
                          const NodeSet& P, const NodeSet& Q, std::size_t k);

/// Sorts `pairs` into the library-wide result order and truncates to k.
void FinalizePairs(std::vector<ScoredPair>& pairs, std::size_t k);

}  // namespace dhtjoin

#endif  // DHTJOIN_JOIN2_TWO_WAY_JOIN_H_
