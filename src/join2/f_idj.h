/// \file join2/f_idj.h
/// \brief F-IDJ — forward Iterative Deepening Join (paper Sec V-B).
///
/// Adaptation of the IDJ framework [Sun et al., VLDB'11] to DHT: walk
/// lengths double per iteration (l = 1, 2, 4, ... < d); after each
/// iteration a source node p is pruned from P when
///   max_q h_l(p, q) + X_l^+  <  T_k ,
/// T_k being the k-th best lower bound seen this iteration. Survivors
/// get exact d-step scores in a final pass. Same worst case as F-BJ but
/// much faster in practice — while still paying one walk per (p, q).

#ifndef DHTJOIN_JOIN2_F_IDJ_H_
#define DHTJOIN_JOIN2_F_IDJ_H_

#include "join2/two_way_join.h"

namespace dhtjoin {

class FIdjJoin final : public TwoWayJoin {
 public:
  std::string Name() const override { return "F-IDJ"; }

  Result<std::vector<ScoredPair>> Run(const Graph& g, const DhtParams& params,
                                      int d, const NodeSet& P,
                                      const NodeSet& Q,
                                      std::size_t k) override;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_JOIN2_F_IDJ_H_
