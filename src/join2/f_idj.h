/// \file join2/f_idj.h
/// \brief F-IDJ — forward Iterative Deepening Join (paper Sec V-B).
///
/// Adaptation of the IDJ framework [Sun et al., VLDB'11] to DHT: walk
/// lengths double per iteration (l = 1, 2, 4, ... < d); after each
/// iteration a source node p is pruned from P when
///   max_q h_l(p, q) + X_l^+  <  T_k ,
/// T_k being the k-th best lower bound seen this iteration. Survivors
/// get exact d-step scores in a final pass. Same worst case as F-BJ but
/// much faster in practice — while still paying one walk per (p, q).
///
/// The per-pair walks run on ForwardWalkerBatch (kLaneWidth source
/// lanes per out-CSR pass) and, by default, RESUME across deepening
/// levels from per-pair saved states (ForwardBatchStates): O(d) total
/// steps per surviving pair instead of the O(2d) restart schedule.
/// Output is byte-identical either way (DESIGN.md §3); `resume = false`
/// forces restarts for parity tests and step-count comparisons.

#ifndef DHTJOIN_JOIN2_F_IDJ_H_
#define DHTJOIN_JOIN2_F_IDJ_H_

#include "dht/forward_batch.h"
#include "join2/two_way_join.h"

namespace dhtjoin {

class FIdjJoin final : public TwoWayJoin {
 public:
  struct Options {
    /// Resume per-pair walk states across deepening levels. Off: the
    /// restart schedule (bit-identical output, strictly more steps).
    /// States live in a sparse keyed map, so huge |P| x |Q| pair spaces
    /// resume under budget with no upfront allocation.
    bool resume = true;
    /// Byte budget for the per-pair states; evictions restart. 0 means
    /// autotune from graph size (AutotuneStateBudgetBytes).
    std::size_t state_budget_bytes = 0;
    /// Optional query lifecycle (util/deadline.h): deadline, cancel
    /// token, effort budget. Must outlive Run(). A hard stop (cancel)
    /// returns Status{kCancelled}; a soft stop (deadline / effort)
    /// degrades at the last completed deepening level and reports
    /// stats().partial (DESIGN.md §9). Null = run to completion.
    const ExecContext* exec = nullptr;
  };

  FIdjJoin() = default;
  explicit FIdjJoin(Options options) : options_(options) {}

  std::string Name() const override { return "F-IDJ"; }

  Result<std::vector<ScoredPair>> Run(const Graph& g, const DhtParams& params,
                                      int d, const NodeSet& P,
                                      const NodeSet& Q,
                                      std::size_t k) override;

 private:
  Options options_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_JOIN2_F_IDJ_H_
