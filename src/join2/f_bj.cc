#include "join2/f_bj.h"

#include "dht/forward.h"

namespace dhtjoin {

Result<std::vector<ScoredPair>> FBjJoin::Run(const Graph& g,
                                             const DhtParams& params, int d,
                                             const NodeSet& P,
                                             const NodeSet& Q,
                                             std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  DHTJOIN_ASSIGN_OR_RETURN(std::vector<ScoredPair> all,
                           RunAllPairs(g, params, d, P, Q));
  if (all.size() > k) all.resize(k);
  return all;
}

Result<std::vector<ScoredPair>> FBjJoin::RunAllPairs(const Graph& g,
                                                     const DhtParams& params,
                                                     int d, const NodeSet& P,
                                                     const NodeSet& Q) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, 1));
  stats_.Reset();
  ForwardWalker walker(g);
  std::vector<ScoredPair> out;
  for (NodeId p : P) {
    for (NodeId q : Q) {
      if (p == q) continue;
      double score = walker.Compute(params, d, p, q);
      stats_.walks_started++;
      if (score > params.beta) {
        out.push_back(ScoredPair{p, q, score});
      }
    }
  }
  stats_.walk_steps += walker.edges_relaxed();
  FinalizePairs(out, out.size());
  return out;
}

}  // namespace dhtjoin
