#include "join2/f_bj.h"

#include "dht/forward_batch.h"

namespace dhtjoin {

Result<std::vector<ScoredPair>> FBjJoin::Run(const Graph& g,
                                             const DhtParams& params, int d,
                                             const NodeSet& P,
                                             const NodeSet& Q,
                                             std::size_t k) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, k));
  DHTJOIN_ASSIGN_OR_RETURN(std::vector<ScoredPair> all,
                           RunAllPairs(g, params, d, P, Q));
  if (all.size() > k) all.resize(k);
  return all;
}

Result<std::vector<ScoredPair>> FBjJoin::RunAllPairs(const Graph& g,
                                                     const DhtParams& params,
                                                     int d, const NodeSet& P,
                                                     const NodeSet& Q) {
  DHTJOIN_RETURN_NOT_OK(ValidateJoinInputs(g, params, d, P, Q, 1));
  stats_.Reset();
  // One per-pair walk is unavoidable under first-hit absorption, but the
  // batch shares each out-CSR pass across kLaneWidth source lanes and
  // fans blocks over the thread pool; RunChunked keeps the score matrix
  // bounded on all-pairs joins.
  ForwardWalkerBatch batch(g);
  std::vector<ScoredPair> out;
  batch.RunChunked(params, d, P.nodes(), Q.nodes(),
                   [&](std::size_t pi, const double* row) {
                     ExtNodeId p = P[pi];
                     for (std::size_t qi = 0; qi < Q.size(); ++qi) {
                       ExtNodeId q = Q[qi];
                       if (p == q) continue;
                       double score = row[qi];
                       if (score > params.beta) {
                         out.push_back(ScoredPair{p.value(), q.value(), score});
                       }
                     }
                   });
  stats_.walks_started += static_cast<int64_t>(P.size() * Q.size());
  stats_.walk_steps += batch.edges_relaxed();
  FinalizePairs(out, out.size());
  return out;
}

}  // namespace dhtjoin
