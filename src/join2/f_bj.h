/// \file join2/f_bj.h
/// \brief F-BJ — Forward Basic Join (paper Sec V-B).
///
/// Computes h_d(p, q) for every pair by a full forward walk per pair:
/// O(|P| * |Q| * d * |E|). The slowest correct algorithm; it is the
/// 2-way engine the paper uses inside the AP baseline. The walks run on
/// ForwardWalkerBatch (dht/forward_batch.h), which shares each out-CSR
/// pass across kLaneWidth source lanes and fans blocks over the thread
/// pool — same asymptotics, much better constant.

#ifndef DHTJOIN_JOIN2_F_BJ_H_
#define DHTJOIN_JOIN2_F_BJ_H_

#include "join2/two_way_join.h"

namespace dhtjoin {

class FBjJoin final : public TwoWayJoin {
 public:
  std::string Name() const override { return "F-BJ"; }

  Result<std::vector<ScoredPair>> Run(const Graph& g, const DhtParams& params,
                                      int d, const NodeSet& P,
                                      const NodeSet& Q,
                                      std::size_t k) override;

  /// All-pairs variant: every valid pair with its score, sorted
  /// descending (no k cut). Used by the AP n-way baseline, which needs
  /// complete per-edge lists.
  Result<std::vector<ScoredPair>> RunAllPairs(const Graph& g,
                                              const DhtParams& params, int d,
                                              const NodeSet& P,
                                              const NodeSet& Q);
};

}  // namespace dhtjoin

#endif  // DHTJOIN_JOIN2_F_BJ_H_
