/// \file join2/incremental.h
/// \brief Resumable 2-way join — the `F` structure of PJ-i (paper Sec VI-D).
///
/// PJ-i needs getNextNodePair to be cheap: after a top-m join, the
/// (m+1)-th, (m+2)-th, ... pairs must be derivable from information the
/// top-m computation already produced, instead of re-running a top-(m+1)
/// join from scratch.
///
/// IncrementalTwoWayJoin runs a B-IDJ-style deepening schedule once, but
/// records every bound it computes in a mutable priority queue F of
/// entries  <(p, q), h-, h+, l>  ordered by the upper bound h+, paired
/// with a hash index from (p, q) to its heap handle — exactly the
/// structure the paper describes. Next() then repeatedly resolves the
/// top of F:
///   * if the top entry's lower bound dominates both the runner-up's
///     upper bound and every not-yet-materialized pair, it is the next
///     result (exactified by a d-step walk from its q first if needed);
///   * otherwise the blocking target q is walked deeper
///     (l -> min(2l, d), the paper's refinement rule) and its entries
///     are tightened in place.
///
/// Pairs invisible to F (their q was pruned early, or they were not
/// reachable within the walked depth) are covered by a per-target
/// *residual* bound beta + U_l^+(q), kept in a second heap; when such a
/// bound tops the candidate upper bounds, that q is re-activated and
/// walked deeper. This closes the gap the paper leaves open (pairs of
/// pruned targets are absent from F) and makes the enumerator exact over
/// the full valid pair space — see DESIGN.md §2.

#ifndef DHTJOIN_JOIN2_INCREMENTAL_H_
#define DHTJOIN_JOIN2_INCREMENTAL_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "dht/backward.h"
#include "dht/bounds.h"
#include "dht/walker_state.h"
#include "join2/two_way_join.h"
#include "util/deadline.h"
#include "util/mutable_heap.h"

namespace dhtjoin {

/// Produces the 2-way join results of (P, Q) one at a time, in
/// descending h_d order, resuming cheaply between calls.
class IncrementalTwoWayJoin {
 public:
  struct Options {
    UpperBoundKind bound = UpperBoundKind::kY;
    /// Byte budget for the per-target resume pool; 0 means autotune
    /// from graph size (AutotuneStateBudgetBytes).
    std::size_t state_budget_bytes = 0;
    /// Optional cross-query snapshot source (the serving cache). On a
    /// local pool miss, DeepenTarget resumes from the provider's saved
    /// walk instead of restarting, and offers its own walks back —
    /// bit-identical either way (DESIGN.md §3). Must outlive the join.
    BackwardSnapshotProvider* snapshots = nullptr;
    /// Used for TRACING only (obs::TraceOf): the initial schedule
    /// records per-round spans (level, frontier, survivors) on the
    /// attached trace. Deadline/cancel are deliberately NOT polled in
    /// this engine — PJ-i has no anytime-degradation story yet, so a
    /// mid-schedule stop would leave F half-built (DESIGN.md §9).
    const ExecContext* exec = nullptr;
  };

  /// Prepares the enumerator and runs the top-m deepening schedule.
  /// `m` tunes how much work is done eagerly (the paper's top-m join);
  /// m = 0 defers everything to Next(). Fails on invalid inputs.
  static Result<std::unique_ptr<IncrementalTwoWayJoin>> Create(
      const Graph& g, const DhtParams& params, int d, const NodeSet& P,
      const NodeSet& Q, std::size_t m, Options options);

  /// Create() with default options (B-IDJ-Y bound).
  static Result<std::unique_ptr<IncrementalTwoWayJoin>> Create(
      const Graph& g, const DhtParams& params, int d, const NodeSet& P,
      const NodeSet& Q, std::size_t m);

  /// Next pair in descending score order; nullopt when every valid pair
  /// has been returned.
  std::optional<ScoredPair> Next();

  /// Number of pairs returned so far.
  std::size_t num_returned() const { return num_returned_; }

  const TwoWayJoinStats& stats() const { return stats_; }

 private:
  struct PairEntry {
    NodeId p;
    std::size_t qi;    // index into Q
    double lower;      // h_l(p, q)
    int level;         // l at which `lower` was computed
  };

  IncrementalTwoWayJoin(const Graph& g, const DhtParams& params, int d,
                        const NodeSet& P, const NodeSet& Q, Options options);

  /// Remainder bound U_l^+ for target index qi at depth l.
  double Remainder(int l, std::size_t qi) const;

  /// Walks target qi to depth `new_level` (> current), inserting /
  /// tightening F entries and refreshing the residual bound.
  void DeepenTarget(std::size_t qi, int new_level);

  /// The F-maintenance half of a deepening: folds target qi's score row
  /// over P (h_{new_level}(P[pi], Q[qi]) at row[pi]) into the candidate
  /// heap and residual bound, and records the new level. Shared by the
  /// scalar DeepenTarget and the batch-driven initial schedule.
  void ApplyRow(std::size_t qi, int new_level, const double* row);

  /// Runs the B-IDJ deepening schedule with pruning threshold from the
  /// m-th best lower bound. Driven by the fused batch engine
  /// (BackwardWalkerBatch::AdvanceMany via AdvanceChunked) — one
  /// fork/join per deepening round over the whole live set — except
  /// when a cross-query snapshot provider is attached: provider
  /// snapshots are SCALAR walks (a full score surface, reusable under
  /// any P), which a batch row over this query's P cannot produce, so
  /// that path keeps the scalar walker and its cache import/export.
  /// Scores are identical either way (DESIGN.md §3).
  void RunInitialSchedule(std::size_t m);

  /// m-th largest lower bound currently in F (-inf when |F| < m).
  double LowerThreshold(std::size_t m) const;

  const Graph& g_;
  DhtParams params_;
  int d_;
  const NodeSet P_;  // copies: the enumerator outlives caller temporaries
  const NodeSet Q_;
  Options options_;
  std::unique_ptr<YBoundTable> ybound_;
  BackwardWalker walker_;
  // Saved per-target walk states so DeepenTarget resumes from a
  // target's current level instead of replaying it from scratch (the
  // paper's min(2l, d) refinement revisits the same targets over and
  // over). LRU under a byte budget; an evicted target restarts with
  // bit-identical results (DESIGN.md §3). When the budget came from the
  // autotuner (Options::state_budget_bytes == 0), the pool's observed
  // hit/eviction counters feed back into it periodically
  // (WalkerStatePool::Retune): grow on thrash, shrink on idle.
  WalkerStatePool<BackwardWalkerState> walker_states_;
  bool autotune_budget_ = false;
  int64_t deepen_calls_ = 0;
  int64_t schedule_evictions_ = 0;  // from the batch-driven top-m setup
  std::vector<double> row_buffer_;  // scratch: one score row over P_

  MutableHeap<PairEntry> f_;  // keyed by upper bound h+
  std::unordered_map<uint64_t, MutableHeap<PairEntry>::Handle> index_;
  std::unordered_set<uint64_t> returned_;

  // Residual heap over target indices, keyed by beta + U_l^+(q): the
  // bound on any pair of that target not represented in F.
  MutableHeap<std::size_t> residual_;
  std::vector<MutableHeap<std::size_t>::Handle> residual_handle_;
  std::vector<int> q_level_;  // walked depth per target (0 = never)

  std::size_t num_returned_ = 0;
  TwoWayJoinStats stats_;
};

}  // namespace dhtjoin

#endif  // DHTJOIN_JOIN2_INCREMENTAL_H_
