/// \file join2/b_bj.h
/// \brief B-BJ — Backward Basic Join (paper Sec VI-A).
///
/// One d-step backward walk per target q yields h_d(p, q) for every
/// p in P at once: O(|Q| * d * |E|), an O(|P|)-factor improvement over
/// F-BJ. No pruning; running time is independent of k.

#ifndef DHTJOIN_JOIN2_B_BJ_H_
#define DHTJOIN_JOIN2_B_BJ_H_

#include "join2/two_way_join.h"

namespace dhtjoin {

class BBjJoin final : public TwoWayJoin {
 public:
  std::string Name() const override { return "B-BJ"; }

  Result<std::vector<ScoredPair>> Run(const Graph& g, const DhtParams& params,
                                      int d, const NodeSet& P,
                                      const NodeSet& Q,
                                      std::size_t k) override;

  /// All-pairs variant (no k cut); a faster engine for the AP baseline
  /// than the paper's F-BJ choice — used by the ablation bench.
  Result<std::vector<ScoredPair>> RunAllPairs(const Graph& g,
                                              const DhtParams& params, int d,
                                              const NodeSet& P,
                                              const NodeSet& Q);
};

}  // namespace dhtjoin

#endif  // DHTJOIN_JOIN2_B_BJ_H_
