#include "spjoin/bfs.h"

#include <deque>

#include "util/check.h"

namespace dhtjoin {

namespace {

template <typename NeighborFn>
std::vector<int> Bfs(const Graph& g, IntNodeId start, int max_depth,
                     NeighborFn&& neighbors) {
  DHTJOIN_CHECK(g.ContainsNode(start));
  DHTJOIN_CHECK_GE(max_depth, 0);
  std::vector<int> dist(static_cast<std::size_t>(g.num_nodes()),
                        kUnreachable);
  dist[static_cast<std::size_t>(start.value())] = 0;
  std::deque<NodeId> frontier = {start.value()};
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop_front();
    int du = dist[static_cast<std::size_t>(u)];
    if (du == max_depth) continue;
    neighbors(u, [&](NodeId v) {
      if (dist[static_cast<std::size_t>(v)] == kUnreachable) {
        dist[static_cast<std::size_t>(v)] = du + 1;
        frontier.push_back(v);
      }
    });
  }
  return dist;
}

}  // namespace

std::vector<int> BfsFrom(const Graph& g, IntNodeId source, int max_depth) {
  return Bfs(g, source, max_depth, [&g](NodeId u, auto&& visit) {
    for (const OutEdge& e : g.OutEdges(IntNodeId(u))) visit(e.to);
  });
}

std::vector<int> BfsTo(const Graph& g, IntNodeId target, int max_depth) {
  return Bfs(g, target, max_depth, [&g](NodeId u, auto&& visit) {
    for (const InEdge& e : g.InEdges(IntNodeId(u))) visit(e.from);
  });
}

}  // namespace dhtjoin
