/// \file spjoin/distance_join.h
/// \brief The shortest-path distance-join baseline (Zou et al., VLDB'09)
/// that the paper's Related Work argues against.
///
/// Given a query graph over node sets and a global threshold delta, the
/// distance join returns ALL n-tuples whose every query-edge pair
/// (r_i, r_j) satisfies dist(r_i, r_j) <= delta (directed hop count).
/// The paper's two criticisms are directly observable here:
///   * result cardinality is wildly sensitive to delta (there is no
///     top-k control) — see the delta sweep in bench_baseline_spjoin;
///   * shortest-path distance is a weaker predictor than random-walk
///     proximity — see eval/link_prediction vs the distance ranking.

#ifndef DHTJOIN_SPJOIN_DISTANCE_JOIN_H_
#define DHTJOIN_SPJOIN_DISTANCE_JOIN_H_

#include <vector>

#include "core/query_graph.h"
#include "eval/roc.h"
#include "util/status.h"

namespace dhtjoin {

/// Result of a distance join.
struct DistanceJoinResult {
  /// Qualifying tuples (node per attribute), up to `max_results`.
  std::vector<std::vector<NodeId>> tuples;
  /// True when enumeration stopped at the cap (more answers exist).
  bool truncated = false;
};

/// Evaluates the distance join; `max_results` caps the output (the
/// unbounded result set is the baseline's documented weakness).
Result<DistanceJoinResult> DistanceJoin(const Graph& g,
                                        const QueryGraph& query, int delta,
                                        std::size_t max_results = 100000);

/// Link prediction by (negative) shortest-path distance, the baseline
/// ranking for the paper's "random walk beats shortest path" claim:
/// candidates are non-adjacent (p, q) pairs on `test_graph`, scored by
/// -dist(p, q) (ties broken by nothing — BFS distance is integral, so
/// the ROC handles the tie plateaus), labelled by adjacency in
/// `true_graph`.
Result<eval::RocResult> EvaluateLinkPredictionByDistance(
    const Graph& true_graph, const Graph& test_graph, const NodeSet& P,
    const NodeSet& Q, int max_depth);

}  // namespace dhtjoin

#endif  // DHTJOIN_SPJOIN_DISTANCE_JOIN_H_
