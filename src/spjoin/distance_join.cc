#include "spjoin/distance_join.h"

#include <unordered_map>

#include "spjoin/bfs.h"
#include "util/hash.h"

namespace dhtjoin {

Result<DistanceJoinResult> DistanceJoin(const Graph& g,
                                        const QueryGraph& query, int delta,
                                        std::size_t max_results) {
  DHTJOIN_RETURN_NOT_OK(query.Validate(g));
  if (delta < 1) {
    return Status::InvalidArgument("delta must be >= 1");
  }

  // Per query edge, the set of qualifying pairs keyed for O(1) probes,
  // computed by one truncated backward BFS per target node:
  // O(|E_Q| * |R_j| * (|V| + |E|)) worst case, usually far less at
  // small delta.
  const auto& edges = query.edges();
  std::vector<std::unordered_map<uint64_t, char>> pair_ok(edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const NodeSet& P = query.set(edges[e].left);
    const NodeSet& Q = query.set(edges[e].right);
    // Sets hold external ids; BFS is layout-addressed. pair_ok keys
    // stay external, matching the enumerated tuples.
    for (ExtNodeId q : Q) {
      std::vector<int> dist = BfsTo(g, g.ToInternal(q), delta);
      for (ExtNodeId p : P) {
        if (p == q) continue;
        int d = dist[static_cast<std::size_t>(g.ToInternal(p).value())];
        if (d != kUnreachable && d <= delta) {
          pair_ok[e].emplace(PackPair(p.value(), q.value()), 1);
        }
      }
    }
  }

  // Enumerate tuples with nested loops over attributes, pruning as soon
  // as a bound edge pair disqualifies.
  DistanceJoinResult out;
  const int n = query.num_sets();
  std::vector<NodeId> tuple(static_cast<std::size_t>(n), kInvalidNode);
  // Edges checkable once attribute `a` is bound (both endpoints <= a).
  std::vector<std::vector<std::size_t>> checks(static_cast<std::size_t>(n));
  for (std::size_t e = 0; e < edges.size(); ++e) {
    int latest = std::max(edges[e].left, edges[e].right);
    checks[static_cast<std::size_t>(latest)].push_back(e);
  }

  auto enumerate = [&](auto&& self, int attr) -> bool {
    if (attr == n) {
      out.tuples.push_back(tuple);
      return out.tuples.size() < max_results;
    }
    for (ExtNodeId r : query.set(attr)) {
      tuple[static_cast<std::size_t>(attr)] = r.value();
      bool ok = true;
      for (std::size_t e : checks[static_cast<std::size_t>(attr)]) {
        NodeId u = tuple[static_cast<std::size_t>(edges[e].left)];
        NodeId v = tuple[static_cast<std::size_t>(edges[e].right)];
        if (u == v || !pair_ok[e].contains(PackPair(u, v))) {
          ok = false;
          break;
        }
      }
      if (!ok) continue;
      if (!self(self, attr + 1)) return false;
    }
    return true;
  };
  out.truncated = !enumerate(enumerate, 0);
  return out;
}

Result<eval::RocResult> EvaluateLinkPredictionByDistance(
    const Graph& true_graph, const Graph& test_graph, const NodeSet& P,
    const NodeSet& Q, int max_depth) {
  DHTJOIN_RETURN_NOT_OK(P.Validate(test_graph));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(test_graph));
  DHTJOIN_RETURN_NOT_OK(P.Validate(true_graph));
  DHTJOIN_RETURN_NOT_OK(Q.Validate(true_graph));
  if (max_depth < 1) return Status::InvalidArgument("max_depth must be >= 1");

  std::vector<std::pair<double, bool>> scored;
  // P/Q hold external ids; BFS distances and HasEdge are
  // layout-addressed.
  for (ExtNodeId q : Q) {
    const IntNodeId iq = test_graph.ToInternal(q);
    std::vector<int> dist = BfsTo(test_graph, iq, max_depth);
    for (ExtNodeId p : P) {
      if (p == q) continue;
      const IntNodeId ip = test_graph.ToInternal(p);
      if (test_graph.HasEdge(ip, iq)) continue;
      int d = dist[static_cast<std::size_t>(ip.value())];
      // Unreachable pairs rank at the bottom, like beta-floor DHT pairs.
      double score = d == kUnreachable
                         ? -static_cast<double>(max_depth) - 1.0
                         : -static_cast<double>(d);
      scored.emplace_back(score, true_graph.HasEdge(true_graph.ToInternal(p),
                                                    true_graph.ToInternal(q)));
    }
  }
  return eval::ComputeRoc(std::move(scored));
}

}  // namespace dhtjoin
