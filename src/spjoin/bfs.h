/// \file spjoin/bfs.h
/// \brief Hop-count shortest-path distances (the comparator's metric).
///
/// The paper's related work (Sec II) contrasts its DHT top-k join with
/// the distance-join of Zou et al. [VLDB'09], which matches node tuples
/// whose pairwise SHORTEST-PATH distances stay within a threshold
/// delta. This module supplies the distances: plain BFS over edge hops
/// (edge weights express affinity strength, not length, on every
/// dataset in the paper — hop count is the natural distance).

#ifndef DHTJOIN_SPJOIN_BFS_H_
#define DHTJOIN_SPJOIN_BFS_H_

#include <vector>

#include "graph/graph.h"

namespace dhtjoin {

/// Marker for "unreachable" in distance vectors.
inline constexpr int kUnreachable = -1;

/// Directed hop distances FROM `source` to every node, truncated at
/// `max_depth` (nodes further away report kUnreachable). The result is
/// indexed by INTERNAL (layout) id, matching the seed argument's space.
std::vector<int> BfsFrom(const Graph& g, IntNodeId source, int max_depth);

/// Directed hop distances from every node TO `target` (walks in-edges),
/// truncated at `max_depth`. Internal-indexed, like BfsFrom.
std::vector<int> BfsTo(const Graph& g, IntNodeId target, int max_depth);

}  // namespace dhtjoin

#endif  // DHTJOIN_SPJOIN_BFS_H_
