/// \file tests/graph_io_test.cc
/// \brief Unit tests for edge-list / node-set serialization, including
/// failure injection on malformed files.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "graph/graph_io.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

class GraphIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "dhtjoin_io_" + name;
  }

  void WriteFile(const std::string& path, const std::string& content) {
    std::ofstream out(path);
    out << content;
  }
};

TEST_F(GraphIoTest, RoundTripPreservesGraph) {
  Graph g = testing::TwoCommunityGraph();
  std::string path = TempPath("roundtrip.txt");
  ASSERT_TRUE(SaveEdgeList(g, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded->num_edges(), g.num_edges());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    auto row = g.OutEdges(IntNodeId(u));
    auto weights = g.OutWeights(IntNodeId(u));
    for (std::size_t i = 0; i < row.size(); ++i) {
      EXPECT_DOUBLE_EQ(
          loaded->EdgeWeight(IntNodeId(u), IntNodeId(row[i].to)),
          weights[i]);
    }
  }
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, LoadsHeaderlessFileWithDefaults) {
  std::string path = TempPath("headerless.txt");
  WriteFile(path, "0 1\n1 2 2.5\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(IntNodeId(0), IntNodeId(1)), 1.0);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(IntNodeId(1), IntNodeId(2)), 2.5);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, CommentsAndBlankLinesIgnored) {
  std::string path = TempPath("comments.txt");
  WriteFile(path, "# a comment\n\n0 1\n# another\n1 0\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, MissingFileIsIOError) {
  auto g = LoadEdgeList("/nonexistent/definitely/missing.txt");
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
}

TEST_F(GraphIoTest, MalformedLineReportsLineNumber) {
  std::string path = TempPath("malformed.txt");
  WriteFile(path, "0 1\nnot numbers\n");
  auto g = LoadEdgeList(path);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, NegativeIdRejected) {
  std::string path = TempPath("negid.txt");
  WriteFile(path, "0 -1\n");
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, NonPositiveWeightRejected) {
  std::string path = TempPath("badweight.txt");
  WriteFile(path, "0 1 0\n");
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, HeaderNodeCountTooSmallRejected) {
  std::string path = TempPath("badheader.txt");
  WriteFile(path, "# dhtjoin-graph nodes=2 edges=1 directed=1\n0 5 1\n");
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, HeaderAllowsIsolatedTrailingNodes) {
  std::string path = TempPath("isolated.txt");
  WriteFile(path, "# dhtjoin-graph nodes=10 edges=1 directed=1\n0 1 1\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 10);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, NodeSetsRoundTrip) {
  std::vector<NodeSet> sets = {
      NodeSet("alpha", std::vector<NodeId>{3, 1, 2}),
      NodeSet("beta", std::vector<NodeId>{7})};
  std::string path = TempPath("sets.txt");
  ASSERT_TRUE(SaveNodeSets(sets, path).ok());
  auto loaded = LoadNodeSets(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 2u);
  EXPECT_EQ((*loaded)[0].name(), "alpha");
  EXPECT_EQ((*loaded)[0].size(), 3u);
  EXPECT_EQ((*loaded)[1].name(), "beta");
  EXPECT_TRUE((*loaded)[1].Contains(ExtNodeId(7)));
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, NodeSetNegativeIdRejected) {
  std::string path = TempPath("negsets.txt");
  WriteFile(path, "alpha 1 -2\n");
  EXPECT_FALSE(LoadNodeSets(path).ok());
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, ScientificNotationWeightsAccepted) {
  std::string path = TempPath("sci.txt");
  WriteFile(path, "0 1 1.5e2\n1 0 2.5E-1\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_DOUBLE_EQ(g->EdgeWeight(IntNodeId(0), IntNodeId(1)), 150.0);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(IntNodeId(1), IntNodeId(0)), 0.25);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, DuplicateEdgesInFileAccumulate) {
  std::string path = TempPath("dups.txt");
  WriteFile(path, "0 1 1\n0 1 2\n");
  auto g = LoadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(IntNodeId(0), IntNodeId(1)), 3.0);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, SelfLoopInFileRejected) {
  std::string path = TempPath("selfloop.txt");
  WriteFile(path, "2 2 1\n");
  EXPECT_FALSE(LoadEdgeList(path).ok());
  std::remove(path.c_str());
}

// Negative coverage at every field boundary: a file truncated or
// garbled mid-token must be a typed kIOError naming the line — never
// a silently different graph (DESIGN.md §13 treats loader laxity as a
// durability bug).

TEST_F(GraphIoTest, EdgeLineTruncatedAfterSourceRejected) {
  std::string path = TempPath("trunc_src.txt");
  WriteFile(path, "0 1 1\n3\n");
  auto g = LoadEdgeList(path);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), StatusCode::kIOError);
  EXPECT_NE(g.status().message().find(":2:"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, MalformedHeaderNodeCountRejected) {
  for (const char* header :
       {"# dhtjoin-graph nodes=abc edges=1 directed=1\n",
        "# dhtjoin-graph nodes=-5 edges=1 directed=1\n",
        "# dhtjoin-graph nodes= edges=1 directed=1\n"}) {
    SCOPED_TRACE(header);
    std::string path = TempPath("badhdr.txt");
    WriteFile(path, std::string(header) + "0 1 1\n");
    auto g = LoadEdgeList(path);
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code(), StatusCode::kIOError);
    EXPECT_NE(g.status().message().find("malformed nodes="),
              std::string::npos);
    std::remove(path.c_str());
  }
}

TEST_F(GraphIoTest, GarbledWeightTokenIsAnErrorNotWeightOne) {
  // Pre-hardening, ">> w" failing silently defaulted the weight to 1
  // — a truncated file loaded as a DIFFERENT graph. Now it is typed.
  std::string path = TempPath("garbledw.txt");
  WriteFile(path, "0 1 x\n");
  auto g = LoadEdgeList(path);
  ASSERT_FALSE(g.ok());
  EXPECT_NE(g.status().message().find("malformed edge weight"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST_F(GraphIoTest, TrailingGarbageAfterEdgeRejected) {
  for (const char* line : {"0 1 1.0 extra\n", "0 1 1.5x\n", "0 1 2 3\n"}) {
    SCOPED_TRACE(line);
    std::string path = TempPath("trailing.txt");
    WriteFile(path, line);
    auto g = LoadEdgeList(path);
    ASSERT_FALSE(g.ok());
    EXPECT_EQ(g.status().code(), StatusCode::kIOError);
    std::remove(path.c_str());
  }
}

TEST_F(GraphIoTest, NodeSetGarbledIdMidLineRejected) {
  // "2x" parses its numeric prefix then leaves garbage; a lax loader
  // would keep the prefix and drop the rest of the line.
  for (const char* line : {"alpha 1 2x 3\n", "alpha 1 foo\n"}) {
    SCOPED_TRACE(line);
    std::string path = TempPath("garbledset.txt");
    WriteFile(path, line);
    auto sets = LoadNodeSets(path);
    ASSERT_FALSE(sets.ok());
    EXPECT_EQ(sets.status().code(), StatusCode::kIOError);
    EXPECT_NE(sets.status().message().find("alpha"), std::string::npos);
    std::remove(path.c_str());
  }
}

TEST_F(GraphIoTest, SaveToUnwritablePathFails) {
  Graph g = testing::PathGraph(2);
  EXPECT_EQ(SaveEdgeList(g, "/nonexistent/dir/file.txt").code(),
            StatusCode::kIOError);
}

}  // namespace
}  // namespace dhtjoin
