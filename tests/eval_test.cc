/// \file tests/eval_test.cc
/// \brief ROC/AUC math and the link / 3-clique prediction harnesses.

#include <gtest/gtest.h>

#include "datasets/perturb.h"
#include "datasets/yeast_like.h"
#include "eval/clique_prediction.h"
#include "eval/link_prediction.h"
#include "eval/roc.h"
#include "testing/reference.h"

namespace dhtjoin::eval {
namespace {

TEST(RocTest, PerfectRankingIsAucOne) {
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 10; ++i) scored.emplace_back(10.0 - i, i < 3);
  RocResult r = ComputeRoc(scored);
  EXPECT_DOUBLE_EQ(r.auc, 1.0);
  EXPECT_EQ(r.positives, 3);
  EXPECT_EQ(r.negatives, 7);
  EXPECT_DOUBLE_EQ(r.points.front().tpr, 0.0);
  EXPECT_DOUBLE_EQ(r.points.back().tpr, 1.0);
  EXPECT_DOUBLE_EQ(r.points.back().fpr, 1.0);
}

TEST(RocTest, InvertedRankingIsAucZero) {
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 10; ++i) scored.emplace_back(10.0 - i, i >= 7);
  EXPECT_DOUBLE_EQ(ComputeRoc(scored).auc, 0.0);
}

TEST(RocTest, AllTiedIsAucHalf) {
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 20; ++i) scored.emplace_back(1.0, i % 2 == 0);
  EXPECT_DOUBLE_EQ(ComputeRoc(scored).auc, 0.5);
}

TEST(RocTest, RandomScoresNearHalf) {
  Rng rng(8);
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 20000; ++i) {
    scored.emplace_back(rng.NextDouble(), rng.Chance(0.3));
  }
  EXPECT_NEAR(ComputeRoc(scored).auc, 0.5, 0.02);
}

TEST(RocTest, DegenerateInputs) {
  EXPECT_DOUBLE_EQ(ComputeRoc({}).auc, 0.0);
  EXPECT_DOUBLE_EQ(ComputeRoc({{1.0, true}}).auc, 0.0);   // no negatives
  EXPECT_DOUBLE_EQ(ComputeRoc({{1.0, false}}).auc, 0.0);  // no positives
}

TEST(RocTest, AucEqualsMannWhitneyStatistic) {
  // AUC == P(score_pos > score_neg) + 0.5 P(tie), checked by brute force.
  Rng rng(9);
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 200; ++i) {
    // Positives drawn from a higher-mean distribution.
    bool pos = rng.Chance(0.4);
    double s = rng.NextDouble() + (pos ? 0.3 : 0.0);
    scored.emplace_back(s, pos);
  }
  double wins = 0.0;
  int64_t pairs = 0;
  for (const auto& [sp, lp] : scored) {
    if (!lp) continue;
    for (const auto& [sn, ln] : scored) {
      if (ln) continue;
      ++pairs;
      if (sp > sn) {
        wins += 1.0;
      } else if (sp == sn) {
        wins += 0.5;
      }
    }
  }
  EXPECT_NEAR(ComputeRoc(scored).auc, wins / static_cast<double>(pairs),
              1e-9);
}

TEST(RocTest, CurveIsMonotone) {
  Rng rng(10);
  std::vector<std::pair<double, bool>> scored;
  for (int i = 0; i < 500; ++i) {
    scored.emplace_back(rng.NextDouble(), rng.Chance(0.2));
  }
  RocResult r = ComputeRoc(scored);
  for (std::size_t i = 1; i < r.points.size(); ++i) {
    EXPECT_GE(r.points[i].fpr, r.points[i - 1].fpr - 1e-15);
    EXPECT_GE(r.points[i].tpr, r.points[i - 1].tpr - 1e-15);
  }
}

// ----------------------------------------------------- link prediction

TEST(LinkPredictionTest, RecoversRemovedEdges) {
  // Remove half the inter-set edges of a community graph; DHT on the
  // remainder should rank the removed pairs well above random pairs.
  auto ds = datasets::GenerateYeastLike(datasets::YeastLikeConfig{
      .num_nodes = 600, .num_edges = 2400, .seed = 21});
  ASSERT_TRUE(ds.ok());
  const NodeSet& P = ds->partitions[0];
  const NodeSet& Q = ds->partitions[1];
  auto removed =
      datasets::RemoveInterSetEdges(ds->graph, P, Q, 0.5, 99);
  ASSERT_TRUE(removed.ok());
  ASSERT_GT(removed->removed.size(), 5u);
  DhtParams params = DhtParams::Lambda(0.2);
  auto roc = EvaluateLinkPrediction(ds->graph, removed->graph, P, Q, params,
                                    8);
  ASSERT_TRUE(roc.ok()) << roc.status().ToString();
  EXPECT_GT(roc->positives, 0);
  EXPECT_GT(roc->negatives, 0);
  EXPECT_GT(roc->auc, 0.7);  // far better than chance
}

TEST(LinkPredictionTest, ExcludesExistingTestEdges) {
  // Candidates must not include pairs already linked in T; with
  // fraction=0 the candidate set has no positives that are T-edges.
  auto ds = datasets::GenerateYeastLike(datasets::YeastLikeConfig{
      .num_nodes = 400, .num_edges = 1600, .seed = 22});
  ASSERT_TRUE(ds.ok());
  const NodeSet& P = ds->partitions[0];
  const NodeSet& Q = ds->partitions[1];
  DhtParams params = DhtParams::Lambda(0.2);
  // T == G: every remaining candidate is a non-edge of G => 0 positives.
  auto roc = EvaluateLinkPrediction(ds->graph, ds->graph, P, Q, params, 8);
  ASSERT_TRUE(roc.ok());
  EXPECT_EQ(roc->positives, 0);
}

TEST(LinkPredictionTest, InvalidInputsRejected) {
  Graph g = testing::TwoCommunityGraph();
  DhtParams params = DhtParams::Lambda(0.2);
  NodeSet P = testing::Range("P", 0, 5);
  NodeSet Q = testing::Range("Q", 5, 10);
  EXPECT_FALSE(
      EvaluateLinkPrediction(g, g, NodeSet("E", std::vector<NodeId>{}), Q,
                             params, 8)
          .ok());
  EXPECT_FALSE(EvaluateLinkPrediction(g, g, P, Q, params, 0).ok());
}

// --------------------------------------------------- clique prediction

TEST(CliquePredictionTest, RecoversBrokenCliques) {
  auto ds = datasets::GenerateYeastLike(datasets::YeastLikeConfig{
      .num_nodes = 500, .num_edges = 2500, .seed = 23});
  ASSERT_TRUE(ds.ok());
  const NodeSet& P = ds->partitions[0];
  const NodeSet& Q = ds->partitions[1];
  const NodeSet& R = ds->partitions[2];
  auto tris = datasets::FindTriangles(ds->graph, P, Q, R);
  if (tris.size() < 3) GTEST_SKIP() << "not enough cliques in sample";
  auto removed = datasets::RemoveCliqueEdges(ds->graph, P, Q, R, 31);
  ASSERT_TRUE(removed.ok());
  DhtParams params = DhtParams::Lambda(0.2);
  auto roc = EvaluateCliquePrediction(ds->graph, removed->graph, P, Q, R,
                                      params, 8,
                                      CliquePredictionOptions{.k = 500,
                                                              .m = 100});
  ASSERT_TRUE(roc.ok()) << roc.status().ToString();
  EXPECT_GT(roc->positives, 0);
  EXPECT_GT(roc->auc, 0.5);
}

}  // namespace
}  // namespace dhtjoin::eval
