/// \file tests/node_id_test.cc
/// \brief The strong-id safety contract (graph/node_id.h, DESIGN.md
/// §10): a mis-spaced call — an external id handed to an internal-space
/// API or vice versa — must be a COMPILE error. The static_asserts
/// below are the negative-compile suite: each one proves a forbidden
/// call does not instantiate. Runtime tests cover the sanctioned
/// crossings (ToInternal/ToExternal) and the zero-copy raw bridges.

#include <gtest/gtest.h>

#include <unordered_set>
#include <vector>

#include "dht/backward.h"
#include "dht/forward.h"
#include "dht/propagate.h"
#include "graph/graph.h"
#include "graph/node_id.h"
#include "graph/node_set.h"
#include "graph/reorder.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

// ------------------------------------------------- the typing contract
// (compile-time; mirrors the static_asserts in node_id.h and extends
// them to the engine boundaries)

// No implicit wrap, no unwrap, no cross-space conversion.
static_assert(!std::is_convertible_v<NodeId, ExtNodeId>);
static_assert(!std::is_convertible_v<NodeId, IntNodeId>);
static_assert(!std::is_convertible_v<ExtNodeId, NodeId>);
static_assert(!std::is_convertible_v<IntNodeId, NodeId>);
static_assert(!std::is_constructible_v<ExtNodeId, IntNodeId>);
static_assert(!std::is_constructible_v<IntNodeId, ExtNodeId>);

// CSR accessors are INTERNAL-space: external ids must not compile.
template <class Id>
concept OutDegreeTakes = requires(const Graph& g, Id u) { g.OutDegree(u); };
template <class Id>
concept OutEdgesTakes = requires(const Graph& g, Id u) { g.OutEdges(u); };
template <class IdA, class IdB>
concept HasEdgeTakes =
    requires(const Graph& g, IdA u, IdB v) { g.HasEdge(u, v); };
static_assert(OutDegreeTakes<IntNodeId>);
static_assert(!OutDegreeTakes<ExtNodeId>);
static_assert(!OutDegreeTakes<NodeId>);
static_assert(OutEdgesTakes<IntNodeId>);
static_assert(!OutEdgesTakes<ExtNodeId>);
static_assert(HasEdgeTakes<IntNodeId, IntNodeId>);
static_assert(!HasEdgeTakes<ExtNodeId, ExtNodeId>);
static_assert(!HasEdgeTakes<IntNodeId, ExtNodeId>);  // no half-mixing

// The remap crossings accept exactly one direction each.
template <class Id>
concept ToInternalTakes = requires(const Graph& g, Id u) { g.ToInternal(u); };
template <class Id>
concept ToExternalTakes = requires(const Graph& g, Id u) { g.ToExternal(u); };
static_assert(ToInternalTakes<ExtNodeId>);
static_assert(!ToInternalTakes<IntNodeId>);
static_assert(!ToInternalTakes<NodeId>);
static_assert(ToExternalTakes<IntNodeId>);
static_assert(!ToExternalTakes<ExtNodeId>);

// Walker boundaries are EXTERNAL-space.
template <class Id>
concept BackwardResetTakes =
    requires(BackwardWalker& w, const DhtParams& p, Id q) { w.Reset(p, q); };
template <class Id>
concept BackwardScoreTakes =
    requires(const BackwardWalker& w, Id u) { w.Score(u); };
static_assert(BackwardResetTakes<ExtNodeId>);
static_assert(!BackwardResetTakes<IntNodeId>);
static_assert(!BackwardResetTakes<NodeId>);
static_assert(BackwardScoreTakes<ExtNodeId>);
static_assert(!BackwardScoreTakes<IntNodeId>);

template <class Id>
concept ForwardComputeTakes =
    requires(ForwardWalker& w, const DhtParams& p, Id u, Id v) {
      w.Compute(p, 4, u, v);
    };
static_assert(ForwardComputeTakes<ExtNodeId>);
static_assert(!ForwardComputeTakes<IntNodeId>);
static_assert(!ForwardComputeTakes<NodeId>);

// The low-level engine is INTERNAL-space.
template <class Id>
concept PropagatorResetTakes =
    requires(Propagator& e, Id seed) { e.Reset(seed); };
template <class Id>
concept PropagatorMassTakes =
    requires(const Propagator& e, Id u) { e.Mass(u); };
static_assert(PropagatorResetTakes<IntNodeId>);
static_assert(!PropagatorResetTakes<ExtNodeId>);
static_assert(PropagatorMassTakes<IntNodeId>);
static_assert(!PropagatorMassTakes<ExtNodeId>);
static_assert(!PropagatorMassTakes<NodeId>);

// NodeSet is EXTERNAL-space.
template <class Id>
concept NodeSetContainsTakes =
    requires(const NodeSet& s, Id u) { s.Contains(u); };
static_assert(NodeSetContainsTakes<ExtNodeId>);
static_assert(!NodeSetContainsTakes<IntNodeId>);

// ------------------------------------------------------ runtime checks

TEST(NodeIdTest, DefaultIsInvalid) {
  ExtNodeId e;
  IntNodeId i;
  EXPECT_FALSE(e.valid());
  EXPECT_FALSE(i.valid());
  EXPECT_EQ(e.value(), kInvalidNode);
  EXPECT_TRUE(ExtNodeId(0).valid());
  EXPECT_FALSE(ExtNodeId(-3).valid());
}

TEST(NodeIdTest, OrderAndEqualityWithinASpace) {
  EXPECT_EQ(ExtNodeId(4), ExtNodeId(4));
  EXPECT_NE(ExtNodeId(4), ExtNodeId(5));
  EXPECT_LT(ExtNodeId(4), ExtNodeId(5));
  EXPECT_LT(IntNodeId(0), IntNodeId(1));
}

TEST(NodeIdTest, IdentityLayoutRoundTrips) {
  Graph g = testing::PathGraph(4);  // never reordered: identity remap
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(g.ToInternal(ExtNodeId(u)).value(), u);
    EXPECT_EQ(g.ToExternal(IntNodeId(u)).value(), u);
  }
}

TEST(NodeIdTest, ReorderedLayoutRoundTripsAndPreservesEdges) {
  Graph g = testing::TwoCommunityGraph();
  auto rg = ReorderGraph(g, ReorderKind::kDegree);
  ASSERT_TRUE(rg.ok());
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const ExtNodeId ext(u);
    const IntNodeId in = rg->ToInternal(ext);
    EXPECT_EQ(rg->ToExternal(in), ext) << "roundtrip broke at " << u;
  }
  // Edge (u, v) in external terms must survive the relabeling.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const OutEdge& e : g.OutEdges(IntNodeId(u))) {
      // Never-reordered g: internal == external, so u/e.to are both.
      EXPECT_TRUE(rg->HasEdge(rg->ToInternal(ExtNodeId(u)),
                              rg->ToInternal(ExtNodeId(e.to))));
    }
  }
}

TEST(NodeIdTest, RawBridgesAreZeroCopyViews) {
  std::vector<ExtNodeId> typed = {ExtNodeId(3), ExtNodeId(1), ExtNodeId(2)};
  std::span<const NodeId> raw = RawIds(typed);
  ASSERT_EQ(raw.size(), 3u);
  EXPECT_EQ(raw[0], 3);
  EXPECT_EQ(static_cast<const void*>(raw.data()),
            static_cast<const void*>(typed.data()));

  std::vector<NodeId> storage = {7, 8};
  std::span<const ExtNodeId> ext_view = AsExtIds(storage);
  std::span<const IntNodeId> int_view = AsIntIds(storage);
  EXPECT_EQ(ext_view[1].value(), 8);
  EXPECT_EQ(int_view[0].value(), 7);
  EXPECT_EQ(static_cast<const void*>(ext_view.data()),
            static_cast<const void*>(storage.data()));
}

TEST(NodeIdTest, WrapExtIdsCopies) {
  std::vector<NodeId> raw = {5, 0, 5};
  std::vector<ExtNodeId> typed = WrapExtIds(raw);
  ASSERT_EQ(typed.size(), 3u);
  EXPECT_EQ(typed[0], ExtNodeId(5));
  EXPECT_EQ(typed[2].value(), 5);
}

TEST(NodeIdTest, HashSupportsUnorderedContainers) {
  std::unordered_set<ExtNodeId> set;
  set.insert(ExtNodeId(1));
  set.insert(ExtNodeId(1));
  set.insert(ExtNodeId(2));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.contains(ExtNodeId(2)));
  EXPECT_FALSE(set.contains(ExtNodeId(3)));
}

TEST(NodeIdTest, ContainsNodeAcceptsBothSpaces) {
  Graph g = testing::PathGraph(3);
  EXPECT_TRUE(g.ContainsNode(ExtNodeId(2)));
  EXPECT_TRUE(g.ContainsNode(IntNodeId(2)));
  EXPECT_FALSE(g.ContainsNode(ExtNodeId(3)));
  EXPECT_FALSE(g.ContainsNode(IntNodeId(-1)));
}

}  // namespace
}  // namespace dhtjoin
