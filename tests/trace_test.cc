/// \file tests/trace_test.cc
/// \brief Trace span trees (DESIGN.md §11): stack-based nesting,
/// fake-clock durations, JSON/text rendering, the ExecContext ride,
/// and the two load-bearing service claims — tracing NEVER changes
/// answers (byte-identity on/off) and slow queries are captured with
/// their full span trees at a deterministic fake-clock threshold.
///
/// Span-structure assertions are guarded on obs::kEnabled so this
/// suite also compiles and passes under -DDHT_OBS_OFF, where the whole
/// span API is a no-op; the byte-identity tests run in BOTH builds.

#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "join2/b_idj.h"
#include "obs/clock.h"
#include "obs/config.h"
#include "obs/trace.h"
#include "serve/session.h"
#include "testing/reference.h"
#include "util/deadline.h"

namespace dhtjoin {
namespace {

using serve::DhtJoinService;
using testing::RandomGraph;
using testing::Range;

// ------------------------------------------------------ span basics

TEST(TraceTest, SpansNestViaTheOpenSpanStack) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::FakeClock clock(100);
  obs::Trace trace(&clock);

  const auto a = trace.Begin("a");
  clock.AdvanceNanos(10);
  const auto b = trace.Begin("b");  // parents under the innermost open
  clock.AdvanceNanos(5);
  trace.End(b);
  const auto c = trace.Begin("c");  // b closed: parents under a again
  trace.End(a);                     // unwinds the stack through a
  const auto d = trace.Begin("d");  // a closed: new root

  EXPECT_EQ(trace.num_spans(), 4u);
  EXPECT_TRUE(trace.Finished(a));
  EXPECT_TRUE(trace.Finished(b));
  // A span left open when its parent ends stays unfinished — losing a
  // subtree tail is a signal, not an error.
  EXPECT_FALSE(trace.Finished(c));
  EXPECT_EQ(trace.DurationNanos(a), 15);
  EXPECT_EQ(trace.DurationNanos(b), 5);
  EXPECT_EQ(trace.DurationNanos(c), 0);  // unfinished reports 0
  trace.End(d);

  const std::string text = trace.ToText();
  EXPECT_NE(text.find("a 15ns\n  b 5ns\n  c 0ns (unfinished)\nd 0ns\n"),
            std::string::npos)
      << text;
}

TEST(TraceTest, EndIsIdempotentAndIgnoresNoSpan) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::FakeClock clock;
  obs::Trace trace(&clock);
  const auto a = trace.Begin("a");
  clock.AdvanceNanos(7);
  trace.End(a);
  clock.AdvanceNanos(100);
  trace.End(a);  // second End must not move the end timestamp
  EXPECT_EQ(trace.DurationNanos(a), 7);
  trace.End(obs::Trace::kNoSpan);  // no-op by contract
  EXPECT_EQ(trace.num_spans(), 1u);
}

TEST(TraceTest, AttrsRollUpAcrossSpans) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::FakeClock clock;
  obs::Trace trace(&clock);
  const auto root = trace.Begin("query");
  for (int l = 1; l <= 3; ++l) {
    const auto round = trace.Begin("round");
    trace.SetAttr(round, "level", int64_t{l});
    trace.SetAttr(round, "blocks", int64_t{10 * l});
    trace.End(round);
  }
  trace.SetAttr(root, "eps", 0.5);
  trace.End(root);

  EXPECT_EQ(trace.CountSpans("round"), 3u);
  EXPECT_EQ(trace.CountSpans("query"), 1u);
  EXPECT_EQ(trace.CountSpans("missing"), 0u);
  EXPECT_EQ(trace.SumAttr("blocks"), 60);
  EXPECT_EQ(trace.SumAttr("level"), 6);
  EXPECT_EQ(trace.SumAttr("eps"), 0);  // double attrs don't sum as ints
}

TEST(TraceTest, JsonRenderingIsBytePinnedUnderFakeClock) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::FakeClock clock(100);
  obs::Trace trace(&clock);
  const auto query = trace.Begin("query");
  trace.SetAttr(query, "k", int64_t{5});
  clock.AdvanceNanos(10);
  const auto round = trace.Begin("round");
  trace.SetAttr(round, "level", int64_t{1});
  trace.SetAttr(round, "frac", 0.25);
  clock.AdvanceNanos(5);
  trace.End(round);
  clock.AdvanceNanos(1);
  trace.End(query);

  EXPECT_EQ(trace.ToJson(),
            "{\"name\": \"query\", \"start_ns\": 100, "
            "\"duration_ns\": 16, \"k\": 5, \"spans\": ["
            "{\"name\": \"round\", \"start_ns\": 110, \"duration_ns\": 5, "
            "\"level\": 1, \"frac\": 0.25}]}");
}

TEST(TraceTest, UnfinishedSpansAndMultipleRootsRender) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  obs::FakeClock clock;
  obs::Trace trace(&clock);
  const auto a = trace.Begin("first");
  trace.End(a);
  trace.Begin("second");  // left open: a cancelled query's tail

  const std::string json = trace.ToJson();
  // Two roots wrap in a {"spans": [...]} envelope; the open span
  // carries the unfinished marker.
  EXPECT_EQ(json.find("{\"spans\": ["), 0u) << json;
  EXPECT_NE(json.find("\"name\": \"second\", \"start_ns\": 0, "
                      "\"duration_ns\": 0, \"unfinished\": true"),
            std::string::npos)
      << json;
}

TEST(TraceTest, ScopedSpanIsRaiiAndNullSafe) {
  // Null-trace ScopedSpan must be a complete no-op — call sites in the
  // engines never guard. This holds in BOTH build modes.
  obs::ScopedSpan null_span(nullptr, "x");
  null_span.SetAttr("k", int64_t{1});
  null_span.EndNow();
  EXPECT_EQ(null_span.id(), obs::Trace::kNoSpan);

  if (!obs::kEnabled) return;
  obs::FakeClock clock;
  obs::Trace trace(&clock);
  obs::Trace::SpanId id = obs::Trace::kNoSpan;
  {
    obs::ScopedSpan span(&trace, "scoped");
    span.SetAttr("n", int64_t{3});
    id = span.id();
    clock.AdvanceNanos(4);
  }  // destructor ends the span
  EXPECT_TRUE(trace.Finished(id));
  EXPECT_EQ(trace.DurationNanos(id), 4);
  EXPECT_EQ(trace.SumAttr("n"), 3);
}

TEST(TraceTest, TraceOfFollowsTheExecContextAttachment) {
  EXPECT_EQ(obs::TraceOf(nullptr), nullptr);
  ExecContext exec;
  EXPECT_EQ(obs::TraceOf(&exec), nullptr);
  obs::FakeClock clock;
  obs::Trace trace(&clock);
  exec.set_trace(&trace);
  if (obs::kEnabled) {
    EXPECT_EQ(obs::TraceOf(&exec), &trace);
  } else {
    // Under DHT_OBS_OFF the accessor constant-folds to null: span code
    // downstream disappears even if someone attaches a trace.
    EXPECT_EQ(obs::TraceOf(&exec), nullptr);
  }
  exec.set_trace(nullptr);
  EXPECT_EQ(obs::TraceOf(&exec), nullptr);
}

// --------------------------------------------------- service tracing

struct ServeFixture {
  Graph g = RandomGraph(70, 260, 91, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  int d = 8;
  NodeSet P = Range("P", 0, 25);
  NodeSet Q = Range("Q", 30, 65);
  std::size_t k = 15;
};

void ExpectBitIdentical(const std::vector<ScoredPair>& a,
                        const std::vector<ScoredPair>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << what << " rank " << i;
  }
}

TEST(ServiceTracingTest, TracedAnswersAreByteIdenticalToUntraced) {
  ServeFixture f;
  DhtJoinService plain(f.g, f.p, f.d, {.num_threads = 1});
  DhtJoinService traced(f.g, f.p, f.d,
                        {.num_threads = 1, .trace_queries = true});

  // Cold and warm rounds: spans observe cache imports, deepening
  // rounds, and write-backs, and must steer none of them.
  for (int round = 0; round < 2; ++round) {
    serve::QueryStats plain_qs, traced_qs;
    auto expected = plain.TwoWay(f.P, f.Q, f.k, &plain_qs);
    auto got = traced.TwoWay(f.P, f.Q, f.k, &traced_qs);
    ASSERT_TRUE(expected.ok());
    ASSERT_TRUE(got.ok());
    ExpectBitIdentical(*got, *expected,
                       round == 0 ? "cold traced" : "warm traced");
    EXPECT_EQ(plain_qs.trace_spans, 0);  // tracing off: no rollups
    if (obs::kEnabled) {
      EXPECT_GT(traced_qs.trace_spans, 0);
      EXPECT_GT(traced_qs.trace_rounds, 0);
      if (round == 0) {
        // Cold: the fused engine ran blocks, and the spans say so. A
        // warm repeat legitimately reports 0 — every target resumes
        // from cache and no b.advance_many pass happens at all.
        EXPECT_GT(traced_qs.trace_blocks_run, 0);
        EXPECT_GT(traced_qs.trace_lanes_packed, 0);
        EXPECT_GT(traced_qs.trace_bytes_touched, 0);
      }
    } else {
      EXPECT_EQ(traced_qs.trace_spans, 0);
    }
    // The walk work itself is unchanged by tracing.
    EXPECT_EQ(traced_qs.join.walk_steps, plain_qs.join.walk_steps);
    EXPECT_EQ(traced_qs.join.state_hits, plain_qs.join.state_hits);
  }
}

TEST(ServiceTracingTest, SlowQueryRingCapturesSpanTreesAtThreshold) {
  if (!obs::kEnabled) GTEST_SKIP() << "observability compiled out";
  ServeFixture f;
  obs::FakeClock clock;
  DhtJoinService service(f.g, f.p, f.d,
                         {.num_threads = 1,
                          .clock = &clock,
                          .trace_queries = true,
                          .slow_query_nanos = 5 * 1000 * 1000});

  // Query 1: the fake clock advances 2ms per completed deepening level
  // (d = 8 levels -> 16ms latency), crossing the 5ms threshold.
  ExecContext slow_exec;
  slow_exec.on_level = [&clock](int) { clock.AdvanceMillis(2); };
  serve::QueryStats slow_qs;
  ASSERT_TRUE(service.TwoWay(f.P, f.Q, f.k, &slow_qs, &slow_exec).ok());
  EXPECT_GE(slow_qs.seconds, 0.005);

  // Query 2: time never moves -> latency 0 -> not captured.
  ASSERT_TRUE(service.TwoWay(f.P, f.Q, f.k).ok());

  ASSERT_EQ(service.slow_queries().total_recorded(), 1);
  const auto entries = service.slow_queries().Dump();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_EQ(entries[0].name, "twoway");
  EXPECT_GE(entries[0].latency_ns, 5 * 1000 * 1000);
  // The capture is the FULL span tree, not a summary.
  EXPECT_NE(entries[0].trace_json.find("\"name\": \"query.twoway\""),
            std::string::npos)
      << entries[0].trace_json;
  EXPECT_NE(entries[0].trace_json.find("\"name\": \"round\""),
            std::string::npos);

  // Both queries landed in the latency histogram; only one was slow.
  const obs::MetricsSnapshot snap = service.SnapshotMetrics();
  EXPECT_EQ(snap.FindHistogram("serve.query.latency_ns")->count, 2);
  EXPECT_EQ(snap.FindGauge("serve.slow_queries.total")->value, 1.0);
  EXPECT_EQ(snap.FindCounter("serve.query.twoway")->value, 2);
}

TEST(ServiceTracingTest, CancelMidQueryLeavesAConsistentTrace) {
  ServeFixture f;
  DhtJoinService service(f.g, f.p, f.d,
                         {.num_threads = 1, .trace_queries = true});
  ExecContext exec;
  exec.token = std::make_shared<CancelToken>();
  // Cancel from inside the run, at the 3rd fused block-group check —
  // deterministically mid-schedule, with round spans already open.
  exec.block_hook = [&exec](int64_t n) {
    if (n == 3) exec.token->Cancel();
  };
  serve::QueryStats qs;
  auto result = service.TwoWay(f.P, f.Q, f.k, &qs, &exec);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(service.service_stats().cancelled, 1);
  if (obs::kEnabled) {
    // The trace survived the unwind: rollups were still folded into the
    // stats, and the cancel counter ticked.
    EXPECT_GT(qs.trace_spans, 0);
    const obs::MetricsSnapshot snap = service.SnapshotMetrics();
    EXPECT_EQ(snap.FindCounter("serve.query.cancelled")->value, 1);
    EXPECT_EQ(snap.FindCounter("serve.query.errors")->value, 1);
  }
}

TEST(ServiceTracingTest, ConcurrentTracedSessionsWithRacingCancels) {
  // TSan coverage: many traced sessions in flight while the main
  // thread cancels half of them. Every outcome must be ok or a clean
  // kCancelled; spans/metrics must not race the cancel path.
  ServeFixture f;
  DhtJoinService service(f.g, f.p, f.d,
                         {.num_threads = 4, .trace_queries = true});
  constexpr int kQueries = 8;
  std::vector<std::shared_ptr<CancelToken>> tokens;
  std::vector<std::future<Result<std::vector<ScoredPair>>>> futures;
  for (int i = 0; i < kQueries; ++i) {
    serve::QueryOptions qopts;
    qopts.exec = std::make_shared<ExecContext>();
    qopts.exec->token = std::make_shared<CancelToken>();
    tokens.push_back(qopts.exec->token);
    futures.push_back(
        service.SubmitTwoWay(f.P, f.Q, f.k, std::move(qopts)));
  }
  for (int i = 0; i < kQueries; i += 2) tokens[static_cast<std::size_t>(i)]->Cancel();
  int completed = 0;
  for (auto& future : futures) {
    const Result<std::vector<ScoredPair>> r = future.get();
    if (r.ok()) {
      ++completed;
    } else {
      EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
    }
  }
  service.Drain();
  // Uncancelled queries always complete; pre-submit cancels usually
  // land, but a fast worker may finish first — both are valid.
  EXPECT_GE(completed, kQueries / 2);
  const obs::MetricsSnapshot snap = service.SnapshotMetrics();
  EXPECT_EQ(snap.FindCounter("serve.query.twoway")->value, kQueries);
}

TEST(ServiceTracingTest, DegradedQueryTracesTheCompletedPrefix) {
  ServeFixture f;
  DhtJoinService service(f.g, f.p, f.d,
                         {.num_threads = 1, .trace_queries = true});
  // Soft-stop after level 2: the answer degrades at the last completed
  // level (DESIGN.md §9) and the trace records exactly that prefix.
  ExecContext exec;
  exec.on_level = [&exec](int level) {
    if (level >= 2) exec.RequestSoftStop();
  };
  serve::QueryStats qs;
  auto result = service.TwoWay(f.P, f.Q, f.k, &qs, &exec);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(qs.join.partial.degraded);
  if (obs::kEnabled) {
    EXPECT_GT(qs.trace_spans, 0);
    EXPECT_LE(qs.trace_rounds, 3);  // never the full 8-level schedule
  }
}

}  // namespace
}  // namespace dhtjoin
