/// \file tests/reorder_test.cc
/// \brief Cache-conscious relayout (graph/reorder.h) property tests.
///
/// The load-bearing claims (DESIGN.md §7):
///  1. Reordering is a pure physical optimization — every engine and
///     join returns BYTE-identical scores and rankings on a reordered
///     graph (under the external-id remap carried by the Graph).
///  2. The reachability-restricted dense sweep is exact — identical
///     bits to the full sweep — and strictly cheaper on
///     saturated-but-local walks.
///  3. The serving cache can never alias payloads across layouts
///     (layout-epoch-aware GraphFingerprint), even when two layouts'
///     CSR bits coincide.

#include <cmath>
#include <cstdio>
#include <vector>

#include <gtest/gtest.h>

#include "core/nl_join.h"
#include "core/partial_join.h"
#include "datasets/perturb.h"
#include "dht/backward.h"
#include "dht/backward_batch.h"
#include "dht/forward.h"
#include "dht/forward_batch.h"
#include "dht/propagate.h"
#include "graph/graph_builder.h"
#include "graph/graph_io.h"
#include "graph/reorder.h"
#include "join2/b_bj.h"
#include "join2/b_idj.h"
#include "join2/f_bj.h"
#include "join2/f_idj.h"
#include "join2/incremental.h"
#include "serve/score_cache.h"
#include "serve/session.h"
#include "testing/reference.h"
#include "util/rng.h"

namespace dhtjoin {
namespace {

using testing::RandomGraph;
using testing::Range;

/// Graph of `clusters` mutually unreachable random clusters of
/// `cluster_nodes` nodes — the restricted sweep's home turf.
Graph ClusteredGraph(int clusters, NodeId cluster_nodes,
                     int64_t edges_per_cluster, uint64_t seed) {
  GraphBuilder b(clusters * cluster_nodes, /*undirected=*/true);
  Rng rng(seed);
  for (int c = 0; c < clusters; ++c) {
    const NodeId base = c * cluster_nodes;
    int64_t added = 0;
    while (added < edges_per_cluster) {
      auto u = base + static_cast<NodeId>(
                          rng.Below(static_cast<uint64_t>(cluster_nodes)));
      auto v = base + static_cast<NodeId>(
                          rng.Below(static_cast<uint64_t>(cluster_nodes)));
      if (u == v) continue;
      if (!b.AddEdge(u, v, 1.0 + static_cast<double>(rng.Below(4))).ok()) {
        continue;
      }
      ++added;
    }
  }
  auto g = b.Build();
  DHTJOIN_CHECK(g.ok());
  return std::move(g).value();
}

Graph Reordered(const Graph& g, ReorderKind kind) {
  auto r = ReorderGraph(g, kind);
  DHTJOIN_CHECK(r.ok());
  return std::move(r).value();
}

TEST(ReorderTest, PermutationsAreValidAndRemapInverts) {
  Graph g = RandomGraph(80, 240, 9, true, true);
  for (ReorderKind kind : {ReorderKind::kDegree, ReorderKind::kRcm}) {
    Graph rg = Reordered(g, kind);
    ASSERT_EQ(rg.num_nodes(), g.num_nodes());
    ASSERT_EQ(rg.num_edges(), g.num_edges());
    EXPECT_TRUE(rg.is_reordered());
    EXPECT_NE(rg.layout_epoch(), 0u);
    std::vector<bool> hit(static_cast<std::size_t>(g.num_nodes()), false);
    for (NodeId u = 0; u < rg.num_nodes(); ++u) {
      const IntNodeId iu = IntNodeId(u);
      ExtNodeId ext = rg.ToExternal(iu);
      ASSERT_TRUE(rg.ContainsNode(ext));
      EXPECT_EQ(rg.ToInternal(ext).value(), u);
      EXPECT_FALSE(hit[static_cast<std::size_t>(ext.value())]);
      hit[static_cast<std::size_t>(ext.value())] = true;
      // Structure is preserved under the remap: same degrees, weights.
      // `g` is insertion-ordered, so its internal ids ARE external ids.
      EXPECT_EQ(rg.OutDegree(iu), g.OutDegree(IntNodeId(ext.value())));
      EXPECT_EQ(rg.InDegree(iu), g.InDegree(IntNodeId(ext.value())));
      auto row = rg.OutEdges(iu);
      auto weights = rg.OutWeights(iu);
      for (std::size_t i = 0; i < row.size(); ++i) {
        const IntNodeId gu = g.ToInternal(ext);
        const IntNodeId gv = g.ToInternal(rg.ToExternal(IntNodeId(row[i].to)));
        EXPECT_EQ(g.EdgeWeight(gu, gv), weights[i]);
        EXPECT_EQ(g.HasEdge(gu, gv), rg.HasEdge(iu, IntNodeId(row[i].to)));
      }
    }
  }
  // Degree layout: hubs first.
  Graph dg = Reordered(g, ReorderKind::kDegree);
  for (NodeId u = 0; u + 1 < dg.num_nodes(); ++u) {
    EXPECT_GE(dg.Degree(IntNodeId(u)), dg.Degree(IntNodeId(u + 1)));
  }
}

TEST(ReorderTest, RejectsNonPermutations) {
  Graph g = RandomGraph(10, 20, 3);
  std::vector<NodeId> bad(static_cast<std::size_t>(g.num_nodes()), 0);
  EXPECT_FALSE(ApplyNodePermutation(g, bad).ok());
  bad.resize(3);
  EXPECT_FALSE(ApplyNodePermutation(g, bad).ok());
}

TEST(ReorderTest, ReorderOfReorderedComposesToOriginalExternalIds) {
  Graph g = RandomGraph(60, 200, 11, true, true);
  Graph once = Reordered(g, ReorderKind::kDegree);
  Graph twice = Reordered(once, ReorderKind::kRcm);
  // External ids still mean construction-time ids after two relayouts.
  for (NodeId ext = 0; ext < g.num_nodes(); ++ext) {
    IntNodeId u = twice.ToInternal(ExtNodeId(ext));
    EXPECT_EQ(twice.ToExternal(u).value(), ext);
    EXPECT_EQ(twice.Degree(u), g.Degree(g.ToInternal(ExtNodeId(ext))));
  }
  // RCM of an RCM-equivalent layout equals RCM of the original: the
  // permutation is computed over canonical ids, not layout ids.
  Graph direct = Reordered(g, ReorderKind::kRcm);
  EXPECT_EQ(direct.layout_epoch(), twice.layout_epoch());
}

/// Walks `d` steps from `seed` (external) and returns the mass vector
/// indexed by EXTERNAL node id.
std::vector<double> MassAfter(const Graph& g, Propagator::Direction dir,
                              PropagationMode mode, NodeId seed, int d) {
  Propagator engine(g, dir, mode);
  engine.Reset(g.ToInternal(ExtNodeId(seed)));
  for (int i = 0; i < d; ++i) engine.Step();
  std::vector<double> mass(static_cast<std::size_t>(g.num_nodes()), 0.0);
  engine.ForEachMass([&](NodeId u, double m) {
    mass[static_cast<std::size_t>(g.ToExternal(IntNodeId(u)).value())] = m;
  });
  return mass;
}

TEST(ReorderTest, PropagatorBitIdenticalAcrossLayoutsAndModes) {
  Graph g = RandomGraph(120, 500, 21, true, true);
  Graph deg = Reordered(g, ReorderKind::kDegree);
  Graph rcm = Reordered(g, ReorderKind::kRcm);
  for (auto dir :
       {Propagator::Direction::kForward, Propagator::Direction::kBackward}) {
    for (NodeId seed : {0, 17, 63, 119}) {
      std::vector<double> want =
          MassAfter(g, dir, PropagationMode::kAdaptive, seed, 6);
      for (const Graph* other : {&g, &deg, &rcm}) {
        for (auto mode : {PropagationMode::kDense, PropagationMode::kSparse,
                          PropagationMode::kAdaptive}) {
          std::vector<double> got = MassAfter(*other, dir, mode, seed, 6);
          ASSERT_EQ(want.size(), got.size());
          for (std::size_t u = 0; u < want.size(); ++u) {
            // Bit-identical, not approximately equal.
            ASSERT_EQ(want[u], got[u])
                << "dir=" << static_cast<int>(dir) << " seed=" << seed
                << " node=" << u;
          }
        }
      }
    }
  }
}

TEST(ReorderTest, AllTwoWayJoinsByteIdenticalOnReorderedGraph) {
  Graph g = RandomGraph(70, 260, 33, true, true);
  DhtParams params = DhtParams::Lambda(0.3);
  const int d = 6;
  NodeSet P = Range("P", 0, 28);
  NodeSet Q = Range("Q", 24, 52);
  const std::size_t k = 25;

  BIdjJoin bidj_y(BIdjJoin::Options{UpperBoundKind::kY});
  BIdjJoin bidj_x(BIdjJoin::Options{UpperBoundKind::kX});
  BBjJoin bbj;
  FBjJoin fbj;
  FIdjJoin fidj;
  std::vector<TwoWayJoin*> joins = {&bidj_y, &bidj_x, &bbj, &fbj, &fidj};

  for (ReorderKind kind : {ReorderKind::kDegree, ReorderKind::kRcm}) {
    Graph rg = Reordered(g, kind);
    for (TwoWayJoin* join : joins) {
      auto want = join->Run(g, params, d, P, Q, k);
      auto got = join->Run(rg, params, d, P, Q, k);
      ASSERT_TRUE(want.ok() && got.ok()) << join->Name();
      // ScoredPair::operator== compares scores EXACTLY: byte-identical
      // results including ranking and tie-breaks.
      EXPECT_EQ(*want, *got) << join->Name() << " on " << ReorderKindName(kind);
    }
  }
}

TEST(ReorderTest, IncrementalEnumeratorByteIdenticalOnReorderedGraph) {
  Graph g = RandomGraph(50, 170, 41, true, true);
  Graph rg = Reordered(g, ReorderKind::kDegree);
  DhtParams params = DhtParams::Lambda(0.25);
  NodeSet P = Range("P", 0, 20);
  NodeSet Q = Range("Q", 15, 40);
  auto a = IncrementalTwoWayJoin::Create(g, params, 5, P, Q, 10);
  auto b = IncrementalTwoWayJoin::Create(rg, params, 5, P, Q, 10);
  ASSERT_TRUE(a.ok() && b.ok());
  for (int i = 0; i < 40; ++i) {
    auto pa = (*a)->Next();
    auto pb = (*b)->Next();
    ASSERT_EQ(pa.has_value(), pb.has_value());
    if (!pa.has_value()) break;
    EXPECT_EQ(*pa, *pb) << "pair " << i;
  }
}

TEST(ReorderTest, NwayJoinsByteIdenticalOnReorderedGraph) {
  Graph g = RandomGraph(40, 150, 55, true, true);
  Graph rg = Reordered(g, ReorderKind::kRcm);
  DhtParams params = DhtParams::Lambda(0.3);
  QueryGraph query;
  int a = query.AddNodeSet(Range("A", 0, 12));
  int b = query.AddNodeSet(Range("B", 10, 24));
  int c = query.AddNodeSet(Range("C", 20, 34));
  ASSERT_TRUE(query.AddEdge(a, b).ok());
  ASSERT_TRUE(query.AddBidirectionalEdge(b, c).ok());
  MinAggregate min_f;

  PartialJoin pji(PartialJoin::Options{.m = 20, .incremental = true});
  NestedLoopJoin nl;
  for (NwayJoin* join : std::initializer_list<NwayJoin*>{&pji, &nl}) {
    auto want = join->Run(g, params, 5, query, min_f, 12);
    auto got = join->Run(rg, params, 5, query, min_f, 12);
    ASSERT_TRUE(want.ok() && got.ok()) << join->Name();
    ASSERT_EQ(want->size(), got->size()) << join->Name();
    for (std::size_t i = 0; i < want->size(); ++i) {
      EXPECT_EQ((*want)[i].nodes, (*got)[i].nodes) << join->Name();
      EXPECT_EQ((*want)[i].f, (*got)[i].f) << join->Name();
    }
  }
}

TEST(ReorderTest, RestrictedSweepBitIdenticalAndCheaper) {
  // 4 clusters of 50 nodes; a walk saturates its own cluster quickly.
  Graph g = ClusteredGraph(4, 50, 300, 77);
  ASSERT_GT(g.Reachability().num_components(), 1);

  for (auto dir :
       {Propagator::Direction::kForward, Propagator::Direction::kBackward}) {
    Propagator restricted(g, dir, PropagationMode::kDense,
                          /*restrict_dense=*/true);
    Propagator full(g, dir, PropagationMode::kDense,
                    /*restrict_dense=*/false);
    restricted.Reset(g.ToInternal(ExtNodeId(7)));
    full.Reset(g.ToInternal(ExtNodeId(7)));
    for (int i = 0; i < 6; ++i) {
      restricted.Step();
      full.Step();
    }
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(restricted.Mass(IntNodeId(u)), full.Mass(IntNodeId(u))) << u;
    }
    // The restricted plan covers one cluster: ~1/4 of the edge bill.
    EXPECT_LT(restricted.edges_relaxed(), full.edges_relaxed() / 2);
    EXPECT_FALSE(restricted.plan().full);
  }

  // Batch engines: same rows, restricted vs full. The targets share a
  // lane block AND a cluster, so the block's union plan stays local
  // (lanes from different components would widen it to their union).
  std::vector<ExtNodeId> targets = {ExtNodeId(3),  ExtNodeId(11),
                                    ExtNodeId(19), ExtNodeId(27),
                                    ExtNodeId(35), ExtNodeId(43)};
  std::vector<ExtNodeId> sources;
  for (NodeId p = 0; p < 200; p += 7) sources.push_back(ExtNodeId(p));
  DhtParams params = DhtParams::Lambda(0.2);
  BackwardWalkerBatch on(g, {.mode = PropagationMode::kDense});
  BackwardWalkerBatch off(g, {.mode = PropagationMode::kDense,
                              .restrict_dense = false});
  auto rows_on = on.Run(params, 6, targets, sources);
  auto rows_off = off.Run(params, 6, targets, sources);
  ASSERT_EQ(rows_on.size(), rows_off.size());
  for (std::size_t i = 0; i < rows_on.size(); ++i) {
    ASSERT_EQ(rows_on[i], rows_off[i]);
  }
  EXPECT_LT(on.edges_relaxed(), off.edges_relaxed() / 2);

  // The adaptive policy flips a saturated-but-local walk to the
  // restricted dense sweep (against the old global threshold it would
  // have stayed sparse and paid the frontier penalty forever).
  Propagator adaptive(g, Propagator::Direction::kBackward,
                      PropagationMode::kAdaptive);
  adaptive.Reset(g.ToInternal(ExtNodeId(7)));
  bool went_dense = false;
  for (int i = 0; i < 8; ++i) {
    adaptive.Step();
    went_dense = went_dense || adaptive.last_step_dense();
  }
  EXPECT_TRUE(went_dense);
}

TEST(ReorderTest, RestrictedSweepOnReorderedClusteredGraph) {
  Graph g = ClusteredGraph(3, 40, 200, 99);
  Graph rg = Reordered(g, ReorderKind::kRcm);
  DhtParams params = DhtParams::Lambda(0.25);
  BackwardWalker a(g);
  BackwardWalker b(rg);
  for (NodeId q : {1, 45, 90}) {
    a.Reset(params, ExtNodeId(q));
    b.Reset(params, ExtNodeId(q));
    a.Advance(7);
    b.Advance(7);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      ASSERT_EQ(a.Score(ExtNodeId(u)), b.Score(ExtNodeId(u)))
          << "q=" << q << " u=" << u;
    }
  }
}

TEST(ReorderTest, PerturbModuleIsLayoutOblivious) {
  Graph g = RandomGraph(60, 220, 61, true, true);
  Graph rg = Reordered(g, ReorderKind::kDegree);
  NodeSet P = Range("P", 0, 25);
  NodeSet Q = Range("Q", 20, 50);
  auto a = datasets::RemoveInterSetEdges(g, P, Q, 0.5, 9);
  auto b = datasets::RemoveInterSetEdges(rg, P, Q, 0.5, 9);
  ASSERT_TRUE(a.ok() && b.ok());
  // Same external pairs removed, and the rebuilt graphs are the same
  // insertion-ordered graph bit-for-bit.
  ASSERT_EQ(a->removed.size(), b->removed.size());
  for (std::size_t i = 0; i < a->removed.size(); ++i) {
    EXPECT_EQ(a->removed[i], b->removed[i]);
  }
  EXPECT_EQ(serve::GraphFingerprint(a->graph),
            serve::GraphFingerprint(b->graph));

  auto ta = datasets::FindTriangles(g, P, Q, Q);
  auto tb = datasets::FindTriangles(rg, P, Q, Q);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].p, tb[i].p);
    EXPECT_EQ(ta[i].q, tb[i].q);
    EXPECT_EQ(ta[i].r, tb[i].r);
  }
}

TEST(ReorderTest, FingerprintSeparatesLayouts) {
  Graph g = RandomGraph(60, 200, 5, true, true);
  Graph rg = Reordered(g, ReorderKind::kDegree);
  EXPECT_NE(serve::GraphFingerprint(g), serve::GraphFingerprint(rg));

  // The adversarial case: a rotation of a 4-cycle has IDENTICAL CSR
  // bits, but its internal ids mean different external nodes — the
  // layout epoch must keep the fingerprints apart.
  GraphBuilder b(4, /*undirected=*/true);
  for (NodeId u = 0; u < 4; ++u) {
    ASSERT_TRUE(b.AddEdge(u, (u + 1) % 4, 1.0).ok());
  }
  auto cycle = b.Build();
  ASSERT_TRUE(cycle.ok());
  std::vector<NodeId> rotate = {1, 2, 3, 0};
  auto rotated = ApplyNodePermutation(*cycle, rotate);
  ASSERT_TRUE(rotated.ok());
  // Same structural bits...
  for (NodeId u = 0; u < 4; ++u) {
    ASSERT_EQ(cycle->OutDegree(IntNodeId(u)), rotated->OutDegree(IntNodeId(u)));
  }
  // ...different meaning, different fingerprint.
  EXPECT_NE(serve::GraphFingerprint(*cycle),
            serve::GraphFingerprint(*rotated));
  EXPECT_NE(cycle->layout_epoch(), rotated->layout_epoch());
}

TEST(ReorderTest, SaveEdgeListWritesExternalIds) {
  Graph g = RandomGraph(50, 180, 13, true, true);
  Graph rg = Reordered(g, ReorderKind::kDegree);
  std::string path = ::testing::TempDir() + "/reordered_graph.txt";
  ASSERT_TRUE(SaveEdgeList(rg, path).ok());
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.ok());
  // The file means external ids: reloading recovers the insertion-
  // ordered graph bit-exactly (weights AND transition probabilities).
  EXPECT_EQ(serve::GraphFingerprint(g), serve::GraphFingerprint(*loaded));
  std::remove(path.c_str());
}

TEST(ReorderTest, ServingByteIdenticalAcrossLayoutsAndWarmth) {
  Graph g = RandomGraph(80, 300, 17, true, true);
  Graph rg = Reordered(g, ReorderKind::kDegree);
  DhtParams params = DhtParams::Lambda(0.3);
  const int d = 6;
  NodeSet P = Range("P", 0, 30);
  NodeSet Q = Range("Q", 25, 60);

  BIdjJoin reference(BIdjJoin::Options{UpperBoundKind::kY});
  auto want = reference.Run(g, params, d, P, Q, 20);
  ASSERT_TRUE(want.ok());

  serve::DhtJoinService cold(g, params, d);
  serve::DhtJoinService warm(rg, params, d);
  EXPECT_NE(cold.graph_fingerprint(), warm.graph_fingerprint());

  auto r1 = warm.TwoWay(P, Q, 20);  // cold on the reordered graph
  auto r2 = warm.TwoWay(P, Q, 20);  // warm resume from the cache
  auto r3 = cold.TwoWay(P, Q, 20);
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(*want, *r1);
  EXPECT_EQ(*want, *r2);
  EXPECT_EQ(*want, *r3);
}

}  // namespace
}  // namespace dhtjoin
