/// \file tests/graph_test.cc
/// \brief Unit tests for the graph substrate: GraphBuilder, Graph, NodeSet.

#include <gtest/gtest.h>

#include <cmath>

#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/node_set.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

TEST(GraphBuilderTest, BasicDirectedGraph) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 2, 6.0).ok());
  ASSERT_TRUE(b.AddEdge(1, 2).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 3);
  EXPECT_EQ(g->num_edges(), 3);
  EXPECT_EQ(g->OutDegree(IntNodeId(0)), 2);
  EXPECT_EQ(g->OutDegree(IntNodeId(2)), 0);
  EXPECT_EQ(g->InDegree(IntNodeId(2)), 2);
}

TEST(GraphBuilderTest, TransitionProbabilitiesNormalized) {
  GraphBuilder b(3);
  ASSERT_TRUE(b.AddEdge(0, 1, 2.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 2, 6.0).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto row = g->OutEdges(IntNodeId(0));
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0].prob, 0.25);  // to node 1: 2/8
  EXPECT_DOUBLE_EQ(row[1].prob, 0.75);  // to node 2: 6/8
}

TEST(GraphBuilderTest, UndirectedAddsBothDirections) {
  GraphBuilder b(2, /*undirected=*/true);
  ASSERT_TRUE(b.AddEdge(0, 1, 3.0).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 2);
  EXPECT_TRUE(g->HasEdge(IntNodeId(0), IntNodeId(1)));
  EXPECT_TRUE(g->HasEdge(IntNodeId(1), IntNodeId(0)));
  EXPECT_DOUBLE_EQ(g->EdgeWeight(IntNodeId(1), IntNodeId(0)), 3.0);
}

TEST(GraphBuilderTest, DuplicateEdgesAccumulateWeight) {
  // DBLP semantics: one co-authored paper = +1 weight.
  GraphBuilder b(2);
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(b.AddEdge(0, 1, 2.5).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_edges(), 1);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(IntNodeId(0), IntNodeId(1)), 4.5);
}

TEST(GraphBuilderTest, RejectsSelfLoop) {
  GraphBuilder b(2);
  Status s = b.AddEdge(1, 1);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(GraphBuilderTest, RejectsOutOfRangeNode) {
  GraphBuilder b(2);
  EXPECT_FALSE(b.AddEdge(0, 2).ok());
  EXPECT_FALSE(b.AddEdge(-1, 0).ok());
}

TEST(GraphBuilderTest, RejectsNonPositiveWeight) {
  GraphBuilder b(2);
  EXPECT_FALSE(b.AddEdge(0, 1, 0.0).ok());
  EXPECT_FALSE(b.AddEdge(0, 1, -1.0).ok());
}

TEST(GraphBuilderTest, EmptyGraphBuilds) {
  GraphBuilder b(0);
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->num_nodes(), 0);
  EXPECT_EQ(g->num_edges(), 0);
}

TEST(GraphBuilderTest, IsolatedNodesAllowed) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g->OutDegree(IntNodeId(3)), 0);
  EXPECT_EQ(g->InDegree(IntNodeId(3)), 0);
}

TEST(GraphTest, OutEdgesSortedByTarget) {
  GraphBuilder b(5);
  ASSERT_TRUE(b.AddEdge(0, 4).ok());
  ASSERT_TRUE(b.AddEdge(0, 1).ok());
  ASSERT_TRUE(b.AddEdge(0, 3).ok());
  auto g = b.Build();
  ASSERT_TRUE(g.ok());
  auto row = g->OutEdges(IntNodeId(0));
  EXPECT_EQ(row[0].to, 1);
  EXPECT_EQ(row[1].to, 3);
  EXPECT_EQ(row[2].to, 4);
}

TEST(GraphTest, InEdgesMatchOutEdges) {
  // Every out-edge (u, v, p_uv) must appear on v's transposed row with
  // the same transition probability.
  Graph g = testing::TwoCommunityGraph();
  int64_t in_edge_count = 0;
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    in_edge_count += static_cast<int64_t>(g.InEdges(IntNodeId(u)).size());
    for (const OutEdge& e : g.OutEdges(IntNodeId(u))) {
      auto ins = g.InEdges(IntNodeId(e.to));
      auto it = std::find_if(ins.begin(), ins.end(),
                             [&](const InEdge& in) { return in.from == u; });
      ASSERT_TRUE(it != ins.end())
          << "edge (" << u << "," << e.to << ") missing from in-adjacency";
      EXPECT_DOUBLE_EQ(it->prob, e.prob)
          << "edge (" << u << "," << e.to << ") transposed prob mismatch";
    }
  }
  EXPECT_EQ(in_edge_count, g.num_edges());
}

TEST(GraphTest, ProbabilitiesSumToOnePerNode) {
  Graph g = testing::TwoCommunityGraph();
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (g.OutDegree(IntNodeId(u)) == 0) continue;
    double total = 0.0;
    for (const OutEdge& e : g.OutEdges(IntNodeId(u))) total += e.prob;
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(GraphTest, HasEdgeAndWeightOnMissing) {
  Graph g = testing::PathGraph(3);
  EXPECT_TRUE(g.HasEdge(IntNodeId(0), IntNodeId(1)));
  EXPECT_FALSE(g.HasEdge(IntNodeId(1), IntNodeId(0)));  // directed
  EXPECT_FALSE(g.HasEdge(IntNodeId(0), IntNodeId(2)));
  EXPECT_DOUBLE_EQ(g.EdgeWeight(IntNodeId(0), IntNodeId(2)), 0.0);
  EXPECT_FALSE(g.HasEdge(IntNodeId(-1), IntNodeId(0)));
  EXPECT_FALSE(g.HasEdge(IntNodeId(0), IntNodeId(99)));
}

// ---------------------------------------------------------------- NodeSet

TEST(NodeSetTest, SortsAndDedups) {
  NodeSet s("x", {3, 1, 2, 1, 3});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_EQ(s[0].value(), 1);
  EXPECT_EQ(s[2].value(), 3);
}

TEST(NodeSetTest, Contains) {
  NodeSet s("x", {5, 7});
  EXPECT_TRUE(s.Contains(ExtNodeId(5)));
  EXPECT_FALSE(s.Contains(ExtNodeId(6)));
}

TEST(NodeSetTest, ValidateAgainstGraph) {
  Graph g = testing::PathGraph(3);
  EXPECT_TRUE(NodeSet("ok", {0, 2}).Validate(g).ok());
  EXPECT_EQ(NodeSet("empty", std::vector<NodeId>{}).Validate(g).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(NodeSet("bad", {0, 5}).Validate(g).code(),
            StatusCode::kInvalidArgument);
}

TEST(NodeSetTest, TopByDegreePicksHubs) {
  Graph g = testing::StarGraph(6);  // node 0 is the hub
  NodeSet all("all", {0, 1, 2, 3, 4, 5});
  NodeSet top = all.TopByDegree(g, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].value(), 0);
}

TEST(NodeSetTest, TopByDegreeKeepsAllWhenCountExceedsSize) {
  Graph g = testing::StarGraph(4);
  NodeSet all("all", {1, 2});
  EXPECT_EQ(all.TopByDegree(g, 10).size(), 2u);
}

}  // namespace
}  // namespace dhtjoin
