/// \file tests/dht_params_test.cc
/// \brief Unit tests for the general DHT form (paper Def. 5, Table II,
/// Lemma 1, Lemma 2).

#include <gtest/gtest.h>

#include <cmath>

#include "dht/params.h"

namespace dhtjoin {
namespace {

TEST(DhtParamsTest, LambdaVariantMatchesTableII) {
  // DHTlambda: alpha = 1/(1-l), beta = -1/(1-l).
  DhtParams p = DhtParams::Lambda(0.2);
  EXPECT_DOUBLE_EQ(p.lambda, 0.2);
  EXPECT_DOUBLE_EQ(p.alpha, 1.25);
  EXPECT_DOUBLE_EQ(p.beta, -1.25);
}

TEST(DhtParamsTest, ExponentialVariantMatchesTableII) {
  // DHTe: alpha = e, beta = 0, lambda = 1/e.
  DhtParams p = DhtParams::Exponential();
  EXPECT_DOUBLE_EQ(p.alpha, M_E);
  EXPECT_DOUBLE_EQ(p.beta, 0.0);
  EXPECT_DOUBLE_EQ(p.lambda, 1.0 / M_E);
}

TEST(DhtParamsTest, ExponentialFormEquivalence) {
  // alpha * lambda^i == e^{-(i-1)} for the DHTe parameters (Eq. 1 vs 3).
  DhtParams p = DhtParams::Exponential();
  for (int i = 1; i <= 10; ++i) {
    EXPECT_NEAR(p.alpha * std::pow(p.lambda, i), std::exp(-(i - 1)), 1e-12);
  }
}

TEST(DhtParamsTest, ValidateAcceptsBothVariants) {
  EXPECT_TRUE(DhtParams::Lambda(0.2).Validate().ok());
  EXPECT_TRUE(DhtParams::Lambda(0.9).Validate().ok());
  EXPECT_TRUE(DhtParams::Exponential().Validate().ok());
}

TEST(DhtParamsTest, ValidateRejectsBadCoefficients) {
  DhtParams p;
  p.alpha = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = DhtParams::Lambda(0.2);
  p.lambda = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p.lambda = 1.0;
  EXPECT_FALSE(p.Validate().ok());
  p.lambda = -0.5;
  EXPECT_FALSE(p.Validate().ok());
  p = DhtParams::Lambda(0.2);
  p.alpha = -1.0;  // paper's general form allows it, our algorithms don't
  EXPECT_FALSE(p.Validate().ok());
}

TEST(DhtParamsTest, Lemma1PaperDefaultGivesD8) {
  // Paper Sec VII-A: epsilon = 1e-6 with DHTlambda(0.2) "or equivalently
  // d = 8".
  EXPECT_EQ(DhtParams::Lambda(0.2).StepsForEpsilon(1e-6), 8);
}

TEST(DhtParamsTest, Lemma1BoundIsTight) {
  // The remainder after d steps is at most X_d^+ = alpha l^{d+1}/(1-l);
  // Lemma 1's d must push it below epsilon, and d-1 must not.
  for (double lambda : {0.2, 0.4, 0.6, 0.8}) {
    DhtParams p = DhtParams::Lambda(lambda);
    for (double eps : {1e-3, 1e-6, 1e-8}) {
      int d = p.StepsForEpsilon(eps);
      EXPECT_LE(p.XBound(d), eps * (1 + 1e-9)) << "lambda=" << lambda;
      if (d > 1) {
        EXPECT_GT(p.XBound(d - 1), eps) << "lambda=" << lambda;
      }
    }
  }
}

TEST(DhtParamsTest, Lemma1MonotoneInEpsilonAndLambda) {
  DhtParams p = DhtParams::Lambda(0.5);
  EXPECT_LE(p.StepsForEpsilon(1e-3), p.StepsForEpsilon(1e-6));
  EXPECT_LE(DhtParams::Lambda(0.2).StepsForEpsilon(1e-6),
            DhtParams::Lambda(0.8).StepsForEpsilon(1e-6));
}

TEST(DhtParamsTest, Lemma1HugeEpsilonClampsToOne) {
  EXPECT_EQ(DhtParams::Lambda(0.2).StepsForEpsilon(100.0), 1);
}

TEST(DhtParamsTest, XBoundGeometricDecay) {
  DhtParams p = DhtParams::Lambda(0.2);
  // X_l = alpha * lambda^{l+1} / (1 - lambda).
  EXPECT_NEAR(p.XBound(0), 1.25 * 0.2 / 0.8, 1e-12);
  for (int l = 0; l < 10; ++l) {
    EXPECT_NEAR(p.XBound(l + 1), p.XBound(l) * p.lambda, 1e-12);
  }
}

TEST(DhtParamsTest, ScoreRange) {
  DhtParams p = DhtParams::Lambda(0.2);
  EXPECT_DOUBLE_EQ(p.FloorScore(), -1.25);
  // Best case: hit at step 1 with probability 1.
  EXPECT_DOUBLE_EQ(p.MaxScore(), -1.25 + 1.25 * 0.2);
  EXPECT_LT(p.MaxScore(), 0.0);  // DHTlambda scores are negative
  EXPECT_GT(DhtParams::Exponential().MaxScore(), 0.0);
}

}  // namespace
}  // namespace dhtjoin
