/// \file tests/serve_test.cc
/// \brief Serving layer: cross-query ScoreCache, DhtJoinService, and
/// workload generation.
///
/// The load-bearing claims under test (DESIGN.md §6): a warm query is
/// BIT-identical to a cold one — across cached hits, evicted-then-
/// refetched states, and a budget-0 cache — because the walk engines
/// are bit-deterministic and keys are exact; and a service executing
/// concurrent sessions returns deterministic per-query answers.

#include <gtest/gtest.h>

#include <future>
#include <vector>

#include "core/nl_join.h"
#include "core/partial_join.h"
#include "dht/forward_batch.h"
#include "dht/walker_state.h"
#include "join2/b_idj.h"
#include "join2/incremental.h"
#include "rankjoin/aggregate.h"
#include "serve/score_cache.h"
#include "serve/session.h"
#include "serve/workload.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using serve::CacheKey;
using serve::CachePayload;
using serve::CacheStats;
using serve::CachedTable;
using serve::DhtJoinService;
using serve::DigestNodes;
using serve::GraphFingerprint;
using serve::ScoreCache;
using testing::RandomGraph;
using testing::Range;
using testing::TwoCommunityGraph;

// ------------------------------------------------------------- cache

TEST(ScoreCacheTest, GraphFingerprintSeparatesGraphs) {
  Graph a = RandomGraph(30, 90, 7);
  Graph a2 = RandomGraph(30, 90, 7);
  Graph b = RandomGraph(30, 90, 8);
  Graph c = RandomGraph(30, 91, 7);
  EXPECT_EQ(GraphFingerprint(a), GraphFingerprint(a2));
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(b));
  EXPECT_NE(GraphFingerprint(a), GraphFingerprint(c));
}

TEST(ScoreCacheTest, DigestNodesIsContentBased) {
  std::vector<ExtNodeId> x = {ExtNodeId(1), ExtNodeId(2), ExtNodeId(3)};
  std::vector<ExtNodeId> y = {ExtNodeId(1), ExtNodeId(2), ExtNodeId(3)};
  std::vector<ExtNodeId> z = {ExtNodeId(1), ExtNodeId(2), ExtNodeId(4)};
  std::vector<ExtNodeId> w = {ExtNodeId(1), ExtNodeId(2)};
  EXPECT_EQ(DigestNodes(x), DigestNodes(y));
  EXPECT_NE(DigestNodes(x), DigestNodes(z));
  EXPECT_NE(DigestNodes(x), DigestNodes(w));
}

CacheKey TableKey(uint64_t graph_fp, std::vector<NodeId> left,
                  std::vector<NodeId> right) {
  CacheKey key;
  key.graph_fp = graph_fp;
  key.kind = CachePayload::kEdgeTable;
  key.d = 8;
  key.set_a = std::make_shared<const std::vector<ExtNodeId>>(WrapExtIds(left));
  key.set_b =
      std::make_shared<const std::vector<ExtNodeId>>(WrapExtIds(right));
  key.digest_a = DigestNodes(*key.set_a);
  key.digest_b = DigestNodes(*key.set_b);
  return key;
}

std::shared_ptr<CachedTable> MakeTable(std::size_t doubles) {
  return std::make_shared<CachedTable>(
      std::make_shared<const std::vector<double>>(doubles, 1.0));
}

TEST(ScoreCacheTest, PutGetAndContentEquality) {
  ScoreCache cache({.max_bytes = 1 << 20, .num_shards = 4});
  CacheKey key = TableKey(11, {1, 2, 3}, {4, 5});
  EXPECT_EQ(cache.GetAs<CachedTable>(key), nullptr);
  cache.Put(key, MakeTable(6));

  // Same contents through DIFFERENT shared_ptrs: must hit.
  CacheKey same = TableKey(11, {1, 2, 3}, {4, 5});
  auto hit = cache.GetAs<CachedTable>(same);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->table->size(), 6u);

  // Any differing component: must miss.
  EXPECT_EQ(cache.GetAs<CachedTable>(TableKey(12, {1, 2, 3}, {4, 5})),
            nullptr);
  EXPECT_EQ(cache.GetAs<CachedTable>(TableKey(11, {1, 2}, {4, 5})), nullptr);
  EXPECT_EQ(cache.GetAs<CachedTable>(TableKey(11, {1, 2, 3}, {4, 6})),
            nullptr);
  CacheKey other_params = TableKey(11, {1, 2, 3}, {4, 5});
  other_params.params.lambda = 0.5;
  EXPECT_EQ(cache.GetAs<CachedTable>(other_params), nullptr);
  CacheKey other_d = TableKey(11, {1, 2, 3}, {4, 5});
  other_d.d = 4;
  EXPECT_EQ(cache.GetAs<CachedTable>(other_d), nullptr);

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 6);
  EXPECT_EQ(stats.insertions, 1);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_GT(stats.resident_bytes, 0u);
}

TEST(ScoreCacheTest, EvictsLruUnderByteBudget) {
  // One shard so the LRU order is global and deterministic.
  ScoreCache cache({.max_bytes = 4096, .num_shards = 1});
  const std::size_t entry_doubles = 64;  // ~512B payload per entry
  for (NodeId i = 0; i < 20; ++i) {
    cache.Put(TableKey(1, {i}, {i + 100}), MakeTable(entry_doubles));
  }
  CacheStats stats = cache.stats();
  EXPECT_GT(stats.evictions, 0);
  EXPECT_LE(stats.resident_bytes, 4096u);
  EXPECT_LT(stats.entries, 20u);
  // The most recent entry survived; the oldest was evicted.
  EXPECT_NE(cache.GetAs<CachedTable>(TableKey(1, {19}, {119})), nullptr);
  EXPECT_EQ(cache.GetAs<CachedTable>(TableKey(1, {0}, {100})), nullptr);
}

TEST(ScoreCacheTest, AdmissionFirstTouchBypassForSmallPayloads) {
  ScoreCache cache({.max_bytes = 1 << 20,
                    .num_shards = 2,
                    .admission_bypass_bytes = 4096});
  // Tiny payload: the first offer is turned away (one-shot queries
  // never enter the LRU), the second — a repeated key — is admitted.
  CacheKey tiny = TableKey(7, {1}, {2});
  cache.Put(tiny, MakeTable(8));
  EXPECT_EQ(cache.GetAs<CachedTable>(tiny), nullptr);
  EXPECT_EQ(cache.stats().admission_rejects, 1);
  EXPECT_EQ(cache.stats().entries, 0u);
  cache.Put(tiny, MakeTable(8));
  EXPECT_NE(cache.GetAs<CachedTable>(tiny), nullptr);

  // A payload at/above the floor is admitted on first touch.
  CacheKey big = TableKey(7, {3}, {4});
  cache.Put(big, MakeTable(1024));  // 8 KB payload >= 4 KB floor
  EXPECT_NE(cache.GetAs<CachedTable>(big), nullptr);
  EXPECT_EQ(cache.stats().admission_rejects, 1);

  // Default options admit everything (no behaviour change).
  ScoreCache open(ScoreCache::Options{.max_bytes = 1 << 20});
  open.Put(tiny, MakeTable(8));
  EXPECT_NE(open.GetAs<CachedTable>(tiny), nullptr);
  EXPECT_EQ(open.stats().admission_rejects, 0);
}

TEST(ScoreCacheTest, ZeroBudgetHoldsNothing) {
  ScoreCache cache({.max_bytes = 0, .num_shards = 2});
  CacheKey key = TableKey(3, {1}, {2});
  cache.Put(key, MakeTable(4));
  EXPECT_EQ(cache.GetAs<CachedTable>(key), nullptr);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_GT(cache.stats().evictions, 0);
}

TEST(ScoreCacheTest, PeekDoesNotTouchCounters) {
  ScoreCache cache({.max_bytes = 1 << 16, .num_shards = 1});
  CacheKey key = TableKey(5, {1}, {2});
  cache.Put(key, MakeTable(4));
  EXPECT_NE(cache.PeekAs<CachedTable>(key), nullptr);
  EXPECT_EQ(cache.PeekAs<CachedTable>(TableKey(5, {9}, {2})), nullptr);
  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0);
  EXPECT_EQ(stats.misses, 0);
}

// ------------------------------------------- warm/cold equivalence

struct TwoWayFixture {
  Graph g = RandomGraph(70, 260, 91, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  int d = 8;
  NodeSet P = Range("P", 0, 25);
  NodeSet Q = Range("Q", 30, 65);
  std::size_t k = 15;

  std::vector<ScoredPair> Reference() {
    BIdjJoin join;
    auto r = join.Run(g, p, d, P, Q, k);
    EXPECT_TRUE(r.ok());
    return *r;
  }
};

void ExpectBitIdentical(const std::vector<ScoredPair>& a,
                        const std::vector<ScoredPair>& b, const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // operator== compares scores exactly: byte-identical output.
    EXPECT_EQ(a[i], b[i]) << what << " rank " << i;
  }
}

TEST(DhtJoinServiceTest, ColdAndWarmMatchFreshRunBitIdentical) {
  TwoWayFixture f;
  std::vector<ScoredPair> reference = f.Reference();

  DhtJoinService service(f.g, f.p, f.d, {.num_threads = 1});
  serve::QueryStats cold_stats, warm_stats;
  auto cold = service.TwoWay(f.P, f.Q, f.k, &cold_stats);
  ASSERT_TRUE(cold.ok());
  ExpectBitIdentical(*cold, reference, "cold vs fresh B-IDJ");
  EXPECT_EQ(cold_stats.warm_targets, 0);
  EXPECT_FALSE(cold_stats.ybound_cached);

  auto warm = service.TwoWay(f.P, f.Q, f.k, &warm_stats);
  ASSERT_TRUE(warm.ok());
  ExpectBitIdentical(*warm, reference, "warm vs fresh B-IDJ");
  EXPECT_GT(warm_stats.warm_targets, 0);
  EXPECT_TRUE(warm_stats.ybound_cached);
  // The whole point: a warm repeat does strictly less walk work.
  EXPECT_LT(warm_stats.join.walk_steps, cold_stats.join.walk_steps);
}

TEST(DhtJoinServiceTest, ZeroBudgetCacheIsBitIdenticalToFresh) {
  TwoWayFixture f;
  std::vector<ScoredPair> reference = f.Reference();
  DhtJoinService service(f.g, f.p, f.d,
                         {.cache_budget_bytes = 0, .num_threads = 1});
  for (int round = 0; round < 2; ++round) {
    serve::QueryStats stats;
    auto result = service.TwoWay(f.P, f.Q, f.k, &stats);
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical(*result, reference, "budget-0 round");
    EXPECT_EQ(stats.warm_targets, 0);  // nothing is ever retained
  }
  EXPECT_EQ(service.cache_stats().entries, 0u);
}

TEST(DhtJoinServiceTest, EvictedThenRefetchedIsBitIdentical) {
  TwoWayFixture f;
  std::vector<ScoredPair> reference = f.Reference();
  // A budget big enough to hold SOME batch states but far too small for
  // all of them (|Q| = 35 targets, each with a 25-double row), so every
  // round mixes cached hits with evicted-then-recomputed targets.
  DhtJoinService service(
      f.g, f.p, f.d,
      {.cache_budget_bytes = 4096, .cache_shards = 1, .num_threads = 1});
  for (int round = 0; round < 3; ++round) {
    auto result = service.TwoWay(f.P, f.Q, f.k);
    ASSERT_TRUE(result.ok());
    ExpectBitIdentical(*result, reference, "evicting round");
  }
  EXPECT_GT(service.cache_stats().evictions, 0);
}

TEST(DhtJoinServiceTest, XBoundServiceMatchesXBoundJoin) {
  TwoWayFixture f;
  BIdjJoin join(BIdjJoin::Options{.bound = UpperBoundKind::kX});
  auto reference = join.Run(f.g, f.p, f.d, f.P, f.Q, f.k);
  ASSERT_TRUE(reference.ok());
  DhtJoinService service(f.g, f.p, f.d,
                         {.num_threads = 1, .bound = UpperBoundKind::kX});
  auto cold = service.TwoWay(f.P, f.Q, f.k);
  auto warm = service.TwoWay(f.P, f.Q, f.k);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  ExpectBitIdentical(*cold, *reference, "X-bound cold");
  ExpectBitIdentical(*warm, *reference, "X-bound warm");
}

TEST(DhtJoinServiceTest, OverlappingQueriesShareTargetStates) {
  // Q2 shares targets with Q1 under the SAME P: those targets' batch
  // states must warm the second query even though the query differs.
  TwoWayFixture f;
  NodeSet Q2 = Range("Q2", 30, 50);  // subset of f.Q
  DhtJoinService service(f.g, f.p, f.d, {.num_threads = 1});
  ASSERT_TRUE(service.TwoWay(f.P, f.Q, f.k).ok());
  BIdjJoin join;
  auto reference = join.Run(f.g, f.p, f.d, f.P, Q2, f.k);
  ASSERT_TRUE(reference.ok());
  serve::QueryStats stats;
  auto result = service.TwoWay(f.P, Q2, f.k, &stats);
  ASSERT_TRUE(result.ok());
  ExpectBitIdentical(*result, *reference, "overlapping-Q warm");
  EXPECT_GT(stats.warm_targets, 0);
}

// ------------------------------------------------- n-way through cache

TEST(DhtJoinServiceTest, NestedLoopTablesWarmAndMatch) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph query;
  query.AddNodeSet(Range("A", 0, 5));
  query.AddNodeSet(Range("B", 5, 10));
  ASSERT_TRUE(query.AddBidirectionalEdge(0, 1).ok());
  MinAggregate f;

  NestedLoopJoin reference_join;
  auto reference = reference_join.Run(g, p, 6, query, f, 8);
  ASSERT_TRUE(reference.ok());

  DhtJoinService service(g, p, 6, {.num_threads = 1});
  serve::QueryStats cold_stats, warm_stats;
  auto cold = service.Nway(query, f, 8, DhtJoinService::NwayAlgo::kNestedLoop,
                           &cold_stats);
  auto warm = service.Nway(query, f, 8, DhtJoinService::NwayAlgo::kNestedLoop,
                           &warm_stats);
  ASSERT_TRUE(cold.ok());
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cold_stats.table_hits, 0);
  EXPECT_EQ(warm_stats.table_hits, 2);  // both directed edges cached

  ASSERT_EQ(reference->size(), cold->size());
  ASSERT_EQ(reference->size(), warm->size());
  for (std::size_t i = 0; i < reference->size(); ++i) {
    EXPECT_EQ((*reference)[i].nodes, (*cold)[i].nodes);
    EXPECT_EQ((*reference)[i].nodes, (*warm)[i].nodes);
    EXPECT_EQ((*reference)[i].f, (*cold)[i].f);
    EXPECT_EQ((*reference)[i].f, (*warm)[i].f);
  }
}

TEST(DhtJoinServiceTest, PartialJoinIncrementalThroughSnapshotCache) {
  Graph g = RandomGraph(50, 180, 23, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  QueryGraph query;
  query.AddNodeSet(Range("A", 0, 12));
  query.AddNodeSet(Range("B", 15, 30));
  ASSERT_TRUE(query.AddEdge(0, 1).ok());
  SumAggregate f;

  PartialJoin reference_join(PartialJoin::Options{.incremental = true});
  auto reference = reference_join.Run(g, p, 8, query, f, 10);
  ASSERT_TRUE(reference.ok());

  DhtJoinService service(g, p, 8, {.num_threads = 1});
  for (int round = 0; round < 2; ++round) {
    auto result = service.Nway(
        query, f, 10, DhtJoinService::NwayAlgo::kPartialJoinIncremental);
    ASSERT_TRUE(result.ok());
    ASSERT_EQ(reference->size(), result->size());
    for (std::size_t i = 0; i < reference->size(); ++i) {
      EXPECT_EQ((*reference)[i].nodes, (*result)[i].nodes);
      EXPECT_EQ((*reference)[i].f, (*result)[i].f);
    }
  }
  // The deepening walks left snapshots behind and reused them.
  CacheStats stats = service.cache_stats();
  EXPECT_GT(stats.insertions, 0);
  EXPECT_GT(stats.hits, 0);
}

// ------------------------------------------------- concurrent sessions

TEST(DhtJoinServiceTest, ConcurrentSessionsAreDeterministic) {
  Graph g = RandomGraph(80, 300, 31, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  const int d = 8;
  struct Template {
    NodeSet P, Q;
  };
  std::vector<Template> templates = {
      {Range("P0", 0, 20), Range("Q0", 30, 60)},
      {Range("P1", 5, 25), Range("Q1", 40, 70)},
      {Range("P2", 0, 20), Range("Q2", 40, 70)},
      {Range("P3", 10, 30), Range("Q3", 30, 60)},
  };
  const std::size_t k = 12;

  std::vector<std::vector<ScoredPair>> expected;
  for (const Template& t : templates) {
    BIdjJoin join;
    auto r = join.Run(g, p, d, t.P, t.Q, k);
    ASSERT_TRUE(r.ok());
    expected.push_back(*r);
  }

  DhtJoinService service(g, p, d, {.num_threads = 4});
  for (int round = 0; round < 3; ++round) {
    std::vector<std::future<Result<std::vector<ScoredPair>>>> futures;
    std::vector<std::size_t> which;
    for (int rep = 0; rep < 3; ++rep) {
      for (std::size_t t = 0; t < templates.size(); ++t) {
        futures.push_back(
            service.SubmitTwoWay(templates[t].P, templates[t].Q, k));
        which.push_back(t);
      }
    }
    for (std::size_t i = 0; i < futures.size(); ++i) {
      auto result = futures[i].get();
      ASSERT_TRUE(result.ok());
      ExpectBitIdentical(*result, expected[which[i]], "concurrent session");
    }
  }
  EXPECT_GT(service.cache_stats().hits, 0);
}

// --------------------------------------------- sparse forward states

TEST(ForwardBatchStatesTest, SparseSlotsSupportHugeVirtualGrids) {
  Graph g = RandomGraph(40, 130, 53, false, true);
  DhtParams p = DhtParams::Lambda(0.3);
  std::vector<ExtNodeId> sources = {ExtNodeId(0), ExtNodeId(2),
                                    ExtNodeId(4), ExtNodeId(6),
                                    ExtNodeId(8), ExtNodeId(10)};
  ExtNodeId target(33);
  ForwardWalkerBatch batch(g);
  std::vector<ExtNodeId> target_vec = {target};
  std::vector<double> scratch = batch.Run(p, 8, sources, target_vec);

  // Slot ids from a virtual 10^9 x 10^9 pair grid: the dense slot
  // vector this replaces could never be allocated.
  ForwardBatchStates states;
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    slots.push_back(i * 1'000'000'000ULL + 777'777'777ULL);
  }
  std::vector<double> resumed(sources.size());
  for (int l : {1, 2, 4, 8}) {
    batch.AdvancePairs(p, l, sources, slots, target, states,
                       [&](std::size_t i, double s) { resumed[i] = s; });
  }
  for (std::size_t i = 0; i < sources.size(); ++i) {
    EXPECT_EQ(resumed[i], scratch[i]) << "i=" << i;
  }
  // Only the live pairs occupy the map — the virtual grid costs nothing.
  EXPECT_EQ(states.size(), sources.size());
}

TEST(ForwardBatchStatesTest, DropAndBytesTrackResidentStates) {
  Graph g = RandomGraph(40, 130, 54, false, true);
  DhtParams p = DhtParams::Lambda(0.3);
  std::vector<ExtNodeId> sources = {ExtNodeId(1), ExtNodeId(3),
                                    ExtNodeId(5)};
  std::vector<std::size_t> slots = {900'000'000'000ULL, 7ULL,
                                    123'456'789'012ULL};
  ForwardWalkerBatch batch(g);
  ForwardBatchStates states;
  batch.AdvancePairs(p, 4, sources, slots, ExtNodeId(20), states,
                     [](std::size_t, double) {});
  EXPECT_EQ(states.size(), 3u);
  EXPECT_GT(states.bytes(), 0u);
  EXPECT_EQ(states.level(slots[0]), 4);
  EXPECT_EQ(states.level(1234567ULL), 0);  // absent slot reads level 0
  states.Drop(slots[0]);
  EXPECT_EQ(states.size(), 2u);
  EXPECT_EQ(states.level(slots[0]), 0);
  states.Drop(slots[0]);  // double-drop is a no-op
  EXPECT_EQ(states.size(), 2u);
}

// ------------------------------------------------------ stats & tuning

TEST(StatsTest, BIdjSurfacesStateCounters) {
  Graph g = RandomGraph(60, 200, 55, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 20);
  NodeSet Q = Range("Q", 25, 55);
  BIdjJoin resumed(BIdjJoin::Options{.resume = true});
  BIdjJoin restarted(BIdjJoin::Options{.resume = false});
  ASSERT_TRUE(resumed.Run(g, p, 8, P, Q, 10).ok());
  ASSERT_TRUE(restarted.Run(g, p, 8, P, Q, 10).ok());
  EXPECT_GT(resumed.stats().state_hits, 0);
  EXPECT_GT(resumed.stats().state_misses, 0);
  EXPECT_GT(resumed.stats().state_resident_bytes, 0);
  EXPECT_EQ(restarted.stats().state_hits, 0);
  EXPECT_EQ(restarted.stats().state_misses, 0);
  EXPECT_EQ(restarted.stats().state_resident_bytes, 0);
}

TEST(StatsTest, IncrementalJoinSurfacesPoolCounters) {
  Graph g = RandomGraph(50, 170, 56, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 15);
  NodeSet Q = Range("Q", 20, 45);
  auto join = IncrementalTwoWayJoin::Create(g, p, 8, P, Q, 10);
  ASSERT_TRUE(join.ok());
  for (int i = 0; i < 20; ++i) {
    if (!(*join)->Next().has_value()) break;
  }
  const TwoWayJoinStats& stats = (*join)->stats();
  EXPECT_GT(stats.state_hits, 0);
  EXPECT_GT(stats.state_misses, 0);
}

TEST(StatsTest, AutotuneBudgetScalesWithGraphAndClamps) {
  const std::size_t tiny = AutotuneStateBudgetBytes(10);
  const std::size_t mid = AutotuneStateBudgetBytes(200'000);
  const std::size_t huge = AutotuneStateBudgetBytes(1'000'000'000);
  EXPECT_EQ(tiny, std::size_t{64} << 20);  // floor
  EXPECT_GT(mid, tiny);
  EXPECT_EQ(huge, std::size_t{1} << 30);  // ceiling
  EXPECT_LE(mid, huge);
}

// ------------------------------------------------------------ workload

TEST(WorkloadTest, ZipfianWorkloadIsDeterministicAndSkewed) {
  Graph g = RandomGraph(60, 200, 57);
  std::vector<NodeSet> sets = {Range("A", 0, 15), Range("B", 15, 30),
                               Range("C", 30, 45), Range("D", 45, 60)};
  serve::WorkloadOptions opts;
  opts.num_requests = 400;
  opts.num_templates = 8;
  opts.zipf_s = 1.2;
  opts.set_size = 10;
  opts.seed = 99;
  auto a = serve::GenerateZipfianTwoWayWorkload(g, sets, opts);
  auto b = serve::GenerateZipfianTwoWayWorkload(g, sets, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->requests.size(), 400u);
  EXPECT_EQ(a->num_templates, 8u);
  for (std::size_t i = 0; i < a->requests.size(); ++i) {
    EXPECT_EQ(a->requests[i].template_id, b->requests[i].template_id);
    EXPECT_EQ(a->requests[i].P.nodes(), b->requests[i].P.nodes());
  }
  // Zipf skew: rank 0 must dominate the tail ranks.
  EXPECT_GT(a->frequency[0], a->frequency[a->frequency.size() - 1]);
  int64_t total = 0;
  for (int64_t f : a->frequency) total += f;
  EXPECT_EQ(total, 400);
  for (const auto& req : a->requests) {
    EXPECT_LE(req.P.size(), 10u);
    EXPECT_FALSE(req.P.empty());
  }
}

TEST(WorkloadTest, RejectsDegenerateInputs) {
  Graph g = RandomGraph(20, 60, 58);
  std::vector<NodeSet> one = {Range("A", 0, 10)};
  std::vector<NodeSet> two = {Range("A", 0, 10), Range("B", 10, 20)};
  EXPECT_FALSE(
      serve::GenerateZipfianTwoWayWorkload(g, one, {}).ok());
  serve::WorkloadOptions zero_requests;
  zero_requests.num_requests = 0;
  EXPECT_FALSE(
      serve::GenerateZipfianTwoWayWorkload(g, two, zero_requests).ok());
}

}  // namespace
}  // namespace dhtjoin
