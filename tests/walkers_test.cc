/// \file tests/walkers_test.cc
/// \brief Forward and backward first-hit walkers vs the path-enumeration
/// oracle, plus the analytic invariants of h_d.

#include <gtest/gtest.h>

#include <cmath>

#include "dht/backward.h"
#include "dht/forward.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::CompleteGraph;
using testing::CycleGraph;
using testing::PathGraph;
using testing::RandomGraph;
using testing::RefFirstHitProb;
using testing::RefHd;
using testing::StarGraph;
using testing::TwoCommunityGraph;

// --------------------------------------------------- analytic examples

TEST(ForwardWalkerTest, PathGraphExactValues) {
  // On 0->1->2, P_i(0,2) = 1 exactly at i = 2; h_d = a*l^2 + b for d >= 2.
  Graph g = PathGraph(3);
  DhtParams p = DhtParams::Lambda(0.2);
  ForwardWalker w(g);
  EXPECT_DOUBLE_EQ(w.Compute(p, 1, ExtNodeId(0), ExtNodeId(2)), p.beta);
  double expect = p.alpha * p.lambda * p.lambda + p.beta;
  EXPECT_DOUBLE_EQ(w.Compute(p, 2, ExtNodeId(0), ExtNodeId(2)), expect);
  // No longer paths exist past depth 2.
  EXPECT_DOUBLE_EQ(w.Compute(p, 8, ExtNodeId(0), ExtNodeId(2)), expect);
}

TEST(ForwardWalkerTest, CycleFirstReturnIsExactlyN) {
  // On a directed n-cycle the walk returns to its start at step n with
  // probability 1 and never earlier; first-hit at the predecessor takes
  // n-1 steps.
  Graph g = CycleGraph(5);
  ForwardWalker w(g);
  DhtParams p = DhtParams::Lambda(0.5);
  w.Reset(p, ExtNodeId(0), ExtNodeId(4));
  w.Advance(8);
  for (int i = 1; i <= 8; ++i) {
    EXPECT_DOUBLE_EQ(w.HitProbability(i), i == 4 ? 1.0 : 0.0);
  }
}

TEST(ForwardWalkerTest, StarHubOscillation) {
  // From leaf 1 of a star: step 1 reaches hub w.p. 1. First-hit on leaf
  // 2 happens at even steps: P_2 = 1/(n-1), P_4 = (n-2)/(n-1) * 1/(n-1).
  Graph g = StarGraph(4);  // hub 0, leaves 1..3
  ForwardWalker w(g);
  DhtParams p = DhtParams::Exponential();
  w.Reset(p, ExtNodeId(1), ExtNodeId(2));
  w.Advance(4);
  EXPECT_DOUBLE_EQ(w.HitProbability(1), 0.0);
  EXPECT_NEAR(w.HitProbability(2), 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(w.HitProbability(3), 0.0);
  EXPECT_NEAR(w.HitProbability(4), (2.0 / 3.0) * (1.0 / 3.0), 1e-12);
}

// ------------------------------------------------ oracle cross-checks

TEST(ForwardWalkerTest, MatchesPathEnumerationOracle) {
  Graph g = TwoCommunityGraph();
  ForwardWalker w(g);
  const int d = 6;
  for (NodeId u : {0, 3, 7}) {
    for (NodeId v : {2, 5, 9}) {
      if (u == v) continue;
      w.Reset(DhtParams::Lambda(0.2), ExtNodeId(u), ExtNodeId(v));
      w.Advance(d);
      for (int i = 1; i <= d; ++i) {
        EXPECT_NEAR(w.HitProbability(i), RefFirstHitProb(g, u, v, i), 1e-10)
            << "u=" << u << " v=" << v << " i=" << i;
      }
    }
  }
}

TEST(BackwardWalkerTest, MatchesPathEnumerationOracle) {
  Graph g = TwoCommunityGraph();
  BackwardWalker w(g);
  const int d = 6;
  DhtParams p = DhtParams::Lambda(0.3);
  for (NodeId v : {2, 5, 9}) {
    w.Reset(p, ExtNodeId(v));
    w.Advance(d);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == v) continue;
      EXPECT_NEAR(w.Score(ExtNodeId(u)), RefHd(g, p, d, u, v), 1e-10)
          << "u=" << u << " v=" << v;
    }
  }
}

struct WalkerSweepCase {
  uint64_t seed;
  bool weighted;
  double lambda;  // 0 = use DHTe
};

class WalkerAgreement : public ::testing::TestWithParam<WalkerSweepCase> {};

TEST_P(WalkerAgreement, ForwardEqualsBackward) {
  const auto& c = GetParam();
  Graph g = RandomGraph(30, 80, c.seed, /*undirected=*/true, c.weighted);
  DhtParams p = c.lambda > 0 ? DhtParams::Lambda(c.lambda)
                             : DhtParams::Exponential();
  const int d = 8;
  ForwardWalker fw(g);
  BackwardWalker bw(g);
  for (NodeId v : {0, 7, 19}) {
    bw.Reset(p, ExtNodeId(v));
    bw.Advance(d);
    for (NodeId u : {1, 3, 11, 25}) {
      if (u == v) continue;
      EXPECT_NEAR(fw.Compute(p, d, ExtNodeId(u), ExtNodeId(v)),
                  bw.Score(ExtNodeId(u)), 1e-10)
          << "u=" << u << " v=" << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WalkerAgreement,
    ::testing::Values(WalkerSweepCase{11, false, 0.2},
                      WalkerSweepCase{12, true, 0.2},
                      WalkerSweepCase{13, false, 0.6},
                      WalkerSweepCase{14, true, 0.8},
                      WalkerSweepCase{15, true, 0.0},   // DHTe
                      WalkerSweepCase{16, false, 0.0}));

// ----------------------------------------------------- h_d invariants

TEST(WalkerInvariants, ScoreMonotoneInD) {
  Graph g = RandomGraph(25, 60, 21);
  DhtParams p = DhtParams::Lambda(0.4);
  BackwardWalker w(g);
  w.Reset(p, ExtNodeId(5));
  double prev = -1e100;
  for (int step = 0; step < 10; ++step) {
    w.Advance(1);
    double s = w.Score(ExtNodeId(17));
    EXPECT_GE(s, prev - 1e-15);
    prev = s;
  }
}

TEST(WalkerInvariants, ScoresWithinFloorAndCeiling) {
  Graph g = RandomGraph(25, 60, 22, true, true);
  for (double lambda : {0.2, 0.8}) {
    DhtParams p = DhtParams::Lambda(lambda);
    BackwardWalker w(g);
    w.Reset(p, ExtNodeId(3));
    w.Advance(10);
    for (NodeId u = 0; u < g.num_nodes(); ++u) {
      if (u == 3) continue;
      EXPECT_GE(w.Score(ExtNodeId(u)), p.FloorScore());
      EXPECT_LE(w.Score(ExtNodeId(u)), p.MaxScore() + 1e-12);
    }
  }
}

TEST(WalkerInvariants, FirstHitProbsFormSubDistribution) {
  // Sum over i of P_i(u, v) <= 1 (the walk may never hit v).
  Graph g = TwoCommunityGraph();
  ForwardWalker w(g);
  w.Reset(DhtParams::Lambda(0.2), ExtNodeId(0), ExtNodeId(9));
  const int steps = 300;  // two sparse bridges: mixing is slow
  w.Advance(steps);
  double total = 0.0;
  for (int i = 1; i <= steps; ++i) total += w.HitProbability(i);
  EXPECT_LE(total, 1.0 + 1e-9);
  EXPECT_GT(total, 0.9);  // connected graph: the walk almost surely hits
}

TEST(WalkerInvariants, DhtLambdaRecurrenceHolds) {
  // Eq. 2: DHT_l(u, v) = -1 + l * sum_w p_uw DHT_l(w, v), checked on
  // deeply truncated scores (truncation error < 1e-9 by Lemma 1).
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.3);
  int d = p.StepsForEpsilon(1e-10);
  BackwardWalker w(g);
  const NodeId v = 6;
  w.Reset(p, ExtNodeId(v));
  w.Advance(d);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    if (u == v) continue;
    double rhs = -1.0;
    for (const OutEdge& e : g.OutEdges(IntNodeId(u))) {
      // DHT(v, v) = 0; fresh fixture, so internal == external ids.
      double hw = e.to == v ? 0.0 : w.Score(ExtNodeId(e.to));
      rhs += p.lambda * e.prob * hw;
    }
    EXPECT_NEAR(w.Score(ExtNodeId(u)), rhs, 1e-8) << "u=" << u;
  }
}

TEST(WalkerInvariants, SinkNodeNeverReachesAnything) {
  // Node 2 of the path graph has no out-edges.
  Graph g = PathGraph(3);
  DhtParams p = DhtParams::Lambda(0.2);
  ForwardWalker w(g);
  EXPECT_DOUBLE_EQ(w.Compute(p, 8, ExtNodeId(2), ExtNodeId(0)), p.beta);
}

TEST(WalkerInvariants, AbsorptionStopsMassAtTarget) {
  // 0 -> 1 -> 2 -> 3; absorbing at 1 means 2 and 3 are never visited, so
  // first-hit of 3 from 0 when absorbed at... instead check: forward to
  // target 1 must put zero hit probability at steps > 1.
  Graph g = PathGraph(4);
  ForwardWalker w(g);
  w.Reset(DhtParams::Lambda(0.5), ExtNodeId(0), ExtNodeId(1));
  w.Advance(5);
  EXPECT_DOUBLE_EQ(w.HitProbability(1), 1.0);
  for (int i = 2; i <= 5; ++i) {
    EXPECT_DOUBLE_EQ(w.HitProbability(i), 0.0);
  }
}

TEST(WalkerInvariants, ResumableAdvanceMatchesOneShot) {
  Graph g = RandomGraph(25, 70, 23);
  DhtParams p = DhtParams::Lambda(0.5);
  BackwardWalker a(g), b(g);
  a.Reset(p, ExtNodeId(4));
  a.Advance(8);
  b.Reset(p, ExtNodeId(4));
  b.Advance(3);
  b.Advance(5);  // resumed
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_DOUBLE_EQ(a.Score(ExtNodeId(u)), b.Score(ExtNodeId(u)));
  }
  EXPECT_EQ(b.level(), 8);
}

TEST(WalkerInvariants, ResetReusesWorkspaceCleanly) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.2);
  BackwardWalker w(g);
  w.Reset(p, ExtNodeId(0));
  w.Advance(8);
  double first = w.Score(ExtNodeId(9));
  w.Reset(p, ExtNodeId(5));  // different target
  w.Advance(8);
  w.Reset(p, ExtNodeId(0));  // back to the first target
  w.Advance(8);
  EXPECT_DOUBLE_EQ(w.Score(ExtNodeId(9)), first);
}

TEST(WalkerInvariants, WeightsChangeScores) {
  // Heavier edge => higher transition probability => higher DHT.
  GraphBuilder b1(3), b2(3);
  ASSERT_TRUE(b1.AddEdge(0, 1, 1.0).ok());
  ASSERT_TRUE(b1.AddEdge(0, 2, 1.0).ok());
  ASSERT_TRUE(b2.AddEdge(0, 1, 9.0).ok());
  ASSERT_TRUE(b2.AddEdge(0, 2, 1.0).ok());
  Graph even = std::move(b1.Build()).value();
  Graph skew = std::move(b2.Build()).value();
  DhtParams p = DhtParams::Lambda(0.2);
  ForwardWalker we(even), ws(skew);
  EXPECT_LT(we.Compute(p, 4, ExtNodeId(0), ExtNodeId(1)),
            ws.Compute(p, 4, ExtNodeId(0), ExtNodeId(1)));
}

}  // namespace
}  // namespace dhtjoin
