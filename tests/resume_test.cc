/// \file tests/resume_test.cc
/// \brief Resume-equivalence property tests: continuing a walk from its
/// current level (or from a saved/restored state, or from a batch
/// engine's persistent per-target state) must be BIT-identical to a
/// from-scratch walk of the same depth, under both first-hit (DHT) and
/// visiting (PPR) semantics — the determinism contract of DESIGN.md §3
/// that makes resumable deepening byte-safe.

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "dht/backward.h"
#include "dht/backward_batch.h"
#include "dht/forward.h"
#include "dht/forward_batch.h"
#include "dht/walker_state.h"
#include "graph/reorder.h"
#include "join2/b_idj.h"
#include "join2/f_idj.h"
#include "testing/reference.h"

namespace dhtjoin {
namespace {

using testing::RandomGraph;
using testing::Range;
using testing::StarGraph;
using testing::TwoCommunityGraph;

std::vector<DhtParams> Semantics() {
  return {DhtParams::Lambda(0.2), DhtParams::Lambda(0.7),
          DhtParams::Exponential(), DhtParams::PersonalizedPageRank(0.7)};
}

// --------------------------------------------------- scalar walkers

TEST(ResumeTest, BackwardSplitAdvanceIsBitIdentical) {
  Graph g = RandomGraph(45, 140, 41, true, true);
  for (const DhtParams& p : Semantics()) {
    for (auto mode : {PropagationMode::kDense, PropagationMode::kSparse,
                      PropagationMode::kAdaptive}) {
      BackwardWalker whole(g, mode);
      BackwardWalker split(g, mode);
      for (int l : {1, 2, 4}) {
        whole.Reset(p, ExtNodeId(7));
        whole.Advance(2 * l);
        split.Reset(p, ExtNodeId(7));
        split.Advance(l);
        split.Advance(l);
        for (NodeId u = 0; u < g.num_nodes(); ++u) {
          // Bit-identical, not merely close: resume must not perturb
          // the floating-point trajectory.
          EXPECT_EQ(whole.Score(ExtNodeId(u)), split.Score(ExtNodeId(u)))
              << "first_hit=" << p.first_hit << " l=" << l << " u=" << u;
        }
      }
    }
  }
}

TEST(ResumeTest, ForwardSplitAdvanceIsBitIdentical) {
  Graph g = RandomGraph(45, 140, 42, false, true);
  for (const DhtParams& p : Semantics()) {
    ForwardWalker whole(g);
    ForwardWalker split(g);
    for (int l : {1, 3, 4}) {
      whole.Reset(p, ExtNodeId(2), ExtNodeId(31));
      whole.Advance(2 * l);
      split.Reset(p, ExtNodeId(2), ExtNodeId(31));
      split.Advance(l);
      split.Advance(l);
      EXPECT_EQ(whole.Score(), split.Score())
          << "first_hit=" << p.first_hit << " l=" << l;
      for (int i = 1; i <= 2 * l; ++i) {
        EXPECT_EQ(whole.HitProbability(i), split.HitProbability(i));
      }
    }
  }
}

TEST(ResumeTest, BackwardSaveRestoreResumesExactly) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.3);
  BackwardWalker reference(g);
  reference.Reset(p, ExtNodeId(7));
  reference.Advance(8);

  BackwardWalker walker(g);
  walker.Reset(p, ExtNodeId(7));
  walker.Advance(3);
  BackwardWalkerState snapshot;
  walker.Save(&snapshot);
  EXPECT_EQ(snapshot.level, 3);
  EXPECT_EQ(snapshot.target.value(), 7);
  // Perturb the walker with unrelated targets, then restore.
  walker.Reset(p, ExtNodeId(2));
  walker.Advance(5);
  walker.Restore(p, snapshot);
  EXPECT_EQ(walker.level(), 3);
  EXPECT_EQ(walker.target().value(), 7);
  walker.Advance(5);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    EXPECT_EQ(walker.Score(ExtNodeId(u)), reference.Score(ExtNodeId(u)))
        << "u=" << u;
  }
}

TEST(ResumeTest, ForwardSaveRestoreResumesExactly) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::PersonalizedPageRank(0.8);  // PPR path too
  ForwardWalker reference(g);
  reference.Reset(p, ExtNodeId(0), ExtNodeId(9));
  reference.Advance(9);

  ForwardWalker walker(g);
  walker.Reset(p, ExtNodeId(0), ExtNodeId(9));
  walker.Advance(4);
  ForwardWalkerState snapshot;
  walker.Save(&snapshot);
  walker.Reset(p, ExtNodeId(3), ExtNodeId(6));
  walker.Advance(2);
  walker.Restore(p, snapshot);
  walker.Advance(5);
  EXPECT_EQ(walker.Score(), reference.Score());
  EXPECT_EQ(walker.level(), 9);
  for (int i = 1; i <= 9; ++i) {
    EXPECT_EQ(walker.HitProbability(i), reference.HitProbability(i));
  }
}

// ------------------------------------------------ walker state pool

TEST(ResumeTest, WalkerStatePoolFindsPutAndEvictsLru) {
  Graph g = StarGraph(16);
  DhtParams p = DhtParams::Lambda(0.2);
  BackwardWalker walker(g);

  BackwardWalkerState proto;
  walker.Reset(p, ExtNodeId(1));
  walker.Advance(2);
  walker.Save(&proto);
  const std::size_t per_state = proto.ApproxBytes();

  // Budget for about two states.
  WalkerStatePool<BackwardWalkerState> pool(2 * per_state + per_state / 2);
  pool.Put(10, proto);
  pool.Put(11, proto);
  EXPECT_EQ(pool.size(), 2u);
  ASSERT_NE(pool.Find(10), nullptr);  // bump 10 to most-recent
  pool.Put(12, proto);                // evicts 11, the LRU entry
  EXPECT_EQ(pool.Find(11), nullptr);
  EXPECT_NE(pool.Find(10), nullptr);
  EXPECT_NE(pool.Find(12), nullptr);
  pool.Erase(10);
  EXPECT_EQ(pool.Find(10), nullptr);
  EXPECT_EQ(pool.size(), 1u);

  // A state larger than the whole budget is not retained.
  WalkerStatePool<BackwardWalkerState> tiny(1);
  tiny.Put(1, proto);
  EXPECT_EQ(tiny.Find(1), nullptr);
}

TEST(ResumeTest, WalkerStatePoolRetuneGrowsOnThrashShrinksOnIdle) {
  Graph g = StarGraph(16);
  DhtParams p = DhtParams::Lambda(0.2);
  BackwardWalker walker(g);
  BackwardWalkerState proto;
  walker.Reset(p, ExtNodeId(1));
  walker.Advance(2);
  walker.Save(&proto);
  const std::size_t per_state = proto.ApproxBytes();

  // THRASH: four keys cycling through a one-state budget — misses and
  // evictions dominate, so the feedback autotuner doubles the budget.
  WalkerStatePool<BackwardWalkerState> pool(per_state + per_state / 2);
  for (uint64_t k = 0; k < 8; ++k) {
    EXPECT_EQ(pool.Find(k % 4), nullptr);
    pool.Put(k % 4, proto);
  }
  EXPECT_GT(pool.evictions(), 0);
  const std::size_t before = pool.max_bytes();
  EXPECT_EQ(pool.Retune(per_state, 100 * per_state), 2 * before);
  EXPECT_EQ(pool.budget_grows(), 1);
  // No new activity since: the budget holds steady.
  EXPECT_EQ(pool.Retune(per_state, 100 * per_state), 2 * before);
  EXPECT_EQ(pool.budget_grows(), 1);

  // IDLE: all hits, no evictions, resident far below the budget — the
  // autotuner halves it (never below `lo` or the resident bytes).
  WalkerStatePool<BackwardWalkerState> idle(64 * per_state);
  idle.Put(1, proto);
  for (int i = 0; i < 8; ++i) EXPECT_NE(idle.Find(1), nullptr);
  EXPECT_EQ(idle.Retune(per_state, 100 * per_state), 32 * per_state);
  EXPECT_EQ(idle.budget_shrinks(), 1);
  // Repeated idle periods keep shrinking, but never below `lo`.
  for (int i = 0; i < 20; ++i) idle.Retune(4 * per_state, 100 * per_state);
  EXPECT_EQ(idle.max_bytes(), 4 * per_state);
}

TEST(ResumeTest, BatchWorkspacePoolCapDiscardsIdleWorkspaces) {
  Graph g = RandomGraph(60, 200, 91);
  DhtParams p = DhtParams::Lambda(0.2);
  std::vector<ExtNodeId> targets = {
      ExtNodeId(1), ExtNodeId(2), ExtNodeId(3), ExtNodeId(4),
      ExtNodeId(5), ExtNodeId(6), ExtNodeId(7), ExtNodeId(8),
      ExtNodeId(9), ExtNodeId(10)};
  std::vector<ExtNodeId> sources = {
      ExtNodeId(11), ExtNodeId(12), ExtNodeId(13)};

  // max_pooled_bytes = 1: every workspace is freed on release instead
  // of pinning 128 bytes/node for the engine's lifetime. Scores are
  // unaffected — the cap trades reallocation time for idle memory.
  BackwardWalkerBatch pooled(g);
  BackwardWalkerBatch capped(g, {.max_pooled_bytes = 1});
  EXPECT_EQ(pooled.Run(p, 4, targets, sources),
            capped.Run(p, 4, targets, sources));
  EXPECT_GT(pooled.pooled_workspaces(), 0u);
  EXPECT_LE(pooled.pooled_workspace_bytes(),
            BackwardWalkerBatch::kDefaultMaxPooledBytes);
  EXPECT_EQ(capped.pooled_workspaces(), 0u);
  EXPECT_EQ(capped.pooled_workspace_bytes(), 0u);
  EXPECT_GT(capped.workspaces_discarded(), 0);
  EXPECT_EQ(pooled.workspaces_discarded(), 0);

  ForwardWalkerBatch fpooled(g);
  ForwardWalkerBatch fcapped(g, {.max_pooled_bytes = 1});
  EXPECT_EQ(fpooled.Run(p, 4, sources, targets),
            fcapped.Run(p, 4, sources, targets));
  EXPECT_EQ(fcapped.pooled_workspaces(), 0u);
  EXPECT_GT(fcapped.workspaces_discarded(), 0);
}

// ------------------------------------------------- batched backward

TEST(ResumeTest, BackwardBatchResumeMatchesFromScratchBitwise) {
  Graph g = RandomGraph(50, 170, 43, true, true);
  std::vector<ExtNodeId> targets = {
      ExtNodeId(3), ExtNodeId(9), ExtNodeId(14), ExtNodeId(20),
      ExtNodeId(27), ExtNodeId(33), ExtNodeId(38), ExtNodeId(44),
      ExtNodeId(48)};
  std::vector<std::size_t> slots = {0, 1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<ExtNodeId> sources;
  for (NodeId u = 0; u < 25; ++u) sources.push_back(ExtNodeId(u));
  for (const DhtParams& p : Semantics()) {
    BackwardWalkerBatch batch(g);
    std::vector<double> scratch = batch.Run(p, 8, targets, sources);

    BackwardBatchStates states(targets.size());
    std::vector<double> resumed(scratch.size());
    int64_t fresh_total = 0;
    for (int l : {1, 2, 4, 8}) {  // the IDJ deepening schedule
      fresh_total += batch.AdvanceChunked(
          p, l, targets, slots, sources,
          states, [&](std::size_t i, const double* row) {
            std::copy(row, row + sources.size(),
                      resumed.data() + i * sources.size());
          });
    }
    // Every target walked from scratch exactly once, at level 1.
    EXPECT_EQ(fresh_total, static_cast<int64_t>(targets.size()));
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      EXPECT_EQ(resumed[i], scratch[i]) << "first_hit=" << p.first_hit
                                        << " i=" << i;
    }
  }
}

TEST(ResumeTest, BackwardBatchResumeRelaxesFewerEdgesThanRestart) {
  Graph g = RandomGraph(60, 220, 44);
  DhtParams p = DhtParams::Lambda(0.2);
  std::vector<ExtNodeId> targets;
  std::vector<std::size_t> slots;
  for (NodeId q = 0; q < 24; ++q) {
    targets.push_back(ExtNodeId(q));
    slots.push_back(static_cast<std::size_t>(q));
  }
  std::vector<ExtNodeId> sources = {
      ExtNodeId(30), ExtNodeId(40), ExtNodeId(50), ExtNodeId(55)};

  BackwardWalkerBatch restart(g);
  BackwardWalkerBatch resume(g);
  BackwardBatchStates states(targets.size());
  auto sink = [](std::size_t, const double*) {};
  for (int l : {1, 2, 4, 8}) {
    restart.RunChunked(p, l, targets, sources, sink);
    resume.AdvanceChunked(p, l, targets, slots, sources, states, sink);
  }
  // Restart pays 1+2+4+8 = 15 levels of stepping; resume pays 8.
  EXPECT_LT(resume.edges_relaxed(), restart.edges_relaxed());
  EXPECT_GT(resume.edges_relaxed(), 0);
}

TEST(ResumeTest, BackwardBatchEvictionRestartsTransparently) {
  Graph g = RandomGraph(40, 130, 45);
  DhtParams p = DhtParams::Exponential();
  std::vector<ExtNodeId> targets = {
      ExtNodeId(1), ExtNodeId(5), ExtNodeId(9), ExtNodeId(13),
      ExtNodeId(17), ExtNodeId(21), ExtNodeId(25), ExtNodeId(29),
      ExtNodeId(33), ExtNodeId(37)};
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < targets.size(); ++i) slots.push_back(i);
  std::vector<ExtNodeId> sources = {
      ExtNodeId(0), ExtNodeId(2), ExtNodeId(4), ExtNodeId(6)};

  BackwardWalkerBatch batch(g);
  std::vector<double> scratch = batch.Run(p, 6, targets, sources);

  // A 1-byte budget: every writeback is dropped, every level restarts —
  // results must not change (only the step count does).
  BackwardBatchStates starving(targets.size(), 1);
  std::vector<double> resumed(scratch.size());
  for (int l : {1, 2, 4, 6}) {
    batch.AdvanceChunked(p, l, targets, slots, sources, starving,
                         [&](std::size_t i, const double* row) {
                           std::copy(row, row + sources.size(),
                                     resumed.data() + i * sources.size());
                         });
  }
  EXPECT_EQ(starving.bytes(), 0u);
  for (std::size_t i = 0; i < scratch.size(); ++i) {
    EXPECT_EQ(resumed[i], scratch[i]) << "i=" << i;
  }
}

TEST(ResumeTest, BackwardBatchDropFreesAndRestarts) {
  Graph g = TwoCommunityGraph();
  DhtParams p = DhtParams::Lambda(0.4);
  std::vector<ExtNodeId> targets = {
      ExtNodeId(7), ExtNodeId(2)};
  std::vector<std::size_t> slots = {0, 1};
  std::vector<ExtNodeId> sources = {
      ExtNodeId(0), ExtNodeId(1), ExtNodeId(3)};
  BackwardWalkerBatch batch(g);
  BackwardBatchStates states(2);
  auto sink = [](std::size_t, const double*) {};
  batch.AdvanceChunked(p, 2, targets, slots, sources, states, sink);
  EXPECT_EQ(states.level(0), 2);
  EXPECT_GT(states.bytes(), 0u);
  states.Drop(0);
  EXPECT_EQ(states.level(0), 0);
  // Dropped slot restarts; undropped one resumes. Both match scratch.
  std::vector<double> rows(2 * sources.size());
  int64_t fresh = batch.AdvanceChunked(
      p, 4, targets, slots, sources, states,
      [&](std::size_t i, const double* row) {
        std::copy(row, row + sources.size(), rows.data() + i * sources.size());
      });
  EXPECT_EQ(fresh, 1);
  std::vector<double> scratch = batch.Run(p, 4, targets, sources);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i], scratch[i]);
  }
}

// -------------------------------------------------- batched forward

TEST(ResumeTest, ForwardBatchMatchesScalarWalker) {
  Graph g = RandomGraph(50, 160, 46, true, true);
  std::vector<ExtNodeId> sources;
  for (NodeId u = 0; u < 21; ++u) sources.push_back(ExtNodeId(u));
  std::vector<ExtNodeId> targets = {
      ExtNodeId(25), ExtNodeId(30), ExtNodeId(35), ExtNodeId(40),
      ExtNodeId(45)};
  for (const DhtParams& p : Semantics()) {
    ForwardWalkerBatch batch(g);
    std::vector<double> got = batch.Run(p, 8, sources, targets);
    ASSERT_EQ(got.size(), sources.size() * targets.size());
    ForwardWalker walker(g);
    for (std::size_t s = 0; s < sources.size(); ++s) {
      for (std::size_t t = 0; t < targets.size(); ++t) {
        if (sources[s] == targets[t]) continue;
        double want = walker.Compute(p, 8, sources[s], targets[t]);
        // The sorted-support contract makes batch lanes bit-equal to
        // the scalar engine, not merely 1e-12-close.
        EXPECT_EQ(got[s * targets.size() + t], want)
            << "first_hit=" << p.first_hit << " s=" << s << " t=" << t;
      }
    }
  }
}

TEST(ResumeTest, ForwardBatchChunkedMatchesSingleRun) {
  Graph g = RandomGraph(40, 120, 47);
  DhtParams p = DhtParams::Lambda(0.3);
  std::vector<ExtNodeId> sources = {
      ExtNodeId(0), ExtNodeId(3), ExtNodeId(6), ExtNodeId(9),
      ExtNodeId(12), ExtNodeId(15), ExtNodeId(18), ExtNodeId(21),
      ExtNodeId(24), ExtNodeId(27)};
  std::vector<ExtNodeId> targets = {
      ExtNodeId(30), ExtNodeId(33), ExtNodeId(36)};
  ForwardWalkerBatch batch(g);
  std::vector<double> whole = batch.Run(p, 7, sources, targets);
  std::vector<double> chunked(whole.size(), 0.0);
  std::vector<int> rows_seen(sources.size(), 0);
  batch.RunChunked(
      p, 7, sources, targets,
      [&](std::size_t s, const double* row) {
        rows_seen[s]++;
        std::copy(row, row + targets.size(), &chunked[s * targets.size()]);
      },
      /*max_sources_per_run=*/3);
  for (int seen : rows_seen) EXPECT_EQ(seen, 1);
  for (std::size_t i = 0; i < whole.size(); ++i) {
    EXPECT_EQ(chunked[i], whole[i]) << "i=" << i;
  }
}

TEST(ResumeTest, ForwardBatchThreadCountDoesNotChangeResults) {
  Graph g = RandomGraph(45, 150, 48);
  DhtParams p = DhtParams::Lambda(0.5);
  std::vector<ExtNodeId> sources;
  for (NodeId u = 0; u < 30; ++u) sources.push_back(ExtNodeId(u));
  std::vector<ExtNodeId> targets = {
      ExtNodeId(31), ExtNodeId(35), ExtNodeId(39), ExtNodeId(43)};
  ForwardWalkerBatch one(g, {.num_threads = 1});
  ForwardWalkerBatch four(g, {.num_threads = 4});
  std::vector<double> a = one.Run(p, 8, sources, targets);
  std::vector<double> b = four.Run(p, 8, sources, targets);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "i=" << i;
  }
  EXPECT_EQ(one.edges_relaxed(), four.edges_relaxed());
}

TEST(ResumeTest, ForwardBatchPairResumeMatchesFromScratchBitwise) {
  Graph g = RandomGraph(40, 130, 49, false, true);
  std::vector<ExtNodeId> sources = {
      ExtNodeId(0), ExtNodeId(2), ExtNodeId(4), ExtNodeId(6),
      ExtNodeId(8), ExtNodeId(10), ExtNodeId(12), ExtNodeId(14),
      ExtNodeId(16)};
  ExtNodeId target(33);
  std::vector<std::size_t> slots;
  for (std::size_t i = 0; i < sources.size(); ++i) slots.push_back(i);
  std::vector<ExtNodeId> target_vec = {target};
  for (const DhtParams& p : Semantics()) {
    ForwardWalkerBatch batch(g);
    std::vector<double> scratch = batch.Run(p, 8, sources, target_vec);

    ForwardBatchStates states;  // sparse map: no slot-count preallocation
    std::vector<double> resumed(sources.size());
    int64_t fresh_total = 0;
    for (int l : {1, 2, 4, 8}) {
      fresh_total += batch.AdvancePairs(
          p, l, sources, slots, target, states,
          [&](std::size_t i, double s) { resumed[i] = s; });
    }
    EXPECT_EQ(fresh_total, static_cast<int64_t>(sources.size()));
    for (std::size_t i = 0; i < sources.size(); ++i) {
      EXPECT_EQ(resumed[i], scratch[i])
          << "first_hit=" << p.first_hit << " i=" << i;
    }
  }
}

// ------------------------------------- fused multi-target scheduler

TEST(ResumeTest, BackwardBatchMatchesScalarWalkerBitwise) {
  // The batch engine accumulates beta-exclusive delta rows in the
  // scalar walker's exact step order and adds beta at output, so the
  // two engines are BIT-identical — the property that lets the
  // incremental join's batch-driven initial schedule coexist with the
  // scalar Next() path without perturbing a single result.
  Graph g = RandomGraph(50, 170, 61, true, true);
  std::vector<ExtNodeId> targets = {
      ExtNodeId(2), ExtNodeId(7), ExtNodeId(13), ExtNodeId(21),
      ExtNodeId(30), ExtNodeId(44)};
  std::vector<ExtNodeId> sources;
  for (NodeId u = 0; u < 25; ++u) sources.push_back(ExtNodeId(u));
  for (const DhtParams& p : Semantics()) {
    BackwardWalkerBatch batch(g);
    std::vector<double> got = batch.Run(p, 8, targets, sources);
    BackwardWalker walker(g);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      walker.Reset(p, targets[t]);
      walker.Advance(8);
      for (std::size_t s = 0; s < sources.size(); ++s) {
        if (sources[s] == targets[t]) continue;
        EXPECT_EQ(got[t * sources.size() + s], walker.Score(sources[s]))
            << "first_hit=" << p.first_hit << " t=" << t << " s=" << s;
      }
    }
  }
}

/// Runs the F-IDJ-shaped deepening schedule over every (source, target)
/// pair with one AdvancePairs call per target per level — the
/// historical per-target loop — and returns the final-level scores
/// (row-major by target) plus the engine's barrier count.
std::pair<std::vector<double>, int64_t> ForwardPerTargetLoop(
    const Graph& g, const DhtParams& p, const std::vector<int>& levels,
    const std::vector<ExtNodeId>& sources,
    const std::vector<ExtNodeId>& targets, int num_threads) {
  ForwardWalkerBatch batch(g, {.num_threads = num_threads});
  ForwardBatchStates states;
  std::vector<double> out(targets.size() * sources.size());
  std::vector<std::size_t> slots(sources.size());
  for (int l : levels) {
    for (std::size_t t = 0; t < targets.size(); ++t) {
      for (std::size_t i = 0; i < sources.size(); ++i) {
        slots[i] = i * targets.size() + t;
      }
      batch.AdvancePairs(p, l, sources, slots, targets[t], states,
                         [&](std::size_t i, double s) {
                           out[t * sources.size() + i] = s;
                         });
    }
  }
  return {std::move(out), batch.scheduler_barriers()};
}

/// The same schedule through the fused scheduler: ONE AdvanceMany call
/// (one fork/join) per level across all targets.
std::pair<std::vector<double>, int64_t> ForwardFusedSchedule(
    const Graph& g, const DhtParams& p, const std::vector<int>& levels,
    const std::vector<ExtNodeId>& sources,
    const std::vector<ExtNodeId>& targets, int num_threads) {
  ForwardWalkerBatch batch(g, {.num_threads = num_threads});
  ForwardBatchStates states;
  std::vector<double> out(targets.size() * sources.size());
  std::vector<std::size_t> slots(targets.size() * sources.size());
  std::vector<ForwardTargetPlan> plans(targets.size());
  for (std::size_t t = 0; t < targets.size(); ++t) {
    for (std::size_t i = 0; i < sources.size(); ++i) {
      slots[t * sources.size() + i] = i * targets.size() + t;
    }
    plans[t].target = targets[t];
    plans[t].sources = sources;
    plans[t].slots = {slots.data() + t * sources.size(), sources.size()};
    plans[t].out = out.data() + t * sources.size();
  }
  for (int l : levels) batch.AdvanceMany(p, l, plans, states, true);
  return {std::move(out), batch.scheduler_barriers()};
}

TEST(ResumeTest, ForwardAdvanceManyMatchesPerTargetLoopBitwise) {
  Graph base = RandomGraph(48, 160, 62, true, true);
  Graph rcm = *ReorderGraph(base, ReorderKind::kRcm);
  std::vector<ExtNodeId> sources;
  for (NodeId u = 0; u < 19; ++u) sources.push_back(ExtNodeId(u));
  std::vector<ExtNodeId> targets = {
      ExtNodeId(20), ExtNodeId(25), ExtNodeId(30), ExtNodeId(35),
      ExtNodeId(40), ExtNodeId(45), ExtNodeId(47)};
  const std::vector<int> levels = {1, 2, 4, 8};
  for (const DhtParams& p : Semantics()) {
    auto [loop, loop_barriers] =
        ForwardPerTargetLoop(base, p, levels, sources, targets, 1);
    for (const Graph* g : {&base, &rcm}) {
      for (int threads : {1, 4}) {
        auto [fused, fused_barriers] =
            ForwardFusedSchedule(*g, p, levels, sources, targets, threads);
        ASSERT_EQ(fused.size(), loop.size());
        for (std::size_t i = 0; i < loop.size(); ++i) {
          EXPECT_EQ(fused[i], loop[i])
              << "first_hit=" << p.first_hit << " i=" << i
              << " threads=" << threads << " rcm=" << (g == &rcm);
        }
        // One barrier per level instead of |targets| per level.
        EXPECT_EQ(fused_barriers,
                  static_cast<int64_t>(levels.size()));
        EXPECT_EQ(loop_barriers,
                  static_cast<int64_t>(levels.size() * targets.size()));
      }
    }
    // Restart-vs-resume: the fused resume schedule equals a single
    // from-scratch run at the final depth.
    ForwardWalkerBatch scratch(base);
    std::vector<double> whole = scratch.Run(p, 8, sources, targets);
    for (std::size_t t = 0; t < targets.size(); ++t) {
      for (std::size_t i = 0; i < sources.size(); ++i) {
        EXPECT_EQ(loop[t * sources.size() + i],
                  whole[i * targets.size() + t])
            << "first_hit=" << p.first_hit;
      }
    }
  }
}

TEST(ResumeTest, BackwardAdvanceManyMultiGroupMatchesSequentialBitwise) {
  Graph g = RandomGraph(55, 180, 63, true, true);
  DhtParams p = DhtParams::Lambda(0.3);
  std::vector<ExtNodeId> targets_a = {
      ExtNodeId(1), ExtNodeId(4), ExtNodeId(9), ExtNodeId(16),
      ExtNodeId(25), ExtNodeId(36), ExtNodeId(49)};
  std::vector<ExtNodeId> targets_b = {
      ExtNodeId(2), ExtNodeId(6), ExtNodeId(12), ExtNodeId(20),
      ExtNodeId(30), ExtNodeId(42)};
  std::vector<ExtNodeId> sources_a = {
      ExtNodeId(40), ExtNodeId(41), ExtNodeId(42), ExtNodeId(43)};
  std::vector<ExtNodeId> sources_b = {
      ExtNodeId(10), ExtNodeId(11), ExtNodeId(12)};
  std::vector<std::size_t> slots_a, slots_b;
  for (std::size_t i = 0; i < targets_a.size(); ++i) slots_a.push_back(i);
  for (std::size_t i = 0; i < targets_b.size(); ++i) slots_b.push_back(i);

  // Sequential: one AdvanceChunked per group per level.
  BackwardWalkerBatch seq(g);
  BackwardBatchStates seq_a(targets_a.size()), seq_b(targets_b.size());
  std::vector<double> want_a(targets_a.size() * sources_a.size());
  std::vector<double> want_b(targets_b.size() * sources_b.size());
  auto copy_to = [](std::vector<double>& dst, std::size_t width) {
    return [&dst, width](std::size_t i, const double* row) {
      std::copy(row, row + width, dst.data() + i * width);
    };
  };
  for (int l : {1, 2, 4, 8}) {
    seq.AdvanceChunked(p, l, targets_a, slots_a, sources_a, seq_a,
                       copy_to(want_a, sources_a.size()));
    seq.AdvanceChunked(p, l, targets_b, slots_b, sources_b, seq_b,
                       copy_to(want_b, sources_b.size()));
  }

  // Fused: both groups (their own states, sources, and output rows) in
  // one AdvanceMany per level — one barrier for the whole round.
  BackwardWalkerBatch fused(g);
  BackwardBatchStates fus_a(targets_a.size()), fus_b(targets_b.size());
  std::vector<double> got_a(want_a.size()), got_b(want_b.size());
  for (int l : {1, 2, 4, 8}) {
    BackwardAdvanceGroup groups[2];
    groups[0] = {l, targets_a, slots_a, sources_a, &fus_a, true,
                 got_a.data()};
    groups[1] = {l, targets_b, slots_b, sources_b, &fus_b, true,
                 got_b.data()};
    fused.AdvanceMany(p, groups);
  }
  for (std::size_t i = 0; i < want_a.size(); ++i) {
    EXPECT_EQ(got_a[i], want_a[i]) << "group a, i=" << i;
  }
  for (std::size_t i = 0; i < want_b.size(); ++i) {
    EXPECT_EQ(got_b[i], want_b[i]) << "group b, i=" << i;
  }
  EXPECT_EQ(fused.scheduler_barriers(), 4);
  EXPECT_EQ(seq.scheduler_barriers(), 8);
}

TEST(ResumeTest, NarrowLaneWidthIsBitIdenticalToDefault) {
  // kLaneWidth = 4: half the workspace bytes per block, twice the
  // blocks in flight, identical bits — lanes are independent columns
  // and the union support only ever contributes exact zeros to lanes
  // that don't own a node.
  Graph g = RandomGraph(50, 170, 64, true, true);
  std::vector<ExtNodeId> targets = {
      ExtNodeId(3), ExtNodeId(9), ExtNodeId(14), ExtNodeId(20),
      ExtNodeId(27), ExtNodeId(33), ExtNodeId(38), ExtNodeId(44),
      ExtNodeId(48)};
  std::vector<ExtNodeId> sources;
  for (NodeId u = 0; u < 22; ++u) sources.push_back(ExtNodeId(u));
  std::vector<std::size_t> slots(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) slots[i] = i;
  for (const DhtParams& p : Semantics()) {
    BackwardWalkerBatchT<8> wide(g);
    BackwardWalkerBatchT<4> narrow(g);
    EXPECT_EQ(wide.Run(p, 8, targets, sources),
              narrow.Run(p, 8, targets, sources))
        << "first_hit=" << p.first_hit;

    // The resumable deepening path too, per level.
    BackwardBatchStates ws(targets.size()), ns(targets.size());
    std::vector<double> wrow(targets.size() * sources.size());
    std::vector<double> nrow(wrow.size());
    for (int l : {1, 2, 4, 8}) {
      wide.AdvanceChunked(p, l, targets, slots, sources, ws,
                          [&](std::size_t i, const double* row) {
                            std::copy(row, row + sources.size(),
                                      wrow.data() + i * sources.size());
                          });
      narrow.AdvanceChunked(p, l, targets, slots, sources, ns,
                            [&](std::size_t i, const double* row) {
                              std::copy(row, row + sources.size(),
                                        nrow.data() + i * sources.size());
                            });
      for (std::size_t i = 0; i < wrow.size(); ++i) {
        EXPECT_EQ(nrow[i], wrow[i])
            << "first_hit=" << p.first_hit << " l=" << l << " i=" << i;
      }
    }

    ForwardWalkerBatchT<8> fwide(g);
    ForwardWalkerBatchT<4> fnarrow(g);
    EXPECT_EQ(fwide.Run(p, 8, sources, targets),
              fnarrow.Run(p, 8, sources, targets))
        << "first_hit=" << p.first_hit;
  }
}

TEST(ResumeTest, BatchStatesRetuneGrowsOnThrashShrinksOnIdle) {
  Graph g = RandomGraph(40, 130, 65);
  DhtParams p = DhtParams::Lambda(0.2);
  std::vector<ExtNodeId> targets = {
      ExtNodeId(1), ExtNodeId(5), ExtNodeId(9), ExtNodeId(13),
      ExtNodeId(17), ExtNodeId(21), ExtNodeId(25), ExtNodeId(29)};
  std::vector<std::size_t> slots(targets.size());
  for (std::size_t i = 0; i < targets.size(); ++i) slots[i] = i;
  std::vector<ExtNodeId> sources = {
      ExtNodeId(0), ExtNodeId(2), ExtNodeId(4), ExtNodeId(6)};
  auto sink = [](std::size_t, const double*) {};

  // THRASH: a 1-byte budget refuses every write-back (all misses +
  // evictions), so the feedback autotuner doubles the budget.
  BackwardWalkerBatch batch(g);
  BackwardBatchStates starving(targets.size(), 1);
  for (int l : {1, 2, 4}) {
    batch.AdvanceChunked(p, l, targets, slots, sources, starving, sink);
  }
  EXPECT_GT(starving.evictions(), 0);
  EXPECT_GT(starving.misses(), starving.hits());
  EXPECT_EQ(starving.Retune(1, 1024), 2u);
  EXPECT_EQ(starving.budget_grows(), 1);

  // IDLE: a huge budget with every walk resuming and nothing evicted —
  // the autotuner halves it (never below resident bytes or `lo`).
  BackwardBatchStates idle(targets.size(), std::size_t{64} << 20);
  for (int l : {1, 2, 4, 8}) {
    batch.AdvanceChunked(p, l, targets, slots, sources, idle, sink);
  }
  EXPECT_EQ(idle.evictions(), 0);
  EXPECT_GT(idle.hits(), 0);
  const std::size_t before = idle.max_bytes();
  EXPECT_EQ(idle.Retune(1, std::size_t{1} << 30), before / 2);
  EXPECT_EQ(idle.budget_shrinks(), 1);

  // The forward pool shares the same budget base; spot-check thrash.
  ForwardWalkerBatch fbatch(g);
  ForwardBatchStates fstarving(1);
  std::vector<std::size_t> fslots(sources.size());
  for (std::size_t i = 0; i < sources.size(); ++i) fslots[i] = i;
  for (int l : {1, 2, 4}) {
    fbatch.AdvancePairs(p, l, sources, fslots, targets[0], fstarving,
                        [](std::size_t, double) {});
  }
  EXPECT_GT(fstarving.evictions(), 0);
  EXPECT_EQ(fstarving.Retune(1, 1024), 2u);
  EXPECT_EQ(fstarving.budget_grows(), 1);
}

// ------------------------------------------- joins: resume ≡ restart

TEST(ResumeTest, BIdjResumeIsByteIdenticalWithFewerSteps) {
  Graph g = RandomGraph(60, 200, 51, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 20);
  NodeSet Q = Range("Q", 25, 55);
  for (auto bound : {UpperBoundKind::kX, UpperBoundKind::kY}) {
    BIdjJoin resumed(BIdjJoin::Options{.bound = bound, .resume = true});
    BIdjJoin restarted(BIdjJoin::Options{.bound = bound, .resume = false});
    auto a = resumed.Run(g, p, 8, P, Q, 10);
    auto b = restarted.Run(g, p, 8, P, Q, 10);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(a->size(), b->size());
    for (std::size_t i = 0; i < a->size(); ++i) {
      // operator== compares scores exactly: byte-identical output.
      EXPECT_EQ((*a)[i], (*b)[i]) << "rank " << i;
    }
    EXPECT_LT(resumed.stats().walk_steps, restarted.stats().walk_steps);
    EXPECT_LE(resumed.stats().walks_started, restarted.stats().walks_started);
  }
}

TEST(ResumeTest, FIdjResumeIsByteIdenticalWithFewerSteps) {
  Graph g = RandomGraph(50, 170, 52, true, true);
  DhtParams p = DhtParams::Lambda(0.2);
  NodeSet P = Range("P", 0, 15);
  NodeSet Q = Range("Q", 20, 40);
  FIdjJoin resumed(FIdjJoin::Options{.resume = true});
  FIdjJoin restarted(FIdjJoin::Options{.resume = false});
  auto a = resumed.Run(g, p, 8, P, Q, 10);
  auto b = restarted.Run(g, p, 8, P, Q, 10);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->size(), b->size());
  for (std::size_t i = 0; i < a->size(); ++i) {
    EXPECT_EQ((*a)[i], (*b)[i]) << "rank " << i;
  }
  EXPECT_LT(resumed.stats().walk_steps, restarted.stats().walk_steps);
}

}  // namespace
}  // namespace dhtjoin
